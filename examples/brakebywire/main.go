// Brake-by-wire: a safety-critical distributed chain (pedal sensor →
// brake controller → four wheel actuators) deployed over a FlexRay
// backbone, with rich contracts on the components, static verification of
// the end-to-end latency constraint, and a measurement run that checks the
// analytic bound against observed chain latencies — §3's methodology on
// §4's example domain.
//
// Run with:
//
//	go run ./examples/brakebywire
package main

import (
	"fmt"
	"log"

	"autorte/internal/contract"
	"autorte/internal/core"
	"autorte/internal/e2e"
	"autorte/internal/flexray"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

func buildSystem() *model.System {
	ifPedal := &model.PortInterface{
		Name: "IfPedal", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "pos", Type: model.UInt16}},
	}
	ifForce := &model.PortInterface{
		Name: "IfForce", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "f", Type: model.UInt16}},
	}
	pedal := &model.SWC{
		Name: "PedalSensor", Supplier: "tierA", DAS: "chassis", ASIL: model.ASILD, MemoryKB: 8,
		Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifPedal}},
		Runnables: []model.Runnable{{
			Name: "sample", WCETNominal: sim.US(60),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(5)},
			Writes:  []model.PortRef{{Port: "out", Elem: "pos"}},
		}},
	}
	ctrl := &model.SWC{
		Name: "BrakeController", Supplier: "tierB", DAS: "chassis", ASIL: model.ASILD, MemoryKB: 64,
		Ports: []model.Port{
			{Name: "pedal", Direction: model.Required, Interface: ifPedal},
			{Name: "force", Direction: model.Provided, Interface: ifForce},
		},
		Runnables: []model.Runnable{{
			Name: "law", WCETNominal: sim.US(400),
			Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "pedal", Elem: "pos"},
			Reads:   []model.PortRef{{Port: "pedal", Elem: "pos"}},
			Writes:  []model.PortRef{{Port: "force", Elem: "f"}},
		}},
	}
	sys := &model.System{
		Name:       "brake-by-wire",
		Interfaces: []*model.PortInterface{ifPedal, ifForce},
		Components: []*model.SWC{pedal, ctrl},
		ECUs: []*model.ECU{
			{Name: "ecuFront", Speed: 1, MemoryKB: 256, Buses: []string{"fr"}, Position: [2]float64{0.5, 0}, MaxASIL: model.ASILD},
			{Name: "ecuCentral", Speed: 2, MemoryKB: 512, Buses: []string{"fr"}, Position: [2]float64{1.5, 0.5}, MaxASIL: model.ASILD},
			{Name: "ecuRear", Speed: 1, MemoryKB: 256, Buses: []string{"fr"}, Position: [2]float64{3.5, 0}, MaxASIL: model.ASILD},
		},
		Buses:   []*model.Bus{{Name: "fr", Kind: model.BusFlexRay, BitRate: 10_000_000}},
		Mapping: map[string]string{"PedalSensor": "ecuFront", "BrakeController": "ecuCentral"},
	}
	sys.Connectors = append(sys.Connectors,
		model.Connector{FromSWC: "PedalSensor", FromPort: "out", ToSWC: "BrakeController", ToPort: "pedal"})
	// Four wheel actuators, front pair and rear pair on different ECUs.
	for i, ecu := range []string{"ecuFront", "ecuFront", "ecuRear", "ecuRear"} {
		name := fmt.Sprintf("WheelAct%d", i)
		act := &model.SWC{
			Name: name, Supplier: "tierA", DAS: "chassis", ASIL: model.ASILD, MemoryKB: 8,
			Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifForce}},
			Runnables: []model.Runnable{{
				Name: "apply", WCETNominal: sim.US(120),
				Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "f"},
				Reads:   []model.PortRef{{Port: "in", Elem: "f"}},
			}},
		}
		sys.Components = append(sys.Components, act)
		sys.Connectors = append(sys.Connectors,
			model.Connector{FromSWC: "BrakeController", FromPort: "force", ToSWC: name, ToPort: "in"})
		sys.Mapping[name] = ecu
	}
	// The safety requirement: pedal movement to rear-wheel force within 20ms.
	sys.Constraints = []model.LatencyConstraint{{
		Name: "pedalToRearWheel",
		Chain: []model.PortRef2{
			{SWC: "PedalSensor", Port: "out"},
			{SWC: "BrakeController", Port: "pedal"},
			{SWC: "BrakeController", Port: "force"},
			{SWC: "WheelAct3", Port: "in"},
		},
		Budget: sim.MS(20),
	}}
	return sys
}

func contracts() map[string]*contract.Contract {
	return map[string]*contract.Contract{
		"PedalSensor": {
			Component: "PedalSensor",
			Guarantees: []contract.Condition{
				{Kind: contract.ValueRange, Port: "out", Elem: "pos", Lo: 0, Hi: 100},
				{Kind: contract.UpdateRate, Port: "out", Elem: "pos", Lo: float64(sim.MS(4)), Hi: float64(sim.MS(6))},
			},
			Vertical: []contract.VerticalAssumption{
				{Resource: "cpu", Budget: float64(sim.US(60)), Confidence: 0.95},
			},
		},
		"BrakeController": {
			Component: "BrakeController",
			Assumes: []contract.Condition{
				{Kind: contract.ValueRange, Port: "pedal", Elem: "pos", Lo: 0, Hi: 120},
				{Kind: contract.UpdateRate, Port: "pedal", Elem: "pos", Lo: float64(sim.MS(1)), Hi: float64(sim.MS(10))},
			},
			Guarantees: []contract.Condition{
				{Kind: contract.Latency, Port: "pedal", Elem: "force", Hi: float64(sim.MS(2))},
				{Kind: contract.ValueRange, Port: "force", Elem: "f", Lo: 0, Hi: 5000},
			},
			Vertical: []contract.VerticalAssumption{
				{Resource: "cpu", Budget: float64(sim.US(400)), Confidence: 0.85},
			},
		},
	}
}

func main() {
	sys := buildSystem()

	// Static verification: contracts + schedulability + the latency chain.
	rep, err := core.Verify(sys, contracts(), rte.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("static verification:")
	fmt.Printf("  contracts: checked %d connections, %d violations, confidence %.2f\n",
		rep.Contracts.Checked, len(rep.Contracts.Violations), rep.Contracts.Confidence)
	for _, e := range rep.ECUs {
		fmt.Printf("  ECU %-11s util %.3f schedulable=%v\n", e.Name, e.Utilization, e.Schedulable)
	}
	for _, c := range rep.Chains {
		fmt.Printf("  chain %s: bound %v, budget %v, ok=%v\n", c.Name, c.Bound, c.Budget, c.OK)
	}
	if !rep.OK() {
		log.Fatal("system did not verify")
	}

	// Measurement: instrument the chain with an end-to-end probe. The
	// platform sends every ASIL-C+ frame on both FlexRay channels, and we
	// kill channel A mid-run to show the chain does not care.
	p, err := rte.Build(sys, rte.Options{DualChannelFlexRay: true})
	if err != nil {
		log.Fatal(err)
	}
	p.FlexRayBus("fr").FailChannel(flexray.ChannelA, sim.Second)
	probe, err := e2e.Attach(p,
		e2e.Endpoint{SWC: "PedalSensor", Runnable: "sample", Port: "out", Elem: "pos"},
		e2e.Endpoint{SWC: "WheelAct3", Runnable: "apply", Port: "in", Elem: "f"})
	if err != nil {
		log.Fatal(err)
	}
	p.Run(2 * sim.Second)
	bound := rep.Chains[0].Bound
	fmt.Printf("\nmeasured pedal->rear-wheel latency over %d brake events:\n", len(probe.Latencies))
	fmt.Printf("  worst %v  (analytic bound %v, budget 20ms)\n", probe.Max(), bound)
	if probe.Max() > bound {
		log.Fatal("measurement exceeded the analytic bound")
	}
	if len(probe.Latencies) < 350 {
		log.Fatalf("chain degraded after the channel-A failure: only %d events", len(probe.Latencies))
	}
	fmt.Println("channel A failed at t=1s; dual-channel redundancy kept the chain alive")
	fmt.Println("\nbrake-by-wire chain verified and validated")
}
