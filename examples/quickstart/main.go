// Quickstart: model two software components (a wheel-speed sensor and a
// display), connect them on the Virtual Functional Bus, deploy both onto
// one ECU, attach behaviours, and simulate.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

func main() {
	// 1. A standardized port interface, published in the catalogue.
	ifSpeed := &model.PortInterface{
		Name: "IfWheelSpeed", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "kmh", Type: model.UInt16}},
	}

	// 2. Two atomic software components with ports and runnables.
	sensor := &model.SWC{
		Name: "WheelSensor", Supplier: "tier1",
		Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifSpeed}},
		Runnables: []model.Runnable{{
			Name:        "sample",
			WCETNominal: sim.US(80),
			Trigger:     model.Trigger{Kind: model.TimingEvent, Period: sim.MS(20)},
			Writes:      []model.PortRef{{Port: "out", Elem: "kmh"}},
		}},
	}
	display := &model.SWC{
		Name: "Dashboard", Supplier: "oem",
		Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifSpeed}},
		Runnables: []model.Runnable{{
			Name:        "refresh",
			WCETNominal: sim.US(200),
			Trigger:     model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "kmh"},
			Reads:       []model.PortRef{{Port: "in", Elem: "kmh"}},
		}},
	}

	// 3. The system: components, one ECU, the VFB connector, a mapping.
	sys := &model.System{
		Name:       "quickstart",
		Interfaces: []*model.PortInterface{ifSpeed},
		Components: []*model.SWC{sensor, display},
		ECUs:       []*model.ECU{{Name: "ecu1", Speed: 1, MemoryKB: 128}},
		Connectors: []model.Connector{
			{FromSWC: "WheelSensor", FromPort: "out", ToSWC: "Dashboard", ToPort: "in"},
		},
		Mapping: map[string]string{"WheelSensor": "ecu1", "Dashboard": "ecu1"},
	}

	// 4. Generate the RTE and attach application behaviours.
	p, err := rte.Build(sys, rte.Options{})
	if err != nil {
		log.Fatal(err)
	}
	speed := 0.0
	p.MustBehavior("WheelSensor", "sample", func(c *rte.Context) {
		speed += 1.5 // the car accelerates
		c.Write("out", "kmh", speed)
	})
	var lastShown float64
	p.MustBehavior("Dashboard", "refresh", func(c *rte.Context) {
		lastShown = c.Read("in", "kmh")
	})

	// 5. Simulate one virtual second and inspect the results.
	p.Run(sim.Second)
	fmt.Printf("dashboard shows %.1f km/h after 1s\n", lastShown)
	fmt.Printf("sensor:    %s\n", p.Stats("WheelSensor.sample"))
	fmt.Printf("dashboard: %s\n", p.Stats("Dashboard.refresh"))
	fmt.Printf("ecu1 utilization: %.4f\n", p.CPU("ecu1").Utilization())
}
