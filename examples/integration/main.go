// Integration: application tasks from multiple Tier-1 suppliers share one
// ECU — the future scenario of §1. Supplier B ships a component that
// overruns its declared WCET by 8x. The example runs the same system
// three times: plain fixed-priority (supplier A's brake function breaks),
// with per-job budget enforcement (the overrun is cut off), and with a
// per-supplier time-triggered partition (A's timing is bit-identical to
// its solo run).
//
// Run with:
//
//	go run ./examples/integration
package main

import (
	"fmt"
	"log"

	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// buildSystem hosts two suppliers on one ECU. includeB controls whether
// supplier B's components are present (the solo baseline omits them).
func buildSystem(includeB bool) *model.System {
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	sys := &model.System{
		Name:       "shared-ecu",
		Interfaces: []*model.PortInterface{ifV},
		ECUs:       []*model.ECU{{Name: "ecu", Speed: 1, MemoryKB: 512, MaxASIL: model.ASILD}},
		Mapping:    map[string]string{},
	}
	// Supplier A: the incumbent safety function (brake monitor).
	brake := &model.SWC{
		Name: "A_BrakeMonitor", Supplier: "supplierA", ASIL: model.ASILD,
		Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
		Runnables: []model.Runnable{{
			Name: "monitor", WCETNominal: sim.MS(1),
			Trigger:  model.Trigger{Kind: model.TimingEvent, Period: sim.MS(5)},
			Deadline: sim.MS(5),
			Writes:   []model.PortRef{{Port: "out", Elem: "v"}},
		}},
	}
	logger := &model.SWC{
		Name: "A_Logger", Supplier: "supplierA", ASIL: model.ASILB,
		Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifV}},
		Runnables: []model.Runnable{{
			Name: "store", WCETNominal: sim.US(300),
			Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
			Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
		}},
	}
	sys.Components = append(sys.Components, brake, logger)
	sys.Connectors = append(sys.Connectors,
		model.Connector{FromSWC: "A_BrakeMonitor", FromPort: "out", ToSWC: "A_Logger", ToPort: "in"})
	sys.Mapping["A_BrakeMonitor"] = "ecu"
	sys.Mapping["A_Logger"] = "ecu"
	if includeB {
		// Supplier B: a comfort function declaring 500us at 4ms (12.5%).
		comfort := &model.SWC{
			Name: "B_SeatComfort", Supplier: "supplierB", ASIL: model.QM,
			Runnables: []model.Runnable{{
				Name: "adjust", WCETNominal: sim.US(500),
				Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(4)},
			}},
		}
		sys.Components = append(sys.Components, comfort)
		sys.Mapping["B_SeatComfort"] = "ecu"
	}
	return sys
}

// run simulates one configuration and reports supplier A's health.
func run(name string, opts rte.Options, overrun bool) trace.Stats {
	sys := buildSystem(true)
	p, err := rte.Build(sys, opts)
	if err != nil {
		log.Fatal(err)
	}
	if overrun {
		// B's actual demand is 8x its declared WCET.
		p.Task("B_SeatComfort", "adjust").Demand = func(int64) sim.Duration { return sim.MS(4) }
	}
	p.Run(sim.Second)
	st := p.Stats("A_BrakeMonitor.monitor")
	aborts := p.Stats("B_SeatComfort.adjust").AbortCount
	// Failures = deadline misses + activations dropped by starvation.
	failures := st.MissCount + p.Trace.Count(trace.Drop, "A_BrakeMonitor.monitor")
	fmt.Printf("%-28s A.monitor worst=%-8v failures=%-4d B aborts=%d\n",
		name, st.Max, failures, aborts)
	st.MissCount = failures
	return st
}

func main() {
	fmt.Println("supplier B overruns its declared 500us WCET by 8x:")
	fp := run("fixed-priority", rte.Options{}, true)
	bud := run("budget enforcement", rte.Options{EnforceBudgets: true}, true)
	planned := rte.Options{
		Isolation:    rte.TablePerSupplier,
		MajorFrame:   sim.MS(2),
		Reservations: map[string]float64{"supplierA": 0.6, "supplierB": 0.3},
	}
	tt := run("tt-table partitions", planned, true)

	// Solo baseline: supplier A alone on the ECU with the same TT plan.
	solo := buildSystem(false)
	pSolo, err := rte.Build(solo, planned)
	if err != nil {
		log.Fatal(err)
	}
	pSolo.Run(sim.Second)
	soloStats := pSolo.Stats("A_BrakeMonitor.monitor")
	fmt.Printf("%-28s A.monitor worst=%-8v misses=%d\n", "solo baseline (tt plan)", soloStats.Max, soloStats.MissCount)

	switch {
	case fp.MissCount == 0:
		log.Fatal("expected the unprotected run to break supplier A")
	case bud.MissCount > 0:
		log.Fatal("budget enforcement failed to protect supplier A")
	case tt.Max != soloStats.Max:
		log.Fatalf("TT integration changed A's timing: %v vs solo %v", tt.Max, soloStats.Max)
	}
	fmt.Println("\ncomposability: A's worst case under TT partitions equals its solo run")
}
