// NoC platform: hosts distributed application subsystems of different
// criticality on a 4x4 MPSoC mesh (§4's integrated execution platform).
// Each DAS component lives on its own IP core and communicates only by
// messages. The example checks the four composability requirements under
// best-effort routing and under the time-triggered NoC, then injects a
// babbling core and a crash to demonstrate error containment.
//
// Run with:
//
//	go run ./examples/nocplatform
package main

import (
	"fmt"
	"log"

	"autorte/internal/noc"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// vehicleFlows places the chassis and power-train DAS traffic on specific
// cores; telematics shares the same mesh rows, so in best-effort mode it
// can interfere with the safety traffic.
func vehicleFlows() []*noc.Flow {
	return []*noc.Flow{
		{Name: "chassis.wheelSpeed", Src: noc.Coord{X: 0, Y: 0}, Dst: noc.Coord{X: 3, Y: 0}, Flits: 4, Period: sim.US(3200)},
		{Name: "chassis.brakeCmd", Src: noc.Coord{X: 3, Y: 0}, Dst: noc.Coord{X: 0, Y: 0}, Flits: 4, Period: sim.US(3200), Offset: sim.US(3)},
		{Name: "powertrain.torque", Src: noc.Coord{X: 0, Y: 2}, Dst: noc.Coord{X: 3, Y: 2}, Flits: 6, Period: sim.US(6400)},
		{Name: "telematics.stream", Src: noc.Coord{X: 1, Y: 0}, Dst: noc.Coord{X: 3, Y: 0}, Flits: 14, Period: sim.US(3200), Offset: sim.US(1)},
	}
}

func checkRequirements(name string, cfg noc.Config) {
	base := vehicleFlows()
	added := []*noc.Flow{
		{Name: "diagnostics.new", Src: noc.Coord{X: 2, Y: 0}, Dst: noc.Coord{X: 3, Y: 0}, Flits: 8, Period: sim.US(6400)},
	}
	rep, err := noc.CheckComposition(cfg, base, added, 50*sim.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s R1 precise=%v  R2 stable=%v  R3 non-interfering=%v\n",
		name, rep.PreciseInterfaces, rep.StablePriorServices, rep.NonInterfering)
	for _, f := range base {
		fmt.Printf("    %-22s isolated %-8v composed %v\n",
			f.Name, rep.IsolatedWorst[f.Name], rep.PriorWorst[f.Name])
	}
}

func main() {
	be := noc.Config{Width: 4, Height: 4, FlitTime: sim.US(1), Mode: noc.BestEffort}
	tt := noc.Config{Width: 4, Height: 4, FlitTime: sim.US(1), Mode: noc.TDMA, SlotLength: sim.US(100)}

	fmt.Println("composability requirements (R1-R3) by arbitration mode:")
	checkRequirements("best-effort", be)
	checkRequirements("tdma", tt)

	// R4: error containment under a babbling IP core and a crashed core.
	fmt.Println("\nfault injection on the TDMA mesh (R4):")
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	net := noc.MustNewNetwork(k, tt, rec)
	for _, f := range vehicleFlows() {
		net.MustAddFlow(f)
	}
	// The telematics core turns babbling idiot at 10ms; the power-train
	// sensor core crashes at 30ms.
	net.BabbleCore(noc.Coord{X: 1, Y: 0}, 10*sim.Millisecond, 40*sim.Millisecond)
	net.CrashCore(noc.Coord{X: 0, Y: 2}, 30*sim.Millisecond)
	net.Start()
	k.Run(60 * sim.Millisecond)

	st := trace.Compute(rec.Latencies("chassis.wheelSpeed"))
	fmt.Printf("  chassis.wheelSpeed: %d delivered, jitter %v (babbler blocked %d injections)\n",
		st.N, st.Jitter, net.BlockedInjections())
	if st.Jitter != 0 {
		log.Fatal("babbling idiot perturbed the safety flow on the TT NoC")
	}
	delivered := rec.Count(trace.Finish, "powertrain.torque")
	dropped := rec.Count(trace.Drop, "powertrain.torque")
	fmt.Printf("  powertrain.torque: %d delivered before crash, %d dropped after\n", delivered, dropped)
	if dropped == 0 {
		log.Fatal("crash fault had no effect")
	}
	// Crash containment: the chassis flows keep their full delivery count.
	if miss := rec.Count(trace.Miss, "chassis.wheelSpeed"); miss != 0 {
		log.Fatalf("crash propagated to chassis flow: %d misses", miss)
	}
	fmt.Println("\nfaulty cores contained: safety traffic unaffected (R4 holds)")
}
