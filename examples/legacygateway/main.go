// Legacy gateway: §4 closes with the requirement that the integrated
// architecture "support the seamless integration of this existing legacy
// software" via middleware such as a CAN overlay network. This example
// takes a small legacy CAN application — an engine node broadcasting RPM
// and a dashboard node consuming it through the classic callback API —
// and runs it unchanged over the time-triggered NoC of the MPSoC
// platform, then shows what the migration bought: deterministic latency
// and immunity to a babbling neighbour core.
//
// Run with:
//
//	go run ./examples/legacygateway
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"autorte/internal/noc"
	"autorte/internal/overlay"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// dashboardApp is the untouched legacy receive handler: same signature the
// classic CAN driver used.
type dashboardApp struct {
	lastRPM  uint16
	received int
}

func (d *dashboardApp) onRPMFrame(_, _ sim.Time, payload []byte) {
	if len(payload) >= 2 {
		d.lastRPM = binary.LittleEndian.Uint16(payload)
	}
	d.received++
}

func run(babble bool) (trace.Stats, *dashboardApp) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	// The integrated platform: a 4x4 TT NoC. The legacy "engine ECU" and
	// "dashboard ECU" become IP cores.
	net := noc.MustNewNetwork(k, noc.Config{
		Width: 4, Height: 4, FlitTime: sim.US(1),
		Mode: noc.TDMA, SlotLength: sim.US(100),
	}, rec)
	vcan := overlay.New(net)
	if err := vcan.AttachNode("engineECU", noc.Coord{X: 0, Y: 0}); err != nil {
		log.Fatal(err)
	}
	if err := vcan.AttachNode("dashboardECU", noc.Coord{X: 3, Y: 0}); err != nil {
		log.Fatal(err)
	}
	dash := &dashboardApp{}
	rpm := &overlay.Message{
		Name: "EngineRPM", ID: 0x0C8, DLC: 2,
		Period:    sim.US(3200), // two TDMA cycles: phase-locked
		OnDeliver: dash.onRPMFrame,
	}
	if err := vcan.AttachMessage(rpm, "engineECU", "dashboardECU"); err != nil {
		log.Fatal(err)
	}
	if babble {
		// A faulty third-party core floods the mesh for the whole run.
		net.BabbleCore(noc.Coord{X: 1, Y: 0}, 0, sim.MS(200))
	}
	// The legacy engine app updates the payload as the engine revs.
	revs := uint16(800)
	var update func(at sim.Time)
	update = func(at sim.Time) {
		k.At(at, func() {
			buf := make([]byte, 2)
			binary.LittleEndian.PutUint16(buf, revs)
			if err := vcan.Send("EngineRPM", buf); err != nil {
				log.Fatal(err)
			}
			revs += 50
			if at < sim.MS(190) {
				update(at + sim.MS(10))
			}
		})
	}
	update(0)
	net.Start()
	k.Run(sim.MS(200))
	return trace.Compute(rec.Latencies("legacy/EngineRPM")), dash
}

func main() {
	quiet, dash := run(false)
	fmt.Printf("legacy RPM stream over the TT NoC: %d frames, latency %v, jitter %v\n",
		quiet.N, quiet.Max, quiet.Jitter)
	fmt.Printf("dashboard last reading: %d rpm after %d frames\n", dash.lastRPM, dash.received)
	if dash.received == 0 || dash.lastRPM < 800 {
		log.Fatal("legacy application did not work over the overlay")
	}

	loud, dashLoud := run(true)
	fmt.Printf("\nwith a babbling neighbour core: %d frames, latency %v, jitter %v\n",
		loud.N, loud.Max, loud.Jitter)
	if loud.N != quiet.N || loud.Max != quiet.Max || loud.Jitter != quiet.Jitter {
		log.Fatal("babbler affected the legacy stream; containment failed")
	}
	if dashLoud.lastRPM != dash.lastRPM {
		log.Fatal("payload corrupted under babble")
	}
	fmt.Println("\nlegacy software integrated unchanged; timing deterministic and fault-contained")
}
