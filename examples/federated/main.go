// Federated → integrated: generate the canonical four-subsystem vehicle
// in its federated form (one ECU cluster per subsystem, §4's status quo),
// then consolidate it by design-space exploration under schedulability,
// memory and ASIL constraints, verifying each architecture statically and
// reporting ECU count, harness length and load.
//
// Run with:
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"

	"autorte/internal/core"
	"autorte/internal/deploy"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/workload"
)

func report(name string, sys *model.System, cons deploy.Constraints) {
	m := deploy.Evaluate(sys, cons)
	rep, err := core.Verify(sys, nil, rte.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s ECUs=%-3d harness=%6.1fm maxLoad=%.3f feasible=%-5v verified=%v\n",
		name, m.ECUs, m.Harness, m.MaxLoad, m.Feasible, rep.OK())
	// The consolidated system still has to actually run: simulate briefly
	// and count deadline misses.
	p, err := core.Simulate(sys.Clone(), rte.Options{}, 200*sim.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	misses := 0
	for _, c := range sys.Components {
		for i := range c.Runnables {
			misses += p.Stats(c.Name + "." + c.Runnables[i].Name).MissCount
		}
	}
	if misses > 0 {
		log.Fatalf("%s: %d deadline misses in simulation", name, misses)
	}
}

func main() {
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(7))
	if err != nil {
		log.Fatal(err)
	}
	cons := deploy.Constraints{RespectASIL: true, RespectMemory: true}
	fmt.Printf("vehicle: %d SWCs in 4 subsystems (power-train, chassis, body, telematics)\n\n",
		len(sys.Components))

	report("federated", sys, cons)

	greedy, err := deploy.Greedy(sys, cons)
	if err != nil {
		log.Fatal(err)
	}
	report("greedy", greedy, cons)

	annealed, err := deploy.Anneal(greedy, cons, deploy.DefaultObjective(), 42, 4000)
	if err != nil {
		log.Fatal(err)
	}
	report("annealed", annealed, cons)

	before := deploy.Evaluate(sys, cons)
	after := deploy.Evaluate(annealed, cons)
	fmt.Printf("\nconsolidation removed %d of %d ECUs and %.0f%% of the harness\n",
		before.ECUs-after.ECUs, before.ECUs,
		100*(1-after.Harness/before.Harness))
}
