# Tier-1 gate plus vet, autovet, the race detector and shuffled test
# order (order-dependence is a bug) — the full pre-merge check.
check: lint
	go build ./...
	go vet ./...
	go test -race -shuffle=on ./...

# Build and run autovet, the repo's own go/analysis suite (see
# internal/analysis): walltime, nilsafe, baregoroutine, kindswitch and
# the //autovet: directive validator. Driven through `go vet -vettool`
# so results are cached by the go command like any other vet pass.
lint:
	go build -o bin/autovet ./cmd/autovet
	go vet -vettool=$(abspath bin/autovet) ./...

test:
	go test ./...

# Verification & DSE pipeline benchmarks (see EXPERIMENTS.md "Performance").
# Emits BENCH_pipeline.json (name -> ns/op, allocs/op) alongside the
# human-readable output.
bench:
	go test -run '^$$' -bench 'BenchmarkVerify$$|BenchmarkVerifyDSESweep|BenchmarkDSEDescend|BenchmarkDSEAnnealParallel' -benchmem . > BENCH_pipeline.txt
	go run ./cmd/benchjson -o BENCH_pipeline.json < BENCH_pipeline.txt

# The complete benchmark suite (E1-E11 harness + platform + pipeline).
bench-all:
	go test -run '^$$' -bench . -benchmem ./...

# Fault-injection smoke suite: the systematic campaign, the escalation
# ladder and the graceful-degradation experiments, under the race
# detector (the campaign runner fans scenarios out across workers).
chaos:
	go test -race -run 'Campaign|Escalation|LimpHome|Debounce|Supervision|Coverage|E12' \
		./internal/fault ./internal/health ./internal/experiments

.PHONY: check lint test bench bench-all chaos
