# Tier-1 gate plus vet, autovet, the race detector and shuffled test
# order (order-dependence is a bug) — the full pre-merge check.
check: lint
	go build ./...
	go vet ./...
	go test -race -shuffle=on ./...

# Build and run autovet, the repo's own go/analysis suite (see
# internal/analysis): walltime, nilsafe, baregoroutine, kindswitch,
# detrange, errreport, bounded, e2eflow, lockorder and the //autovet:
# directive validator. Driven through `go vet -vettool` so results are
# cached by the go command like any other vet pass. The first (gating)
# run prints human-readable findings; the second run re-reads the cached
# results as JSON into autovet.json (the CI artifact) and the summary
# table counts findings, allows and bounded/nilsafe markers per
# analyzer.
lint:
	go build -o bin/autovet ./cmd/autovet
	@start=$$(date +%s); \
	go vet -vettool=$(abspath bin/autovet) ./... || exit 1; \
	go vet -vettool=$(abspath bin/autovet) -json ./... > autovet.json 2>&1; \
	bin/autovet summary autovet.json; \
	echo "lint wall time: $$(( $$(date +%s) - start ))s"

test:
	go test ./...

# Verification & DSE pipeline benchmarks (see EXPERIMENTS.md "Performance").
# Emits BENCH_pipeline.json (name -> ns/op, allocs/op) alongside the
# human-readable output, then enforces the performance budget: Verify
# par no slower than seq, the paired E13 availability campaign within
# its par/seq-ratio budget,
# BenchmarkVerify/large within its allocs/op ceiling,
# the incremental DSE path at least 3x faster than cached-par, and the
# always-on flight recorder within 5% of recorder-off. The flight
# benchmarks interleave on and off within each iteration and report the
# paired "on/off-ratio" metric benchguard gates — pairing cancels
# shared-runner noise a 5% budget could never be measured under from
# independent samples; -count=2 with benchjson keeping the fastest
# repeat adds slack against a one-off bad run.
bench:
	go test -run '^$$' -bench 'BenchmarkVerify$$|BenchmarkVerifyDSESweep|BenchmarkDSEDescend|BenchmarkDSEAnnealParallel|BenchmarkE13Availability|BenchmarkE14Observer' -benchmem . > BENCH_pipeline.txt
	go test -run '^$$' -bench 'BenchmarkPlatformFlight|BenchmarkE11Flight|BenchmarkVerifyFlight' -benchmem -benchtime=2s -count=2 . >> BENCH_pipeline.txt
	go run ./cmd/benchjson -o BENCH_pipeline.json < BENCH_pipeline.txt
	go run ./cmd/benchguard -bench BENCH_pipeline.json

# Old-vs-new benchmark comparison against the committed baseline: rerun
# the pipeline benchmarks, print the benchstat-style delta table, and
# apply the same budget. CI uploads the table as a PR artifact. The
# baseline ref defaults to HEAD (right for a local pre-commit run, where
# HEAD still holds the previous artifact); CI points it at the PR base.
BENCH_BASEREF ?= HEAD
bench-compare:
	git show $(BENCH_BASEREF):BENCH_pipeline.json > BENCH_baseline.json
	$(MAKE) bench
	go run ./cmd/benchguard -bench BENCH_pipeline.json -old BENCH_baseline.json > BENCH_compare.txt || { cat BENCH_compare.txt; exit 1; }
	cat BENCH_compare.txt

# The complete benchmark suite (E1-E13 harness + platform + pipeline).
bench-all:
	go test -run '^$$' -bench . -benchmem ./...

# Fault-injection smoke suite: the systematic campaign, the escalation
# ladder, the graceful-degradation experiments and the fail-operational
# availability studies (E13/E14) with the replica fail-over/fail-back
# runtime and the observer quorum, under the race detector (the campaign
# runner fans scenarios out across workers).
chaos:
	go test -race -run 'Campaign|Escalation|LimpHome|Debounce|Supervision|Coverage|E12|E13|E14|FailOver|FailBack|Quorum|KillECU|Ladder|Switchover|ResetECUDemotes' \
		./internal/fault ./internal/health ./internal/experiments ./internal/rte

# Observability smoke: simulate the demo vehicle with the always-on
# flight recorder and a 20ms virtual-time sampler, cut an end-of-run
# diagnostic bundle, and drive the autodiag subcommands over it.
diag:
	go run ./cmd/autosim -demo -horizon 500ms -sample 20ms -bundle DIAG_demo.bundle > /dev/null
	go run ./cmd/autodiag summary DIAG_demo.bundle
	go run ./cmd/autodiag dlt -min info DIAG_demo.bundle > /dev/null
	go run ./cmd/autodiag metrics DIAG_demo.bundle > /dev/null
	go run ./cmd/autodiag series -grep sim_events DIAG_demo.bundle > /dev/null
	go run ./cmd/autodiag chrome -o DIAG_demo.trace.json DIAG_demo.bundle

.PHONY: check lint test bench bench-compare bench-all chaos diag
