# Tier-1 gate plus vet and the race detector — the full pre-merge check.
check:
	go build ./...
	go vet ./...
	go test -race ./...

test:
	go test ./...

# Verification & DSE pipeline benchmarks (see EXPERIMENTS.md "Performance").
# Emits BENCH_pipeline.json (name -> ns/op, allocs/op) alongside the
# human-readable output.
bench:
	go test -run '^$$' -bench 'BenchmarkVerify$$|BenchmarkVerifyDSESweep|BenchmarkDSEDescend|BenchmarkDSEAnnealParallel' -benchmem . > BENCH_pipeline.txt
	go run ./cmd/benchjson -o BENCH_pipeline.json < BENCH_pipeline.txt

# The complete benchmark suite (E1-E10 harness + platform + pipeline).
bench-all:
	go test -run '^$$' -bench . -benchmem ./...

.PHONY: check test bench bench-all
