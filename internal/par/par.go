// Package par provides the bounded fan-out primitive shared by the
// static-verification pipeline (core.Verify) and the design-space
// exploration search (deploy): a GOMAXPROCS-sized worker pool that runs
// indexed jobs and merges results deterministically. Callers pre-size an
// output slice and have job i write only slot i, so the merged output is
// identical to a sequential loop regardless of scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autorte/internal/obs"
)

// poolStats is the pool's shared instrumentation. The counters are
// always declared but only maintained once Observe has been called
// (checking `enabled` is a single atomic load per batch), so the
// uninstrumented hot path pays nothing measurable.
var poolStats struct {
	enabled atomic.Bool
	batches atomic.Uint64 // ForEach calls that dispatched at least one job
	jobs    atomic.Uint64 // jobs executed
	waitNS  atomic.Uint64 // total ns dispatched chunks waited before pickup
	busyNS  atomic.Uint64 // total ns workers spent inside job functions
	busy    atomic.Int64  // workers currently inside a job function
	busyMax atomic.Int64  // high-water mark of busy
	skipped atomic.Uint64 // jobs skipped after a sibling error
}

// Observe registers the pool's occupancy metrics into a registry and
// enables their collection (collection stays enabled for the process
// lifetime; the counters are global because the pool is). Metrics:
//
//	par_batches_total       ForEach invocations
//	par_jobs_total          jobs executed
//	par_jobs_skipped_total  jobs skipped by error cancellation
//	par_queue_wait_ns_total ns dispatched chunks spent queued before a
//	                        worker picked them up (the fan-out path only:
//	                        on the sequential path every job starts the
//	                        moment it is dispatched, so no wait accrues)
//	par_busy_ns_total       ns workers spent executing jobs
//	par_busy_workers        workers inside a job right now
//	par_busy_workers_max    high-water mark of par_busy_workers
func Observe(reg *obs.Registry) {
	poolStats.enabled.Store(true)
	reg.CounterFunc("par_batches_total", "ForEach invocations that dispatched jobs.", poolStats.batches.Load)
	reg.CounterFunc("par_jobs_total", "Jobs executed by the worker pool.", poolStats.jobs.Load)
	reg.CounterFunc("par_jobs_skipped_total", "Jobs skipped after a sibling job error.", poolStats.skipped.Load)
	reg.CounterFunc("par_queue_wait_ns_total", "Nanoseconds dispatched work chunks spent queued before a worker picked them up.", poolStats.waitNS.Load)
	reg.CounterFunc("par_busy_ns_total", "Nanoseconds workers spent inside job functions.", poolStats.busyNS.Load)
	reg.GaugeFunc("par_busy_workers", "Workers currently executing a job.", func() float64 { return float64(poolStats.busy.Load()) })
	reg.GaugeFunc("par_busy_workers_max", "High-water mark of concurrently busy workers.", func() float64 { return float64(poolStats.busyMax.Load()) })
}

// runJob executes one job with occupancy accounting. Queue wait is NOT
// measured here — a job's predecessors on the same worker are execution,
// not queuing, so per-job wait measured from batch start would wrongly
// charge each job with every sibling's runtime (it used to). Pickup
// delay is accounted per dispatched chunk in ForEach instead.
func runJob(instrumented bool, job func(i int) error, i int) error {
	if !instrumented {
		return job(i)
	}
	started := time.Now() //autovet:allow walltime pool busy metric measures the host
	busy := poolStats.busy.Add(1)
	for {
		max := poolStats.busyMax.Load()
		if busy <= max || poolStats.busyMax.CompareAndSwap(max, busy) {
			break
		}
	}
	err := job(i)
	poolStats.busyNS.Add(uint64(time.Since(started).Nanoseconds())) //autovet:allow walltime pool busy metric measures the host
	poolStats.busy.Add(-1)
	poolStats.jobs.Add(1)
	return err
}

// Workers normalizes a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0).
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

const (
	// minFanOut is the smallest batch worth fanning out: below it the
	// goroutine and channel setup costs more than the overlap buys, so
	// smaller batches run on the caller's goroutine.
	minFanOut = 4
	// chunksPerWorker trades dispatch overhead against load balance:
	// each worker's share is split into this many chunks so uneven job
	// costs still spread, while the per-index channel handoff of the old
	// dispatcher (one blocking send per job) is gone.
	chunksPerWorker = 4
)

// chunkSpan is one contiguous dispatched index range [lo, hi).
type chunkSpan struct{ lo, hi int }

// ForEach runs job(0) … job(n-1) on at most workers goroutines
// (normalized via Workers) and blocks until all dispatched jobs return.
// Work is dispatched in index order as contiguous chunks through a
// buffered queue, so dispatch never blocks on a worker and batches below
// minFanOut (or with one worker) run inline on the caller's goroutine.
// After the first job error, jobs that have not yet started are skipped —
// queued chunks are dropped wholesale, so cancellation costs O(chunks),
// not one handoff per remaining job — and jobs already running finish.
// The returned error is the lowest-index error among jobs that ran;
// because chunks are claimed in order, this is the same error a
// sequential loop would have returned whenever at most one job can fail,
// and results written by successful jobs are always deterministic.
func ForEach(workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	instrumented := poolStats.enabled.Load()
	var batchStart time.Time
	if instrumented {
		batchStart = time.Now() //autovet:allow walltime pool batch metric measures the host
		poolStats.batches.Add(1)
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 || n < minFanOut {
		// Inline path: each job starts the moment it is dispatched, so no
		// queue wait accrues (and none is recorded).
		for i := 0; i < n; i++ {
			if err := runJob(instrumented, job, i); err != nil {
				return err
			}
		}
		return nil
	}
	chunk := n / (w * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	// The whole batch is enqueued up front into a buffered channel and the
	// channel closed: dispatch is a non-blocking O(chunks) loop, there is
	// no producer goroutine left to short-circuit on error, and workers
	// drain cancelled chunks with one counter update each.
	spans := make(chan chunkSpan, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		spans <- chunkSpan{lo, hi}
	}
	close(spans)
	var (
		stop     atomic.Bool
		errMu    sync.Mutex
		errIdx   = -1
		firstErr error
	)
	fail := func(i int, err error) {
		errMu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, firstErr = i, err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sp := range spans {
				if stop.Load() {
					// Cancelled: drop the chunk wholesale.
					if instrumented {
						poolStats.skipped.Add(uint64(sp.hi - sp.lo))
					}
					continue
				}
				if instrumented {
					// Queue wait: how long the chunk sat dispatched before
					// any worker was free to start it.
					poolStats.waitNS.Add(uint64(time.Since(batchStart).Nanoseconds())) //autovet:allow walltime pool queue-wait metric measures the host
				}
				for i := sp.lo; i < sp.hi; i++ {
					if stop.Load() {
						if instrumented {
							poolStats.skipped.Add(uint64(sp.hi - i))
						}
						break
					}
					if err := runJob(instrumented, job, i); err != nil {
						fail(i, err)
						if instrumented && i+1 < sp.hi {
							poolStats.skipped.Add(uint64(sp.hi - i - 1))
						}
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
