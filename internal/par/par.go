// Package par provides the bounded fan-out primitive shared by the
// static-verification pipeline (core.Verify) and the design-space
// exploration search (deploy): a GOMAXPROCS-sized worker pool that runs
// indexed jobs and merges results deterministically. Callers pre-size an
// output slice and have job i write only slot i, so the merged output is
// identical to a sequential loop regardless of scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autorte/internal/obs"
)

// poolStats is the pool's shared instrumentation. The counters are
// always declared but only maintained once Observe has been called
// (checking `enabled` is a single atomic load per batch), so the
// uninstrumented hot path pays nothing measurable.
var poolStats struct {
	enabled atomic.Bool
	batches atomic.Uint64 // ForEach calls that dispatched at least one job
	jobs    atomic.Uint64 // jobs executed
	waitNS  atomic.Uint64 // total ns jobs spent eligible before starting
	busyNS  atomic.Uint64 // total ns workers spent inside job functions
	busy    atomic.Int64  // workers currently inside a job function
	busyMax atomic.Int64  // high-water mark of busy
	skipped atomic.Uint64 // jobs skipped after a sibling error
}

// Observe registers the pool's occupancy metrics into a registry and
// enables their collection (collection stays enabled for the process
// lifetime; the counters are global because the pool is). Metrics:
//
//	par_batches_total       ForEach invocations
//	par_jobs_total          jobs executed
//	par_jobs_skipped_total  jobs skipped by error cancellation
//	par_queue_wait_ns_total ns jobs waited between eligibility and start
//	par_busy_ns_total       ns workers spent executing jobs
//	par_busy_workers        workers inside a job right now
//	par_busy_workers_max    high-water mark of par_busy_workers
func Observe(reg *obs.Registry) {
	poolStats.enabled.Store(true)
	reg.CounterFunc("par_batches_total", "ForEach invocations that dispatched jobs.", poolStats.batches.Load)
	reg.CounterFunc("par_jobs_total", "Jobs executed by the worker pool.", poolStats.jobs.Load)
	reg.CounterFunc("par_jobs_skipped_total", "Jobs skipped after a sibling job error.", poolStats.skipped.Load)
	reg.CounterFunc("par_queue_wait_ns_total", "Nanoseconds jobs spent eligible before a worker picked them up.", poolStats.waitNS.Load)
	reg.CounterFunc("par_busy_ns_total", "Nanoseconds workers spent inside job functions.", poolStats.busyNS.Load)
	reg.GaugeFunc("par_busy_workers", "Workers currently executing a job.", func() float64 { return float64(poolStats.busy.Load()) })
	reg.GaugeFunc("par_busy_workers_max", "High-water mark of concurrently busy workers.", func() float64 { return float64(poolStats.busyMax.Load()) })
}

// runJob executes one job with occupancy accounting. batchStart is when
// the job became eligible (the ForEach call); zero batchStart means
// instrumentation is off.
func runJob(batchStart time.Time, job func(i int) error, i int) error {
	if batchStart.IsZero() {
		return job(i)
	}
	started := time.Now() //autovet:allow walltime pool queue-wait metric measures the host
	poolStats.waitNS.Add(uint64(started.Sub(batchStart).Nanoseconds()))
	busy := poolStats.busy.Add(1)
	for {
		max := poolStats.busyMax.Load()
		if busy <= max || poolStats.busyMax.CompareAndSwap(max, busy) {
			break
		}
	}
	err := job(i)
	poolStats.busyNS.Add(uint64(time.Since(started).Nanoseconds())) //autovet:allow walltime pool busy metric measures the host
	poolStats.busy.Add(-1)
	poolStats.jobs.Add(1)
	return err
}

// Workers normalizes a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0).
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEach runs job(0) … job(n-1) on at most workers goroutines
// (normalized via Workers) and blocks until all dispatched jobs return.
// Indices are dispatched in order. After the first job error, jobs that
// have not yet started are skipped (cancellation); jobs already running
// finish. The returned error is the lowest-index error among jobs that
// ran — because dispatch is ordered, this is the same error a sequential
// loop would have returned whenever at most one job can fail, and results
// written by successful jobs are always deterministic.
func ForEach(workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var batchStart time.Time
	if poolStats.enabled.Load() {
		batchStart = time.Now() //autovet:allow walltime pool batch metric measures the host
		poolStats.batches.Add(1)
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := runJob(batchStart, job, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var stop atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if stop.Load() {
					if !batchStart.IsZero() {
						poolStats.skipped.Add(1)
					}
					continue
				}
				if err := runJob(batchStart, job, i); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
