// Package par provides the bounded fan-out primitive shared by the
// static-verification pipeline (core.Verify) and the design-space
// exploration search (deploy): a GOMAXPROCS-sized worker pool that runs
// indexed jobs and merges results deterministically. Callers pre-size an
// output slice and have job i write only slot i, so the merged output is
// identical to a sequential loop regardless of scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0).
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEach runs job(0) … job(n-1) on at most workers goroutines
// (normalized via Workers) and blocks until all dispatched jobs return.
// Indices are dispatched in order. After the first job error, jobs that
// have not yet started are skipped (cancellation); jobs already running
// finish. The returned error is the lowest-index error among jobs that
// ran — because dispatch is ordered, this is the same error a sequential
// loop would have returned whenever at most one job can fail, and results
// written by successful jobs are always deterministic.
func ForEach(workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var stop atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if stop.Load() {
					continue
				}
				if err := job(i); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
