package par

import (
	"testing"

	"autorte/internal/obs"
)

// TestObserveCountsJobs checks the pool metrics after an instrumented
// batch: job and batch counters advance, occupancy high-water is at
// least one, and the in-flight gauge settles back to zero.
func TestObserveCountsJobs(t *testing.T) {
	reg := obs.NewRegistry()
	Observe(reg)
	jobsBefore := poolStats.jobs.Load()
	batchesBefore := poolStats.batches.Load()
	if err := ForEach(4, 16, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := poolStats.jobs.Load() - jobsBefore; got != 16 {
		t.Fatalf("jobs counted %d, want 16", got)
	}
	if got := poolStats.batches.Load() - batchesBefore; got != 1 {
		t.Fatalf("batches counted %d, want 1", got)
	}
	if poolStats.busyMax.Load() < 1 {
		t.Fatal("busy high-water never rose")
	}
	if poolStats.busy.Load() != 0 {
		t.Fatalf("busy gauge = %d after batch, want 0", poolStats.busy.Load())
	}
	// The registry snapshot exposes the same numbers.
	found := false
	for _, s := range reg.Snapshot() {
		if s.Name == "par_jobs_total" && s.Value >= 16 {
			found = true
		}
	}
	if !found {
		t.Fatal("par_jobs_total missing or zero in snapshot")
	}
}
