package par

import (
	"errors"
	"testing"

	"autorte/internal/obs"
)

// TestObserveCountsJobs checks the pool metrics after an instrumented
// batch: job and batch counters advance, occupancy high-water is at
// least one, and the in-flight gauge settles back to zero.
func TestObserveCountsJobs(t *testing.T) {
	reg := obs.NewRegistry()
	Observe(reg)
	jobsBefore := poolStats.jobs.Load()
	batchesBefore := poolStats.batches.Load()
	if err := ForEach(4, 16, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := poolStats.jobs.Load() - jobsBefore; got != 16 {
		t.Fatalf("jobs counted %d, want 16", got)
	}
	if got := poolStats.batches.Load() - batchesBefore; got != 1 {
		t.Fatalf("batches counted %d, want 1", got)
	}
	if poolStats.busyMax.Load() < 1 {
		t.Fatal("busy high-water never rose")
	}
	if poolStats.busy.Load() != 0 {
		t.Fatalf("busy gauge = %d after batch, want 0", poolStats.busy.Load())
	}
	// The registry snapshot exposes the same numbers.
	found := false
	for _, s := range reg.Snapshot() {
		if s.Name == "par_jobs_total" && s.Value >= 16 {
			found = true
		}
	}
	if !found {
		t.Fatal("par_jobs_total missing or zero in snapshot")
	}
}

// TestSequentialPathRecordsNoQueueWait guards the wait-metric fix: on the
// inline (one-worker) path every job starts at dispatch, so the queue-wait
// counter must not move — it used to accumulate each job's predecessors'
// runtimes.
func TestSequentialPathRecordsNoQueueWait(t *testing.T) {
	reg := obs.NewRegistry()
	Observe(reg)
	waitBefore := poolStats.waitNS.Load()
	if err := ForEach(1, 64, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if d := poolStats.waitNS.Load() - waitBefore; d != 0 {
		t.Fatalf("sequential path accrued %dns queue wait, want 0", d)
	}
}

// TestSkippedPlusExecutedCoversBatch checks cancellation accounting: after
// an error, every job in the batch is either executed or counted skipped,
// never both and never dropped.
func TestSkippedPlusExecutedCoversBatch(t *testing.T) {
	reg := obs.NewRegistry()
	Observe(reg)
	jobsBefore := poolStats.jobs.Load()
	skippedBefore := poolStats.skipped.Load()
	const n = 200
	err := ForEach(8, n, func(i int) error {
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	executed := poolStats.jobs.Load() - jobsBefore
	skipped := poolStats.skipped.Load() - skippedBefore
	if executed+skipped != n {
		t.Fatalf("executed %d + skipped %d = %d, want %d", executed, skipped, executed+skipped, n)
	}
	if skipped == 0 {
		t.Fatal("cancellation skipped no jobs")
	}
}
