package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		n := 100
		counts := make([]int32, n)
		if err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachDeterministicMerge(t *testing.T) {
	n := 64
	out := make([]int, n)
	if err := ForEach(8, n, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Every job fails; the reported error must be job 0's, matching the
	// sequential loop, independent of scheduling.
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 16, func(i int) error {
			return fmt.Errorf("job %d", i)
		})
		if err == nil || err.Error() != "job 0" {
			t.Fatalf("workers=%d: err = %v, want job 0", workers, err)
		}
	}
}

func TestForEachCancelsUndispatchedAfterError(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := ForEach(1, 100, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 4 { // sequential path: jobs 0..3, then stop
		t.Fatalf("ran = %d jobs, want 4", ran)
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachChunkedDeterministicAcrossWorkerCounts(t *testing.T) {
	// 257 is coprime with every chunk size in play, so chunk boundaries
	// land differently per worker count; the merged output must not.
	n := 257
	for _, workers := range []int{1, 2, 3, 8, 64} {
		out := make([]int, n)
		if err := ForEach(workers, n, func(i int) error {
			out[i] = 3*i + 1
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != 3*i+1 {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, 3*i+1)
			}
		}
	}
}

func TestForEachSingleFailureMatchesSequential(t *testing.T) {
	// With exactly one failing job, the reported error must be that job's,
	// at any worker count and wherever the failure lands within a chunk.
	boom := errors.New("boom")
	for _, workers := range []int{1, 3, 8} {
		for _, failAt := range []int{0, 17, 99} {
			err := ForEach(workers, 100, func(i int) error {
				if i == failAt {
					return fmt.Errorf("job %d failed: %w", i, boom)
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("workers=%d failAt=%d: err = %v", workers, failAt, err)
			}
			want := fmt.Sprintf("job %d failed: boom", failAt)
			if err.Error() != want {
				t.Fatalf("workers=%d failAt=%d: err = %q, want %q", workers, failAt, err, want)
			}
		}
	}
}
