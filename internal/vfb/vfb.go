// Package vfb implements the Virtual Functional Bus view of a system:
// design-level connectivity checks and the resolution of logical
// connectors onto concrete communication — intra-ECU buffers or inter-ECU
// bus signals — once a deployment mapping exists.
//
// The VFB is the paper's abstraction for location independence (§2): the
// application wiring is fixed here, and only Resolve decides which
// connectors become bus traffic. Moving an SWC between ECUs changes routes,
// never the component code.
package vfb

import (
	"fmt"
	"sort"

	"autorte/internal/model"
)

// Route is the concrete realization of one data element of a connector.
type Route struct {
	Conn model.Connector
	Elem string
	// Local is true when provider and consumer share an ECU.
	Local bool
	// Bus carries the route when remote (the first segment when routed
	// through a gateway).
	Bus string
	// Via names the gateway ECU when source and destination share no bus:
	// the signal travels Bus to Via, then Bus2 onward (the Gateway box of
	// the paper's Figure 1). Empty for single-segment routes.
	Via string
	// Bus2 carries the second segment of a gatewayed route.
	Bus2 string
	// SignalName is the globally unique name for the routed element.
	SignalName string
	// Bits is the packed width of the element.
	Bits int
	// Period is the producing runnable's period in nanoseconds
	// (0 if event-driven).
	Period int64
}

// CheckConnectivity verifies VFB completeness: every required port must
// have exactly one logical provider (AUTOSAR allows unconnected R-ports
// only with explicit defaults; we treat them as design errors). A replica
// group counts as ONE logical provider: when deploy.Replicate fans a
// connector out so the primary and its standbys all feed the same
// consumer port, only the active instance publishes at any instant, so
// the port still sees a single producer stream.
func CheckConnectivity(s *model.System) error {
	// Count-only map on the hot path: connectivity runs inside every
	// verification pass, and a per-port provider slice here was a
	// measurable fraction of the Verify allocs/op budget. The provider
	// list is materialized only for the rare multi-provider port.
	incoming := map[[2]string]int{}
	for _, c := range s.Connectors {
		incoming[[2]string{c.ToSWC, c.ToPort}]++
	}
	for _, comp := range s.Components {
		for _, p := range comp.Ports {
			if p.Direction != model.Required {
				continue
			}
			n := incoming[[2]string{comp.Name, p.Name}]
			if n == 0 {
				return fmt.Errorf("vfb: required port %s.%s is unconnected", comp.Name, p.Name)
			}
			if n > 1 {
				var provs []string
				for _, c := range s.Connectors {
					if c.ToSWC == comp.Name && c.ToPort == p.Name {
						provs = append(provs, c.FromSWC)
					}
				}
				if !oneLogicalProvider(s, provs) {
					return fmt.Errorf("vfb: required port %s.%s has %d providers", comp.Name, p.Name, n)
				}
			}
		}
	}
	return nil
}

// oneLogicalProvider reports whether a set of providing components is one
// replica group: distinct instances that all collapse (via ReplicaOf) to
// the same primary. The same instance wired in twice is still an error.
func oneLogicalProvider(s *model.System, provs []string) bool {
	primary := ""
	seen := map[string]bool{}
	for _, name := range provs {
		if seen[name] {
			return false
		}
		seen[name] = true
		group := name
		if c := s.Component(name); c != nil && c.ReplicaOf != "" {
			group = c.ReplicaOf
		}
		if primary == "" {
			primary = group
		} else if group != primary {
			return false
		}
	}
	return true
}

// Resolve maps every connector element onto a route under the system's
// current mapping. Every component must be mapped, and remote connectors
// need a bus shared by both ECUs.
func Resolve(s *model.System) ([]Route, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return ResolveValidated(s)
}

// pathResult memoizes one ECU pair's resolved communication path for the
// duration of a Resolve call — vehicle topologies route many connectors
// over few ECU pairs, so the shared-bus scan runs once per pair.
type pathResult struct {
	bus, via, bus2 string
	err            error
}

// ResolveValidated is Resolve for callers that have already validated the
// system — the verification pipeline validates once up front and must not
// pay for (or double-report) a second full validation per verify.
func ResolveValidated(s *model.System) ([]Route, error) {
	var routes []Route
	var paths map[[2]string]pathResult
	pathFor := func(srcECU, dstECU string) (string, string, string, error) {
		k := [2]string{srcECU, dstECU}
		if p, ok := paths[k]; ok {
			return p.bus, p.via, p.bus2, p.err
		}
		bus, via, bus2, err := resolvePath(s, srcECU, dstECU)
		if paths == nil {
			paths = map[[2]string]pathResult{}
		}
		paths[k] = pathResult{bus, via, bus2, err}
		return bus, via, bus2, err
	}
	for _, c := range s.Connectors {
		srcECU, ok := s.Mapping[c.FromSWC]
		if !ok {
			return nil, fmt.Errorf("vfb: component %s is not mapped", c.FromSWC)
		}
		dstECU, ok := s.Mapping[c.ToSWC]
		if !ok {
			return nil, fmt.Errorf("vfb: component %s is not mapped", c.ToSWC)
		}
		prov := s.Component(c.FromSWC).Port(c.FromPort)
		req := s.Component(c.ToSWC).Port(c.ToPort)
		if prov.Interface.Kind != model.SenderReceiver {
			// Client-server connectors route the request and response as a
			// pair of events; we model them as a single logical element.
			routes = append(routes, Route{
				Conn: c, Elem: "__call__",
				Local:      srcECU == dstECU,
				SignalName: signalName(c, "__call__"),
				Bits:       32,
			})
			if srcECU != dstECU {
				bus, via, bus2, err := pathFor(srcECU, dstECU)
				if err != nil {
					return nil, err
				}
				routes[len(routes)-1].Bus = bus
				routes[len(routes)-1].Via = via
				routes[len(routes)-1].Bus2 = bus2
			}
			continue
		}
		// One route per data element the requirer consumes.
		for _, el := range req.Interface.Elements {
			r := Route{
				Conn: c, Elem: el.Name,
				Local:      srcECU == dstECU,
				SignalName: signalName(c, el.Name),
				Bits:       el.Type.Bits,
				Period:     producerPeriod(s, s.Component(c.FromSWC), c.FromPort, el.Name),
			}
			if !r.Local {
				bus, via, bus2, err := pathFor(srcECU, dstECU)
				if err != nil {
					return nil, err
				}
				r.Bus, r.Via, r.Bus2 = bus, via, bus2
			}
			routes = append(routes, r)
		}
	}
	sort.Slice(routes, func(i, j int) bool { return routes[i].SignalName < routes[j].SignalName })
	return routes, nil
}

// Template is the mapping-independent part of a Route: everything Resolve
// derives from the VFB wiring alone (signal identity, width, producer
// rate). Incremental re-verification precomputes templates once and only
// re-evaluates the mapping-dependent fields (Local, Bus, Via, Bus2) when
// the deployment changes.
type Template struct {
	Conn       model.Connector
	Elem       string
	SignalName string
	Bits       int
	Period     int64
}

// Templates precomputes one Template per connector element of a validated
// system, sorted by SignalName — the same order and content Resolve gives
// its routes, minus the mapping-dependent fields.
func Templates(s *model.System) []Template {
	var tmpls []Template
	for _, c := range s.Connectors {
		prov := s.Component(c.FromSWC).Port(c.FromPort)
		req := s.Component(c.ToSWC).Port(c.ToPort)
		if prov.Interface.Kind != model.SenderReceiver {
			tmpls = append(tmpls, Template{
				Conn: c, Elem: "__call__",
				SignalName: signalName(c, "__call__"),
				Bits:       32,
			})
			continue
		}
		for _, el := range req.Interface.Elements {
			tmpls = append(tmpls, Template{
				Conn: c, Elem: el.Name,
				SignalName: signalName(c, el.Name),
				Bits:       el.Type.Bits,
				Period:     producerPeriod(s, s.Component(c.FromSWC), c.FromPort, el.Name),
			})
		}
	}
	sort.Slice(tmpls, func(i, j int) bool { return tmpls[i].SignalName < tmpls[j].SignalName })
	return tmpls
}

// Materialize turns a Template into a Route under the given mapping,
// using pathFor to resolve remote ECU pairs (callers memoize it).
func (t Template) Materialize(mapping map[string]string,
	pathFor func(srcECU, dstECU string) (bus, via, bus2 string, err error)) (Route, error) {
	src, ok := mapping[t.Conn.FromSWC]
	if !ok {
		return Route{}, fmt.Errorf("vfb: component %s is not mapped", t.Conn.FromSWC)
	}
	dst, ok := mapping[t.Conn.ToSWC]
	if !ok {
		return Route{}, fmt.Errorf("vfb: component %s is not mapped", t.Conn.ToSWC)
	}
	r := Route{
		Conn: t.Conn, Elem: t.Elem,
		Local:      src == dst,
		SignalName: t.SignalName,
		Bits:       t.Bits,
		Period:     t.Period,
	}
	if !r.Local {
		bus, via, bus2, err := pathFor(src, dst)
		if err != nil {
			return Route{}, err
		}
		r.Bus, r.Via, r.Bus2 = bus, via, bus2
	}
	return r, nil
}

func signalName(c model.Connector, elem string) string {
	return c.FromSWC + "." + c.FromPort + "." + elem + "->" + c.ToSWC + "." + c.ToPort
}

// producerPeriod returns the effective period (ns) of the runnable
// writing the element: event-driven producers inherit their trigger
// chain's rate (model.System.EffectivePeriod), so even signals written
// from data-received runnables get an analyzable rate. Returns 0 only
// when no rate is derivable.
func producerPeriod(s *model.System, swc *model.SWC, port, elem string) int64 {
	for i := range swc.Runnables {
		r := &swc.Runnables[i]
		for _, w := range r.Writes {
			if w.Port == port && (w.Elem == elem || w.Elem == "") {
				return int64(s.EffectivePeriod(swc, r))
			}
		}
	}
	return 0
}

// Path resolves the communication path between two ECUs without routing a
// full system: a directly shared bus when one exists, else a two-segment
// path through a gateway. Deployment search uses this to precompute the
// ECU-pair reachability that Resolve would discover connector by
// connector.
func Path(s *model.System, srcECU, dstECU string) (bus, via, bus2 string, err error) {
	return resolvePath(s, srcECU, dstECU)
}

// resolvePath finds the communication path between two ECUs: a directly
// shared bus when one exists, else a two-segment path through a gateway
// ECU attached to a bus of each side. Longer paths are rejected — in
// practice vehicle topologies gateway between adjacent domain buses only.
func resolvePath(s *model.System, srcECU, dstECU string) (bus, via, bus2 string, err error) {
	if b, err := sharedBus(s, srcECU, dstECU); err == nil {
		return b, "", "", nil
	}
	// Candidate gateways in deterministic order.
	for _, g := range s.ECUs {
		if g.Name == srcECU || g.Name == dstECU {
			continue
		}
		b1, err1 := sharedBus(s, srcECU, g.Name)
		b2, err2 := sharedBus(s, g.Name, dstECU)
		if err1 == nil && err2 == nil && b1 != b2 {
			return b1, g.Name, b2, nil
		}
	}
	return "", "", "", fmt.Errorf("vfb: no path (direct or one-gateway) between ECUs %s and %s", srcECU, dstECU)
}

// sharedBus picks the bus connecting two ECUs, erroring when none exists
// and preferring deterministic (alphabetical) choice when several do.
func sharedBus(s *model.System, a, b string) (string, error) {
	ea, eb := s.ECUByName(a), s.ECUByName(b)
	onA := map[string]bool{}
	for _, bus := range ea.Buses {
		onA[bus] = true
	}
	var shared []string
	for _, bus := range eb.Buses {
		if onA[bus] {
			shared = append(shared, bus)
		}
	}
	if len(shared) == 0 {
		return "", fmt.Errorf("vfb: ECUs %s and %s share no bus", a, b)
	}
	sort.Strings(shared)
	return shared[0], nil
}

// ByBus groups the remote routes per bus — the communication matrix that
// the RTE generator and the schedule synthesizers consume.
func ByBus(routes []Route) map[string][]Route {
	out := map[string][]Route{}
	for _, r := range routes {
		if r.Local {
			continue
		}
		out[r.Bus] = append(out[r.Bus], r)
		if r.Via != "" {
			// The gatewayed second segment loads its bus too.
			out[r.Bus2] = append(out[r.Bus2], r)
		}
	}
	return out
}
