package vfb

import (
	"strings"
	"testing"

	"autorte/internal/model"
	"autorte/internal/sim"
)

func buildSystem() *model.System {
	pi := &model.PortInterface{
		Name: "IfSpeed", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	sensor := &model.SWC{
		Name:  "Sensor",
		Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: pi}},
		Runnables: []model.Runnable{{
			Name: "sample", WCETNominal: sim.US(50),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
			Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
		}},
	}
	ctrl := &model.SWC{
		Name:  "Ctrl",
		Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: pi}},
		Runnables: []model.Runnable{{
			Name: "act", WCETNominal: sim.US(100),
			Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
			Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
		}},
	}
	return &model.System{
		Name:       "sys",
		Interfaces: []*model.PortInterface{pi},
		Components: []*model.SWC{sensor, ctrl},
		ECUs: []*model.ECU{
			{Name: "e1", Speed: 1, Buses: []string{"can0"}},
			{Name: "e2", Speed: 1, Buses: []string{"can0"}},
			{Name: "e3", Speed: 1}, // no bus
		},
		Buses:      []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 500000}},
		Connectors: []model.Connector{{FromSWC: "Sensor", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"}},
		Mapping:    map[string]string{"Sensor": "e1", "Ctrl": "e2"},
	}
}

func TestCheckConnectivity(t *testing.T) {
	s := buildSystem()
	if err := CheckConnectivity(s); err != nil {
		t.Fatal(err)
	}
	s.Connectors = nil
	if err := CheckConnectivity(s); err == nil || !strings.Contains(err.Error(), "unconnected") {
		t.Fatalf("unconnected R-port not caught: %v", err)
	}
	s = buildSystem()
	s.Connectors = append(s.Connectors, s.Connectors[0])
	if err := CheckConnectivity(s); err == nil || !strings.Contains(err.Error(), "providers") {
		t.Fatalf("double-connected R-port not caught: %v", err)
	}
}

// A replica group is one logical provider: the primary and its standbys
// may all feed the same required port. Providers from different groups
// stay rejected.
func TestCheckConnectivityReplicaFanIn(t *testing.T) {
	s := buildSystem()
	sb := *s.Components[0] // standby of Sensor
	sb.Name = "Sensor#1"
	sb.ReplicaOf = "Sensor"
	s.Components = append(s.Components, &sb)
	s.Connectors = append(s.Connectors,
		model.Connector{FromSWC: "Sensor#1", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"})
	s.Mapping["Sensor#1"] = "e2"
	if err := CheckConnectivity(s); err != nil {
		t.Fatalf("replica fan-in rejected: %v", err)
	}
	// An unrelated second provider is still a design error.
	other := *s.Components[0]
	other.Name = "Rogue"
	other.ReplicaOf = ""
	s.Components = append(s.Components, &other)
	s.Connectors = append(s.Connectors,
		model.Connector{FromSWC: "Rogue", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"})
	if err := CheckConnectivity(s); err == nil || !strings.Contains(err.Error(), "providers") {
		t.Fatalf("cross-group fan-in not caught: %v", err)
	}
}

func TestResolveRemote(t *testing.T) {
	s := buildSystem()
	routes, err := Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 {
		t.Fatalf("routes = %d, want 1", len(routes))
	}
	r := routes[0]
	if r.Local || r.Bus != "can0" {
		t.Fatalf("route should be remote over can0: %+v", r)
	}
	if r.Bits != 16 {
		t.Fatalf("bits = %d, want 16", r.Bits)
	}
	if r.Period != int64(sim.MS(10)) {
		t.Fatalf("period = %d, want 10ms", r.Period)
	}
	if !strings.Contains(r.SignalName, "Sensor.out.v") {
		t.Fatalf("signal name %q", r.SignalName)
	}
}

func TestResolveLocalWhenColocated(t *testing.T) {
	s := buildSystem()
	s.Mapping["Ctrl"] = "e1"
	routes, err := Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	if !routes[0].Local || routes[0].Bus != "" {
		t.Fatalf("co-located route should be local: %+v", routes[0])
	}
}

func TestResolveNoSharedBus(t *testing.T) {
	s := buildSystem()
	s.Mapping["Ctrl"] = "e3"
	if _, err := Resolve(s); err == nil || !strings.Contains(err.Error(), "no path") {
		t.Fatalf("missing path not caught: %v", err)
	}
}

func TestResolveThroughGateway(t *testing.T) {
	s := buildSystem()
	// Two domain buses joined by a gateway ECU: the sensor's ECU sits on
	// can0, the controller's on can1, and e2 bridges them.
	s.Buses = append(s.Buses, &model.Bus{Name: "can1", Kind: model.BusCAN, BitRate: 500_000})
	s.ECUs[0].Buses = []string{"can0"}         // e1: source domain
	s.ECUs[1].Buses = []string{"can0", "can1"} // e2: the gateway
	s.ECUs[2].Buses = []string{"can1"}         // e3: destination domain
	s.Mapping["Ctrl"] = "e3"
	routes, err := Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	r := routes[0]
	if r.Via != "e2" || r.Bus != "can0" || r.Bus2 != "can1" {
		t.Fatalf("gateway route wrong: %+v", r)
	}
	// The communication matrix loads both buses.
	m := ByBus(routes)
	if len(m["can0"]) != 1 || len(m["can1"]) != 1 {
		t.Fatalf("gatewayed route not on both buses: %v", m)
	}
}

func TestResolveUnmappedComponent(t *testing.T) {
	s := buildSystem()
	delete(s.Mapping, "Ctrl")
	if _, err := Resolve(s); err == nil || !strings.Contains(err.Error(), "not mapped") {
		t.Fatalf("unmapped component not caught: %v", err)
	}
}

func TestByBusGroupsRemoteOnly(t *testing.T) {
	s := buildSystem()
	routes, _ := Resolve(s)
	m := ByBus(routes)
	if len(m["can0"]) != 1 {
		t.Fatalf("can0 routes = %d, want 1", len(m["can0"]))
	}
	s.Mapping["Ctrl"] = "e1"
	routes, _ = Resolve(s)
	if len(ByBus(routes)) != 0 {
		t.Fatal("local route appeared in bus matrix")
	}
}

func TestResolveDeterministicOrder(t *testing.T) {
	s := buildSystem()
	a, _ := Resolve(s)
	b, _ := Resolve(s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("route order not deterministic")
		}
	}
}
