package trace

import (
	"fmt"
	"math"
	"sort"

	"autorte/internal/sim"
)

// Stats summarizes a sample of durations (latencies, response times).
type Stats struct {
	N           int
	Min, Max    sim.Duration
	Mean        sim.Duration
	StdDev      sim.Duration
	P50, P95    sim.Duration
	P99         sim.Duration
	Jitter      sim.Duration // Max − Min, the paper's notion of timing variability
	MissCount   int          // filled by Summarize from Miss records
	AbortCount  int
	SampleCount int // total activations observed
}

// Compute reduces a sample to Stats. An empty sample yields the zero Stats.
func Compute(sample []sim.Duration) Stats {
	if len(sample) == 0 {
		return Stats{}
	}
	s := make([]sim.Duration, len(sample))
	copy(s, sample)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum, sumSq float64
	for _, v := range s {
		f := float64(v)
		sum += f
		sumSq += f * f
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Stats{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   sim.Duration(mean),
		StdDev: sim.Duration(math.Sqrt(variance)),
		P50:    percentile(s, 0.50),
		P95:    percentile(s, 0.95),
		P99:    percentile(s, 0.99),
		Jitter: s[len(s)-1] - s[0],
	}
}

// percentile returns the nearest-rank percentile of an ascending sample.
func percentile(sorted []sim.Duration, p float64) sim.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summarize computes response-time statistics for one source from a
// recorder, including deadline misses and aborts.
func Summarize(r *Recorder, source string) Stats {
	st := Compute(r.Latencies(source))
	st.MissCount = r.Count(Miss, source)
	st.AbortCount = r.Count(Abort, source)
	st.SampleCount = r.Count(Activate, source)
	return st
}

// String renders the stats on one line.
func (s Stats) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%v mean=%v p95=%v p99=%v max=%v jitter=%v miss=%d abort=%d",
		s.N, s.Min, s.Mean, s.P95, s.P99, s.Max, s.Jitter, s.MissCount, s.AbortCount)
}
