package trace

import (
	"strings"
	"testing"
)

// Markers landing exactly on the window edge `to` used to compute a start
// bucket equal to the bucket count, so the fill loop never ran and the
// event silently vanished from the rendering.
func TestGanttMissMarkerAtWindowEdge(t *testing.T) {
	var r Recorder
	r.Emit(0, Start, "t", 0, "")
	r.Emit(5, Finish, "t", 0, "")
	r.Emit(10, Miss, "t", 1, "") // exactly at to
	var sb strings.Builder
	if err := Gantt(&sb, &r, []string{"t"}, 0, 10, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "!") {
		t.Fatalf("boundary miss marker dropped:\n%s", out)
	}
	// It must land in the final bucket.
	row := strings.Split(strings.TrimRight(out, "\n"), "\n")[1]
	cells := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if cells[len(cells)-1] != '!' {
		t.Fatalf("miss not in final bucket: %q", cells)
	}
}

func TestGanttAbortMarkerAtWindowEdge(t *testing.T) {
	var r Recorder
	r.Emit(0, Start, "t", 0, "")
	r.Emit(10, Abort, "t", 0, "budget") // exactly at to
	var sb strings.Builder
	if err := Gantt(&sb, &r, []string{"t"}, 0, 10, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x") {
		t.Fatalf("boundary abort marker dropped:\n%s", sb.String())
	}
}

// A miss at a non-divisible edge (partial last bucket) must also render.
func TestGanttMissMarkerPartialLastBucket(t *testing.T) {
	var r Recorder
	r.Emit(7, Miss, "t", 0, "")
	var sb strings.Builder
	if err := Gantt(&sb, &r, []string{"t"}, 0, 7, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "!") {
		t.Fatalf("miss in partial last bucket dropped:\n%s", sb.String())
	}
}
