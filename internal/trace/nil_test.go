package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestNilRecorderNoops exercises every documented nil-safe *Recorder
// path: substrates trace unconditionally, so a nil recorder must absorb
// everything and report empty state.
func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	r.Add(Record{At: 1, Kind: Start, Source: "T"})
	r.Emit(2, Finish, "T", 1, "")
	r.Reset()
	if got := r.BySource("T"); got != nil {
		t.Fatalf("BySource on nil = %v, want nil", got)
	}
	if got := r.Count(Finish, ""); got != 0 {
		t.Fatalf("Count on nil = %d, want 0", got)
	}
	if got := r.Latencies("T"); got != nil {
		t.Fatalf("Latencies on nil = %v, want nil", got)
	}
	if got := ChromeEvents(r); got != nil {
		t.Fatalf("ChromeEvents on nil = %v, want nil", got)
	}
	var sb strings.Builder
	if err := r.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Fatal("nil WriteChrome must still emit a valid empty trace document")
	}
}

// TestSummarizeEmpty pins the zero-record contract: Summarize on a
// recorder with no records (and on a nil recorder) yields all-zero
// stats — MissCount, AbortCount and SampleCount included — not a panic.
func TestSummarizeEmpty(t *testing.T) {
	for name, r := range map[string]*Recorder{"empty": {}, "nil": nil} {
		st := Summarize(r, "Task.run")
		if st.N != 0 || st.MissCount != 0 || st.AbortCount != 0 || st.SampleCount != 0 {
			t.Fatalf("%s recorder: Summarize = %+v, want all zero", name, st)
		}
		if st.String() != "n=0" {
			t.Fatalf("%s recorder: String() = %q, want n=0", name, st.String())
		}
	}
}

// TestStatsStringReportsAborts pins the satellite fix: the one-line
// rendering must include abort counts, not just misses.
func TestStatsStringReportsAborts(t *testing.T) {
	r := &Recorder{}
	r.Emit(0, Activate, "T", 1, "")
	r.Emit(10, Finish, "T", 1, "")
	r.Emit(20, Activate, "T", 2, "")
	r.Emit(25, Abort, "T", 2, "budget")
	r.Emit(30, Miss, "T", 2, "")
	st := Summarize(r, "T")
	if st.AbortCount != 1 || st.MissCount != 1 {
		t.Fatalf("counts = %+v", st)
	}
	s := st.String()
	if !strings.Contains(s, "miss=1") || !strings.Contains(s, "abort=1") {
		t.Fatalf("String() under-reports failures: %q", s)
	}
}

// TestChromeEventsShape checks the trace converter end to end: slices
// from Start..Finish pairs, instant markers for misses, fractional-µs
// timestamps, and a document Perfetto can parse as JSON.
func TestChromeEventsShape(t *testing.T) {
	r := &Recorder{}
	r.Emit(1_000, Start, "A.run", 1, "")
	r.Emit(3_500, Preempt, "A.run", 1, "")
	r.Emit(4_000, Resume, "A.run", 1, "")
	r.Emit(6_000, Finish, "A.run", 1, "")
	r.Emit(7_000, Miss, "B.run", 1, "")
	events := ChromeEvents(r)
	var slices, instants int
	for _, ev := range events {
		switch ev.Phase {
		case "X":
			slices++
			if ev.Dur <= 0 {
				t.Fatalf("non-positive slice duration: %+v", ev)
			}
		case "i":
			instants++
		}
	}
	if slices != 2 {
		t.Fatalf("slices = %d, want 2 (Start..Preempt, Resume..Finish)", slices)
	}
	if instants != 1 {
		t.Fatalf("instants = %d, want 1 (the miss)", instants)
	}
	var sb strings.Builder
	if err := r.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome document does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty chrome document")
	}
}
