package trace

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"autorte/internal/sim"
)

func TestLatenciesPairsActivateFinish(t *testing.T) {
	var r Recorder
	r.Emit(0, Activate, "t1", 0, "")
	r.Emit(10, Finish, "t1", 0, "")
	r.Emit(100, Activate, "t1", 1, "")
	r.Emit(130, Finish, "t1", 1, "")
	r.Emit(200, Activate, "t1", 2, "") // never finishes
	lats := r.Latencies("t1")
	if len(lats) != 2 || lats[0] != 10 || lats[1] != 30 {
		t.Fatalf("latencies = %v, want [10 30]", lats)
	}
}

func TestLatenciesIgnoresOtherSources(t *testing.T) {
	var r Recorder
	r.Emit(0, Activate, "a", 0, "")
	r.Emit(5, Activate, "b", 0, "")
	r.Emit(7, Finish, "b", 0, "")
	r.Emit(10, Finish, "a", 0, "")
	if got := r.Latencies("a"); len(got) != 1 || got[0] != 10 {
		t.Fatalf("latencies(a) = %v, want [10]", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(0, Activate, "x", 0, "")
	r.Add(Record{})
	r.Reset()
	if r.Count(Activate, "") != 0 || r.Latencies("x") != nil || r.BySource("x") != nil {
		t.Fatal("nil recorder should be inert")
	}
}

func TestCountFiltersByKindAndSource(t *testing.T) {
	var r Recorder
	r.Emit(0, Miss, "a", 0, "")
	r.Emit(1, Miss, "b", 0, "")
	r.Emit(2, Finish, "a", 0, "")
	if r.Count(Miss, "a") != 1 || r.Count(Miss, "") != 2 || r.Count(Finish, "b") != 0 {
		t.Fatal("count filter wrong")
	}
}

func TestCountIsIncremental(t *testing.T) {
	// Count must agree with a linear scan at every point, including after
	// Reset, since it now reads the incremental index instead of scanning.
	var r Recorder
	scan := func(kind Kind, source string) int {
		n := 0
		for _, rec := range r.Records {
			if rec.Kind == kind && (source == "" || rec.Source == source) {
				n++
			}
		}
		return n
	}
	rnd := sim.NewRand(7)
	sources := []string{"a", "b", "c"}
	for i := 0; i < 200; i++ {
		r.Emit(sim.Time(i), Kind(rnd.Intn(9)), sources[rnd.Intn(3)], int64(i), "")
	}
	for k := Activate; k <= Error; k++ {
		for _, src := range []string{"", "a", "b", "c", "ghost"} {
			if got, want := r.Count(k, src), scan(k, src); got != want {
				t.Fatalf("Count(%v,%q) = %d, scan says %d", k, src, got, want)
			}
		}
	}
	r.Reset()
	if r.Count(Finish, "") != 0 || r.Count(Finish, "a") != 0 {
		t.Fatal("counts survived Reset")
	}
	r.Emit(0, Finish, "a", 0, "")
	if r.Count(Finish, "") != 1 || r.Count(Finish, "a") != 1 {
		t.Fatal("counts wrong after Reset + Emit")
	}
}

func TestComputeStats(t *testing.T) {
	s := Compute([]sim.Duration{10, 20, 30, 40, 50})
	if s.N != 5 || s.Min != 10 || s.Max != 50 || s.Mean != 30 || s.Jitter != 40 {
		t.Fatalf("bad stats: %+v", s)
	}
	if s.P50 != 30 {
		t.Errorf("P50 = %v, want 30", s.P50)
	}
}

func TestComputeEmpty(t *testing.T) {
	s := Compute(nil)
	if s.N != 0 || s.Max != 0 {
		t.Fatalf("empty sample should give zero stats: %+v", s)
	}
}

func TestComputeDoesNotMutateInput(t *testing.T) {
	in := []sim.Duration{30, 10, 20}
	Compute(in)
	if in[0] != 30 || in[1] != 10 || in[2] != 20 {
		t.Fatalf("Compute mutated its input: %v", in)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := sim.NewRand(seed)
		s := make([]sim.Duration, n)
		for i := range s {
			s[i] = sim.Duration(r.Intn(1000))
		}
		st := Compute(s)
		// Invariants: min <= p50 <= p95 <= p99 <= max, jitter = max-min.
		return st.Min <= st.P50 && st.P50 <= st.P95 && st.P95 <= st.P99 &&
			st.P99 <= st.Max && st.Jitter == st.Max-st.Min &&
			st.Min <= st.Mean && st.Mean <= st.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	s := make([]sim.Duration, 100)
	for i := range s {
		s[i] = sim.Duration(i + 1) // 1..100
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p := percentile(s, 0.95); p != 95 {
		t.Errorf("p95 of 1..100 = %v, want 95", p)
	}
	if p := percentile(s, 0.99); p != 99 {
		t.Errorf("p99 of 1..100 = %v, want 99", p)
	}
}

func TestSummarizeIncludesMisses(t *testing.T) {
	var r Recorder
	r.Emit(0, Activate, "t", 0, "")
	r.Emit(10, Finish, "t", 0, "")
	r.Emit(100, Activate, "t", 1, "")
	r.Emit(150, Miss, "t", 1, "")
	r.Emit(160, Finish, "t", 1, "")
	st := Summarize(&r, "t")
	if st.MissCount != 1 || st.SampleCount != 2 || st.N != 2 {
		t.Fatalf("summarize wrong: %+v", st)
	}
}

func TestWriteCSV(t *testing.T) {
	var r Recorder
	r.Emit(5, Activate, "t", 0, "a,b")
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time_ns,kind,source,job,info\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "5,activate,t,0,a;b\n") {
		t.Fatalf("bad row: %q", out)
	}
}

func TestKindString(t *testing.T) {
	if Activate.String() != "activate" || Miss.String() != "miss" {
		t.Fatal("kind names wrong")
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestStatsString(t *testing.T) {
	if got := (Stats{}).String(); got != "n=0" {
		t.Fatalf("empty stats string = %q", got)
	}
	s := Compute([]sim.Duration{sim.MS(1), sim.MS(2)})
	if !strings.Contains(s.String(), "n=2") {
		t.Fatalf("stats string missing n: %q", s.String())
	}
}

func TestGanttRendersExecution(t *testing.T) {
	var r Recorder
	// Task a: runs 0-3, preempted, resumes 5-7, finishes.
	r.Emit(0, Activate, "a", 0, "")
	r.Emit(0, Start, "a", 0, "")
	r.Emit(3, Preempt, "a", 0, "")
	r.Emit(5, Resume, "a", 0, "")
	r.Emit(7, Finish, "a", 0, "")
	// Task b: runs 3-5, misses at 9.
	r.Emit(3, Start, "b", 0, "")
	r.Emit(5, Finish, "b", 0, "")
	r.Emit(9, Miss, "b", 1, "")
	var sb strings.Builder
	if err := Gantt(&sb, &r, nil, 0, 10, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), out)
	}
	rowA, rowB := lines[1], lines[2]
	if !strings.Contains(rowA, "###") || !strings.Contains(rowA, "##|") == strings.Contains(rowA, "####") {
		t.Logf("row a: %q", rowA)
	}
	if !strings.Contains(rowA, "#") {
		t.Fatalf("task a shows no execution: %q", rowA)
	}
	if !strings.Contains(rowB, "!") {
		t.Fatalf("task b shows no miss marker: %q", rowB)
	}
}

func TestGanttValidation(t *testing.T) {
	var r Recorder
	var sb strings.Builder
	if err := Gantt(&sb, &r, nil, 0, 10, 0); err == nil {
		t.Fatal("zero resolution accepted")
	}
	if err := Gantt(&sb, &r, nil, 10, 5, 1); err == nil {
		t.Fatal("inverted window accepted")
	}
	if err := Gantt(&sb, &r, nil, 0, sim.Second, 1); err == nil {
		t.Fatal("billion-bucket gantt accepted")
	}
}

func TestGanttAbortMarker(t *testing.T) {
	var r Recorder
	r.Emit(0, Start, "t", 0, "")
	r.Emit(4, Abort, "t", 0, "budget")
	var sb strings.Builder
	if err := Gantt(&sb, &r, []string{"t"}, 0, 10, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x") {
		t.Fatalf("abort marker missing:\n%s", sb.String())
	}
}
