package trace

import (
	"io"
	"sort"

	"autorte/internal/obs"
)

// ChromeEvents converts a recorder's virtual-time records into Chrome
// trace events: one viewer lane (thread) per source, execution slices
// reconstructed from Start/Resume..Preempt/Finish/Abort pairs, and
// instant markers for activations, deadline misses, aborts, drops and
// errors. Virtual nanoseconds map to trace microseconds fractionally, so
// sub-µs slices survive. A nil recorder yields no events.
func ChromeEvents(r *Recorder) []obs.TraceEvent {
	if r == nil {
		return nil
	}
	var sources []string
	seen := map[string]bool{}
	for _, rec := range r.Records {
		if !seen[rec.Source] {
			seen[rec.Source] = true
			sources = append(sources, rec.Source)
		}
	}
	sort.Strings(sources)
	tid := make(map[string]int64, len(sources))
	events := []obs.TraceEvent{obs.ProcessName(1, "autorte platform")}
	for i, s := range sources {
		tid[s] = int64(i + 1)
		events = append(events, obs.ThreadName(1, tid[s], s))
	}
	us := func(t int64) float64 { return float64(t) / 1e3 }
	running := map[string]int64{} // source -> slice start, virtual ns
	const notRunning = -1
	for s := range seen {
		running[s] = notRunning
	}
	slice := func(src string, from, to int64) {
		events = append(events, obs.TraceEvent{
			Name: "run", Cat: "exec", Phase: "X",
			TS: us(from), Dur: us(to - from), PID: 1, TID: tid[src],
		})
	}
	instant := func(src, name string, at int64, args map[string]any) {
		events = append(events, obs.TraceEvent{
			Name: name, Cat: "marker", Phase: "i", Scope: "t",
			TS: us(at), PID: 1, TID: tid[src], Args: args,
		})
	}
	for _, rec := range r.Records {
		src, at := rec.Source, int64(rec.At)
		switch rec.Kind {
		case Start, Resume:
			running[src] = at
		case Preempt, Finish:
			if running[src] != notRunning {
				slice(src, running[src], at)
				running[src] = notRunning
			}
		case Abort:
			if running[src] != notRunning {
				slice(src, running[src], at)
				running[src] = notRunning
			}
			instant(src, "abort", at, argInfo(rec))
		case Miss:
			instant(src, "deadline miss", at, argInfo(rec))
		case Drop:
			instant(src, "drop", at, argInfo(rec))
		case Error:
			instant(src, "error", at, argInfo(rec))
		case Recover:
			instant(src, "recover", at, argInfo(rec))
		case Activate:
			// Activation is queueing, not execution: slices open at Start.
		}
	}
	// Close slices still running at the last recorded instant.
	var last int64
	for _, rec := range r.Records {
		if int64(rec.At) > last {
			last = int64(rec.At)
		}
	}
	for _, s := range sources {
		if running[s] != notRunning && last > running[s] {
			slice(s, running[s], last)
		}
	}
	return events
}

func argInfo(rec Record) map[string]any {
	if rec.Info == "" {
		return map[string]any{"job": rec.Job}
	}
	return map[string]any{"job": rec.Job, "info": rec.Info}
}

// WriteChrome writes the recorder's records as a Chrome trace-event JSON
// document loadable in chrome://tracing and Perfetto. Safe on a nil
// recorder (writes an empty trace).
func (r *Recorder) WriteChrome(w io.Writer) error {
	if r == nil {
		r = &Recorder{}
	}
	return obs.WriteChromeTrace(w, ChromeEvents(r))
}
