package trace

import (
	"fmt"
	"io"
	"sort"

	"autorte/internal/sim"
)

// Gantt renders an ASCII timeline of task execution from a recorder:
// one row per source, one character per resolution bucket.
//
//	'#' executing   '.' ready/preempted   '!' deadline miss
//	'x' aborted     ' ' inactive
//
// Sources defaults to every source seen in the window when nil.
func Gantt(w io.Writer, r *Recorder, sources []string, from, to sim.Time, resolution sim.Duration) error {
	if resolution <= 0 || to <= from {
		return fmt.Errorf("trace: bad gantt window")
	}
	buckets := int((to - from + resolution - 1) / resolution)
	if buckets > 4096 {
		return fmt.Errorf("trace: gantt window needs %d buckets; coarsen the resolution", buckets)
	}
	if sources == nil {
		seen := map[string]bool{}
		for _, rec := range r.Records {
			if rec.At >= from && rec.At <= to && !seen[rec.Source] {
				seen[rec.Source] = true
				sources = append(sources, rec.Source)
			}
		}
		sort.Strings(sources)
	}
	width := 0
	for _, s := range sources {
		if len(s) > width {
			width = len(s)
		}
	}
	fmt.Fprintf(w, "%-*s  |%s| %v..%v (1 char = %v)\n", width, "task", timeAxis(buckets), from, to, resolution)
	for _, src := range sources {
		row := make([]byte, buckets)
		for i := range row {
			row[i] = ' '
		}
		// Reconstruct execution intervals from Start/Resume..Preempt/
		// Finish/Abort pairs, walking the source's records in order.
		var runningSince sim.Time = -1
		mark := func(a, b sim.Time, ch byte) {
			if b < from || a > to {
				return
			}
			if a < from {
				a = from
			}
			if b > to {
				b = to
			}
			i0 := int((a - from) / resolution)
			i1 := int((b - from) / resolution)
			// A point event exactly at the window edge `to` lands on bucket
			// index == buckets; clamp both ends so a deadline miss at the
			// boundary still renders instead of silently vanishing.
			if i0 >= buckets {
				i0 = buckets - 1
			}
			if i1 >= buckets {
				i1 = buckets - 1
			}
			for i := i0; i <= i1; i++ {
				if row[i] == ' ' || ch != '#' { // misses/aborts overwrite
					row[i] = ch
				}
			}
		}
		for _, rec := range r.Records {
			if rec.Source != src {
				continue
			}
			switch rec.Kind {
			case Start, Resume:
				runningSince = rec.At
			case Preempt:
				if runningSince >= 0 {
					mark(runningSince, rec.At, '#')
					runningSince = -1
				}
			case Finish:
				if runningSince >= 0 {
					mark(runningSince, rec.At, '#')
					runningSince = -1
				}
			case Abort:
				if runningSince >= 0 {
					mark(runningSince, rec.At, '#')
					runningSince = -1
				}
				mark(rec.At, rec.At, 'x')
			case Miss:
				mark(rec.At, rec.At, '!')
			default:
				// Activate, Drop and Error have no execution extent to
				// draw on the row.
			}
		}
		if runningSince >= 0 {
			mark(runningSince, to, '#')
		}
		fmt.Fprintf(w, "%-*s  |%s|\n", width, src, row)
	}
	return nil
}

func timeAxis(buckets int) []byte {
	axis := make([]byte, buckets)
	for i := range axis {
		switch {
		case i%10 == 0:
			axis[i] = '+'
		default:
			axis[i] = '-'
		}
	}
	return axis
}
