// Package trace records timed events emitted by the simulated platform and
// reduces them to the latency, jitter and deadline statistics the
// experiments report.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"autorte/internal/sim"
)

// Kind classifies a trace record.
type Kind uint8

// Record kinds, covering the task lifecycle, message transmission and
// fault handling.
const (
	Activate Kind = iota // job released / message queued
	Start                // first got the resource
	Preempt              // lost the resource before finishing
	Resume               // got the resource back
	Finish               // completed
	Abort                // killed (budget exhaustion, fault)
	Miss                 // deadline passed before Finish
	Drop                 // discarded before transmission/start
	Error                // fault detected / error reported
	Recover              // recovery action performed (restart, reset, degrade)
)

var kindNames = [...]string{"activate", "start", "preempt", "resume", "finish", "abort", "miss", "drop", "error", "recover"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindMask is a bit set of record kinds, for selective sinks.
type KindMask uint16

// MaskOf builds a mask containing the given kinds.
func MaskOf(kinds ...Kind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Has reports whether k is in the mask.
func (m KindMask) Has(k Kind) bool { return m&(1<<k) != 0 }

// Record is one trace entry.
type Record struct {
	At     sim.Time
	Kind   Kind
	Source string // task, message or component name
	Job    int64  // per-source job/instance counter
	Info   string // optional detail (e.g. fault kind)
}

// Recorder accumulates records. The zero value is ready to use. A nil
// *Recorder is valid and discards everything, so substrates can trace
// unconditionally.
//
//autovet:nilsafe
type Recorder struct {
	Records []Record

	// Sink, when set, observes records as they are added — the feed of
	// the flight recorder's span ring. It runs on the kernel goroutine;
	// it must not call back into the recorder.
	Sink func(Record)

	// SinkKinds restricts Sink to the masked kinds (MaskOf). Zero means
	// every kind. The mask is checked before the indirect call, which is
	// what keeps a selective sink off the per-record hot path: Add runs
	// for every activation and completion the platform makes.
	SinkKinds KindMask

	// counts indexes records by kind (all sources) and by (kind, source)
	// so Count is O(1): supervision and health monitors poll counts every
	// window, which would otherwise rescan the whole trace each time.
	// Maintained by Add; callers must not append to Records directly.
	counts map[countKey]int
}

// countKey indexes the incremental counters; an empty source holds the
// all-sources total for a kind.
type countKey struct {
	kind   Kind
	source string
}

// Add appends a record. Safe on a nil receiver (no-op).
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	r.Records = append(r.Records, rec)
	if r.counts == nil {
		r.counts = map[countKey]int{}
	}
	if rec.Source != "" {
		r.counts[countKey{rec.Kind, rec.Source}]++
	}
	r.counts[countKey{rec.Kind, ""}]++
	if r.Sink != nil && (r.SinkKinds == 0 || r.SinkKinds.Has(rec.Kind)) {
		r.Sink(rec)
	}
}

// Emit is shorthand for Add. Safe on a nil receiver (no-op).
func (r *Recorder) Emit(at sim.Time, kind Kind, source string, job int64, info string) {
	if r == nil {
		return
	}
	r.Add(Record{At: at, Kind: kind, Source: source, Job: job, Info: info})
}

// Reset discards all records, keeping capacity.
func (r *Recorder) Reset() {
	if r != nil {
		r.Records = r.Records[:0]
		r.counts = nil
	}
}

// BySource returns the records of one source, in order.
func (r *Recorder) BySource(source string) []Record {
	if r == nil {
		return nil
	}
	var out []Record
	for _, rec := range r.Records {
		if rec.Source == source {
			out = append(out, rec)
		}
	}
	return out
}

// Count returns how many records of the given kind a source produced.
// An empty source matches all sources. O(1): counts are maintained
// incrementally by Add, so per-window supervision polls stay cheap no
// matter how long the trace grows.
func (r *Recorder) Count(kind Kind, source string) int {
	if r == nil {
		return 0
	}
	return r.counts[countKey{kind, source}]
}

// WriteCSV writes all records as CSV. Safe on a nil receiver (writes
// the header only).
func (r *Recorder) WriteCSV(w io.Writer) error {
	if r == nil {
		r = &Recorder{}
	}
	if _, err := io.WriteString(w, "time_ns,kind,source,job,info\n"); err != nil {
		return err
	}
	for _, rec := range r.Records {
		info := strings.ReplaceAll(rec.Info, ",", ";")
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%d,%s\n", int64(rec.At), rec.Kind, rec.Source, rec.Job, info); err != nil {
			return err
		}
	}
	return nil
}

// Latencies pairs Activate with the matching Finish per (source, job) and
// returns finish − activate for every completed job of the source, in job
// order. Jobs that never finished are skipped.
func (r *Recorder) Latencies(source string) []sim.Duration {
	if r == nil {
		return nil
	}
	type key struct{ job int64 }
	act := map[int64]sim.Time{}
	var done []struct {
		job int64
		lat sim.Duration
	}
	for _, rec := range r.Records {
		if rec.Source != source {
			continue
		}
		switch rec.Kind {
		case Activate:
			act[rec.Job] = rec.At
		case Finish:
			if a, ok := act[rec.Job]; ok {
				done = append(done, struct {
					job int64
					lat sim.Duration
				}{rec.Job, rec.At - a})
				delete(act, rec.Job)
			}
		default:
			// Only the Activate->Finish pair defines latency; scheduling
			// detail in between does not move either endpoint.
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].job < done[j].job })
	out := make([]sim.Duration, len(done))
	for i, d := range done {
		out[i] = d.lat
	}
	_ = key{}
	return out
}
