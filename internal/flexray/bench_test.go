package flexray

import (
	"fmt"
	"testing"

	"autorte/internal/sim"
)

// BenchmarkBusSimulation measures one virtual second of a mixed
// static/dynamic FlexRay cycle.
func BenchmarkBusSimulation(b *testing.B) {
	cfg := Config{
		StaticSlots: 8, SlotLength: sim.US(100),
		Minislots: 40, MinislotLength: sim.US(5), NIT: sim.US(100),
	}
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		bus := MustNewBus(k, "fr0", cfg, nil)
		for s := 1; s <= 8; s++ {
			bus.MustAddFrame(&Frame{
				Name: fmt.Sprintf("s%d", s), Kind: Static, SlotID: s, Repetition: 1,
				Period: sim.MS(2),
			})
		}
		for d := 0; d < 4; d++ {
			bus.MustAddFrame(&Frame{
				Name: fmt.Sprintf("d%d", d), Kind: Dynamic, FrameID: 9 + d, Length: 4,
				Period: sim.MS(5),
			})
		}
		bus.Start()
		k.Run(sim.Second)
	}
}

// BenchmarkSynthesize measures static-schedule synthesis for 64 signals.
func BenchmarkSynthesize(b *testing.B) {
	cfg := Config{
		StaticSlots: 16, SlotLength: sim.US(100),
		Minislots: 40, MinislotLength: sim.US(5), NIT: sim.US(100),
	}
	var sigs []Signal
	for i := 0; i < 64; i++ {
		sigs = append(sigs, Signal{Name: fmt.Sprintf("sig%d", i), Period: sim.Duration(10+i%40) * sim.Millisecond})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(cfg, sigs); err != nil {
			b.Fatal(err)
		}
	}
}
