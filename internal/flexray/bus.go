package flexray

import (
	"fmt"
	"sort"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

// Bus simulates one FlexRay channel: an endless sequence of communication
// cycles, each running the static slot table and then minislot arbitration
// for the dynamic segment.
type Bus struct {
	Name  string
	Cfg   Config
	Trace *trace.Recorder
	// Mute drops transmissions of the listed senders (failed node or bus
	// guardian action).
	Mute map[string]bool
	// ErrorInjector, when set, is consulted once per physical channel a
	// frame transmits on: returning true corrupts that channel's copy,
	// which the receiver's frame CRC discards. The frame is delivered iff
	// at least one alive channel carries a clean copy — FlexRay has no
	// retransmission, so an all-channels-corrupted instance is lost.
	ErrorInjector func(f *Frame, ch Channel, at sim.Time) bool

	k       *sim.Kernel
	frames  []*Frame
	queued  map[*Frame][]queuedInstance
	started bool
	cycle   int
	// channel failure times (0 = healthy); dual-channel dependability.
	failedA, failedB sim.Time
}

// FailChannel kills one physical channel from time at on. Frames assigned
// only to that channel stop being delivered; ChannelAB frames survive on
// the other channel.
func (b *Bus) FailChannel(ch Channel, at sim.Time) {
	switch ch {
	case ChannelA:
		b.failedA = at
	case ChannelB:
		b.failedB = at
	case ChannelAB:
		b.failedA, b.failedB = at, at
	}
}

// channelAlive reports whether a frame has at least one working channel
// at time t.
func (b *Bus) channelAlive(f *Frame, t sim.Time) bool {
	aOK := b.failedA == 0 || t < b.failedA
	bOK := b.failedB == 0 || t < b.failedB
	switch f.Channel {
	case ChannelA:
		return aOK
	case ChannelB:
		return bOK
	default:
		return aOK || bOK
	}
}

type queuedInstance struct {
	at      sim.Time
	job     int64
	payload []byte
}

// NewBus creates a FlexRay channel on the kernel.
func NewBus(k *sim.Kernel, name string, cfg Config, rec *trace.Recorder) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bus{Name: name, Cfg: cfg, Trace: rec, k: k, queued: map[*Frame][]queuedInstance{}}, nil
}

// MustNewBus panics on configuration error.
func MustNewBus(k *sim.Kernel, name string, cfg Config, rec *trace.Recorder) *Bus {
	b, err := NewBus(k, name, cfg, rec)
	if err != nil {
		panic(err)
	}
	return b
}

// Kernel returns the simulation kernel.
func (b *Bus) Kernel() *sim.Kernel { return b.k }

// AddFrame registers a frame stream; static slot conflicts are rejected.
func (b *Bus) AddFrame(f *Frame) error {
	if b.started {
		return fmt.Errorf("flexray: bus %s: AddFrame after Start", b.Name)
	}
	if err := f.validate(b.Cfg); err != nil {
		return err
	}
	for _, other := range b.frames {
		if other.Name == f.Name {
			return fmt.Errorf("flexray: bus %s: duplicate frame %s", b.Name, f.Name)
		}
		if f.Kind == Static && other.Kind == Static && other.SlotID == f.SlotID &&
			channelsOverlap(f.Channel, other.Channel) {
			// Slot sharing is allowed only when the (base, repetition)
			// patterns never coincide on a shared channel.
			if cyclesCollide(f, other) {
				return fmt.Errorf("flexray: bus %s: frames %s and %s collide in slot %d", b.Name, other.Name, f.Name, f.SlotID)
			}
		}
		if f.Kind == Dynamic && other.Kind == Dynamic && other.FrameID == f.FrameID {
			return fmt.Errorf("flexray: bus %s: duplicate dynamic FrameID %d", b.Name, f.FrameID)
		}
	}
	b.frames = append(b.frames, f)
	return nil
}

// MustAddFrame is AddFrame that panics on error.
func (b *Bus) MustAddFrame(f *Frame) {
	if err := b.AddFrame(f); err != nil {
		panic(err)
	}
}

// channelsOverlap reports whether two channel assignments share a
// physical channel.
func channelsOverlap(a, b Channel) bool {
	if a == ChannelAB || b == ChannelAB {
		return true
	}
	return a == b
}

// cyclesCollide reports whether two static frames ever own the same cycle.
func cyclesCollide(a, c *Frame) bool {
	for cyc := 0; cyc < MaxCycle; cyc++ {
		if a.occupies(cyc) && c.occupies(cyc) {
			return true
		}
	}
	return false
}

// Frames returns the registered frame streams.
func (b *Bus) Frames() []*Frame { return b.frames }

// Cycle returns the current cycle counter (modulo 64).
func (b *Bus) Cycle() int { return b.cycle % MaxCycle }

// Start begins cycle execution and periodic queuing.
func (b *Bus) Start() {
	if b.started {
		return
	}
	b.started = true
	for _, f := range b.frames {
		if f.Period > 0 {
			b.schedulePeriodic(f, f.Offset)
		}
	}
	b.runCycle(0, 0)
}

func (b *Bus) schedulePeriodic(f *Frame, at sim.Time) {
	b.k.AtPrio(at, 10, func() {
		b.Queue(f)
		b.schedulePeriodic(f, at+f.Period)
	})
}

// Queue enqueues one payload instance of f. For static frames the payload
// rides the next owned slot; for dynamic frames it arbitrates in the next
// dynamic segment.
func (b *Bus) Queue(f *Frame) { b.QueuePayload(f, nil) }

// QueuePayload enqueues an instance carrying an application payload.
func (b *Bus) QueuePayload(f *Frame, payload []byte) {
	now := b.k.Now()
	job := f.nextJob
	f.nextJob++
	b.Trace.Emit(now, trace.Activate, f.Name, job, "")
	if b.Mute[f.sender] {
		b.Trace.Emit(now, trace.Drop, f.Name, job, "node muted")
		return
	}
	inst := queuedInstance{at: now, job: job, payload: payload}
	b.queued[f] = append(b.queued[f], inst)
	if d := f.relativeDeadline(); d > 0 {
		b.k.AtPrio(now+d, 20, func() {
			for _, q := range b.queued[f] {
				if q.job == job {
					b.Trace.Emit(b.k.Now(), trace.Miss, f.Name, job, "")
					return
				}
			}
		})
	}
}

// runCycle executes communication cycle n starting at virtual time start.
func (b *Bus) runCycle(n int, start sim.Time) {
	b.cycle = n
	// Static segment: each slot delivers the owning frame's queued
	// payloads at slot end.
	for _, f := range b.frames {
		if !f.occupies(n % MaxCycle) {
			continue
		}
		f := f
		slotEnd := start + sim.Duration(f.SlotID)*b.Cfg.SlotLength
		slotStart := slotEnd - b.Cfg.SlotLength
		b.k.AtPrio(slotStart, 30, func() { b.deliver(f, b.k.Now()+b.Cfg.SlotLength) })
	}
	// Dynamic segment: minislot arbitration evaluated at segment start.
	if b.Cfg.Minislots > 0 {
		dynStart := start + b.Cfg.DynamicStart()
		b.k.AtPrio(dynStart, 30, func() { b.runDynamic() })
	}
	next := start + b.Cfg.CycleLength()
	b.k.AtPrio(next, 1, func() { b.runCycle(n+1, next) })
}

// deliver transmits all queued payload instances of f, completing at 'at'.
// A static slot transmits whether or not fresh data is queued (state
// semantics); only queued instances produce latency records.
func (b *Bus) deliver(f *Frame, at sim.Time) {
	pend := b.queued[f]
	if len(pend) == 0 {
		return
	}
	if !b.channelAlive(f, b.k.Now()) {
		// Channel down: payloads stay queued for a later occurrence (they
		// will be dropped only by their own deadline monitors).
		for _, q := range pend {
			b.Trace.Emit(b.k.Now(), trace.Error, f.Name, q.job, "channel "+f.Channel.String()+" down")
		}
		return
	}
	if !b.cleanCopySurvives(f, b.k.Now()) {
		// Transmitted but corrupted on every usable channel: the instances
		// are consumed and lost (receiver CRC discards them).
		delete(b.queued, f)
		for _, q := range pend {
			b.Trace.Emit(b.k.Now(), trace.Error, f.Name, q.job, "corrupted on all channels")
		}
		return
	}
	delete(b.queued, f)
	for _, q := range pend {
		q := q
		b.k.AtPrio(at, 40, func() {
			b.Trace.Emit(at, trace.Finish, f.Name, q.job, "")
			if f.OnDeliver != nil {
				f.OnDeliver(q.at, at, q.payload)
			}
		})
	}
}

// cleanCopySurvives reports whether at least one alive physical channel
// of the frame escapes the error injector at time t.
func (b *Bus) cleanCopySurvives(f *Frame, t sim.Time) bool {
	if b.ErrorInjector == nil {
		return true
	}
	aOK := b.failedA == 0 || t < b.failedA
	bOK := b.failedB == 0 || t < b.failedB
	onA := f.Channel == ChannelA || f.Channel == ChannelAB
	onB := f.Channel == ChannelB || f.Channel == ChannelAB
	if onA && aOK && !b.ErrorInjector(f, ChannelA, t) {
		return true
	}
	if onB && bOK && !b.ErrorInjector(f, ChannelB, t) {
		return true
	}
	return false
}

// runDynamic walks the minislot counter in FrameID order: a pending frame
// transmits if enough minislots remain in the segment, consuming Length
// minislots; otherwise the counter advances by one minislot.
func (b *Bus) runDynamic() {
	var dyn []*Frame
	for _, f := range b.frames {
		if f.Kind == Dynamic && len(b.queued[f]) > 0 && !b.Mute[f.sender] {
			dyn = append(dyn, f)
		}
	}
	sort.Slice(dyn, func(i, j int) bool { return dyn[i].FrameID < dyn[j].FrameID })
	slot := 0 // minislot counter
	now := b.k.Now()
	for _, f := range dyn {
		if slot >= b.Cfg.Minislots {
			break
		}
		if slot+f.Length > b.Cfg.Minislots {
			// pLatestTx exceeded: the frame cannot start this cycle; its
			// ID's minislot still elapses.
			slot++
			continue
		}
		end := now + sim.Duration(slot+f.Length)*b.Cfg.MinislotLength
		b.deliver(f, end)
		slot += f.Length
	}
}
