package flexray

import (
	"reflect"
	"testing"

	"autorte/internal/sim"
)

func synthProblem() (Config, []Signal) {
	cfg := Config{
		StaticSlots: 8, SlotLength: sim.US(100),
		Minislots: 40, MinislotLength: sim.US(5), NIT: sim.US(100),
	}
	sigs := []Signal{
		{Name: "s1", Period: sim.MS(10)},
		{Name: "s2", Period: sim.MS(20)},
		{Name: "s3", Period: sim.MS(40)},
	}
	return cfg, sigs
}

func TestSynthCacheMatchesDirect(t *testing.T) {
	cfg, sigs := synthProblem()
	c := NewSynthCache()
	want, err := Synthesize(cfg, sigs)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		got, err := c.Synthesize(cfg, sigs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: cached schedule diverges", pass)
		}
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", hits, misses)
	}
}

func TestSynthCacheCopiesAndKeys(t *testing.T) {
	cfg, sigs := synthProblem()
	c := NewSynthCache()
	first, err := c.Synthesize(cfg, sigs)
	if err != nil {
		t.Fatal(err)
	}
	first[0].SlotID = -1 // caller mutation must not poison the cache
	second, err := c.Synthesize(cfg, sigs)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].SlotID == -1 {
		t.Fatal("cache returned aliased slice")
	}
	// A config change must change the key.
	cfg2 := cfg
	cfg2.StaticSlots = 4
	if cacheKey(cfg, sigs) == cacheKey(cfg2, sigs) {
		t.Fatal("config change must change the key")
	}
	// Distinct-period permutations share a key; equal-period ties do not.
	perm := []Signal{sigs[2], sigs[0], sigs[1]}
	if cacheKey(cfg, sigs) != cacheKey(cfg, perm) {
		t.Fatal("permuted distinct-period signals should share a key")
	}
	tie := []Signal{{Name: "a", Period: sim.MS(10)}, {Name: "b", Period: sim.MS(10)}}
	tieSwap := []Signal{tie[1], tie[0]}
	if cacheKey(cfg, tie) == cacheKey(cfg, tieSwap) {
		t.Fatal("reordered equal-period signals must not share a key")
	}
}

func TestSynthCacheNilReceiver(t *testing.T) {
	cfg, sigs := synthProblem()
	var c *SynthCache
	got, err := c.Synthesize(cfg, sigs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Synthesize(cfg, sigs)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil cache should behave like the direct synthesis")
	}
}
