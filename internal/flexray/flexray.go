// Package flexray simulates the FlexRay communication cycle — a static
// TDMA segment followed by a minislot-arbitrated dynamic segment — and
// provides worst-case latency analysis and static-schedule synthesis.
//
// FlexRay is the paper's primary example of a protocol whose static
// segment "partitions a single physical communication channel into nearly
// independent sub-channels that are free of logical or temporal
// interference" (§4): a frame's static slot timing is unaffected by any
// other traffic, which experiment E4 demonstrates against CAN.
package flexray

import (
	"fmt"

	"autorte/internal/sim"
)

// Config describes one FlexRay channel's communication cycle.
type Config struct {
	// StaticSlots is the number of static segment slots per cycle.
	StaticSlots int
	// SlotLength is the duration of one static slot.
	SlotLength sim.Duration
	// Minislots is the number of minislots in the dynamic segment.
	Minislots int
	// MinislotLength is the duration of one minislot.
	MinislotLength sim.Duration
	// NIT is the network idle time closing the cycle.
	NIT sim.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.StaticSlots < 0 || c.Minislots < 0 {
		return fmt.Errorf("flexray: negative segment size")
	}
	if c.StaticSlots == 0 && c.Minislots == 0 {
		return fmt.Errorf("flexray: empty communication cycle")
	}
	if c.StaticSlots > 0 && c.SlotLength <= 0 {
		return fmt.Errorf("flexray: non-positive static slot length")
	}
	if c.Minislots > 0 && c.MinislotLength <= 0 {
		return fmt.Errorf("flexray: non-positive minislot length")
	}
	if c.NIT < 0 {
		return fmt.Errorf("flexray: negative NIT")
	}
	return nil
}

// CycleLength returns the duration of one communication cycle.
func (c Config) CycleLength() sim.Duration {
	return sim.Duration(c.StaticSlots)*c.SlotLength +
		sim.Duration(c.Minislots)*c.MinislotLength + c.NIT
}

// DynamicStart returns the offset of the dynamic segment within the cycle.
func (c Config) DynamicStart() sim.Duration {
	return sim.Duration(c.StaticSlots) * c.SlotLength
}

// MaxCycle is the FlexRay cycle counter modulus.
const MaxCycle = 64

// FrameKind distinguishes the two segments.
type FrameKind uint8

const (
	// Static frames own a fixed (slot, base, repetition) position.
	Static FrameKind = iota
	// Dynamic frames arbitrate by frame ID in the minislot segment.
	Dynamic
)

func (k FrameKind) String() string {
	if k == Static {
		return "static"
	}
	return "dynamic"
}

// Channel selects the physical channel(s) a frame is sent on. FlexRay's
// dual-channel topology is one of its dependability features: a frame
// assigned to both channels survives the loss of either.
type Channel uint8

// Channel assignments.
const (
	// ChannelA only (the default).
	ChannelA Channel = iota
	// ChannelB only.
	ChannelB
	// ChannelAB sends redundantly on both channels.
	ChannelAB
)

func (c Channel) String() string {
	switch c {
	case ChannelA:
		return "A"
	case ChannelB:
		return "B"
	default:
		return "AB"
	}
}

// Frame is one FlexRay frame stream.
type Frame struct {
	Name string
	Kind FrameKind
	// Channel assigns the physical channel(s); zero value is channel A.
	Channel Channel

	// Static frames: SlotID in 1..StaticSlots; the frame occupies its slot
	// in every cycle c with c % Repetition == Base.
	SlotID     int
	Base       int
	Repetition int // power of two, 1..64

	// Dynamic frames: FrameID > StaticSlots orders priority (lower wins);
	// Length is the transmission length in minislots.
	FrameID int
	Length  int

	// Period/Offset queue the frame's payload periodically; Period 0 means
	// externally queued only. Deadline 0 defaults to Period.
	Period   sim.Duration
	Offset   sim.Duration
	Deadline sim.Duration

	// OnDeliver is invoked at the end of each successful transmission.
	OnDeliver func(queued, delivered sim.Time, payload []byte)

	sender  string
	nextJob int64
}

// SetSender tags the transmitting node.
func (f *Frame) SetSender(node string) { f.sender = node }

// Sender returns the transmitting node tag.
func (f *Frame) Sender() string { return f.sender }

func (f *Frame) validate(cfg Config) error {
	if f.Name == "" {
		return fmt.Errorf("flexray: frame with empty name")
	}
	switch f.Kind {
	case Static:
		if f.SlotID < 1 || f.SlotID > cfg.StaticSlots {
			return fmt.Errorf("flexray: frame %s: slot %d outside 1..%d", f.Name, f.SlotID, cfg.StaticSlots)
		}
		if f.Repetition == 0 {
			f.Repetition = 1
		}
		if f.Repetition < 1 || f.Repetition > MaxCycle || f.Repetition&(f.Repetition-1) != 0 {
			return fmt.Errorf("flexray: frame %s: repetition %d not a power of two in 1..64", f.Name, f.Repetition)
		}
		if f.Base < 0 || f.Base >= f.Repetition {
			return fmt.Errorf("flexray: frame %s: base %d outside 0..%d", f.Name, f.Base, f.Repetition-1)
		}
	case Dynamic:
		if f.FrameID <= cfg.StaticSlots {
			return fmt.Errorf("flexray: frame %s: dynamic FrameID %d must exceed static slot count %d", f.Name, f.FrameID, cfg.StaticSlots)
		}
		if f.Length < 1 || f.Length > cfg.Minislots {
			return fmt.Errorf("flexray: frame %s: length %d outside 1..%d minislots", f.Name, f.Length, cfg.Minislots)
		}
	default:
		return fmt.Errorf("flexray: frame %s: unknown kind", f.Name)
	}
	if f.Period < 0 || f.Offset < 0 || f.Deadline < 0 {
		return fmt.Errorf("flexray: frame %s: negative timing parameter", f.Name)
	}
	return nil
}

// occupies reports whether a static frame owns its slot in the given cycle.
func (f *Frame) occupies(cycle int) bool {
	return f.Kind == Static && cycle%f.Repetition == f.Base
}

func (f *Frame) relativeDeadline() sim.Duration {
	if f.Deadline > 0 {
		return f.Deadline
	}
	return f.Period
}
