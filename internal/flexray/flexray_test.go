package flexray

import (
	"testing"
	"testing/quick"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

// cfgSmall: 4 static slots of 200us, 20 minislots of 10us, 100us NIT:
// cycle = 800 + 200 + 100 = 1100us.
func cfgSmall() Config {
	return Config{
		StaticSlots: 4, SlotLength: sim.US(200),
		Minislots: 20, MinislotLength: sim.US(10),
		NIT: sim.US(100),
	}
}

func TestConfigValidateAndCycleLength(t *testing.T) {
	c := cfgSmall()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.CycleLength() != sim.US(1100) {
		t.Fatalf("cycle length %v, want 1100us", c.CycleLength())
	}
	if c.DynamicStart() != sim.US(800) {
		t.Fatalf("dynamic start %v, want 800us", c.DynamicStart())
	}
	if (Config{}).Validate() == nil {
		t.Fatal("empty cycle accepted")
	}
	if (Config{StaticSlots: 2}).Validate() == nil {
		t.Fatal("zero slot length accepted")
	}
	if (Config{StaticSlots: 1, SlotLength: 1, NIT: -1}).Validate() == nil {
		t.Fatal("negative NIT accepted")
	}
}

func TestFrameValidation(t *testing.T) {
	k := sim.NewKernel()
	b := MustNewBus(k, "fr0", cfgSmall(), nil)
	cases := []*Frame{
		{Name: "", Kind: Static, SlotID: 1},
		{Name: "s", Kind: Static, SlotID: 0},
		{Name: "s", Kind: Static, SlotID: 9},
		{Name: "s", Kind: Static, SlotID: 1, Repetition: 3},
		{Name: "s", Kind: Static, SlotID: 1, Repetition: 2, Base: 2},
		{Name: "d", Kind: Dynamic, FrameID: 2, Length: 1},  // FrameID within static range
		{Name: "d", Kind: Dynamic, FrameID: 9, Length: 0},  // zero length
		{Name: "d", Kind: Dynamic, FrameID: 9, Length: 99}, // longer than segment
	}
	for i, f := range cases {
		if err := b.AddFrame(f); err == nil {
			t.Errorf("case %d: invalid frame accepted", i)
		}
	}
}

func TestStaticSlotCollision(t *testing.T) {
	k := sim.NewKernel()
	b := MustNewBus(k, "fr0", cfgSmall(), nil)
	b.MustAddFrame(&Frame{Name: "a", Kind: Static, SlotID: 1, Repetition: 2, Base: 0, Period: sim.MS(5)})
	// Same slot, disjoint cycles: allowed.
	if err := b.AddFrame(&Frame{Name: "b", Kind: Static, SlotID: 1, Repetition: 2, Base: 1, Period: sim.MS(5)}); err != nil {
		t.Fatalf("disjoint slot multiplexing rejected: %v", err)
	}
	// Overlapping pattern: rejected.
	if err := b.AddFrame(&Frame{Name: "c", Kind: Static, SlotID: 1, Repetition: 4, Base: 0}); err == nil {
		t.Fatal("colliding slot accepted")
	}
}

func TestStaticFrameDeterministicLatency(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "fr0", cfgSmall(), rec)
	// Slot 2, every cycle; payload queued at cycle start rides this
	// cycle's slot 2, delivered at slot end = 400us into the cycle.
	f := &Frame{Name: "wheel", Kind: Static, SlotID: 2, Repetition: 1, Period: sim.US(1100)}
	b.MustAddFrame(f)
	b.Start()
	k.Run(sim.MS(22))
	st := trace.Compute(rec.Latencies("wheel"))
	if st.N < 19 {
		t.Fatalf("delivered %d, want ~20", st.N)
	}
	if st.Jitter != 0 {
		t.Fatalf("static frame jitter %v, want 0 (temporal isolation)", st.Jitter)
	}
	if st.Max != sim.US(400) {
		t.Fatalf("latency %v, want 400us (slot 2 end)", st.Max)
	}
}

func TestStaticLatencyUnaffectedByDynamicLoad(t *testing.T) {
	// The E4 property: adding heavy dynamic traffic must not move static
	// frame latencies at all.
	measure := func(withLoad bool) trace.Stats {
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		b := MustNewBus(k, "fr0", cfgSmall(), rec)
		b.MustAddFrame(&Frame{Name: "crit", Kind: Static, SlotID: 1, Repetition: 1, Period: sim.US(1100)})
		if withLoad {
			for i := 0; i < 5; i++ {
				b.MustAddFrame(&Frame{
					Name: "noise" + string(rune('0'+i)), Kind: Dynamic,
					FrameID: 5 + i, Length: 4, Period: sim.US(1100),
				})
			}
		}
		b.Start()
		k.Run(sim.MS(50))
		return trace.Compute(rec.Latencies("crit"))
	}
	quiet, loaded := measure(false), measure(true)
	if quiet.Max != loaded.Max || quiet.Jitter != loaded.Jitter {
		t.Fatalf("static latency changed under dynamic load: quiet %v loaded %v", quiet, loaded)
	}
}

func TestSlotMultiplexingByRepetition(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "fr0", cfgSmall(), rec)
	cyc := cfgSmall().CycleLength()
	b.MustAddFrame(&Frame{Name: "even", Kind: Static, SlotID: 1, Repetition: 2, Base: 0, Period: 2 * cyc})
	b.MustAddFrame(&Frame{Name: "odd", Kind: Static, SlotID: 1, Repetition: 2, Base: 1, Period: 2 * cyc, Offset: cyc})
	b.Start()
	k.Run(20 * cyc)
	if n := rec.Count(trace.Finish, "even"); n < 9 {
		t.Fatalf("even delivered %d, want ~10", n)
	}
	if n := rec.Count(trace.Finish, "odd"); n < 9 {
		t.Fatalf("odd delivered %d, want ~9", n)
	}
	if rec.Count(trace.Miss, "even")+rec.Count(trace.Miss, "odd") != 0 {
		t.Fatal("multiplexed frames missed deadlines")
	}
}

func TestDynamicArbitrationByFrameID(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "fr0", cfgSmall(), rec)
	hi := &Frame{Name: "hi", Kind: Dynamic, FrameID: 5, Length: 4}
	lo := &Frame{Name: "lo", Kind: Dynamic, FrameID: 6, Length: 4}
	b.MustAddFrame(hi)
	b.MustAddFrame(lo)
	b.Start()
	k.At(0, func() { b.Queue(lo); b.Queue(hi) })
	k.Run(sim.MS(3))
	// Dynamic segment starts at 800us; hi takes minislots 0-3 (ends
	// 840us), lo takes 4-7 (ends 880us).
	hiLat := rec.Latencies("hi")
	loLat := rec.Latencies("lo")
	if len(hiLat) != 1 || hiLat[0] != sim.US(840) {
		t.Fatalf("hi latency %v, want [840us]", hiLat)
	}
	if len(loLat) != 1 || loLat[0] != sim.US(880) {
		t.Fatalf("lo latency %v, want [880us]", loLat)
	}
}

func TestDynamicFrameDeferredWhenSegmentFull(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "fr0", cfgSmall(), rec)
	big := &Frame{Name: "big", Kind: Dynamic, FrameID: 5, Length: 18}
	tail := &Frame{Name: "tail", Kind: Dynamic, FrameID: 6, Length: 4, Deadline: sim.MS(10)}
	b.MustAddFrame(big)
	b.MustAddFrame(tail)
	b.Start()
	k.At(0, func() { b.Queue(big); b.Queue(tail) })
	k.Run(sim.MS(4))
	// big occupies 18 of 20 minislots; tail (4) does not fit in cycle 0
	// and transmits in cycle 1's dynamic segment: 1100 + 800 + ~minislots.
	tailLat := rec.Latencies("tail")
	if len(tailLat) != 1 {
		t.Fatalf("tail delivered %d times, want 1", len(tailLat))
	}
	if tailLat[0] <= sim.US(1100) {
		t.Fatalf("tail latency %v; should have waited for next cycle", tailLat[0])
	}
	// In cycle 1, big is gone: tail starts after skipping... it is the
	// only pending frame, taking minislots 0-3: delivered 1100+800+40.
	if want := sim.US(1940); tailLat[0] != want {
		t.Fatalf("tail latency %v, want %v", tailLat[0], want)
	}
}

func TestMutedSenderStaticAndDynamic(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "fr0", cfgSmall(), rec)
	s := &Frame{Name: "s", Kind: Static, SlotID: 1, Repetition: 1, Period: sim.US(1100)}
	s.SetSender("node1")
	b.MustAddFrame(s)
	b.Mute = map[string]bool{"node1": true}
	b.Start()
	k.Run(sim.MS(10))
	if rec.Count(trace.Finish, "s") != 0 {
		t.Fatal("muted sender delivered")
	}
}

func TestStaticWCRTBoundsSimulation(t *testing.T) {
	cfg := cfgSmall()
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "fr0", cfg, rec)
	// Period deliberately not harmonic with the cycle so queuing phase
	// drifts across the whole cycle.
	f := &Frame{Name: "drift", Kind: Static, SlotID: 3, Repetition: 2, Period: sim.US(2310)}
	b.MustAddFrame(f)
	b.Start()
	k.Run(sim.Second)
	st := trace.Compute(rec.Latencies("drift"))
	bound := StaticWCRT(cfg, f)
	if st.Max > bound {
		t.Fatalf("simulated max %v exceeds WCRT bound %v", st.Max, bound)
	}
	if st.Max < bound/2 {
		t.Fatalf("bound %v too loose vs observed %v; check analysis", bound, st.Max)
	}
}

func TestDynamicWCRTBoundsSimulation(t *testing.T) {
	cfg := cfgSmall()
	frames := []*Frame{
		{Name: "d1", Kind: Dynamic, FrameID: 5, Length: 6, Period: sim.US(2310)},
		{Name: "d2", Kind: Dynamic, FrameID: 6, Length: 6, Period: sim.US(3570)},
		{Name: "d3", Kind: Dynamic, FrameID: 7, Length: 6, Period: sim.US(5010), Deadline: sim.MS(40)},
	}
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "fr0", cfg, rec)
	for _, f := range frames {
		b.MustAddFrame(f)
	}
	b.Start()
	k.Run(sim.Second)
	for _, f := range frames {
		bound, err := DynamicWCRT(cfg, f, frames)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		st := trace.Compute(rec.Latencies(f.Name))
		if st.N == 0 {
			t.Fatalf("%s never delivered", f.Name)
		}
		if st.Max > bound {
			t.Fatalf("%s simulated max %v exceeds bound %v", f.Name, st.Max, bound)
		}
	}
}

func TestDynamicWCRTOverload(t *testing.T) {
	cfg := cfgSmall()
	frames := []*Frame{
		{Name: "d1", Kind: Dynamic, FrameID: 5, Length: 19, Period: sim.US(1100)},
		{Name: "d2", Kind: Dynamic, FrameID: 6, Length: 6, Period: sim.US(1100)},
	}
	if _, err := DynamicWCRT(cfg, frames[1], frames); err == nil {
		t.Fatal("overloaded dynamic segment got a bound")
	}
	if _, err := DynamicWCRT(cfg, frames[0], frames); err != nil {
		t.Fatalf("highest-priority dynamic frame should be bounded: %v", err)
	}
}

func TestSynthesizePlacesAllSignals(t *testing.T) {
	cfg := cfgSmall()
	cyc := cfg.CycleLength() // 1.1ms
	signals := []Signal{
		{Name: "fast", Period: sim.MS(5)},
		{Name: "med", Period: sim.MS(10)},
		{Name: "slow", Period: sim.MS(40)},
	}
	as, err := Synthesize(cfg, signals)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 3 {
		t.Fatalf("placed %d signals, want 3", len(as))
	}
	for _, a := range as {
		deadline := a.Signal.Period
		if a.WCRT > deadline {
			t.Errorf("%s: WCRT %v exceeds deadline %v", a.Signal.Name, a.WCRT, deadline)
		}
		if sim.Duration(a.Repetition)*cyc > a.Signal.Period {
			t.Errorf("%s: repetition %d too slow for period %v", a.Signal.Name, a.Repetition, a.Signal.Period)
		}
	}
	// The synthesized frames must be accepted by the bus (no collisions)
	// and meet deadlines in simulation.
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "fr0", cfg, rec)
	for _, f := range Frames(as) {
		b.MustAddFrame(f)
	}
	b.Start()
	k.Run(sim.Second)
	if n := rec.Count(trace.Miss, ""); n != 0 {
		t.Fatalf("synthesized schedule produced %d deadline misses", n)
	}
}

func TestSynthesizeSharesSlots(t *testing.T) {
	cfg := cfgSmall()
	// Eight slow signals must share the 4 slots via repetition.
	var signals []Signal
	for i := 0; i < 8; i++ {
		signals = append(signals, Signal{Name: "s" + string(rune('0'+i)), Period: sim.MS(20)})
	}
	as, err := Synthesize(cfg, signals)
	if err != nil {
		t.Fatal(err)
	}
	slots := map[int]int{}
	for _, a := range as {
		slots[a.SlotID]++
	}
	if len(slots) > 4 {
		t.Fatalf("used %d slots, only 4 exist", len(slots))
	}
}

func TestSynthesizeRejectsImpossible(t *testing.T) {
	cfg := cfgSmall()
	// Deadline below one cycle is unreachable.
	if _, err := Synthesize(cfg, []Signal{{Name: "x", Period: sim.US(500)}}); err == nil {
		t.Fatal("sub-cycle deadline accepted")
	}
	// More always-on signals than slots.
	var signals []Signal
	for i := 0; i < 5; i++ {
		signals = append(signals, Signal{Name: "f" + string(rune('0'+i)), Period: sim.US(1500)})
	}
	if _, err := Synthesize(cfg, signals); err == nil {
		t.Fatal("overfull static segment accepted")
	}
	if _, err := Synthesize(Config{Minislots: 5, MinislotLength: 1}, []Signal{{Name: "x", Period: sim.MS(1)}}); err == nil {
		t.Fatal("synthesis without static slots accepted")
	}
}

func TestFrameKindString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatal("frame kind names")
	}
}

func TestDualChannelRedundancy(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "fr0", cfgSmall(), rec)
	// Two safety frames: one on channel A only, one redundant on A+B.
	b.MustAddFrame(&Frame{Name: "single", Kind: Static, SlotID: 1, Repetition: 1, Period: sim.US(1100), Channel: ChannelA})
	b.MustAddFrame(&Frame{Name: "redundant", Kind: Static, SlotID: 2, Repetition: 1, Period: sim.US(1100), Channel: ChannelAB})
	// Channel A dies mid-run.
	b.FailChannel(ChannelA, sim.MS(5))
	b.Start()
	k.Run(sim.MS(11))
	single := rec.Count(trace.Finish, "single")
	redundant := rec.Count(trace.Finish, "redundant")
	if single >= 9 {
		t.Fatalf("single-channel frame survived channel failure: %d deliveries", single)
	}
	if redundant < 9 {
		t.Fatalf("redundant frame lost deliveries: %d", redundant)
	}
	if rec.Count(trace.Error, "single") == 0 {
		t.Fatal("channel failure not recorded")
	}
}

func TestSlotSharingAcrossChannels(t *testing.T) {
	k := sim.NewKernel()
	b := MustNewBus(k, "fr0", cfgSmall(), nil)
	b.MustAddFrame(&Frame{Name: "a", Kind: Static, SlotID: 1, Repetition: 1, Period: sim.MS(1), Channel: ChannelA})
	// Same slot & cycle pattern on the other channel: allowed.
	if err := b.AddFrame(&Frame{Name: "b", Kind: Static, SlotID: 1, Repetition: 1, Period: sim.MS(1), Channel: ChannelB}); err != nil {
		t.Fatalf("cross-channel slot sharing rejected: %v", err)
	}
	// Redundant frame overlaps both: rejected on slot 1.
	if b.AddFrame(&Frame{Name: "c", Kind: Static, SlotID: 1, Repetition: 1, Channel: ChannelAB}) == nil {
		t.Fatal("AB frame collided with A and B owners but was accepted")
	}
}

func TestChannelString(t *testing.T) {
	if ChannelA.String() != "A" || ChannelB.String() != "B" || ChannelAB.String() != "AB" {
		t.Fatal("channel names")
	}
}

func TestSynthesizeNeverOverlapsQuick(t *testing.T) {
	// Property: for random signal sets that synthesize successfully, no
	// two assignments ever own the same (slot, cycle) pair, and every
	// WCRT meets its deadline.
	f := func(seed uint64, nRaw uint8) bool {
		r := sim.NewRand(seed)
		n := int(nRaw%12) + 1
		cfg := cfgSmall()
		periods := []sim.Duration{sim.MS(5), sim.MS(10), sim.MS(20), sim.MS(40)}
		var sigs []Signal
		for i := 0; i < n; i++ {
			sigs = append(sigs, Signal{
				Name:   string(rune('a' + i)),
				Period: periods[r.Intn(len(periods))],
			})
		}
		as, err := Synthesize(cfg, sigs)
		if err != nil {
			return true // full segment is a legal outcome
		}
		occupied := map[[2]int]bool{}
		for _, a := range as {
			if a.WCRT > a.Signal.Period {
				return false
			}
			for c := a.Base; c < MaxCycle; c += a.Repetition {
				key := [2]int{a.SlotID, c}
				if occupied[key] {
					return false
				}
				occupied[key] = true
			}
		}
		return len(as) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
