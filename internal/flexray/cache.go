package flexray

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"autorte/internal/obs"
)

// cacheKey serializes a synthesis problem: the configuration fields the
// placement reads plus the signals in the stable period order Synthesize
// places them in (ties keep input order, which affects slot assignment).
func cacheKey(cfg Config, signals []Signal) string {
	ordered := append([]Signal(nil), signals...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Period < ordered[j].Period })
	buf := make([]byte, 0, 32*len(ordered)+32)
	buf = strconv.AppendInt(buf, int64(cfg.StaticSlots), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(cfg.SlotLength), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(cfg.Minislots), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(cfg.MinislotLength), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(cfg.NIT), 10)
	buf = append(buf, '|')
	for _, s := range ordered {
		buf = strconv.AppendInt(buf, int64(len(s.Name)), 10)
		buf = append(buf, ':')
		buf = append(buf, s.Name...)
		buf = strconv.AppendInt(buf, int64(s.Period), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.Deadline), 10)
		buf = append(buf, ';')
	}
	return string(buf)
}

// SynthCache memoizes static-segment schedule synthesis. The verifier
// synthesizes the same bus schedule once for the schedulability verdict
// and once per chain stage crossing the bus — and the DSE loop repeats
// both per candidate mapping. Safe for concurrent use.
type SynthCache struct {
	mu     sync.RWMutex
	m      map[string][]Assignment
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSynthCache returns an empty synthesis cache.
func NewSynthCache() *SynthCache {
	return &SynthCache{m: map[string][]Assignment{}}
}

// Synthesize is the memoized equivalent of the package function. The
// returned slice is a fresh copy on every call (Assignment holds no
// pointers). A nil receiver degrades to the direct synthesis.
func (c *SynthCache) Synthesize(cfg Config, signals []Signal) ([]Assignment, error) {
	if c == nil {
		return Synthesize(cfg, signals)
	}
	key := cacheKey(cfg, signals)
	c.mu.RLock()
	cached, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return append([]Assignment(nil), cached...), nil
	}
	c.misses.Add(1)
	as, err := Synthesize(cfg, signals)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.m[key] = as
	c.mu.Unlock()
	return append([]Assignment(nil), as...), nil
}

// Stats reports lookup hits and misses since creation.
func (c *SynthCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of distinct synthesis problems cached.
func (c *SynthCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Observe registers the cache's hit/miss/size series into a registry
// under the shared cache metric names, labeled cache="flexray". Safe on
// a nil receiver (registers nothing).
func (c *SynthCache) Observe(reg *obs.Registry) {
	if c == nil {
		return
	}
	label := obs.Label{Key: "cache", Value: "flexray"}
	reg.CounterFunc("analysis_cache_hits_total", "Memoized analysis lookups served from cache.", c.hits.Load, label)
	reg.CounterFunc("analysis_cache_misses_total", "Memoized analysis lookups that ran the analysis.", c.misses.Load, label)
	reg.GaugeFunc("analysis_cache_entries", "Distinct problems held by the analysis cache.", func() float64 { return float64(c.Len()) }, label)
}
