package flexray

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"autorte/internal/flight"
	"autorte/internal/obs"
)

// keyBufPool recycles key scratch buffers across lookups (see sched's
// twin) so steady-state verification builds keys without allocating.
var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// appendKey serializes a synthesis problem into buf: the configuration
// fields the placement reads plus the signals in the stable period order
// Synthesize places them in (ties keep input order, which affects slot
// assignment).
func appendKey(buf []byte, cfg Config, signals []Signal) []byte {
	ordered := signals
	for i := 1; i < len(signals); i++ {
		if signals[i-1].Period > signals[i].Period {
			ordered = append([]Signal(nil), signals...)
			sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Period < ordered[j].Period })
			break
		}
	}
	buf = strconv.AppendInt(buf, int64(cfg.StaticSlots), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(cfg.SlotLength), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(cfg.Minislots), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(cfg.MinislotLength), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(cfg.NIT), 10)
	buf = append(buf, '|')
	for _, s := range ordered {
		buf = strconv.AppendInt(buf, int64(len(s.Name)), 10)
		buf = append(buf, ':')
		buf = append(buf, s.Name...)
		buf = strconv.AppendInt(buf, int64(s.Period), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.Deadline), 10)
		buf = append(buf, ';')
	}
	return buf
}

// cacheKey materializes appendKey as a string (kept for tests and
// debugging; the cache itself looks up via pooled buffers).
func cacheKey(cfg Config, signals []Signal) string {
	bp := keyBufPool.Get().(*[]byte)
	buf := appendKey((*bp)[:0], cfg, signals)
	s := string(buf)
	*bp = buf
	keyBufPool.Put(bp)
	return s
}

// SynthCache memoizes static-segment schedule synthesis. The verifier
// synthesizes the same bus schedule once for the schedulability verdict
// and once per chain stage crossing the bus — and the DSE loop repeats
// both per candidate mapping. Safe for concurrent use; concurrent misses
// on one key coalesce onto one synthesis.
type SynthCache struct {
	mu     sync.RWMutex
	m      map[string][]Assignment
	flight flight.Group[[]Assignment]
	hits   atomic.Uint64
	misses atomic.Uint64
	dedup  atomic.Uint64
}

// NewSynthCache returns an empty synthesis cache.
func NewSynthCache() *SynthCache {
	return &SynthCache{m: map[string][]Assignment{}}
}

// Synthesize is the memoized equivalent of the package function. The
// returned slice is a fresh copy on every call (Assignment holds no
// pointers). A nil receiver degrades to the direct synthesis.
func (c *SynthCache) Synthesize(cfg Config, signals []Signal) ([]Assignment, error) {
	if c == nil {
		return Synthesize(cfg, signals)
	}
	as, err := c.lookup(cfg, signals)
	if err != nil {
		return nil, err
	}
	return append([]Assignment(nil), as...), nil
}

// SynthesizeShared is Synthesize without the defensive copy: the returned
// slice is the cache's own and MUST be treated as read-only.
func (c *SynthCache) SynthesizeShared(cfg Config, signals []Signal) ([]Assignment, error) {
	if c == nil {
		return Synthesize(cfg, signals)
	}
	return c.lookup(cfg, signals)
}

// lookup returns the cache-owned assignment slice for the problem,
// synthesizing and storing it on a miss.
func (c *SynthCache) lookup(cfg Config, signals []Signal) ([]Assignment, error) {
	bp := keyBufPool.Get().(*[]byte)
	buf := appendKey((*bp)[:0], cfg, signals)
	c.mu.RLock()
	cached, ok := c.m[string(buf)] // map index on converted bytes: no allocation
	c.mu.RUnlock()
	if ok {
		*bp = buf
		keyBufPool.Put(bp)
		c.hits.Add(1)
		return cached, nil
	}
	key := string(buf)
	*bp = buf
	keyBufPool.Put(bp)
	as, err, shared := c.flight.Do(key, func() ([]Assignment, error) {
		// A racer may have stored the entry between our miss and winning
		// the flight; re-check before synthesizing.
		c.mu.RLock()
		cached, ok := c.m[key]
		c.mu.RUnlock()
		if ok {
			c.hits.Add(1)
			return cached, nil
		}
		c.misses.Add(1)
		as, err := Synthesize(cfg, signals)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.m[key] = as
		c.mu.Unlock()
		return as, nil
	})
	if shared {
		c.dedup.Add(1)
	}
	return as, err
}

// Stats reports lookup hits and misses since creation.
func (c *SynthCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of distinct synthesis problems cached.
func (c *SynthCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Observe registers the cache's hit/miss/size series into a registry
// under the shared cache metric names, labeled cache="flexray". Safe on
// a nil receiver (registers nothing).
func (c *SynthCache) Observe(reg *obs.Registry) {
	if c == nil {
		return
	}
	label := obs.Label{Key: "cache", Value: "flexray"}
	reg.CounterFunc("analysis_cache_hits_total", "Memoized analysis lookups served from cache.", c.hits.Load, label)
	reg.CounterFunc("analysis_cache_misses_total", "Memoized analysis lookups that ran the analysis.", c.misses.Load, label)
	reg.CounterFunc("analysis_cache_dedup_total", "Memoized analysis lookups coalesced onto a concurrent identical computation.", c.dedup.Load, label)
	reg.GaugeFunc("analysis_cache_entries", "Distinct problems held by the analysis cache.", func() float64 { return float64(c.Len()) }, label)
}
