package flexray

import (
	"fmt"
	"sort"

	"autorte/internal/sim"
)

// StaticWCRT returns the worst-case queuing-to-delivery latency of a
// static frame: the payload just misses an owned slot and rides the next
// occurrence, Repetition cycles later.
func StaticWCRT(cfg Config, f *Frame) sim.Duration {
	rep := f.Repetition
	if rep == 0 {
		rep = 1
	}
	return sim.Duration(rep)*cfg.CycleLength() + cfg.SlotLength
}

// DynamicWCRT returns a conservative worst-case latency bound for a
// dynamic frame under the bus's frame set: the smallest number of cycles n
// in which the higher-priority minislot demand plus this frame fits the
// dynamic segment capacity (with one wasted minislot per higher-priority
// frame per cycle for skipped IDs), plus one cycle of queuing phase.
// Returns 0 and an error when no bound exists (dynamic overload).
func DynamicWCRT(cfg Config, f *Frame, all []*Frame) (sim.Duration, error) {
	if f.Kind != Dynamic {
		return 0, fmt.Errorf("flexray: %s is not a dynamic frame", f.Name)
	}
	var hp []*Frame
	for _, o := range all {
		if o.Kind == Dynamic && o != f && o.FrameID < f.FrameID {
			if o.Period <= 0 {
				return 0, fmt.Errorf("flexray: higher-priority frame %s has no period bound", o.Name)
			}
			hp = append(hp, o)
		}
	}
	cap := int64(cfg.Minislots)
	cyc := cfg.CycleLength()
	const maxCycles = 4096
	for n := int64(1); n <= maxCycles; n++ {
		demand := int64(f.Length)
		for _, k := range hp {
			arrivals := (int64(n)*int64(cyc) + int64(k.Period) - 1) / int64(k.Period)
			demand += arrivals * int64(k.Length)
		}
		waste := n * int64(len(hp)) // skipped-ID minislots
		if demand+waste <= n*cap {
			return sim.Duration(n+1) * cyc, nil
		}
	}
	return 0, fmt.Errorf("flexray: no latency bound for %s within %d cycles (dynamic segment overloaded)", f.Name, maxCycles)
}

// Signal is a periodic payload to place into the static segment.
type Signal struct {
	Name   string
	Period sim.Duration
	// Deadline defaults to Period.
	Deadline sim.Duration
}

// Assignment places a signal into a static slot.
type Assignment struct {
	Signal     Signal
	SlotID     int
	Base       int
	Repetition int
	WCRT       sim.Duration
}

// Synthesize builds a static-segment schedule for the given signals:
// each signal gets a (slot, base, repetition) position whose worst-case
// latency meets its deadline. It returns an error when the static segment
// cannot accommodate the set — the "careful planning and tool support"
// cost of time-triggered design the paper notes (§1).
func Synthesize(cfg Config, signals []Signal) ([]Assignment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.StaticSlots == 0 {
		return nil, fmt.Errorf("flexray: no static slots to synthesize into")
	}
	cyc := cfg.CycleLength()
	// Faster (smaller repetition) signals are placed first: they are the
	// hardest to fit.
	ordered := append([]Signal(nil), signals...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Period < ordered[j].Period })

	// occupancy[slot] marks which of the 64 cycles are taken.
	occupancy := make([][MaxCycle]bool, cfg.StaticSlots+1)
	var out []Assignment
	for _, s := range ordered {
		if s.Period <= 0 {
			return nil, fmt.Errorf("flexray: signal %s: non-positive period", s.Name)
		}
		deadline := s.Deadline
		if deadline == 0 {
			deadline = s.Period
		}
		// Largest power-of-two repetition whose WCRT still meets the
		// deadline: rep*cycle + slot <= deadline.
		rep := 1
		for rep*2 <= MaxCycle && sim.Duration(rep*2)*cyc+cfg.SlotLength <= deadline {
			rep *= 2
		}
		if sim.Duration(rep)*cyc+cfg.SlotLength > deadline {
			return nil, fmt.Errorf("flexray: signal %s: deadline %v unreachable (cycle %v)", s.Name, deadline, cyc)
		}
		placed := false
	place:
		for slot := 1; slot <= cfg.StaticSlots; slot++ {
			for base := 0; base < rep; base++ {
				free := true
				for c := base; c < MaxCycle; c += rep {
					if occupancy[slot][c] {
						free = false
						break
					}
				}
				if !free {
					continue
				}
				for c := base; c < MaxCycle; c += rep {
					occupancy[slot][c] = true
				}
				out = append(out, Assignment{
					Signal: s, SlotID: slot, Base: base, Repetition: rep,
					WCRT: sim.Duration(rep)*cyc + cfg.SlotLength,
				})
				placed = true
				break place
			}
		}
		if !placed {
			return nil, fmt.Errorf("flexray: static segment full: cannot place signal %s (rep %d)", s.Name, rep)
		}
	}
	return out, nil
}

// Frames converts assignments into static frame streams ready to add to a
// Bus, queuing each signal at its period.
func Frames(as []Assignment) []*Frame {
	out := make([]*Frame, len(as))
	for i, a := range as {
		out[i] = &Frame{
			Name: a.Signal.Name, Kind: Static,
			SlotID: a.SlotID, Base: a.Base, Repetition: a.Repetition,
			Period: a.Signal.Period, Deadline: a.Signal.Deadline,
		}
	}
	return out
}
