package fault

import (
	"bytes"
	"testing"

	"autorte/internal/e2eprot"
	"autorte/internal/flexray"
	"autorte/internal/model"
	"autorte/internal/noc"
	"autorte/internal/obs"
	"autorte/internal/overlay"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

const commSignal = "Sensor.out.v->Act.in"

// commSystem: Sensor on ecu1 feeds Act on ecu2 over one CAN bus — the
// minimal remote channel the comm injectors tamper with.
func commSystem() *model.System {
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	return &model.System{
		Name:       "comm",
		Interfaces: []*model.PortInterface{ifV},
		Components: []*model.SWC{
			{
				Name:  "Sensor",
				Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "sample", WCETNominal: sim.US(50),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
					Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
				}},
			},
			{
				Name:  "Act",
				Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "apply", WCETNominal: sim.US(20),
					Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
					Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
				}},
			},
		},
		ECUs: []*model.ECU{
			{Name: "ecu1", Speed: 1, Buses: []string{"bus0"}},
			{Name: "ecu2", Speed: 1, Buses: []string{"bus0"}},
		},
		Buses:      []*model.Bus{{Name: "bus0", Kind: model.BusCAN, BitRate: 500_000}},
		Connectors: []model.Connector{{FromSWC: "Sensor", FromPort: "out", ToSWC: "Act", ToPort: "in"}},
		Mapping:    map[string]string{"Sensor": "ecu1", "Act": "ecu2"},
	}
}

func commPlatform(protected bool) (*rte.Platform, *int, *float64) {
	opts := rte.Options{}
	if protected {
		opts.E2E = &rte.E2EOptions{}
	}
	p := rte.MustBuild(commSystem(), opts)
	applied := new(int)
	last := new(float64)
	p.SetBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", 100) })
	p.SetBehavior("Act", "apply", func(c *rte.Context) { *applied++; *last = c.Read("in", "v") })
	return p, applied, last
}

func commDetected(p *rte.Platform, class string) int {
	return int(p.Metrics.Counter("e2e_detected_faults_total",
		"Communication faults detected by E2E protection, by detected class.",
		obs.Label{Key: "class", Value: class}).Value())
}

func TestCorruptPayloadCoverage(t *testing.T) {
	p, applied, _ := commPlatform(true)
	inj := CorruptPayload(p, commSignal, sim.MS(30), sim.MS(70), 1)
	p.Run(sim.MS(95))
	if inj.Injected == 0 {
		t.Fatal("injector produced no faults")
	}
	if n := commDetected(p, "crc"); n != inj.Injected {
		t.Fatalf("detected %d crc faults of %d injected", n, inj.Injected)
	}
	if *applied >= 10 {
		t.Fatalf("corrupted frames were not dropped: applied=%d", *applied)
	}

	// The same fault load on an unprotected platform passes silently.
	u, appliedU, _ := commPlatform(false)
	injU := CorruptPayload(u, commSignal, sim.MS(30), sim.MS(70), 1)
	u.Run(sim.MS(95))
	if injU.Injected == 0 || u.Errors.CountKind(rte.ErrComm) != 0 {
		t.Fatalf("unprotected: injected=%d commErrors=%d, want >0/0",
			injU.Injected, u.Errors.CountKind(rte.ErrComm))
	}
	if *appliedU != 10 {
		t.Fatalf("unprotected chain applied %d times, want 10", *appliedU)
	}
}

func TestMasqueradeDetectedOnlyWhenProtected(t *testing.T) {
	p, _, last := commPlatform(true)
	inj := Masquerade(p, commSignal, sim.MS(30), 0)
	p.Run(sim.MS(95))
	if inj.Injected == 0 {
		t.Fatal("no impostor frames injected")
	}
	// The forged frames are internally consistent; only the DataID binding
	// exposes them, as a CRC mismatch.
	if n := commDetected(p, "crc"); n != inj.Injected {
		t.Fatalf("detected %d of %d impostor frames", n, inj.Injected)
	}
	if *last != 100 {
		t.Fatalf("impostor value %v reached the receiver", *last)
	}

	u, _, lastU := commPlatform(false)
	Masquerade(u, commSignal, sim.MS(30), 0)
	u.Run(sim.MS(95))
	if u.Errors.CountKind(rte.ErrComm) != 0 {
		t.Fatal("unprotected platform detected the masquerade without means to")
	}
	if *lastU == 100 {
		t.Fatal("impostor frames did not bite on the unprotected platform")
	}
}

func TestDropPDUDetectedByTimeout(t *testing.T) {
	p, _, _ := commPlatform(true)
	inj := DropPDU(p, commSignal, sim.MS(30), 0) // permanent
	p.Run(sim.MS(95))
	if inj.Injected == 0 {
		t.Fatal("nothing dropped")
	}
	if n := commDetected(p, "timeout"); n == 0 {
		t.Fatal("dead window left no timeout detections")
	}
	if p.Errors.CountKind(rte.ErrComm) == 0 {
		t.Fatal("no comm errors for a dead channel")
	}
}

func TestDuplicatePDUDetected(t *testing.T) {
	p, applied, _ := commPlatform(true)
	inj := DuplicatePDU(p, commSignal, 0, 0)
	p.Run(sim.MS(95))
	if inj.Injected == 0 {
		t.Fatal("no duplicates injected")
	}
	if n := commDetected(p, "duplicate"); n != inj.Injected {
		t.Fatalf("detected %d of %d duplicates", n, inj.Injected)
	}
	if *applied != 10 {
		t.Fatalf("applied %d times under duplication, want 10", *applied)
	}
}

func TestResequencePDUDetected(t *testing.T) {
	p, _, _ := commPlatform(true)
	inj := ResequencePDU(p, commSignal, 0, 0)
	p.Run(sim.MS(95))
	if inj.Injected == 0 {
		t.Fatal("no pairs swapped")
	}
	// The held-back frame of each pair arrives behind its successor and is
	// flagged wrong-sequence; the resync to its stale counter can flag the
	// next pair's lead frame too, so detections meet or exceed the pairs.
	if n := commDetected(p, "sequence"); n < inj.Injected {
		t.Fatalf("detected %d of %d swapped pairs", n, inj.Injected)
	}
}

func TestDelayPDUBeyondTimeout(t *testing.T) {
	p, _, _ := commPlatform(true)
	// Default timeout bound is 3 periods = 30ms; a 45ms delay breaks it.
	inj := DelayPDU(p, commSignal, sim.MS(20), 0, sim.MS(45))
	p.Run(sim.MS(150))
	if inj.Injected == 0 {
		t.Fatal("nothing delayed")
	}
	if n := commDetected(p, "timeout"); n == 0 {
		t.Fatal("over-timeout delay left no timeout detections")
	}

	// A short delay is tolerated staleness: no detections at all.
	q, _, _ := commPlatform(true)
	DelayPDU(q, commSignal, sim.MS(20), 0, sim.MS(5))
	q.Run(sim.MS(150))
	if n := q.Errors.CountKind(rte.ErrComm); n != 0 {
		t.Fatalf("tolerated delay reported %d comm errors", n)
	}
}

func TestFlexRayBurstDualChannelRedundancy(t *testing.T) {
	k := sim.NewKernel()
	cfg := flexray.Config{
		StaticSlots: 4, SlotLength: sim.US(200),
		Minislots: 20, MinislotLength: sim.US(10), NIT: sim.US(100),
	}
	b := flexray.MustNewBus(k, "fr0", cfg, &trace.Recorder{})
	var single, dual int
	b.MustAddFrame(&flexray.Frame{
		Name: "a", Kind: flexray.Static, SlotID: 1, Channel: flexray.ChannelA,
		Period:    sim.MS(5),
		OnDeliver: func(_, _ sim.Time, _ []byte) { single++ },
	})
	b.MustAddFrame(&flexray.Frame{
		Name: "ab", Kind: flexray.Static, SlotID: 2, Channel: flexray.ChannelAB,
		Period:    sim.MS(5),
		OnDeliver: func(_, _ sim.Time, _ []byte) { dual++ },
	})
	// 50% per-channel corruption: the single-channel frame survives ~50%,
	// the dual-channel frame ~75% — redundancy, measured.
	FlexRayBurst(b, 0, sim.MS(1000), 0.5, 7)
	b.Start()
	k.Run(sim.MS(500))
	if single == 0 || dual == 0 {
		t.Fatalf("no deliveries at all: single=%d dual=%d", single, dual)
	}
	if dual <= single {
		t.Fatalf("dual-channel frame (%d) did not outlive single-channel (%d)", dual, single)
	}
	if single >= 100 {
		t.Fatalf("burst corrupted nothing: single=%d of 100", single)
	}
}

func TestOverlayBurstCaughtOnlyByE2E(t *testing.T) {
	k := sim.NewKernel()
	net := noc.MustNewNetwork(k, noc.Config{
		Width: 4, Height: 4, FlitTime: sim.US(1), Mode: noc.TDMA, SlotLength: sim.US(100),
	}, &trace.Recorder{})
	v := overlay.New(net)
	if err := v.AttachNode("engine", noc.Coord{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := v.AttachNode("dash", noc.Coord{X: 3, Y: 0}); err != nil {
		t.Fatal(err)
	}
	cfg := e2eprot.Config{Profile: e2eprot.P01, DataID: 0x1234, Offset: 6}
	rx := e2eprot.NewReceiver(cfg)
	tx := e2eprot.NewSender(cfg)
	var checks, clean int
	m := &overlay.Message{
		Name: "rpm", ID: 0x100, DLC: 8, Period: sim.MS(10),
		OnDeliver: func(_, at sim.Time, payload []byte) {
			if len(payload) == 0 {
				return
			}
			checks++
			if rx.Check(at, payload) == e2eprot.StatusOK {
				clean++
			}
		},
	}
	if err := v.AttachMessage(m, "engine", "dash"); err != nil {
		t.Fatal(err)
	}
	// Fabric corruption: every frame gets one bit flipped inside the NoC,
	// below any bus CRC. Only the end-to-end check can see it.
	OverlayBurst(v, 0, sim.MS(1000), 1.0, 3)
	net.Start()
	sent := []byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0, 0}
	protected := append([]byte(nil), sent...)
	if err := tx.Protect(protected); err != nil {
		t.Fatal(err)
	}
	k.At(sim.MS(5), func() { _ = v.Send("rpm", protected) })
	k.Run(sim.MS(95))
	if checks < 3 {
		t.Fatalf("only %d protected deliveries", checks)
	}
	if clean != 0 {
		t.Fatalf("%d of %d corrupted frames passed the E2E check", clean, checks)
	}
	// The corrupted payload itself still looks like a frame — an
	// unprotected legacy receiver would have consumed it.
	if bytes.Equal(protected, sent) {
		t.Fatal("sanity: protection did not alter the frame")
	}
}
