package fault

import (
	"fmt"

	"autorte/internal/par"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// This file is the fault-injection campaign runner: it sweeps a fault
// space (sensor failure modes x bus faults x WCET overruns x injection
// times), executes every scenario as an independent simulation in
// parallel, and reports detection latency, recovery latency and
// availability per scenario. Experiment E11 and `autosim -faults` drive
// it against the reference health-monitored system.

// FaultClass enumerates the injected fault classes of the campaign.
type FaultClass uint8

// The swept fault classes.
const (
	// FaultSensorSilent: the sensor stops producing.
	FaultSensorSilent FaultClass = iota
	// FaultSensorStuck: the sensor repeats its last published values.
	FaultSensorStuck
	// FaultSensorNoise: the sensor produces implausible values.
	FaultSensorNoise
	// FaultCANBurst: bus errors corrupt every frame in the window.
	FaultCANBurst
	// FaultOverrun: a runnable exceeds its execution budget.
	FaultOverrun
	// FaultCommCorrupt: received payloads carry flipped bits (comm.go).
	FaultCommCorrupt
	// FaultCommMasquerade: an internally valid frame of a foreign stream.
	FaultCommMasquerade
	// FaultCommDrop: frames are lost in transit.
	FaultCommDrop
	// FaultCommDuplicate: every frame is delivered twice.
	FaultCommDuplicate
	// FaultCommDelay: frames are held beyond the receiver's timeout bound.
	FaultCommDelay
	// FaultCommResequence: consecutive frames swap order.
	FaultCommResequence
)

var faultClassNames = [...]string{
	"sensor-silent", "sensor-stuck", "sensor-noise", "can-burst", "wcet-overrun",
	"comm-corrupt", "comm-masquerade", "comm-drop", "comm-duplicate",
	"comm-delay", "comm-resequence",
}

func (c FaultClass) String() string {
	if int(c) < len(faultClassNames) {
		return faultClassNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Scenario is one cell of the fault space.
type Scenario struct {
	Name     string
	Class    FaultClass
	InjectAt sim.Time
	// Until ends transient faults; sim.Infinity means permanent.
	Until sim.Time
}

// Transient reports whether the fault ends before the horizon.
func (s Scenario) Transient() bool { return s.Until != sim.Infinity }

// Result is the measured outcome of one scenario.
type Result struct {
	Scenario Scenario
	// Detected and DetectionLatency: first matching error report at or
	// after injection.
	Detected         bool
	DetectionLatency sim.Duration
	// Recovered and RecoveryLatency: whether the observed service was up
	// at the horizon and how long after injection the last outage ended
	// (see ServiceRecovery).
	Recovered       bool
	RecoveryLatency sim.Duration
	// Availability is the fraction of expected service completions that
	// actually happened between injection and horizon.
	Availability float64
	// Escalations counts recovery attempts the health monitor performed.
	Escalations int64
	// FinalState summarizes the end state (degradation level or partition
	// health) as reported by the scenario runner.
	FinalState string
	// Errors is the total number of platform error reports.
	Errors int64
}

// Sweep builds the cross product of fault classes and injection times.
// window > 0 makes every fault transient ([inject, inject+window));
// window <= 0 makes them permanent.
func Sweep(classes []FaultClass, injectTimes []sim.Time, window sim.Duration) []Scenario {
	var out []Scenario
	for _, class := range classes {
		for _, at := range injectTimes {
			s := Scenario{Class: class, InjectAt: at, Until: sim.Infinity}
			kind := "permanent"
			if window > 0 {
				s.Until = at + sim.Time(window)
				kind = fmt.Sprintf("%v", window)
			}
			s.Name = fmt.Sprintf("%s@%v/%s", class, at, kind)
			out = append(out, s)
		}
	}
	return out
}

// RunCampaign executes every scenario through run on at most workers
// goroutines (<= 0 selects GOMAXPROCS). Each scenario must build its own
// platform inside run — simulations share nothing — so results are
// deterministic and slot-indexed: out[i] always belongs to scenarios[i],
// regardless of scheduling.
func RunCampaign(workers int, scenarios []Scenario, run func(Scenario) Result) []Result {
	out := make([]Result, len(scenarios))
	// The job function never errors: a scenario's outcome — including a
	// crashed or undetected fault — is data, not a campaign failure.
	_ = par.ForEach(workers, len(scenarios), func(i int) error {
		out[i] = run(scenarios[i])
		return nil
	})
	return out
}

// Availability returns the fraction of expected periodic completions of a
// source that actually finished in [from, to): 1.0 is full service,
// 0 is a dead service. More than expected (catch-up after a stall) clamps
// to 1.
func Availability(r *trace.Recorder, source string, period sim.Duration, from, to sim.Time) float64 {
	if period <= 0 || to <= from {
		return 0
	}
	expected := int64(to-from) / int64(period)
	if expected == 0 {
		return 1
	}
	n := int64(0)
	for _, rec := range r.BySource(source) {
		if rec.Kind == trace.Finish && rec.At >= from && rec.At < to {
			n++
		}
	}
	av := float64(n) / float64(expected)
	if av > 1 {
		av = 1
	}
	return av
}

// ServiceRecovery examines a periodic source's finish stream after an
// injection. The service is down whenever consecutive finishes are more
// than 2*period apart. It returns the delay from injectAt to the finish
// that ended the last outage — 0 if the service never went down — and
// whether the service was up again at the horizon (false means it was
// still down, and the latency is meaningless).
func ServiceRecovery(r *trace.Recorder, source string, period sim.Duration, injectAt, horizon sim.Time) (sim.Duration, bool) {
	gap := sim.Time(2 * period)
	prev := injectAt
	lastOutageEnd := sim.Time(-1)
	for _, rec := range r.BySource(source) {
		if rec.Kind != trace.Finish || rec.At <= injectAt {
			continue
		}
		if rec.At-prev > gap {
			lastOutageEnd = rec.At
		}
		prev = rec.At
	}
	if horizon-prev > gap {
		return 0, false
	}
	if lastOutageEnd < 0 {
		return 0, true
	}
	return lastOutageEnd - injectAt, true
}
