package fault

import (
	"fmt"
	"sort"
	"strings"

	"autorte/internal/par"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// This file is the fault-injection campaign runner: it sweeps a fault
// space (sensor failure modes x bus faults x WCET overruns x injection
// times), executes every scenario as an independent simulation in
// parallel, and reports detection latency, recovery latency and
// availability per scenario. Experiment E11 and `autosim -faults` drive
// it against the reference health-monitored system.

// FaultClass enumerates the injected fault classes of the campaign.
type FaultClass uint8

// The swept fault classes.
const (
	// FaultSensorSilent: the sensor stops producing.
	FaultSensorSilent FaultClass = iota
	// FaultSensorStuck: the sensor repeats its last published values.
	FaultSensorStuck
	// FaultSensorNoise: the sensor produces implausible values.
	FaultSensorNoise
	// FaultCANBurst: bus errors corrupt every frame in the window.
	FaultCANBurst
	// FaultOverrun: a runnable exceeds its execution budget.
	FaultOverrun
	// FaultCommCorrupt: received payloads carry flipped bits (comm.go).
	FaultCommCorrupt
	// FaultCommMasquerade: an internally valid frame of a foreign stream.
	FaultCommMasquerade
	// FaultCommDrop: frames are lost in transit.
	FaultCommDrop
	// FaultCommDuplicate: every frame is delivered twice.
	FaultCommDuplicate
	// FaultCommDelay: frames are held beyond the receiver's timeout bound.
	FaultCommDelay
	// FaultCommResequence: consecutive frames swap order.
	FaultCommResequence
	// FaultECUKill: an ECU dies permanently — every hosted task stops and
	// never resumes. The fail-operational deployment study (E13) scores
	// candidate deployments under this class: only a standby replica on a
	// surviving ECU can restore the service.
	FaultECUKill
)

var faultClassNames = [...]string{
	"sensor-silent", "sensor-stuck", "sensor-noise", "can-burst", "wcet-overrun",
	"comm-corrupt", "comm-masquerade", "comm-drop", "comm-duplicate",
	"comm-delay", "comm-resequence", "ecu-kill",
}

func (c FaultClass) String() string {
	if int(c) < len(faultClassNames) {
		return faultClassNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classes returns every fault class in declaration order.
func Classes() []FaultClass {
	out := make([]FaultClass, len(faultClassNames))
	for i := range out {
		out[i] = FaultClass(i)
	}
	return out
}

// ClassNames returns the valid fault-class names in declaration order —
// the list a CLI prints when the user asks for an unknown class.
func ClassNames() []string {
	return append([]string(nil), faultClassNames[:]...)
}

// ParseClass resolves a fault-class name (as printed by String). Unknown
// names fail with an error that lists every valid class, so a mistyped
// `-faults` selection dies loudly instead of silently sweeping nothing.
func ParseClass(name string) (FaultClass, error) {
	for i, n := range faultClassNames {
		if n == name {
			return FaultClass(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown fault class %q (valid: %s)", name, strings.Join(faultClassNames[:], ", "))
}

// ParseClasses resolves a comma-separated class-name list; "all" selects
// every class. Empty input is an error — a campaign over no classes is a
// configuration mistake, not an empty result.
func ParseClasses(list string) ([]FaultClass, error) {
	if strings.TrimSpace(list) == "" {
		return nil, fmt.Errorf("fault: empty fault-class list (use \"all\" or a comma-separated subset of: %s)", strings.Join(faultClassNames[:], ", "))
	}
	if strings.TrimSpace(list) == "all" {
		return Classes(), nil
	}
	var out []FaultClass
	for _, name := range strings.Split(list, ",") {
		c, err := ParseClass(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Scenario is one cell of the fault space.
type Scenario struct {
	Name     string
	Class    FaultClass
	InjectAt sim.Time
	// Until ends transient faults; sim.Infinity means permanent.
	Until sim.Time
}

// Transient reports whether the fault ends before the horizon.
func (s Scenario) Transient() bool { return s.Until != sim.Infinity }

// Result is the measured outcome of one scenario.
type Result struct {
	Scenario Scenario
	// Detected and DetectionLatency: first matching error report at or
	// after injection.
	Detected         bool
	DetectionLatency sim.Duration
	// Recovered and RecoveryLatency: whether the observed service was up
	// at the horizon and how long after injection the last outage ended
	// (see ServiceRecovery).
	Recovered       bool
	RecoveryLatency sim.Duration
	// Availability is the fraction of expected service completions that
	// actually happened between injection and horizon.
	Availability float64
	// Escalations counts recovery attempts the health monitor performed.
	Escalations int64
	// FinalState summarizes the end state (degradation level or partition
	// health) as reported by the scenario runner.
	FinalState string
	// Errors is the total number of platform error reports.
	Errors int64
}

// Sweep builds the cross product of fault classes and injection times.
// window > 0 makes every fault transient ([inject, inject+window));
// window <= 0 makes them permanent.
func Sweep(classes []FaultClass, injectTimes []sim.Time, window sim.Duration) []Scenario {
	var out []Scenario
	for _, class := range classes {
		for _, at := range injectTimes {
			s := Scenario{Class: class, InjectAt: at, Until: sim.Infinity}
			kind := "permanent"
			if window > 0 {
				s.Until = at + sim.Time(window)
				kind = fmt.Sprintf("%v", window)
			}
			s.Name = fmt.Sprintf("%s@%v/%s", class, at, kind)
			out = append(out, s)
		}
	}
	return out
}

// RunCampaign executes every scenario through run on at most workers
// goroutines (<= 0 selects GOMAXPROCS). Each scenario must build its own
// platform inside run — simulations share nothing — so results are
// deterministic and slot-indexed: out[i] always belongs to scenarios[i],
// regardless of scheduling. An empty campaign is a configuration error,
// not an empty result: reports aggregating over it would divide by zero.
func RunCampaign(workers int, scenarios []Scenario, run func(Scenario) Result) ([]Result, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("fault: empty campaign: no scenarios to run")
	}
	out := make([]Result, len(scenarios))
	// The job function never errors: a scenario's outcome — including a
	// crashed or undetected fault — is data, not a campaign failure.
	_ = par.ForEach(workers, len(scenarios), func(i int) error {
		out[i] = run(scenarios[i])
		return nil
	})
	return out, nil
}

// Availability returns the fraction of expected periodic completions of a
// source that actually finished in [from, to): 1.0 is full service,
// 0 is a dead service. More than expected (catch-up after a stall) clamps
// to 1. A non-positive period or a zero-length observation window is an
// explicit error — the quotient would otherwise be a silent 0 (or NaN in
// a hand-rolled variant) that reads like a dead service in reports.
func Availability(r *trace.Recorder, source string, period sim.Duration, from, to sim.Time) (float64, error) {
	return AvailabilityAny(r, []string{source}, period, from, to)
}

// AvailabilityAny is Availability over a replicated service: the union of
// the sources' finish streams (primary or promoted standby — whichever
// instance delivers, the function is up).
func AvailabilityAny(r *trace.Recorder, sources []string, period sim.Duration, from, to sim.Time) (float64, error) {
	if err := checkWindow(sources, period, from, to); err != nil {
		return 0, err
	}
	expected := int64(to-from) / int64(period)
	if expected == 0 {
		return 1, nil
	}
	n := int64(0)
	for _, source := range sources {
		for _, rec := range r.BySource(source) {
			if rec.Kind == trace.Finish && rec.At >= from && rec.At < to {
				n++
			}
		}
	}
	av := float64(n) / float64(expected)
	if av > 1 {
		av = 1
	}
	return av, nil
}

// ServiceRecovery examines a periodic source's finish stream after an
// injection. The service is down whenever consecutive finishes are more
// than 2*period apart. It returns the delay from injectAt to the finish
// that ended the last outage — 0 if the service never went down — and
// whether the service was up again at the horizon (false means it was
// still down, and the latency is meaningless). A non-positive period or a
// horizon at or before the injection is an explicit error.
func ServiceRecovery(r *trace.Recorder, source string, period sim.Duration, injectAt, horizon sim.Time) (sim.Duration, bool, error) {
	return ServiceRecoveryAny(r, []string{source}, period, injectAt, horizon)
}

// ServiceRecoveryAny is ServiceRecovery over a replicated service: the
// merged, time-ordered finish stream of all sources. A fail-over that
// moves delivery from the primary to a promoted standby counts as
// continued (or recovered) service.
func ServiceRecoveryAny(r *trace.Recorder, sources []string, period sim.Duration, injectAt, horizon sim.Time) (sim.Duration, bool, error) {
	if err := checkWindow(sources, period, injectAt, horizon); err != nil {
		return 0, false, err
	}
	var finishes []sim.Time
	for _, source := range sources {
		for _, rec := range r.BySource(source) {
			if rec.Kind == trace.Finish && rec.At > injectAt {
				finishes = append(finishes, rec.At)
			}
		}
	}
	sort.Slice(finishes, func(i, j int) bool { return finishes[i] < finishes[j] })
	gap := sim.Time(2 * period)
	prev := injectAt
	lastOutageEnd := sim.Time(-1)
	for _, at := range finishes {
		if at-prev > gap {
			lastOutageEnd = at
		}
		prev = at
	}
	if horizon-prev > gap {
		return 0, false, nil
	}
	if lastOutageEnd < 0 {
		return 0, true, nil
	}
	return lastOutageEnd - injectAt, true, nil
}

// checkWindow rejects the degenerate scoring inputs every service metric
// shares: no observed sources, a rate-less service, an empty window.
func checkWindow(sources []string, period sim.Duration, from, to sim.Time) error {
	if len(sources) == 0 {
		return fmt.Errorf("fault: service scoring needs at least one source")
	}
	if period <= 0 {
		return fmt.Errorf("fault: non-positive service period %v", period)
	}
	if to <= from {
		return fmt.Errorf("fault: zero-length observation window [%v, %v)", from, to)
	}
	return nil
}
