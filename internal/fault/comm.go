package fault

import (
	"autorte/internal/e2eprot"
	"autorte/internal/flexray"
	"autorte/internal/overlay"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// Communication fault taxonomy: the receive-side fault models of the E2E
// protection literature (corruption, masquerade, loss, repetition, delay,
// re-sequencing). Each injector installs an rte.RxTamper on one signal and
// is active in the [from, until) window; until == 0 means permanent. The
// same injector works on protected and unprotected platforms, so detection
// coverage can be compared under an identical fault load.

// CommInjector accounts the faults one communication injector actually
// produced — the denominator of a detection-coverage measurement.
type CommInjector struct {
	// Injected counts fault events: corrupted/forged/dropped/delayed
	// frames, extra duplicate copies, or swapped pairs.
	Injected int
}

func inWindow(at, from sim.Time, until sim.Time) bool {
	return at >= from && (until == 0 || at < until)
}

// CorruptPayload flips one random payload bit of every frame delivered in
// the window — the bit-error model a bus CRC would catch on the wire but
// nothing catches past the controller (gateway RAM, driver buffers).
func CorruptPayload(p *rte.Platform, signal string, from, until sim.Time, seed uint64) *CommInjector {
	inj := &CommInjector{}
	r := sim.NewRand(seed)
	p.TamperRx(signal, func(at sim.Time, payload []byte, deliver func([]byte)) {
		if !inWindow(at, from, until) || len(payload) == 0 {
			deliver(payload)
			return
		}
		cp := append([]byte(nil), payload...)
		bit := int(r.Uint64() % uint64(len(cp)*8))
		cp[bit/8] ^= 1 << (bit % 8)
		inj.Injected++
		deliver(cp)
	})
	return inj
}

// Masquerade substitutes frames of a foreign stream: the payload carries a
// wrong value, and on a protected platform the forged frame is re-protected
// under a different DataID — internally consistent, so only the receiver's
// implicit DataID binding can expose it. Unprotected receivers accept the
// impostor silently.
func Masquerade(p *rte.Platform, signal string, from, until sim.Time) *CommInjector {
	inj := &CommInjector{}
	var forge *e2eprot.Sender
	if cfg, ok := p.E2EConfig(signal); ok {
		cfg.DataID ^= 0x5A5A // the impostor stream's identity
		forge = e2eprot.NewSender(cfg)
	}
	p.TamperRx(signal, func(at sim.Time, payload []byte, deliver func([]byte)) {
		if !inWindow(at, from, until) || len(payload) == 0 {
			deliver(payload)
			return
		}
		cp := append([]byte(nil), payload...)
		cp[0] ^= 0x0F // plausible but wrong data from the foreign stream
		if forge != nil {
			_ = forge.Protect(cp) //autovet:allow errreport forging a masquerade frame: the copied payload matches the channel config by construction
		}
		inj.Injected++
		deliver(cp)
	})
	return inj
}

// DropPDU loses every frame in the window — the dead-channel/stuck-gateway
// model. Only timeout supervision can see it.
func DropPDU(p *rte.Platform, signal string, from, until sim.Time) *CommInjector {
	inj := &CommInjector{}
	p.TamperRx(signal, func(at sim.Time, payload []byte, deliver func([]byte)) {
		if !inWindow(at, from, until) {
			deliver(payload)
			return
		}
		inj.Injected++
	})
	return inj
}

// DuplicatePDU delivers every frame in the window twice — the babbling
// gateway/retransmission-storm model. The extra copy is the counted fault.
func DuplicatePDU(p *rte.Platform, signal string, from, until sim.Time) *CommInjector {
	inj := &CommInjector{}
	p.TamperRx(signal, func(at sim.Time, payload []byte, deliver func([]byte)) {
		deliver(payload)
		if !inWindow(at, from, until) {
			return
		}
		inj.Injected++
		deliver(append([]byte(nil), payload...))
	})
	return inj
}

// DelayPDU holds every frame in the window for delay before delivering it.
// A delay beyond the receiver's timeout bound manifests as NotAvailable;
// shorter delays are tolerated staleness, invisible by design.
func DelayPDU(p *rte.Platform, signal string, from, until sim.Time, delay sim.Duration) *CommInjector {
	inj := &CommInjector{}
	p.TamperRx(signal, func(at sim.Time, payload []byte, deliver func([]byte)) {
		if !inWindow(at, from, until) {
			deliver(payload)
			return
		}
		inj.Injected++
		cp := append([]byte(nil), payload...)
		p.K.AtPrio(at+delay, 45, func() { deliver(cp) })
	})
	return inj
}

// ResequencePDU swaps consecutive frame pairs in the window: the first of
// each pair is held until the second arrives, then they deliver in reversed
// order. One swapped pair counts as one fault.
func ResequencePDU(p *rte.Platform, signal string, from, until sim.Time) *CommInjector {
	inj := &CommInjector{}
	var held []byte
	p.TamperRx(signal, func(at sim.Time, payload []byte, deliver func([]byte)) {
		if !inWindow(at, from, until) {
			deliver(payload)
			return
		}
		if held == nil {
			held = append([]byte(nil), payload...)
			return
		}
		inj.Injected++
		deliver(payload)
		deliver(held)
		held = nil
	})
	return inj
}

// FlexRayBurst corrupts frames on a FlexRay bus with the given probability
// per physical channel during [from, until). Because each channel rolls
// independently, ChannelAB frames survive unless both copies are hit —
// the dual-channel redundancy argument, measurable.
func FlexRayBurst(bus *flexray.Bus, from, until sim.Time, probability float64, seed uint64) {
	r := sim.NewRand(seed)
	bus.ErrorInjector = func(_ *flexray.Frame, _ flexray.Channel, at sim.Time) bool {
		if at < from || at >= until {
			return false
		}
		return r.Float64() < probability
	}
}

// OverlayBurst corrupts payloads inside the CAN-overlay NoC fabric with the
// given probability during [from, until): one random payload bit flips per
// hit frame. No bus-level CRC exists at that layer, so without E2E
// protection the corruption reaches the application unnoticed.
func OverlayBurst(v *overlay.VirtualCAN, from, until sim.Time, probability float64, seed uint64) {
	r := sim.NewRand(seed)
	v.Tamper = func(_ *overlay.Message, at sim.Time, payload []byte) []byte {
		if at < from || at >= until || len(payload) == 0 {
			return payload
		}
		if r.Float64() >= probability {
			return payload
		}
		cp := append([]byte(nil), payload...)
		bit := int(r.Uint64() % uint64(len(cp)*8))
		cp[bit/8] ^= 1 << (bit % 8)
		return cp
	}
}
