package fault

import (
	"testing"

	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// monitoredSystem: Sensor -> Ctrl chain plus a Monitor component sampling
// the same signal and a Diag component subscribed to error modes.
func monitoredSystem() *model.System {
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	return &model.System{
		Name:       "mon",
		Interfaces: []*model.PortInterface{ifV},
		Components: []*model.SWC{
			{
				Name:  "Sensor",
				Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "sample", WCETNominal: sim.US(50),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
					Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
				}},
			},
			{
				Name:  "Monitor",
				Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "check", WCETNominal: sim.US(20),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10), Offset: sim.MS(5)},
					Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
				}},
			},
			{
				Name: "Diag",
				Runnables: []model.Runnable{{
					Name: "onSensor", WCETNominal: sim.US(10),
					Trigger: model.Trigger{Kind: model.ModeSwitchEvent, Mode: "sensor"},
				}},
			},
		},
		ECUs:       []*model.ECU{{Name: "e1", Speed: 1}},
		Connectors: []model.Connector{{FromSWC: "Sensor", FromPort: "out", ToSWC: "Monitor", ToPort: "in"}},
		Mapping:    map[string]string{"Sensor": "e1", "Monitor": "e1", "Diag": "e1"},
	}
}

func healthySensor(c *rte.Context) { c.Write("out", "v", 100) }

func TestSilentSensorDetectedByAgeMonitor(t *testing.T) {
	p := rte.MustBuild(monitoredSystem(), rte.Options{})
	injectAt := sim.MS(50)
	p.SetBehavior("Sensor", "sample", BreakSensor(injectAt, Silent, 0, healthySensor))
	p.SetBehavior("Monitor", "check", AgeMonitor("in", "v", sim.MS(25)))
	p.Run(sim.MS(200))
	lat, ok := DetectionLatency(p.Errors.Records(), rte.ErrSensor, injectAt)
	if !ok {
		t.Fatal("silent sensor never detected")
	}
	// Last good sample at 40ms; age exceeds 25ms at 65ms; monitor runs at
	// 65ms: detection at 65ms -> latency 15ms from injection. Allow the
	// surrounding monitor periods.
	if lat > sim.MS(40) {
		t.Fatalf("detection latency %v too large", lat)
	}
}

func TestNoiseSensorDetectedByRangeMonitor(t *testing.T) {
	p := rte.MustBuild(monitoredSystem(), rte.Options{})
	injectAt := sim.MS(50)
	p.SetBehavior("Sensor", "sample", BreakSensor(injectAt, Noise, 9999, healthySensor))
	p.SetBehavior("Monitor", "check", RangeMonitor("in", "v", 0, 300, rte.ErrSensor))
	p.Run(sim.MS(200))
	lat, ok := DetectionLatency(p.Errors.Records(), rte.ErrSensor, injectAt)
	if !ok {
		t.Fatal("noisy sensor never detected")
	}
	if lat > sim.MS(20) {
		t.Fatalf("detection latency %v too large", lat)
	}
}

func TestStuckSensorKeepsLastValue(t *testing.T) {
	p := rte.MustBuild(monitoredSystem(), rte.Options{})
	p.SetBehavior("Sensor", "sample", BreakSensor(sim.MS(50), Stuck, 0, healthySensor))
	p.SetBehavior("Monitor", "check", func(c *rte.Context) {})
	p.Run(sim.MS(200))
	if v, ok := p.Value("Monitor", "in", "v"); !ok || v != 100 {
		t.Fatalf("stuck sensor value (%v,%v), want (100,true)", v, ok)
	}
	// Stuck values keep refreshing: age stays small, so an age monitor
	// would NOT catch this mode (that is the point of plausibility checks).
}

func TestStuckSensorLatchesLastValueNotBehaviour(t *testing.T) {
	// The healthy behaviour derives its output from live state (the job
	// index), so re-running it after the fault would produce FRESH values.
	// Stuck must replay the last actually-written value instead.
	p := rte.MustBuild(monitoredSystem(), rte.Options{})
	p.SetBehavior("Sensor", "sample", BreakSensor(sim.MS(50), Stuck, 0,
		func(c *rte.Context) { c.Write("out", "v", float64(c.Job())) }))
	var after []float64
	p.SetBehavior("Monitor", "check", func(c *rte.Context) {
		if c.Now() > sim.MS(50) {
			after = append(after, c.Read("in", "v"))
		}
	})
	p.Run(sim.MS(200))
	if len(after) == 0 {
		t.Fatal("monitor saw nothing after the fault")
	}
	// Last healthy job: release at 40ms is job 4 (jobs 0..4 before 50ms).
	for i, v := range after {
		if v != 4 {
			t.Fatalf("post-fault sample %d = %v, want the latched 4 (stuck sensor produced fresh values)", i, v)
		}
	}
	// The stuck stream keeps refreshing, so its age stays bounded.
	p2 := rte.MustBuild(monitoredSystem(), rte.Options{})
	p2.SetBehavior("Sensor", "sample", BreakSensor(sim.MS(50), Stuck, 0,
		func(c *rte.Context) { c.Write("out", "v", float64(c.Job())) }))
	var worstAge sim.Duration
	p2.SetBehavior("Monitor", "check", func(c *rte.Context) {
		if a := c.Age("in", "v"); a > worstAge {
			worstAge = a
		}
	})
	p2.Run(sim.MS(200))
	if worstAge > sim.MS(15) {
		t.Fatalf("stuck sensor stopped refreshing: worst age %v", worstAge)
	}
}

func TestBreakSensorBetweenRecovers(t *testing.T) {
	p := rte.MustBuild(monitoredSystem(), rte.Options{})
	p.SetBehavior("Sensor", "sample",
		BreakSensorBetween(sim.MS(50), sim.MS(120), Silent, 0, healthySensor))
	p.SetBehavior("Monitor", "check", AgeMonitor("in", "v", sim.MS(25)))
	p.Run(sim.MS(250))
	if _, ok := DetectionLatency(p.Errors.Records(), rte.ErrSensor, sim.MS(50)); !ok {
		t.Fatal("transient silent window never detected")
	}
	// After the window the sensor publishes again: the value's age drops
	// back under the monitor threshold and stays there.
	if v, ok := p.Value("Monitor", "in", "v"); !ok || v != 100 {
		t.Fatalf("sensor did not recover after the fault window: (%v,%v)", v, ok)
	}
	if got := p.Errors.CountKind(rte.ErrSensor); got != 1 {
		t.Fatalf("age monitor reported %d errors, want 1 (one stall episode)", got)
	}
}

func TestErrorReachesSubscribedDiag(t *testing.T) {
	p := rte.MustBuild(monitoredSystem(), rte.Options{})
	p.SetBehavior("Sensor", "sample", BreakSensor(sim.MS(50), Silent, 0, healthySensor))
	p.SetBehavior("Monitor", "check", AgeMonitor("in", "v", sim.MS(25)))
	var diagRan int
	p.SetBehavior("Diag", "onSensor", func(c *rte.Context) { diagRan++ })
	p.Run(sim.MS(200))
	if diagRan == 0 {
		t.Fatal("diagnostic handler never activated")
	}
}

func TestCorruptValueDetected(t *testing.T) {
	p := rte.MustBuild(monitoredSystem(), rte.Options{})
	injectAt := sim.MS(70)
	p.SetBehavior("Sensor", "sample", CorruptValue(injectAt, healthySensor))
	p.SetBehavior("Monitor", "check", RangeMonitor("in", "v", 0, 300, rte.ErrMemory))
	p.Run(sim.MS(200))
	if _, ok := DetectionLatency(p.Errors.Records(), rte.ErrMemory, injectAt); !ok {
		t.Fatal("memory corruption never detected")
	}
}

func TestOverrunTask(t *testing.T) {
	p := rte.MustBuild(monitoredSystem(), rte.Options{EnforceBudgets: true})
	task := p.Task("Sensor", "sample")
	OverrunTask(p.K, task, sim.MS(50), 100)
	p.Run(sim.MS(200))
	st := p.Stats("Sensor.sample")
	if st.AbortCount == 0 {
		t.Fatal("overrun never hit the budget")
	}
	// Jobs before 50ms finish normally.
	if p.Trace.Count(trace.Finish, "Sensor.sample") < 5 {
		t.Fatal("pre-fault jobs did not finish")
	}
}

func TestCANBurstWindow(t *testing.T) {
	// Use the rte chain over CAN with a burst window and count bus errors.
	sys := monitoredSystem()
	sys.ECUs = append(sys.ECUs, &model.ECU{Name: "e2", Speed: 1, Buses: []string{"can0"}})
	sys.ECUs[0].Buses = []string{"can0"}
	sys.Buses = []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 500_000}}
	sys.Mapping["Monitor"] = "e2"
	p := rte.MustBuild(sys, rte.Options{})
	CANBurst(p.CANBus("can0"), sim.MS(50), sim.MS(100), 1.0, 7)
	p.Run(sim.MS(200))
	if p.CANBus("can0").Retransmissions() == 0 {
		t.Fatal("burst produced no retransmissions")
	}
	// Frames still get through eventually (automatic retransmission) —
	// before and after the burst, and retried inside it.
	if p.Trace.Count(trace.Finish, "Sensor.out.v->Monitor.in") < 10 {
		t.Fatal("burst permanently killed the stream")
	}
}

func TestDetectionLatencyHelper(t *testing.T) {
	recs := []rte.ErrorRecord{
		{At: int64(sim.MS(10)), Kind: rte.ErrComm},
		{At: int64(sim.MS(60)), Kind: rte.ErrSensor},
	}
	if _, ok := DetectionLatency(recs, rte.ErrSensor, sim.MS(70)); ok {
		t.Fatal("pre-injection report counted")
	}
	lat, ok := DetectionLatency(recs, rte.ErrSensor, sim.MS(50))
	if !ok || lat != sim.MS(10) {
		t.Fatalf("latency (%v,%v), want (10ms,true)", lat, ok)
	}
}

func TestSensorModeString(t *testing.T) {
	if Silent.String() != "silent" || Stuck.String() != "stuck" || Noise.String() != "noise" {
		t.Fatal("mode names")
	}
}
