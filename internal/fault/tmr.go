package fault

import (
	"fmt"
	"sort"

	"autorte/internal/rte"
	"autorte/internal/sim"
)

// Replica names one input of a redundant set: a required port element fed
// by one replicated producer.
type Replica struct {
	Port, Elem string
}

// Voter returns the behaviour of a 2-out-of-3 (or N-replica median) voter
// component — the classic design pattern for highly reliable components
// §1's dependability discussion calls for. Each execution reads every
// replica, outputs the median on (outPort, outElem), and reports a sensor
// error (once per episode) when any replica deviates from the median by
// more than tolerance: the faulty replica is out-voted AND diagnosed.
func Voter(replicas []Replica, outPort, outElem string, tolerance float64) (rte.Behavior, error) {
	if len(replicas) < 2 {
		return nil, fmt.Errorf("fault: voter needs at least two replicas")
	}
	if tolerance < 0 {
		return nil, fmt.Errorf("fault: negative tolerance")
	}
	reported := make([]bool, len(replicas))
	return func(c *rte.Context) {
		vals := make([]float64, 0, len(replicas))
		idx := make([]int, 0, len(replicas))
		for i, r := range replicas {
			if v, ok := c.ReadOK(r.Port, r.Elem); ok {
				vals = append(vals, v)
				idx = append(idx, i)
			}
		}
		if len(vals) < 2 {
			return // not enough data yet to vote
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		median := sorted[len(sorted)/2]
		//autovet:allow e2eflow the vote is the qualification: median masking over independent replicas tolerates a corrupted input
		c.Write(outPort, outElem, median)
		for j, v := range vals {
			i := idx[j]
			dev := v - median
			if dev < 0 {
				dev = -dev
			}
			if dev > tolerance {
				if !reported[i] {
					reported[i] = true
					c.Report(rte.ErrSensor, fmt.Sprintf("replica %s.%s deviates from vote", replicas[i].Port, replicas[i].Elem))
				}
			} else {
				reported[i] = false
			}
		}
	}, nil
}

// MustVoter is Voter that panics on configuration error.
func MustVoter(replicas []Replica, outPort, outElem string, tolerance float64) rte.Behavior {
	b, err := Voter(replicas, outPort, outElem, tolerance)
	if err != nil {
		panic(err)
	}
	return b
}

// DriftSensor builds a producer whose output drifts away linearly from
// time at on — the slow-degradation fault a voter must out-vote (unlike
// Noise, drifting values stay individually plausible, so a simple range
// monitor cannot catch them early). value computes the healthy physical
// reading; the drifted result is published on every declared write.
func DriftSensor(at sim.Time, ratePerSec float64, value func(c *rte.Context) float64) rte.Behavior {
	return func(c *rte.Context) {
		v := value(c)
		if c.Now() >= at {
			v += ratePerSec * float64(c.Now()-at) / float64(sim.Second)
		}
		for _, w := range c.Writes() {
			c.Write(w.Port, w.Elem, v)
		}
	}
}
