package fault

import (
	"fmt"
	"testing"

	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// tmrSystem: three replicated sensors feeding a voter on one ECU; the
// voter publishes the voted value to a consumer.
func tmrSystem() *model.System {
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	sys := &model.System{
		Name:       "tmr",
		Interfaces: []*model.PortInterface{ifV},
		ECUs:       []*model.ECU{{Name: "e1", Speed: 1}},
		Mapping:    map[string]string{},
	}
	voter := &model.SWC{
		Name: "Voter",
		Ports: []model.Port{
			{Name: "in0", Direction: model.Required, Interface: ifV},
			{Name: "in1", Direction: model.Required, Interface: ifV},
			{Name: "in2", Direction: model.Required, Interface: ifV},
			{Name: "out", Direction: model.Provided, Interface: ifV},
		},
		Runnables: []model.Runnable{{
			Name: "vote", WCETNominal: sim.US(30),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10), Offset: sim.MS(1)},
			Reads: []model.PortRef{
				{Port: "in0", Elem: "v"}, {Port: "in1", Elem: "v"}, {Port: "in2", Elem: "v"},
			},
			Writes: []model.PortRef{{Port: "out", Elem: "v"}},
		}},
	}
	sink := &model.SWC{
		Name:  "Consumer",
		Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifV}},
		Runnables: []model.Runnable{{
			Name: "use", WCETNominal: sim.US(10),
			Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
			Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
		}},
	}
	sys.Components = append(sys.Components, voter, sink)
	sys.Connectors = append(sys.Connectors,
		model.Connector{FromSWC: "Voter", FromPort: "out", ToSWC: "Consumer", ToPort: "in"})
	sys.Mapping["Voter"] = "e1"
	sys.Mapping["Consumer"] = "e1"
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("Sensor%d", i)
		sys.Components = append(sys.Components, &model.SWC{
			Name:  name,
			Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
			Runnables: []model.Runnable{{
				Name: "sample", WCETNominal: sim.US(20),
				Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
				Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
			}},
		})
		sys.Connectors = append(sys.Connectors, model.Connector{
			FromSWC: name, FromPort: "out", ToSWC: "Voter", ToPort: fmt.Sprintf("in%d", i),
		})
		sys.Mapping[name] = "e1"
	}
	return sys
}

func TestVoterOutvotesDriftingReplica(t *testing.T) {
	sys := tmrSystem()
	p := rte.MustBuild(sys, rte.Options{})
	healthy := func(c *rte.Context) float64 { return 100 }
	p.SetBehavior("Sensor0", "sample", DriftSensor(sim.MS(50), 2000, healthy)) // drifts fast
	p.SetBehavior("Sensor1", "sample", DriftSensor(sim.Infinity, 0, healthy))  // healthy
	p.SetBehavior("Sensor2", "sample", DriftSensor(sim.Infinity, 0, healthy))  // healthy
	p.SetBehavior("Voter", "vote", MustVoter(
		[]Replica{{"in0", "v"}, {"in1", "v"}, {"in2", "v"}}, "out", "v", 5))
	var worst float64
	p.SetBehavior("Consumer", "use", func(c *rte.Context) {
		v := c.Read("in", "v")
		if d := v - 100; d > worst || -d > worst {
			if d < 0 {
				d = -d
			}
			worst = d
		}
	})
	p.Run(sim.MS(300))
	// The median out-votes the drifter: consumer never sees the drift.
	if worst > 1 {
		t.Fatalf("voted output deviated by %v; drift leaked through", worst)
	}
	// And the deviation is diagnosed through the error path.
	if p.Errors.CountKind(rte.ErrSensor) == 0 {
		t.Fatal("drifting replica never diagnosed")
	}
}

func TestVoterWithTwoReplicasStillVotes(t *testing.T) {
	// Degraded 2-replica vote: median of two = higher one; it must still
	// publish and diagnose disagreement.
	sys := tmrSystem()
	p := rte.MustBuild(sys, rte.Options{})
	healthy := func(c *rte.Context) float64 { return 50 }
	p.SetBehavior("Sensor0", "sample", DriftSensor(sim.Infinity, 0, healthy))
	p.SetBehavior("Sensor1", "sample", DriftSensor(sim.Infinity, 0, healthy))
	p.SetBehavior("Sensor2", "sample", func(c *rte.Context) {}) // replica dead from start
	p.SetBehavior("Voter", "vote", MustVoter(
		[]Replica{{"in0", "v"}, {"in1", "v"}, {"in2", "v"}}, "out", "v", 5))
	var got float64
	p.SetBehavior("Consumer", "use", func(c *rte.Context) { got = c.Read("in", "v") })
	p.Run(sim.MS(100))
	if got != 50 {
		t.Fatalf("2-replica vote output %v, want 50", got)
	}
}

func TestVoterValidation(t *testing.T) {
	if _, err := Voter([]Replica{{"a", "v"}}, "out", "v", 1); err == nil {
		t.Fatal("single replica accepted")
	}
	if _, err := Voter([]Replica{{"a", "v"}, {"b", "v"}}, "out", "v", -1); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}
