// Package fault implements the fault-injection and error-detection
// machinery behind the paper's §2 error handling use cases — broken
// sensors, communication errors, memory failures — plus the timing faults
// (WCET overruns, babbling idiots) §1/§4 require the platform to contain.
//
// Injectors wrap RTE behaviours or bus hooks; detectors are behaviours
// that watch temporal validity and value plausibility and report through
// the platform error manager. Experiment E10 measures detection latency
// and containment for each use case.
package fault

import (
	"fmt"
	"math"

	"autorte/internal/can"
	"autorte/internal/osek"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// SensorMode selects how a broken sensor misbehaves.
type SensorMode uint8

const (
	// Silent sensors stop producing (detectable by age monitoring).
	Silent SensorMode = iota
	// Stuck sensors repeat their last value forever.
	Stuck
	// Noise sensors produce implausible out-of-range values.
	Noise
)

func (m SensorMode) String() string {
	switch m {
	case Silent:
		return "silent"
	case Stuck:
		return "stuck"
	default:
		return "noise"
	}
}

// BreakSensor wraps a producing behaviour so the sensor fails at time at
// in the given mode. noiseValue is the implausible output for Noise mode.
func BreakSensor(at sim.Time, mode SensorMode, noiseValue float64, healthy rte.Behavior) rte.Behavior {
	return BreakSensorBetween(at, sim.Infinity, mode, noiseValue, healthy)
}

// latched is one captured (port, elem, value) write of the last healthy
// job, replayed verbatim by Stuck mode.
type latched struct {
	port, elem string
	value      float64
}

// BreakSensorBetween is BreakSensor with an explicit fault window: the
// sensor misbehaves in [from, until) and is healthy outside it. A finite
// window models transient faults for recovery experiments.
func BreakSensorBetween(from, until sim.Time, mode SensorMode, noiseValue float64, healthy rte.Behavior) rte.Behavior {
	var last []latched
	return func(c *rte.Context) {
		if now := c.Now(); now < from || now >= until {
			// Latch what the healthy behaviour actually writes — not the
			// behaviour itself — so Stuck repeats the last published
			// values instead of recomputing fresh ones from live inputs.
			last = last[:0]
			c.OnWrite(func(port, elem string, v float64) {
				last = append(last, latched{port, elem, v})
			})
			healthy(c)
			c.OnWrite(nil)
			return
		}
		switch mode {
		case Silent:
			// produce nothing
		case Stuck:
			for _, w := range last {
				c.Write(w.port, w.elem, w.value)
			}
		case Noise:
			// Emit the implausible value on every declared write port of
			// the healthy behaviour by delegating the port knowledge to
			// the caller-provided writer.
			healthyNoise(c, noiseValue)
		}
	}
}

// healthyNoise writes noiseValue to every declared write of the runnable.
func healthyNoise(c *rte.Context, v float64) {
	for _, w := range c.Writes() {
		c.Write(w.Port, w.Elem, v)
	}
}

// OverrunTask makes an OS task exceed its declared WCET by factor starting
// at virtual time from (the misbehaving-supplier fault of E3).
func OverrunTask(k *sim.Kernel, task *osek.Task, from sim.Time, factor float64) {
	OverrunTaskBetween(k, task, from, sim.Infinity, factor)
}

// OverrunTaskBetween is OverrunTask with an explicit fault window: jobs
// released in [from, until) demand factor times the nominal WCET, jobs
// outside it the nominal. A finite window models transient overload for
// recovery experiments.
func OverrunTaskBetween(k *sim.Kernel, task *osek.Task, from, until sim.Time, factor float64) {
	nominal := task.WCET
	task.Demand = func(int64) sim.Duration {
		if now := k.Now(); now >= from && now < until {
			return sim.Duration(float64(nominal) * factor)
		}
		return nominal
	}
}

// CANBurst installs an error injector on a CAN bus corrupting every frame
// attempt in [from, until) with the given probability.
func CANBurst(bus *can.Bus, from, until sim.Time, probability float64, seed uint64) {
	r := sim.NewRand(seed)
	bus.ErrorInjector = func(_ *can.Message, _ int, at sim.Time) bool {
		if at < from || at >= until {
			return false
		}
		return r.Float64() < probability
	}
}

// CorruptValue wraps a behaviour so that produced values get a high bit
// flipped from time at on — the memory-failure use case (a corrupted
// calibration or RAM cell).
func CorruptValue(at sim.Time, healthy rte.Behavior) rte.Behavior {
	return func(c *rte.Context) {
		if c.Now() < at {
			healthy(c)
			return
		}
		healthyNoise(c, math.MaxUint16) // saturated nonsense value
	}
}

// AgeMonitor returns a detector behaviour: a periodic runnable that
// reports a sensor error when the watched element grows older than
// maxAge. This is the temporal-validity check of the firewall pattern.
func AgeMonitor(port, elem string, maxAge sim.Duration) rte.Behavior {
	reported := false
	return func(c *rte.Context) {
		age := c.Age(port, elem)
		if age < 0 {
			return // nothing received yet
		}
		if age > maxAge && !reported {
			reported = true
			c.Report(rte.ErrSensor, "stale input: "+port+"."+elem)
		}
		if age <= maxAge {
			reported = false
		}
	}
}

// RangeMonitor returns a detector behaviour reporting when the watched
// element leaves [lo, hi] — the plausibility check that catches Noise
// sensors and memory corruption.
func RangeMonitor(port, elem string, lo, hi float64, kind rte.ErrorKind) rte.Behavior {
	reported := false
	return func(c *rte.Context) {
		v, ok := c.ReadOK(port, elem)
		if !ok {
			return
		}
		if (v < lo || v > hi) && !reported {
			reported = true
			c.Report(kind, "implausible value")
		}
		if v >= lo && v <= hi {
			reported = false
		}
	}
}

// KillECUAt schedules a permanent ECU failure at virtual time at — the
// campaign's ecu-kill class. The ECU is validated eagerly so a typo'd
// scenario fails at arm time; the scheduled kill itself cannot fail (the
// only KillECU errors are unknown or already-dead ECUs, both excluded
// here), so an error then is a programming bug and panics.
func KillECUAt(p *rte.Platform, ecu string, at sim.Time) error {
	if p.CPU(ecu) == nil {
		return fmt.Errorf("fault: ecu-kill: unknown ECU %s", ecu)
	}
	p.K.At(at, func() {
		if p.ECUDead(ecu) {
			return // two scenarios may aim at the same ECU; first kill wins
		}
		if err := p.KillECU(ecu); err != nil {
			panic(fmt.Sprintf("fault: ecu-kill of validated ECU %s: %v", ecu, err))
		}
	})
	return nil
}

// DetectionLatency returns the delay from injection to the first error
// report of the given kind at or after the injection time.
func DetectionLatency(records []rte.ErrorRecord, kind rte.ErrorKind, injectedAt sim.Time) (sim.Duration, bool) {
	for _, r := range records {
		if r.Kind == kind && sim.Time(r.At) >= injectedAt {
			return sim.Time(r.At) - injectedAt, true
		}
	}
	return 0, false
}
