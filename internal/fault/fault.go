// Package fault implements the fault-injection and error-detection
// machinery behind the paper's §2 error handling use cases — broken
// sensors, communication errors, memory failures — plus the timing faults
// (WCET overruns, babbling idiots) §1/§4 require the platform to contain.
//
// Injectors wrap RTE behaviours or bus hooks; detectors are behaviours
// that watch temporal validity and value plausibility and report through
// the platform error manager. Experiment E10 measures detection latency
// and containment for each use case.
package fault

import (
	"math"

	"autorte/internal/can"
	"autorte/internal/osek"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// SensorMode selects how a broken sensor misbehaves.
type SensorMode uint8

const (
	// Silent sensors stop producing (detectable by age monitoring).
	Silent SensorMode = iota
	// Stuck sensors repeat their last value forever.
	Stuck
	// Noise sensors produce implausible out-of-range values.
	Noise
)

func (m SensorMode) String() string {
	switch m {
	case Silent:
		return "silent"
	case Stuck:
		return "stuck"
	default:
		return "noise"
	}
}

// BreakSensor wraps a producing behaviour so the sensor fails at time at
// in the given mode. noiseValue is the implausible output for Noise mode.
func BreakSensor(at sim.Time, mode SensorMode, noiseValue float64, healthy rte.Behavior) rte.Behavior {
	var lastWrite func(*rte.Context)
	return func(c *rte.Context) {
		if c.Now() < at {
			healthy(c)
			// Remember how to re-emit for Stuck mode: re-run the healthy
			// behaviour (state semantics make re-writing idempotent).
			lastWrite = healthy
			return
		}
		switch mode {
		case Silent:
			// produce nothing
		case Stuck:
			if lastWrite != nil {
				lastWrite(c)
			}
		case Noise:
			// Emit the implausible value on every declared write port of
			// the healthy behaviour by delegating the port knowledge to
			// the caller-provided writer.
			healthyNoise(c, noiseValue)
		}
	}
}

// healthyNoise writes noiseValue to every declared write of the runnable.
func healthyNoise(c *rte.Context, v float64) {
	for _, w := range c.Writes() {
		c.Write(w.Port, w.Elem, v)
	}
}

// OverrunTask makes an OS task exceed its declared WCET by factor starting
// at virtual time from (the misbehaving-supplier fault of E3).
func OverrunTask(k *sim.Kernel, task *osek.Task, from sim.Time, factor float64) {
	nominal := task.WCET
	task.Demand = func(int64) sim.Duration {
		if k.Now() >= from {
			return sim.Duration(float64(nominal) * factor)
		}
		return nominal
	}
}

// CANBurst installs an error injector on a CAN bus corrupting every frame
// attempt in [from, until) with the given probability.
func CANBurst(bus *can.Bus, from, until sim.Time, probability float64, seed uint64) {
	r := sim.NewRand(seed)
	bus.ErrorInjector = func(_ *can.Message, _ int, at sim.Time) bool {
		if at < from || at >= until {
			return false
		}
		return r.Float64() < probability
	}
}

// CorruptValue wraps a behaviour so that produced values get a high bit
// flipped from time at on — the memory-failure use case (a corrupted
// calibration or RAM cell).
func CorruptValue(at sim.Time, healthy rte.Behavior) rte.Behavior {
	return func(c *rte.Context) {
		if c.Now() < at {
			healthy(c)
			return
		}
		healthyNoise(c, math.MaxUint16) // saturated nonsense value
	}
}

// AgeMonitor returns a detector behaviour: a periodic runnable that
// reports a sensor error when the watched element grows older than
// maxAge. This is the temporal-validity check of the firewall pattern.
func AgeMonitor(port, elem string, maxAge sim.Duration) rte.Behavior {
	reported := false
	return func(c *rte.Context) {
		age := c.Age(port, elem)
		if age < 0 {
			return // nothing received yet
		}
		if age > maxAge && !reported {
			reported = true
			c.Report(rte.ErrSensor, "stale input: "+port+"."+elem)
		}
		if age <= maxAge {
			reported = false
		}
	}
}

// RangeMonitor returns a detector behaviour reporting when the watched
// element leaves [lo, hi] — the plausibility check that catches Noise
// sensors and memory corruption.
func RangeMonitor(port, elem string, lo, hi float64, kind rte.ErrorKind) rte.Behavior {
	reported := false
	return func(c *rte.Context) {
		v, ok := c.ReadOK(port, elem)
		if !ok {
			return
		}
		if (v < lo || v > hi) && !reported {
			reported = true
			c.Report(kind, "implausible value")
		}
		if v >= lo && v <= hi {
			reported = false
		}
	}
}

// DetectionLatency returns the delay from injection to the first error
// report of the given kind at or after the injection time.
func DetectionLatency(records []rte.ErrorRecord, kind rte.ErrorKind, injectedAt sim.Time) (sim.Duration, bool) {
	for _, r := range records {
		if r.Kind == kind && sim.Time(r.At) >= injectedAt {
			return sim.Time(r.At) - injectedAt, true
		}
	}
	return 0, false
}
