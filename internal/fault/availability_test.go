package fault

import (
	"reflect"
	"testing"

	"autorte/internal/deploy"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// tripleActSystem: one periodic actuator passive-replicated across three
// ECUs — the minimal topology for overlapping-kill availability.
func tripleActSystem(t *testing.T) *model.System {
	t.Helper()
	sys := &model.System{
		Name: "triple",
		Components: []*model.SWC{{
			Name:       "Act",
			Redundancy: model.Redundancy{Replicas: 3, Mode: model.StandbyPassive},
			Runnables: []model.Runnable{{
				Name: "apply", WCETNominal: sim.US(50),
				Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
			}},
		}},
		ECUs: []*model.ECU{
			{Name: "e1", Speed: 1, Buses: []string{"can0"}},
			{Name: "e2", Speed: 1, Buses: []string{"can0"}},
			{Name: "e3", Speed: 1, Buses: []string{"can0"}},
		},
		Buses:   []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 500000}},
		Mapping: map[string]string{"Act": "e1"},
	}
	out, err := deploy.Replicate(sys)
	if err != nil {
		t.Fatal(err)
	}
	out.Mapping["Act#1"] = "e2"
	out.Mapping["Act#2"] = "e3"
	return out
}

// actSources is the replica group's finish-stream union.
func actSources(p *rte.Platform) []string {
	var out []string
	for _, name := range p.ReplicaGroup("Act") {
		out = append(out, name+".apply")
	}
	return out
}

// Overlapping permanent kills walk the service across all three
// replicas, and the last kill leaves a zero-survivor tail: the union
// counts exactly the jobs some live instance delivered, and the
// all-dead window scores exactly zero.
func TestAvailabilityAnyOverlappingKills(t *testing.T) {
	p := rte.MustBuild(tripleActSystem(t), rte.Options{})
	for _, ev := range []struct {
		at  sim.Time
		ecu string
	}{{sim.MS(25), "e1"}, {sim.MS(45), "e2"}, {sim.MS(65), "e3"}} {
		ev := ev
		p.K.At(ev.at, func() {
			if err := p.KillECU(ev.ecu); err != nil {
				t.Errorf("kill %s: %v", ev.ecu, err)
			}
			// The third kill leaves nothing to promote.
			if err := p.FailOver("Act"); ev.ecu != "e3" && err != nil {
				t.Errorf("failover after %s: %v", ev.ecu, err)
			}
		})
	}
	p.Run(sim.MS(100))

	// Act delivers 0,10,20ms; Act#1 30,40ms; Act#2 50,60ms; then the
	// zero-survivor tail: 7 of 10 expected jobs.
	av, err := AvailabilityAny(p.Trace, actSources(p), sim.MS(10), 0, sim.MS(100))
	if err != nil || av != 0.7 {
		t.Fatalf("union availability (%v, %v), want (0.7, nil)", av, err)
	}
	// The all-dead window is exactly zero for the union.
	tail, err := AvailabilityAny(p.Trace, actSources(p), sim.MS(10), sim.MS(70), sim.MS(100))
	if err != nil || tail != 0 {
		t.Fatalf("zero-survivor tail (%v, %v), want (0, nil)", tail, err)
	}
	// Each overlapping handover window credits the instance that held it.
	mid, err := AvailabilityAny(p.Trace, []string{"Act#1.apply"}, sim.MS(10), sim.MS(25), sim.MS(45))
	if err != nil || mid != 1 {
		t.Fatalf("first handover window (%v, %v), want (1, nil)", mid, err)
	}
	// Still down at the horizon: the recovery probe must say so.
	if _, ok, err := ServiceRecoveryAny(p.Trace, actSources(p), sim.MS(10), sim.MS(25), sim.MS(100)); err != nil || ok {
		t.Fatalf("recovered=%v err=%v, want still-down", ok, err)
	}
}

// The same overlapping-kill campaign scored through RunCampaign must be
// bit-identical across worker counts: results are slot-indexed and each
// scenario builds its own platform.
func TestAvailabilityAnyDeterministicAcrossWorkers(t *testing.T) {
	scenarios := []Scenario{
		{Name: "kill:e1", Class: FaultECUKill, InjectAt: sim.MS(25), Until: sim.Infinity},
		{Name: "kill:e1+e2", Class: FaultECUKill, InjectAt: sim.MS(25), Until: sim.Infinity},
		{Name: "kill:all", Class: FaultECUKill, InjectAt: sim.MS(25), Until: sim.Infinity},
	}
	kills := map[string][]string{
		"kill:e1":    {"e1"},
		"kill:e1+e2": {"e1", "e2"},
		"kill:all":   {"e1", "e2", "e3"},
	}
	campaign := func(workers int) []Result {
		results, err := RunCampaign(workers, scenarios, func(s Scenario) Result {
			p := rte.MustBuild(tripleActSystem(t), rte.Options{})
			for i, ecu := range kills[s.Name] {
				at := s.InjectAt + sim.Duration(i)*sim.MS(20)
				ecu := ecu
				p.K.At(at, func() {
					if err := p.KillECU(ecu); err != nil {
						t.Errorf("kill %s: %v", ecu, err)
					}
					// Promote whatever is left; the all-dead case refuses.
					_ = p.FailOver("Act")
				})
			}
			p.Run(sim.MS(100))
			res := Result{Scenario: s}
			res.Availability, _ = AvailabilityAny(p.Trace, actSources(p), sim.MS(10), 0, sim.MS(100))
			res.RecoveryLatency, res.Recovered, _ = ServiceRecoveryAny(p.Trace, actSources(p), sim.MS(10), s.InjectAt, sim.MS(100))
			return res
		})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	base := campaign(1)
	// Surviving replicas absorb single and double kills at full service;
	// only killing all three hosts degrades the union — and leaves it
	// unrecovered at the horizon.
	if base[0].Availability != 1 || base[1].Availability != 1 {
		t.Fatalf("covered kills degraded the union: %+v", base)
	}
	if base[2].Availability >= 1 || base[2].Recovered {
		t.Fatalf("all-hosts kill not reflected: %+v", base[2])
	}
	for _, workers := range []int{2, 8} {
		if got := campaign(workers); !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d diverges:\nbase: %+v\ngot:  %+v", workers, base, got)
		}
	}
}

// Guard the trace plumbing the union depends on: suppressed standbys
// still Finish (they are scheduled), so passive groups must count only
// the instances that actually ran.
func TestPassiveStandbysDoNotInflateUnion(t *testing.T) {
	p := rte.MustBuild(tripleActSystem(t), rte.Options{})
	p.Run(sim.MS(100))
	if n := p.Trace.Count(trace.Finish, "Act#1.apply"); n != 0 {
		t.Fatalf("passive standby finished %d jobs without promotion", n)
	}
	av, err := AvailabilityAny(p.Trace, actSources(p), sim.MS(10), 0, sim.MS(100))
	if err != nil || av != 1 {
		t.Fatalf("fault-free union (%v, %v), want (1, nil)", av, err)
	}
}
