package fault

import (
	"testing"

	"autorte/internal/obs"
	"autorte/internal/sim"
)

func TestRunCampaignSeriesSlotIndexed(t *testing.T) {
	scenarios := []Scenario{
		{Name: "a", InjectAt: sim.MS(1)},
		{Name: "b", InjectAt: sim.MS(2)},
		{Name: "c", InjectAt: sim.MS(3)},
	}
	run := func(s Scenario) (Result, []obs.Series) {
		return Result{Scenario: s}, []obs.Series{{
			Name:   "m",
			Points: []obs.SeriesPoint{{At: int64(s.InjectAt), Value: float64(len(s.Name))}},
		}}
	}
	results, series, err := RunCampaignSeries(2, scenarios, run)
	if err != nil {
		t.Fatalf("RunCampaignSeries: %v", err)
	}
	if len(results) != 3 || len(series) != 3 {
		t.Fatalf("got %d results, %d series slots", len(results), len(series))
	}
	if _, _, err := RunCampaignSeries(2, nil, run); err == nil {
		t.Fatal("empty campaign: want explicit error, got nil")
	}
	for i, s := range scenarios {
		if results[i].Scenario.Name != s.Name {
			t.Fatalf("slot %d holds result for %q, want %q", i, results[i].Scenario.Name, s.Name)
		}
		if got := series[i][0].Points[0].At; got != int64(s.InjectAt) {
			t.Fatalf("slot %d series at %d, want %d", i, got, int64(s.InjectAt))
		}
	}
}

func TestAggregateSeriesBands(t *testing.T) {
	perRun := [][]obs.Series{
		{{Name: "deg", Points: []obs.SeriesPoint{{At: 0, Value: 0}, {At: 10, Value: 2}}}},
		{{Name: "deg", Points: []obs.SeriesPoint{{At: 0, Value: 0}, {At: 10, Value: 1}, {At: 20, Value: 3}}}},
		{{Name: "other", Points: []obs.SeriesPoint{{At: 0, Value: 99}}}}, // no deg: skipped
	}
	band := AggregateSeries(perRun, "deg")
	if band.Name != "deg" || len(band.Points) != 3 {
		t.Fatalf("band = %+v", band)
	}
	// Union grid, sorted; N reports per-point coverage.
	p0, p1, p2 := band.Points[0], band.Points[1], band.Points[2]
	if p0.At != 0 || p0.N != 2 || p0.Min != 0 || p0.Max != 0 || p0.Mean != 0 {
		t.Fatalf("point 0 = %+v", p0)
	}
	if p1.At != 10 || p1.N != 2 || p1.Min != 1 || p1.Max != 2 || p1.Mean != 1.5 {
		t.Fatalf("point 10 = %+v", p1)
	}
	if p2.At != 20 || p2.N != 1 || p2.Min != 3 || p2.Max != 3 || p2.Mean != 3 {
		t.Fatalf("point 20 = %+v", p2)
	}
}

func TestAggregateSeriesTakesFirstMatchPerRun(t *testing.T) {
	perRun := [][]obs.Series{{
		{Name: "m", Labels: []obs.Label{{Key: "a", Value: "1"}}, Points: []obs.SeriesPoint{{At: 0, Value: 5}}},
		{Name: "m", Labels: []obs.Label{{Key: "b", Value: "2"}}, Points: []obs.SeriesPoint{{At: 0, Value: 7}}},
	}}
	band := AggregateSeries(perRun, "m")
	if len(band.Points) != 1 || band.Points[0].Mean != 5 || band.Points[0].N != 1 {
		t.Fatalf("band = %+v (want only the first matching series)", band)
	}
}
