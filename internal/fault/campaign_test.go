package fault

import (
	"fmt"
	"testing"

	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

func TestSweepCrossProduct(t *testing.T) {
	scs := Sweep([]FaultClass{FaultSensorSilent, FaultCANBurst},
		[]sim.Time{sim.MS(50), sim.MS(80)}, sim.MS(60))
	if len(scs) != 4 {
		t.Fatalf("sweep produced %d scenarios, want 4", len(scs))
	}
	for _, s := range scs {
		if !s.Transient() || s.Until != s.InjectAt+sim.Time(sim.MS(60)) {
			t.Fatalf("transient window wrong: %+v", s)
		}
	}
	perm := Sweep([]FaultClass{FaultOverrun}, []sim.Time{sim.MS(50)}, 0)
	if len(perm) != 1 || perm[0].Transient() {
		t.Fatalf("permanent sweep wrong: %+v", perm)
	}
}

func TestAvailabilityCountsExpectedFinishes(t *testing.T) {
	r := &trace.Recorder{}
	// 10 expected jobs in [0,100ms); 7 finished.
	for i := 0; i < 7; i++ {
		r.Emit(sim.MS(10)*sim.Time(i)+sim.US(100), trace.Finish, "Act.apply", int64(i), "")
	}
	av, err := Availability(r, "Act.apply", sim.MS(10), 0, sim.MS(100))
	if err != nil || av != 0.7 {
		t.Fatalf("availability (%v, %v), want (0.7, nil)", av, err)
	}
	if _, err := Availability(r, "Act.apply", sim.MS(10), 0, 0); err == nil {
		t.Fatal("zero-length window: want explicit error, got nil")
	}
	if _, err := Availability(r, "Act.apply", 0, 0, sim.MS(100)); err == nil {
		t.Fatal("non-positive period: want explicit error, got nil")
	}
	if _, err := AvailabilityAny(r, nil, sim.MS(10), 0, sim.MS(100)); err == nil {
		t.Fatal("no sources: want explicit error, got nil")
	}
}

func TestAvailabilityAnyUnionsSources(t *testing.T) {
	r := &trace.Recorder{}
	// Primary delivers jobs 0..4, then the promoted standby takes over for
	// jobs 5..9: the union is full service, each source alone is half.
	for i := 0; i < 5; i++ {
		r.Emit(sim.MS(10)*sim.Time(i)+sim.US(100), trace.Finish, "Act.apply", int64(i), "")
	}
	for i := 5; i < 10; i++ {
		r.Emit(sim.MS(10)*sim.Time(i)+sim.US(100), trace.Finish, "Act#1.apply", int64(i), "")
	}
	av, err := AvailabilityAny(r, []string{"Act.apply", "Act#1.apply"}, sim.MS(10), 0, sim.MS(100))
	if err != nil || av != 1 {
		t.Fatalf("union availability (%v, %v), want (1, nil)", av, err)
	}
	solo, err := Availability(r, "Act.apply", sim.MS(10), 0, sim.MS(100))
	if err != nil || solo != 0.5 {
		t.Fatalf("primary-only availability (%v, %v), want (0.5, nil)", solo, err)
	}
}

func TestServiceRecoveryAnyMergesStreams(t *testing.T) {
	r := &trace.Recorder{}
	// Primary up until 30ms, killed; standby resumes delivery at 80ms.
	for i := int64(1); i <= 3; i++ {
		r.Emit(sim.MS(10)*sim.Time(i), trace.Finish, "Act.apply", i, "")
	}
	for i := int64(8); i <= 15; i++ {
		r.Emit(sim.MS(10)*sim.Time(i), trace.Finish, "Act#1.apply", i, "")
	}
	lat, ok, err := ServiceRecoveryAny(r, []string{"Act.apply", "Act#1.apply"}, sim.MS(10), sim.MS(25), sim.MS(160))
	if err != nil || !ok || lat != sim.MS(55) {
		t.Fatalf("merged recovery (%v,%v,%v), want (55ms,true,nil)", lat, ok, err)
	}
	// Primary alone never recovers.
	if _, ok, err := ServiceRecovery(r, "Act.apply", sim.MS(10), sim.MS(25), sim.MS(160)); err != nil || ok {
		t.Fatalf("primary alone reported recovered (err=%v)", err)
	}
}

func TestServiceRecoveryFindsLastOutage(t *testing.T) {
	r := &trace.Recorder{}
	emit := func(ms float64, job int64) {
		r.Emit(sim.MS(ms), trace.Finish, "Act.apply", job, "")
	}
	// Up at 10,20; outage (30..70 missing); resumes 80,90,...,150.
	emit(10, 0)
	emit(20, 1)
	for i := int64(0); i < 8; i++ {
		emit(float64(80+10*i), 2+i)
	}
	lat, ok, err := ServiceRecovery(r, "Act.apply", sim.MS(10), sim.MS(25), sim.MS(160))
	if err != nil || !ok || lat != sim.MS(55) {
		t.Fatalf("recovery (%v,%v,%v), want (55ms,true,nil)", lat, ok, err)
	}
	// Still down at horizon: no finishes after 150 but horizon 300.
	if _, ok, err := ServiceRecovery(r, "Act.apply", sim.MS(10), sim.MS(25), sim.MS(300)); err != nil || ok {
		t.Fatalf("service down at horizon reported as recovered (err=%v)", err)
	}
	// No outage at all.
	lat, ok, err = ServiceRecovery(r, "Act.apply", sim.MS(10), sim.MS(85), sim.MS(160))
	if err != nil || !ok || lat != 0 {
		t.Fatalf("outage-free stream: (%v,%v,%v), want (0,true,nil)", lat, ok, err)
	}
	// Horizon at or before the injection is a configuration error.
	if _, _, err := ServiceRecovery(r, "Act.apply", sim.MS(10), sim.MS(160), sim.MS(160)); err == nil {
		t.Fatal("horizon == injectAt: want explicit error, got nil")
	}
}

// campaignSystem extends monitoredSystem with a data-driven actuator:
// availability is observed where the function is delivered, so a silent
// sensor (whose own task keeps finishing empty jobs) registers as an
// outage.
func campaignSystem() *model.System {
	sys := monitoredSystem()
	sys.Components = append(sys.Components, &model.SWC{
		Name:  "Act",
		Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: sys.Interfaces[0]}},
		Runnables: []model.Runnable{{
			Name: "consume", WCETNominal: sim.US(10),
			Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
			Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
		}},
	})
	sys.Connectors = append(sys.Connectors,
		model.Connector{FromSWC: "Sensor", FromPort: "out", ToSWC: "Act", ToPort: "in"})
	sys.Mapping["Act"] = "e1"
	return sys
}

// campaignRun is the smoke scenario runner: a monitored sensor system per
// scenario, fully self-contained so scenarios can run concurrently.
func campaignRun(horizon sim.Time) func(Scenario) Result {
	return func(s Scenario) Result {
		p := rte.MustBuild(campaignSystem(), rte.Options{})
		switch s.Class {
		case FaultSensorSilent:
			p.SetBehavior("Sensor", "sample",
				BreakSensorBetween(s.InjectAt, s.Until, Silent, 0, healthySensor))
			p.SetBehavior("Monitor", "check", AgeMonitor("in", "v", sim.MS(25)))
		case FaultSensorNoise:
			p.SetBehavior("Sensor", "sample",
				BreakSensorBetween(s.InjectAt, s.Until, Noise, 9999, healthySensor))
			p.SetBehavior("Monitor", "check", RangeMonitor("in", "v", 0, 300, rte.ErrSensor))
		default:
			p.SetBehavior("Sensor", "sample", healthySensor)
			p.SetBehavior("Monitor", "check", func(c *rte.Context) {})
		}
		p.Run(horizon)
		res := Result{Scenario: s, Errors: p.Errors.Total()}
		res.DetectionLatency, res.Detected = DetectionLatency(p.Errors.Records(), rte.ErrSensor, s.InjectAt)
		res.Availability, _ = Availability(p.Trace, "Act.consume", sim.MS(10), s.InjectAt, horizon)
		res.RecoveryLatency, res.Recovered, _ = ServiceRecovery(p.Trace, "Act.consume", sim.MS(10), s.InjectAt, horizon)
		return res
	}
}

func TestCampaignSmoke(t *testing.T) {
	scs := Sweep([]FaultClass{FaultSensorSilent, FaultSensorNoise},
		[]sim.Time{sim.MS(50)}, sim.MS(60))
	results, err := RunCampaign(4, scs, campaignRun(sim.MS(300)))
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if len(results) != len(scs) {
		t.Fatalf("%d results for %d scenarios", len(results), len(scs))
	}
	if _, err := RunCampaign(4, nil, campaignRun(sim.MS(300))); err == nil {
		t.Fatal("empty campaign: want explicit error, got nil")
	}
	for _, r := range results {
		if !r.Detected {
			t.Fatalf("%s not detected: %+v", r.Scenario.Name, r)
		}
		if r.Errors == 0 {
			t.Fatalf("%s reported no errors", r.Scenario.Name)
		}
	}
	// The silent scenario stops publishing for 60ms: availability dips but
	// service recovers. The noisy scenario keeps publishing: full service.
	if results[0].Availability >= 1 || !results[0].Recovered {
		t.Fatalf("silent scenario: %+v", results[0])
	}
	if results[1].Availability != 1 {
		t.Fatalf("noise scenario availability %v, want 1", results[1].Availability)
	}
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	scs := Sweep(
		[]FaultClass{FaultSensorSilent, FaultSensorNoise, FaultSensorStuck},
		[]sim.Time{sim.MS(50), sim.MS(80)}, sim.MS(60))
	render := func(rs []Result) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = fmt.Sprintf("%s det=%v/%v rec=%v/%v av=%.4f err=%d",
				r.Scenario.Name, r.Detected, r.DetectionLatency,
				r.Recovered, r.RecoveryLatency, r.Availability, r.Errors)
		}
		return out
	}
	run := func(workers int) []Result {
		rs, err := RunCampaign(workers, scs, campaignRun(sim.MS(300)))
		if err != nil {
			t.Fatalf("RunCampaign(workers=%d): %v", workers, err)
		}
		return rs
	}
	seq := render(run(1))
	par := render(run(8))
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("slot %d differs:\nworkers=1: %s\nworkers=8: %s", i, seq[i], par[i])
		}
	}
}
