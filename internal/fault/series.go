package fault

import (
	"fmt"
	"sort"

	"autorte/internal/obs"
	"autorte/internal/par"
)

// Campaign-level virtual-time series: each scenario run samples its own
// platform on a virtual-time grid (rte.Platform.EnableSampling) and the
// campaign aggregates the per-run series into fleet-level distribution
// bands — availability and recovery *curves* across the fault space
// instead of end-state scalars.

// BandPoint is the distribution of one metric across campaign runs at
// one virtual-time grid point.
type BandPoint struct {
	At   int64   `json:"at_ns"`
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
	N    int     `json:"n"` // runs contributing at this grid point
}

// Band is a fleet-level distribution series for one metric name.
type Band struct {
	Name   string      `json:"name"`
	Points []BandPoint `json:"points"`
}

// RunCampaignSeries is RunCampaign for sampled scenarios: run returns
// the scenario result plus the virtual-time series its sampler
// recorded. Results and series stay slot-indexed to scenarios. Like
// RunCampaign, an empty campaign is rejected rather than aggregated
// into empty bands.
func RunCampaignSeries(workers int, scenarios []Scenario, run func(Scenario) (Result, []obs.Series)) ([]Result, [][]obs.Series, error) {
	if len(scenarios) == 0 {
		return nil, nil, fmt.Errorf("fault: empty campaign: no scenarios to run")
	}
	results := make([]Result, len(scenarios))
	series := make([][]obs.Series, len(scenarios))
	_ = par.ForEach(workers, len(scenarios), func(i int) error {
		results[i], series[i] = run(scenarios[i])
		return nil
	})
	return results, series, nil
}

// AggregateSeries folds the same-named series of every run into one
// distribution band. A run contributes its first series whose name
// matches; runs without one are skipped. Grid points are the union of
// all contributing grids, so runs sampled over different horizons still
// aggregate (N reports the coverage per point).
func AggregateSeries(perRun [][]obs.Series, name string) Band {
	byAt := map[int64][]float64{}
	for _, runSeries := range perRun {
		for _, s := range runSeries {
			if s.Name != name {
				continue
			}
			for _, pt := range s.Points {
				byAt[pt.At] = append(byAt[pt.At], pt.Value)
			}
			break
		}
	}
	grid := make([]int64, 0, len(byAt))
	for at := range byAt {
		grid = append(grid, at)
	}
	sort.Slice(grid, func(i, j int) bool { return grid[i] < grid[j] })
	band := Band{Name: name, Points: make([]BandPoint, 0, len(grid))}
	for _, at := range grid {
		vals := byAt[at]
		p := BandPoint{At: at, Min: vals[0], Max: vals[0], N: len(vals)}
		sum := 0.0
		for _, v := range vals {
			if v < p.Min {
				p.Min = v
			}
			if v > p.Max {
				p.Max = v
			}
			sum += v
		}
		p.Mean = sum / float64(len(vals))
		band.Points = append(band.Points, p)
	}
	return band
}
