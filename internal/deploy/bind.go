package deploy

// The inner loop of every search in this package scores candidate
// mappings of ONE fixed topology: components, connectors, ECUs and buses
// never change between candidates, only the Mapping does. Evaluator.Bind
// exploits that invariant — it derives everything mapping-independent
// once (effective runnable rates, per-component load terms, ECU-pair bus
// reachability, proto task sets) so that Bound.Evaluate scores a
// candidate mapping with just the per-ECU grouping plus (cached)
// response-time analysis. The metrics are identical to the unbound
// Evaluator.Evaluate, violations included; TestBoundEvaluateMatchesUnbound
// holds the two paths together.

import (
	"fmt"
	"math"
	"sort"

	"autorte/internal/model"
	"autorte/internal/sched"
	"autorte/internal/sim"
	"autorte/internal/vfb"
)

// protoTask is the mapping-independent part of one runnable's analyzable
// task: everything except the hosting ECU's speed and the per-ECU
// priority rank, which depend on the candidate mapping.
type protoTask struct {
	name     string // comp.runnable, the analyzable task name
	sortKey  string // comp name + runnable name, taskset's tie-break key
	wcet     sim.Duration
	period   sim.Duration // derived effective period; 0 = no rate
	deadline sim.Duration
	// ord is the proto's position in the global (period, sortKey) order,
	// precomputed at Bind so per-ECU ranking needs only integer compares.
	ord int
}

type boundComp struct {
	name     string
	memoryKB int
	asil     model.ASIL
	// replicaOf/passive mirror the component's standby role: passive
	// standbys keep their protos (the fail-over analysis promotes them)
	// but contribute no normal-case load or schedulability demand,
	// matching AnalyzedLoad and taskset.Build.
	replicaOf string
	passive   bool
	// loadTerms holds WCETNominal/period per rated runnable, in runnable
	// order — AnalyzedLoad's summation terms before the speed division.
	loadTerms []float64
	// protos lists all runnables (rate-less included: they consume
	// priority ranks in the task set even though they are excluded from
	// the analysis).
	protos []protoTask
}

type boundECU struct {
	name     string
	speed    float64
	memoryKB int
	maxASIL  model.ASIL
	pos      [2]float64
	// buses lists the channels the ECU is attached to — the fault model's
	// bus-loss events treat an ECU with every channel lost as isolated.
	buses []string
}

type boundConn struct {
	from, to string
	// needsPath is true when the connector produces at least one bus route
	// once remote (client-server always does; sender-receiver only with a
	// non-empty element set).
	needsPath bool
}

// Bound is an Evaluator fixed to one system topology. It scores candidate
// mappings directly — no system clone needed — and is safe for concurrent
// use, so a parallel search can fan candidate evaluations out over it.
// The bound data reflects the topology at Bind time; candidates must
// differ from the base system in Mapping only (the DSE invariant: every
// candidate is a Clone of the seed with components moved).
type Bound struct {
	ev    *Evaluator
	comps []boundComp
	ecus  []boundECU
	// ecuIdx/compIdx index comps/ecus by name.
	ecuIdx  map[string]int
	compIdx map[string]int
	conns   []boundConn
	// path caches vfb.Path's verdict per ordered ECU pair; nil = reachable.
	path map[[2]string]error
	// groups holds the replica groups of the topology; empty for systems
	// without standbys, where the fail-operational check is skipped.
	groups []redGroup
}

// Bind precomputes the mapping-independent derivations of sys. It fails
// when the base topology itself is invalid — searches fall back to the
// unbound evaluator in that case so the legacy error surfaces unchanged.
func (ev *Evaluator) Bind(sys *model.System) (*Bound, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	b := &Bound{
		ev:      ev,
		ecuIdx:  make(map[string]int, len(sys.ECUs)),
		compIdx: make(map[string]int, len(sys.Components)),
		path:    make(map[[2]string]error, len(sys.ECUs)*len(sys.ECUs)),
	}
	b.ecus = bindECUs(sys)
	for i := range b.ecus {
		b.ecuIdx[b.ecus[i].name] = i
	}
	b.comps = bindComps(sys)
	for i := range b.comps {
		b.compIdx[b.comps[i].name] = i
	}
	b.groups = redGroups(b.comps)
	for _, c := range sys.Connectors {
		prov := sys.Component(c.FromSWC).Port(c.FromPort)
		req := sys.Component(c.ToSWC).Port(c.ToPort)
		needs := prov.Interface.Kind != model.SenderReceiver || len(req.Interface.Elements) > 0
		b.conns = append(b.conns, boundConn{from: c.FromSWC, to: c.ToSWC, needsPath: needs})
	}
	for _, src := range sys.ECUs {
		for _, dst := range sys.ECUs {
			if src.Name == dst.Name {
				continue
			}
			_, _, _, err := vfb.Path(sys, src.Name, dst.Name)
			b.path[[2]string{src.Name, dst.Name}] = err
		}
	}
	return b, nil
}

// bindECUs derives the mapping-independent per-ECU terms, in declaration
// order.
func bindECUs(sys *model.System) []boundECU {
	var ecus []boundECU
	for _, e := range sys.ECUs {
		ecus = append(ecus, boundECU{
			name: e.Name, speed: e.Speed, memoryKB: e.MemoryKB,
			maxASIL: e.MaxASIL, pos: e.Position, buses: e.Buses,
		})
	}
	return ecus
}

// bindComps derives the mapping-independent per-component terms — shared
// by Bind and by the unbound evaluator's fail-operational check, so both
// see identical load terms and proto orderings. Passive standbys keep
// their loadTerms and protos — the fail-over absorption analysis charges
// them to the promotion target — but the normal-case accumulation loops
// skip them, matching AnalyzedLoad and taskset.Build.
func bindComps(sys *model.System) []boundComp {
	var comps []boundComp
	for _, c := range sys.Components {
		bc := boundComp{
			name: c.Name, memoryKB: c.MemoryKB, asil: c.ASIL,
			replicaOf: c.ReplicaOf, passive: c.PassiveStandby(),
		}
		for j := range c.Runnables {
			r := &c.Runnables[j]
			period := sys.EffectivePeriod(c, r)
			if period > 0 {
				bc.loadTerms = append(bc.loadTerms, float64(r.WCETNominal)/float64(period))
			}
			bc.protos = append(bc.protos, protoTask{
				name: c.Name + "." + r.Name, sortKey: c.Name + r.Name,
				wcet: r.WCETNominal, period: period, deadline: r.Deadline,
			})
		}
		comps = append(comps, bc)
	}
	// Rank all protos once in taskset.Build's (period, tie-break) order;
	// per-candidate ranking then reduces to sorting small int keys.
	var all []*protoTask
	for i := range comps {
		for j := range comps[i].protos {
			all = append(all, &comps[i].protos[j])
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].period != all[j].period {
			return all[i].period < all[j].period
		}
		return all[i].sortKey < all[j].sortKey
	})
	for ord, p := range all {
		p.ord = ord
	}
	return comps
}

// Evaluate scores one candidate mapping against the bound topology. The
// result — feasibility, violations, every cost term — is identical to
// evaluating a clone of the base system carrying this mapping through the
// unbound path.
func (b *Bound) Evaluate(mapping map[string]string) Metrics {
	cons := b.ev.Cons
	cons.fill()
	m := Metrics{Feasible: true}
	if err := cons.Validate(); err != nil {
		m.Feasible = false
		m.Violations = append(m.Violations, err.Error())
		return m
	}
	used := map[string]bool{}
	for _, e := range mapping {
		used[e] = true
	}
	for i := range b.ecus {
		if used[b.ecus[i].name] {
			m.ECUs++
		}
	}
	for _, c := range b.conns {
		src, dst := mapping[c.from], mapping[c.to]
		if src == "" || dst == "" || src == dst {
			continue
		}
		si, ok1 := b.ecuIdx[src]
		di, ok2 := b.ecuIdx[dst]
		if !ok1 || !ok2 {
			continue
		}
		dx := b.ecus[si].pos[0] - b.ecus[di].pos[0]
		dy := b.ecus[si].pos[1] - b.ecus[di].pos[1]
		m.Harness += math.Hypot(dx, dy)
	}
	// One pass over components, grouping per hosting ECU. Accumulation
	// order per ECU is component order — the same order AnalyzedLoad sums
	// in, so the floats come out bit-identical.
	type hostAcc struct {
		load        float64
		memory      int
		hosts       bool
		worst, best model.ASIL
	}
	accs := make([]hostAcc, len(b.ecus))
	for i := range b.comps {
		c := &b.comps[i]
		idx, ok := b.ecuIdx[mapping[c.name]]
		if !ok {
			continue
		}
		a := &accs[idx]
		if !a.hosts || c.asil < a.best {
			a.best = c.asil
		}
		a.hosts = true
		a.memory += c.memoryKB
		if c.asil > a.worst {
			a.worst = c.asil
		}
		if c.passive {
			continue // suspended until promotion: no normal-case load
		}
		speed := b.ecus[idx].speed
		for _, t := range c.loadTerms {
			a.load += t / speed
		}
	}
	var loads []float64
	for i := range b.ecus {
		e, a := &b.ecus[i], &accs[i]
		if !a.hosts {
			continue
		}
		loads = append(loads, a.load)
		if a.load > m.MaxLoad {
			m.MaxLoad = a.load
		}
		if a.load > cons.MaxUtilization {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s overloaded: %.3f > %.3f", e.name, a.load, cons.MaxUtilization))
		}
		if cons.RespectMemory && e.memoryKB > 0 && a.memory > e.memoryKB {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s out of memory: %d > %d KB", e.name, a.memory, e.memoryKB))
		}
		if cons.RespectASIL && a.worst > e.maxASIL {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s hosts %v components but qualifies only for %v", e.name, a.worst, e.maxASIL))
		}
		if msg := asilSpreadViolation(e.name, a.worst, a.best, cons.MaxASILSpread); msg != "" {
			m.Feasible = false
			m.Violations = append(m.Violations, msg)
		}
	}
	rc := &redCheck{
		comps: b.comps, groups: b.groups, ecus: b.ecus, cons: cons, rta: b.ev.RTA,
		ecuOf: func(ci int) (int, bool) { idx, ok := b.ecuIdx[mapping[b.comps[ci].name]]; return idx, ok },
		load:  func(ei int) float64 { return accs[ei].load },
		hosts: func(ei int) bool { return accs[ei].hosts },
	}
	rc.run(&m)
	if err := b.commCheck(mapping); err != nil {
		m.Feasible = false
		m.Violations = append(m.Violations, err.Error())
	}
	if cons.RequireSchedulable {
		b.checkSchedulable(mapping, &m)
	}
	if len(loads) > 0 {
		mean := 0.0
		for _, l := range loads {
			mean += l
		}
		mean /= float64(len(loads))
		for _, l := range loads {
			m.LoadVar += (l - mean) * (l - mean)
		}
		m.LoadVar /= float64(len(loads))
	}
	return m
}

// commCheck reproduces the communication-feasibility verdict vfb.Resolve
// would reach on this mapping — same first error, without deriving routes:
// mapping referents must exist (what Resolve's Validate call catches
// first), every connector endpoint must be mapped, and every
// route-producing remote connector needs a reachable ECU pair.
func (b *Bound) commCheck(mapping map[string]string) error {
	// Sorted components: "same first error" must mean the same error on
	// every run, not whichever bad entry map iteration reaches first.
	swcs := make([]string, 0, len(mapping))
	for swc := range mapping {
		swcs = append(swcs, swc)
	}
	sort.Strings(swcs)
	for _, swc := range swcs {
		ecu := mapping[swc]
		if _, ok := b.compIdx[swc]; !ok {
			return fmt.Errorf("mapping references unknown component %q", swc)
		}
		if _, ok := b.ecuIdx[ecu]; !ok {
			return fmt.Errorf("mapping of %s references unknown ECU %q", swc, ecu)
		}
	}
	for _, c := range b.conns {
		src, ok := mapping[c.from]
		if !ok {
			return fmt.Errorf("vfb: component %s is not mapped", c.from)
		}
		dst, ok := mapping[c.to]
		if !ok {
			return fmt.Errorf("vfb: component %s is not mapped", c.to)
		}
		if src == dst || !c.needsPath {
			continue
		}
		if err := b.path[[2]string{src, dst}]; err != nil {
			return err
		}
	}
	return nil
}

// checkSchedulable reproduces taskset.Build + per-ECU RTA from the proto
// tasks: group per hosting ECU, rank rate-monotonically with taskset's
// exact ordering, scale WCETs by ECU speed, and run the (cached) analysis
// in sorted ECU order.
func (b *Bound) checkSchedulable(mapping map[string]string, m *Metrics) {
	groups := map[string][]*protoTask{}
	for i := range b.comps {
		if b.comps[i].passive {
			continue // taskset.Build skips suspended standbys too
		}
		ecu := mapping[b.comps[i].name]
		for j := range b.comps[i].protos {
			groups[ecu] = append(groups[ecu], &b.comps[i].protos[j])
		}
	}
	var names []string
	for e := range groups {
		names = append(names, e)
	}
	sort.Strings(names)
	for _, ecu := range names {
		protos := groups[ecu]
		// ord restricts the precomputed global order to this group —
		// identical to taskset.Build's stable (period, name) sort.
		sort.Slice(protos, func(i, j int) bool { return protos[i].ord < protos[j].ord })
		speed := 1.0
		if idx, ok := b.ecuIdx[ecu]; ok {
			speed = b.ecus[idx].speed
		}
		var tasks []sched.Task
		for rank, p := range protos {
			if p.period <= 0 {
				continue
			}
			tasks = append(tasks, sched.Task{
				Name: p.name, C: sim.Duration(float64(p.wcet) / speed),
				T: p.period, D: p.deadline, Priority: 1000 - rank,
			})
		}
		if len(tasks) == 0 {
			continue
		}
		ok, err := b.ev.RTA.Check(tasks)
		if err != nil {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s: RTA failed: %v", ecu, err))
			continue
		}
		if !ok {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s unschedulable under response-time analysis", ecu))
		}
	}
}

// cloneMapping copies a candidate mapping — the only mutable state a
// bound evaluation needs, replacing the full system Clone per candidate.
func cloneMapping(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
