package deploy

import (
	"math"
	"strings"
	"testing"
)

func TestFillDefaultsOnlyUnset(t *testing.T) {
	c := Constraints{}
	c.fill()
	if c.MaxUtilization != 0.69 {
		t.Fatalf("unset cap filled to %v, want 0.69", c.MaxUtilization)
	}
	c = Constraints{MaxUtilization: 0.5}
	c.fill()
	if c.MaxUtilization != 0.5 {
		t.Fatalf("explicit cap overwritten to %v", c.MaxUtilization)
	}
	c = Constraints{MaxUtilization: RejectAllLoad}
	c.fill()
	if c.MaxUtilization != RejectAllLoad {
		t.Fatalf("RejectAllLoad overwritten to %v — the sentinel must survive fill", c.MaxUtilization)
	}
}

// A caller must be able to express "no load is admissible" — previously
// MaxUtilization 0 silently meant "default 0.69" and the intent was
// inexpressible.
func TestRejectAllLoadRejectsEverything(t *testing.T) {
	sys := vehicle(t, 20)
	m := Evaluate(sys, Constraints{MaxUtilization: RejectAllLoad})
	if m.Feasible {
		t.Fatal("RejectAllLoad accepted a loaded mapping")
	}
	if _, err := Greedy(sys, Constraints{MaxUtilization: RejectAllLoad}); err == nil {
		t.Fatal("Greedy packed components under RejectAllLoad")
	}
}

func TestConstraintsValidateRange(t *testing.T) {
	for _, c := range []Constraints{
		{MaxUtilization: 1.5},
		{MaxUtilization: math.NaN()},
		{MaxUtilization: math.Inf(1)},
	} {
		if err := c.Validate(); err == nil {
			t.Fatalf("Validate accepted %v", c.MaxUtilization)
		}
	}
	for _, c := range []Constraints{
		{},
		{MaxUtilization: 0.69},
		{MaxUtilization: 1},
		{MaxUtilization: RejectAllLoad},
	} {
		if err := c.Validate(); err != nil {
			t.Fatalf("Validate rejected %v: %v", c.MaxUtilization, err)
		}
	}
}

func TestInvalidConstraintsSurfaceEverywhere(t *testing.T) {
	sys := vehicle(t, 21)
	bad := Constraints{MaxUtilization: 2}
	if m := Evaluate(sys, bad); m.Feasible || len(m.Violations) == 0 ||
		!strings.Contains(m.Violations[0], "MaxUtilization") {
		t.Fatalf("Evaluate did not flag invalid constraints: %+v", m)
	}
	if _, err := Greedy(sys, bad); err == nil {
		t.Fatal("Greedy accepted invalid constraints")
	}
	if _, err := Place(sys, bad); err == nil {
		t.Fatal("Place accepted invalid constraints")
	}
	if _, err := Anneal(sys, bad, DefaultObjective(), 1, 10); err == nil {
		t.Fatal("Anneal accepted invalid constraints")
	}
	if _, err := Descend(sys, bad, DefaultObjective(), 0, 1); err == nil {
		t.Fatal("Descend accepted invalid constraints")
	}
	if _, err := AnnealParallel(sys, bad, DefaultObjective(), 1, 10, 2, 0); err == nil {
		t.Fatal("AnnealParallel accepted invalid constraints")
	}
}

func TestRequireSchedulableTightensFeasibility(t *testing.T) {
	sys := vehicle(t, 22)
	// The federated baseline is generously provisioned: it must pass RTA.
	ev := NewEvaluator(Constraints{RequireSchedulable: true})
	if m := ev.Evaluate(sys); !m.Feasible {
		t.Fatalf("federated baseline fails RTA feasibility: %v", m.Violations)
	}
	// Pile everything onto one ECU: utilization alone already rejects it,
	// and the RTA violations must name the unschedulable ECU.
	for name := range sys.Mapping {
		sys.Mapping[name] = sys.ECUs[0].Name
	}
	m := ev.Evaluate(sys)
	if m.Feasible {
		t.Fatal("overloaded mapping passed RequireSchedulable")
	}
	foundRTA := false
	for _, v := range m.Violations {
		if strings.Contains(v, "unschedulable under response-time analysis") {
			foundRTA = true
		}
	}
	if !foundRTA {
		t.Fatalf("no RTA violation recorded: %v", m.Violations)
	}
	// The shared cache must have been exercised.
	if hits, misses := ev.RTA.Stats(); hits+misses == 0 {
		t.Fatal("evaluator cache unused")
	}
}
