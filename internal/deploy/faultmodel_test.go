package deploy

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"autorte/internal/model"
	"autorte/internal/sim"
)

// The k-of-n generalization must stay indistinguishable across the three
// evaluation paths exactly like the v1 single-failure sweep: same
// Survivability, same violation strings in the same order, through a
// random walk of moves under non-trivial fault models (concurrent
// failures, explicit ECU/bus/correlated losses, soft scoring with
// singleton groups).
func TestFaultModelThreePathIdentity(t *testing.T) {
	base := redSystem(t)
	consSet := map[string]Constraints{
		"kof2": {Faults: FaultModel{MaxConcurrent: 2}},
		"explicit": {Faults: FaultModel{
			MaxConcurrent: 2,
			Losses: []Loss{
				{Kind: LossECU, ECUs: []string{"e1"}},
				{Kind: LossECU, ECUs: []string{"e2", "e3"}},
				{Kind: LossBus, Buses: []string{"can0"}},
				{Kind: LossECUAndBus, ECUs: []string{"e3"}, Buses: []string{"can0"}},
			},
		}},
		"soft-singletons": {Faults: FaultModel{
			MaxConcurrent: 2, Soft: true, IncludeSingletons: true,
		}},
		"sched-kof2": {RequireSchedulable: true, Faults: FaultModel{MaxConcurrent: 2}},
	}
	for name, cons := range consSet {
		t.Run(name, func(t *testing.T) {
			ev := NewEvaluator(cons)
			bound, err := ev.Bind(base)
			if err != nil {
				t.Fatalf("bind: %v", err)
			}
			prep, err := bound.Prepare(base.Mapping)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			cur := base.Clone()
			r := sim.NewRand(14)
			for step := 0; step < 60; step++ {
				c := cur.Components[r.Intn(len(cur.Components))].Name
				e := cur.ECUs[r.Intn(len(cur.ECUs))].Name
				cand := cur.Clone()
				cand.Mapping[c] = e
				want := ev.Evaluate(cand)
				cm := cloneMapping(cur.Mapping)
				cm[c] = e
				if got := bound.Evaluate(cm); !reflect.DeepEqual(want, got) {
					t.Fatalf("step %d (%s->%s): bound diverges\nunbound: %+v\nbound:   %+v", step, c, e, want, got)
				}
				if got := prep.EvaluateMove(c, e); !reflect.DeepEqual(want, got) {
					t.Fatalf("step %d (%s->%s): delta diverges\nunbound: %+v\ndelta:   %+v", step, c, e, want, got)
				}
				cur = cand
				if err := prep.Apply(c, e); err != nil {
					t.Fatalf("apply: %v", err)
				}
			}
		})
	}
}

// The swept event universe under explicit loss units and concurrency.
func TestFaultModelSweep(t *testing.T) {
	t.Run("concurrent-pair-defeats-group", func(t *testing.T) {
		// Events: e1, e2, e1+e2. The pair takes primary and standby
		// together — no standby survives, 2/3 events survived.
		m := Evaluate(redSystem(t), Constraints{Faults: FaultModel{MaxConcurrent: 2}})
		if m.Feasible {
			t.Fatalf("double failure of the whole group accepted: %+v", m)
		}
		if !strings.Contains(strings.Join(m.Violations, "; "),
			"e1+e2 failure leaves Ctrl with no standby on another ECU") {
			t.Fatalf("missing concurrent-loss diagnostic: %v", m.Violations)
		}
		if math.Abs(m.Survivability-2.0/3.0) > 1e-9 {
			t.Fatalf("Survivability = %v, want 2/3", m.Survivability)
		}
	})

	t.Run("soft-prices-instead-of-rejecting", func(t *testing.T) {
		m := Evaluate(redSystem(t), Constraints{Faults: FaultModel{MaxConcurrent: 2, Soft: true}})
		if !m.Feasible {
			t.Fatalf("soft model rejected the mapping: %+v", m)
		}
		if math.Abs(m.Survivability-2.0/3.0) > 1e-9 {
			t.Fatalf("Survivability = %v, want 2/3", m.Survivability)
		}
	})

	t.Run("bus-loss-isolates-all-attached", func(t *testing.T) {
		// Every ECU hangs off can0 alone: losing it strands primary and
		// standby alike, so nothing is survivable.
		m := Evaluate(redSystem(t), Constraints{Faults: FaultModel{
			Losses: []Loss{{Kind: LossBus, Buses: []string{"can0"}}},
		}})
		if m.Feasible {
			t.Fatalf("bus loss accepted: %+v", m)
		}
		if !strings.Contains(strings.Join(m.Violations, "; "),
			"can0 failure leaves Ctrl with no standby on another ECU") {
			t.Fatalf("missing bus-loss diagnostic: %v", m.Violations)
		}
		if m.Survivability != 0 {
			t.Fatalf("Survivability = %v, want 0", m.Survivability)
		}
	})

	t.Run("second-bus-restores-coverage", func(t *testing.T) {
		// The standby's ECU keeps a private channel: losing can0 isolates
		// the primary but not the standby.
		sys := redSystem(t)
		sys.ECUs[1].Buses = append(sys.ECUs[1].Buses, "lin1")
		sys.Buses = append(sys.Buses, &model.Bus{Name: "lin1", Kind: model.BusCAN, BitRate: 125000})
		m := Evaluate(sys, Constraints{Faults: FaultModel{
			Losses: []Loss{{Kind: LossBus, Buses: []string{"can0"}}},
		}})
		if !m.Feasible || m.Survivability != 1 {
			t.Fatalf("dual-homed standby still counted as lost: %+v", m)
		}
	})

	t.Run("correlated-ecu-and-bus", func(t *testing.T) {
		// One power-domain event: e2 dies AND can0 goes down, so the
		// standby is dead and the (alive) primary is isolated.
		m := Evaluate(redSystem(t), Constraints{Faults: FaultModel{
			Losses: []Loss{{Kind: LossECUAndBus, ECUs: []string{"e2"}, Buses: []string{"can0"}}},
		}})
		if m.Feasible || m.Survivability != 0 {
			t.Fatalf("correlated loss not scored: %+v", m)
		}
		if !strings.Contains(strings.Join(m.Violations, "; "), "e2+can0 failure") {
			t.Fatalf("missing correlated-loss label: %v", m.Violations)
		}
	})

	t.Run("singletons-give-the-gradient", func(t *testing.T) {
		// Soft + singletons: 2 hosted-ECU events × 3 groups (Sensor, Ctrl,
		// Act). e1 kills unreplicated Sensor, e2 kills unreplicated Act;
		// the Ctrl group survives both. 4/6 survived, still feasible.
		m := Evaluate(redSystem(t), Constraints{Faults: FaultModel{Soft: true, IncludeSingletons: true}})
		if !m.Feasible {
			t.Fatalf("soft singleton scoring rejected the mapping: %+v", m)
		}
		if math.Abs(m.Survivability-4.0/6.0) > 1e-9 {
			t.Fatalf("Survivability = %v, want 4/6", m.Survivability)
		}
	})

	t.Run("malformed-losses-stay-hard", func(t *testing.T) {
		// Misconfigured fault models must never pass as "survived", even
		// under Soft.
		for _, tc := range []struct {
			name string
			loss Loss
			diag string
		}{
			{"unknown-ecu", Loss{Kind: LossECU, ECUs: []string{"e9"}}, `unknown ECU "e9"`},
			{"unknown-bus", Loss{Kind: LossBus, Buses: []string{"flex1"}}, `unknown bus "flex1"`},
			{"ecu-loss-without-ecus", Loss{Kind: LossECU, Buses: []string{"can0"}}, "must name ECUs only"},
			{"bus-loss-without-buses", Loss{Kind: LossBus, ECUs: []string{"e1"}}, "must name buses only"},
			{"correlated-missing-half", Loss{Kind: LossECUAndBus, ECUs: []string{"e1"}}, "must name ECUs and buses"},
			{"unknown-kind", Loss{Kind: LossKind(9), ECUs: []string{"e1"}}, "unknown kind LossKind(9)"},
		} {
			t.Run(tc.name, func(t *testing.T) {
				m := Evaluate(redSystem(t), Constraints{Faults: FaultModel{
					Soft: true, Losses: []Loss{tc.loss},
				}})
				if m.Feasible {
					t.Fatalf("malformed loss accepted: %+v", m)
				}
				if !strings.Contains(strings.Join(m.Violations, "; "), tc.diag) {
					t.Fatalf("missing %q in %v", tc.diag, m.Violations)
				}
			})
		}
	})
}

// redCheck boundary cases, table-driven across the unbound path with a
// Prepared-path cross-check: each case mutates the fixture, evaluates,
// and pins feasibility, a diagnostic substring and the Survivability.
func TestRedCheckBoundaryCases(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(sys *model.System)
		cons     Constraints
		feasible bool
		diag     string
		surv     float64
	}{
		{
			// Both Ctrl instances end up on the standby's ECU: anti-affinity
			// plus an uncovered e2 event.
			name:     "group-on-one-ecu-post-move",
			mutate:   func(sys *model.System) { sys.Mapping["Ctrl"] = "e2" },
			feasible: false,
			diag:     "replicas Ctrl and Ctrl#1 co-located on e2",
			surv:     0.5,
		},
		{
			// e2 holds Act's 150us deadline until it absorbs the promoted
			// 5ms controller; only the fail-over RTA catches it.
			name: "standby-ecu-unschedulable-after-absorption",
			mutate: func(sys *model.System) {
				sys.Component("Act").Runnables[0].Deadline = sim.US(150)
			},
			cons:     Constraints{RequireSchedulable: true},
			feasible: false,
			diag:     "e2 unschedulable after absorbing fail-over from e1",
			surv:     0.5,
		},
		{
			// Singleton groups under the default (hard, single-failure)
			// model: unreplicated components alone never trip the check.
			name: "n1-groups-pass-trivially",
			mutate: func(sys *model.System) {
				// Drop the standby and its fan-out: every group has n=1.
				comps := sys.Components[:0]
				for _, c := range sys.Components {
					if !c.IsStandby() {
						comps = append(comps, c)
					}
				}
				sys.Components = comps
				conns := sys.Connectors[:0]
				for _, cn := range sys.Connectors {
					if cn.FromSWC != "Ctrl#1" && cn.ToSWC != "Ctrl#1" {
						conns = append(conns, cn)
					}
				}
				sys.Connectors = conns
				delete(sys.Mapping, "Ctrl#1")
			},
			feasible: true,
			surv:     1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := redSystem(t)
			tc.mutate(sys)
			m := Evaluate(sys, tc.cons)
			if m.Feasible != tc.feasible {
				t.Fatalf("Feasible = %v, want %v: %+v", m.Feasible, tc.feasible, m)
			}
			if tc.diag != "" && !strings.Contains(strings.Join(m.Violations, "; "), tc.diag) {
				t.Fatalf("missing %q in %v", tc.diag, m.Violations)
			}
			if math.Abs(m.Survivability-tc.surv) > 1e-9 {
				t.Fatalf("Survivability = %v, want %v", m.Survivability, tc.surv)
			}
		})
	}

	// The post-move case through the delta path: the same verdict must
	// come from EvaluateMove on the unmutated Prepared state.
	t.Run("group-on-one-ecu-via-delta", func(t *testing.T) {
		base := redSystem(t)
		ev := NewEvaluator(Constraints{})
		bound, err := ev.Bind(base)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := bound.Prepare(base.Mapping)
		if err != nil {
			t.Fatal(err)
		}
		m := prep.EvaluateMove("Ctrl", "e2")
		if m.Feasible || m.Survivability != 0.5 {
			t.Fatalf("delta path missed the post-move co-location: %+v", m)
		}
		if !strings.Contains(strings.Join(m.Violations, "; "), "replicas Ctrl and Ctrl#1 co-located on e2") {
			t.Fatalf("missing anti-affinity diagnostic: %v", m.Violations)
		}
	})
}
