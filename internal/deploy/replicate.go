package deploy

import (
	"fmt"

	"autorte/internal/model"
)

// Replicate materializes the redundancy specs of a system: for every
// component asking for Redundancy.Replicas > 1, standby instances named
// "Name#1" .. "Name#k" are inserted directly after the primary (keeping
// each replica group contiguous in declaration order) with ReplicaOf set.
// Connectors are fanned out over the replica groups of both endpoints so
// every standby receives the primary's inputs all along (warm state) and
// a promoted standby drives the primary's consumers; the vfb connectivity
// check accepts the fan-in because a replica group is one logical
// provider. Standby instances come back unmapped — run Place (or Greedy)
// afterwards to site them; the anti-affinity constraint keeps them off
// their primary's ECU. Latency constraints keep naming primaries only.
// The input system is not modified.
func Replicate(sys *model.System) (*model.System, error) {
	out := sys.Clone()
	instances := map[string][]string{}
	var comps []*model.SWC
	for _, c := range out.Components {
		if c.Redundancy.Replicated() && c.IsStandby() {
			return nil, fmt.Errorf("deploy: standby %s cannot request replicas", c.Name)
		}
		comps = append(comps, c)
		instances[c.Name] = []string{c.Name}
		if !c.Redundancy.Replicated() {
			continue
		}
		for k := 1; k < c.Redundancy.Replicas; k++ {
			name := fmt.Sprintf("%s#%d", c.Name, k)
			if sys.Component(name) != nil {
				return nil, fmt.Errorf("deploy: replica name %s collides with an existing component", name)
			}
			sb := cloneSWC(c)
			sb.Name = name
			sb.ReplicaOf = c.Name
			sb.Redundancy.Replicas = 0 // the spec is spent; Mode still drives runtime switchover
			comps = append(comps, sb)
			instances[c.Name] = append(instances[c.Name], name)
		}
		// The spec is materialized: the primary itself no longer requests
		// replicas, so Replicate is idempotent on its own output.
		c.Redundancy.Replicas = 0
	}
	out.Components = comps
	var conns []model.Connector
	for _, c := range out.Connectors {
		froms, tos := instances[c.FromSWC], instances[c.ToSWC]
		if len(froms) == 0 {
			froms = []string{c.FromSWC} // unknown endpoint: keep as-is, Validate reports it
		}
		if len(tos) == 0 {
			tos = []string{c.ToSWC}
		}
		for _, from := range froms {
			for _, to := range tos {
				cc := c
				cc.FromSWC, cc.ToSWC = from, to
				conns = append(conns, cc)
			}
		}
	}
	out.Connectors = conns
	return out, nil
}

// cloneSWC deep-copies one component to the same depth System.Clone does.
func cloneSWC(c *model.SWC) *model.SWC {
	cc := *c
	cc.Ports = append([]model.Port(nil), c.Ports...)
	cc.Runnables = append([]model.Runnable(nil), c.Runnables...)
	if c.Config.Params != nil {
		cc.Config.Params = make(map[string]model.Param, len(c.Config.Params))
		for k, v := range c.Config.Params {
			cc.Config.Params[k] = v
		}
	}
	return &cc
}
