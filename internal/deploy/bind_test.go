package deploy

import (
	"math"
	"reflect"
	"testing"

	"autorte/internal/model"
	"autorte/internal/sim"
	"autorte/internal/workload"
)

func demoSystem(t *testing.T) *model.System {
	t.Helper()
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// Bound evaluation must reproduce the unbound evaluator exactly — same
// feasibility, same violation strings in the same order, bit-identical
// cost terms — across a walk of random candidate mappings and every
// constraint shape, feasible and infeasible.
func TestBoundEvaluateMatchesUnbound(t *testing.T) {
	base := demoSystem(t)
	consSet := map[string]Constraints{
		"default":     {},
		"tight":       {MaxUtilization: 0.35},
		"strict":      {RespectASIL: true, RespectMemory: true},
		"schedulable": {RequireSchedulable: true},
		"reject-all":  {MaxUtilization: RejectAllLoad},
	}
	for name, cons := range consSet {
		t.Run(name, func(t *testing.T) {
			ev := NewEvaluator(cons)
			bound, err := ev.Bind(base)
			if err != nil {
				t.Fatalf("bind: %v", err)
			}
			cur := base.Clone()
			r := sim.NewRand(7)
			for step := 0; step < 40; step++ {
				want := ev.Evaluate(cur)
				got := bound.Evaluate(cur.Mapping)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("step %d: bound metrics diverge\nunbound: %+v\nbound:   %+v", step, want, got)
				}
				obj := DefaultObjective()
				wc, gc := want.Cost(obj), got.Cost(obj)
				if wc != gc && !(math.IsInf(wc, 1) && math.IsInf(gc, 1)) {
					t.Fatalf("step %d: cost diverges: %v vs %v", step, wc, gc)
				}
				// Random single-component move for the next step.
				c := cur.Components[r.Intn(len(cur.Components))]
				e := cur.ECUs[r.Intn(len(cur.ECUs))]
				cur.Mapping[c.Name] = e.Name
			}
		})
	}
}

// Degenerate mappings must fail identically through both paths: an
// unmapped component and a mapping onto an unknown ECU.
func TestBoundEvaluateDegenerateMappings(t *testing.T) {
	base := demoSystem(t)
	ev := NewEvaluator(Constraints{RequireSchedulable: true})
	bound, err := ev.Bind(base)
	if err != nil {
		t.Fatal(err)
	}

	unmapped := base.Clone()
	delete(unmapped.Mapping, unmapped.Components[0].Name)
	want := ev.Evaluate(unmapped)
	got := bound.Evaluate(unmapped.Mapping)
	if want.Feasible || got.Feasible {
		t.Fatal("unmapped component should be infeasible")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("unmapped-component metrics diverge\nunbound: %+v\nbound:   %+v", want, got)
	}

	ghost := base.Clone()
	ghost.Mapping[ghost.Components[0].Name] = "no-such-ecu"
	want = ev.Evaluate(ghost)
	got = bound.Evaluate(ghost.Mapping)
	if want.Feasible || got.Feasible {
		t.Fatal("unknown-ECU mapping should be infeasible")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("unknown-ECU metrics diverge\nunbound: %+v\nbound:   %+v", want, got)
	}
}

// Bind must refuse an invalid base topology so searches fall back to the
// unbound evaluator and report the legacy validation error.
func TestBindRejectsInvalidTopology(t *testing.T) {
	sys := demoSystem(t)
	sys.ECUs[0].Speed = 0
	if _, err := NewEvaluator(Constraints{}).Bind(sys); err == nil {
		t.Fatal("Bind accepted an invalid topology")
	}
}

// A bound evaluator is shared across a parallel search's workers; hammer
// it concurrently to keep it race-clean (run with -race).
func TestBoundEvaluateConcurrent(t *testing.T) {
	base := demoSystem(t)
	ev := NewEvaluator(Constraints{RequireSchedulable: true})
	bound, err := ev.Bind(base)
	if err != nil {
		t.Fatal(err)
	}
	want := bound.Evaluate(base.Mapping)
	done := make(chan Metrics, 8)
	for g := 0; g < 8; g++ {
		go func() { done <- bound.Evaluate(base.Mapping) }()
	}
	for g := 0; g < 8; g++ {
		if got := <-done; !reflect.DeepEqual(want, got) {
			t.Fatalf("concurrent bound evaluation diverged: %+v vs %+v", want, got)
		}
	}
}
