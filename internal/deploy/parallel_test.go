package deploy

import (
	"testing"
)

// The parallel restart search must be scheduling-independent: identical
// results for any worker count.
func TestAnnealParallelDeterministic(t *testing.T) {
	sys := vehicle(t, 30)
	cons := Constraints{}
	obj := DefaultObjective()
	base, err := AnnealParallel(sys, cons, obj, 99, 400, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := AnnealParallel(sys, cons, obj, 99, 400, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		for name := range base.Mapping {
			if got.Mapping[name] != base.Mapping[name] {
				t.Fatalf("workers=%d: mapping diverges at %s: %s vs %s",
					workers, name, got.Mapping[name], base.Mapping[name])
			}
		}
	}
}

func TestAnnealParallelAtLeastAsGoodAsSingleChain(t *testing.T) {
	sys := vehicle(t, 31)
	cons := Constraints{}
	obj := DefaultObjective()
	single, err := Anneal(sys, cons, obj, 99^(1*0x9e3779b97f4a7c15), 400)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := AnnealParallel(sys, cons, obj, 99, 400, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	sCost := Evaluate(single, cons).Cost(obj)
	mCost := Evaluate(multi, cons).Cost(obj)
	if mCost > sCost {
		t.Fatalf("best-of-4 worse than chain 0 alone: %v > %v", mCost, sCost)
	}
}

func TestDescendImprovesOrMatchesStart(t *testing.T) {
	sys := vehicle(t, 32)
	cons := Constraints{}
	obj := DefaultObjective()
	g, err := Greedy(sys, cons)
	if err != nil {
		t.Fatal(err)
	}
	startCost := Evaluate(g, cons).Cost(obj)
	d, err := Descend(g, cons, obj, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	dCost := Evaluate(d, cons).Cost(obj)
	if dCost > startCost {
		t.Fatalf("descent worsened the mapping: %v -> %v", startCost, dCost)
	}
	if !Evaluate(d, cons).Feasible {
		t.Fatal("descent result infeasible")
	}
}

func TestDescendDeterministicAcrossWorkers(t *testing.T) {
	sys := vehicle(t, 33)
	cons := Constraints{}
	obj := DefaultObjective()
	base, err := Descend(sys, cons, obj, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Descend(sys, cons, obj, workers, 4)
		if err != nil {
			t.Fatal(err)
		}
		for name := range base.Mapping {
			if got.Mapping[name] != base.Mapping[name] {
				t.Fatalf("workers=%d: mapping diverges at %s", workers, name)
			}
		}
	}
}

func TestDescendBootstrapsInfeasibleStart(t *testing.T) {
	sys := vehicle(t, 34)
	for name := range sys.Mapping {
		sys.Mapping[name] = sys.ECUs[0].Name // hopeless overload
	}
	d, err := Descend(sys, Constraints{}, DefaultObjective(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !Evaluate(d, Constraints{}).Feasible {
		t.Fatal("descent did not recover feasibility")
	}
}
