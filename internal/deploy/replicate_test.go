package deploy

import (
	"strings"
	"testing"

	"autorte/internal/model"
	"autorte/internal/sim"
	"autorte/internal/vfb"
)

// redSpec is a minimal chain Sensor -> Ctrl -> Act with the controller
// asking for one passive standby. Loads on the reference core: Sensor
// 0.005, Ctrl 0.020, Act 0.008. Ctrl's 5ms period outranks the 10ms
// tasks under rate-monotonic ranking, so a promoted standby preempts
// whatever shares its ECU.
func redSpec() *model.System {
	sig := &model.PortInterface{
		Name: "IfSig", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	sensor := &model.SWC{
		Name: "Sensor", ASIL: model.ASILB, MemoryKB: 16,
		Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: sig}},
		Runnables: []model.Runnable{{
			Name: "sample", WCETNominal: sim.US(50),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
			Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
		}},
	}
	ctrl := &model.SWC{
		Name: "Ctrl", ASIL: model.ASILD, MemoryKB: 32,
		Redundancy: model.Redundancy{Replicas: 2, Mode: model.StandbyPassive},
		Ports: []model.Port{
			{Name: "in", Direction: model.Required, Interface: sig},
			{Name: "cmd", Direction: model.Provided, Interface: sig},
		},
		Runnables: []model.Runnable{{
			Name: "law", WCETNominal: sim.US(100),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(5)},
			Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
			Writes:  []model.PortRef{{Port: "cmd", Elem: "v"}},
		}},
	}
	act := &model.SWC{
		Name: "Act", ASIL: model.ASILC, MemoryKB: 16,
		Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: sig}},
		Runnables: []model.Runnable{{
			Name: "apply", WCETNominal: sim.US(80),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
			Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
		}},
	}
	return &model.System{
		Name:       "red",
		Interfaces: []*model.PortInterface{sig},
		Components: []*model.SWC{sensor, ctrl, act},
		ECUs: []*model.ECU{
			{Name: "e1", Speed: 1, MemoryKB: 256, MaxASIL: model.ASILD, Buses: []string{"can0"}, Position: [2]float64{0, 0}},
			{Name: "e2", Speed: 1, MemoryKB: 256, MaxASIL: model.ASILD, Buses: []string{"can0"}, Position: [2]float64{1, 0}},
			{Name: "e3", Speed: 1, MemoryKB: 256, MaxASIL: model.ASILD, Buses: []string{"can0"}, Position: [2]float64{2, 0}},
		},
		Buses: []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 500000}},
		Connectors: []model.Connector{
			{FromSWC: "Sensor", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"},
			{FromSWC: "Ctrl", FromPort: "cmd", ToSWC: "Act", ToPort: "in"},
		},
		Mapping: map[string]string{"Sensor": "e1", "Ctrl": "e1", "Act": "e2"},
	}
}

// redSystem is the materialized fixture: the standby Ctrl#1 exists and is
// sited on e2, apart from its primary.
func redSystem(t *testing.T) *model.System {
	t.Helper()
	sys, err := Replicate(redSpec())
	if err != nil {
		t.Fatal(err)
	}
	sys.Mapping["Ctrl#1"] = "e2"
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestReplicateMaterializesStandbys(t *testing.T) {
	out := redSystem(t)
	// The standby sits directly after its primary, keeping the group
	// contiguous in declaration order.
	names := make([]string, 0, len(out.Components))
	for _, c := range out.Components {
		names = append(names, c.Name)
	}
	want := []string{"Sensor", "Ctrl", "Ctrl#1", "Act"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("components = %v, want %v", names, want)
	}
	sb := out.Component("Ctrl#1")
	if sb.ReplicaOf != "Ctrl" || !sb.PassiveStandby() {
		t.Fatalf("standby role: ReplicaOf=%q passive=%v", sb.ReplicaOf, sb.PassiveStandby())
	}
	if out.Component("Ctrl").Redundancy.Replicated() {
		t.Fatal("primary still requests replicas after materialization")
	}
	// Connector fan-out: Sensor feeds both Ctrl instances, both instances
	// feed Act — 4 connectors from the original 2.
	if len(out.Connectors) != 4 {
		t.Fatalf("connectors = %d, want 4: %v", len(out.Connectors), out.Connectors)
	}
	// The fan-in on Act.in is one logical provider (the Ctrl group), so
	// VFB connectivity holds.
	if err := vfb.CheckConnectivity(out); err != nil {
		t.Fatalf("connectivity: %v", err)
	}
	if _, err := vfb.Resolve(out); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	// Idempotent: the spec is spent, a second pass adds nothing.
	again, err := Replicate(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Components) != len(out.Components) || len(again.Connectors) != len(out.Connectors) {
		t.Fatalf("second Replicate changed the system: %d comps, %d conns",
			len(again.Components), len(again.Connectors))
	}
}

func TestReplicateRejectsNameCollision(t *testing.T) {
	sys := redSpec()
	clash := *sys.Components[2]
	clash.Name = "Ctrl#1"
	sys.Components = append(sys.Components, &clash)
	if _, err := Replicate(sys); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Fatalf("collision not caught: %v", err)
	}
}

// Greedy must keep replica instances apart (anti-affinity) and produce a
// feasible fail-operational packing.
func TestGreedyPlacesReplicasApart(t *testing.T) {
	sys := redSystem(t)
	sys.Mapping = nil
	out, err := Greedy(sys, Constraints{RespectASIL: true, RespectMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Mapping["Ctrl"] == out.Mapping["Ctrl#1"] {
		t.Fatalf("replicas co-located on %s", out.Mapping["Ctrl"])
	}
	m := Evaluate(out, Constraints{RespectASIL: true, RespectMemory: true})
	if !m.Feasible || m.Survivability != 1 {
		t.Fatalf("greedy packing not fail-operational: %+v", m)
	}
}
