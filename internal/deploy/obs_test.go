package deploy

import (
	"strings"
	"testing"

	"autorte/internal/obs"
)

// TestDescendCountsMoves checks the DSE search counters: descent must
// evaluate many candidate moves and accept at least one on a system it
// demonstrably improves.
func TestDescendCountsMoves(t *testing.T) {
	sys := vehicle(t, 2)
	ev := NewEvaluator(Constraints{})
	reg := obs.NewRegistry()
	ev.Observe(reg)
	if _, err := DescendWith(ev, sys, DefaultObjective(), 0, 4); err != nil {
		t.Fatal(err)
	}
	evaluated, accepted := ev.SearchCounts()
	if evaluated == 0 {
		t.Fatal("descent evaluated no moves")
	}
	if accepted == 0 {
		t.Fatal("descent on the federated baseline should accept at least one move")
	}
	if accepted > evaluated {
		t.Fatalf("accepted %d > evaluated %d", accepted, evaluated)
	}
	series := map[string]float64{}
	for _, s := range reg.Snapshot() {
		series[s.Name] = s.Value
	}
	if series["dse_moves_evaluated_total"] != float64(evaluated) {
		t.Fatalf("registry reports %v evaluated, counters say %d",
			series["dse_moves_evaluated_total"], evaluated)
	}
	if series["dse_moves_accepted_total"] != float64(accepted) {
		t.Fatalf("registry reports %v accepted, counters say %d",
			series["dse_moves_accepted_total"], accepted)
	}
	var prom strings.Builder
	if err := obs.WritePrometheus(&prom, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "dse_moves_evaluated_total") {
		t.Fatal("Prometheus export missing DSE counters")
	}
}

// TestAnnealCountsMoves checks the annealer feeds the same counters:
// every iteration evaluates a candidate, and acceptances stay within
// evaluations.
func TestAnnealCountsMoves(t *testing.T) {
	sys := vehicle(t, 3)
	ev := NewEvaluator(Constraints{})
	if _, err := anneal(ev, sys, DefaultObjective(), 7, 300); err != nil {
		t.Fatal(err)
	}
	evaluated, accepted := ev.SearchCounts()
	// Not every iteration yields a candidate (some proposed moves are
	// no-ops), but the bulk of 300 iterations must have been evaluated.
	if evaluated < 150 {
		t.Fatalf("annealer evaluated only %d moves over 300 iterations", evaluated)
	}
	if accepted > evaluated {
		t.Fatalf("accepted %d > evaluated %d", accepted, evaluated)
	}
}
