package deploy

import (
	"reflect"
	"testing"

	"autorte/internal/sim"
)

// The delta evaluator must reproduce the bound evaluation exactly — same
// feasibility, same violation strings in the same order, bit-identical
// cost terms — for every scored move, across constraint shapes and as the
// incumbent advances through applied moves.
func TestPreparedEvaluateMoveMatchesBoundEvaluate(t *testing.T) {
	base := demoSystem(t)
	consSet := map[string]Constraints{
		"default":     {},
		"tight":       {MaxUtilization: 0.35},
		"strict":      {RespectASIL: true, RespectMemory: true},
		"schedulable": {RequireSchedulable: true},
		"everything":  {MaxUtilization: 0.5, RespectASIL: true, RespectMemory: true, RequireSchedulable: true},
	}
	for name, cons := range consSet {
		t.Run(name, func(t *testing.T) {
			ev := NewEvaluator(cons)
			bound, err := ev.Bind(base)
			if err != nil {
				t.Fatalf("bind: %v", err)
			}
			prep, err := bound.Prepare(base.Mapping)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			r := sim.NewRand(11)
			for step := 0; step < 60; step++ {
				comp := base.Components[r.Intn(len(base.Components))].Name
				ecu := base.ECUs[r.Intn(len(base.ECUs))].Name
				cm := prep.Mapping()
				cm[comp] = ecu
				want := bound.Evaluate(cm)
				got := prep.EvaluateMove(comp, ecu)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("step %d (%s -> %s): delta metrics diverge\nbound: %+v\ndelta: %+v", step, comp, ecu, want, got)
				}
				// Advance the incumbent on every third step so both paths
				// walk the same trajectory.
				if step%3 == 0 {
					if err := prep.Apply(comp, ecu); err != nil {
						t.Fatalf("apply: %v", err)
					}
					if in := prep.Evaluate(); !reflect.DeepEqual(want, in) {
						t.Fatalf("step %d: incumbent evaluation diverges after apply", step)
					}
				}
			}
		})
	}
}

// Score-only calls must be safe to fan out concurrently over one shared
// incumbent — the parallel steepest-descent shape.
func TestPreparedEvaluateMoveConcurrent(t *testing.T) {
	base := demoSystem(t)
	ev := NewEvaluator(Constraints{RequireSchedulable: true})
	bound, err := ev.Bind(base)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := bound.Prepare(base.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	type move struct{ comp, ecu string }
	var moves []move
	var want []Metrics
	for _, c := range base.Components {
		for _, e := range base.ECUs[:4] {
			cm := cloneMapping(base.Mapping)
			cm[c.Name] = e.Name
			moves = append(moves, move{c.Name, e.Name})
			want = append(want, bound.Evaluate(cm))
		}
	}
	done := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			bad := -1
			for i := g; i < len(moves); i += 8 {
				if got := prep.EvaluateMove(moves[i].comp, moves[i].ecu); !reflect.DeepEqual(got, want[i]) {
					bad = i
					break
				}
			}
			done <- bad
		}(g)
	}
	for g := 0; g < 8; g++ {
		if bad := <-done; bad != -1 {
			t.Fatalf("concurrent EvaluateMove diverged on move %d (%s -> %s)", bad, moves[bad].comp, moves[bad].ecu)
		}
	}
}

func TestPreparedRejectsIncompleteMapping(t *testing.T) {
	base := demoSystem(t)
	ev := NewEvaluator(Constraints{})
	bound, err := ev.Bind(base)
	if err != nil {
		t.Fatal(err)
	}
	partial := cloneMapping(base.Mapping)
	delete(partial, base.Components[0].Name)
	if _, err := bound.Prepare(partial); err == nil {
		t.Fatal("prepare should reject a mapping missing a component")
	}
	stray := cloneMapping(base.Mapping)
	stray["ghost"] = base.ECUs[0].Name
	if _, err := bound.Prepare(stray); err == nil {
		t.Fatal("prepare should reject a mapping with stray entries")
	}
	unknown := cloneMapping(base.Mapping)
	unknown[base.Components[0].Name] = "no-such-ecu"
	if _, err := bound.Prepare(unknown); err == nil {
		t.Fatal("prepare should reject a mapping onto an unknown ECU")
	}
	// Unknown move targets fall back to the bound evaluation instead of
	// corrupting state.
	prep, err := bound.Prepare(base.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	got := prep.EvaluateMove(base.Components[0].Name, "no-such-ecu")
	cm := cloneMapping(base.Mapping)
	cm[base.Components[0].Name] = "no-such-ecu"
	if want := bound.Evaluate(cm); !reflect.DeepEqual(got, want) {
		t.Fatal("unknown-ECU move should score through the bound fallback")
	}
	if err := prep.Apply(base.Components[0].Name, "no-such-ecu"); err == nil {
		t.Fatal("apply onto an unknown ECU should error")
	}
}
