package deploy

// The k-of-n fault model behind the fail-operational analysis. PR 9's
// redCheck hard-coded the fault universe to "any single hosted ECU
// dies"; FaultModel generalizes it to explicit loss units (ECU sets,
// bus channels, correlated ECU+bus failures) and to any k of those
// units failing concurrently. The zero value reproduces the v1 sweep
// bit-exactly — same events, same violation strings, same
// Survivability fraction — so existing callers and the three-path
// DeepEqual identity are untouched.

import (
	"fmt"
	"strings"
)

// LossKind classifies one loss unit of the fault model.
type LossKind uint8

const (
	// LossECU takes down the named ECUs: their hosted instances stop.
	LossECU LossKind = iota
	// LossBus takes down the named bus channels: an ECU attached only
	// to lost channels is isolated, which the analysis treats as losing
	// its hosted instances (they run but cannot deliver).
	LossBus
	// LossECUAndBus is a correlated failure taking down both the named
	// ECUs and the named bus channels in one event (a power-domain or
	// connector-housing fault).
	LossECUAndBus
)

func (k LossKind) String() string {
	switch k {
	case LossECU:
		return "ecu"
	case LossBus:
		return "bus"
	case LossECUAndBus:
		return "ecu+bus"
	default:
		return fmt.Sprintf("LossKind(%d)", uint8(k))
	}
}

// Loss is one atomic loss unit: the hardware one fault event removes.
type Loss struct {
	Kind  LossKind
	ECUs  []string // required for LossECU and LossECUAndBus
	Buses []string // required for LossBus and LossECUAndBus
}

// FaultModel configures the survivability sweep of the fail-operational
// analysis. The zero value is PR 9's model: every single hosted ECU
// fails alone, and any uncovered event is a hard feasibility violation.
type FaultModel struct {
	// MaxConcurrent is k: the sweep covers every combination of up to k
	// loss units failing together. Values below 2 mean single failures
	// only (the v1 sweep).
	MaxConcurrent int
	// Losses enumerates the loss units. Empty means one LossECU unit
	// per hosted ECU, derived from the candidate mapping.
	Losses []Loss
	// Soft prices uncovered events through Survivability (and the
	// objective's WAvail term) instead of rejecting the mapping. Replica
	// anti-affinity and malformed Losses stay hard violations. This is
	// the setting automatic placement searches under: an unreplicated
	// seed must be scorable, not infeasible.
	Soft bool
	// IncludeSingletons scores unreplicated components as replica groups
	// of one, so every (event, component) pair an event kills without a
	// promotable standby counts against Survivability. This gives a
	// placement search a gradient from "nothing replicated" toward full
	// coverage; combine with Soft.
	IncludeSingletons bool
}

// lossEvent is one resolved fault event of the sweep: the label used in
// violation strings, the dead ECUs (by bound index) and the lost bus
// channels.
type lossEvent struct {
	label string
	dead  []bool
	buses map[string]bool
}

// lost reports whether the ECU at index ei is out of service under the
// event: dead outright, or attached to buses that are all lost.
func (e *lossEvent) lost(ecus []boundECU, ei int) bool {
	if e.dead[ei] {
		return true
	}
	if len(e.buses) == 0 || len(ecus[ei].buses) == 0 {
		return false
	}
	for _, b := range ecus[ei].buses {
		if !e.buses[b] {
			return false
		}
	}
	return true
}

// lossUnits resolves the fault model's atomic loss units against the
// bound topology. Malformed units (wrong fields for the kind, unknown
// names) append hard violations — a misconfigured fault model must not
// silently pass as "survived". With no explicit Losses the units are
// the v1 universe: one per hosted ECU, in ECU declaration order.
func (rc *redCheck) lossUnits(m *Metrics) []lossEvent {
	fm := rc.cons.Faults
	if len(fm.Losses) == 0 {
		var units []lossEvent
		for ei := range rc.ecus {
			if !rc.hosts(ei) {
				continue
			}
			dead := make([]bool, len(rc.ecus))
			dead[ei] = true
			units = append(units, lossEvent{label: rc.ecus[ei].name, dead: dead})
		}
		return units
	}
	ecuIdx := make(map[string]int, len(rc.ecus))
	for i := range rc.ecus {
		ecuIdx[rc.ecus[i].name] = i
	}
	busKnown := map[string]bool{}
	for i := range rc.ecus {
		for _, b := range rc.ecus[i].buses {
			busKnown[b] = true
		}
	}
	bad := func(format string, args ...any) {
		m.Feasible = false
		m.Violations = append(m.Violations, fmt.Sprintf(format, args...))
	}
	var units []lossEvent
	for li, l := range fm.Losses {
		wantECUs, wantBuses := false, false
		switch l.Kind {
		case LossECU:
			wantECUs = true
		case LossBus:
			wantBuses = true
		case LossECUAndBus:
			wantECUs, wantBuses = true, true
		default:
			bad("fault model: loss %d has unknown kind %v", li, l.Kind)
			continue
		}
		if wantECUs != (len(l.ECUs) > 0) || wantBuses != (len(l.Buses) > 0) {
			bad("fault model: %v loss %d must name %s", l.Kind, li, lossWants(wantECUs, wantBuses))
			continue
		}
		ev := lossEvent{dead: make([]bool, len(rc.ecus)), buses: map[string]bool{}}
		ok := true
		for _, name := range l.ECUs {
			ei, known := ecuIdx[name]
			if !known {
				bad("fault model: loss %d names unknown ECU %q", li, name)
				ok = false
				continue
			}
			ev.dead[ei] = true
		}
		for _, name := range l.Buses {
			if !busKnown[name] {
				bad("fault model: loss %d names unknown bus %q", li, name)
				ok = false
				continue
			}
			ev.buses[name] = true
		}
		if !ok {
			continue
		}
		ev.label = strings.Join(append(append([]string{}, l.ECUs...), l.Buses...), "+")
		units = append(units, ev)
	}
	return units
}

func lossWants(ecus, buses bool) string {
	switch {
	case ecus && buses:
		return "ECUs and buses"
	case ecus:
		return "ECUs only"
	default:
		return "buses only"
	}
}

// lossEvents expands the loss units into the swept event set: every
// single unit, then every combination of 2..MaxConcurrent units in
// lexicographic unit order, labels joined with "+". Deterministic.
func (rc *redCheck) lossEvents(m *Metrics) []lossEvent {
	units := rc.lossUnits(m)
	events := append([]lossEvent{}, units...)
	k := rc.cons.Faults.MaxConcurrent
	if k > len(units) {
		k = len(units)
	}
	for size := 2; size <= k; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			events = append(events, mergeUnits(units, idx, len(rc.ecus)))
			// Advance to the next lexicographic combination.
			i := size - 1
			for i >= 0 && idx[i] == len(units)-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return events
}

// mergeUnits unions the selected loss units into one concurrent event.
func mergeUnits(units []lossEvent, idx []int, necus int) lossEvent {
	ev := lossEvent{dead: make([]bool, necus), buses: map[string]bool{}}
	labels := make([]string, 0, len(idx))
	for _, ui := range idx {
		u := &units[ui]
		labels = append(labels, u.label)
		for ei, d := range u.dead {
			if d {
				ev.dead[ei] = true
			}
		}
		for b := range u.buses {
			ev.buses[b] = true
		}
	}
	ev.label = strings.Join(labels, "+")
	return ev
}

// effectiveGroups is the replica-group set the sweep scores: the
// materialized groups, plus (under IncludeSingletons) every unreplicated
// primary as a group of one, in component declaration order.
func (rc *redCheck) effectiveGroups() []redGroup {
	if !rc.cons.Faults.IncludeSingletons {
		return rc.groups
	}
	standbys := make(map[int][]int, len(rc.groups))
	for _, g := range rc.groups {
		standbys[g.primary] = g.standbys
	}
	var groups []redGroup
	for ci := range rc.comps {
		if rc.comps[ci].replicaOf != "" {
			continue
		}
		groups = append(groups, redGroup{primary: ci, standbys: standbys[ci]})
	}
	return groups
}
