package deploy

import (
	"testing"

	"autorte/internal/model"
	"autorte/internal/sim"
	"autorte/internal/workload"
)

func vehicle(t *testing.T, seed uint64) *model.System {
	t.Helper()
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEvaluateFederatedBaseline(t *testing.T) {
	sys := vehicle(t, 1)
	m := Evaluate(sys, Constraints{})
	if !m.Feasible {
		t.Fatalf("federated baseline infeasible: %v", m.Violations)
	}
	if m.ECUs != 12 {
		t.Fatalf("federated ECUs = %d, want 12", m.ECUs)
	}
	if m.Harness <= 0 {
		t.Fatal("federated harness should be positive")
	}
}

func TestGreedyConsolidationReducesECUs(t *testing.T) {
	sys := vehicle(t, 2)
	before := Evaluate(sys, Constraints{})
	out, err := Greedy(sys, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	after := Evaluate(out, Constraints{})
	if !after.Feasible {
		t.Fatalf("consolidated mapping infeasible: %v", after.Violations)
	}
	if after.ECUs >= before.ECUs {
		t.Fatalf("consolidation did not reduce ECUs: %d -> %d", before.ECUs, after.ECUs)
	}
	// Total utilization ~2.6 at cap 0.69 needs at least 4 ECUs.
	if after.ECUs < 4 {
		t.Fatalf("suspiciously few ECUs: %d (capacity would be violated)", after.ECUs)
	}
	// The input must not be mutated.
	if Evaluate(sys, Constraints{}).ECUs != before.ECUs {
		t.Fatal("Greedy mutated its input")
	}
}

func TestGreedyRespectsUtilizationCap(t *testing.T) {
	sys := vehicle(t, 3)
	out, err := Greedy(sys, Constraints{MaxUtilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(out, Constraints{MaxUtilization: 0.5})
	if !m.Feasible || m.MaxLoad > 0.5 {
		t.Fatalf("cap violated: %+v", m)
	}
}

func TestGreedyRespectsASIL(t *testing.T) {
	sys := vehicle(t, 4)
	// Qualify only the chassis cluster ECUs for ASIL-D.
	for _, e := range sys.ECUs {
		e.MaxASIL = model.ASILB
	}
	sys.ECUs[3].MaxASIL = model.ASILD
	sys.ECUs[4].MaxASIL = model.ASILD
	sys.ECUs[5].MaxASIL = model.ASILD
	out, err := Greedy(sys, Constraints{RespectASIL: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range out.Components {
		if c.ASIL == model.ASILD {
			e := out.ECUByName(out.Mapping[c.Name])
			if e.MaxASIL < model.ASILD {
				t.Fatalf("ASIL-D component %s on %v ECU %s", c.Name, e.MaxASIL, e.Name)
			}
		}
	}
}

func TestGreedyRespectsMemory(t *testing.T) {
	sys := vehicle(t, 5)
	for _, e := range sys.ECUs {
		e.MemoryKB = 100 // each chain trio needs 64KB; at most one and a half per ECU
	}
	out, err := Greedy(sys, Constraints{RespectMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(out, Constraints{RespectMemory: true})
	if !m.Feasible {
		t.Fatalf("memory-constrained packing infeasible: %v", m.Violations)
	}
}

func TestGreedyImpossible(t *testing.T) {
	sys := vehicle(t, 6)
	if _, err := Greedy(sys, Constraints{MaxUtilization: 0.0001}); err == nil {
		t.Fatal("impossible cap packed successfully")
	}
}

func TestAnnealImprovesOrMatchesGreedy(t *testing.T) {
	sys := vehicle(t, 7)
	cons := Constraints{}
	obj := DefaultObjective()
	g, err := Greedy(sys, cons)
	if err != nil {
		t.Fatal(err)
	}
	gCost := Evaluate(g, cons).Cost(obj)
	a, err := Anneal(g, cons, obj, 42, 2000)
	if err != nil {
		t.Fatal(err)
	}
	aCost := Evaluate(a, cons).Cost(obj)
	if aCost > gCost*1.001 {
		t.Fatalf("annealing worsened the mapping: %v -> %v", gCost, aCost)
	}
	if !Evaluate(a, cons).Feasible {
		t.Fatal("annealed mapping infeasible")
	}
}

func TestAnnealFromInfeasibleBootstrapsGreedy(t *testing.T) {
	sys := vehicle(t, 8)
	// Break the mapping: everything on one ECU (overloaded).
	for name := range sys.Mapping {
		sys.Mapping[name] = sys.ECUs[0].Name
	}
	a, err := Anneal(sys, Constraints{}, DefaultObjective(), 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !Evaluate(a, Constraints{}).Feasible {
		t.Fatal("anneal did not recover feasibility")
	}
}

func TestAnnealDeterministic(t *testing.T) {
	sys := vehicle(t, 9)
	cons := Constraints{}
	obj := DefaultObjective()
	a1, err := Anneal(sys, cons, obj, 77, 800)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := Anneal(sys, cons, obj, 77, 800)
	for name := range a1.Mapping {
		if a1.Mapping[name] != a2.Mapping[name] {
			t.Fatal("annealing not deterministic for fixed seed")
		}
	}
}

func TestCostOrdering(t *testing.T) {
	m1 := Metrics{Feasible: true, ECUs: 4, Harness: 10}
	m2 := Metrics{Feasible: true, ECUs: 5, Harness: 1}
	obj := DefaultObjective()
	if m1.Cost(obj) >= m2.Cost(obj) {
		t.Fatal("ECU count should dominate harness at default weights")
	}
	bad := Metrics{Feasible: false}
	if !(bad.Cost(obj) > m2.Cost(obj)) {
		t.Fatal("infeasible not infinitely costly")
	}
}

func TestPlaceAddsWithoutMovingExisting(t *testing.T) {
	sys := vehicle(t, 10)
	g, err := Greedy(sys, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]string{}
	for k, v := range g.Mapping {
		before[k] = v
	}
	// A new aftermarket component arrives post-SOP.
	g.Components = append(g.Components, &model.SWC{
		Name: "NewTelematics", Supplier: "zNew",
		Runnables: []model.Runnable{{
			Name: "run", WCETNominal: sim.MS(1),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(100)},
		}},
	})
	placed, err := Place(g, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	for name, ecu := range before {
		if placed.Mapping[name] != ecu {
			t.Fatalf("existing component %s moved %s -> %s", name, ecu, placed.Mapping[name])
		}
	}
	if placed.Mapping["NewTelematics"] == "" {
		t.Fatal("new component not placed")
	}
	if !Evaluate(placed, Constraints{}).Feasible {
		t.Fatal("incremental placement infeasible")
	}
}

func TestPlaceRejectsWhenFull(t *testing.T) {
	sys := vehicle(t, 11)
	g, err := Greedy(sys, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	g.Components = append(g.Components, &model.SWC{
		Name: "Monster", Supplier: "zNew",
		Runnables: []model.Runnable{{
			Name: "run", WCETNominal: sim.MS(95),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(100)},
		}},
	})
	// 95% utilization fits on no ECU under the 0.69 cap alongside others.
	if _, err := Place(g, Constraints{}); err == nil {
		t.Fatal("oversized component placed")
	}
}
