package deploy

// Bound.Evaluate already avoids the per-candidate system clone, but it
// still regroups every component and re-checks every ECU for each scored
// move — O(system) work for a candidate that differs from the incumbent by
// ONE mapping entry. Prepared is the delta evaluator on top of Bound: it
// retains the incumbent's per-ECU accumulators and schedulability
// verdicts, and EvaluateMove re-derives only the two ECUs a move touches.
// The metrics are bit-identical to Bound.Evaluate — same summation order,
// same violation strings in the same order — so a search can switch
// between the paths freely (TestPreparedEvaluateMoveMatchesBoundEvaluate
// holds them together).

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"autorte/internal/model"
	"autorte/internal/sched"
	"autorte/internal/sim"
)

// ecuAcc is one ECU's per-candidate accumulator state: the hosting terms
// Bound.Evaluate derives per evaluation, retained per incumbent instead.
type ecuAcc struct {
	load        float64
	memory      int
	hosts       bool
	worst, best model.ASIL
	protos      int // hosted analyzable runnable count, rate-less included
}

// moveKey identifies one dirty-ECU recomputation: ECU index, the comp
// index leaving it (or -1) and the comp index joining it (or -1).
type moveKey struct{ idx, skip, add int }

type moveEntry struct {
	acc ecuAcc
	msg string
}

// Prepared scores single-component moves against an incumbent mapping in
// O(dirty ECUs) instead of O(system). EvaluateMove is read-only and safe
// for concurrent use (parallel steepest descent scores all moves of a
// round concurrently); Apply commits a move and is not.
type Prepared struct {
	b   *Bound
	cur map[string]string
	// curIdx mirrors cur as comp index -> ECU index, so the hot loops
	// compare integers instead of hashing names.
	curIdx []int
	// Per-ECU incumbent state, indexed like b.ecus.
	accs     []ecuAcc
	schedMsg []string // RTA violation message, "" when schedulable/skipped
	// dist caches the harness distance per ECU index pair, ecuByName
	// fixes the sorted order checkSchedulable reports violations in, and
	// connComp resolves each connector's endpoint comp indices (-1 when
	// the name is not a known component).
	dist      [][]float64
	ecuByName []int
	connComp  [][2]int
	// memo retains dirty-ECU recomputations against the current
	// incumbent: a search rescoring its neighborhood between accepted
	// moves hits the same (ECU, leave, join) combinations over and over.
	// Apply invalidates the entries of the two ECUs it dirties.
	mu   sync.RWMutex
	memo map[moveKey]moveEntry
}

// Prepare binds the evaluator state to an incumbent mapping. It rejects
// mappings outside the DSE invariant — every component mapped to a known
// ECU, no stray entries — because only there is the delta path guaranteed
// to reproduce Bound.Evaluate exactly; searches fall back to the bound
// evaluator on error.
func (b *Bound) Prepare(mapping map[string]string) (*Prepared, error) {
	if len(mapping) != len(b.comps) {
		return nil, fmt.Errorf("deploy: prepare: mapping has %d entries for %d components", len(mapping), len(b.comps))
	}
	p := &Prepared{
		b:        b,
		cur:      cloneMapping(mapping),
		curIdx:   make([]int, len(b.comps)),
		accs:     make([]ecuAcc, len(b.ecus)),
		schedMsg: make([]string, len(b.ecus)),
		dist:     make([][]float64, len(b.ecus)),
		connComp: make([][2]int, len(b.conns)),
		memo:     map[moveKey]moveEntry{},
		ecuByName: func() []int {
			idx := make([]int, len(b.ecus))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(i, j int) bool { return b.ecus[idx[i]].name < b.ecus[idx[j]].name })
			return idx
		}(),
	}
	for i := range b.comps {
		ecu, ok := mapping[b.comps[i].name]
		if !ok {
			return nil, fmt.Errorf("deploy: prepare: component %s is not mapped", b.comps[i].name)
		}
		ei, ok := b.ecuIdx[ecu]
		if !ok {
			return nil, fmt.Errorf("deploy: prepare: %s mapped to unknown ECU %q", b.comps[i].name, ecu)
		}
		p.curIdx[i] = ei
	}
	for i := range b.ecus {
		p.dist[i] = make([]float64, len(b.ecus))
		for j := range b.ecus {
			dx := b.ecus[i].pos[0] - b.ecus[j].pos[0]
			dy := b.ecus[i].pos[1] - b.ecus[j].pos[1]
			p.dist[i][j] = math.Hypot(dx, dy)
		}
	}
	for k := range b.conns {
		p.connComp[k] = [2]int{-1, -1}
		if ci, ok := b.compIdx[b.conns[k].from]; ok {
			p.connComp[k][0] = ci
		}
		if ci, ok := b.compIdx[b.conns[k].to]; ok {
			p.connComp[k][1] = ci
		}
	}
	for i := range b.ecus {
		p.accs[i], p.schedMsg[i] = p.computeECU(i, -1, -1)
	}
	return p, nil
}

// computeECU re-derives one ECU's accumulator and schedulability verdict,
// reproducing Bound.Evaluate's per-component accumulation order and
// checkSchedulable's grouping exactly. The hosted set is the incumbent's,
// minus comp index skip, plus comp index add (-1 for none) — the two
// adjustments a single-component move needs.
func (p *Prepared) computeECU(idx, skip, add int) (ecuAcc, string) {
	b := p.b
	name := b.ecus[idx].name
	speed := b.ecus[idx].speed
	var a ecuAcc
	var protos []*protoTask
	for i := range b.comps {
		if (p.curIdx[i] != idx || i == skip) && i != add {
			continue
		}
		c := &b.comps[i]
		if !a.hosts || c.asil < a.best {
			a.best = c.asil
		}
		a.hosts = true
		a.memory += c.memoryKB
		if c.asil > a.worst {
			a.worst = c.asil
		}
		if c.passive {
			continue // suspended until promotion: no normal-case demand
		}
		for _, t := range c.loadTerms {
			a.load += t / speed
		}
		for j := range c.protos {
			protos = append(protos, &c.protos[j])
		}
	}
	a.protos = len(protos)
	if len(protos) == 0 {
		return a, ""
	}
	sortProtos(protos)
	var tasks []sched.Task
	for rank, pt := range protos {
		if pt.period <= 0 {
			continue
		}
		tasks = append(tasks, sched.Task{
			Name: pt.name, C: sim.Duration(float64(pt.wcet) / speed),
			T: pt.period, D: pt.deadline, Priority: 1000 - rank,
		})
	}
	if len(tasks) == 0 {
		return a, ""
	}
	ok, err := b.ev.RTA.Check(tasks)
	if err != nil {
		return a, fmt.Sprintf("%s: RTA failed: %v", name, err)
	}
	if !ok {
		return a, fmt.Sprintf("%s unschedulable under response-time analysis", name)
	}
	return a, ""
}

// computeECUCached memoizes computeECU against the current incumbent.
func (p *Prepared) computeECUCached(idx, skip, add int) (ecuAcc, string) {
	k := moveKey{idx, skip, add}
	p.mu.RLock()
	e, ok := p.memo[k]
	p.mu.RUnlock()
	if ok {
		return e.acc, e.msg
	}
	acc, msg := p.computeECU(idx, skip, add)
	p.mu.Lock()
	p.memo[k] = moveEntry{acc, msg}
	p.mu.Unlock()
	return acc, msg
}

// EvaluateMove scores moving comp to ecu without committing it. Unknown
// names fall back to the full bound evaluation of the mutated mapping.
func (p *Prepared) EvaluateMove(comp, ecu string) Metrics {
	b := p.b
	ci, okC := b.compIdx[comp]
	ei, okE := b.ecuIdx[ecu]
	if !okC || !okE {
		cm := cloneMapping(p.cur)
		cm[comp] = ecu
		return b.Evaluate(cm)
	}
	oi := p.curIdx[ci]
	if ei == oi {
		// The move is a no-op: the candidate mapping IS the incumbent.
		return p.Evaluate()
	}
	accOld, msgOld := p.computeECUCached(oi, ci, -1)
	accNew, msgNew := p.computeECUCached(ei, -1, ci)
	get := func(i int) (ecuAcc, string) {
		switch i {
		case oi:
			return accOld, msgOld
		case ei:
			return accNew, msgNew
		}
		return p.accs[i], p.schedMsg[i]
	}
	return p.assemble(ci, ei, get)
}

// Evaluate scores the incumbent mapping itself from the retained state.
func (p *Prepared) Evaluate() Metrics {
	return p.assemble(-1, -1, func(i int) (ecuAcc, string) { return p.accs[i], p.schedMsg[i] })
}

// Apply commits a previously scored move into the incumbent state. Not
// safe for concurrent use with EvaluateMove.
func (p *Prepared) Apply(comp, ecu string) error {
	b := p.b
	ci, ok := b.compIdx[comp]
	if !ok {
		return fmt.Errorf("deploy: apply: unknown component %q", comp)
	}
	ei, ok := b.ecuIdx[ecu]
	if !ok {
		return fmt.Errorf("deploy: apply: unknown ECU %q", ecu)
	}
	oi := p.curIdx[ci]
	p.cur[comp] = ecu
	p.curIdx[ci] = ei
	// Only the two dirty ECUs' memo entries are stale: a move between oi
	// and ei cannot change any other ECU's hosted set, and within a memo
	// entry the moved component's own membership is forced by skip/add
	// rather than read from the incumbent. Keeping the rest warm is what
	// lets a search reuse scores across accepted moves.
	p.mu.Lock()
	for k := range p.memo {
		if k.idx == oi || k.idx == ei {
			delete(p.memo, k)
		}
	}
	p.mu.Unlock()
	p.accs[oi], p.schedMsg[oi] = p.computeECU(oi, -1, -1)
	if ei != oi {
		p.accs[ei], p.schedMsg[ei] = p.computeECU(ei, -1, -1)
	}
	return nil
}

// Mapping returns a copy of the incumbent mapping.
func (p *Prepared) Mapping() map[string]string { return cloneMapping(p.cur) }

// ecuOf resolves a component's ECU index under the incumbent with one
// moved component overridden (moved -1 for none).
func (p *Prepared) ecuOf(ci, moved, target int) int {
	if ci == moved {
		return target
	}
	return p.curIdx[ci]
}

// assemble folds per-ECU state into Metrics with Bound.Evaluate's exact
// term order: ECU count, harness sum in connector order, per-ECU checks in
// declaration order, communication verdict, RTA verdicts in sorted ECU
// order, then load variance. The candidate mapping is the incumbent with
// comp index moved relocated to ECU index target.
func (p *Prepared) assemble(moved, target int, get func(int) (ecuAcc, string)) Metrics {
	b := p.b
	cons := b.ev.Cons
	cons.fill()
	m := Metrics{Feasible: true}
	if err := cons.Validate(); err != nil {
		m.Feasible = false
		m.Violations = append(m.Violations, err.Error())
		return m
	}
	for i := range b.ecus {
		if a, _ := get(i); a.hosts {
			m.ECUs++
		}
	}
	for k := range b.conns {
		fi, ti := p.connComp[k][0], p.connComp[k][1]
		if fi < 0 || ti < 0 {
			continue
		}
		si, di := p.ecuOf(fi, moved, target), p.ecuOf(ti, moved, target)
		if si == di {
			continue
		}
		m.Harness += p.dist[si][di]
	}
	var loads []float64
	for i := range b.ecus {
		a, _ := get(i)
		if !a.hosts {
			continue
		}
		e := &b.ecus[i]
		loads = append(loads, a.load)
		if a.load > m.MaxLoad {
			m.MaxLoad = a.load
		}
		if a.load > cons.MaxUtilization {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s overloaded: %.3f > %.3f", e.name, a.load, cons.MaxUtilization))
		}
		if cons.RespectMemory && e.memoryKB > 0 && a.memory > e.memoryKB {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s out of memory: %d > %d KB", e.name, a.memory, e.memoryKB))
		}
		if cons.RespectASIL && a.worst > e.maxASIL {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s hosts %v components but qualifies only for %v", e.name, a.worst, e.maxASIL))
		}
		if msg := asilSpreadViolation(e.name, a.worst, a.best, cons.MaxASILSpread); msg != "" {
			m.Feasible = false
			m.Violations = append(m.Violations, msg)
		}
	}
	rc := &redCheck{
		comps: b.comps, groups: b.groups, ecus: b.ecus, cons: cons, rta: b.ev.RTA,
		ecuOf: func(ci int) (int, bool) { return p.ecuOf(ci, moved, target), true },
		load:  func(ei int) float64 { a, _ := get(ei); return a.load },
		hosts: func(ei int) bool { a, _ := get(ei); return a.hosts },
	}
	rc.run(&m)
	if err := p.commCheck(moved, target); err != nil {
		m.Feasible = false
		m.Violations = append(m.Violations, err.Error())
	}
	if cons.RequireSchedulable {
		for _, i := range p.ecuByName {
			a, msg := get(i)
			if a.protos == 0 || msg == "" {
				continue
			}
			m.Feasible = false
			m.Violations = append(m.Violations, msg)
		}
	}
	if len(loads) > 0 {
		mean := 0.0
		for _, l := range loads {
			mean += l
		}
		mean /= float64(len(loads))
		for _, l := range loads {
			m.LoadVar += (l - mean) * (l - mean)
		}
		m.LoadVar /= float64(len(loads))
	}
	return m
}

// commCheck reproduces Bound.commCheck under the moved-component view.
// The mapping sanity loop of the bound path is statically satisfied here:
// Prepare validated the incumbent and EvaluateMove only substitutes known
// names. Connectors with endpoints outside the component set never need a
// path (the bound path sees empty ECU names and skips them too).
func (p *Prepared) commCheck(moved, target int) error {
	b := p.b
	for k := range b.conns {
		c := &b.conns[k]
		fi, ti := p.connComp[k][0], p.connComp[k][1]
		if fi < 0 || ti < 0 {
			continue
		}
		si, di := p.ecuOf(fi, moved, target), p.ecuOf(ti, moved, target)
		if si == di || !c.needsPath {
			continue
		}
		if err := b.path[[2]string{b.ecus[si].name, b.ecus[di].name}]; err != nil {
			return err
		}
	}
	return nil
}
