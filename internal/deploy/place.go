package deploy

// Automatic replica placement: the search face of the fail-operational
// analysis. E13 compared hand-enumerated redundant candidates;
// PlaceReplicas derives the redundancy spec itself — how many replicas
// of which components, hot or cold, hosted where — by greedy marginal
// ascent over the same Cost the mapping searches minimize. Each scored
// configuration materializes its standbys (Replicate), sites them
// (Place) and refines the whole mapping through the incremental
// delta-evaluator path (DescendWith → Prepared), so the placement search
// pays O(dirty-ECU) per candidate move like every other search here.

import (
	"fmt"
	"sort"

	"autorte/internal/model"
)

// PlacementOptions bounds the replica-placement search.
type PlacementOptions struct {
	// Candidates are the components eligible for replication; empty
	// means every component of the seed system.
	Candidates []string
	// MaxReplicas caps the instances (primary included) per candidate.
	// Default 2 — one standby each.
	MaxReplicas int
	// Modes are the standby modes the search may assign. Default:
	// passive first (cheap), then active (hot).
	Modes []model.ReplicaMode
	// ModesFor overrides Modes per component — e.g. forcing a detection
	// observer to hot standbys so its votes never lapse during resume.
	ModesFor map[string][]model.ReplicaMode
	// Workers bounds the per-round descent fan-out (0 = GOMAXPROCS).
	Workers int
	// DescendIters caps the mapping-refinement rounds per scored
	// configuration. Default 16.
	DescendIters int
}

func (o *PlacementOptions) fill(sys *model.System) {
	if o.MaxReplicas == 0 {
		o.MaxReplicas = 2
	}
	if len(o.Modes) == 0 {
		o.Modes = []model.ReplicaMode{model.StandbyPassive, model.StandbyActive}
	}
	if o.DescendIters == 0 {
		o.DescendIters = 16
	}
	if len(o.Candidates) == 0 {
		for _, c := range sys.Components {
			o.Candidates = append(o.Candidates, c.Name)
		}
	}
	sort.Strings(o.Candidates)
}

// Placement is one scored replica configuration: the materialized,
// fully mapped system plus the spec the search chose.
type Placement struct {
	// System carries the materialized standbys and the refined mapping.
	System  *model.System
	Metrics Metrics
	// Replicas and Modes record the chosen spec per candidate (instance
	// count including the primary; 1 = not replicated).
	Replicas map[string]int
	Modes    map[string]model.ReplicaMode
	// Evaluated counts the full configurations the search scored.
	Evaluated int
}

// PlaceReplicas searches the redundancy spec of sys under the
// survivability objective: starting from "nothing replicated", it
// repeatedly tries adding one replica to (or switching the mode of) each
// candidate, keeps the strictly best Cost improvement, and stops at a
// fixpoint. The seed must not contain materialized standbys — the search
// owns the whole spec. Deterministic: candidates in sorted name order,
// modes in option order, ties keep the incumbent.
//
// Multi-failure placement wants Constraints.Faults with Soft and
// IncludeSingletons set: Soft keeps the unreplicated seed scorable and
// IncludeSingletons makes every uncovered component count against
// Survivability, which (weighted by Objective.WAvail) is the gradient
// the search climbs.
func PlaceReplicas(sys *model.System, cons Constraints, obj Objective, opts PlacementOptions) (*Placement, error) {
	cons.fill()
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	for _, c := range sys.Components {
		if c.IsStandby() {
			return nil, fmt.Errorf("deploy: place replicas: seed already carries standby %s", c.Name)
		}
	}
	opts.fill(sys)
	for _, name := range opts.Candidates {
		if sys.Component(name) == nil {
			return nil, fmt.Errorf("deploy: place replicas: unknown candidate %q", name)
		}
	}
	modesOf := func(name string) []model.ReplicaMode {
		if ms, ok := opts.ModesFor[name]; ok && len(ms) > 0 {
			return ms
		}
		return opts.Modes
	}
	counts := map[string]int{}
	modes := map[string]model.ReplicaMode{}
	for _, name := range opts.Candidates {
		counts[name] = 1
		modes[name] = modesOf(name)[0]
	}
	evaluated := 0
	score := func(counts map[string]int, modes map[string]model.ReplicaMode) (*model.System, Metrics, error) {
		evaluated++
		cand := sys.Clone()
		for _, c := range cand.Components {
			n, ok := counts[c.Name]
			if !ok {
				continue
			}
			if n > 1 {
				c.Redundancy = model.Redundancy{Replicas: n, Mode: modes[c.Name]}
			} else {
				c.Redundancy = model.Redundancy{}
			}
		}
		rep, err := Replicate(cand)
		if err != nil {
			return nil, Metrics{}, err
		}
		// Site the new standbys without disturbing the seed mapping, then
		// let the incremental descent refine everything together.
		placed, err := Place(rep, cons)
		if err != nil {
			return nil, Metrics{}, err
		}
		ev := NewEvaluator(cons)
		out, err := DescendWith(ev, placed, obj, opts.Workers, opts.DescendIters)
		if err != nil {
			return nil, Metrics{}, err
		}
		return out, ev.Evaluate(out), nil
	}
	bestSys, bestM, err := score(counts, modes)
	if err != nil {
		return nil, fmt.Errorf("deploy: place replicas: seed configuration unscorable: %w", err)
	}
	bestCost := bestM.Cost(obj)
	type cfg struct {
		comp  string
		count int
		mode  model.ReplicaMode
	}
	for {
		// One greedy round: every single-step spec change — one more
		// replica of a candidate, or a mode switch of an already
		// replicated one — scored against the incumbent.
		var moves []cfg
		for _, name := range opts.Candidates {
			for _, m := range modesOf(name) {
				if counts[name] < opts.MaxReplicas {
					moves = append(moves, cfg{name, counts[name] + 1, m})
				}
				if counts[name] > 1 && m != modes[name] {
					moves = append(moves, cfg{name, counts[name], m})
				}
			}
		}
		var winSys *model.System
		var winM Metrics
		var win cfg
		winCost := bestCost
		for _, mv := range moves {
			prevCount, prevMode := counts[mv.comp], modes[mv.comp]
			counts[mv.comp], modes[mv.comp] = mv.count, mv.mode
			candSys, candM, err := score(counts, modes)
			counts[mv.comp], modes[mv.comp] = prevCount, prevMode
			if err != nil {
				continue // unplaceable spec: not a usable direction
			}
			// Strict improvement only; earlier moves win ties, so the
			// result is independent of map iteration and scheduling.
			if cost := candM.Cost(obj); cost < winCost {
				winSys, winM, win, winCost = candSys, candM, mv, cost
			}
		}
		if winSys == nil {
			break // fixpoint: no spec change improves the cost
		}
		counts[win.comp], modes[win.comp] = win.count, win.mode
		bestSys, bestM, bestCost = winSys, winM, winCost
	}
	out := &Placement{
		System: bestSys, Metrics: bestM, Evaluated: evaluated,
		Replicas: counts, Modes: modes,
	}
	return out, nil
}
