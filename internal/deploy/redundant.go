package deploy

// Fail-operational feasibility: a redundant deployment is only worth its
// standbys if every fault event of the configured model (default: any
// single hosted-ECU failure; see FaultModel for k-of-n, bus and
// correlated losses) leaves each replica group with a promotable
// instance AND the promoted instance's ECU still fits within its
// capacity after absorbing the failed-over load. redCheck is that
// analysis, shared verbatim by the unbound (Evaluator.Evaluate), bound
// (Bound.Evaluate) and delta (Prepared.assemble) paths so the three stay
// DeepEqual-identical — same violations in the same order, same
// Survivability float.

import (
	"fmt"
	"sort"

	"autorte/internal/model"
	"autorte/internal/sched"
	"autorte/internal/sim"
)

// promo is one fail-over promotion a single-ECU failure forces: the
// standby (component index) and the ECU index absorbing it.
type promo struct{ standby, target int }

// sortProtos orders a proto subset by the precomputed global ord —
// identical to taskset.Build's stable (period, name) sort restricted to
// the subset.
func sortProtos(protos []*protoTask) {
	sort.Slice(protos, func(i, j int) bool { return protos[i].ord < protos[j].ord })
}

// redGroup is one replica group in bound component indices: the primary
// plus its standbys in declaration order (deploy.Replicate keeps groups
// contiguous, so this is also fail-over preference order).
type redGroup struct {
	primary  int
	standbys []int
}

// redGroups indexes the replica groups of a bound component set. Standbys
// naming an unknown primary are ignored here — model.Validate rejects
// them before any evaluation path that could reach this.
func redGroups(comps []boundComp) []redGroup {
	byName := make(map[string]int, len(comps))
	for i := range comps {
		byName[comps[i].name] = i
	}
	pos := map[int]int{}
	var groups []redGroup
	for i := range comps {
		if comps[i].replicaOf == "" {
			continue
		}
		pi, ok := byName[comps[i].replicaOf]
		if !ok {
			continue
		}
		gi, ok := pos[pi]
		if !ok {
			gi = len(groups)
			pos[pi] = gi
			groups = append(groups, redGroup{primary: pi})
		}
		groups[gi].standbys = append(groups[gi].standbys, i)
	}
	return groups
}

// redCheck runs the fail-operational checks of one candidate mapping.
// The closures abstract over how each evaluation path stores its per-ECU
// state; everything observable (violation strings, their order, the
// Survivability value) is computed here so the paths cannot drift.
type redCheck struct {
	comps  []boundComp
	groups []redGroup
	ecus   []boundECU
	cons   Constraints // filled
	rta    *sched.Cache
	// ecuOf resolves a component index to its candidate ECU index; false
	// when the component is unmapped.
	ecuOf func(ci int) (int, bool)
	// load returns the normal-case analyzed load of one ECU index.
	load func(ei int) float64
	// hosts reports whether the ECU index hosts any component.
	hosts func(ei int) bool
}

// run appends fail-operational violations to m and sets m.Survivability:
// the fraction of (fault event, replica group) pairs the deployment
// survives with a valid fail-over. The event universe comes from
// cons.Faults; its zero value sweeps every single hosted-ECU failure,
// reproducing the v1 analysis exactly. 1.0 when nothing is scored.
func (rc *redCheck) run(m *Metrics) {
	m.Survivability = 1
	groups := rc.effectiveGroups()
	if len(groups) == 0 {
		return
	}
	soft := rc.cons.Faults.Soft
	// Anti-affinity: two instances of one group on the same ECU fail
	// together, defeating the replication. Group order, then pair order.
	// Always a hard violation, Soft or not — co-location is a deployment
	// bug, not a coverage gap.
	for _, g := range groups {
		insts := append([]int{g.primary}, g.standbys...)
		for x := 0; x < len(insts); x++ {
			ex, okx := rc.ecuOf(insts[x])
			if !okx {
				continue
			}
			for y := x + 1; y < len(insts); y++ {
				if ey, oky := rc.ecuOf(insts[y]); oky && ey == ex {
					m.Feasible = false
					m.Violations = append(m.Violations, fmt.Sprintf(
						"replicas %s and %s co-located on %s",
						rc.comps[insts[x]].name, rc.comps[insts[y]].name, rc.ecus[ex].name))
				}
			}
		}
	}
	// Fault-event sweep: for every event of the fault model (zero model:
	// every used ECU, declaration order) and every replica group (group
	// order), does the function survive?
	events, survived := 0, 0
	for _, ev := range rc.lossEvents(m) {
		var promos []promo
		for _, g := range groups {
			events++
			pe, ok := rc.ecuOf(g.primary)
			if !ok || !ev.lost(rc.ecus, pe) {
				survived++ // this event does not take the primary down
				continue
			}
			// The designated fail-over target: the first standby (preference
			// order) hosted outside the event's loss set — the instance
			// rte.FailOver would promote.
			sb, target := -1, -1
			for _, s := range g.standbys {
				if se, ok := rc.ecuOf(s); ok && !ev.lost(rc.ecus, se) {
					sb, target = s, se
					break
				}
			}
			if sb < 0 {
				if !soft {
					m.Feasible = false
					m.Violations = append(m.Violations, fmt.Sprintf(
						"%s failure leaves %s with no standby on another ECU",
						ev.label, rc.comps[g.primary].name))
				}
				continue
			}
			promos = append(promos, promo{standby: sb, target: target})
		}
		if len(promos) == 0 {
			continue
		}
		// Absorption: each target ECU (declaration order) must stay within
		// the utilization cap — and schedulable, when RTA is required —
		// after every promotion this event sends its way. Passive
		// standbys add their load only now; active ones already paid it.
		for ti := range rc.ecus {
			n := 0
			for _, pr := range promos {
				if pr.target == ti {
					n++
				}
			}
			if n == 0 {
				continue
			}
			al := rc.load(ti)
			speed := rc.ecus[ti].speed
			for _, pr := range promos {
				if pr.target != ti || !rc.comps[pr.standby].passive {
					continue
				}
				for _, t := range rc.comps[pr.standby].loadTerms {
					al += t / speed
				}
			}
			ok := al <= rc.cons.MaxUtilization
			if !ok {
				if !soft {
					m.Feasible = false
					m.Violations = append(m.Violations, fmt.Sprintf(
						"%s failure overloads fail-over target %s: %.3f > %.3f",
						ev.label, rc.ecus[ti].name, al, rc.cons.MaxUtilization))
				}
			} else if rc.cons.RequireSchedulable && !rc.failoverSchedulable(ti, promos) {
				ok = false
				if !soft {
					m.Feasible = false
					m.Violations = append(m.Violations, fmt.Sprintf(
						"%s unschedulable after absorbing fail-over from %s",
						rc.ecus[ti].name, ev.label))
				}
			}
			if ok {
				survived += n
			}
		}
	}
	if events > 0 {
		m.Survivability = float64(survived) / float64(events)
	}
}

// failoverSchedulable runs response-time analysis on the target ECU's
// post-promotion task set: its normal-case tasks plus the promoted
// passive standbys', ranked rate-monotonically in the shared global proto
// order (the exact ranking taskset.Build would derive for that hosting).
func (rc *redCheck) failoverSchedulable(target int, promos []promo) bool {
	promoted := make(map[int]bool, len(promos))
	for _, pr := range promos {
		if pr.target == target && rc.comps[pr.standby].passive {
			promoted[pr.standby] = true
		}
	}
	var protos []*protoTask
	for ci := range rc.comps {
		c := &rc.comps[ci]
		ce, ok := rc.ecuOf(ci)
		hosted := ok && ce == target && !c.passive
		if !hosted && !promoted[ci] {
			continue
		}
		for j := range c.protos {
			protos = append(protos, &c.protos[j])
		}
	}
	sortProtos(protos)
	speed := rc.ecus[target].speed
	var tasks []sched.Task
	for rank, p := range protos {
		if p.period <= 0 {
			continue
		}
		tasks = append(tasks, sched.Task{
			Name: p.name, C: sim.Duration(float64(p.wcet) / speed),
			T: p.period, D: p.deadline, Priority: 1000 - rank,
		})
	}
	if len(tasks) == 0 {
		return true
	}
	ok, err := rc.rta.Check(tasks)
	return err == nil && ok
}

// sameReplicaGroup reports whether two distinct components are instances
// of one replica group — the pairs anti-affinity keeps apart.
func sameReplicaGroup(a, b *model.SWC) bool {
	return a.ReplicaOf == b.Name || b.ReplicaOf == a.Name ||
		(a.ReplicaOf != "" && a.ReplicaOf == b.ReplicaOf)
}

// asilSpreadViolation formats the MaxASILSpread violation for one ECU's
// criticality span, "" when admissible. Shared by every evaluation path
// (and fits) so the diagnostic cannot drift between them.
func asilSpreadViolation(ecu string, worst, best model.ASIL, maxSpread int) string {
	if maxSpread == 0 {
		return ""
	}
	limit := maxSpread
	if limit < 0 {
		limit = 0 // negative = strict: one criticality level per ECU
	}
	if spread := int(worst) - int(best); spread > limit {
		return fmt.Sprintf("%s co-locates %v with %v: ASIL spread %d exceeds %d",
			ecu, worst, best, spread, limit)
	}
	return ""
}
