// Package deploy explores the design space of SWC-to-ECU mappings: the
// federated → integrated consolidation study of §4. Given a vehicle with a
// federated mapping (one subsystem per ECU cluster), it searches for
// mappings that minimize ECU count, wiring harness length and load
// imbalance while respecting schedulability, memory and criticality
// constraints.
package deploy

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/par"
	"autorte/internal/sched"
	"autorte/internal/sim"
	"autorte/internal/taskset"
	"autorte/internal/vfb"
)

// RejectAllLoad is an explicit MaxUtilization sentinel meaning "no compute
// load is admissible on any ECU". It is distinct from the zero value,
// which selects the 0.69 default — a caller who wants to reject any load
// must say so explicitly, because 0 is indistinguishable from "unset".
const RejectAllLoad = -1.0

// Constraints bound feasible mappings.
type Constraints struct {
	// MaxUtilization caps per-ECU load. Valid settings:
	//
	//	0            unset; defaults to 0.69, the asymptotic
	//	             rate-monotonic bound — conservative on purpose so a
	//	             verified DSE result stays schedulable under RTA
	//	(0, 1]       explicit cap
	//	negative     RejectAllLoad: no load is admissible
	//	> 1 / NaN    invalid (see Validate)
	MaxUtilization float64
	// RespectASIL requires ECU.MaxASIL >= every hosted component's ASIL.
	RespectASIL bool
	// RespectMemory enforces ECU memory capacity.
	RespectMemory bool
	// RequireSchedulable additionally runs fixed-priority response-time
	// analysis per hosted ECU during evaluation (through the evaluator's
	// cache when one is attached) and rejects mappings with an
	// unschedulable ECU. Stricter than the utilization cap alone.
	RequireSchedulable bool
	// MaxASILSpread bounds how far apart the criticality levels co-located
	// on one ECU may lie (freedom-from-interference: a QM component next
	// to an ASIL-D one forces the whole ECU to the strictest qualification
	// regime). 0 is unset (no bound); a positive value caps
	// worst−best; a negative value is strict — one level per ECU.
	MaxASILSpread int
	// Faults configures the k-of-n fault universe the fail-operational
	// analysis sweeps. The zero value is the v1 model: every single
	// hosted ECU fails alone, uncovered events are hard violations.
	Faults FaultModel
}

func (c *Constraints) fill() {
	if c.MaxUtilization == 0 {
		c.MaxUtilization = 0.69
	}
}

// Validate rejects constraint settings outside the documented range: a
// utilization cap above 1 (meaningless for schedulability) or a
// non-finite cap. Negative caps are the explicit RejectAllLoad sentinel
// and are valid.
func (c Constraints) Validate() error {
	if math.IsNaN(c.MaxUtilization) || math.IsInf(c.MaxUtilization, 0) {
		return fmt.Errorf("deploy: MaxUtilization must be finite, got %v", c.MaxUtilization)
	}
	if c.MaxUtilization > 1 {
		return fmt.Errorf("deploy: MaxUtilization %.3f above 1 can never hold under analysis; use (0,1], 0 for the default, or a negative value to reject all load", c.MaxUtilization)
	}
	return nil
}

// Objective weighs the cost terms.
type Objective struct {
	WECU     float64 // per used ECU (hardware + wiring + contact points)
	WHarness float64 // per meter of harness
	WLoad    float64 // per unit of load variance (balance)
	// WAvail prices unavailability: the cost charges WAvail times
	// (1 − Survivability), so a fully fail-operational deployment pays
	// nothing and one that loses every replica group to every ECU failure
	// pays the full weight. 0 (the default) ignores the term.
	WAvail float64
}

// DefaultObjective prioritizes ECU elimination, then harness, then balance.
func DefaultObjective() Objective { return Objective{WECU: 1000, WHarness: 10, WLoad: 1} }

// Metrics evaluates one mapping.
type Metrics struct {
	ECUs    int
	Harness float64
	MaxLoad float64
	LoadVar float64
	// Survivability is the fraction of (fault event × replica group)
	// pairs the deployment survives with a valid fail-over: a standby
	// outside the event's loss set whose host stays within capacity after
	// absorbing the failed-over load. The event universe comes from
	// Constraints.Faults (zero value: every single used-ECU failure).
	// 1.0 for systems where nothing is scored.
	Survivability float64
	Feasible      bool
	Violations    []string
}

// Cost folds metrics into a scalar (infeasible mappings are +Inf).
func (m Metrics) Cost(obj Objective) float64 {
	if !m.Feasible {
		return math.Inf(1)
	}
	return obj.WECU*float64(m.ECUs) + obj.WHarness*m.Harness + obj.WLoad*m.LoadVar +
		obj.WAvail*(1-m.Survivability)
}

// Evaluator scores candidate mappings. It bundles the constraints with a
// shared response-time cache so that a DSE run, whose candidates differ
// by a single component move, re-analyzes only the one or two ECUs whose
// task sets actually changed. Safe for concurrent use; the zero RTA field
// degrades to uncached analysis.
type Evaluator struct {
	Cons Constraints
	// RTA caches per-ECU response-time analysis for
	// Cons.RequireSchedulable. Optional.
	RTA *sched.Cache

	// Search counters, shared by every search driven through this
	// evaluator (including all chains of AnnealParallel): candidate moves
	// scored and moves actually applied. Atomic; read via SearchCounts or
	// a registry attached with Observe.
	movesEvaluated atomic.Uint64
	movesAccepted  atomic.Uint64
}

// SearchCounts reports how many candidate moves the searches driven
// through this evaluator scored and accepted.
func (ev *Evaluator) SearchCounts() (evaluated, accepted uint64) {
	return ev.movesEvaluated.Load(), ev.movesAccepted.Load()
}

// Observe registers the evaluator's DSE counters — and its response-time
// cache, when present — into a registry:
//
//	dse_moves_evaluated_total  candidate moves scored
//	dse_moves_accepted_total   moves applied to the working mapping
func (ev *Evaluator) Observe(reg *obs.Registry) {
	reg.CounterFunc("dse_moves_evaluated_total", "Candidate component moves scored by the deployment search.", ev.movesEvaluated.Load)
	reg.CounterFunc("dse_moves_accepted_total", "Component moves accepted into the working mapping.", ev.movesAccepted.Load)
	ev.RTA.Observe(reg)
}

// NewEvaluator returns an evaluator with the response-time cache enabled.
func NewEvaluator(cons Constraints) *Evaluator {
	return &Evaluator{Cons: cons, RTA: sched.NewCache()}
}

// Evaluate computes the metrics of the system's current mapping with the
// default (uncached) evaluator.
func Evaluate(sys *model.System, cons Constraints) Metrics {
	return (&Evaluator{Cons: cons}).Evaluate(sys)
}

// Evaluate computes the metrics of the system's current mapping.
func (ev *Evaluator) Evaluate(sys *model.System) Metrics {
	cons := ev.Cons
	cons.fill()
	m := Metrics{Feasible: true}
	if err := cons.Validate(); err != nil {
		m.Feasible = false
		m.Violations = append(m.Violations, err.Error())
		return m
	}
	m.ECUs = len(sys.UsedECUs())
	m.Harness = sys.HarnessLength()
	// IncludeSingletons scores unreplicated components too, so the check
	// must run even on systems without any standby.
	hasRed := cons.Faults.IncludeSingletons
	for _, c := range sys.Components {
		if hasRed {
			break
		}
		if c.ReplicaOf != "" {
			hasRed = true
		}
	}
	// Per-ECU checks.
	var loads []float64
	loadByIdx := make([]float64, len(sys.ECUs))
	hostsByIdx := make([]bool, len(sys.ECUs))
	for ei, e := range sys.ECUs {
		load := sys.AnalyzedLoad(e.Name)
		memory := 0
		hosts := false
		worstASIL, bestASIL := model.QM, model.QM
		for _, c := range sys.Components {
			if sys.Mapping[c.Name] != e.Name {
				continue
			}
			if !hosts || c.ASIL < bestASIL {
				bestASIL = c.ASIL
			}
			hosts = true
			memory += c.MemoryKB
			if c.ASIL > worstASIL {
				worstASIL = c.ASIL
			}
		}
		loadByIdx[ei], hostsByIdx[ei] = load, hosts
		if !hosts {
			continue
		}
		loads = append(loads, load)
		if load > m.MaxLoad {
			m.MaxLoad = load
		}
		if load > cons.MaxUtilization {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s overloaded: %.3f > %.3f", e.Name, load, cons.MaxUtilization))
		}
		if cons.RespectMemory && e.MemoryKB > 0 && memory > e.MemoryKB {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s out of memory: %d > %d KB", e.Name, memory, e.MemoryKB))
		}
		if cons.RespectASIL && worstASIL > e.MaxASIL {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s hosts %v components but qualifies only for %v", e.Name, worstASIL, e.MaxASIL))
		}
		if msg := asilSpreadViolation(e.Name, worstASIL, bestASIL, cons.MaxASILSpread); msg != "" {
			m.Feasible = false
			m.Violations = append(m.Violations, msg)
		}
	}
	// Fail-operational feasibility: replica anti-affinity, fail-over
	// validity and the survivability fraction, through the same checker
	// the bound and delta paths run.
	m.Survivability = 1
	if hasRed {
		comps := bindComps(sys)
		ecus := bindECUs(sys)
		ecuIdx := make(map[string]int, len(ecus))
		for i := range ecus {
			ecuIdx[ecus[i].name] = i
		}
		rc := &redCheck{
			comps: comps, groups: redGroups(comps), ecus: ecus, cons: cons, rta: ev.RTA,
			ecuOf: func(ci int) (int, bool) { idx, ok := ecuIdx[sys.Mapping[comps[ci].name]]; return idx, ok },
			load:  func(ei int) float64 { return loadByIdx[ei] },
			hosts: func(ei int) bool { return hostsByIdx[ei] },
		}
		rc.run(&m)
	}
	// Communication feasibility: every remote connector needs a shared bus.
	if _, err := vfb.Resolve(sys); err != nil {
		m.Feasible = false
		m.Violations = append(m.Violations, err.Error())
	}
	// Schedulability feasibility: exact per-ECU RTA on demand, through the
	// shared cache (most candidate moves leave most ECUs' sets unchanged).
	if cons.RequireSchedulable {
		tsets, _ := taskset.Build(sys)
		var ecus []string
		for e := range tsets {
			ecus = append(ecus, e)
		}
		sort.Strings(ecus)
		for _, ecu := range ecus {
			ok, err := ev.RTA.Check(tsets[ecu])
			if err != nil {
				m.Feasible = false
				m.Violations = append(m.Violations, fmt.Sprintf("%s: RTA failed: %v", ecu, err))
				continue
			}
			if !ok {
				m.Feasible = false
				m.Violations = append(m.Violations, fmt.Sprintf("%s unschedulable under response-time analysis", ecu))
			}
		}
	}
	// Load variance over used ECUs.
	if len(loads) > 0 {
		mean := 0.0
		for _, l := range loads {
			mean += l
		}
		mean /= float64(len(loads))
		for _, l := range loads {
			m.LoadVar += (l - mean) * (l - mean)
		}
		m.LoadVar /= float64(len(loads))
	}
	return m
}

// Greedy consolidates with first-fit decreasing: components sorted by
// descending utilization are packed onto the fewest ECUs that satisfy the
// constraints. ECUs are tried in name order (deterministic). The input is
// not modified; the returned clone carries the new mapping.
func Greedy(sys *model.System, cons Constraints) (*model.System, error) {
	cons.fill()
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	out := sys.Clone()
	comps := append([]*model.SWC(nil), out.Components...)
	sort.SliceStable(comps, func(i, j int) bool {
		ui, uj := comps[i].Utilization(), comps[j].Utilization()
		if ui != uj {
			return ui > uj
		}
		return comps[i].Name < comps[j].Name
	})
	ecus := append([]*model.ECU(nil), out.ECUs...)
	sort.SliceStable(ecus, func(i, j int) bool { return ecus[i].Name < ecus[j].Name })
	out.Mapping = map[string]string{}
	for _, c := range comps {
		placed := false
		for _, e := range ecus {
			out.Mapping[c.Name] = e.Name
			if fits(out, c, e, cons) {
				placed = true
				break
			}
			delete(out.Mapping, c.Name)
		}
		if !placed {
			return nil, fmt.Errorf("deploy: cannot place %s (u=%.3f) on any ECU", c.Name, c.Utilization())
		}
	}
	// The packing respects local constraints; verify globally (bus
	// reachability included).
	if m := Evaluate(out, cons); !m.Feasible {
		return nil, fmt.Errorf("deploy: greedy result infeasible: %v", m.Violations)
	}
	return out, nil
}

// fits checks the per-ECU constraints for c on e under the current
// (partial) mapping of out.
func fits(out *model.System, c *model.SWC, e *model.ECU, cons Constraints) bool {
	if out.AnalyzedLoad(e.Name) > cons.MaxUtilization {
		return false
	}
	if cons.RespectASIL && c.ASIL > e.MaxASIL {
		return false
	}
	if cons.RespectMemory && e.MemoryKB > 0 {
		mem := 0
		for _, o := range out.Components {
			if out.Mapping[o.Name] == e.Name {
				mem += o.MemoryKB
			}
		}
		if mem > e.MemoryKB {
			return false
		}
	}
	// Replica anti-affinity: never pack two instances of one group onto
	// the same ECU — they would fail together.
	if c.ReplicaOf != "" || c.Redundancy.Replicated() || hasStandbyOf(out, c.Name) {
		for _, o := range out.Components {
			if o.Name != c.Name && out.Mapping[o.Name] == e.Name && sameReplicaGroup(c, o) {
				return false
			}
		}
	}
	if cons.MaxASILSpread != 0 {
		hosts := false
		var worst, best model.ASIL
		for _, o := range out.Components {
			if out.Mapping[o.Name] != e.Name {
				continue
			}
			if !hosts || o.ASIL < best {
				best = o.ASIL
			}
			if !hosts || o.ASIL > worst {
				worst = o.ASIL
			}
			hosts = true
		}
		if asilSpreadViolation(e.Name, worst, best, cons.MaxASILSpread) != "" {
			return false
		}
	}
	return true
}

// hasStandbyOf reports whether any materialized standby names c as its
// primary (the primary itself carries no back-pointer).
func hasStandbyOf(out *model.System, name string) bool {
	for _, o := range out.Components {
		if o.ReplicaOf == name {
			return true
		}
	}
	return false
}

// Place maps only the unmapped components of a system into the existing
// deployment without moving anything already placed — incremental
// integration of new supplier content into a vehicle already in
// production (the tooling face of E9's extensibility scenario). Existing
// mappings are never touched; an error is returned when a new component
// fits nowhere.
func Place(sys *model.System, cons Constraints) (*model.System, error) {
	cons.fill()
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	out := sys.Clone()
	if out.Mapping == nil {
		out.Mapping = map[string]string{}
	}
	ecus := append([]*model.ECU(nil), out.ECUs...)
	sort.SliceStable(ecus, func(i, j int) bool { return ecus[i].Name < ecus[j].Name })
	var pending []*model.SWC
	for _, c := range out.Components {
		if out.Mapping[c.Name] == "" {
			pending = append(pending, c)
		}
	}
	sort.SliceStable(pending, func(i, j int) bool {
		ui, uj := pending[i].Utilization(), pending[j].Utilization()
		if ui != uj {
			return ui > uj
		}
		return pending[i].Name < pending[j].Name
	})
	for _, c := range pending {
		placed := false
		for _, e := range ecus {
			out.Mapping[c.Name] = e.Name
			if fits(out, c, e, cons) {
				placed = true
				break
			}
			delete(out.Mapping, c.Name)
		}
		if !placed {
			return nil, fmt.Errorf("deploy: no spare capacity for new component %s", c.Name)
		}
	}
	if m := Evaluate(out, cons); !m.Feasible {
		return nil, fmt.Errorf("deploy: incremental placement infeasible: %v", m.Violations)
	}
	return out, nil
}

// Anneal refines a feasible mapping by simulated annealing: random
// single-component moves, accepting cost increases with a geometrically
// cooling probability. Deterministic for a given seed.
func Anneal(sys *model.System, cons Constraints, obj Objective, seed uint64, iters int) (*model.System, error) {
	cons.fill()
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	return anneal(&Evaluator{Cons: cons}, sys, obj, seed, iters)
}

// anneal is the evaluator-parameterized chain shared by Anneal and
// AnnealParallel (the latter passes a cached evaluator shared across
// chains). The chain binds the evaluator to the seed topology, so each
// candidate move costs a mapping copy and a bound evaluation instead of a
// full system clone; on an invalid topology the bind fails and the chain
// degrades to the unbound path, surfacing the legacy errors.
func anneal(ev *Evaluator, sys *model.System, obj Objective, seed uint64, iters int) (*model.System, error) {
	cons := ev.Cons
	cons.fill()
	bound, bindErr := ev.Bind(sys)
	cur := sys.Clone()
	curM := ev.Evaluate(cur)
	if !curM.Feasible {
		// Bootstrap from greedy if the incoming mapping is infeasible.
		g, err := Greedy(sys, cons)
		if err != nil {
			return nil, err
		}
		cur = g
		curM = ev.Evaluate(cur)
	}
	best := cur.Clone()
	bestCost := curM.Cost(obj)
	curCost := bestCost
	// The delta evaluator scores each candidate move in O(dirty ECUs); it
	// degrades to the bound evaluation (O(system), still clone-free) and
	// from there to the full clone path on invalid topologies.
	var prep *Prepared
	if bindErr == nil {
		prep, _ = bound.Prepare(cur.Mapping)
	}
	r := sim.NewRand(seed)
	temp := bestCost * 0.05
	if temp <= 0 {
		temp = 1
	}
	for i := 0; i < iters; i++ {
		c := cur.Components[r.Intn(len(cur.Components))]
		e := cur.ECUs[r.Intn(len(cur.ECUs))]
		if cur.Mapping[c.Name] == e.Name {
			continue
		}
		var cand *model.System
		var cost float64
		switch {
		case prep != nil:
			cost = prep.EvaluateMove(c.Name, e.Name).Cost(obj)
		case bindErr == nil:
			cm := cloneMapping(cur.Mapping)
			cm[c.Name] = e.Name
			cost = bound.Evaluate(cm).Cost(obj)
		default:
			cand = cur.Clone()
			cand.Mapping[c.Name] = e.Name
			cost = ev.Evaluate(cand).Cost(obj)
		}
		ev.movesEvaluated.Add(1)
		accept := cost <= curCost
		if !accept && !math.IsInf(cost, 1) {
			accept = r.Float64() < math.Exp((curCost-cost)/temp)
		}
		if accept {
			ev.movesAccepted.Add(1)
			if cand == nil {
				// Materialize the accepted candidate only now.
				cand = cur.Clone()
				cand.Mapping[c.Name] = e.Name
			}
			if prep != nil {
				if err := prep.Apply(c.Name, e.Name); err != nil {
					prep = nil // unknown names: degrade to bound evaluation
				}
			}
			cur, curCost = cand, cost
			if cost < bestCost {
				best, bestCost = cand.Clone(), cost
			}
		}
		temp *= 0.995
	}
	if math.IsInf(bestCost, 1) {
		return nil, fmt.Errorf("deploy: annealing found no feasible mapping")
	}
	return best, nil
}

// AnnealParallel runs `restarts` independent annealing chains (seeds
// derived deterministically from seed) on a bounded worker pool and
// returns the best mapping found. All chains share one response-time
// cache, so with Constraints.RequireSchedulable the per-ECU RTA of
// recurring candidate task sets is paid once across the whole search.
// The result is deterministic: chains are seeded by index and compared by
// (cost, chain index), independent of scheduling.
func AnnealParallel(sys *model.System, cons Constraints, obj Objective,
	seed uint64, iters, restarts, workers int) (*model.System, error) {
	cons.fill()
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	if restarts < 1 {
		restarts = 1
	}
	ev := NewEvaluator(cons)
	results := make([]*model.System, restarts)
	costs := make([]float64, restarts)
	errs := make([]error, restarts)
	_ = par.ForEach(workers, restarts, func(i int) error {
		// Chain errors are values here: one failed chain must not cancel
		// its siblings, and the merge below stays deterministic.
		chainSeed := seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
		out, err := anneal(ev, sys, obj, chainSeed, iters)
		if err != nil {
			errs[i] = err
			return nil
		}
		results[i] = out
		costs[i] = ev.Evaluate(out).Cost(obj)
		return nil
	})
	best := -1
	for i := range results {
		if results[i] == nil {
			continue
		}
		if best == -1 || costs[i] < costs[best] {
			best = i
		}
	}
	if best == -1 {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return nil, fmt.Errorf("deploy: no annealing chain produced a mapping")
	}
	return results[best], nil
}

// Descend refines a feasible mapping by parallel steepest descent: every
// iteration evaluates all single-component moves concurrently (each on
// its own clone) and applies the strictly best improving one; it stops at
// a local optimum or after maxIters rounds. Deterministic: candidates are
// enumerated in sorted (component, ECU) order and ties break to the
// lowest index. An infeasible input is bootstrapped through Greedy.
func Descend(sys *model.System, cons Constraints, obj Objective, workers, maxIters int) (*model.System, error) {
	return DescendWith(NewEvaluator(cons), sys, obj, workers, maxIters)
}

// DescendWith is Descend under a caller-supplied evaluator, so a DSE
// driver can share one response-time cache across multiple searches (or
// benchmark the uncached baseline).
func DescendWith(ev *Evaluator, sys *model.System, obj Objective, workers, maxIters int) (*model.System, error) {
	cons := ev.Cons
	cons.fill()
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	bound, bindErr := ev.Bind(sys)
	cur := sys.Clone()
	if m := ev.Evaluate(cur); !m.Feasible {
		g, err := Greedy(sys, cons)
		if err != nil {
			return nil, err
		}
		cur = g
	}
	curCost := ev.Evaluate(cur).Cost(obj)
	// Delta evaluator for the incumbent: EvaluateMove is read-only, so the
	// per-round candidate fan-out below can share it concurrently.
	var prep *Prepared
	if bindErr == nil {
		prep, _ = bound.Prepare(cur.Mapping)
	}
	var compNames, ecuNames []string
	for _, c := range cur.Components {
		compNames = append(compNames, c.Name)
	}
	for _, e := range cur.ECUs {
		ecuNames = append(ecuNames, e.Name)
	}
	sort.Strings(compNames)
	sort.Strings(ecuNames)
	type move struct{ comp, ecu string }
	for iter := 0; iter < maxIters; iter++ {
		var moves []move
		for _, c := range compNames {
			for _, e := range ecuNames {
				if cur.Mapping[c] != e {
					moves = append(moves, move{c, e})
				}
			}
		}
		costs := make([]float64, len(moves))
		_ = par.ForEach(workers, len(moves), func(i int) error {
			// Delta evaluation scores the move against the incumbent's
			// retained per-ECU state; bound evaluation (mapping copy, no
			// clone) and the full clone path are the fallbacks.
			defer ev.movesEvaluated.Add(1)
			switch {
			case prep != nil:
				costs[i] = prep.EvaluateMove(moves[i].comp, moves[i].ecu).Cost(obj)
			case bindErr == nil:
				cm := cloneMapping(cur.Mapping)
				cm[moves[i].comp] = moves[i].ecu
				costs[i] = bound.Evaluate(cm).Cost(obj)
			default:
				cand := cur.Clone()
				cand.Mapping[moves[i].comp] = moves[i].ecu
				costs[i] = ev.Evaluate(cand).Cost(obj)
			}
			return nil
		})
		best := -1
		for i := range moves {
			if costs[i] < curCost && (best == -1 || costs[i] < costs[best]) {
				best = i
			}
		}
		if best == -1 {
			break // local optimum
		}
		ev.movesAccepted.Add(1)
		next := cur.Clone()
		next.Mapping[moves[best].comp] = moves[best].ecu
		if prep != nil {
			if err := prep.Apply(moves[best].comp, moves[best].ecu); err != nil {
				prep = nil
			}
		}
		cur, curCost = next, costs[best]
	}
	if m := ev.Evaluate(cur); !m.Feasible {
		return nil, fmt.Errorf("deploy: descent result infeasible: %v", m.Violations)
	}
	return cur, nil
}
