// Package deploy explores the design space of SWC-to-ECU mappings: the
// federated → integrated consolidation study of §4. Given a vehicle with a
// federated mapping (one subsystem per ECU cluster), it searches for
// mappings that minimize ECU count, wiring harness length and load
// imbalance while respecting schedulability, memory and criticality
// constraints.
package deploy

import (
	"fmt"
	"math"
	"sort"

	"autorte/internal/model"
	"autorte/internal/sim"
	"autorte/internal/vfb"
)

// Constraints bound feasible mappings.
type Constraints struct {
	// MaxUtilization caps per-ECU load (default 0.69, the asymptotic
	// rate-monotonic bound — conservative on purpose so a verified DSE
	// result stays schedulable under RTA).
	MaxUtilization float64
	// RespectASIL requires ECU.MaxASIL >= every hosted component's ASIL.
	RespectASIL bool
	// RespectMemory enforces ECU memory capacity.
	RespectMemory bool
}

func (c *Constraints) fill() {
	if c.MaxUtilization == 0 {
		c.MaxUtilization = 0.69
	}
}

// Objective weighs the cost terms.
type Objective struct {
	WECU     float64 // per used ECU (hardware + wiring + contact points)
	WHarness float64 // per meter of harness
	WLoad    float64 // per unit of load variance (balance)
}

// DefaultObjective prioritizes ECU elimination, then harness, then balance.
func DefaultObjective() Objective { return Objective{WECU: 1000, WHarness: 10, WLoad: 1} }

// Metrics evaluates one mapping.
type Metrics struct {
	ECUs       int
	Harness    float64
	MaxLoad    float64
	LoadVar    float64
	Feasible   bool
	Violations []string
}

// Cost folds metrics into a scalar (infeasible mappings are +Inf).
func (m Metrics) Cost(obj Objective) float64 {
	if !m.Feasible {
		return math.Inf(1)
	}
	return obj.WECU*float64(m.ECUs) + obj.WHarness*m.Harness + obj.WLoad*m.LoadVar
}

// Evaluate computes the metrics of the system's current mapping.
func Evaluate(sys *model.System, cons Constraints) Metrics {
	cons.fill()
	m := Metrics{Feasible: true}
	m.ECUs = len(sys.UsedECUs())
	m.Harness = sys.HarnessLength()
	// Per-ECU checks.
	var loads []float64
	for _, e := range sys.ECUs {
		load := sys.AnalyzedLoad(e.Name)
		memory := 0
		hosts := false
		worstASIL := model.QM
		for _, c := range sys.Components {
			if sys.Mapping[c.Name] != e.Name {
				continue
			}
			hosts = true
			memory += c.MemoryKB
			if c.ASIL > worstASIL {
				worstASIL = c.ASIL
			}
		}
		if !hosts {
			continue
		}
		loads = append(loads, load)
		if load > m.MaxLoad {
			m.MaxLoad = load
		}
		if load > cons.MaxUtilization {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s overloaded: %.3f > %.3f", e.Name, load, cons.MaxUtilization))
		}
		if cons.RespectMemory && e.MemoryKB > 0 && memory > e.MemoryKB {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s out of memory: %d > %d KB", e.Name, memory, e.MemoryKB))
		}
		if cons.RespectASIL && worstASIL > e.MaxASIL {
			m.Feasible = false
			m.Violations = append(m.Violations, fmt.Sprintf("%s hosts %v components but qualifies only for %v", e.Name, worstASIL, e.MaxASIL))
		}
	}
	// Communication feasibility: every remote connector needs a shared bus.
	if _, err := vfb.Resolve(sys); err != nil {
		m.Feasible = false
		m.Violations = append(m.Violations, err.Error())
	}
	// Load variance over used ECUs.
	if len(loads) > 0 {
		mean := 0.0
		for _, l := range loads {
			mean += l
		}
		mean /= float64(len(loads))
		for _, l := range loads {
			m.LoadVar += (l - mean) * (l - mean)
		}
		m.LoadVar /= float64(len(loads))
	}
	return m
}

// Greedy consolidates with first-fit decreasing: components sorted by
// descending utilization are packed onto the fewest ECUs that satisfy the
// constraints. ECUs are tried in name order (deterministic). The input is
// not modified; the returned clone carries the new mapping.
func Greedy(sys *model.System, cons Constraints) (*model.System, error) {
	cons.fill()
	out := sys.Clone()
	comps := append([]*model.SWC(nil), out.Components...)
	sort.SliceStable(comps, func(i, j int) bool {
		ui, uj := comps[i].Utilization(), comps[j].Utilization()
		if ui != uj {
			return ui > uj
		}
		return comps[i].Name < comps[j].Name
	})
	ecus := append([]*model.ECU(nil), out.ECUs...)
	sort.SliceStable(ecus, func(i, j int) bool { return ecus[i].Name < ecus[j].Name })
	out.Mapping = map[string]string{}
	for _, c := range comps {
		placed := false
		for _, e := range ecus {
			out.Mapping[c.Name] = e.Name
			if fits(out, c, e, cons) {
				placed = true
				break
			}
			delete(out.Mapping, c.Name)
		}
		if !placed {
			return nil, fmt.Errorf("deploy: cannot place %s (u=%.3f) on any ECU", c.Name, c.Utilization())
		}
	}
	// The packing respects local constraints; verify globally (bus
	// reachability included).
	if m := Evaluate(out, cons); !m.Feasible {
		return nil, fmt.Errorf("deploy: greedy result infeasible: %v", m.Violations)
	}
	return out, nil
}

// fits checks the per-ECU constraints for c on e under the current
// (partial) mapping of out.
func fits(out *model.System, c *model.SWC, e *model.ECU, cons Constraints) bool {
	if out.AnalyzedLoad(e.Name) > cons.MaxUtilization {
		return false
	}
	if cons.RespectASIL && c.ASIL > e.MaxASIL {
		return false
	}
	if cons.RespectMemory && e.MemoryKB > 0 {
		mem := 0
		for _, o := range out.Components {
			if out.Mapping[o.Name] == e.Name {
				mem += o.MemoryKB
			}
		}
		if mem > e.MemoryKB {
			return false
		}
	}
	return true
}

// Place maps only the unmapped components of a system into the existing
// deployment without moving anything already placed — incremental
// integration of new supplier content into a vehicle already in
// production (the tooling face of E9's extensibility scenario). Existing
// mappings are never touched; an error is returned when a new component
// fits nowhere.
func Place(sys *model.System, cons Constraints) (*model.System, error) {
	cons.fill()
	out := sys.Clone()
	if out.Mapping == nil {
		out.Mapping = map[string]string{}
	}
	ecus := append([]*model.ECU(nil), out.ECUs...)
	sort.SliceStable(ecus, func(i, j int) bool { return ecus[i].Name < ecus[j].Name })
	var pending []*model.SWC
	for _, c := range out.Components {
		if out.Mapping[c.Name] == "" {
			pending = append(pending, c)
		}
	}
	sort.SliceStable(pending, func(i, j int) bool {
		ui, uj := pending[i].Utilization(), pending[j].Utilization()
		if ui != uj {
			return ui > uj
		}
		return pending[i].Name < pending[j].Name
	})
	for _, c := range pending {
		placed := false
		for _, e := range ecus {
			out.Mapping[c.Name] = e.Name
			if fits(out, c, e, cons) {
				placed = true
				break
			}
			delete(out.Mapping, c.Name)
		}
		if !placed {
			return nil, fmt.Errorf("deploy: no spare capacity for new component %s", c.Name)
		}
	}
	if m := Evaluate(out, cons); !m.Feasible {
		return nil, fmt.Errorf("deploy: incremental placement infeasible: %v", m.Violations)
	}
	return out, nil
}

// Anneal refines a feasible mapping by simulated annealing: random
// single-component moves, accepting cost increases with a geometrically
// cooling probability. Deterministic for a given seed.
func Anneal(sys *model.System, cons Constraints, obj Objective, seed uint64, iters int) (*model.System, error) {
	cons.fill()
	cur := sys.Clone()
	curM := Evaluate(cur, cons)
	if !curM.Feasible {
		// Bootstrap from greedy if the incoming mapping is infeasible.
		g, err := Greedy(sys, cons)
		if err != nil {
			return nil, err
		}
		cur = g
		curM = Evaluate(cur, cons)
	}
	best := cur.Clone()
	bestCost := curM.Cost(obj)
	curCost := bestCost
	r := sim.NewRand(seed)
	temp := bestCost * 0.05
	if temp <= 0 {
		temp = 1
	}
	for i := 0; i < iters; i++ {
		cand := cur.Clone()
		c := cand.Components[r.Intn(len(cand.Components))]
		e := cand.ECUs[r.Intn(len(cand.ECUs))]
		if cand.Mapping[c.Name] == e.Name {
			continue
		}
		cand.Mapping[c.Name] = e.Name
		m := Evaluate(cand, cons)
		cost := m.Cost(obj)
		accept := cost <= curCost
		if !accept && !math.IsInf(cost, 1) {
			accept = r.Float64() < math.Exp((curCost-cost)/temp)
		}
		if accept {
			cur, curCost = cand, cost
			if cost < bestCost {
				best, bestCost = cand.Clone(), cost
			}
		}
		temp *= 0.995
	}
	if math.IsInf(bestCost, 1) {
		return nil, fmt.Errorf("deploy: annealing found no feasible mapping")
	}
	return best, nil
}
