package deploy

import (
	"reflect"
	"testing"

	"autorte/internal/model"
)

// placeSeed is the unreplicated fixture the placement search starts
// from: redSpec with the controller's redundancy request cleared, so the
// search owns the whole spec.
func placeSeed() *model.System {
	sys := redSpec()
	sys.Component("Ctrl").Redundancy = model.Redundancy{}
	return sys
}

// placeCons is the soft k-of-n scoring the search climbs: every single
// ECU loss, every component a group.
func placeCons() Constraints {
	return Constraints{Faults: FaultModel{
		Losses: []Loss{
			{Kind: LossECU, ECUs: []string{"e1"}},
			{Kind: LossECU, ECUs: []string{"e2"}},
			{Kind: LossECU, ECUs: []string{"e3"}},
		},
		Soft: true, IncludeSingletons: true,
	}}
}

func TestPlaceReplicasImprovesSurvivability(t *testing.T) {
	cons := placeCons()
	seedM := Evaluate(placeSeed(), cons)
	if !seedM.Feasible || seedM.Survivability >= 1 {
		t.Fatalf("seed fixture: %+v", seedM)
	}
	obj := Objective{WECU: 1000, WHarness: 10, WLoad: 1, WAvail: 100_000}
	pl, err := PlaceReplicas(placeSeed(), cons, obj, PlacementOptions{DescendIters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Metrics.Feasible {
		t.Fatalf("placement infeasible: %+v", pl.Metrics)
	}
	if pl.Metrics.Survivability != 1 {
		t.Fatalf("Survivability = %v, want 1 (every stage coverable with 3 ECUs)", pl.Metrics.Survivability)
	}
	if pl.Metrics.Cost(obj) >= seedM.Cost(obj) {
		t.Fatalf("placement did not beat the seed: %v >= %v", pl.Metrics.Cost(obj), seedM.Cost(obj))
	}
	replicated := 0
	for _, n := range pl.Replicas {
		if n > 1 {
			replicated++
		}
	}
	if replicated == 0 {
		t.Fatalf("search chose no replicas: %+v", pl.Replicas)
	}
	// The materialized result must be a valid system whose spec matches
	// the recorded counts.
	if err := pl.System.Validate(); err != nil {
		t.Fatalf("placed system invalid: %v", err)
	}
	for name, n := range pl.Replicas {
		got := 0
		for _, c := range pl.System.Components {
			if c.Name == name || c.ReplicaOf == name {
				got++
			}
		}
		if got != n {
			t.Fatalf("%s: %d instances materialized, spec says %d", name, got, n)
		}
	}
}

func TestPlaceReplicasDeterministic(t *testing.T) {
	obj := Objective{WECU: 1000, WHarness: 10, WLoad: 1, WAvail: 100_000}
	run := func(workers int) *Placement {
		pl, err := PlaceReplicas(placeSeed(), placeCons(), obj,
			PlacementOptions{DescendIters: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a.Replicas, b.Replicas) || !reflect.DeepEqual(a.Modes, b.Modes) {
		t.Fatalf("spec differs across worker counts:\n1: %+v %+v\n4: %+v %+v",
			a.Replicas, a.Modes, b.Replicas, b.Modes)
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatalf("metrics differ across worker counts:\n1: %+v\n4: %+v", a.Metrics, b.Metrics)
	}
}

func TestPlaceReplicasRespectsBounds(t *testing.T) {
	obj := Objective{WAvail: 100_000}
	pl, err := PlaceReplicas(placeSeed(), placeCons(), obj, PlacementOptions{
		Candidates:   []string{"Ctrl", "Act"},
		MaxReplicas:  2,
		ModesFor:     map[string][]model.ReplicaMode{"Act": {model.StandbyActive}},
		DescendIters: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := pl.Replicas["Sensor"]; n != 0 {
		t.Fatalf("non-candidate Sensor got a spec entry: %d", n)
	}
	for name, n := range pl.Replicas {
		if n > 2 {
			t.Fatalf("%s: %d instances exceeds MaxReplicas 2", name, n)
		}
	}
	if pl.Replicas["Act"] > 1 && pl.Modes["Act"] != model.StandbyActive {
		t.Fatalf("ModesFor ignored: Act mode %v", pl.Modes["Act"])
	}
	// Only Ctrl and Act are coverable: 3 hosted-ECU events x 3 groups,
	// Sensor's event stays uncovered.
	if pl.Metrics.Survivability >= 1 {
		t.Fatalf("Survivability = %v with Sensor excluded", pl.Metrics.Survivability)
	}
}

func TestPlaceReplicasRejectsBadSeeds(t *testing.T) {
	t.Run("materialized-standby", func(t *testing.T) {
		sys, err := Replicate(redSpec())
		if err != nil {
			t.Fatal(err)
		}
		sys.Mapping["Ctrl#1"] = "e2"
		if _, err := PlaceReplicas(sys, Constraints{}, Objective{}, PlacementOptions{}); err == nil {
			t.Fatal("seed with materialized standbys accepted")
		}
	})
	t.Run("unknown-candidate", func(t *testing.T) {
		_, err := PlaceReplicas(placeSeed(), Constraints{}, Objective{},
			PlacementOptions{Candidates: []string{"Nope"}})
		if err == nil {
			t.Fatal("unknown candidate accepted")
		}
	})
}
