package deploy

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"autorte/internal/model"
	"autorte/internal/sim"
)

// The fail-operational checks must be indistinguishable across the three
// evaluation paths — unbound, bound and delta — on a replicated system:
// same Survivability float, same violation strings in the same order,
// through a random walk of single-component moves under every constraint
// shape.
func TestRedundantThreePathIdentity(t *testing.T) {
	base := redSystem(t)
	consSet := map[string]Constraints{
		"default": {},
		"sched":   {RequireSchedulable: true},
		"strict":  {RespectASIL: true, RespectMemory: true, MaxASILSpread: 2},
		"tight":   {MaxUtilization: 0.016},
	}
	for name, cons := range consSet {
		t.Run(name, func(t *testing.T) {
			ev := NewEvaluator(cons)
			bound, err := ev.Bind(base)
			if err != nil {
				t.Fatalf("bind: %v", err)
			}
			prep, err := bound.Prepare(base.Mapping)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			cur := base.Clone()
			r := sim.NewRand(3)
			for step := 0; step < 60; step++ {
				c := cur.Components[r.Intn(len(cur.Components))].Name
				e := cur.ECUs[r.Intn(len(cur.ECUs))].Name
				cand := cur.Clone()
				cand.Mapping[c] = e
				want := ev.Evaluate(cand)
				cm := cloneMapping(cur.Mapping)
				cm[c] = e
				if got := bound.Evaluate(cm); !reflect.DeepEqual(want, got) {
					t.Fatalf("step %d (%s->%s): bound diverges\nunbound: %+v\nbound:   %+v", step, c, e, want, got)
				}
				if got := prep.EvaluateMove(c, e); !reflect.DeepEqual(want, got) {
					t.Fatalf("step %d (%s->%s): delta diverges\nunbound: %+v\ndelta:   %+v", step, c, e, want, got)
				}
				cur = cand
				if err := prep.Apply(c, e); err != nil {
					t.Fatalf("apply: %v", err)
				}
			}
		})
	}
}

// A fully fail-operational mapping scores Survivability 1 and stays
// feasible; the diagnostics trigger one by one as the mapping degrades.
func TestRedundancyViolations(t *testing.T) {
	cons := Constraints{}

	t.Run("fail-operational", func(t *testing.T) {
		m := Evaluate(redSystem(t), cons)
		if !m.Feasible || m.Survivability != 1 {
			t.Fatalf("baseline: %+v", m)
		}
	})

	t.Run("co-located", func(t *testing.T) {
		sys := redSystem(t)
		sys.Mapping["Ctrl#1"] = "e1" // onto the primary's ECU
		m := Evaluate(sys, cons)
		if m.Feasible {
			t.Fatalf("co-located replicas accepted: %+v", m)
		}
		joined := strings.Join(m.Violations, "; ")
		if !strings.Contains(joined, "replicas Ctrl and Ctrl#1 co-located on e1") {
			t.Fatalf("missing anti-affinity diagnostic: %v", m.Violations)
		}
		// e1's failure now takes the whole group down.
		if !strings.Contains(joined, "e1 failure leaves Ctrl with no standby on another ECU") {
			t.Fatalf("missing no-standby diagnostic: %v", m.Violations)
		}
		if m.Survivability != 0.5 {
			t.Fatalf("Survivability = %v, want 0.5 (e2's failure is still survived)", m.Survivability)
		}
	})

	t.Run("absorption-overload", func(t *testing.T) {
		// Normal-case loads: e1 = 0.025 (Sensor+Ctrl), e2 = 0.008 (Act;
		// the passive standby adds nothing). A cap of 0.026 admits the
		// normal case but not e2 absorbing Ctrl's 0.020 after e1 dies.
		sys := redSystem(t)
		m := Evaluate(sys, Constraints{MaxUtilization: 0.026})
		if m.Feasible {
			t.Fatalf("overloading fail-over accepted: %+v", m)
		}
		found := false
		for _, v := range m.Violations {
			if strings.Contains(v, "e1 failure overloads fail-over target e2") {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing absorption diagnostic: %v", m.Violations)
		}
		if m.Survivability != 0.5 {
			t.Fatalf("Survivability = %v, want 0.5", m.Survivability)
		}
	})

	t.Run("absorption-unschedulable", func(t *testing.T) {
		// Act holds its 150us deadline alone on e2 (R = 80us) but not once
		// the promoted 5ms controller outranks it: R = 100 + 80 = 180us.
		sys := redSystem(t)
		sys.Component("Act").Runnables[0].Deadline = sim.US(150)
		m := Evaluate(sys, Constraints{RequireSchedulable: true})
		if m.Feasible {
			t.Fatalf("unschedulable fail-over accepted: %+v", m)
		}
		found := false
		for _, v := range m.Violations {
			if strings.Contains(v, "e2 unschedulable after absorbing fail-over from e1") {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing fail-over RTA diagnostic: %v", m.Violations)
		}
	})
}

// MaxASILSpread bounds mixed-criticality co-location; negative is strict.
func TestMaxASILSpread(t *testing.T) {
	sys := redSystem(t)
	// e1 hosts Sensor (ASIL-B) and Ctrl (ASIL-D): spread 2.
	if m := Evaluate(sys, Constraints{MaxASILSpread: 2}); !m.Feasible {
		t.Fatalf("spread 2 under cap 2 rejected: %+v", m)
	}
	m := Evaluate(sys, Constraints{MaxASILSpread: 1})
	if m.Feasible {
		t.Fatalf("spread 2 under cap 1 accepted: %+v", m)
	}
	if !strings.Contains(strings.Join(m.Violations, "; "), "e1 co-locates ASIL-D with ASIL-B: ASIL spread 2 exceeds 1") {
		t.Fatalf("missing spread diagnostic: %v", m.Violations)
	}
	// Strict: even e2's ASIL-C actuator next to the ASIL-D standby is out.
	m = Evaluate(sys, Constraints{MaxASILSpread: -1})
	if m.Feasible {
		t.Fatalf("mixed ECU accepted under strict partition: %+v", m)
	}
}

// WAvail prices unavailability into the scalar cost.
func TestCostChargesUnavailability(t *testing.T) {
	obj := Objective{WECU: 1000, WAvail: 500}
	full := Metrics{Feasible: true, ECUs: 2, Survivability: 1}
	half := Metrics{Feasible: true, ECUs: 2, Survivability: 0.5}
	if d := half.Cost(obj) - full.Cost(obj); math.Abs(d-250) > 1e-9 {
		t.Fatalf("unavailability premium = %v, want 250", d)
	}
	if DefaultObjective().WAvail != 0 {
		t.Fatal("DefaultObjective must ignore availability for legacy studies")
	}
}

// Survivability accounting on a system without replicas: 1.0 everywhere,
// so legacy DSE costs are untouched by the new term.
func TestSurvivabilityWithoutReplicas(t *testing.T) {
	sys := redSpec() // spec not materialized: no standbys exist
	sys.Components[1].Redundancy = model.Redundancy{}
	m := Evaluate(sys, Constraints{})
	if !m.Feasible || m.Survivability != 1 {
		t.Fatalf("unreplicated system: %+v", m)
	}
}
