package ttethernet

import (
	"testing"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

// 100 Mbit/s, 1ms cycle.
func cfg100M() Config { return Config{BitRate: 100_000_000, Cycle: sim.MS(1)} }

func TestConfigValidate(t *testing.T) {
	if (Config{BitRate: 0, Cycle: 1}).Validate() == nil {
		t.Fatal("zero bit rate accepted")
	}
	if (Config{BitRate: 1, Cycle: 0}).Validate() == nil {
		t.Fatal("zero cycle accepted")
	}
	if cfg100M().Validate() != nil {
		t.Fatal("valid config rejected")
	}
}

func TestFrameTimeMinimumSize(t *testing.T) {
	c := cfg100M()
	// 84 bytes on the wire at 100 Mbit/s = 6.72us; smaller frames pad.
	if got := c.frameTime(10); got != c.frameTime(84) {
		t.Fatal("sub-minimum frame not padded")
	}
	if got := c.frameTime(84); got != sim.Duration(84*8*10) {
		t.Fatalf("frame time %v, want 6.72us", got)
	}
}

func TestStreamValidation(t *testing.T) {
	k := sim.NewKernel()
	sw := MustNewSwitch(k, cfg100M(), nil)
	bad := []*Stream{
		{Name: "", Class: TT, Bytes: 100, Egress: "p1"},
		{Name: "big", Class: TT, Bytes: 2000, Egress: "p1"},
		{Name: "noport", Class: TT, Bytes: 100},
		{Name: "slot", Class: TT, Bytes: 100, Egress: "p1", Slot: sim.MS(2)},
		{Name: "rc", Class: RC, Bytes: 100, Egress: "p1"}, // no contract
	}
	for i, st := range bad {
		if sw.AddStream(st) == nil {
			t.Errorf("bad stream %d accepted", i)
		}
	}
	sw.MustAddStream(&Stream{Name: "ok", Class: TT, Bytes: 100, Egress: "p1", Period: sim.MS(1)})
	if sw.AddStream(&Stream{Name: "ok", Class: BE, Bytes: 100, Egress: "p1"}) == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestTTSlotOverlapRejected(t *testing.T) {
	k := sim.NewKernel()
	sw := MustNewSwitch(k, cfg100M(), nil)
	sw.MustAddStream(&Stream{Name: "a", Class: TT, Bytes: 100, Egress: "p1", Slot: 0, Period: sim.MS(1)})
	if sw.AddStream(&Stream{Name: "b", Class: TT, Bytes: 100, Egress: "p1", Slot: sim.US(3), Period: sim.MS(1)}) == nil {
		t.Fatal("overlapping TT slots on one port accepted")
	}
	// Same slot on a different egress port is fine.
	if err := sw.AddStream(&Stream{Name: "c", Class: TT, Bytes: 100, Egress: "p2", Slot: 0, Period: sim.MS(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestTTDeterministicLatency(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	sw := MustNewSwitch(k, cfg100M(), rec)
	st := &Stream{Name: "tt", Class: TT, Bytes: 100, Egress: "p1", Slot: sim.US(100), Period: sim.MS(1)}
	sw.MustAddStream(st)
	sw.Start()
	k.Run(sim.MS(50))
	s := trace.Compute(rec.Latencies("tt"))
	if s.N < 49 {
		t.Fatalf("delivered %d, want ~50", s.N)
	}
	if s.Jitter != 0 {
		t.Fatalf("TT jitter %v, want 0", s.Jitter)
	}
	// Queued at cycle start, slot at 100us, wire 8us: latency 108us.
	want := sim.US(100) + cfg100M().frameTime(100)
	if s.Max != want {
		t.Fatalf("TT latency %v, want %v", s.Max, want)
	}
}

func TestTTUnaffectedByBELoad(t *testing.T) {
	measure := func(withBE bool) sim.Duration {
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		sw := MustNewSwitch(k, cfg100M(), rec)
		sw.MustAddStream(&Stream{Name: "tt", Class: TT, Bytes: 100, Egress: "p1", Slot: sim.US(500), Period: sim.MS(1)})
		if withBE {
			// Saturating best-effort traffic on the same port.
			sw.MustAddStream(&Stream{Name: "be", Class: BE, Bytes: 1500, Egress: "p1", Period: sim.US(100)})
		}
		sw.Start()
		k.Run(sim.MS(50))
		return trace.Compute(rec.Latencies("tt")).Max
	}
	if quiet, loaded := measure(false), measure(true); quiet != loaded {
		t.Fatalf("BE load moved TT latency: %v -> %v", quiet, loaded)
	}
}

func TestRCPolicing(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	sw := MustNewSwitch(k, cfg100M(), rec)
	st := &Stream{Name: "rc", Class: RC, Bytes: 200, Egress: "p1", MinInterval: sim.MS(1)}
	sw.MustAddStream(st)
	sw.Start()
	// Three frames: t=0 ok, t=0.2ms policed (below contract), t=1.5ms ok.
	k.At(0, func() { sw.Queue(st, nil) })
	k.At(sim.US(200), func() { sw.Queue(st, nil) })
	k.At(sim.US(1500), func() { sw.Queue(st, nil) })
	k.Run(sim.MS(10))
	if sw.Policed() != 1 {
		t.Fatalf("policed %d, want 1", sw.Policed())
	}
	if got := rec.Count(trace.Finish, "rc"); got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
}

func TestRCPrecedesBE(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	sw := MustNewSwitch(k, cfg100M(), rec)
	rc := &Stream{Name: "rc", Class: RC, Bytes: 500, Egress: "p1", MinInterval: sim.MS(1)}
	be := &Stream{Name: "be", Class: BE, Bytes: 500, Egress: "p1"}
	sw.MustAddStream(rc)
	sw.MustAddStream(be)
	sw.Start()
	// Both queued at the same instant: RC must go first.
	k.At(0, func() { sw.Queue(be, nil); sw.Queue(rc, nil) })
	k.Run(sim.MS(5))
	rcLat := trace.Compute(rec.Latencies("rc")).Max
	beLat := trace.Compute(rec.Latencies("be")).Max
	if rcLat >= beLat {
		t.Fatalf("RC (%v) did not precede BE (%v)", rcLat, beLat)
	}
}

func TestBEWaitsForTTGap(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	cfg := cfg100M()
	sw := MustNewSwitch(k, cfg, rec)
	// TT reservation right at the start of every cycle.
	tt := &Stream{Name: "tt", Class: TT, Bytes: 1500, Egress: "p1", Slot: 0, Period: sim.MS(1)}
	be := &Stream{Name: "be", Class: BE, Bytes: 100, Egress: "p1"}
	sw.MustAddStream(tt)
	sw.MustAddStream(be)
	sw.Start()
	// BE frame queued exactly at cycle start collides with the TT
	// reservation and must start after it.
	k.At(sim.MS(1), func() { sw.Queue(be, nil) })
	k.Run(sim.MS(5))
	ttWire := cfg.frameTime(1500)
	beLat := trace.Compute(rec.Latencies("be")).Max
	want := ttWire + cfg.frameTime(100)
	if beLat != want {
		t.Fatalf("BE latency %v, want %v (deferred past TT reservation)", beLat, want)
	}
}

func TestScheduleAssignsDisjointSlots(t *testing.T) {
	cfg := cfg100M()
	streams := []*Stream{
		{Name: "a", Class: TT, Bytes: 100, Egress: "p1", Period: sim.MS(1)},
		{Name: "b", Class: TT, Bytes: 100, Egress: "p1", Period: sim.MS(1)},
		{Name: "c", Class: TT, Bytes: 100, Egress: "p2", Period: sim.MS(1)},
	}
	if err := Schedule(cfg, streams); err != nil {
		t.Fatal(err)
	}
	if streams[0].Slot == streams[1].Slot {
		t.Fatal("same-port streams share a slot")
	}
	if streams[2].Slot != 0 {
		t.Fatal("different port should start at 0")
	}
	k := sim.NewKernel()
	sw := MustNewSwitch(k, cfg, nil)
	for _, st := range streams {
		if err := sw.AddStream(st); err != nil {
			t.Fatalf("scheduled stream rejected: %v", err)
		}
	}
}

func TestScheduleOverflow(t *testing.T) {
	cfg := Config{BitRate: 100_000_000, Cycle: sim.US(20)}
	streams := []*Stream{
		{Name: "a", Class: TT, Bytes: 150, Egress: "p1"},
		{Name: "b", Class: TT, Bytes: 150, Egress: "p1"},
	}
	if Schedule(cfg, streams) == nil {
		t.Fatal("overfull schedule accepted")
	}
}

func TestTTWCRTBoundsSimulation(t *testing.T) {
	cfg := cfg100M()
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	sw := MustNewSwitch(k, cfg, rec)
	// Non-harmonic period: queueing phase sweeps the whole cycle.
	st := &Stream{Name: "tt", Class: TT, Bytes: 300, Egress: "p1", Slot: sim.US(200), Period: sim.US(1310)}
	sw.MustAddStream(st)
	sw.Start()
	k.Run(sim.Second)
	bound := TTWCRT(cfg, st)
	if got := trace.Compute(rec.Latencies("tt")).Max; got > bound {
		t.Fatalf("simulated %v exceeds TT WCRT bound %v", got, bound)
	}
}

func TestClassString(t *testing.T) {
	if TT.String() != "TT" || RC.String() != "RC" || BE.String() != "BE" {
		t.Fatal("class names")
	}
}
