// Package ttethernet simulates a time-triggered Ethernet switch — the
// third time-triggered protocol §4 names next to FlexRay and TTP. A
// single switch forwards three traffic classes with strict precedence:
//
//   - TT (time-triggered): frames sent in pre-planned slots of a cyclic
//     schedule; the switch reserves the egress port so they never queue.
//   - RC (rate-constrained): sporadic frames with a bandwidth contract
//     (minimum inter-arrival); forwarded when no TT frame is due, policed
//     at ingress.
//   - BE (best-effort): everything else, lowest precedence, unbounded.
//
// The experiment-relevant property mirrors FlexRay's static segment: TT
// latency is load-independent, RC latency is bounded by its contract, BE
// degrades arbitrarily — temporal partitioning of one physical link.
package ttethernet

import (
	"fmt"
	"sort"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

// Class is the traffic class of a stream.
type Class uint8

// Traffic classes in precedence order.
const (
	TT Class = iota
	RC
	BE
)

func (c Class) String() string {
	switch c {
	case TT:
		return "TT"
	case RC:
		return "RC"
	default:
		return "BE"
	}
}

// Config describes the switch and its schedule cycle.
type Config struct {
	// BitRate of every link (e.g. 100 Mbit/s).
	BitRate int64
	// Cycle is the TT schedule cycle length.
	Cycle sim.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BitRate <= 0 {
		return fmt.Errorf("ttethernet: non-positive bit rate")
	}
	if c.Cycle <= 0 {
		return fmt.Errorf("ttethernet: non-positive cycle")
	}
	return nil
}

// frameTime returns the wire time of a frame (minimum Ethernet frame 84
// bytes on the wire including preamble and IFG).
func (c Config) frameTime(bytes int) sim.Duration {
	if bytes < 84 {
		bytes = 84
	}
	return sim.Duration(int64(bytes*8) * int64(sim.Second) / c.BitRate)
}

// Stream is one unidirectional flow through the switch.
type Stream struct {
	Name  string
	Class Class
	// Bytes is the frame size on the wire.
	Bytes int
	// Egress names the destination port; streams to different egress
	// ports do not contend.
	Egress string
	// TT: Slot is the transmission offset within the cycle (set by
	// Schedule, or manually).
	Slot sim.Duration
	// RC: MinInterval is the bandwidth contract (minimum inter-arrival);
	// ingress policing drops closer spacing.
	MinInterval sim.Duration
	// Period auto-queues the stream (0 = externally queued via Queue).
	Period sim.Duration
	Offset sim.Duration
	// Deadline defaults to Period.
	Deadline sim.Duration
	// OnDeliver observes completed frames.
	OnDeliver func(queued, delivered sim.Time, payload []byte)

	nextJob  int64
	lastRxAt sim.Time
	everRx   bool
}

func (s *Stream) validate(cfg Config) error {
	if s.Name == "" {
		return fmt.Errorf("ttethernet: stream with empty name")
	}
	if s.Bytes <= 0 || s.Bytes > 1522 {
		return fmt.Errorf("ttethernet: stream %s: frame size %d outside 1..1522", s.Name, s.Bytes)
	}
	if s.Egress == "" {
		return fmt.Errorf("ttethernet: stream %s: no egress port", s.Name)
	}
	switch s.Class {
	case TT:
		if s.Slot < 0 || s.Slot >= cfg.Cycle {
			return fmt.Errorf("ttethernet: stream %s: slot %v outside cycle %v", s.Name, s.Slot, cfg.Cycle)
		}
	case RC:
		if s.MinInterval <= 0 {
			return fmt.Errorf("ttethernet: RC stream %s needs a MinInterval contract", s.Name)
		}
	case BE:
		// Best-effort streams carry no timing contract to validate.
	}
	if s.Period < 0 || s.Offset < 0 || s.Deadline < 0 {
		return fmt.Errorf("ttethernet: stream %s: negative timing parameter", s.Name)
	}
	return nil
}

func (s *Stream) relativeDeadline() sim.Duration {
	if s.Deadline > 0 {
		return s.Deadline
	}
	return s.Period
}

// Switch simulates one TT-Ethernet switch.
type Switch struct {
	Cfg   Config
	Trace *trace.Recorder

	k       *sim.Kernel
	streams []*Stream
	// per-egress-port state
	ports   map[string]*port
	started bool
	policed int64
}

type queued struct {
	stream  *Stream
	job     int64
	at      sim.Time
	payload []byte
	done    bool
}

type port struct {
	busyUntil sim.Time
	rcQueue   []*queued
	beQueue   []*queued
	// ttReserved lists (offset, length) reservations within the cycle.
	ttReserved []reservation
	serveArmed bool
}

type reservation struct {
	off, length sim.Duration
}

// NewSwitch creates a switch on the kernel.
func NewSwitch(k *sim.Kernel, cfg Config, rec *trace.Recorder) (*Switch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Switch{Cfg: cfg, Trace: rec, k: k, ports: map[string]*port{}}, nil
}

// MustNewSwitch panics on configuration error.
func MustNewSwitch(k *sim.Kernel, cfg Config, rec *trace.Recorder) *Switch {
	s, err := NewSwitch(k, cfg, rec)
	if err != nil {
		panic(err)
	}
	return s
}

// AddStream registers a stream; TT slots on the same egress port must not
// overlap.
func (s *Switch) AddStream(st *Stream) error {
	if s.started {
		return fmt.Errorf("ttethernet: AddStream after Start")
	}
	if err := st.validate(s.Cfg); err != nil {
		return err
	}
	for _, o := range s.streams {
		if o.Name == st.Name {
			return fmt.Errorf("ttethernet: duplicate stream %s", st.Name)
		}
	}
	p := s.portOf(st.Egress)
	if st.Class == TT {
		length := s.Cfg.frameTime(st.Bytes)
		if st.Slot+length > s.Cfg.Cycle {
			return fmt.Errorf("ttethernet: stream %s: slot %v + frame %v exceeds cycle", st.Name, st.Slot, length)
		}
		for _, r := range p.ttReserved {
			if st.Slot < r.off+r.length && r.off < st.Slot+length {
				return fmt.Errorf("ttethernet: stream %s: TT slot overlaps an existing reservation on port %s", st.Name, st.Egress)
			}
		}
		p.ttReserved = append(p.ttReserved, reservation{st.Slot, length})
	}
	s.streams = append(s.streams, st)
	return nil
}

// MustAddStream is AddStream that panics on error.
func (s *Switch) MustAddStream(st *Stream) {
	if err := s.AddStream(st); err != nil {
		panic(err)
	}
}

func (s *Switch) portOf(name string) *port {
	p, ok := s.ports[name]
	if !ok {
		p = &port{}
		s.ports[name] = p
	}
	return p
}

// Policed returns the number of RC frames dropped by ingress policing.
func (s *Switch) Policed() int64 { return s.policed }

// Start installs periodic queueing.
func (s *Switch) Start() {
	if s.started {
		return
	}
	s.started = true
	for _, st := range s.streams {
		if st.Period > 0 {
			s.schedulePeriodic(st, st.Offset)
		}
	}
}

func (s *Switch) schedulePeriodic(st *Stream, at sim.Time) {
	s.k.AtPrio(at, 10, func() {
		s.Queue(st, nil)
		s.schedulePeriodic(st, at+st.Period)
	})
}

// Queue submits one frame of the stream.
func (s *Switch) Queue(st *Stream, payload []byte) {
	now := s.k.Now()
	job := st.nextJob
	st.nextJob++
	s.Trace.Emit(now, trace.Activate, st.Name, job, "")
	if st.Class == RC && st.everRx && now-st.lastRxAt < st.MinInterval {
		// Bandwidth contract violated: ingress policing drops the frame —
		// the guardian function for rate-constrained traffic.
		s.policed++
		s.Trace.Emit(now, trace.Drop, st.Name, job, "policed: below MinInterval")
		return
	}
	st.lastRxAt = now
	st.everRx = true
	q := &queued{stream: st, job: job, at: now, payload: payload}
	if d := st.relativeDeadline(); d > 0 {
		s.k.AtPrio(now+d, 20, func() {
			if !q.done {
				s.Trace.Emit(s.k.Now(), trace.Miss, st.Name, job, "")
			}
		})
	}
	switch st.Class {
	case TT:
		s.k.At(s.nextSlot(st, now), func() { s.deliverAfter(q, s.Cfg.frameTime(st.Bytes)) })
	case RC:
		p := s.portOf(st.Egress)
		p.rcQueue = append(p.rcQueue, q)
		s.armServe(st.Egress)
	case BE:
		p := s.portOf(st.Egress)
		p.beQueue = append(p.beQueue, q)
		s.armServe(st.Egress)
	}
}

// armServe defers port service to the end of the current instant so that
// frames of different classes arriving at the same virtual time are
// prioritized together (RC before BE).
func (s *Switch) armServe(egress string) {
	p := s.portOf(egress)
	if p.serveArmed {
		return
	}
	p.serveArmed = true
	s.k.AtPrio(s.k.Now(), 50, func() {
		p.serveArmed = false
		s.serve(egress)
	})
}

// nextSlot returns the next occurrence of the stream's TT slot at or
// after now.
func (s *Switch) nextSlot(st *Stream, now sim.Time) sim.Time {
	base := now - now%s.Cfg.Cycle + st.Slot
	if base < now {
		base += s.Cfg.Cycle
	}
	return base
}

// deliverAfter completes a frame after its wire time (TT path: the egress
// reservation guarantees no queueing).
func (s *Switch) deliverAfter(q *queued, wire sim.Duration) {
	end := s.k.Now() + wire
	p := s.portOf(q.stream.Egress)
	if p.busyUntil < end {
		p.busyUntil = end
	}
	s.k.At(end, func() { s.complete(q, end) })
}

// serve forwards queued RC/BE frames on a port whenever the link is free
// and the gap to the next TT reservation fits the frame (TT precedence by
// construction).
func (s *Switch) serve(egress string) {
	p := s.portOf(egress)
	now := s.k.Now()
	if p.busyUntil > now {
		// Link busy: re-arm at release.
		s.k.AtPrio(p.busyUntil, 30, func() { s.serve(egress) })
		return
	}
	var q *queued
	var queue *[]*queued
	if len(p.rcQueue) > 0 {
		queue = &p.rcQueue
	} else if len(p.beQueue) > 0 {
		queue = &p.beQueue
	} else {
		return
	}
	q = (*queue)[0]
	wire := s.Cfg.frameTime(q.stream.Bytes)
	start := s.fitAroundTT(p, now, wire)
	if start > now {
		s.k.AtPrio(start, 30, func() { s.serve(egress) })
		return
	}
	*queue = (*queue)[1:]
	p.busyUntil = now + wire
	s.Trace.Emit(now, trace.Start, q.stream.Name, q.job, "")
	s.k.At(now+wire, func() {
		s.complete(q, s.k.Now())
		s.serve(egress)
	})
}

// fitAroundTT returns the earliest start >= now such that [start,
// start+wire) does not intersect any TT reservation on the port.
func (s *Switch) fitAroundTT(p *port, now sim.Time, wire sim.Duration) sim.Time {
	if len(p.ttReserved) == 0 {
		return now
	}
	res := append([]reservation(nil), p.ttReserved...)
	sort.Slice(res, func(i, j int) bool { return res[i].off < res[j].off })
	start := now
	for guard := 0; guard < 3; guard++ { // at most a few cycle wraps
		off := sim.Duration(start % s.Cfg.Cycle)
		moved := false
		for _, r := range res {
			if off < r.off+r.length && r.off < off+wire {
				// Collides: start after this reservation.
				start += r.off + r.length - off
				off = sim.Duration(start % s.Cfg.Cycle)
				moved = true
			}
		}
		if !moved {
			return start
		}
	}
	return start
}

func (s *Switch) complete(q *queued, at sim.Time) {
	q.done = true
	s.Trace.Emit(at, trace.Finish, q.stream.Name, q.job, "")
	if q.stream.OnDeliver != nil {
		q.stream.OnDeliver(q.at, at, q.payload)
	}
}

// Schedule assigns non-overlapping TT slots on each egress port for the
// given TT streams (earliest-fit in registration order). Call before
// AddStream, then add the returned streams.
func Schedule(cfg Config, streams []*Stream) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	cursor := map[string]sim.Duration{}
	for _, st := range streams {
		if st.Class != TT {
			continue
		}
		length := cfg.frameTime(st.Bytes)
		off := cursor[st.Egress]
		if off+length > cfg.Cycle {
			return fmt.Errorf("ttethernet: schedule full on port %s (need %v past cycle %v)", st.Egress, off+length, cfg.Cycle)
		}
		st.Slot = off
		cursor[st.Egress] = off + length
	}
	return nil
}

// TTWCRT returns the worst-case queuing-to-delivery latency of a TT
// stream: it just missed its slot and waits one full cycle, plus the
// wire time.
func TTWCRT(cfg Config, st *Stream) sim.Duration {
	return cfg.Cycle + cfg.frameTime(st.Bytes)
}
