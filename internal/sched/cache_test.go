package sched

import (
	"fmt"
	"reflect"
	"testing"

	"autorte/internal/sim"
)

func cacheDemoSet() []Task {
	return []Task{
		{Name: "a", C: sim.MS(1), T: sim.MS(5), Priority: 3},
		{Name: "b", C: sim.MS(2), T: sim.MS(10), Priority: 2},
		{Name: "c", C: sim.MS(3), T: sim.MS(20), Priority: 1},
	}
}

func TestCacheMatchesDirectAnalysis(t *testing.T) {
	c := NewCache()
	tasks := cacheDemoSet()
	want, err := ResponseTimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.ResponseTimes(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: cached results diverge:\n got %+v\nwant %+v", i, got, want)
		}
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", hits, misses)
	}
}

func TestCacheKeyCanonicalOrder(t *testing.T) {
	// Priority order differs from input order: both inputs analyze
	// identically, so they must share a key.
	a := cacheDemoSet()
	b := []Task{a[2], a[0], a[1]}
	if Key(a) != Key(b) {
		t.Fatal("permuted distinct-priority sets should share a key")
	}
	// Equal-priority ties are order-sensitive in the analysis (stable
	// sort keeps input order), so swapping tied tasks must change the key.
	tie1 := []Task{
		{Name: "x", C: 1, T: 10, Priority: 5},
		{Name: "y", C: 2, T: 10, Priority: 5},
	}
	tie2 := []Task{tie1[1], tie1[0]}
	if Key(tie1) == Key(tie2) {
		t.Fatal("reordered equal-priority tasks must not share a key")
	}
	// Any parameter change must change the key.
	mod := cacheDemoSet()
	mod[1].J = 1
	if Key(a) == Key(mod) {
		t.Fatal("jitter change must change the key")
	}
}

func TestCacheReturnsFreshCopies(t *testing.T) {
	c := NewCache()
	tasks := cacheDemoSet()
	first, err := c.ResponseTimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	first[0].WCRT = -42 // caller mutation must not poison the cache
	second, err := c.ResponseTimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].WCRT == -42 {
		t.Fatal("cache returned aliased slice")
	}
}

func TestCacheNilReceiverDegrades(t *testing.T) {
	var c *Cache
	tasks := cacheDemoSet()
	got, err := c.ResponseTimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ResponseTimes(tasks)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil cache should behave like the direct analysis")
	}
	ok, _, err := c.Schedulable(tasks)
	if err != nil || !ok {
		t.Fatalf("nil cache Schedulable = %v, %v", ok, err)
	}
}

func TestKeyStableUnderConcurrentPooledUse(t *testing.T) {
	// Key builds through a shared buffer pool; concurrent use across
	// distinct task sets must never bleed one set's bytes into another's
	// key. Serial keys are the ground truth.
	sets := make([][]Task, 16)
	want := make([]string, len(sets))
	for i := range sets {
		sets[i] = cacheDemoSet()
		sets[i][0].C = sim.MS(1) + sim.Duration(i)
		sets[i][2].Name = string(rune('a' + i))
		want[i] = Key(sets[i])
	}
	for i := range want {
		for j := i + 1; j < len(want); j++ {
			if want[i] == want[j] {
				t.Fatalf("distinct sets %d and %d collide", i, j)
			}
		}
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for round := 0; round < 200; round++ {
				for i := range sets {
					if got := Key(sets[i]); got != want[i] {
						done <- fmt.Errorf("set %d: key changed under concurrency", i)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCacheConcurrentMissesCountOnce(t *testing.T) {
	// However many goroutines race the first lookup of a key, exactly one
	// analysis runs: every other caller is a hit or a coalesced waiter.
	c := NewCache()
	tasks := cacheDemoSet()
	const callers = 16
	start := make(chan struct{})
	done := make(chan error, callers)
	for g := 0; g < callers; g++ {
		go func() {
			<-start
			_, err := c.ResponseTimes(tasks)
			done <- err
		}()
	}
	close(start)
	for g := 0; g < callers; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly 1", misses)
	}
	if hits+c.dedup.Load() != callers-1 {
		t.Fatalf("hits %d + dedup %d should cover the %d non-miss callers", hits, c.dedup.Load(), callers-1)
	}
}

func TestCacheSharedResultsAliasTheEntry(t *testing.T) {
	c := NewCache()
	tasks := cacheDemoSet()
	a, err := c.ResponseTimesShared(tasks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.ResponseTimesShared(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("shared lookups should return the cache-owned slice, not copies")
	}
	ok, rs, err := c.SchedulableShared(tasks)
	if err != nil || !ok {
		t.Fatalf("SchedulableShared = %v, %v", ok, err)
	}
	if &rs[0] != &a[0] {
		t.Fatal("SchedulableShared should share the same entry slice")
	}
	cp, err := c.ResponseTimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, a) {
		t.Fatal("shared and copied results diverge")
	}
	if &cp[0] == &a[0] {
		t.Fatal("copying variant must not alias the cache entry")
	}
}

func TestCacheConcurrentUse(t *testing.T) {
	c := NewCache()
	tasks := cacheDemoSet()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := c.ResponseTimes(tasks); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}
