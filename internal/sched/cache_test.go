package sched

import (
	"reflect"
	"testing"

	"autorte/internal/sim"
)

func cacheDemoSet() []Task {
	return []Task{
		{Name: "a", C: sim.MS(1), T: sim.MS(5), Priority: 3},
		{Name: "b", C: sim.MS(2), T: sim.MS(10), Priority: 2},
		{Name: "c", C: sim.MS(3), T: sim.MS(20), Priority: 1},
	}
}

func TestCacheMatchesDirectAnalysis(t *testing.T) {
	c := NewCache()
	tasks := cacheDemoSet()
	want, err := ResponseTimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.ResponseTimes(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: cached results diverge:\n got %+v\nwant %+v", i, got, want)
		}
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", hits, misses)
	}
}

func TestCacheKeyCanonicalOrder(t *testing.T) {
	// Priority order differs from input order: both inputs analyze
	// identically, so they must share a key.
	a := cacheDemoSet()
	b := []Task{a[2], a[0], a[1]}
	if Key(a) != Key(b) {
		t.Fatal("permuted distinct-priority sets should share a key")
	}
	// Equal-priority ties are order-sensitive in the analysis (stable
	// sort keeps input order), so swapping tied tasks must change the key.
	tie1 := []Task{
		{Name: "x", C: 1, T: 10, Priority: 5},
		{Name: "y", C: 2, T: 10, Priority: 5},
	}
	tie2 := []Task{tie1[1], tie1[0]}
	if Key(tie1) == Key(tie2) {
		t.Fatal("reordered equal-priority tasks must not share a key")
	}
	// Any parameter change must change the key.
	mod := cacheDemoSet()
	mod[1].J = 1
	if Key(a) == Key(mod) {
		t.Fatal("jitter change must change the key")
	}
}

func TestCacheReturnsFreshCopies(t *testing.T) {
	c := NewCache()
	tasks := cacheDemoSet()
	first, err := c.ResponseTimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	first[0].WCRT = -42 // caller mutation must not poison the cache
	second, err := c.ResponseTimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].WCRT == -42 {
		t.Fatal("cache returned aliased slice")
	}
}

func TestCacheNilReceiverDegrades(t *testing.T) {
	var c *Cache
	tasks := cacheDemoSet()
	got, err := c.ResponseTimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ResponseTimes(tasks)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil cache should behave like the direct analysis")
	}
	ok, _, err := c.Schedulable(tasks)
	if err != nil || !ok {
		t.Fatalf("nil cache Schedulable = %v, %v", ok, err)
	}
}

func TestCacheConcurrentUse(t *testing.T) {
	c := NewCache()
	tasks := cacheDemoSet()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := c.ResponseTimes(tasks); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}
