// Package sched provides the schedulability analyses §3 calls for:
// worst-case response-time analysis for fixed-priority preemptive tasks
// (with blocking and release jitter), utilization-based tests, and
// priority-assignment algorithms (deadline-monotonic and Audsley's
// optimal assignment).
//
// The task model matches what the RTE generates from runnables, so the
// same system can be verified statically and then simulated; experiment
// E5 checks that the analysis dominates the simulation.
package sched

import (
	"fmt"
	"math"
	"sort"

	"autorte/internal/sim"
)

// Task is the analyzable abstraction of an OS task.
type Task struct {
	Name string
	// C is the worst-case execution time on the target core.
	C sim.Duration
	// T is the period (or minimum inter-arrival time).
	T sim.Duration
	// D is the relative deadline; 0 defaults to T.
	D sim.Duration
	// J is the release jitter.
	J sim.Duration
	// B is the worst-case blocking from lower-priority critical sections.
	B sim.Duration
	// Priority: higher value = higher priority.
	Priority int
}

// Deadline returns the effective relative deadline.
func (t *Task) Deadline() sim.Duration {
	if t.D > 0 {
		return t.D
	}
	return t.T
}

func (t *Task) validate() error {
	if t.Name == "" {
		return fmt.Errorf("sched: task with empty name")
	}
	if t.C <= 0 || t.T <= 0 {
		return fmt.Errorf("sched: task %s: C and T must be positive", t.Name)
	}
	if t.D < 0 || t.J < 0 || t.B < 0 {
		return fmt.Errorf("sched: task %s: negative parameter", t.Name)
	}
	return nil
}

// Result is one task's analysis outcome.
type Result struct {
	Task        Task
	WCRT        sim.Duration
	Schedulable bool
	Converged   bool
}

// TotalUtilization returns sum(C/T).
func TotalUtilization(tasks []Task) float64 {
	u := 0.0
	for i := range tasks {
		u += float64(tasks[i].C) / float64(tasks[i].T)
	}
	return u
}

// LiuLaylandBound returns the rate-monotonic utilization bound
// n(2^{1/n} - 1) for n tasks.
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// ResponseTimes runs the classic recurrence
//
//	w^(k+1) = C + B + Σ_{hp} ceil((w^(k) + J_hp) / T_hp) · C_hp
//	R       = w + J
//
// for every task. The analysis is exact for independent, constrained-
// deadline (D ≤ T) fixed-priority sets on one core; sets where a task's
// level-i utilization reaches 1 are reported unschedulable.
func ResponseTimes(tasks []Task) ([]Result, error) {
	// Already-sorted inputs (the cache and the deployment layers feed
	// priority-ordered sets) analyze in place; the analysis never mutates
	// the tasks, so sharing the caller's slice is safe.
	byPrio := tasks
	for i := 1; i < len(tasks); i++ {
		if tasks[i-1].Priority < tasks[i].Priority {
			byPrio = append([]Task(nil), tasks...)
			sort.SliceStable(byPrio, func(i, j int) bool { return byPrio[i].Priority > byPrio[j].Priority })
			break
		}
	}
	out := make([]Result, 0, len(byPrio))
	for i := range byPrio {
		t := &byPrio[i]
		if err := t.validate(); err != nil {
			return nil, err
		}
		uLevel := float64(t.C) / float64(t.T)
		for j := 0; j < i; j++ {
			uLevel += float64(byPrio[j].C) / float64(byPrio[j].T)
		}
		res := Result{Task: *t}
		if uLevel >= 1 {
			res.WCRT = sim.Infinity
			out = append(out, res)
			continue
		}
		w := t.C + t.B
		const maxIter = 1_000_000
		for iter := 0; iter < maxIter; iter++ {
			next := t.C + t.B
			for j := 0; j < i; j++ {
				hp := &byPrio[j]
				n := (int64(w) + int64(hp.J) + int64(hp.T) - 1) / int64(hp.T)
				next += sim.Duration(n) * hp.C
			}
			if next == w {
				res.Converged = true
				break
			}
			w = next
			if w > 1000*t.T {
				break
			}
		}
		res.WCRT = w + t.J
		res.Schedulable = res.Converged && res.WCRT <= t.Deadline()
		out = append(out, res)
	}
	return out, nil
}

// Schedulable reports whether every task meets its deadline under the
// given priorities.
func Schedulable(tasks []Task) (bool, []Result, error) {
	rs, err := ResponseTimes(tasks)
	if err != nil {
		return false, nil, err
	}
	for _, r := range rs {
		if !r.Schedulable {
			return false, rs, nil
		}
	}
	return true, rs, nil
}

// AssignDeadlineMonotonic sets priorities by ascending effective deadline
// (shortest deadline = highest priority), the optimal static assignment
// for constrained-deadline sets without jitter or blocking.
func AssignDeadlineMonotonic(tasks []Task) []Task {
	out := append([]Task(nil), tasks...)
	order := make([]int, len(out))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := out[order[a]].Deadline(), out[order[b]].Deadline()
		if da != db {
			return da < db
		}
		return out[order[a]].Name < out[order[b]].Name
	})
	for rank, idx := range order {
		out[idx].Priority = len(out) - rank
	}
	return out
}

// Sensitivity returns the largest uniform scaling factor that can be
// applied to every task's execution time while the set stays schedulable
// under the given priorities — a standard robustness metric ("how much
// WCET pessimism can this design absorb?"). Binary search to the given
// relative precision (e.g. 0.01). Returns 0 when already unschedulable.
func Sensitivity(tasks []Task, precision float64) (float64, error) {
	if precision <= 0 {
		precision = 0.01
	}
	scaled := func(f float64) []Task {
		out := append([]Task(nil), tasks...)
		for i := range out {
			out[i].C = sim.Duration(float64(out[i].C) * f)
			if out[i].C < 1 {
				out[i].C = 1
			}
		}
		return out
	}
	ok, _, err := Schedulable(tasks)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	lo, hi := 1.0, 1.0
	for {
		ok, _, err := Schedulable(scaled(hi * 2))
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		hi *= 2
		if hi > 1024 {
			return hi, nil // effectively unconstrained
		}
	}
	hi *= 2
	for hi-lo > precision*lo {
		mid := (lo + hi) / 2
		ok, _, err := Schedulable(scaled(mid))
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// AssignAudsley runs Audsley's optimal priority assignment: it fills
// priority levels bottom-up, at each level picking any task that is
// schedulable there assuming all unassigned tasks are higher priority.
// It returns the assigned set and whether a feasible assignment exists.
func AssignAudsley(tasks []Task) ([]Task, bool, error) {
	out := append([]Task(nil), tasks...)
	n := len(out)
	assigned := make([]bool, n)
	for level := 1; level <= n; level++ { // 1 = lowest priority
		placed := false
		for i := 0; i < n && !placed; i++ {
			if assigned[i] {
				continue
			}
			// Candidate i at this level; all other unassigned tasks above it.
			trial := make([]Task, 0, n)
			for j := 0; j < n; j++ {
				t := out[j]
				switch {
				case j == i:
					t.Priority = level
				case assigned[j]:
					// keep already-assigned (lower) priority
				default:
					t.Priority = n + 1 // provisional: higher than candidate
				}
				trial = append(trial, t)
			}
			rs, err := ResponseTimes(trial)
			if err != nil {
				return nil, false, err
			}
			ok := true
			for _, r := range rs {
				if r.Task.Name == out[i].Name && !r.Schedulable {
					ok = false
				}
			}
			if ok {
				out[i].Priority = level
				assigned[i] = true
				placed = true
			}
		}
		if !placed {
			return out, false, nil
		}
	}
	return out, true, nil
}
