package sched

import (
	"math"
	"testing"
	"testing/quick"

	"autorte/internal/osek"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

func classicSet() []Task {
	return []Task{
		{Name: "t1", C: sim.MS(1), T: sim.MS(4), Priority: 3},
		{Name: "t2", C: sim.MS(2), T: sim.MS(8), Priority: 2},
		{Name: "t3", C: sim.MS(3), T: sim.MS(16), Priority: 1},
	}
}

func TestResponseTimesClassic(t *testing.T) {
	rs, err := ResponseTimes(classicSet())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]sim.Duration{"t1": sim.MS(1), "t2": sim.MS(3), "t3": sim.MS(7)}
	for _, r := range rs {
		if r.WCRT != want[r.Task.Name] {
			t.Errorf("%s WCRT %v, want %v", r.Task.Name, r.WCRT, want[r.Task.Name])
		}
		if !r.Schedulable {
			t.Errorf("%s unschedulable", r.Task.Name)
		}
	}
}

func TestResponseTimesWithBlocking(t *testing.T) {
	tasks := classicSet()
	tasks[0].B = sim.MS(2) // t1 blocked by a lower critical section
	rs, _ := ResponseTimes(tasks)
	if rs[0].WCRT != sim.MS(3) {
		t.Fatalf("t1 WCRT with blocking %v, want 3ms", rs[0].WCRT)
	}
}

func TestResponseTimesWithJitter(t *testing.T) {
	tasks := classicSet()
	tasks[2].J = sim.MS(1) // t3 release jitter adds directly to R
	rs, _ := ResponseTimes(tasks)
	if rs[2].WCRT != sim.MS(8) {
		t.Fatalf("t3 WCRT with jitter %v, want 8ms", rs[2].WCRT)
	}
	// Jitter of a HIGHER priority task increases interference on t3:
	// with J1 = 3ms, ceil((7+3)/4) = 3 releases of t1 fit the window,
	// giving w3 = 3 + 3·1 + 2 = 8ms.
	tasks = classicSet()
	tasks[0].J = sim.MS(3)
	rs, _ = ResponseTimes(tasks)
	if rs[2].WCRT != sim.MS(8) {
		t.Fatalf("t3 WCRT %v; want 8ms with hp jitter 3ms", rs[2].WCRT)
	}
}

func TestOverloadedSetUnschedulable(t *testing.T) {
	tasks := []Task{
		{Name: "a", C: sim.MS(6), T: sim.MS(10), Priority: 2},
		{Name: "b", C: sim.MS(6), T: sim.MS(10), Priority: 1},
	}
	ok, rs, err := Schedulable(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("120% utilization schedulable")
	}
	if rs[1].WCRT != sim.Infinity {
		t.Fatalf("saturated task WCRT %v, want Infinity", rs[1].WCRT)
	}
}

func TestValidation(t *testing.T) {
	if _, err := ResponseTimes([]Task{{Name: "", C: 1, T: 1}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := ResponseTimes([]Task{{Name: "x", C: 0, T: 1}}); err == nil {
		t.Fatal("zero C accepted")
	}
	if _, err := ResponseTimes([]Task{{Name: "x", C: 1, T: 1, J: -1}}); err == nil {
		t.Fatal("negative jitter accepted")
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if LiuLaylandBound(1) != 1 {
		t.Fatal("n=1 bound should be 1")
	}
	if b := LiuLaylandBound(3); math.Abs(b-0.7797) > 0.001 {
		t.Fatalf("n=3 bound %v, want ~0.7798", b)
	}
	if b := LiuLaylandBound(1000); math.Abs(b-math.Ln2) > 0.001 {
		t.Fatalf("large-n bound %v, want ln2", b)
	}
	if LiuLaylandBound(0) != 0 {
		t.Fatal("n=0 bound")
	}
}

func TestTotalUtilization(t *testing.T) {
	u := TotalUtilization(classicSet()) // 0.25 + 0.25 + 0.1875
	if math.Abs(u-0.6875) > 1e-9 {
		t.Fatalf("utilization %v, want 0.6875", u)
	}
}

func TestDeadlineMonotonicAssignment(t *testing.T) {
	tasks := []Task{
		{Name: "slow", C: sim.MS(1), T: sim.MS(100)},
		{Name: "fast", C: sim.MS(1), T: sim.MS(5)},
		{Name: "hard", C: sim.MS(1), T: sim.MS(50), D: sim.MS(3)},
	}
	out := AssignDeadlineMonotonic(tasks)
	prio := map[string]int{}
	for _, tk := range out {
		prio[tk.Name] = tk.Priority
	}
	if !(prio["hard"] > prio["fast"] && prio["fast"] > prio["slow"]) {
		t.Fatalf("DM order wrong: %v", prio)
	}
}

func TestAudsleyBeatsDMOnJitterCase(t *testing.T) {
	// A constructed case where DM fails but Audsley finds an assignment:
	// large jitter on the short-deadline task makes DM suboptimal.
	tasks := []Task{
		{Name: "a", C: sim.MS(4), T: sim.MS(12), D: sim.MS(10), J: sim.MS(6)},
		{Name: "b", C: sim.MS(4), T: sim.MS(12), D: sim.MS(12)},
	}
	dm := AssignDeadlineMonotonic(tasks)
	dmOK, _, err := Schedulable(dm)
	if err != nil {
		t.Fatal(err)
	}
	aud, ok, err := AssignAudsley(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Audsley found no assignment")
	}
	audOK, _, _ := Schedulable(aud)
	if !audOK {
		t.Fatal("Audsley assignment not schedulable")
	}
	if dmOK {
		t.Log("DM also schedulable here; case does not separate them, but Audsley must still succeed")
	}
}

func TestAudsleyInfeasible(t *testing.T) {
	tasks := []Task{
		{Name: "a", C: sim.MS(8), T: sim.MS(10)},
		{Name: "b", C: sim.MS(8), T: sim.MS(10)},
	}
	_, ok, err := AssignAudsley(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("infeasible set got an assignment")
	}
}

// TestAnalysisDominatesOsekSimulation cross-validates the analysis against
// the osek simulator on random schedulable sets (package-level E5).
func TestAnalysisDominatesOsekSimulation(t *testing.T) {
	r := sim.NewRand(1234)
	periods := []sim.Duration{sim.MS(5), sim.MS(10), sim.MS(20), sim.MS(50), sim.MS(100)}
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(6)
		var tasks []Task
		for i := 0; i < n; i++ {
			T := periods[r.Intn(len(periods))]
			c := r.Range(sim.US(100), T/sim.Duration(2*n))
			tasks = append(tasks, Task{Name: "t" + string(rune('A'+i)), C: c, T: T})
		}
		tasks = AssignDeadlineMonotonic(tasks)
		ok, rs, err := Schedulable(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		wcrt := map[string]sim.Duration{}
		for _, res := range rs {
			wcrt[res.Task.Name] = res.WCRT
		}
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		cpu := osek.NewCPU(k, "ecu", 1, rec)
		for _, tk := range tasks {
			cpu.MustAddTask(&osek.Task{Name: tk.Name, Priority: tk.Priority, WCET: tk.C, Period: tk.T})
		}
		cpu.Start()
		k.Run(2 * sim.Second)
		for _, tk := range tasks {
			st := trace.Compute(rec.Latencies(tk.Name))
			if st.N == 0 {
				t.Fatalf("trial %d: %s never ran", trial, tk.Name)
			}
			if st.Max > wcrt[tk.Name] {
				t.Fatalf("trial %d: %s simulated %v exceeds analytic %v", trial, tk.Name, st.Max, wcrt[tk.Name])
			}
		}
	}
}

// The critical-instant simulation (synchronous release) should reach the
// analytic bound exactly for jitter-free sets.
func TestAnalysisTightAtCriticalInstant(t *testing.T) {
	tasks := classicSet()
	rs, _ := ResponseTimes(tasks)
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	cpu := osek.NewCPU(k, "ecu", 1, rec)
	for _, tk := range tasks {
		cpu.MustAddTask(&osek.Task{Name: tk.Name, Priority: tk.Priority, WCET: tk.C, Period: tk.T})
	}
	cpu.Start()
	k.Run(sim.MS(160))
	for _, r := range rs {
		st := trace.Compute(rec.Latencies(r.Task.Name))
		if st.Max != r.WCRT {
			t.Errorf("%s: simulated max %v != analytic %v (should be tight)", r.Task.Name, st.Max, r.WCRT)
		}
	}
}

func TestSensitivity(t *testing.T) {
	// Classic set at U=0.6875: scaling factor must be >1 and the scaled
	// set at the boundary must still be schedulable.
	f, err := Sensitivity(classicSet(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if f <= 1 {
		t.Fatalf("sensitivity %v, want > 1 for a set with slack", f)
	}
	if f > 1.6 {
		t.Fatalf("sensitivity %v implausibly large for U=0.69", f)
	}
	scaled := classicSet()
	for i := range scaled {
		scaled[i].C = sim.Duration(float64(scaled[i].C) * f)
	}
	if ok, _, _ := Schedulable(scaled); !ok {
		t.Fatal("set at reported sensitivity factor unschedulable")
	}
	// An unschedulable set has factor 0.
	over := []Task{
		{Name: "a", C: sim.MS(8), T: sim.MS(10), Priority: 2},
		{Name: "b", C: sim.MS(8), T: sim.MS(10), Priority: 1},
	}
	if f, _ := Sensitivity(over, 0.01); f != 0 {
		t.Fatalf("overloaded sensitivity %v, want 0", f)
	}
}

func TestSensitivityMonotoneInUtilization(t *testing.T) {
	light := []Task{{Name: "a", C: sim.MS(1), T: sim.MS(10), Priority: 1}}
	heavy := []Task{{Name: "a", C: sim.MS(8), T: sim.MS(10), Priority: 1}}
	fl, _ := Sensitivity(light, 0.01)
	fh, _ := Sensitivity(heavy, 0.01)
	if fl <= fh {
		t.Fatalf("lighter set should absorb more scaling: %v vs %v", fl, fh)
	}
}

func TestRTAMonotoneInExecutionTimeQuick(t *testing.T) {
	// Property: growing any task's C never shrinks any WCRT.
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		tasks := randomSet(3+r.Intn(5), seed)
		rs1, err := ResponseTimes(tasks)
		if err != nil {
			return false
		}
		grown := append([]Task(nil), tasks...)
		idx := r.Intn(len(grown))
		grown[idx].C += sim.US(50)
		rs2, err := ResponseTimes(grown)
		if err != nil {
			return false
		}
		for i := range rs1 {
			if rs2[i].WCRT < rs1[i].WCRT {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
