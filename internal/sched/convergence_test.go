package sched

import (
	"testing"

	"autorte/internal/sim"
)

// A task set whose level-i utilization reaches 1 must be reported
// unschedulable with an infinite WCRT — not spin the recurrence or error.
func TestResponseTimesDivergingSet(t *testing.T) {
	tasks := []Task{
		{Name: "hog", C: sim.MS(6), T: sim.MS(10), Priority: 2},
		{Name: "victim", C: sim.MS(5), T: sim.MS(10), Priority: 1},
	}
	rs, err := ResponseTimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	var victim *Result
	for i := range rs {
		if rs[i].Task.Name == "victim" {
			victim = &rs[i]
		}
	}
	if victim == nil {
		t.Fatal("victim missing from results")
	}
	if victim.WCRT != sim.Infinity {
		t.Fatalf("victim WCRT = %v, want Infinity", victim.WCRT)
	}
	if victim.Converged || victim.Schedulable {
		t.Fatalf("victim converged=%v schedulable=%v, want false/false", victim.Converged, victim.Schedulable)
	}
	ok, _, err := Schedulable(tasks)
	if err != nil || ok {
		t.Fatalf("Schedulable = %v, %v; want false, nil", ok, err)
	}
}

// A jitter-heavy set can be under level-i utilization 1 yet blow past the
// busy-period guard (w > 1000·T): the analysis must bail out with
// Converged=false instead of iterating forever.
func TestResponseTimesJitterHeavyBailout(t *testing.T) {
	tasks := []Task{
		{Name: "jittery", C: sim.MS(5), T: sim.MS(10), J: 100 * sim.Second, Priority: 2},
		{Name: "victim", C: sim.MS(1), T: sim.MS(10), Priority: 1},
	}
	rs, err := ResponseTimes(tasks)
	if err != nil {
		t.Fatal(err)
	}
	var victim *Result
	for i := range rs {
		if rs[i].Task.Name == "victim" {
			victim = &rs[i]
		}
	}
	if victim == nil {
		t.Fatal("victim missing from results")
	}
	if victim.Converged {
		t.Fatal("victim reported converged despite busy-period bailout")
	}
	if victim.Schedulable {
		t.Fatal("non-converged task must not be schedulable")
	}
}
