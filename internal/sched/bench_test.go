package sched

import (
	"fmt"
	"testing"

	"autorte/internal/sim"
)

func randomSet(n int, seed uint64) []Task {
	r := sim.NewRand(seed)
	periods := []sim.Duration{sim.MS(5), sim.MS(10), sim.MS(20), sim.MS(50), sim.MS(100)}
	tasks := make([]Task, n)
	for i := range tasks {
		T := periods[r.Intn(len(periods))]
		hi := T / sim.Duration(2*n)
		if hi < sim.US(20) {
			hi = sim.US(20)
		}
		tasks[i] = Task{
			Name: fmt.Sprintf("t%d", i),
			C:    r.Range(sim.US(10), hi),
			T:    T, Priority: n - i,
		}
	}
	return tasks
}

// BenchmarkRTA measures response-time analysis of a 50-task set — the
// inner loop of every verification run.
func BenchmarkRTA(b *testing.B) {
	tasks := randomSet(50, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ResponseTimes(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAudsley measures optimal priority assignment (quadratic in the
// task count, each step an RTA).
func BenchmarkAudsley(b *testing.B) {
	tasks := randomSet(20, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := AssignAudsley(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivity measures the binary-search robustness metric.
func BenchmarkSensitivity(b *testing.B) {
	tasks := randomSet(30, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sensitivity(tasks, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}
