package sched

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"autorte/internal/flight"
	"autorte/internal/obs"
)

// keyBufPool recycles key scratch buffers across lookups so the steady
// state of a verification or DSE loop builds keys with zero allocations.
var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// appendKey serializes the canonical cache key of a task set into buf:
// the tasks are stable-sorted by descending priority — exactly the order
// ResponseTimes analyzes them in, so ties keep their input order and two
// inputs map to the same key if and only if the analysis sees the same
// sequence — and every analysis-relevant field is serialized exactly
// (length-prefixed name plus fixed-width binary fields; no hashing, so
// distinct sets can never collide). The input is not modified.
func appendKey(buf []byte, tasks []Task) []byte {
	// Task sets built by the deployment layers arrive already sorted by
	// descending priority; skip the copy+sort for them.
	byPrio := tasks
	for i := 1; i < len(tasks); i++ {
		if tasks[i-1].Priority < tasks[i].Priority {
			byPrio = append([]Task(nil), tasks...)
			sort.SliceStable(byPrio, func(i, j int) bool { return byPrio[i].Priority > byPrio[j].Priority })
			break
		}
	}
	var w [8]byte
	field := func(v int64) {
		binary.LittleEndian.PutUint64(w[:], uint64(v))
		buf = append(buf, w[:]...)
	}
	for i := range byPrio {
		t := &byPrio[i]
		field(int64(len(t.Name)))
		buf = append(buf, t.Name...)
		field(int64(t.C))
		field(int64(t.T))
		field(int64(t.D))
		field(int64(t.J))
		field(int64(t.B))
		field(int64(t.Priority))
	}
	return buf
}

// Key returns the canonical cache key of a task set (see appendKey).
func Key(tasks []Task) string {
	bp := keyBufPool.Get().(*[]byte)
	buf := appendKey((*bp)[:0], tasks)
	s := string(buf)
	*bp = buf
	keyBufPool.Put(bp)
	return s
}

// entry is one memoized analysis: the per-task results plus the folded
// schedulability verdict, so Check can answer without touching the slice.
type entry struct {
	rs []Result
	ok bool
}

// Cache memoizes ResponseTimes by canonical task-set key. It is safe for
// concurrent use; during design-space exploration most candidate mappings
// leave most ECUs' task sets untouched, so repeated analysis of unchanged
// ECUs becomes a map lookup.
type Cache struct {
	mu     sync.RWMutex
	m      map[string]entry
	flight flight.Group[entry]
	hits   atomic.Uint64
	misses atomic.Uint64
	dedup  atomic.Uint64
}

// NewCache returns an empty response-time cache.
func NewCache() *Cache {
	return &Cache{m: map[string]entry{}}
}

// lookup returns the memoized entry for tasks, computing and storing it on
// a miss. Concurrent misses on the same key coalesce onto one analysis.
// The returned slice is the cache's own — callers must copy before handing
// it out mutably.
func (c *Cache) lookup(tasks []Task) (entry, error) {
	bp := keyBufPool.Get().(*[]byte)
	buf := appendKey((*bp)[:0], tasks)
	c.mu.RLock()
	e, ok := c.m[string(buf)] // map index on converted bytes: no allocation
	c.mu.RUnlock()
	if ok {
		*bp = buf
		keyBufPool.Put(bp)
		c.hits.Add(1)
		return e, nil
	}
	key := string(buf)
	*bp = buf
	keyBufPool.Put(bp)
	e, err, shared := c.flight.Do(key, func() (entry, error) {
		// A racer may have stored the entry between our miss and winning
		// the flight; re-check before analyzing.
		c.mu.RLock()
		e, ok := c.m[key]
		c.mu.RUnlock()
		if ok {
			c.hits.Add(1)
			return e, nil
		}
		c.misses.Add(1)
		rs, err := ResponseTimes(tasks)
		if err != nil {
			// Errors are not cached: they indicate invalid task sets the
			// caller should not be retrying anyway.
			return entry{}, err
		}
		e = entry{rs: rs, ok: true}
		for _, r := range rs {
			if !r.Schedulable {
				e.ok = false
				break
			}
		}
		c.mu.Lock()
		c.m[key] = e
		c.mu.Unlock()
		return e, nil
	})
	if shared {
		c.dedup.Add(1)
	}
	return e, err
}

// ResponseTimes is the memoized equivalent of the package function. The
// returned slice is a fresh copy on every call (Result holds no pointers),
// so callers may mutate it freely. A nil receiver degrades to the direct
// analysis.
func (c *Cache) ResponseTimes(tasks []Task) ([]Result, error) {
	if c == nil {
		return ResponseTimes(tasks)
	}
	e, err := c.lookup(tasks)
	if err != nil {
		return nil, err
	}
	return append([]Result(nil), e.rs...), nil
}

// ResponseTimesShared is ResponseTimes without the defensive copy: the
// returned slice is the cache's own and MUST be treated as read-only.
// The verification pipeline's hot paths (per-ECU verdicts, chain-stage
// bounds) only read results, so they skip the per-hit copy.
func (c *Cache) ResponseTimesShared(tasks []Task) ([]Result, error) {
	if c == nil {
		return ResponseTimes(tasks)
	}
	e, err := c.lookup(tasks)
	if err != nil {
		return nil, err
	}
	return e.rs, nil
}

// Schedulable is the memoized equivalent of the package function.
func (c *Cache) Schedulable(tasks []Task) (bool, []Result, error) {
	if c == nil {
		rs, err := ResponseTimes(tasks)
		if err != nil {
			return false, nil, err
		}
		for _, r := range rs {
			if !r.Schedulable {
				return false, rs, nil
			}
		}
		return true, rs, nil
	}
	e, err := c.lookup(tasks)
	if err != nil {
		return false, nil, err
	}
	return e.ok, append([]Result(nil), e.rs...), nil
}

// SchedulableShared is Schedulable without the defensive copy: the
// returned slice is the cache's own and MUST be treated as read-only.
func (c *Cache) SchedulableShared(tasks []Task) (bool, []Result, error) {
	if c == nil {
		return Schedulable(tasks)
	}
	e, err := c.lookup(tasks)
	if err != nil {
		return false, nil, err
	}
	return e.ok, e.rs, nil
}

// Check answers only the schedulability verdict, skipping the per-call
// result copy — the hot shape in design-space exploration, where the
// search cares about feasibility and discards the response times.
func (c *Cache) Check(tasks []Task) (bool, error) {
	if c == nil {
		rs, err := ResponseTimes(tasks)
		if err != nil {
			return false, err
		}
		for _, r := range rs {
			if !r.Schedulable {
				return false, nil
			}
		}
		return true, nil
	}
	e, err := c.lookup(tasks)
	if err != nil {
		return false, err
	}
	return e.ok, nil
}

// Stats reports lookup hits and misses since creation.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of distinct task sets cached.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Observe registers the cache's hit/miss/size series into a registry
// under the shared cache metric names, labeled cache="rta". Safe on a
// nil receiver (registers nothing).
func (c *Cache) Observe(reg *obs.Registry) {
	if c == nil {
		return
	}
	label := obs.Label{Key: "cache", Value: "rta"}
	reg.CounterFunc("analysis_cache_hits_total", "Memoized analysis lookups served from cache.", c.hits.Load, label)
	reg.CounterFunc("analysis_cache_misses_total", "Memoized analysis lookups that ran the analysis.", c.misses.Load, label)
	reg.CounterFunc("analysis_cache_dedup_total", "Memoized analysis lookups coalesced onto a concurrent identical computation.", c.dedup.Load, label)
	reg.GaugeFunc("analysis_cache_entries", "Distinct problems held by the analysis cache.", func() float64 { return float64(c.Len()) }, label)
}
