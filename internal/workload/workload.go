// Package workload generates synthetic but structurally realistic
// automotive systems: task sets via UUniFast, period classes from the
// automotive literature (1–1000 ms), and whole-vehicle models with the
// four distributed application subsystems (DASes) §4 names — power-train,
// chassis, body/comfort and telematics — each a set of SWCs with
// sensor→controller→actuator chains.
package workload

import (
	"fmt"
	"math"

	"autorte/internal/model"
	"autorte/internal/sim"
)

// AutomotivePeriods are the canonical period classes (Kramer et al.'s
// distribution simplified): fast chassis loops to slow body functions.
var AutomotivePeriods = []sim.Duration{
	sim.MS(1), sim.MS(2), sim.MS(5), sim.MS(10), sim.MS(20),
	sim.MS(50), sim.MS(100), sim.MS(200), sim.MS(1000),
}

// UUniFast splits total utilization u into n unbiased shares.
func UUniFast(n int, u float64, r *sim.Rand) []float64 {
	out := make([]float64, n)
	sum := u
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(r.Float64(), 1/float64(n-i-1))
		out[i] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}

// DASSpec parameterizes one subsystem's generation.
type DASSpec struct {
	Name string
	// Supplier owning the subsystem's components.
	Supplier string
	// Chains is the number of sensor→controller→actuator chains.
	Chains int
	// Utilization is the total CPU demand across all runnables.
	Utilization float64
	// ASIL applies to every component.
	ASIL model.ASIL
	// PeriodClasses restricts the candidate periods (defaults to all).
	PeriodClasses []sim.Duration
	// MemoryKB per component (default 16).
	MemoryKB int
}

// GenerateDAS creates the components, interfaces and connectors of one
// subsystem. Component names are prefixed with the DAS name.
func GenerateDAS(spec DASSpec, r *sim.Rand) ([]*model.SWC, []*model.PortInterface, []model.Connector, error) {
	if spec.Chains < 1 {
		return nil, nil, nil, fmt.Errorf("workload: DAS %s: need at least one chain", spec.Name)
	}
	if spec.Utilization <= 0 || spec.Utilization >= float64(spec.Chains)*3 {
		return nil, nil, nil, fmt.Errorf("workload: DAS %s: utilization %g unreasonable", spec.Name, spec.Utilization)
	}
	periods := spec.PeriodClasses
	if len(periods) == 0 {
		periods = AutomotivePeriods
	}
	mem := spec.MemoryKB
	if mem == 0 {
		mem = 16
	}
	var comps []*model.SWC
	var ifaces []*model.PortInterface
	var conns []model.Connector
	// Each chain gets an equal utilization share, split 20/60/20 over
	// sensor, controller, actuator.
	uChain := spec.Utilization / float64(spec.Chains)
	for c := 0; c < spec.Chains; c++ {
		base := fmt.Sprintf("%s_c%d", spec.Name, c)
		period := periods[r.Intn(len(periods))]
		ifS := &model.PortInterface{
			Name: base + "_IfS", Kind: model.SenderReceiver,
			Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
		}
		ifA := &model.PortInterface{
			Name: base + "_IfA", Kind: model.SenderReceiver,
			Elements: []model.DataElement{{Name: "u", Type: model.UInt16}},
		}
		ifaces = append(ifaces, ifS, ifA)
		wcet := func(share float64) sim.Duration {
			w := sim.Duration(share * float64(period))
			if w < sim.US(1) {
				w = sim.US(1)
			}
			return w
		}
		sensor := &model.SWC{
			Name: base + "_sensor", Supplier: spec.Supplier, DAS: spec.Name, ASIL: spec.ASIL, MemoryKB: mem,
			Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifS}},
			Runnables: []model.Runnable{{
				Name: "sample", WCETNominal: wcet(uChain * 0.2),
				Trigger: model.Trigger{Kind: model.TimingEvent, Period: period},
				Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
			}},
		}
		ctrl := &model.SWC{
			Name: base + "_ctrl", Supplier: spec.Supplier, DAS: spec.Name, ASIL: spec.ASIL, MemoryKB: 2 * mem,
			Ports: []model.Port{
				{Name: "in", Direction: model.Required, Interface: ifS},
				{Name: "cmd", Direction: model.Provided, Interface: ifA},
			},
			Runnables: []model.Runnable{{
				// The controller is modelled as a periodic sampler at the
				// chain period (time-triggered control law).
				Name: "law", WCETNominal: wcet(uChain * 0.6),
				Trigger: model.Trigger{Kind: model.TimingEvent, Period: period, Offset: period / 4},
				Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
				Writes:  []model.PortRef{{Port: "cmd", Elem: "u"}},
			}},
		}
		act := &model.SWC{
			Name: base + "_act", Supplier: spec.Supplier, DAS: spec.Name, ASIL: spec.ASIL, MemoryKB: mem,
			Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifA}},
			Runnables: []model.Runnable{{
				Name: "apply", WCETNominal: wcet(uChain * 0.2),
				Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "u"},
				Reads:   []model.PortRef{{Port: "in", Elem: "u"}},
			}},
		}
		comps = append(comps, sensor, ctrl, act)
		conns = append(conns,
			model.Connector{FromSWC: sensor.Name, FromPort: "out", ToSWC: ctrl.Name, ToPort: "in"},
			model.Connector{FromSWC: ctrl.Name, FromPort: "cmd", ToSWC: act.Name, ToPort: "in"},
		)
	}
	return comps, ifaces, conns, nil
}

// VehicleSpec parameterizes a whole federated vehicle.
type VehicleSpec struct {
	// DASes to generate; zero value gets the canonical four.
	DASes []DASSpec
	// ECUsPerDAS is the federated ECU count per subsystem (default 3).
	ECUsPerDAS int
	// ECUSpeed scales all ECUs (default 1).
	ECUSpeed float64
	// BusKind is the vehicle backbone (default CAN at 500k).
	BusKind model.BusKind
	// CrossDASLinks adds inter-subsystem signal flows (e.g. a chassis
	// wheel-speed feeding the power-train controller): link i connects
	// DAS[i]'s first sensor to DAS[i+1]'s first controller. Cross-domain
	// traffic is what makes consolidation and bus planning interesting.
	CrossDASLinks int
	// ChainConstraints attaches one end-to-end latency constraint per
	// generated sensor→controller→actuator chain (budget: four chain
	// periods — three hops plus the controller's sampling delay — which
	// holistic analysis meets on a healthy deployment). Off by default so
	// existing callers see no chains.
	ChainConstraints bool
	// BusBitRate overrides the backbone bit rate (default 500 kbit/s).
	// Large vehicles with chain verification enabled need headroom, since
	// every remote connector element becomes a periodic frame.
	BusBitRate int64
}

// DefaultDASes returns the canonical four-subsystem vehicle load.
func DefaultDASes() []DASSpec {
	return []DASSpec{
		{Name: "powertrain", Supplier: "tierP", Chains: 4, Utilization: 0.8, ASIL: model.ASILC,
			PeriodClasses: []sim.Duration{sim.MS(5), sim.MS(10), sim.MS(20)}},
		{Name: "chassis", Supplier: "tierC", Chains: 4, Utilization: 0.9, ASIL: model.ASILD,
			PeriodClasses: []sim.Duration{sim.MS(2), sim.MS(5), sim.MS(10)}},
		{Name: "body", Supplier: "tierB", Chains: 3, Utilization: 0.4, ASIL: model.ASILA,
			PeriodClasses: []sim.Duration{sim.MS(50), sim.MS(100), sim.MS(200)}},
		{Name: "telematics", Supplier: "tierT", Chains: 2, Utilization: 0.5, ASIL: model.QM,
			PeriodClasses: []sim.Duration{sim.MS(100), sim.MS(200), sim.MS(1000)}},
	}
}

// GenerateVehicle builds a federated vehicle: each DAS on its own ECUs
// (one chain component group per ECU, round-robin), all ECUs on one
// backbone bus, mapped federated-style. The result validates and is ready
// for rte.Build or deploy consolidation.
func GenerateVehicle(spec VehicleSpec, r *sim.Rand) (*model.System, error) {
	dases := spec.DASes
	if len(dases) == 0 {
		dases = DefaultDASes()
	}
	perDAS := spec.ECUsPerDAS
	if perDAS == 0 {
		perDAS = 3
	}
	speed := spec.ECUSpeed
	if speed == 0 {
		speed = 1
	}
	bitRate := spec.BusBitRate
	if bitRate == 0 {
		bitRate = 500_000
	}
	busName := "backbone"
	sys := &model.System{
		Name:    "vehicle",
		Buses:   []*model.Bus{{Name: busName, Kind: spec.BusKind, BitRate: bitRate}},
		Mapping: map[string]string{},
	}
	ecuIdx := 0
	for _, das := range dases {
		comps, ifaces, conns, err := GenerateDAS(das, r)
		if err != nil {
			return nil, err
		}
		sys.Components = append(sys.Components, comps...)
		sys.Interfaces = append(sys.Interfaces, ifaces...)
		sys.Connectors = append(sys.Connectors, conns...)
		// Federated: this DAS owns perDAS ECUs, positioned in a cluster.
		var names []string
		for i := 0; i < perDAS; i++ {
			name := fmt.Sprintf("ecu_%s_%d", das.Name, i)
			sys.ECUs = append(sys.ECUs, &model.ECU{
				Name: name, Speed: speed, MemoryKB: 512,
				Buses:   []string{busName},
				MaxASIL: model.ASILD,
				Position: [2]float64{
					float64(ecuIdx%4) + r.Float64(),
					float64(ecuIdx/4) + r.Float64(),
				},
			})
			names = append(names, name)
			ecuIdx++
		}
		for i, c := range comps {
			sys.Mapping[c.Name] = names[i%len(names)]
		}
		if spec.ChainConstraints {
			for c := 0; c < das.Chains; c++ {
				base := fmt.Sprintf("%s_c%d", das.Name, c)
				period := comps[c*3].Runnables[0].Trigger.Period
				sys.Constraints = append(sys.Constraints, model.LatencyConstraint{
					Name:   base + "_e2e",
					Budget: 4 * period,
					Chain: []model.PortRef2{
						{SWC: base + "_sensor", Port: "out"},
						{SWC: base + "_ctrl", Port: "in"},
						{SWC: base + "_ctrl", Port: "cmd"},
						{SWC: base + "_act", Port: "in"},
					},
				})
			}
		}
	}
	if spec.CrossDASLinks > len(dases)-1 {
		return nil, fmt.Errorf("workload: %d cross-DAS links need at least %d subsystems", spec.CrossDASLinks, spec.CrossDASLinks+1)
	}
	for i := 0; i < spec.CrossDASLinks; i++ {
		src := fmt.Sprintf("%s_c0_sensor", dases[i].Name)
		dst := fmt.Sprintf("%s_c0_ctrl", dases[i+1].Name)
		consumer := sys.Component(dst)
		producer := sys.Component(src)
		if consumer == nil || producer == nil {
			return nil, fmt.Errorf("workload: cross link endpoints missing (%s -> %s)", src, dst)
		}
		// The consumer grows an extra required port compatible with the
		// producer's interface, read by its control law.
		consumer.Ports = append(consumer.Ports, model.Port{
			Name: "xin", Direction: model.Required, Interface: producer.Ports[0].Interface,
		})
		consumer.Runnables[0].Reads = append(consumer.Runnables[0].Reads,
			model.PortRef{Port: "xin", Elem: "v"})
		sys.Connectors = append(sys.Connectors, model.Connector{
			FromSWC: src, FromPort: "out", ToSWC: dst, ToPort: "xin",
		})
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated vehicle invalid: %w", err)
	}
	return sys, nil
}
