package workload

import (
	"math"
	"testing"
	"testing/quick"

	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/vfb"
)

func TestUUniFastSumsAndBounds(t *testing.T) {
	f := func(seed uint64, nRaw, uRaw uint8) bool {
		n := int(nRaw%20) + 1
		u := 0.1 + float64(uRaw%80)/100
		shares := UUniFast(n, u, sim.NewRand(seed))
		sum := 0.0
		for _, s := range shares {
			if s < 0 || s > u+1e-9 {
				return false
			}
			sum += s
		}
		return math.Abs(sum-u) < 1e-9 && len(shares) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerateDAS(t *testing.T) {
	r := sim.NewRand(1)
	comps, ifaces, conns, err := GenerateDAS(DASSpec{
		Name: "chassis", Supplier: "tierC", Chains: 3, Utilization: 0.6, ASIL: model.ASILD,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 9 || len(conns) != 6 || len(ifaces) != 6 {
		t.Fatalf("counts: %d comps %d conns %d ifaces, want 9/6/6", len(comps), len(conns), len(ifaces))
	}
	// All components valid and carrying metadata.
	totalU := 0.0
	for _, c := range comps {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.Supplier != "tierC" || c.DAS != "chassis" || c.ASIL != model.ASILD {
			t.Fatalf("metadata lost on %s", c.Name)
		}
		totalU += c.Utilization()
	}
	// Actuators are event-triggered so periodic utilization is below the
	// spec, but the periodic part must be positive and below the total.
	if totalU <= 0 || totalU > 0.6 {
		t.Fatalf("periodic utilization %v outside (0, 0.6]", totalU)
	}
}

func TestGenerateDASValidation(t *testing.T) {
	r := sim.NewRand(1)
	if _, _, _, err := GenerateDAS(DASSpec{Name: "x", Chains: 0, Utilization: 0.5}, r); err == nil {
		t.Fatal("zero chains accepted")
	}
	if _, _, _, err := GenerateDAS(DASSpec{Name: "x", Chains: 1, Utilization: 0}, r); err == nil {
		t.Fatal("zero utilization accepted")
	}
}

func TestGenerateVehicleValidatesAndResolves(t *testing.T) {
	sys, err := GenerateVehicle(VehicleSpec{}, sim.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	// Canonical: 4 DASes x 3 ECUs = 12 ECUs, (4+4+3+2)*3 = 39 SWCs.
	if len(sys.ECUs) != 12 {
		t.Fatalf("ECUs = %d, want 12", len(sys.ECUs))
	}
	if len(sys.Components) != 39 {
		t.Fatalf("components = %d, want 39", len(sys.Components))
	}
	if err := vfb.CheckConnectivity(sys); err != nil {
		t.Fatal(err)
	}
	if _, err := vfb.Resolve(sys); err != nil {
		t.Fatal(err)
	}
	if len(sys.UsedECUs()) != 12 {
		t.Fatalf("federated mapping uses %d ECUs, want all 12", len(sys.UsedECUs()))
	}
}

func TestGeneratedVehicleRunsOnRTE(t *testing.T) {
	sys, err := GenerateVehicle(VehicleSpec{}, sim.NewRand(99))
	if err != nil {
		t.Fatal(err)
	}
	p := rte.MustBuild(sys, rte.Options{})
	p.Run(sim.MS(100))
	// Every actuator chain must have fired at least once.
	fired := 0
	for _, c := range sys.Components {
		if c.Runnables[0].Trigger.Kind == model.DataReceivedEvent {
			if p.Stats(c.Name+"."+c.Runnables[0].Name).N > 0 {
				fired++
			}
		}
	}
	if fired == 0 {
		t.Fatal("no actuator fired on generated vehicle")
	}
}

func TestGenerateVehicleDeterministic(t *testing.T) {
	a, err := GenerateVehicle(VehicleSpec{}, sim.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenerateVehicle(VehicleSpec{}, sim.NewRand(5))
	if len(a.Components) != len(b.Components) {
		t.Fatal("non-deterministic component count")
	}
	for i := range a.Components {
		ra, rb := a.Components[i].Runnables[0], b.Components[i].Runnables[0]
		if ra.WCETNominal != rb.WCETNominal || ra.Trigger.Period != rb.Trigger.Period {
			t.Fatalf("component %d differs across same-seed generations", i)
		}
	}
}

func TestGenerateVehicleCrossDASLinks(t *testing.T) {
	sys, err := GenerateVehicle(VehicleSpec{CrossDASLinks: 3}, sim.NewRand(21))
	if err != nil {
		t.Fatal(err)
	}
	// 6 base connectors per DAS region (2 per chain x chains) plus 3 cross.
	cross := 0
	for _, c := range sys.Connectors {
		if c.ToPort == "xin" {
			cross++
		}
	}
	if cross != 3 {
		t.Fatalf("cross connectors = %d, want 3", cross)
	}
	if err := vfb.CheckConnectivity(sys); err != nil {
		t.Fatal(err)
	}
	// Cross traffic flows on the backbone and the system still runs.
	p := rte.MustBuild(sys, rte.Options{})
	p.Run(sim.MS(100))
	seen := false
	for _, r := range p.Routes() {
		if r.Conn.ToPort == "xin" && !r.Local {
			seen = true
		}
	}
	if !seen {
		t.Fatal("cross-DAS route not remote in federated mapping")
	}
	if _, err := GenerateVehicle(VehicleSpec{CrossDASLinks: 9}, sim.NewRand(1)); err == nil {
		t.Fatal("too many cross links accepted")
	}
}
