package health

import "autorte/internal/rte"

// DebounceConfig tunes counter-based error qualification, the DEM
// fault-detection-counter pattern: each raw report bumps a per-(source,
// kind) counter by Inc, each clean supervision window decays it by Dec,
// and the fault qualifies once the counter reaches Threshold. Transient
// glitches decay away before qualifying; persistent faults cross the
// threshold and trigger recovery.
type DebounceConfig struct {
	// Inc is added to the counter per raw error report (default 2).
	Inc int
	// Dec is subtracted per clean supervision window (default 1).
	Dec int
	// Threshold qualifies the fault when the counter reaches it
	// (default 2: a single report qualifies; raise it to require
	// persistence).
	Threshold int
}

func (c DebounceConfig) fill() DebounceConfig {
	if c.Inc <= 0 {
		c.Inc = 2
	}
	if c.Dec <= 0 {
		c.Dec = 1
	}
	if c.Threshold <= 0 {
		c.Threshold = 2
	}
	return c
}

// debounceKey identifies one monitored fault: reports are debounced per
// (source, kind), so an intermittent comm glitch cannot piggy-back on a
// sensor fault's counter.
type debounceKey struct {
	source string
	kind   rte.ErrorKind
}

// debouncer holds the fault detection counters of one supervised
// partition.
type debouncer struct {
	cfg      DebounceConfig
	counters map[debounceKey]int
	// qualified latches per key once the threshold is crossed, so a
	// sustained fault qualifies exactly once per episode.
	qualified map[debounceKey]bool
}

func newDebouncer(cfg DebounceConfig) *debouncer {
	return &debouncer{
		cfg:       cfg.fill(),
		counters:  map[debounceKey]int{},
		qualified: map[debounceKey]bool{},
	}
}

// fail records one raw error report and reports whether this report
// qualified the fault (crossed the threshold for the first time this
// episode).
func (d *debouncer) fail(source string, kind rte.ErrorKind) bool {
	k := debounceKey{source, kind}
	c := d.counters[k] + d.cfg.Inc
	if c > d.cfg.Threshold {
		c = d.cfg.Threshold // saturate so healing time is bounded
	}
	d.counters[k] = c
	if c >= d.cfg.Threshold && !d.qualified[k] {
		d.qualified[k] = true
		return true
	}
	return false
}

// pass records one clean supervision window: every counter decays by Dec
// and keys that reach zero heal (their qualification latch re-arms).
func (d *debouncer) pass() {
	for k, c := range d.counters {
		c -= d.cfg.Dec
		if c <= 0 {
			delete(d.counters, k)
			delete(d.qualified, k)
			continue
		}
		d.counters[k] = c
	}
}

// clear reports whether every counter has decayed to zero.
func (d *debouncer) clear() bool { return len(d.counters) == 0 }

// reset drops all counters and qualification latches.
func (d *debouncer) reset() {
	d.counters = map[debounceKey]int{}
	d.qualified = map[debounceKey]bool{}
}
