package health

import (
	"fmt"
	"strings"
	"testing"

	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// testSystem: Sensor -> Ctrl critical chain plus a sheddable Comfort
// runnable and mode-switch handlers, all on one ECU.
func testSystem() *model.System {
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	return &model.System{
		Name:       "health",
		Interfaces: []*model.PortInterface{ifV},
		Components: []*model.SWC{
			{
				Name:  "Sensor",
				Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "sample", WCETNominal: sim.US(50),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
					Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
				}},
			},
			{
				Name:  "Ctrl",
				Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "step", WCETNominal: sim.US(50),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10), Offset: sim.MS(5)},
					Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
				}},
			},
			{
				Name: "Comfort",
				Runnables: []model.Runnable{{
					Name: "blink", WCETNominal: sim.US(100),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(20)},
				}},
			},
			{
				Name: "Diag",
				Runnables: []model.Runnable{
					{
						Name: "onRecovery", WCETNominal: sim.US(10),
						Trigger: model.Trigger{Kind: model.ModeSwitchEvent, Mode: "recovery"},
					},
					{
						Name: "onLimp", WCETNominal: sim.US(10),
						Trigger: model.Trigger{Kind: model.ModeSwitchEvent, Mode: "limp-home"},
					},
				},
			},
		},
		ECUs:       []*model.ECU{{Name: "e1", Speed: 1}},
		Connectors: []model.Connector{{FromSWC: "Sensor", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"}},
		Mapping:    map[string]string{"Sensor": "e1", "Ctrl": "e1", "Comfort": "e1", "Diag": "e1"},
	}
}

func reportAt(p *rte.Platform, at sim.Time, source string, kind rte.ErrorKind) {
	p.K.At(at, func() { p.Errors.Report(source, kind, "test") })
}

func TestDebounceQualifiesExactlyAtThreshold(t *testing.T) {
	// Inc 1, Threshold 3: the third report inside one decay window
	// qualifies; two reports never do.
	for _, tc := range []struct {
		reports  int
		episodes int64
	}{{2, 0}, {3, 1}} {
		p := rte.MustBuild(testSystem(), rte.Options{})
		m := NewMonitor(p, MonitorOptions{})
		m.MustProtect("Sensor", Policy{Debounce: DebounceConfig{Inc: 1, Dec: 1, Threshold: 3}})
		for i := 0; i < tc.reports; i++ {
			reportAt(p, sim.MS(1)+sim.Time(i)*sim.Time(sim.MS(1)), "Sensor", rte.ErrSensor)
		}
		p.Run(sim.MS(9)) // stop before decay windows for the edge check
		st := m.Status()[0]
		if st.Episodes != tc.episodes {
			t.Fatalf("%d reports -> %d episodes, want %d", tc.reports, st.Episodes, tc.episodes)
		}
		if tc.episodes == 0 && st.State != Qualifying {
			t.Fatalf("%d reports -> state %v, want qualifying", tc.reports, st.State)
		}
	}
}

func TestDebounceDecayDefeatsSpreadOutGlitches(t *testing.T) {
	p := rte.MustBuild(testSystem(), rte.Options{})
	m := NewMonitor(p, MonitorOptions{})
	m.MustProtect("Sensor", Policy{Debounce: DebounceConfig{Inc: 1, Dec: 1, Threshold: 3}})
	// One glitch every 25ms: the counter decays to zero between them.
	for _, at := range []sim.Time{sim.MS(1), sim.MS(26), sim.MS(51), sim.MS(76)} {
		reportAt(p, at, "Sensor", rte.ErrSensor)
	}
	p.Run(sim.MS(150))
	st := m.Status()[0]
	if st.Episodes != 0 {
		t.Fatalf("spread-out glitches qualified: %+v", st)
	}
	if st.State != Healthy {
		t.Fatalf("final state %v, want healthy (counters decayed)", st.State)
	}
}

func TestQualifiedEpisodeHealsAfterQuietPeriod(t *testing.T) {
	p := rte.MustBuild(testSystem(), rte.Options{})
	m := NewMonitor(p, MonitorOptions{})
	m.MustProtect("Sensor", Policy{HealAfter: sim.MS(50)})
	reportAt(p, sim.MS(1), "Sensor", rte.ErrSensor) // default threshold: qualifies at once
	p.Run(sim.MS(200))
	st := m.Status()[0]
	if st.Episodes != 1 || st.State != Healthy {
		t.Fatalf("status %+v, want 1 healed episode", st)
	}
	if got := p.Metrics.Counter("health_recoveries_total", "",
		obs.Label{Key: "swc", Value: "Sensor"}).Value(); got != 1 {
		t.Fatalf("health_recoveries_total = %d, want 1", got)
	}
	// Qualification triggered the notify rung, which runs the subscribed
	// recovery handler.
	if p.Trace.Count(trace.Finish, "Diag.onRecovery") == 0 {
		t.Fatal("recovery-mode handler never ran")
	}
}

// faultySensor reports a sensor error on every job — a persistent fault
// no recovery action can cure, so the ladder must climb to safe-stop.
func faultySensor(c *rte.Context) {
	c.Write("out", "v", 1)
	c.Report(rte.ErrSensor, "persistent fault")
}

func ladderScenario(t *testing.T) (*rte.Platform, *Monitor) {
	t.Helper()
	p := rte.MustBuild(testSystem(), rte.Options{})
	if err := p.SetBehavior("Sensor", "sample", faultySensor); err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(p, MonitorOptions{})
	m.MustProtect("Sensor", Policy{
		MaxAttempts: 1, Cooldown: sim.MS(5),
		ResetDowntime: sim.MS(20), HealAfter: sim.MS(100),
	})
	return p, m
}

func TestEscalationLadderClimbsToSafeStop(t *testing.T) {
	p, m := ladderScenario(t)
	p.Run(sim.MS(500))
	st := m.Status()[0]
	if st.State != SafeStopped {
		t.Fatalf("final state %v, want safe-stopped (status %+v)", st.State, st)
	}
	for _, rung := range []Rung{RungNotify, RungRestartRunnable, RungRestartPartition, RungECUReset, RungSafeStop} {
		if got := p.Metrics.Counter("health_escalations_total", "",
			obs.Label{Key: "rung", Value: rung.String()}).Value(); got == 0 {
			t.Fatalf("rung %v never attempted", rung)
		}
	}
	// Safe-stopped partition sheds all further activations: the last trace
	// records of the sensor task are drops, not finishes.
	if p.RunnableEnabled("Sensor", "sample") {
		t.Fatal("safe-stopped runnable still enabled")
	}
	var lastFinish, lastDrop sim.Time
	for _, rec := range p.Trace.BySource("Sensor.sample") {
		switch rec.Kind {
		case trace.Finish:
			lastFinish = rec.At
		case trace.Drop:
			lastDrop = rec.At
		default:
		}
	}
	if lastDrop <= lastFinish {
		t.Fatalf("no drops after the last finish (finish %v, drop %v)", lastFinish, lastDrop)
	}
}

func TestEscalationLadderIsDeterministic(t *testing.T) {
	// Same scenario twice: the full recovery trace must be identical.
	run := func() []string {
		p, _ := ladderScenario(t)
		p.Run(sim.MS(500))
		var out []string
		for _, rec := range p.Trace.Records {
			if rec.Kind == trace.Recover {
				out = append(out, fmt.Sprintf("%d %s %s", int64(rec.At), rec.Source, rec.Info))
			}
		}
		out = append(out, fmt.Sprintf("errors=%d", p.Errors.Total()))
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("recovery traces differ in length: %d vs %d\n%v\n%v", len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recovery traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDeadlineSupervisionQualifies(t *testing.T) {
	sys := testSystem()
	// Sensor cannot make its deadline: every job misses.
	sys.Components[0].Runnables[0].WCETNominal = sim.MS(2)
	sys.Components[0].Runnables[0].Deadline = sim.MS(1)
	p := rte.MustBuild(sys, rte.Options{})
	m := NewMonitor(p, MonitorOptions{})
	m.MustProtect("Sensor", Policy{Debounce: DebounceConfig{Inc: 1, Dec: 1, Threshold: 3}})
	p.Run(sim.MS(200))
	if got := p.Errors.CountKind(rte.ErrTiming); got < 3 {
		t.Fatalf("deadline supervision reported %d timing errors, want >= 3", got)
	}
	st := m.Status()[0]
	if st.Episodes == 0 || st.Attempts == 0 {
		t.Fatalf("sustained deadline misses never qualified: %+v", st)
	}
	// The first qualification needs Threshold windows of misses.
	recs := p.Errors.Records()
	if len(recs) == 0 || sim.Time(recs[0].At) < sim.MS(10) {
		t.Fatalf("first report suspiciously early: %+v", recs[0])
	}
}

func TestFlowSupervisionDetectsIllegalWalk(t *testing.T) {
	p := rte.MustBuild(testSystem(), rte.Options{})
	m := NewMonitor(p, MonitorOptions{})
	m.MustProtect("Ctrl", Policy{DisableDeadlineSupervision: true})
	if err := m.SuperviseFlow("Ctrl", "step", FlowGraph{
		Initial: 1, Final: 3,
		Next: map[int][]int{1: {2}, 2: {3}},
	}); err != nil {
		t.Fatal(err)
	}
	skipFrom := sim.MS(100)
	if err := p.SetBehavior("Ctrl", "step", func(c *rte.Context) {
		m.Checkpoint(c, 1)
		if c.Now() < skipFrom {
			m.Checkpoint(c, 2) // healthy walk: 1 -> 2 -> 3
		}
		m.Checkpoint(c, 3) // corrupted walk skips checkpoint 2
	}); err != nil {
		t.Fatal(err)
	}
	p.Run(sim.MS(200))
	flows := p.Errors.CountKind(rte.ErrFlow)
	if flows == 0 {
		t.Fatal("illegal flow never detected")
	}
	// Healthy phase must be violation-free.
	for _, rec := range p.Errors.Records() {
		if rec.Kind == rte.ErrFlow && sim.Time(rec.At) < skipFrom {
			t.Fatalf("flow violation during healthy phase: %+v", rec)
		}
	}
	if st := m.Status()[0]; st.Episodes == 0 {
		t.Fatalf("flow violations never qualified: %+v", st)
	}
}

func countInWindow(p *rte.Platform, source string, kind trace.Kind, from, to sim.Time) int {
	n := 0
	for _, rec := range p.Trace.BySource(source) {
		if rec.Kind == kind && rec.At > from && rec.At <= to {
			n++
		}
	}
	return n
}

func TestLimpHomeKeepsCriticalChainShedsComfort(t *testing.T) {
	p := rte.MustBuild(testSystem(), rte.Options{})
	d := MustDegradation(p, map[Level][]string{
		LimpHome: {"Sensor.sample", "Ctrl.step"},
	})
	var limpRan int
	if err := p.SetBehavior("Diag", "onLimp", func(c *rte.Context) { limpRan++ }); err != nil {
		t.Fatal(err)
	}
	p.K.At(sim.MS(50), func() { d.To(LimpHome) })
	p.K.At(sim.MS(100), func() { d.To(Normal) })
	p.Run(sim.MS(150))

	// Critical chain alive through limp-home: every 10ms job finishes.
	if got := countInWindow(p, "Sensor.sample", trace.Finish, sim.MS(50), sim.MS(100)); got != 5 {
		t.Fatalf("critical Sensor.sample finished %d jobs in limp-home, want 5", got)
	}
	if got := countInWindow(p, "Ctrl.step", trace.Finish, sim.MS(50), sim.MS(100)); got != 5 {
		t.Fatalf("critical Ctrl.step finished %d jobs in limp-home, want 5", got)
	}
	// Shed runnable provably inactive: zero finishes, auditable drops.
	if got := countInWindow(p, "Comfort.blink", trace.Finish, sim.MS(50), sim.MS(100)); got != 0 {
		t.Fatalf("shed Comfort.blink finished %d jobs during limp-home", got)
	}
	if got := countInWindow(p, "Comfort.blink", trace.Drop, sim.MS(50), sim.MS(100)); got < 2 {
		t.Fatalf("shed Comfort.blink left %d drop records, want >= 2", got)
	}
	// Back to normal: comfort resumes.
	if got := countInWindow(p, "Comfort.blink", trace.Finish, sim.MS(100), sim.MS(150)); got < 2 {
		t.Fatalf("Comfort.blink did not resume after normal: %d finishes", got)
	}
	if limpRan == 0 {
		t.Fatal("limp-home mode handler never ran")
	}
	if d.Level() != Normal {
		t.Fatalf("final level %v, want normal", d.Level())
	}
}

func TestEscalationDrivesDegradationLevels(t *testing.T) {
	p := rte.MustBuild(testSystem(), rte.Options{})
	// The faulty Sensor stays in every keep-set: limp-home keeps the
	// critical chain (including its failing head) alive and escalating;
	// only safe-stop finally sheds it. Shedding a partition also silences
	// its errors, so a keep-set that drops the faulty component would heal
	// and oscillate instead of escalating.
	d := MustDegradation(p, map[Level][]string{
		Degraded: {"Sensor.sample", "Ctrl.step", "Comfort.blink"},
		LimpHome: {"Sensor.sample", "Ctrl.step"},
	})
	var transitions []string
	d.OnChange = func(from, to Level) {
		transitions = append(transitions, from.String()+">"+to.String())
	}
	if err := p.SetBehavior("Sensor", "sample", faultySensor); err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(p, MonitorOptions{Degradation: d})
	m.MustProtect("Sensor", Policy{
		MaxAttempts: 1, Cooldown: sim.MS(5),
		ResetDowntime: sim.MS(20), HealAfter: sim.MS(100),
	})
	p.Run(sim.MS(500))
	if d.Level() != SafeStop {
		t.Fatalf("final level %v, want safe-stop", d.Level())
	}
	want := []string{"normal>degraded", "degraded>limp-home", "limp-home>safe-stop"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestProtectValidation(t *testing.T) {
	p := rte.MustBuild(testSystem(), rte.Options{})
	m := NewMonitor(p, MonitorOptions{})
	if err := m.Protect("Nope", Policy{}); err == nil {
		t.Fatal("unknown component accepted")
	}
	if err := m.Protect("Sensor", Policy{Runnable: "nope"}); err == nil {
		t.Fatal("unknown runnable accepted")
	}
	if err := m.Protect("Sensor", Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect("Sensor", Policy{}); err == nil {
		t.Fatal("double protect accepted")
	}
	if err := m.SuperviseFlow("Ctrl", "step", FlowGraph{}); err == nil {
		t.Fatal("flow supervision on unprotected component accepted")
	}
}

// With several bad keep-sets, NewDegradation must report the same error
// on every run: the lowest bad level wins, not map iteration order.
func TestNewDegradationDeterministicError(t *testing.T) {
	first := ""
	for i := 0; i < 10; i++ {
		p := rte.MustBuild(testSystem(), rte.Options{})
		_, err := NewDegradation(p, map[Level][]string{
			Degraded: {"Ghost.a"},
			LimpHome: {"Ghost.b"},
			SafeStop: {"Ghost.c"},
		})
		if err == nil {
			t.Fatal("unknown runnables accepted")
		}
		if i == 0 {
			first = err.Error()
			if !strings.Contains(first, "Ghost.a") {
				t.Fatalf("error %q does not name Ghost.a, the lowest bad level's runnable", first)
			}
			continue
		}
		if err.Error() != first {
			t.Fatalf("run %d reported %q, first run reported %q", i, err.Error(), first)
		}
	}
}
