package health

import (
	"testing"

	"autorte/internal/deploy"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// quorumSystem spreads a hot 3-instance observer group across three
// ECUs next to the supervised sensor — the E14 detection topology in
// miniature.
func quorumSystem(t *testing.T) *model.System {
	t.Helper()
	s := testSystem()
	s.Buses = []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 500000}}
	s.ECUs[0].Buses = []string{"can0"}
	s.ECUs = append(s.ECUs,
		&model.ECU{Name: "e2", Speed: 1, Buses: []string{"can0"}},
		&model.ECU{Name: "e3", Speed: 1, Buses: []string{"can0"}})
	s.Components = append(s.Components, &model.SWC{
		Name:       "Watch",
		Redundancy: model.Redundancy{Replicas: 3, Mode: model.StandbyActive},
		Runnables: []model.Runnable{{
			Name: "check", WCETNominal: sim.US(10),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
		}},
	})
	out, err := deploy.Replicate(s)
	if err != nil {
		t.Fatal(err)
	}
	out.Mapping["Watch"] = "e1"
	out.Mapping["Watch#1"] = "e2"
	out.Mapping["Watch#2"] = "e3"
	return out
}

// reports counts the error-manager records blaming one source.
func reports(p *rte.Platform, source string) int {
	n := 0
	for _, r := range p.Errors.Records() {
		if r.Source == source {
			n++
		}
	}
	return n
}

// A lone accuser cannot trip recovery; the second accusation within the
// window forms the majority (2 of 3), reports the subject once, and the
// agreement clears every standing accusation so the next report needs a
// fresh majority.
func TestQuorumMajorityReportsOnce(t *testing.T) {
	p := rte.MustBuild(quorumSystem(t), rte.Options{})
	q, err := NewQuorum(p, "Sensor", p.ReplicaGroup("Watch"), QuorumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.K.At(sim.MS(10), func() { q.Vote("Watch", VerdictFault, "stale") })
	p.K.At(sim.MS(15), func() {
		if n := reports(p, "Sensor"); n != 0 {
			t.Errorf("single accuser already reported: %d", n)
		}
	})
	p.K.At(sim.MS(20), func() { q.Vote("Watch#1", VerdictFault, "stale") })
	p.K.At(sim.MS(25), func() {
		if n := reports(p, "Sensor"); n != 1 {
			t.Errorf("majority agreement reported %d times, want 1", n)
		}
		// Cleared: a third accusation alone cannot re-trip.
		q.Vote("Watch#2", VerdictFault, "stale")
	})
	p.Run(sim.MS(30))
	if n := reports(p, "Sensor"); n != 1 {
		t.Fatalf("reports = %d, want 1 (agreement must clear accusations)", n)
	}
	if got := p.Metrics.Counter("health_quorum_agreements_total", "",
		obs.Label{Key: "subject", Value: "Sensor"}).Value(); got != 1 {
		t.Fatalf("health_quorum_agreements_total = %d, want 1", got)
	}
}

// OK votes withdraw accusations and Suspect votes abstain: neither side
// of an inconclusive observer moves the tally.
func TestQuorumWithdrawAndAbstain(t *testing.T) {
	p := rte.MustBuild(quorumSystem(t), rte.Options{})
	q, err := NewQuorum(p, "Sensor", p.ReplicaGroup("Watch"), QuorumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.K.At(sim.MS(10), func() {
		q.Vote("Watch", VerdictFault, "stale")
		q.Vote("Watch", VerdictOK, "") // recants
		q.Vote("Watch#1", VerdictFault, "stale")
		q.Vote("Watch#2", VerdictSuspect, "") // abstains
		if live, faults := q.Tally(); live != 3 || faults != 1 {
			t.Errorf("tally = %d live / %d faults, want 3/1", live, faults)
		}
	})
	p.Run(sim.MS(20))
	if n := reports(p, "Sensor"); n != 0 {
		t.Fatalf("reports = %d, want 0 (1 of 3 is no majority)", n)
	}
}

// Accusations age out of the window: two fault votes too far apart never
// form a concurrent majority.
func TestQuorumWindowExpiry(t *testing.T) {
	p := rte.MustBuild(quorumSystem(t), rte.Options{})
	q, err := NewQuorum(p, "Sensor", p.ReplicaGroup("Watch"), QuorumOptions{Window: sim.MS(25)})
	if err != nil {
		t.Fatal(err)
	}
	p.K.At(sim.MS(10), func() { q.Vote("Watch", VerdictFault, "stale") })
	p.K.At(sim.MS(40), func() { q.Vote("Watch#1", VerdictFault, "stale") })
	p.Run(sim.MS(50))
	if n := reports(p, "Sensor"); n != 0 {
		t.Fatalf("reports = %d, want 0 (first accusation expired)", n)
	}
}

// Observers on killed ECUs leave the electorate entirely: they neither
// vote nor raise the majority bar, so the two survivors' agreement
// reports — and with every observer dead nothing ever can.
func TestQuorumDeadObserversShrinkElectorate(t *testing.T) {
	p := rte.MustBuild(quorumSystem(t), rte.Options{})
	q, err := NewQuorum(p, "Sensor", p.ReplicaGroup("Watch"), QuorumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.K.At(sim.MS(10), func() {
		if err := p.KillECU("e3"); err != nil {
			t.Errorf("kill: %v", err)
		}
	})
	p.K.At(sim.MS(20), func() {
		q.Vote("Watch", VerdictFault, "stale")
		q.Vote("Watch#1", VerdictFault, "stale")
		if live, faults := q.Tally(); live != 2 || faults != 0 {
			// The agreement fired and cleared the accusations.
			t.Errorf("tally = %d/%d after agreement, want 2/0", live, faults)
		}
	})
	p.Run(sim.MS(30))
	if n := reports(p, "Sensor"); n != 1 {
		t.Fatalf("reports = %d, want 1 (2-of-2 survivors agree)", n)
	}

	// A dead observer's own stale vote must not linger either.
	p2 := rte.MustBuild(quorumSystem(t), rte.Options{})
	q2, err := NewQuorum(p2, "Sensor", p2.ReplicaGroup("Watch"), QuorumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2.K.At(sim.MS(10), func() { q2.Vote("Watch#2", VerdictFault, "stale") })
	p2.K.At(sim.MS(12), func() {
		if err := p2.KillECU("e3"); err != nil {
			t.Errorf("kill: %v", err)
		}
	})
	p2.K.At(sim.MS(20), func() { q2.Vote("Watch", VerdictFault, "stale") })
	p2.Run(sim.MS(30))
	// Watch's single live accusation is 1 of 2: no majority. The dead
	// Watch#2's earlier vote must not count toward one.
	if n := reports(p2, "Sensor"); n != 0 {
		t.Fatalf("reports = %d, want 0 (dead observer's vote counted)", n)
	}
}

// A single-observer quorum degenerates to direct reporting: every fault
// vote is a 1-of-1 majority, the E13 wiring expressed through the same
// gate.
func TestQuorumOfOneReportsDirectly(t *testing.T) {
	p := rte.MustBuild(quorumSystem(t), rte.Options{})
	q, err := NewQuorum(p, "Ctrl", []string{"Watch"}, QuorumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.K.At(sim.MS(10), func() { q.Vote("Watch", VerdictFault, "stale") })
	p.K.At(sim.MS(20), func() { q.Vote("Watch", VerdictFault, "still stale") })
	p.Run(sim.MS(30))
	if n := reports(p, "Ctrl"); n != 2 {
		t.Fatalf("reports = %d, want 2 (each vote is its own majority)", n)
	}
}

// Unregistered voters are dropped and metered — a foreign instance
// cannot stuff the ballot — and malformed construction fails fast.
func TestQuorumValidation(t *testing.T) {
	p := rte.MustBuild(quorumSystem(t), rte.Options{})
	if _, err := NewQuorum(p, "NoSuch", []string{"Watch"}, QuorumOptions{}); err == nil {
		t.Fatal("unknown subject accepted")
	}
	if _, err := NewQuorum(p, "Sensor", nil, QuorumOptions{}); err == nil {
		t.Fatal("empty observer set accepted")
	}
	if _, err := NewQuorum(p, "Sensor", []string{"Watch", "Watch"}, QuorumOptions{}); err == nil {
		t.Fatal("duplicate observer accepted")
	}
	if _, err := NewQuorum(p, "Sensor", []string{"NoSuch"}, QuorumOptions{}); err == nil {
		t.Fatal("unknown observer accepted")
	}
	q, err := NewQuorum(p, "Sensor", []string{"Watch"}, QuorumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.K.At(sim.MS(10), func() {
		q.Vote("Ctrl", VerdictFault, "not an observer")
		q.Vote("Watch", Verdict(9), "unknown verdict")
	})
	p.Run(sim.MS(20))
	if n := reports(p, "Sensor"); n != 0 {
		t.Fatalf("reports = %d, want 0 (dropped votes must not count)", n)
	}
	if got := p.Metrics.Counter("health_quorum_unknown_votes_total", "").Value(); got != 2 {
		t.Fatalf("health_quorum_unknown_votes_total = %d, want 2", got)
	}
}
