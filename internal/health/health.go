// Package health is the health-monitoring and recovery subsystem layered
// on the RTE — the watchdog-manager / DEM half of the paper's reliable
// platform: raw platform errors are qualified through counter-based
// debouncing, partitions are supervised (alive, deadline and logical
// program-flow supervision), qualified faults climb a recovery escalation
// ladder (notify -> restart runnable -> restart partition -> ECU reset ->
// safe stop), and a graceful-degradation state machine sheds non-critical
// runnables while keeping the critical chains alive.
//
// Everything runs inside kernel events on the simulation's single event
// loop, so monitoring and recovery are as deterministic as the workload
// they supervise.
package health

import (
	"fmt"
	"sort"

	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// DefaultCheckWindow is the default supervision window: once per window
// the monitor decays debounce counters, checks deadlines and decides
// heal/re-escalation per protected partition.
const DefaultCheckWindow = sim.Duration(10_000_000) // 10ms

// MonitorOptions tunes the monitor.
type MonitorOptions struct {
	// CheckWindow is the supervision period (default 10ms).
	CheckWindow sim.Duration
	// Degradation, when set, couples the escalation ladder to the
	// graceful-degradation state machine: partition restarts enter at
	// least Degraded, ECU resets at least LimpHome, safe-stop SafeStop,
	// and the level returns to Normal when every partition heals.
	Degradation *Degradation
	// BundleSink, when set, receives a diagnostic bundle cut by the
	// monitor on every severe escalation (rung restart-partition and
	// above) and on safe-stop — the automatic black-box dump. Typically
	// it writes the bundle to a file; it runs on the kernel goroutine
	// and must not block.
	BundleSink func(*obs.Bundle)
}

// Monitor watches protected partitions through the platform error path
// and drives recovery. Create with NewMonitor, then Protect each
// partition before Run.
type Monitor struct {
	p      *rte.Platform
	deg    *Degradation
	sink   func(*obs.Bundle)
	window sim.Duration
	guards map[string]*guard
	// order fixes window processing to Protect call order; one entry per
	// protected partition, added once at setup.
	//autovet:bounded one entry per protected partition
	order   []string
	started bool
}

// NewMonitor attaches a health monitor to the platform. It chains onto
// any existing ErrorManager.OnReport hook.
func NewMonitor(p *rte.Platform, opts MonitorOptions) *Monitor {
	m := &Monitor{
		p:      p,
		deg:    opts.Degradation,
		sink:   opts.BundleSink,
		window: opts.CheckWindow,
		guards: map[string]*guard{},
	}
	if m.window <= 0 {
		m.window = DefaultCheckWindow
	}
	prev := p.Errors.OnReport
	p.Errors.OnReport = func(rec rte.ErrorRecord) {
		if prev != nil {
			prev(rec)
		}
		if g := m.guards[rec.Source]; g != nil {
			g.onError(rec)
		}
	}
	return m
}

// Degradation returns the coupled degradation controller (nil if none).
func (m *Monitor) Degradation() *Degradation { return m.deg }

// emitBundle cuts a diagnostic bundle and hands it to the configured
// sink. No-op without one.
func (m *Monitor) emitBundle(reason string) {
	if m.sink == nil {
		return
	}
	if b := m.p.Bundle(reason); b != nil {
		m.sink(b)
	}
}

// Protect puts one SWC partition under health supervision with the given
// policy. Errors whose Source is the component name (behaviour reports,
// budget aborts, alive-supervision reports) feed its qualification;
// deadline supervision is installed automatically and alive supervision
// for every entry of Policy.Alive.
func (m *Monitor) Protect(swc string, pol Policy) error {
	comp := m.p.Sys.Component(swc)
	if comp == nil {
		return fmt.Errorf("health: unknown component %s", swc)
	}
	if m.guards[swc] != nil {
		return fmt.Errorf("health: component %s already protected", swc)
	}
	first := ""
	var taskNames []string
	for i := range comp.Runnables {
		if i == 0 {
			first = comp.Runnables[i].Name
		}
		taskNames = append(taskNames, swc+"."+comp.Runnables[i].Name)
	}
	pol = pol.fill(first)
	if pol.Runnable != "" && comp.Runnable(pol.Runnable) == nil {
		return fmt.Errorf("health: component %s has no runnable %s", swc, pol.Runnable)
	}
	g := &guard{
		m: m, swc: swc, ecu: m.p.Sys.Mapping[swc],
		pol: pol, deb: newDebouncer(pol.Debounce),
		taskNames: taskNames, flows: map[string]*flowMonitor{},
		cooldown: pol.Cooldown, lastErrorAt: -1,
	}
	alive := make([]string, 0, len(pol.Alive))
	for r := range pol.Alive {
		alive = append(alive, r)
	}
	sort.Strings(alive)
	for _, r := range alive {
		if err := m.p.Supervise(swc, r, pol.Alive[r]); err != nil {
			return err
		}
	}
	m.guards[swc] = g
	m.order = append(m.order, swc)
	if !m.started {
		m.started = true
		m.tick(m.p.K.Now() + m.window)
	}
	return nil
}

// MustProtect is Protect that panics on error; for tests and examples.
func (m *Monitor) MustProtect(swc string, pol Policy) {
	if err := m.Protect(swc, pol); err != nil {
		panic(err)
	}
}

// tick is the periodic supervision window, priority 26: after in-instant
// application work and alive supervision (25), before recovery attempts
// (27) scheduled at the same instant.
func (m *Monitor) tick(at sim.Time) {
	m.p.K.AtPrio(at, 26, func() {
		for _, swc := range m.order {
			m.guards[swc].window(at)
		}
		m.tick(at + m.window)
	})
}

// maybeRestoreNormal lowers degradation back to Normal once no partition
// has an active fault episode. SafeStop is terminal: it is never left
// automatically.
func (m *Monitor) maybeRestoreNormal() {
	if m.deg == nil || m.deg.Level() == Normal || m.deg.Level() == SafeStop {
		return
	}
	for _, g := range m.guards {
		if g.active || g.safeStopped {
			return
		}
	}
	m.deg.To(Normal)
}

// State classifies a protected partition's current health.
type State uint8

// Partition health states.
const (
	// Healthy: no debounce counter raised, no active episode.
	Healthy State = iota
	// Qualifying: raw errors seen but the threshold not yet crossed.
	Qualifying
	// Recovering: a qualified episode is active; the ladder is working.
	Recovering
	// SafeStopped: the terminal rung fired.
	SafeStopped
)

var stateNames = [...]string{"healthy", "qualifying", "recovering", "safe-stopped"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// PartitionStatus is the aggregated health of one protected partition.
type PartitionStatus struct {
	SWC         string
	State       State
	Rung        Rung  // current ladder position (meaningful while Recovering)
	Episodes    int64 // qualified fault episodes so far
	Attempts    int64 // recovery attempts so far
	LastErrorAt sim.Time
}

// Status returns the per-partition health, sorted by component name.
func (m *Monitor) Status() []PartitionStatus {
	out := make([]PartitionStatus, 0, len(m.guards))
	for _, swc := range m.order {
		g := m.guards[swc]
		st := Healthy
		switch {
		case g.safeStopped:
			st = SafeStopped
		case g.active:
			st = Recovering
		case !g.deb.clear():
			st = Qualifying
		}
		out = append(out, PartitionStatus{
			SWC: swc, State: st, Rung: g.rung,
			Episodes: g.episodes, Attempts: g.attempts,
			LastErrorAt: g.lastErrorAt,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SWC < out[j].SWC })
	return out
}
