package health

import (
	"strings"
	"testing"

	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// TestBundleSinkCutsOnSevereEscalation: the monitor's automatic
// black-box dumps fire exactly for rung >= restart-partition and for
// the terminal safe-stop, in escalation order, and each bundle carries
// the flight-recorder history up to its cut point.
func TestBundleSinkCutsOnSevereEscalation(t *testing.T) {
	p := rte.MustBuild(testSystem(), rte.Options{})
	if err := p.SetBehavior("Sensor", "sample", faultySensor); err != nil {
		t.Fatal(err)
	}
	var bundles []*obs.Bundle
	m := NewMonitor(p, MonitorOptions{BundleSink: func(b *obs.Bundle) { bundles = append(bundles, b) }})
	m.MustProtect("Sensor", Policy{
		MaxAttempts: 1, Cooldown: sim.MS(5),
		ResetDowntime: sim.MS(20), HealAfter: sim.MS(100),
	})
	p.Run(sim.MS(500))

	if m.Status()[0].State != SafeStopped {
		t.Fatalf("scenario did not reach safe-stop: %+v", m.Status()[0])
	}
	if len(bundles) < 3 {
		t.Fatalf("got %d bundles, want >= 3 (restart-partition, ecu-reset, safe-stop)", len(bundles))
	}
	// Mild rungs must not dump; severe ones and safe-stop must.
	var reasons []string
	for i, b := range bundles {
		reasons = append(reasons, b.Reason)
		if strings.Contains(b.Reason, RungNotify.String()) ||
			strings.Contains(b.Reason, RungRestartRunnable.String()) {
			t.Fatalf("bundle cut on mild rung: %q", b.Reason)
		}
		if i > 0 && b.At < bundles[i-1].At {
			t.Fatalf("bundles out of order: %v", reasons)
		}
		if len(b.Flight.History) == 0 {
			t.Fatalf("bundle %q has no flight history", b.Reason)
		}
	}
	first, last := bundles[0], bundles[len(bundles)-1]
	if !strings.HasPrefix(first.Reason, "escalation:"+RungRestartPartition.String()) {
		t.Fatalf("first severe dump %q, want restart-partition (all: %v)", first.Reason, reasons)
	}
	if last.Reason != "safe-stop:Sensor" {
		t.Fatalf("last dump %q, want safe-stop:Sensor (all: %v)", last.Reason, reasons)
	}
	// The terminal bundle's history records the whole ladder walk.
	gotSafeStop := false
	for _, ev := range last.Flight.History {
		if ev.Kind == "safe-stop" {
			gotSafeStop = true
		}
	}
	if !gotSafeStop {
		t.Fatalf("terminal bundle history misses the safe-stop note: %+v", last.Flight.History)
	}
	// Later bundles strictly extend the flight history of earlier ones.
	if len(last.Flight.History) <= len(first.Flight.History) {
		t.Fatalf("history did not grow: first %d, last %d",
			len(first.Flight.History), len(last.Flight.History))
	}
}

// TestBundleSinkNilIsFree: without a sink the monitor cuts nothing and
// the ladder still walks to its end.
func TestBundleSinkNilIsFree(t *testing.T) {
	p := rte.MustBuild(testSystem(), rte.Options{})
	if err := p.SetBehavior("Sensor", "sample", faultySensor); err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(p, MonitorOptions{})
	m.MustProtect("Sensor", Policy{MaxAttempts: 1, Cooldown: sim.MS(5)})
	p.Run(sim.MS(500))
	if m.Status()[0].State != SafeStopped {
		t.Fatalf("ladder without sink stalled: %+v", m.Status()[0])
	}
}
