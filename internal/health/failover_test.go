package health

import (
	"strings"
	"testing"

	"autorte/internal/deploy"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// replicatedSystem extends testSystem with a second ECU and a passive
// standby for the Sensor, materialized through deploy.Replicate — the
// same path the availability campaign deploys with.
func replicatedSystem(t *testing.T) *model.System {
	t.Helper()
	s := testSystem()
	s.Buses = []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 500000}}
	s.ECUs[0].Buses = []string{"can0"}
	s.ECUs = append(s.ECUs, &model.ECU{Name: "e2", Speed: 1, Buses: []string{"can0"}})
	s.Component("Sensor").Redundancy = model.Redundancy{Replicas: 2, Mode: model.StandbyPassive}
	out, err := deploy.Replicate(s)
	if err != nil {
		t.Fatal(err)
	}
	out.Mapping["Sensor#1"] = "e2"
	return out
}

// A persistently faulty primary with a live standby escalates
// notify -> restart-runnable -> restart-partition -> failover. The
// promotion suspends the faulty primary, so the episode heals instead of
// climbing to ECU reset: the fail-operational rung keeps the rest of the
// ladder in reserve. The switchover is metered, latency-observed and
// DLT-logged.
func TestLadderFailsOverThenHeals(t *testing.T) {
	p := rte.MustBuild(replicatedSystem(t), rte.Options{})
	dlt := p.EnableDLT(obs.LevelWarn)
	if err := p.SetBehavior("Sensor", "sample", faultySensor); err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(p, MonitorOptions{})
	m.MustProtect("Sensor", Policy{
		MaxAttempts: 1, Cooldown: sim.MS(5),
		ResetDowntime: sim.MS(20), HealAfter: sim.MS(100),
	})
	p.Run(sim.MS(500))

	st := m.Status()[0]
	if st.State != Healthy || st.Episodes != 1 {
		t.Fatalf("status %+v, want 1 healed episode", st)
	}
	if got := p.ActiveReplica("Sensor"); got != "Sensor#1" {
		t.Fatalf("active replica %q, want Sensor#1", got)
	}
	rungCount := func(r Rung) uint64 {
		return p.Metrics.Counter("health_escalations_total", "",
			obs.Label{Key: "rung", Value: r.String()}).Value()
	}
	if got := rungCount(RungFailover); got != 1 {
		t.Fatalf("failover rung attempted %d times, want 1", got)
	}
	if got := rungCount(RungECUReset); got != 0 {
		t.Fatalf("ladder climbed past failover: %d ECU resets", got)
	}
	if got := p.Metrics.Counter("deploy_failovers_total", "",
		obs.Label{Key: "swc", Value: "Sensor"}).Value(); got != 1 {
		t.Fatalf("deploy_failovers_total = %d, want 1", got)
	}
	h := p.Metrics.Histogram("deploy_failover_latency_ns", "")
	if h.Count() != 1 {
		t.Fatalf("failover latency observed %d times, want 1", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("failover latency sum %d, want > 0 (promotion after qualification)", h.Sum())
	}
	logged := false
	for _, rec := range dlt.Records() {
		if rec.Ctx == "ESCL" && strings.Contains(rec.Msg, "rung failover") {
			logged = true
		}
	}
	if !logged {
		t.Fatal("failover escalation never DLT-logged")
	}
}

// Without a live standby the ladder must not burn cooldown rounds on the
// failover rung: the replicated system whose standby ECU died behaves
// like the unreplicated one and goes straight to the ECU reset.
func TestLadderSkipsFailoverWhenStandbyDead(t *testing.T) {
	p := rte.MustBuild(replicatedSystem(t), rte.Options{})
	if err := p.SetBehavior("Sensor", "sample", faultySensor); err != nil {
		t.Fatal(err)
	}
	p.K.At(0, func() {
		if err := p.KillECU("e2"); err != nil {
			t.Errorf("kill: %v", err)
		}
	})
	m := NewMonitor(p, MonitorOptions{})
	m.MustProtect("Sensor", Policy{
		MaxAttempts: 1, Cooldown: sim.MS(5),
		ResetDowntime: sim.MS(20), HealAfter: sim.MS(100),
	})
	p.Run(sim.MS(500))
	if st := m.Status()[0]; st.State != SafeStopped {
		t.Fatalf("final state %v, want safe-stopped", st.State)
	}
	if got := p.Metrics.Counter("health_escalations_total", "",
		obs.Label{Key: "rung", Value: RungFailover.String()}).Value(); got != 0 {
		t.Fatalf("dead-standby failover attempted %d times, want 0", got)
	}
	if got := p.Metrics.Counter("deploy_failovers_total", "",
		obs.Label{Key: "swc", Value: "Sensor"}).Value(); got != 0 {
		t.Fatalf("deploy_failovers_total = %d, want 0", got)
	}
}
