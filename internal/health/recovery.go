package health

import (
	"fmt"

	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// Rung is one step of the recovery escalation ladder.
type Rung uint8

// The escalation ladder, mildest first. A qualified fault starts at
// RungNotify; every MaxAttempts failed attempts climb one rung.
const (
	// RungNotify switches the platform into the "recovery" mode so
	// subscribed application handlers can react (clear caches, re-init
	// peripherals) without the platform touching any task.
	RungNotify Rung = iota
	// RungRestartRunnable kills and re-releases the partition's configured
	// runnable.
	RungRestartRunnable
	// RungRestartPartition restarts the whole SWC partition: all jobs
	// killed, port state re-initialized. Enters at least Degraded.
	RungRestartPartition
	// RungFailover promotes a standby replica of the partition on another
	// ECU (rte.FailOver) — the fail-operational move for faults local
	// restarts cannot cure, milder than resetting the whole ECU. The
	// ladder skips this rung for partitions without a live standby.
	RungFailover
	// RungECUReset resets the partition's ECU with a reboot downtime.
	// Enters at least LimpHome.
	RungECUReset
	// RungSafeStop sheds the partition permanently (SafeStop level when a
	// degradation controller is attached). Terminal.
	RungSafeStop
)

var rungNames = [...]string{"notify", "restart-runnable", "restart-partition", "failover", "ecu-reset", "safe-stop"}

func (r Rung) String() string {
	if int(r) < len(rungNames) {
		return rungNames[r]
	}
	return fmt.Sprintf("rung(%d)", uint8(r))
}

// Policy tunes error qualification and recovery escalation for one
// protected partition. The zero value gets sensible defaults.
type Policy struct {
	// Debounce tunes error qualification (see DebounceConfig).
	Debounce DebounceConfig
	// MaxAttempts is how many recovery attempts run at each rung before
	// escalating to the next (default 2).
	MaxAttempts int
	// Cooldown is the wait between recovery attempts at the same episode
	// (default 20ms); Backoff multiplies it after every attempt at a rung
	// (default 2; backoff resets when the ladder escalates).
	Cooldown sim.Duration
	Backoff  float64
	// Runnable is restarted by RungRestartRunnable (default: the
	// component's first runnable).
	Runnable string
	// ResetDowntime is the reboot window of RungECUReset (default 20ms).
	ResetDowntime sim.Duration
	// HealAfter closes an episode once the partition has been error-free
	// that long and its debounce counters have decayed (default 50ms).
	HealAfter sim.Duration
	// Alive maps runnable names to alive-supervision windows installed via
	// rte.Supervise at Protect time.
	Alive map[string]sim.Duration
	// DisableDeadlineSupervision turns off the per-window deadline-miss
	// check (on by default; free when no runnable declares a deadline).
	DisableDeadlineSupervision bool
}

func (p Policy) fill(firstRunnable string) Policy {
	p.Debounce = p.Debounce.fill()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 2
	}
	if p.Cooldown <= 0 {
		p.Cooldown = sim.MS(20)
	}
	if p.Backoff < 1 {
		p.Backoff = 2
	}
	if p.ResetDowntime <= 0 {
		p.ResetDowntime = sim.MS(20)
	}
	if p.HealAfter <= 0 {
		p.HealAfter = sim.MS(50)
	}
	if p.Runnable == "" {
		p.Runnable = firstRunnable
	}
	return p
}

// guard is the per-partition supervision and escalation state.
type guard struct {
	m         *Monitor
	swc       string
	ecu       string
	pol       Policy
	deb       *debouncer
	taskNames []string
	flows     map[string]*flowMonitor

	rung            Rung
	attemptsAtRung  int
	cooldown        sim.Duration
	notBefore       sim.Time
	pending         bool
	active          bool
	safeStopped     bool
	episodeStart    sim.Time
	episodeAttempts int
	lastErrorAt     sim.Time
	lastAttemptAt   sim.Time
	errsInWindow    int
	missBase        int
	episodes        int64
	attempts        int64
}

// onError feeds one raw platform error into qualification. Runs inside
// ErrorManager.Report via the OnReport hook.
func (g *guard) onError(rec rte.ErrorRecord) {
	if g.safeStopped {
		return
	}
	now := sim.Time(rec.At)
	g.errsInWindow++
	g.lastErrorAt = now
	if g.deb.fail(rec.Source, rec.Kind) {
		if !g.active {
			g.active = true
			g.episodeStart = now
			g.episodeAttempts = 0
			g.episodes++
			g.m.p.Metrics.Counter("health_qualified_faults_total",
				"Fault episodes that crossed the debounce threshold, by partition.",
				obs.Label{Key: "swc", Value: g.swc}).Inc()
			g.m.p.DLT.Emitf(int64(now), obs.LevelWarn, "HLTH", "QUAL",
				"%s: fault qualified (%s from %s)", g.swc, rec.Kind, rec.Source)
		}
		g.schedule(now)
	}
}

// window runs once per supervision window: deadline supervision, debounce
// decay, heal detection and re-escalation while the fault persists.
func (g *guard) window(at sim.Time) {
	if g.safeStopped {
		return
	}
	if !g.pol.DisableDeadlineSupervision {
		g.checkDeadlines(at)
	}
	if g.errsInWindow == 0 {
		g.deb.pass()
		if g.active && at-g.lastErrorAt >= g.pol.HealAfter && g.deb.clear() {
			g.heal(at)
		}
	} else if g.active && !g.pending && at >= g.notBefore {
		// The fault is still producing errors after the cooldown: the last
		// attempt did not cure it, try the next one.
		g.schedule(at)
	}
	g.errsInWindow = 0
}

// checkDeadlines reports new deadline misses of the partition's tasks
// since the last window as a timing error (deadline supervision). O(1)
// per task thanks to the trace recorder's incremental counts.
func (g *guard) checkDeadlines(at sim.Time) {
	miss := 0
	for _, name := range g.taskNames {
		miss += g.m.p.Trace.Count(trace.Miss, name)
	}
	d := miss - g.missBase
	g.missBase = miss
	if d > 0 {
		g.m.p.Errors.Report(g.swc, rte.ErrTiming,
			fmt.Sprintf("deadline supervision: %d missed deadlines in window ending %v", d, at))
	}
}

// schedule queues the next recovery attempt, honouring the cooldown gate.
func (g *guard) schedule(now sim.Time) {
	if g.pending || g.safeStopped {
		return
	}
	g.pending = true
	at := now
	if g.notBefore > at {
		at = g.notBefore
	}
	// Priority 27: after supervision checks (25) and monitor windows (26)
	// at the same instant, so an attempt sees that instant's full picture.
	g.m.p.K.AtPrio(at, 27, g.attempt)
}

// attempt executes one recovery action at the current rung and advances
// the ladder position.
func (g *guard) attempt() {
	g.pending = false
	if g.safeStopped || !g.active {
		return
	}
	p := g.m.p
	now := p.K.Now()
	rung := g.rung
	g.attempts++
	g.episodeAttempts++
	g.attemptsAtRung++
	g.lastAttemptAt = now
	p.Metrics.Counter("health_escalations_total",
		"Recovery attempts performed by the escalation ladder, by rung.",
		obs.Label{Key: "rung", Value: rung.String()}).Inc()
	p.Trace.Emit(now, trace.Recover, g.swc, g.attempts, "recovery: "+rung.String())
	p.DLT.Emitf(int64(now), obs.LevelWarn, "HLTH", "ESCL",
		"%s: recovery attempt %d at rung %s", g.swc, g.attemptsAtRung, rung)
	p.Note("escalation", fmt.Sprintf("%s: rung %s attempt %d", g.swc, rung, g.attemptsAtRung))
	switch rung {
	case RungNotify:
		p.SwitchMode("recovery")
	case RungRestartRunnable:
		if err := p.RestartRunnable(g.swc, g.pol.Runnable); err != nil {
			panic(err) // validated at Protect time
		}
	case RungRestartPartition:
		if g.m.deg != nil {
			g.m.deg.AtLeast(Degraded)
		}
		if err := p.RestartComponent(g.swc); err != nil {
			panic(err)
		}
	case RungFailover:
		// Unlike the restart rungs this one can legitimately fail at
		// attempt time — the last standby's ECU may have died since the
		// ladder escalated here — so the error is logged and the ladder
		// keeps climbing instead of panicking.
		if err := p.FailOver(g.swc); err != nil {
			p.DLT.Emitf(int64(now), obs.LevelError, "HLTH", "FAIL",
				"%s: failover failed: %v", g.swc, err)
		} else {
			p.Metrics.Histogram("deploy_failover_latency_ns",
				"Virtual time from fault qualification to standby promotion.").
				Observe(int64(now - g.episodeStart))
		}
	case RungECUReset:
		// Degrade before resetting: runnables the new level sheds are
		// already suspended when the reset snapshots the reboot set, so the
		// post-downtime resume cannot re-enable them.
		if g.m.deg != nil {
			g.m.deg.AtLeast(LimpHome)
		}
		if err := p.ResetECU(g.ecu, g.pol.ResetDowntime); err != nil {
			panic(err)
		}
	case RungSafeStop:
		g.safeStop(now)
		return
	}
	// Severe escalations cut a black-box bundle after the action ran, so
	// the dump includes the action's own DLT/degradation effects.
	if rung >= RungRestartPartition {
		g.m.emitBundle("escalation:" + rung.String() + ":" + g.swc)
	}
	g.notBefore = now + g.cooldown
	g.cooldown = sim.Duration(float64(g.cooldown) * g.pol.Backoff)
	if g.attemptsAtRung >= g.pol.MaxAttempts {
		g.rung++
		if g.rung == RungFailover && !p.HasStandby(g.swc) {
			// Nothing to promote: don't burn MaxAttempts cooldown rounds on
			// a rung that cannot act, go straight to the ECU reset.
			g.rung++
		}
		g.attemptsAtRung = 0
		g.cooldown = g.pol.Cooldown // backoff restarts per rung
	}
}

// safeStop is the terminal rung: the partition (or, with a degradation
// controller, the whole system) stops delivering its function.
func (g *guard) safeStop(now sim.Time) {
	g.safeStopped = true
	p := g.m.p
	if g.m.deg != nil {
		g.m.deg.To(SafeStop)
	} else {
		for _, name := range g.taskNames {
			i := indexDot(name)
			if err := p.SetRunnableEnabled(name[:i], name[i+1:], false); err != nil {
				panic(err)
			}
		}
		p.SwitchMode("safe-stop")
		p.DLT.Emitf(int64(now), obs.LevelError, "HLTH", "STOP", "%s: safe-stopped", g.swc)
	}
	p.Note("safe-stop", g.swc)
	g.m.emitBundle("safe-stop:" + g.swc)
}

// heal closes the episode: the partition has been error-free for
// HealAfter and every debounce counter decayed to zero.
func (g *guard) heal(at sim.Time) {
	p := g.m.p
	if g.episodeAttempts > 0 {
		lat := g.lastAttemptAt - g.episodeStart
		p.Metrics.Histogram("health_recovery_latency_ns",
			"Virtual time from fault qualification to the recovery attempt that cured it.").
			Observe(int64(lat))
	}
	p.Metrics.Counter("health_recoveries_total",
		"Fault episodes closed by successful recovery, by partition.",
		obs.Label{Key: "swc", Value: g.swc}).Inc()
	p.Trace.Emit(at, trace.Recover, g.swc, g.attempts,
		fmt.Sprintf("healed after %d attempts", g.episodeAttempts))
	p.DLT.Emitf(int64(at), obs.LevelInfo, "HLTH", "HEAL",
		"%s: healed after %d attempts (rung %s)", g.swc, g.episodeAttempts, g.rung)
	g.active = false
	g.rung = RungNotify
	g.attemptsAtRung = 0
	g.cooldown = g.pol.Cooldown
	g.notBefore = 0
	g.deb.reset()
	g.m.maybeRestoreNormal()
}
