package health

import (
	"fmt"
	"sort"

	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/trace"
)

// Level is the graceful-degradation operating level of the system.
type Level uint8

// Degradation levels, ordered by severity. Each level keeps a configured
// subset of runnables enabled; everything else is shed.
const (
	// Normal runs every runnable.
	Normal Level = iota
	// Degraded sheds comfort functions; the keep-set plus all mode-switch
	// handlers stay enabled.
	Degraded
	// LimpHome keeps only the critical chains alive (get-home function).
	LimpHome
	// SafeStop halts the application: only mode-switch handlers remain to
	// bring actuators to a safe state. Terminal for automatic escalation.
	SafeStop
)

var levelNames = [...]string{"normal", "degraded", "limp-home", "safe-stop"}

func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// Degradation drives per-mode runnable enable-sets through the platform:
// entering a level disables every runnable outside that level's keep-set
// (mode-switch handlers are always kept, so error/mode reactions still
// run) and then switches the platform into the level's mode so subscribed
// handlers can reconfigure the application.
type Degradation struct {
	p     *rte.Platform
	level Level
	// keep maps a level to the set of "swc.runnable" names that stay
	// enabled there. Normal needs no entry: everything runs.
	keep map[Level]map[string]bool
	// all lists every runnable in deterministic (component, runnable)
	// declaration order; handlers marks the mode-switch-triggered ones.
	//autovet:bounded one entry per runnable, filled once at construction
	all      []string
	handlers map[string]bool

	// OnChange, when set, observes every level transition.
	OnChange func(from, to Level)
}

// NewDegradation builds the degradation controller. keep lists, per
// level, the "swc.runnable" names that stay enabled at that level; names
// must exist in the system. The platform starts at Normal.
func NewDegradation(p *rte.Platform, keep map[Level][]string) (*Degradation, error) {
	d := &Degradation{
		p:        p,
		keep:     map[Level]map[string]bool{},
		handlers: map[string]bool{},
	}
	known := map[string]bool{}
	for _, comp := range p.Sys.Components {
		for i := range comp.Runnables {
			run := &comp.Runnables[i]
			name := comp.Name + "." + run.Name
			known[name] = true
			d.all = append(d.all, name)
			if run.Trigger.Kind == model.ModeSwitchEvent {
				d.handlers[name] = true
			}
		}
	}
	// Ascending levels: which bad keep-set gets reported must not depend
	// on map iteration order.
	levels := make([]int, 0, len(keep))
	for level := range keep {
		levels = append(levels, int(level))
	}
	sort.Ints(levels)
	for _, l := range levels {
		level := Level(l)
		set := map[string]bool{}
		for _, n := range keep[level] {
			if !known[n] {
				return nil, fmt.Errorf("health: degradation keep-set for %v names unknown runnable %s", level, n)
			}
			set[n] = true
		}
		d.keep[level] = set
	}
	p.Metrics.Gauge("health_degradation_level",
		"Current graceful-degradation level (0 normal .. 3 safe-stop).").Set(0)
	return d, nil
}

// MustDegradation is NewDegradation that panics on error; for tests and
// examples.
func MustDegradation(p *rte.Platform, keep map[Level][]string) *Degradation {
	d, err := NewDegradation(p, keep)
	if err != nil {
		panic(err)
	}
	return d
}

// Level returns the current degradation level.
func (d *Degradation) Level() Level { return d.level }

// Enabled reports whether a runnable is in the enable-set of a level.
func (d *Degradation) enabled(name string, level Level) bool {
	return level == Normal || d.handlers[name] || d.keep[level][name]
}

// To switches the system to the given level: runnables outside the
// level's enable-set are shed (their subsequent activations become
// auditable Drop records), runnables inside it are (re-)enabled, and the
// platform switches into the level's mode. Idempotent per level.
func (d *Degradation) To(level Level) {
	if level == d.level {
		return
	}
	from := d.level
	d.level = level
	now := d.p.K.Now()
	shed := 0
	for _, name := range d.all {
		on := d.enabled(name, level)
		if !on {
			shed++
		}
		i := indexDot(name)
		// Enable-set applied before the mode switch so freshly re-enabled
		// handlers can react to the new mode immediately.
		if err := d.p.SetRunnableEnabled(name[:i], name[i+1:], on); err != nil {
			// Names were validated at construction; an error here means the
			// platform lost the task, which is a programming error.
			panic(err)
		}
	}
	d.p.Metrics.Gauge("health_degradation_level",
		"Current graceful-degradation level (0 normal .. 3 safe-stop).").Set(int64(level))
	d.p.Metrics.Counter("health_degradations_total",
		"Degradation level transitions, by entered level.",
		obs.Label{Key: "to", Value: level.String()}).Inc()
	d.p.Trace.Emit(now, trace.Recover, "health", int64(level),
		"degradation "+from.String()+" -> "+level.String())
	d.p.DLT.Emitf(int64(now), obs.LevelWarn, "HLTH", "DEGR",
		"degradation %s -> %s (%d runnables shed)", from, level, shed)
	d.p.Note("degradation", from.String()+" -> "+level.String())
	d.p.SwitchMode(level.String())
	if d.OnChange != nil {
		d.OnChange(from, level)
	}
}

// AtLeast raises the level to at least the given one; it never lowers it.
func (d *Degradation) AtLeast(level Level) {
	if level > d.level {
		d.To(level)
	}
}

func indexDot(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return i
		}
	}
	return len(s)
}
