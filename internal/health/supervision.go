package health

import (
	"fmt"

	"autorte/internal/rte"
)

// This file implements logical (program-flow) supervision: behaviours of
// a supervised runnable report checkpoints, and the monitor verifies each
// job walks the declared control-flow graph from Initial to Final. A job
// that skips checkpoints, visits them out of order, or ends mid-graph
// raises an ErrFlow platform error, which feeds the same qualification
// and escalation path as every other error. (Deadline supervision lives
// in the per-window guard check; alive supervision is rte.Supervise.)

// FlowGraph declares the legal checkpoint sequences of one runnable.
type FlowGraph struct {
	// Initial is the checkpoint every job must report first.
	Initial int
	// Final is the checkpoint every job must end on.
	Final int
	// Next lists the legal successor checkpoints of each checkpoint.
	Next map[int][]int
}

// flowMonitor tracks one supervised runnable's walk through its graph.
type flowMonitor struct {
	fg     FlowGraph
	job    int64
	active bool // a job's walk is open (Initial seen, Final not yet)
	last   int
}

// SuperviseFlow installs program-flow supervision on a runnable of an
// already-protected component. The behaviour must report its checkpoints
// via Monitor.Checkpoint.
func (m *Monitor) SuperviseFlow(swc, runnable string, fg FlowGraph) error {
	g := m.guards[swc]
	if g == nil {
		return fmt.Errorf("health: protect %s before supervising its flow", swc)
	}
	comp := m.p.Sys.Component(swc)
	if comp.Runnable(runnable) == nil {
		return fmt.Errorf("health: component %s has no runnable %s", swc, runnable)
	}
	g.flows[runnable] = &flowMonitor{fg: fg, job: -1}
	return nil
}

// Checkpoint reports that the calling behaviour reached a checkpoint.
// Unsupervised callers are ignored, so shared behaviours can report
// unconditionally.
func (m *Monitor) Checkpoint(c *rte.Context, id int) {
	g := m.guards[c.Component()]
	if g == nil {
		return
	}
	fm := g.flows[c.Runnable()]
	if fm == nil {
		return
	}
	report := func(format string, args ...any) {
		m.p.Errors.Report(c.Component(), rte.ErrFlow,
			c.Runnable()+": "+fmt.Sprintf(format, args...))
	}
	if c.Job() != fm.job {
		if fm.active {
			report("job %d ended at checkpoint %d before reaching final %d", fm.job, fm.last, fm.fg.Final)
		}
		fm.job = c.Job()
		fm.active = false
	}
	if !fm.active {
		if id != fm.fg.Initial {
			report("job %d started at checkpoint %d, want initial %d", fm.job, id, fm.fg.Initial)
		}
		// Re-sync on the reported checkpoint either way, so one bad start
		// yields one error, not a cascade.
		fm.last = id
		fm.active = id != fm.fg.Final
		return
	}
	legal := false
	for _, n := range fm.fg.Next[fm.last] {
		if n == id {
			legal = true
			break
		}
	}
	if !legal {
		report("job %d made illegal transition %d -> %d", fm.job, fm.last, id)
	}
	fm.last = id
	if id == fm.fg.Final {
		fm.active = false
	}
}
