package health

import (
	"fmt"
	"testing"

	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// The ladder escalates exactly when attemptsAtRung reaches MaxAttempts:
// every non-terminal rung of an unreplicated system is attempted exactly
// MaxAttempts times — never one more, never one fewer — and the terminal
// safe-stop fires once.
func TestEscalationExactlyAtMaxAttempts(t *testing.T) {
	for _, max := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("max=%d", max), func(t *testing.T) {
			p := rte.MustBuild(testSystem(), rte.Options{})
			if err := p.SetBehavior("Sensor", "sample", faultySensor); err != nil {
				t.Fatal(err)
			}
			m := NewMonitor(p, MonitorOptions{})
			m.MustProtect("Sensor", Policy{
				MaxAttempts: max, Cooldown: sim.MS(5),
				ResetDowntime: sim.MS(10), HealAfter: sim.MS(200),
			})
			p.Run(sim.MS(2000))
			if st := m.Status()[0]; st.State != SafeStopped {
				t.Fatalf("final state %v, want safe-stopped", st.State)
			}
			for _, rung := range []Rung{RungNotify, RungRestartRunnable, RungRestartPartition, RungECUReset} {
				got := p.Metrics.Counter("health_escalations_total", "",
					obs.Label{Key: "rung", Value: rung.String()}).Value()
				if got != uint64(max) {
					t.Fatalf("rung %v attempted %d times, want exactly %d", rung, got, max)
				}
			}
			// Unreplicated: the failover rung is skipped outright.
			if got := p.Metrics.Counter("health_escalations_total", "",
				obs.Label{Key: "rung", Value: RungFailover.String()}).Value(); got != 0 {
				t.Fatalf("failover attempted %d times on an unreplicated partition", got)
			}
			if got := p.Metrics.Counter("health_escalations_total", "",
				obs.Label{Key: "rung", Value: RungSafeStop.String()}).Value(); got != 1 {
				t.Fatalf("safe-stop fired %d times, want once", got)
			}
		})
	}
}

// HealAfter closes an episode mid-backoff: a transient fault cured by the
// first notify leaves the guard waiting out a multiplied cooldown, and the
// quiet period must heal the episode rather than letting the stale
// backoff keep it open. The heal also resets rung and cooldown, so a
// second transient starts the ladder from the bottom again.
func TestHealAfterClosesEpisodeMidBackoff(t *testing.T) {
	p := rte.MustBuild(testSystem(), rte.Options{})
	// Two fault bursts: 0-30ms and 100-130ms. Each is shorter than the
	// base cooldown, so only the first attempt of each episode ever runs.
	if err := p.SetBehavior("Sensor", "sample", func(c *rte.Context) {
		c.Write("out", "v", 1)
		now := c.Now()
		if now < sim.MS(30) || (now >= sim.MS(100) && now < sim.MS(130)) {
			c.Report(rte.ErrSensor, "transient fault")
		}
	}); err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(p, MonitorOptions{})
	m.MustProtect("Sensor", Policy{
		MaxAttempts: 5, Cooldown: sim.MS(40), Backoff: 8,
		HealAfter: sim.MS(25),
	})
	p.Run(sim.MS(300))

	st := m.Status()[0]
	if st.State != Healthy || st.Episodes != 2 {
		t.Fatalf("status %+v, want 2 healed episodes", st)
	}
	// One notify per episode; the 8x backoff (320ms) never expired before
	// the heal, and the heal reset it, so the ladder never climbed.
	if got := p.Metrics.Counter("health_escalations_total", "",
		obs.Label{Key: "rung", Value: RungNotify.String()}).Value(); got != 2 {
		t.Fatalf("notify attempted %d times, want 2 (one per episode)", got)
	}
	if got := p.Metrics.Counter("health_escalations_total", "",
		obs.Label{Key: "rung", Value: RungRestartRunnable.String()}).Value(); got != 0 {
		t.Fatalf("ladder climbed to restart-runnable %d times during backoff", got)
	}
	if got := p.Metrics.Counter("health_recoveries_total", "",
		obs.Label{Key: "swc", Value: "Sensor"}).Value(); got != 2 {
		t.Fatalf("health_recoveries_total = %d, want 2", got)
	}
}
