package health

// Replicated detection: E13 showed the single staleness observer is the
// availability ceiling — kill its ECU and nothing ever reports the fault
// that should start the escalation ladder. A Quorum turns the observer
// into a replica group with majority agreement: each observer instance
// votes its verdict on a supervised subject, and only when a majority of
// the LIVE observers (instances on killed ECUs abstain structurally)
// agree on a fault within the agreement window does the quorum report
// the error that feeds the ladder. A single false accuser cannot trip
// recovery; a single dead observer cannot blind it.

import (
	"fmt"
	"sort"

	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// Verdict is one observer's judgement of a supervised subject.
type Verdict uint8

const (
	// VerdictOK: the subject's outputs look healthy.
	VerdictOK Verdict = iota
	// VerdictSuspect: inconclusive — the observer abstains this round
	// (its inputs may themselves be stale or unqualified).
	VerdictSuspect
	// VerdictFault: the subject is failing and recovery should start.
	VerdictFault
)

func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictSuspect:
		return "suspect"
	case VerdictFault:
		return "fault"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// QuorumOptions tunes one subject's replicated detection path.
type QuorumOptions struct {
	// Window is how long a fault vote stays current. Votes older than
	// the window no longer count toward agreement — observers re-accuse
	// every supervision period, so an uncorroborated accusation ages
	// out. Default 25ms.
	Window sim.Duration
	// Kind is the error kind the quorum reports on agreement. Default
	// rte.ErrSensor (the staleness class the E13/E14 watchdogs detect).
	Kind rte.ErrorKind
}

// Quorum is the majority-agreement gate between a replicated observer
// group and the platform error manager.
type Quorum struct {
	p        *rte.Platform
	subject  string
	obsNames []string
	opts     QuorumOptions
	// lastFault holds each observer's most recent fault vote time;
	// zero-value absence means it never voted fault.
	lastFault map[string]sim.Time
	votes     map[Verdict]*obs.Counter
	agreed    *obs.Counter
	unknown   *obs.Counter
}

// NewQuorum builds the agreement gate for one supervised subject.
// observers are the instances of the observer replica group (pass
// p.ReplicaGroup of the observer primary); a single-observer quorum
// degenerates to direct reporting, so callers can wire replicated and
// unreplicated detection symmetrically.
func NewQuorum(p *rte.Platform, subject string, observers []string, opts QuorumOptions) (*Quorum, error) {
	if p.Sys.Component(subject) == nil {
		return nil, fmt.Errorf("health: quorum subject %s is not a component", subject)
	}
	if len(observers) == 0 {
		return nil, fmt.Errorf("health: quorum for %s needs at least one observer", subject)
	}
	seen := map[string]bool{}
	for _, o := range observers {
		if p.Sys.Component(o) == nil {
			return nil, fmt.Errorf("health: quorum observer %s is not a component", o)
		}
		if seen[o] {
			return nil, fmt.Errorf("health: quorum observer %s listed twice", o)
		}
		seen[o] = true
	}
	if opts.Window <= 0 {
		opts.Window = 25 * sim.Millisecond
	}
	if opts.Kind == "" {
		opts.Kind = rte.ErrSensor
	}
	q := &Quorum{
		p: p, subject: subject,
		obsNames:  append([]string(nil), observers...),
		opts:      opts,
		lastFault: map[string]sim.Time{},
		votes:     map[Verdict]*obs.Counter{},
		agreed: p.Metrics.Counter("health_quorum_agreements_total",
			"Majority fault agreements reached by replicated observers, by subject.",
			obs.Label{Key: "subject", Value: subject}),
		unknown: p.Metrics.Counter("health_quorum_unknown_votes_total",
			"Votes dropped because the voter is not a registered observer."),
	}
	for _, v := range []Verdict{VerdictOK, VerdictSuspect, VerdictFault} {
		q.votes[v] = p.Metrics.Counter("health_quorum_votes_total",
			"Observer votes cast, by verdict.",
			obs.Label{Key: "verdict", Value: v.String()})
	}
	return q, nil
}

// Vote records one observer's verdict and re-evaluates agreement. Votes
// from unregistered observers are dropped (and metered) — a promoted or
// foreign instance cannot stuff the ballot. Suspect votes abstain;
// an OK vote withdraws the observer's standing accusation.
func (q *Quorum) Vote(observer string, v Verdict, info string) {
	reg := false
	for _, o := range q.obsNames {
		if o == observer {
			reg = true
			break
		}
	}
	if !reg {
		q.unknown.Inc()
		return
	}
	switch v {
	case VerdictFault:
		q.votes[v].Inc()
		q.lastFault[observer] = q.p.K.Now()
	case VerdictOK:
		q.votes[v].Inc()
		delete(q.lastFault, observer)
	case VerdictSuspect:
		// Abstain: neither accuse nor withdraw.
		q.votes[v].Inc()
		return
	default:
		q.unknown.Inc()
		return
	}
	q.evaluate(info)
}

// evaluate reports the subject's error when a strict majority of the
// live observers hold a current fault vote. Observers on dead ECUs are
// excluded from the electorate — a killed observer must not raise the
// majority bar for the survivors.
func (q *Quorum) evaluate(info string) {
	now := q.p.K.Now()
	live, faults := 0, 0
	for _, o := range q.obsNames {
		if q.p.ECUDead(q.p.Sys.Mapping[o]) {
			continue
		}
		live++
		if at, ok := q.lastFault[o]; ok && now-at <= q.opts.Window {
			faults++
		}
	}
	if live == 0 || 2*faults <= live {
		return
	}
	// Agreement: clear the standing accusations so the next report needs
	// a fresh majority, then feed the ladder.
	for o := range q.lastFault {
		delete(q.lastFault, o)
	}
	q.agreed.Inc()
	q.p.DLT.Emitf(int64(now), obs.LevelWarn, "HLTH", "QRUM",
		"quorum on %s: %d/%d observers agree: %s", q.subject, faults, live, info)
	q.p.Errors.Report(q.subject, q.opts.Kind, info)
}

// Tally reports the current electorate for tests and diagnostics: live
// observers and how many hold a current fault vote.
func (q *Quorum) Tally() (live, faults int) {
	now := q.p.K.Now()
	for _, o := range q.obsNames {
		if q.p.ECUDead(q.p.Sys.Mapping[o]) {
			continue
		}
		live++
		if at, ok := q.lastFault[o]; ok && now-at <= q.opts.Window {
			faults++
		}
	}
	return live, faults
}

// Observers returns the registered observer instances, sorted.
func (q *Quorum) Observers() []string {
	out := append([]string(nil), q.obsNames...)
	sort.Strings(out)
	return out
}
