package ttp

import (
	"testing"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

func cluster4(t *testing.T, cfg Config) (*sim.Kernel, *Cluster, *trace.Recorder) {
	t.Helper()
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	c := MustNewCluster(k, cfg, rec)
	for _, name := range []string{"n0", "n1", "n2", "n3"} {
		c.MustAddNode(&Node{Name: name, Guardian: true})
	}
	return k, c, rec
}

func baseCfg() Config {
	return Config{SlotLength: sim.US(250), RoundsPerCluster: 2, SyncEnabled: true}
}

func TestConfigValidate(t *testing.T) {
	if (Config{SlotLength: 0, RoundsPerCluster: 1}).Validate() == nil {
		t.Fatal("zero slot accepted")
	}
	if (Config{SlotLength: 1, RoundsPerCluster: 0}).Validate() == nil {
		t.Fatal("zero rounds accepted")
	}
	if baseCfg().Validate() != nil {
		t.Fatal("valid config rejected")
	}
}

func TestClusterSetupRules(t *testing.T) {
	k := sim.NewKernel()
	c := MustNewCluster(k, baseCfg(), nil)
	if err := c.AddNode(&Node{Name: ""}); err == nil {
		t.Fatal("empty node name accepted")
	}
	c.MustAddNode(&Node{Name: "a"})
	if err := c.AddNode(&Node{Name: "a"}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if err := c.Start(); err == nil {
		t.Fatal("single-node cluster started")
	}
	c.MustAddNode(&Node{Name: "b"})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	if err := c.AddNode(&Node{Name: "late"}); err == nil {
		t.Fatal("AddNode after start accepted")
	}
}

func TestTDMADelivery(t *testing.T) {
	k, c, rec := cluster4(t, baseCfg())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Round = 4 * 250us = 1ms. Run 10 rounds.
	k.Run(sim.US(9999))
	for _, n := range c.Nodes() {
		if n.Delivered() != 10 {
			t.Fatalf("%s delivered %d frames, want 10", n.Name, n.Delivered())
		}
	}
	if rec.Count(trace.Finish, "n2") != 10 {
		t.Fatal("trace does not show per-slot delivery")
	}
	if c.Rounds() != 10 {
		t.Fatalf("rounds = %d, want 10", c.Rounds())
	}
	if !c.MembershipAgreement(k.Now()) {
		t.Fatal("healthy cluster lost membership agreement")
	}
}

func TestCrashDropsMembership(t *testing.T) {
	k, c, _ := cluster4(t, baseCfg())
	c.Nodes()[2].CrashAt(sim.MS(3))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run(sim.MS(10))
	// Every surviving node must see n2 as failed, all others operational.
	for i, n := range c.Nodes() {
		if i == 2 {
			continue
		}
		view := n.Membership()
		if view[2] {
			t.Fatalf("%s still sees crashed n2 as operational", n.Name)
		}
		if !view[0] || !view[1] || !view[3] {
			t.Fatalf("%s dropped a healthy node: %v", n.Name, view)
		}
	}
	if !c.MembershipAgreement(k.Now()) {
		t.Fatal("membership views diverged after crash")
	}
	// n2 transmitted only in rounds before the crash (slots at 0.5, 1.5,
	// 2.5ms): 3 frames.
	if got := c.Nodes()[2].Delivered(); got != 3 {
		t.Fatalf("crashed node delivered %d, want 3", got)
	}
}

func TestGuardianContainsBabblingIdiot(t *testing.T) {
	k, c, _ := cluster4(t, baseCfg())
	// n1 babbles continuously from 2ms to 6ms, but every node has a
	// guardian: no slot may be corrupted and every other node keeps
	// transmitting on schedule.
	c.Nodes()[1].BabbleBetween(sim.MS(2), sim.MS(6))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run(sim.US(9999))
	if c.CorruptedSlots() != 0 {
		t.Fatalf("%d slots corrupted despite guardians", c.CorruptedSlots())
	}
	if c.BlockedBabbles() == 0 {
		t.Fatal("guardian never engaged")
	}
	for i, n := range c.Nodes() {
		if i == 1 {
			continue
		}
		if n.Delivered() != 10 {
			t.Fatalf("%s delivered %d, want 10 (unaffected by contained babbler)", n.Name, n.Delivered())
		}
	}
}

func TestBabblingWithoutGuardianCorruptsSlots(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	c := MustNewCluster(k, baseCfg(), rec)
	for _, name := range []string{"n0", "n1", "n2", "n3"} {
		c.MustAddNode(&Node{Name: name, Guardian: false})
	}
	c.Nodes()[1].BabbleBetween(sim.MS(2), sim.MS(6))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run(sim.MS(10))
	if c.CorruptedSlots() == 0 {
		t.Fatal("unguarded babbling corrupted nothing; containment experiment vacuous")
	}
	// Victims lose frames during the babble window.
	for i, n := range c.Nodes() {
		if i == 1 {
			continue
		}
		if n.Delivered() >= 10 {
			t.Fatalf("%s delivered %d; babbling should have destroyed some slots", n.Name, n.Delivered())
		}
	}
}

func TestClockSyncBoundsSkew(t *testing.T) {
	mk := func(sync bool) float64 {
		k := sim.NewKernel()
		cfg := baseCfg()
		cfg.SyncEnabled = sync
		c := MustNewCluster(k, cfg, nil)
		drift := []float64{40, -35, 10, -20} // ppm
		for i, name := range []string{"n0", "n1", "n2", "n3"} {
			c.MustAddNode(&Node{Name: name, Guardian: true, DriftPPM: drift[i]})
		}
		if err := c.Start(); err != nil {
			panic(err)
		}
		k.Run(sim.Second) // 1000 rounds
		return c.MaxSkew()
	}
	synced, free := mk(true), mk(false)
	// With sync, skew per round = 75ppm * 1ms = 75ns. Free-running skew
	// grows to ~75us over 1000 rounds.
	if synced > 100 {
		t.Fatalf("synced skew %vns, want <= 100ns (one round of drift)", synced)
	}
	if free < 1000*synced/2 {
		t.Fatalf("free-running skew %vns not much worse than synced %vns", free, synced)
	}
}

func TestMembershipRecoversAfterBabbleEnds(t *testing.T) {
	k, c, _ := cluster4(t, baseCfg())
	// Unguarded babbler on n3.
	c.Nodes()[3].Guardian = false
	c.Nodes()[3].BabbleBetween(sim.MS(2), sim.MS(4))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	k.Run(sim.MS(10))
	// After babbling stops, n3 transmits again in its own slot and the
	// others re-admit it.
	for _, n := range c.Nodes() {
		if !n.Membership()[3] {
			t.Fatalf("%s did not re-admit recovered node", n.Name)
		}
	}
	if c.CorruptedSlots() == 0 {
		t.Fatal("babble window had no effect")
	}
}

func TestRoundLength(t *testing.T) {
	_, c, _ := cluster4(t, baseCfg())
	if c.RoundLength() != sim.MS(1) {
		t.Fatalf("round length %v, want 1ms", c.RoundLength())
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (int64, int64, float64) {
		k := sim.NewKernel()
		c := MustNewCluster(k, baseCfg(), nil)
		for i, name := range []string{"a", "b", "c"} {
			c.MustAddNode(&Node{Name: name, Guardian: i != 1, DriftPPM: float64(i * 10)})
		}
		c.Nodes()[1].BabbleBetween(sim.MS(1), sim.MS(2))
		if err := c.Start(); err != nil {
			panic(err)
		}
		k.Run(sim.MS(20))
		return c.CorruptedSlots(), c.Rounds(), c.MaxSkew()
	}
	c1, r1, s1 := runOnce()
	c2, r2, s2 := runOnce()
	if c1 != c2 || r1 != r2 || s1 != s2 {
		t.Fatal("TTP simulation not deterministic")
	}
}
