// Package ttp simulates a TTP-like fully time-triggered protocol: TDMA
// rounds with one slot per node, a membership service with implicit
// acknowledgment, node-local bus guardians, and fault-tolerant-average
// clock synchronization under drifting local clocks.
//
// TTP is the paper's reference (§4, [12]) for a protocol whose services —
// temporal encapsulation, membership, guardianship — provide the fault
// isolation and error containment an integrated architecture needs. The
// experiments use this package to show that a babbling-idiot node is
// contained by the guardian and that membership converges after a crash.
package ttp

import (
	"fmt"
	"math"
	"sort"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

// Config describes a TTP cluster.
type Config struct {
	// SlotLength is the TDMA slot duration.
	SlotLength sim.Duration
	// RoundsPerCluster is the number of TDMA rounds in a cluster cycle.
	RoundsPerCluster int
	// SyncEnabled turns on fault-tolerant-average clock correction at
	// round boundaries.
	SyncEnabled bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SlotLength <= 0 {
		return fmt.Errorf("ttp: non-positive slot length")
	}
	if c.RoundsPerCluster < 1 {
		return fmt.Errorf("ttp: rounds per cluster must be >= 1")
	}
	return nil
}

// Node is one TTP controller with its host application.
type Node struct {
	Name string
	// DriftPPM is the local oscillator's deviation in parts per million.
	DriftPPM float64
	// Guardian enables the node's bus guardian: transmissions outside the
	// node's own slot are physically blocked.
	Guardian bool
	// OnTransmit, when set, is invoked at the end of each successful slot
	// transmission of this node (the RTE's TTP adapter delivers queued
	// state messages here).
	OnTransmit func(end sim.Time)

	// fault state
	crashedAt   sim.Time
	babbleFrom  sim.Time
	babbleUntil sim.Time

	// membership is this node's view: operational flag per node index.
	membership []bool
	// clockOffset is the local clock deviation from global time (ns).
	clockOffset float64

	delivered int64
	index     int
}

// Crashed reports whether the node is down at time t.
func (n *Node) Crashed(t sim.Time) bool { return n.crashedAt != 0 && t >= n.crashedAt }

// Babbling reports whether the node is transmitting outside its slot at t.
func (n *Node) Babbling(t sim.Time) bool {
	return t >= n.babbleFrom && t < n.babbleUntil && !n.Crashed(t)
}

// CrashAt schedules a crash fault.
func (n *Node) CrashAt(t sim.Time) { n.crashedAt = t }

// BabbleBetween schedules a babbling-idiot fault: the node transmits
// continuously during [from, until).
func (n *Node) BabbleBetween(from, until sim.Time) {
	n.babbleFrom, n.babbleUntil = from, until
}

// Membership returns a copy of this node's membership view.
func (n *Node) Membership() []bool { return append([]bool(nil), n.membership...) }

// ClockOffset returns the node's current deviation from global time in
// nanoseconds.
func (n *Node) ClockOffset() float64 { return n.clockOffset }

// Delivered returns how many frames this node successfully transmitted.
func (n *Node) Delivered() int64 { return n.delivered }

// Cluster is a set of TTP nodes sharing one channel.
type Cluster struct {
	Cfg   Config
	Trace *trace.Recorder

	k       *sim.Kernel
	nodes   []*Node
	started bool

	corrupted int64 // slots destroyed by collisions
	blocked   int64 // babble attempts stopped by guardians
	round     int64
	maxSkew   float64 // worst observed inter-node clock skew (ns)
}

// NewCluster creates a cluster on the kernel.
func NewCluster(k *sim.Kernel, cfg Config, rec *trace.Recorder) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{Cfg: cfg, Trace: rec, k: k}, nil
}

// MustNewCluster panics on configuration error.
func MustNewCluster(k *sim.Kernel, cfg Config, rec *trace.Recorder) *Cluster {
	c, err := NewCluster(k, cfg, rec)
	if err != nil {
		panic(err)
	}
	return c
}

// AddNode registers a node; slot order follows registration order.
func (c *Cluster) AddNode(n *Node) error {
	if c.started {
		return fmt.Errorf("ttp: AddNode after Start")
	}
	if n.Name == "" {
		return fmt.Errorf("ttp: node with empty name")
	}
	for _, o := range c.nodes {
		if o.Name == n.Name {
			return fmt.Errorf("ttp: duplicate node %s", n.Name)
		}
	}
	n.index = len(c.nodes)
	c.nodes = append(c.nodes, n)
	return nil
}

// MustAddNode is AddNode that panics on error.
func (c *Cluster) MustAddNode(n *Node) {
	if err := c.AddNode(n); err != nil {
		panic(err)
	}
}

// Nodes returns the registered nodes in slot order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// RoundLength returns the duration of one TDMA round.
func (c *Cluster) RoundLength() sim.Duration {
	return sim.Duration(len(c.nodes)) * c.Cfg.SlotLength
}

// CorruptedSlots returns the number of slots destroyed by collisions.
func (c *Cluster) CorruptedSlots() int64 { return c.corrupted }

// BlockedBabbles returns the number of babble attempts guardians stopped.
func (c *Cluster) BlockedBabbles() int64 { return c.blocked }

// MaxSkew returns the worst inter-node clock skew observed (ns).
func (c *Cluster) MaxSkew() float64 { return c.maxSkew }

// Rounds returns the number of completed TDMA rounds.
func (c *Cluster) Rounds() int64 { return c.round }

// Start initializes membership (everyone operational) and begins the TDMA
// schedule.
func (c *Cluster) Start() error {
	if c.started {
		return fmt.Errorf("ttp: cluster already started")
	}
	if len(c.nodes) < 2 {
		return fmt.Errorf("ttp: need at least two nodes")
	}
	c.started = true
	for _, n := range c.nodes {
		n.membership = make([]bool, len(c.nodes))
		for i := range n.membership {
			n.membership[i] = true
		}
	}
	c.scheduleSlot(0, 0)
	return nil
}

// scheduleSlot runs slot (slotIdx) of the current round starting at t.
func (c *Cluster) scheduleSlot(slotIdx int, t sim.Time) {
	c.k.AtPrio(t, 5, func() {
		end := t + c.Cfg.SlotLength
		owner := c.nodes[slotIdx]
		c.runSlot(owner, t, end)
		next := slotIdx + 1
		if next == len(c.nodes) {
			next = 0
			c.endOfRound(end)
		}
		c.scheduleSlot(next, end)
	})
}

// runSlot evaluates one TDMA slot: guardian checks, collision detection,
// delivery and membership update.
func (c *Cluster) runSlot(owner *Node, start, end sim.Time) {
	// Babbling interference: any node (other than the owner) transmitting
	// now collides with the owner's frame unless its guardian blocks it.
	collision := false
	for _, n := range c.nodes {
		if n == owner || !n.Babbling(start) {
			continue
		}
		if n.Guardian {
			c.blocked++
			c.Trace.Emit(start, trace.Drop, n.Name, c.round, "guardian blocked babble")
			continue
		}
		collision = true
		c.Trace.Emit(start, trace.Error, n.Name, c.round, "babbling collision")
	}
	sent := !owner.Crashed(start) && !collision
	if sent {
		owner.delivered++
		c.Trace.Emit(end, trace.Finish, owner.Name, c.round, "")
		if owner.OnTransmit != nil {
			c.k.AtPrio(end, 40, func() { owner.OnTransmit(end) })
		}
	} else if collision {
		c.corrupted++
		c.Trace.Emit(end, trace.Abort, owner.Name, c.round, "slot corrupted")
	}
	// Membership: every operational node updates its view of the owner
	// from the slot outcome (implicit acknowledgment).
	for _, n := range c.nodes {
		if n.Crashed(end) {
			continue
		}
		n.membership[owner.index] = sent
	}
}

// endOfRound applies clock drift for the round and, when enabled, the
// fault-tolerant-average correction.
func (c *Cluster) endOfRound(at sim.Time) {
	c.round++
	roundNS := float64(c.RoundLength())
	alive := c.aliveNodes(at)
	for _, n := range alive {
		n.clockOffset += n.DriftPPM * 1e-6 * roundNS
	}
	// Track worst pairwise skew at its per-round maximum: after drift
	// accumulation, before any correction.
	minOff, maxOff := math.Inf(1), math.Inf(-1)
	for _, n := range alive {
		minOff = math.Min(minOff, n.clockOffset)
		maxOff = math.Max(maxOff, n.clockOffset)
	}
	if len(alive) >= 2 && maxOff-minOff > c.maxSkew {
		c.maxSkew = maxOff - minOff
	}
	if c.Cfg.SyncEnabled && len(alive) >= 2 {
		// Fault-tolerant average: drop the extreme offsets, average the
		// rest, and steer every clock onto that average.
		offs := make([]float64, len(alive))
		for i, n := range alive {
			offs[i] = n.clockOffset
		}
		sort.Float64s(offs)
		lo, hi := 0, len(offs)
		if len(offs) > 3 {
			lo, hi = 1, len(offs)-1
		}
		sum := 0.0
		for _, v := range offs[lo:hi] {
			sum += v
		}
		avg := sum / float64(hi-lo)
		for _, n := range alive {
			n.clockOffset = avg
		}
	}
}

func (c *Cluster) aliveNodes(at sim.Time) []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if !n.Crashed(at) {
			out = append(out, n)
		}
	}
	return out
}

// MembershipAgreement reports whether all operational, non-babbling nodes
// hold identical membership views at time t.
func (c *Cluster) MembershipAgreement(t sim.Time) bool {
	var ref []bool
	for _, n := range c.nodes {
		if n.Crashed(t) || n.Babbling(t) {
			continue
		}
		if ref == nil {
			ref = n.membership
			continue
		}
		for i := range ref {
			if ref[i] != n.membership[i] {
				return false
			}
		}
	}
	return true
}
