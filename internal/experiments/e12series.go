package experiments

import (
	"fmt"

	"autorte/internal/fault"
	"autorte/internal/flexray"
	"autorte/internal/health"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// e12SampleChain registers the service-delivery gauge and arms the
// platform sampler on the common series grid.
func e12SampleChain(p *rte.Platform, extra ...string) {
	p.Metrics.GaugeFunc("chain_finishes",
		"Cumulative completions of the critical actuation task.",
		func() float64 { return float64(p.Trace.Count(trace.Finish, "Act.apply")) })
	keep := map[string]bool{"chain_finishes": true}
	for _, name := range extra {
		keep[name] = true
	}
	p.EnableSampling(e11SeriesStep, func(name string) bool { return keep[name] })
}

// E12RecoverySeries replays the two E12 recovery scenarios with the
// platform sampler armed, rendering service delivery and recovery as
// virtual-time curves: the protected CAN chain degrading under sustained
// corruption, and the FlexRay chain losing channel A and resuming on the
// redundant channel after failover.
func E12RecoverySeries(cfg E12Config) (*Table, error) {
	tab := &Table{
		Title:   "E12 E2E protection: recovery time series (50ms virtual-time grid)",
		Columns: []string{"scenario", "t", "deg", "failovers", "finishes", "delivery/50ms"},
		Notes: []string{
			"can corrupt: every post-inject frame is rejected by E2E checks, the ladder",
			"restarts the consumer and degrades — delivery stays down (fail-silent).",
			"flexray loss: invalid qualification fails the streams over to channel B and",
			"delivery returns to the nominal 5 completions per 50ms window.",
		},
	}

	// Scenario 1: permanent corruption on the protected CAN chain.
	{
		p, err := rte.Build(e12System(model.BusCAN), rte.Options{E2E: &rte.E2EOptions{}})
		if err != nil {
			return nil, err
		}
		p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", 100) })
		p.MustBehavior("Ctrl", "law", qualifiedForward)
		p.MustBehavior("Act", "apply", func(c *rte.Context) {})
		fault.CorruptPayload(p, e12Signal, cfg.InjectAt, 0, cfg.Seed)
		deg := health.MustDegradation(p, map[health.Level][]string{
			health.Degraded: {"Sensor.sample", "Ctrl.law", "Act.apply"},
			health.LimpHome: {"Act.apply"},
		})
		m := health.NewMonitor(p, health.MonitorOptions{Degradation: deg})
		m.MustProtect("Ctrl", health.Policy{
			Debounce:    health.DebounceConfig{Inc: 2, Dec: 1, Threshold: 4},
			MaxAttempts: 2, Cooldown: sim.MS(15),
			ResetDowntime: sim.MS(20), HealAfter: sim.MS(60),
			Runnable: "law",
		})
		e12SampleChain(p, "health_degradation_level")
		p.Run(cfg.Horizon)
		if err := e12SeriesRows(tab, p, "can corrupt", true); err != nil {
			return nil, err
		}
	}

	// Scenario 2: FlexRay channel A dies; protected streams fail over.
	{
		p, err := rte.Build(e12System(model.BusFlexRay), rte.Options{E2E: &rte.E2EOptions{}})
		if err != nil {
			return nil, err
		}
		p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", 100) })
		p.MustBehavior("Ctrl", "law", qualifiedForward)
		p.MustBehavior("Act", "apply", func(c *rte.Context) {})
		p.FlexRayBus("bus0").FailChannel(flexray.ChannelA, cfg.InjectAt)
		e12SampleChain(p, "e2e_failovers_total")
		p.Run(cfg.Horizon)
		if err := e12SeriesRows(tab, p, "flexray loss", false); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// e12SeriesRows folds one sampled platform into table rows. Series are
// joined on the grid of chain_finishes; metrics registered mid-run
// (e.g. the failover counter on first failover) show "-" until their
// first sample.
func e12SeriesRows(tab *Table, p *rte.Platform, scenario string, hasDeg bool) error {
	byName := map[string]map[int64]float64{}
	for _, s := range p.Sampler().Series() {
		at := map[int64]float64{}
		for _, pt := range s.Points {
			at[pt.At] = pt.Value
		}
		byName[s.Name] = at
	}
	cell := func(name string, at int64, on bool) string {
		if vals, ok := byName[name]; on && ok {
			if v, ok := vals[at]; ok {
				return fmt.Sprintf("%.0f", v)
			}
		}
		return "-"
	}
	var grid []int64
	for _, s := range p.Sampler().Series() {
		if s.Name == "chain_finishes" {
			for _, pt := range s.Points {
				grid = append(grid, pt.At)
			}
		}
	}
	if len(grid) == 0 {
		return fmt.Errorf("e12 series: %s produced no chain_finishes samples", scenario)
	}
	prev := 0.0
	for _, at := range grid {
		fin := byName["chain_finishes"][at]
		tab.Add(scenario, sim.Time(at),
			cell("health_degradation_level", at, hasDeg),
			cell("e2e_failovers_total", at, true),
			fmt.Sprintf("%.0f", fin), fmt.Sprintf("%.0f", fin-prev))
		prev = fin
	}
	return nil
}
