package experiments

import (
	"testing"

	"autorte/internal/fault"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// runForwardLaw drives the E12 chain through a bounded bus outage and
// counts actuator activations under the given controller law.
func runForwardLaw(t *testing.T, law rte.Behavior) int {
	t.Helper()
	p, err := rte.Build(e12System(model.BusCAN), rte.Options{E2E: &rte.E2EOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", float64(c.Job())) })
	p.MustBehavior("Ctrl", "law", law)
	acts := 0
	p.MustBehavior("Act", "apply", func(c *rte.Context) { acts++ })
	fault.DropPDU(p, e12Signal, sim.MS(100), sim.MS(200))
	p.Run(sim.MS(400))
	return acts
}

// The qualified forward law must hold actuation while the feeding
// channel's E2E state machine still condemns it: after the outage the
// first deliveries arrive during requalification, and a gated law
// suppresses them where a plain forward acts immediately.
func TestQualifiedForwardGatesInvalidChannel(t *testing.T) {
	plain := func(c *rte.Context) { c.Write("cmd", "u", c.Read("in", "v")) } //autovet:allow e2eflow deliberately ungated baseline of the gating regression test
	ungated := runForwardLaw(t, plain)
	gated := runForwardLaw(t, qualifiedForward)
	if gated == 0 {
		t.Fatal("gated law never actuated: the channel must requalify after the outage")
	}
	if gated >= ungated {
		t.Fatalf("gated law actuated %d times, ungated %d: gating suppressed nothing", gated, ungated)
	}
}

// Without protection E2EStatus reports nothing and the qualified law
// degenerates to a plain forward: both arms of a protected-versus-
// unprotected comparison can share it.
func TestQualifiedForwardPassthroughUnprotected(t *testing.T) {
	p, err := rte.Build(e12System(model.BusCAN), rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", float64(c.Job())) })
	p.MustBehavior("Ctrl", "law", qualifiedForward)
	acts := 0
	p.MustBehavior("Act", "apply", func(c *rte.Context) { acts++ })
	p.Run(sim.MS(200))
	if acts == 0 {
		t.Fatal("qualified forward forwarded nothing on an unprotected channel")
	}
}
