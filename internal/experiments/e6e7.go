package experiments

import (
	"fmt"
	"time"

	"autorte/internal/contract"
	"autorte/internal/core"
	"autorte/internal/deploy"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/workload"
)

// E6Config parameterizes the contract verification scaling study.
type E6Config struct {
	Sizes []int // number of chains per generated system (3 SWCs each)
	Seed  uint64
}

// DefaultE6 is the published configuration.
func DefaultE6() E6Config {
	return E6Config{Sizes: []int{4, 16, 64, 167}, Seed: 11}
}

// E6Contracts measures contract-based verification (§3) at realistic
// system sizes: wall-clock verify time, connections checked, and whether
// seeded incompatibilities are detected.
func E6Contracts(cfg E6Config) (*Table, error) {
	tab := &Table{
		Title:   "E6 contract verification scaling and violation detection",
		Columns: []string{"components", "connections", "verify time", "violations seeded", "violations found"},
		Notes: []string{
			"one seeded incompatibility per 10 connected pairs (consumer assumes a",
			"tighter range than guaranteed); all must be reported.",
		},
	}
	for _, chains := range cfg.Sizes {
		r := sim.NewRand(cfg.Seed + uint64(chains))
		comps, ifaces, conns, err := workload.GenerateDAS(workload.DASSpec{
			Name: "sys", Supplier: "t1", Chains: chains, Utilization: float64(chains) * 0.05,
		}, r)
		if err != nil {
			return nil, err
		}
		sys := &model.System{
			Name: "contracts", Components: comps, Interfaces: ifaces, Connectors: conns,
			ECUs:    []*model.ECU{{Name: "e1", Speed: 1}},
			Mapping: map[string]string{},
		}
		for _, c := range comps {
			sys.Mapping[c.Name] = "e1"
		}
		// Contracts: every sensor guarantees [0,100]; every controller
		// assumes [0,200] except every 10th, which assumes [0,50] — a
		// seeded violation.
		contracts := map[string]*contract.Contract{}
		seeded := 0
		pair := 0
		for _, c := range comps {
			switch {
			case c.Port("out") != nil && c.Port("in") == nil: // sensor
				contracts[c.Name] = &contract.Contract{
					Component:  c.Name,
					Guarantees: []contract.Condition{{Kind: contract.ValueRange, Port: "out", Elem: "v", Lo: 0, Hi: 100}},
					Vertical:   []contract.VerticalAssumption{{Resource: "cpu", Budget: float64(c.Runnables[0].WCETNominal), Confidence: 0.9}},
				}
			case c.Port("in") != nil && c.Port("cmd") != nil: // controller
				hi := 200.0
				pair++
				if pair%10 == 0 {
					hi = 50
					seeded++
				}
				contracts[c.Name] = &contract.Contract{
					Component: c.Name,
					Assumes:   []contract.Condition{{Kind: contract.ValueRange, Port: "in", Elem: "v", Lo: 0, Hi: hi}},
				}
			}
		}
		start := time.Now() //autovet:allow walltime E6 reports host verify latency by design
		rep, err := contract.CheckSystem(sys, contracts)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start) //autovet:allow walltime E6 reports host verify latency by design
		if len(rep.Violations) != seeded {
			return nil, fmt.Errorf("E6: seeded %d violations, found %d", seeded, len(rep.Violations))
		}
		tab.Add(len(comps), len(conns), elapsed.Round(time.Microsecond), seeded, len(rep.Violations))
	}
	return tab, nil
}

// E7Config parameterizes the consolidation study.
type E7Config struct {
	Seed        uint64
	AnnealIters int
}

// DefaultE7 is the published configuration.
func DefaultE7() E7Config { return E7Config{Seed: 7, AnnealIters: 4000} }

// E7Consolidation reproduces §4's federated → integrated argument: DSE
// consolidation reduces ECUs and harness length while the consolidated
// system still passes static verification.
func E7Consolidation(cfg E7Config) (*Table, error) {
	tab := &Table{
		Title:   "E7 federated -> integrated consolidation",
		Columns: []string{"architecture", "ECUs", "harness (m)", "max load", "feasible", "verified"},
		Notes: []string{
			"federated: one subsystem per ECU cluster (the 2008 status quo);",
			"greedy/annealed: consolidated mappings under a 0.69 utilization cap.",
		},
	}
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(cfg.Seed))
	if err != nil {
		return nil, err
	}
	cons := deploy.Constraints{RespectASIL: true, RespectMemory: true}
	add := func(name string, s *model.System) error {
		m := deploy.Evaluate(s, cons)
		rep, err := core.Verify(s, nil, rte.Options{})
		if err != nil {
			return err
		}
		tab.Add(name, m.ECUs, m.Harness, m.MaxLoad, m.Feasible, rep.OK())
		return nil
	}
	if err := add("federated", sys); err != nil {
		return nil, err
	}
	greedy, err := deploy.Greedy(sys, cons)
	if err != nil {
		return nil, err
	}
	if err := add("greedy FFD", greedy); err != nil {
		return nil, err
	}
	annealed, err := deploy.Anneal(greedy, cons, deploy.DefaultObjective(), cfg.Seed, cfg.AnnealIters)
	if err != nil {
		return nil, err
	}
	if err := add("annealed", annealed); err != nil {
		return nil, err
	}
	return tab, nil
}
