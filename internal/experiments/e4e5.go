package experiments

import (
	"fmt"

	"autorte/internal/can"
	"autorte/internal/flexray"
	"autorte/internal/osek"
	"autorte/internal/sched"
	"autorte/internal/sim"
	"autorte/internal/trace"
	"autorte/internal/ttethernet"
	"autorte/internal/ttp"
)

// E4Config parameterizes the CAN-vs-FlexRay comparison.
type E4Config struct {
	Loads   []float64 // background bus load fractions
	Horizon sim.Time
}

// DefaultE4 is the published configuration.
func DefaultE4() E4Config {
	return E4Config{Loads: []float64{0.2, 0.4, 0.6, 0.8, 0.9}, Horizon: 4 * sim.Second}
}

// E4BusComparison contrasts the victim's latency on event-triggered CAN
// (priority arbitration: latency and jitter grow with load) against a
// FlexRay static slot (interference-free sub-channel, §4).
func E4BusComparison(cfg E4Config) (*Table, error) {
	tab := &Table{
		Title:   "E4 event-triggered vs time-triggered bus: victim latency vs load",
		Columns: []string{"bus", "load", "victim mean", "victim p99", "victim jitter", "misses"},
		Notes: []string{
			"CAN victim: lowest priority 10ms message under rising higher-priority load;",
			"FlexRay victim: the same signal in a static slot — load-independent by design.",
		},
	}
	ccfg := can.Config{BitRate: 500_000}
	frame := ccfg.FrameTime(8)
	for _, load := range cfg.Loads {
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		bus := can.MustNewBus(k, "can0", ccfg, rec)
		// Background: 8 higher-priority messages sharing the load, with
		// deliberately non-harmonic periods so the victim's phase drifts
		// through every interference pattern.
		n := 8
		per := sim.Duration(float64(frame) * float64(n) / load)
		for i := 0; i < n; i++ {
			p := sim.Duration(float64(per) * (1 + 0.037*float64(i)))
			bus.MustAddMessage(&can.Message{
				Name: fmt.Sprintf("bg%d", i), ID: uint32(i + 1), DLC: 8,
				Period: p, Offset: sim.Duration(i) * p / sim.Duration(2*n),
			})
		}
		bus.MustAddMessage(&can.Message{
			Name: "victim", ID: 100, DLC: 8, Period: sim.MS(10), Offset: sim.US(1),
		})
		bus.Start()
		k.Run(cfg.Horizon)
		st := trace.Summarize(rec, "victim")
		tab.Add("CAN", load, st.Mean, st.P99, st.Jitter, st.MissCount)
	}
	// TT-Ethernet: the victim as a TT stream on a 100 Mbit/s switch with
	// rising best-effort load on the same egress port.
	ecfg := ttethernet.Config{BitRate: 100_000_000, Cycle: sim.MS(1)}
	for _, load := range cfg.Loads {
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		sw := ttethernet.MustNewSwitch(k, ecfg, rec)
		sw.MustAddStream(&ttethernet.Stream{
			Name: "victim", Class: ttethernet.TT, Bytes: 100, Egress: "p1",
			Slot: sim.US(500), Period: sim.MS(10),
		})
		// Best-effort background sized to the load fraction (1500-byte
		// frames ~ 122us wire time each).
		bePeriod := sim.Duration(float64(122*sim.Microsecond) / load)
		sw.MustAddStream(&ttethernet.Stream{
			Name: "be", Class: ttethernet.BE, Bytes: 1500, Egress: "p1", Period: bePeriod,
		})
		sw.Start()
		k.Run(cfg.Horizon)
		st := trace.Summarize(rec, "victim")
		tab.Add("TTEthernet", load, st.Mean, st.P99, st.Jitter, st.MissCount)
	}
	// TTP: the victim signal rides its node's TDMA slot in a 4-node
	// cluster. Other nodes' traffic occupies their own slots by
	// construction, so the load column only demonstrates flatness.
	tcfg := ttp.Config{SlotLength: sim.US(250), RoundsPerCluster: 2, SyncEnabled: true}
	for _, load := range cfg.Loads {
		k := sim.NewKernel()
		cluster := ttp.MustNewCluster(k, tcfg, nil)
		victim := &ttp.Node{Name: "victim", Guardian: true}
		cluster.MustAddNode(victim)
		for i := 0; i < 3; i++ {
			cluster.MustAddNode(&ttp.Node{Name: fmt.Sprintf("n%d", i), Guardian: true})
		}
		var queued []sim.Time
		var lats []sim.Duration
		victim.OnTransmit = func(end sim.Time) {
			for _, q := range queued {
				lats = append(lats, end-q)
			}
			queued = queued[:0]
		}
		var enqueue func(at sim.Time)
		enqueue = func(at sim.Time) {
			k.AtPrio(at, 2, func() {
				queued = append(queued, at)
				enqueue(at + sim.MS(10))
			})
		}
		enqueue(sim.US(1))
		if err := cluster.Start(); err != nil {
			return nil, err
		}
		k.Run(cfg.Horizon)
		st := trace.Compute(lats)
		tab.Add("TTP", load, st.Mean, st.P99, st.Jitter, 0)
	}
	// FlexRay: same victim signal in a static slot; background load rides
	// other slots and the dynamic segment, so it cannot matter — shown for
	// one representative load per sweep point.
	fcfg := flexray.Config{
		StaticSlots: 8, SlotLength: sim.US(200),
		Minislots: 40, MinislotLength: sim.US(10), NIT: sim.US(0),
	}
	for _, load := range cfg.Loads {
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		bus := flexray.MustNewBus(k, "fr0", fcfg, rec)
		bus.MustAddFrame(&flexray.Frame{
			Name: "victim", Kind: flexray.Static, SlotID: 5, Repetition: 1, Period: sim.MS(10),
		})
		// Background dynamic traffic scaled by load (cannot affect the
		// static slot, demonstrated by measurement).
		nDyn := int(load * 5)
		for i := 0; i < nDyn; i++ {
			bus.MustAddFrame(&flexray.Frame{
				Name: fmt.Sprintf("bg%d", i), Kind: flexray.Dynamic,
				FrameID: 9 + i, Length: 6, Period: sim.MS(2),
			})
		}
		bus.Start()
		k.Run(cfg.Horizon)
		st := trace.Summarize(rec, "victim")
		tab.Add("FlexRay", load, st.Mean, st.P99, st.Jitter, st.MissCount)
	}
	return tab, nil
}

// E5Config parameterizes the analysis-vs-simulation study.
type E5Config struct {
	Trials  int
	Seed    uint64
	Horizon sim.Time
}

// DefaultE5 is the published configuration.
func DefaultE5() E5Config {
	return E5Config{Trials: 20, Seed: 2024, Horizon: 2 * sim.Second}
}

// E5AnalysisVsSim validates that the schedulability analyses §3 relies on
// are sound (bounds dominate every simulated response) and reports their
// tightness, for both CPU task sets and CAN message sets. It also compares
// deadline-monotonic against Audsley's optimal priority assignment.
func E5AnalysisVsSim(cfg E5Config) (*Table, error) {
	tab := &Table{
		Title:   "E5 analysis soundness and tightness",
		Columns: []string{"domain", "trials", "sound", "mean tightness (sim/bound)", "DM schedulable", "Audsley schedulable"},
		Notes: []string{
			"sound: simulated worst case never exceeded the analytic bound;",
			"tightness: closer to 1 means the analysis is less pessimistic.",
		},
	}
	r := sim.NewRand(cfg.Seed)
	periods := []sim.Duration{sim.MS(5), sim.MS(10), sim.MS(20), sim.MS(50), sim.MS(100)}

	// CPU domain.
	sound := true
	tightSum, tightN := 0.0, 0
	dmOK, audOK := 0, 0
	for trial := 0; trial < cfg.Trials; trial++ {
		n := 4 + r.Intn(5)
		var tasks []sched.Task
		for i := 0; i < n; i++ {
			T := periods[r.Intn(len(periods))]
			tasks = append(tasks, sched.Task{
				Name: fmt.Sprintf("t%d", i),
				C:    r.Range(sim.US(200), T/sim.Duration(n)),
				T:    T,
				// Constrained deadlines stress the assignment algorithms.
				D: T - r.Range(0, T/4),
			})
		}
		dm := sched.AssignDeadlineMonotonic(tasks)
		okDM, rs, err := sched.Schedulable(dm)
		if err != nil {
			return nil, err
		}
		if okDM {
			dmOK++
		}
		if _, okA, err := sched.AssignAudsley(tasks); err != nil {
			return nil, err
		} else if okA {
			audOK++
		}
		if !okDM {
			continue
		}
		wcrt := map[string]sim.Duration{}
		for _, res := range rs {
			wcrt[res.Task.Name] = res.WCRT
		}
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		cpu := osek.NewCPU(k, "ecu", 1, rec)
		for _, tk := range dm {
			cpu.MustAddTask(&osek.Task{Name: tk.Name, Priority: tk.Priority, WCET: tk.C, Period: tk.T, Deadline: tk.D})
		}
		cpu.Start()
		k.Run(cfg.Horizon)
		for _, tk := range dm {
			st := trace.Compute(rec.Latencies(tk.Name))
			if st.N == 0 {
				continue
			}
			if st.Max > wcrt[tk.Name] {
				sound = false
			}
			tightSum += float64(st.Max) / float64(wcrt[tk.Name])
			tightN++
		}
	}
	tab.Add("CPU/RTA", cfg.Trials, sound, tightSum/float64(max(tightN, 1)),
		fmt.Sprintf("%d/%d", dmOK, cfg.Trials), fmt.Sprintf("%d/%d", audOK, cfg.Trials))

	// CAN domain.
	ccfg := can.Config{BitRate: 500_000}
	sound = true
	tightSum, tightN = 0.0, 0
	analyzed := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		n := 5 + r.Intn(8)
		var msgs []*can.Message
		for i := 0; i < n; i++ {
			msgs = append(msgs, &can.Message{
				Name: fmt.Sprintf("m%d", i), ID: uint32(i + 1),
				DLC: 1 + r.Intn(8), Period: periods[r.Intn(len(periods))],
			})
		}
		if can.TotalUtilization(ccfg, msgs) > 0.85 {
			continue
		}
		analyzed++
		rs, err := can.Analyze(ccfg, msgs)
		if err != nil {
			return nil, err
		}
		wcrt := map[string]sim.Duration{}
		allSched := true
		for _, resp := range rs {
			wcrt[resp.Message.Name] = resp.WCRT
			if !resp.Schedulable {
				allSched = false
			}
		}
		if !allSched {
			continue
		}
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		bus := can.MustNewBus(k, "can0", ccfg, rec)
		for _, m := range msgs {
			bus.MustAddMessage(m)
		}
		bus.Start()
		k.Run(cfg.Horizon)
		for _, m := range msgs {
			st := trace.Compute(rec.Latencies(m.Name))
			if st.N == 0 {
				continue
			}
			if st.Max > wcrt[m.Name] {
				sound = false
			}
			tightSum += float64(st.Max) / float64(wcrt[m.Name])
			tightN++
		}
	}
	tab.Add("CAN/RTA", analyzed, sound, tightSum/float64(max(tightN, 1)), "-", "-")
	return tab, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
