// Package experiments implements the reproduction suite E1–E14 defined in
// DESIGN.md. The paper is a position paper without quantitative results,
// so each experiment operationalizes one of its claims; EXPERIMENTS.md
// records the qualitative shape the paper predicts next to what these
// functions measure. cmd/experiments prints the tables; bench_test.go
// wraps each experiment as a benchmark.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// All runs every experiment at its default scale and renders the tables.
func All(w io.Writer) error {
	runs := []func() (*Table, error){
		func() (*Table, error) { return E1Interference(DefaultE1()) },
		func() (*Table, error) { return E2IsolationOverhead(DefaultE2()) },
		func() (*Table, error) { return E3OverrunContainment(DefaultE3()) },
		func() (*Table, error) { return E4BusComparison(DefaultE4()) },
		func() (*Table, error) { return E5AnalysisVsSim(DefaultE5()) },
		func() (*Table, error) { return E6Contracts(DefaultE6()) },
		func() (*Table, error) { return E7Consolidation(DefaultE7()) },
		func() (*Table, error) { return E8NoC(DefaultE8()) },
		func() (*Table, error) { return E9Extensibility(DefaultE9()) },
		func() (*Table, error) { return E10ErrorHandling(DefaultE10()) },
		func() (*Table, error) { return E11FaultCampaign(DefaultE11()) },
		func() (*Table, error) { return E11LimpHome(DefaultE11()) },
		func() (*Table, error) { return E11RecoverySeries(DefaultE11()) },
		func() (*Table, error) { return E11EscalationTimeline(DefaultE11()) },
		func() (*Table, error) { return E12DetectionCoverage(DefaultE12()) },
		func() (*Table, error) { return E12Overhead(DefaultE12()) },
		func() (*Table, error) { return E12Recovery(DefaultE12()) },
		func() (*Table, error) { return E12RecoverySeries(DefaultE12()) },
		func() (*Table, error) { return E13Availability(DefaultE13()) },
		func() (*Table, error) { return E13Curve(DefaultE13()) },
		func() (*Table, error) { return E14Observer(DefaultE14()) },
		func() (*Table, error) { return E14Switchover(DefaultE14()) },
		func() (*Table, error) { return E14Placement(DefaultE14()) },
	}
	for _, run := range runs {
		tab, err := run()
		if err != nil {
			return err
		}
		tab.Render(w)
	}
	return nil
}
