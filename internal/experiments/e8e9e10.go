package experiments

import (
	"fmt"

	"autorte/internal/core"
	"autorte/internal/fault"
	"autorte/internal/model"
	"autorte/internal/noc"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
	"autorte/internal/workload"
)

// E8Config parameterizes the NoC composability study.
type E8Config struct {
	Horizon sim.Time
}

// DefaultE8 is the published configuration.
func DefaultE8() E8Config { return E8Config{Horizon: 100 * sim.Millisecond} }

// E8NoC checks §4's four composability requirements on a 4×4 MPSoC mesh
// under three configurations: best-effort wormhole, best-effort with rate
// policing, and TDMA. For each it reports interference (R3), stability
// under an added flow (R2), and babbling-idiot containment (R4); precise
// interface specification (R1) holds by construction of declared flows.
func E8NoC(cfg E8Config) (*Table, error) {
	tab := &Table{
		Title:   "E8 NoC composability requirements R1-R4",
		Columns: []string{"mode", "R1 precise ifaces", "R2 stable prior", "R3 non-interfering", "R4 babble contained", "blocked injections"},
		Notes: []string{
			"R4: a babbling core must not move the critical flow's latency at all.",
		},
	}
	base := []*noc.Flow{
		{Name: "crit", Src: noc.Coord{X: 0, Y: 0}, Dst: noc.Coord{X: 3, Y: 0}, Flits: 4, Period: sim.US(3200)},
		// Shares the row-0 links with crit: interference is possible in
		// best-effort mode, impossible under TDMA.
		{Name: "video", Src: noc.Coord{X: 1, Y: 0}, Dst: noc.Coord{X: 3, Y: 0}, Flits: 12, Period: sim.US(3200), Offset: sim.US(1)},
	}
	added := []*noc.Flow{
		{Name: "diag", Src: noc.Coord{X: 1, Y: 0}, Dst: noc.Coord{X: 3, Y: 0}, Flits: 8, Period: sim.US(3200)},
	}
	configs := []struct {
		name string
		cfg  noc.Config
	}{
		{"best-effort", noc.Config{Width: 4, Height: 4, FlitTime: sim.US(1), Mode: noc.BestEffort}},
		{"best-effort+police", noc.Config{Width: 4, Height: 4, FlitTime: sim.US(1), Mode: noc.BestEffort, RatePolice: true}},
		{"tdma", noc.Config{Width: 4, Height: 4, FlitTime: sim.US(1), Mode: noc.TDMA, SlotLength: sim.US(200)}},
	}
	for _, c := range configs {
		rep, err := noc.CheckComposition(c.cfg, base, added, cfg.Horizon)
		if err != nil {
			return nil, err
		}
		// R4: babble containment measured against a quiet baseline.
		measure := func(babble bool) (trace.Stats, int64, error) {
			k := sim.NewKernel()
			rec := &trace.Recorder{}
			net, err := noc.NewNetwork(k, c.cfg, rec)
			if err != nil {
				return trace.Stats{}, 0, err
			}
			for _, f := range base {
				cp := *f
				net.MustAddFlow(&cp)
			}
			if babble {
				net.BabbleCore(noc.Coord{X: 1, Y: 0}, 0, cfg.Horizon)
			}
			net.Start()
			k.Run(cfg.Horizon)
			return trace.Compute(rec.Latencies("crit")), net.BlockedInjections(), nil
		}
		quiet, _, err := measure(false)
		if err != nil {
			return nil, err
		}
		loud, blocked, err := measure(true)
		if err != nil {
			return nil, err
		}
		contained := loud.Max == quiet.Max && loud.Jitter == quiet.Jitter
		tab.Add(c.name, rep.PreciseInterfaces, rep.StablePriorServices, rep.NonInterfering, contained, blocked)
	}
	return tab, nil
}

// E9Config parameterizes the extensibility study.
type E9Config struct {
	Seed       uint64
	Intruders  []int
	Horizon    sim.Time
	TargetECU  string
	MajorFrame sim.Duration
}

// DefaultE9 is the published configuration.
func DefaultE9() E9Config {
	return E9Config{
		Seed: 31, Intruders: []int{1, 2, 3}, Horizon: 200 * sim.Millisecond,
		TargetECU: "ecu_chassis_0", MajorFrame: sim.MS(1),
	}
}

// E9Extensibility adds post-integration supplier components to a verified
// vehicle and counts how many prior tasks degrade under plain fixed
// priority versus a planned time-triggered table (§1 extensibility, §4
// R2 "stability of prior services").
func E9Extensibility(cfg E9Config) (*Table, error) {
	tab := &Table{
		Title:   "E9 extensibility: prior tasks degraded by adding new supplier SWCs",
		Columns: []string{"new SWCs", "policy", "degraded tasks", "stable"},
		Notes: []string{
			"planned TT table pre-reserves a window for the new supplier, so prior",
			"windows never move; plain FP lets the newcomer preempt everyone.",
		},
	}
	base, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(cfg.Seed))
	if err != nil {
		return nil, err
	}
	planned := rte.Options{
		Isolation:  rte.TablePerSupplier,
		MajorFrame: cfg.MajorFrame,
		Reservations: map[string]float64{
			"tierP": 0.55, "tierC": 0.55, "tierB": 0.35, "tierT": 0.35,
			"zNew": 0.25,
		},
	}
	for _, n := range cfg.Intruders {
		extended := base.Clone()
		for i := 0; i < n; i++ {
			comp := &model.SWC{
				Name: fmt.Sprintf("zNew_comp%d", i), Supplier: "zNew", DAS: "aftermarket",
				Runnables: []model.Runnable{{
					Name: "spin", WCETNominal: sim.Duration(float64(sim.US(600)) / float64(n)),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(1)},
				}},
			}
			extended.Components = append(extended.Components, comp)
			extended.Mapping[comp.Name] = cfg.TargetECU
		}
		for _, opts := range []struct {
			name string
			o    rte.Options
		}{{"fixed-priority", rte.Options{}}, {"planned tt-table", planned}} {
			rep, err := core.CheckExtension(base, extended, opts.o, cfg.Horizon)
			if err != nil {
				return nil, err
			}
			degraded := 0
			for _, d := range rep.Deltas {
				if d.Degraded {
					degraded++
				}
			}
			tab.Add(n, opts.name, degraded, rep.Stable)
		}
	}
	return tab, nil
}

// E10Config parameterizes the error handling study.
type E10Config struct {
	Horizon  sim.Time
	InjectAt sim.Time
}

// DefaultE10 is the published configuration.
func DefaultE10() E10Config {
	return E10Config{Horizon: 300 * sim.Millisecond, InjectAt: 100 * sim.Millisecond}
}

// E10ErrorHandling exercises the three §2 error handling use cases —
// broken sensor, communication error, memory failure — plus the timing
// overrun, measuring detection latency and checking that the error is
// reported to the application layer (mode-switch handler activation).
func E10ErrorHandling(cfg E10Config) (*Table, error) {
	tab := &Table{
		Title:   "E10 error handling use cases: detection and reporting",
		Columns: []string{"fault", "detected", "detection latency", "handler activated"},
	}
	type scenario struct {
		name   string
		kind   rte.ErrorKind
		opts   rte.Options
		inject func(p *rte.Platform)
	}
	scenarios := []scenario{
		{
			name: "timing overrun (budget protection)", kind: rte.ErrTiming,
			opts: rte.Options{EnforceBudgets: true},
			inject: func(p *rte.Platform) {
				p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", 100) })
				p.MustBehavior("Watch", "check", func(c *rte.Context) {})
				fault.OverrunTask(p.K, p.Task("Sensor", "sample"), cfg.InjectAt, 50)
			},
		},
		{
			name: "broken sensor (silent)", kind: rte.ErrSensor,
			inject: func(p *rte.Platform) {
				p.MustBehavior("Sensor", "sample", fault.BreakSensor(cfg.InjectAt, fault.Silent, 0,
					func(c *rte.Context) { c.Write("out", "v", 100) }))
				p.MustBehavior("Watch", "check", fault.AgeMonitor("in", "v", sim.MS(25)))
			},
		},
		{
			name: "broken sensor (noise)", kind: rte.ErrSensor,
			inject: func(p *rte.Platform) {
				p.MustBehavior("Sensor", "sample", fault.BreakSensor(cfg.InjectAt, fault.Noise, 9999,
					func(c *rte.Context) { c.Write("out", "v", 100) }))
				p.MustBehavior("Watch", "check", fault.RangeMonitor("in", "v", 0, 300, rte.ErrSensor))
			},
		},
		{
			name: "memory failure (corruption)", kind: rte.ErrMemory,
			inject: func(p *rte.Platform) {
				p.MustBehavior("Sensor", "sample", fault.CorruptValue(cfg.InjectAt,
					func(c *rte.Context) { c.Write("out", "v", 100) }))
				p.MustBehavior("Watch", "check", fault.RangeMonitor("in", "v", 0, 300, rte.ErrMemory))
			},
		},
		{
			name: "communication error (burst)", kind: rte.ErrComm,
			inject: func(p *rte.Platform) {
				p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", 100) })
				// Detector: stale input during the burst window.
				p.MustBehavior("Watch", "check", fault.AgeMonitor("in", "v", sim.MS(25)))
				fault.CANBurst(p.CANBus("can0"), cfg.InjectAt, cfg.InjectAt+sim.MS(60), 1.0, 5)
			},
		},
	}
	for _, sc := range scenarios {
		sys := e10System()
		p, err := rte.Build(sys, sc.opts)
		if err != nil {
			return nil, err
		}
		handled := 0
		p.MustBehavior("Diag", "onError", func(c *rte.Context) { handled++ })
		p.MustBehavior("Diag", "onMem", func(c *rte.Context) { handled++ })
		p.MustBehavior("Diag", "onTiming", func(c *rte.Context) { handled++ })
		sc.inject(p)
		p.Run(cfg.Horizon)
		wantKind := sc.kind
		if sc.name == "communication error (burst)" {
			// The age monitor classifies the symptom as a sensor error;
			// the platform independently counts bus error frames.
			wantKind = rte.ErrSensor
		}
		lat, ok := fault.DetectionLatency(p.Errors.Records(), wantKind, cfg.InjectAt)
		latStr := "-"
		if ok {
			latStr = fmt.Sprint(lat)
		}
		tab.Add(sc.name, ok, latStr, handled > 0)
	}
	return tab, nil
}

// e10System: Sensor on e1 -> Watch (monitor) on e2 over CAN, plus a Diag
// component subscribed to all three error modes.
func e10System() *model.System {
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	return &model.System{
		Name:       "e10",
		Interfaces: []*model.PortInterface{ifV},
		Components: []*model.SWC{
			{
				Name:  "Sensor",
				Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "sample", WCETNominal: sim.US(50),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
					Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
				}},
			},
			{
				Name:  "Watch",
				Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "check", WCETNominal: sim.US(20),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10), Offset: sim.MS(5)},
					Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
				}},
			},
			{
				Name: "Diag",
				Runnables: []model.Runnable{
					{Name: "onError", WCETNominal: sim.US(10),
						Trigger: model.Trigger{Kind: model.ModeSwitchEvent, Mode: "sensor"}},
					{Name: "onMem", WCETNominal: sim.US(10),
						Trigger: model.Trigger{Kind: model.ModeSwitchEvent, Mode: "memory"}},
					{Name: "onTiming", WCETNominal: sim.US(10),
						Trigger: model.Trigger{Kind: model.ModeSwitchEvent, Mode: "timing"}},
				},
			},
		},
		ECUs: []*model.ECU{
			{Name: "e1", Speed: 1, Buses: []string{"can0"}},
			{Name: "e2", Speed: 1, Buses: []string{"can0"}},
		},
		Buses:      []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 500_000}},
		Connectors: []model.Connector{{FromSWC: "Sensor", FromPort: "out", ToSWC: "Watch", ToPort: "in"}},
		Mapping:    map[string]string{"Sensor": "e1", "Watch": "e2", "Diag": "e2"},
	}
}
