package experiments

import (
	"fmt"

	"autorte/internal/osek"
	"autorte/internal/protection"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// Policy is the per-supplier scheduling policy under test.
type Policy uint8

// Policies compared in E1–E3.
const (
	PlainFP Policy = iota
	DeferrableServerPolicy
	PollingServerPolicy
	SporadicServerPolicy
	TTTable
)

func (p Policy) String() string {
	switch p {
	case PlainFP:
		return "fixed-priority"
	case DeferrableServerPolicy:
		return "deferrable-server"
	case PollingServerPolicy:
		return "polling-server"
	case SporadicServerPolicy:
		return "sporadic-server"
	default:
		return "tt-table"
	}
}

// victimSet is supplier A's task set: three periodic tasks, U = 0.30.
func victimSet() []*osek.Task {
	return []*osek.Task{
		{Name: "A.fast", Priority: 30, WCET: sim.US(500), Period: sim.MS(5), Supplier: "A"},
		{Name: "A.mid", Priority: 20, WCET: sim.MS(1), Period: sim.MS(10), Supplier: "A"},
		{Name: "A.slow", Priority: 10, WCET: sim.MS(2), Period: sim.MS(20), Supplier: "A"},
	}
}

// aggressorSet is supplier B's task set at the given utilization, running
// at priorities interleaved above A's (the worst case for A).
func aggressorSet(util float64) []*osek.Task {
	// Two tasks splitting the utilization, periods 4ms and 8ms.
	return []*osek.Task{
		{Name: "B.hi", Priority: 35, WCET: sim.Duration(util / 2 * float64(sim.MS(4))), Period: sim.MS(4), Supplier: "B"},
		{Name: "B.lo", Priority: 25, WCET: sim.Duration(util / 2 * float64(sim.MS(8))), Period: sim.MS(8), Supplier: "B"},
	}
}

// bReservation is supplier B's contractually planned CPU share. It is a
// constant: reservations are agreed at integration time, not functions of
// whatever load B later offers. B offering more than its reservation is
// exactly the fault isolation must contain.
const bReservation = 0.35

// applyPolicy attaches throttles implementing the policy to supplier B.
// Supplier A is left unthrottled under server policies: the question is
// whether B can hurt A.
func applyPolicy(tasks []*osek.Task, policy Policy) error {
	var throttle osek.Throttle
	budget := sim.Duration(bReservation * float64(sim.MS(4)))
	switch policy {
	case PlainFP:
		// No protection: the baseline the server policies are compared
		// against. B's overrun lands directly on A.
		return nil
	case DeferrableServerPolicy, PollingServerPolicy, SporadicServerPolicy:
		kind := protection.Deferrable
		if policy == PollingServerPolicy {
			kind = protection.Polling
		}
		if policy == SporadicServerPolicy {
			kind = protection.Sporadic
		}
		srv, err := protection.NewServer("B", kind, budget, sim.MS(4))
		if err != nil {
			return err
		}
		throttle = srv
	case TTTable:
		// Major frame 4ms: B owns its planned window, A the rest.
		table, err := protection.NewTable(sim.MS(4), []protection.Window{
			{Partition: "B", Start: 0, Length: budget},
			{Partition: "A", Start: budget, Length: sim.MS(4) - budget},
		})
		if err != nil {
			return err
		}
		for _, t := range tasks {
			if t.Supplier == "A" {
				t.Throttle = table.MustPartition("A")
			}
		}
		throttle = table.MustPartition("B")
	}
	for _, t := range tasks {
		if t.Supplier == "B" {
			t.Throttle = throttle
		}
	}
	return nil
}

// runECU simulates one ECU with the given tasks and returns the recorder.
func runECU(tasks []*osek.Task, horizon sim.Time) (*trace.Recorder, *osek.CPU, error) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	cpu := osek.NewCPU(k, "ecu", 1, rec)
	for _, t := range tasks {
		if err := cpu.AddTask(t); err != nil {
			return nil, nil, err
		}
	}
	cpu.Start()
	k.Run(horizon)
	return rec, cpu, nil
}

// E1Config parameterizes the interference sweep.
type E1Config struct {
	Loads    []float64
	Policies []Policy
	Horizon  sim.Time
}

// DefaultE1 is the published configuration.
func DefaultE1() E1Config {
	return E1Config{
		Loads:    []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
		Policies: []Policy{PlainFP, DeferrableServerPolicy, TTTable},
		Horizon:  2 * sim.Second,
	}
}

// E1Interference measures how supplier B's rising load perturbs supplier
// A's lowest-priority task under each policy (§1: "the timing of software
// tasks depends on the presence or absence of other tasks").
func E1Interference(cfg E1Config) (*Table, error) {
	tab := &Table{
		Title:   "E1 timing interference: victim A.slow response vs aggressor load",
		Columns: []string{"policy", "B util", "A.slow max", "A.slow jitter", "A misses"},
		Notes: []string{
			"paper claim: without isolation, A's timing is a function of B's load;",
			"with reservation or TT isolation it is (nearly) flat.",
		},
	}
	for _, pol := range cfg.Policies {
		for _, load := range cfg.Loads {
			tasks := append(victimSet(), aggressorSet(load)...)
			if err := applyPolicy(tasks, pol); err != nil {
				return nil, err
			}
			rec, _, err := runECU(tasks, cfg.Horizon)
			if err != nil {
				return nil, err
			}
			st := trace.Summarize(rec, "A.slow")
			misses := rec.Count(trace.Miss, "A.fast") + rec.Count(trace.Miss, "A.mid") + rec.Count(trace.Miss, "A.slow")
			tab.Add(pol, load, st.Max, st.Jitter, misses)
		}
	}
	return tab, nil
}

// E2Config parameterizes the overhead study.
type E2Config struct {
	Policies []Policy
	// UtilSweep probes the highest aggressor-load with zero misses.
	UtilSweep []float64
	Horizon   sim.Time
}

// DefaultE2 is the published configuration.
func DefaultE2() E2Config {
	return E2Config{
		Policies:  []Policy{PlainFP, DeferrableServerPolicy, PollingServerPolicy, SporadicServerPolicy, TTTable},
		UtilSweep: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.55, 0.6, 0.65},
		Horizon:   2 * sim.Second,
	}
}

// E2IsolationOverhead quantifies the efficiency cost of isolation (§1:
// "it will carry overhead, albeit potentially not prohibitive"): the
// response-time penalty for a well-behaved B at low load, and the largest
// B-utilization each policy sustains without any deadline miss.
func E2IsolationOverhead(cfg E2Config) (*Table, error) {
	tab := &Table{
		Title:   "E2 isolation overhead: response penalty and sustainable load",
		Columns: []string{"policy", "B.lo max @U=0.2", "penalty vs FP", "max miss-free B util"},
		Notes: []string{
			"penalty: worst response of the served task against plain FP;",
			"sustainable load: the efficiency the policy gives up for isolation.",
		},
	}
	baseline := sim.Duration(0)
	for _, pol := range cfg.Policies {
		// Response penalty at modest load.
		tasks := append(victimSet(), aggressorSet(0.2)...)
		if err := applyPolicy(tasks, pol); err != nil {
			return nil, err
		}
		rec, _, err := runECU(tasks, cfg.Horizon)
		if err != nil {
			return nil, err
		}
		bMax := trace.Summarize(rec, "B.lo").Max
		if pol == PlainFP {
			baseline = bMax
		}
		penalty := "0%"
		if baseline > 0 && bMax > baseline {
			penalty = fmt.Sprintf("+%.0f%%", 100*float64(bMax-baseline)/float64(baseline))
		}
		// Sustainable utilization sweep.
		best := 0.0
		for _, u := range cfg.UtilSweep {
			tasks := append(victimSet(), aggressorSet(u)...)
			if err := applyPolicy(tasks, pol); err != nil {
				return nil, err
			}
			rec, _, err := runECU(tasks, cfg.Horizon)
			if err != nil {
				return nil, err
			}
			if rec.Count(trace.Miss, "") == 0 {
				best = u
			}
		}
		tab.Add(pol, bMax, penalty, best)
	}
	return tab, nil
}

// E3Config parameterizes overrun containment.
type E3Config struct {
	Factors []float64
	Horizon sim.Time
}

// DefaultE3 is the published configuration.
func DefaultE3() E3Config {
	return E3Config{Factors: []float64{1, 2, 4, 8, 16}, Horizon: 2 * sim.Second}
}

// E3OverrunContainment injects WCET overruns into supplier B and measures
// the victim's misses with and without budget enforcement (§1/§4:
// protecting each IP from the timing errors of other IPs).
func E3OverrunContainment(cfg E3Config) (*Table, error) {
	tab := &Table{
		Title:   "E3 WCET-overrun containment: victim failures vs overrun factor",
		Columns: []string{"overrun x", "victim fail (no budgets)", "victim fail (budgets)", "rogue aborts (budgets)"},
		Notes: []string{
			"rogue declares 1ms WCET at 10ms period and actually runs x times longer;",
			"victim failures = deadline misses + dropped activations (starvation);",
			"budget enforcement must cut the rogue off at its declared WCET.",
		},
	}
	for _, factor := range cfg.Factors {
		run := func(enforce bool) (int, int, error) {
			rogue := &osek.Task{
				Name: "B.rogue", Priority: 40, WCET: sim.MS(1), Period: sim.MS(10), Supplier: "B",
				Demand: func(int64) sim.Duration { return sim.Duration(factor * float64(sim.MS(1))) },
			}
			if enforce {
				rogue.Budget = sim.MS(1)
			}
			tasks := append(victimSet(), rogue)
			rec, _, err := runECU(tasks, cfg.Horizon)
			if err != nil {
				return 0, 0, err
			}
			failures := 0
			for _, victim := range []string{"A.fast", "A.mid", "A.slow"} {
				failures += rec.Count(trace.Miss, victim) + rec.Count(trace.Drop, victim)
			}
			return failures, rec.Count(trace.Abort, "B.rogue"), nil
		}
		noBudget, _, err := run(false)
		if err != nil {
			return nil, err
		}
		withBudget, aborts, err := run(true)
		if err != nil {
			return nil, err
		}
		tab.Add(factor, noBudget, withBudget, aborts)
	}
	return tab, nil
}
