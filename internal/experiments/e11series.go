package experiments

import (
	"fmt"
	"sort"

	"autorte/internal/fault"
	"autorte/internal/obs"
	"autorte/internal/sim"
)

// e11SeriesStep is the virtual-time sampling grid of the series
// experiments: coarse enough to keep the tables readable, fine enough
// to resolve the escalation ladder's cooldowns.
var e11SeriesStep = sim.MS(50)

// e11SeriesMetrics are the sampled series the campaign aggregates:
// the degradation level (recovery curve) and the cumulative actuation
// completions (service-delivery curve). Both are single unlabeled
// series per run, so fleet aggregation is unambiguous.
func e11SeriesMatch(name string) bool {
	return name == "health_degradation_level" || name == "chain_finishes"
}

// E11RecoverySeries re-runs the fault-injection campaign with every
// scenario platform sampled on a common virtual-time grid, then folds
// the per-run series into fleet-level distribution bands: instead of
// end-state scalars, the table shows *when* the fleet degrades and how
// service delivery evolves through detection, escalation and recovery.
func E11RecoverySeries(cfg E11Config) (*Table, error) {
	tab := &Table{
		Title: "E11 fault-injection campaign: virtual-time recovery curves (fleet bands)",
		Columns: []string{"t", "deg min", "deg mean", "deg max",
			"finishes mean", "delivery/50ms", "runs"},
		Notes: []string{
			"each scenario platform is sampled every 50ms of virtual time; bands fold the",
			"per-run series across the whole campaign (min/mean/max at each grid point).",
			"deg: graceful-degradation level 0=normal 1=degraded 2=limp-home 3=safe-stop.",
			"delivery/50ms: mean actuation completions per grid window — the dip after",
			"100-130ms is the injected outage, the climb back is the recovery curve.",
		},
	}
	classes := []fault.FaultClass{
		fault.FaultSensorSilent, fault.FaultSensorStuck, fault.FaultSensorNoise,
		fault.FaultCANBurst, fault.FaultOverrun,
	}
	scenarios := fault.Sweep(classes, cfg.InjectTimes, cfg.TransientWindow)
	scenarios = append(scenarios, fault.Scenario{
		Name: "sensor-silent@100ms/permanent", Class: fault.FaultSensorSilent,
		InjectAt: 100 * sim.Millisecond, Until: sim.Infinity,
	})
	inst := &e11Instrumentation{sampleStep: e11SeriesStep, match: e11SeriesMatch}
	_, perRun, err := fault.RunCampaignSeries(cfg.Workers, scenarios, func(s fault.Scenario) (fault.Result, []obs.Series) {
		return runE11Instrumented(cfg, s, inst)
	})
	if err != nil {
		return nil, err
	}
	deg := fault.AggregateSeries(perRun, "health_degradation_level")
	fin := fault.AggregateSeries(perRun, "chain_finishes")
	if len(deg.Points) == 0 || len(fin.Points) == 0 {
		return nil, fmt.Errorf("e11 series: campaign produced no sampled series")
	}
	finAt := map[int64]fault.BandPoint{}
	for _, pt := range fin.Points {
		finAt[pt.At] = pt
	}
	prevFin := 0.0
	for _, pt := range deg.Points {
		f := finAt[pt.At]
		tab.Add(sim.Time(pt.At), fmt.Sprintf("%.0f", pt.Min),
			fmt.Sprintf("%.2f", pt.Mean), fmt.Sprintf("%.0f", pt.Max),
			fmt.Sprintf("%.1f", f.Mean), fmt.Sprintf("%.1f", f.Mean-prevFin), pt.N)
		prevFin = f.Mean
	}
	return tab, nil
}

// E11SafeStopBundle runs the campaign's permanent sensor-silent
// scenario — the one that climbs the whole escalation ladder — with the
// health monitor's automatic black-box dumps captured, and returns the
// bundles in cut order (severe escalations first, the terminal
// safe-stop dump last). When path is non-empty the final safe-stop
// bundle is also serialized there, ready for autodiag.
func E11SafeStopBundle(cfg E11Config, path string) ([]*obs.Bundle, error) {
	var bundles []*obs.Bundle
	inst := &e11Instrumentation{
		sampleStep: e11SeriesStep, match: e11SeriesMatch,
		bundleSink: func(b *obs.Bundle) { bundles = append(bundles, b) },
	}
	s := fault.Scenario{
		Name: "sensor-silent@100ms/permanent", Class: fault.FaultSensorSilent,
		InjectAt: 100 * sim.Millisecond, Until: sim.Infinity,
	}
	res, _ := runE11Instrumented(cfg, s, inst)
	if len(bundles) == 0 {
		return nil, fmt.Errorf("e11 safe-stop: no bundle cut (final state %s)", res.FinalState)
	}
	last := bundles[len(bundles)-1]
	if len(last.Reason) < len("safe-stop") || last.Reason[:len("safe-stop")] != "safe-stop" {
		return nil, fmt.Errorf("e11 safe-stop: last bundle reason %q, want safe-stop", last.Reason)
	}
	if path != "" {
		if err := last.WriteFile(path); err != nil {
			return nil, err
		}
	}
	return bundles, nil
}

// E11EscalationTimeline renders the escalation ladder of the permanent
// scenario as recorded by the flight recorder's history ring: every
// escalation attempt, degradation transition and the terminal safe-stop,
// with the black-box bundles the monitor cut along the way.
func E11EscalationTimeline(cfg E11Config) (*Table, error) {
	bundles, err := E11SafeStopBundle(cfg, "")
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   "E11 escalation timeline: flight-recorder history of the permanent fault",
		Columns: []string{"t", "event", "detail"},
		Notes: []string{
			"read from the terminal safe-stop bundle's history ring; the bundle rows mark",
			"where the monitor cut automatic black-box dumps (rung >= restart-partition).",
		},
	}
	final := bundles[len(bundles)-1]
	for _, ev := range final.Flight.History {
		tab.Add(sim.Time(ev.At), ev.Kind, ev.Detail)
	}
	sort.SliceStable(bundles, func(i, j int) bool { return bundles[i].At < bundles[j].At })
	for _, b := range bundles {
		tab.Add(sim.Time(b.At), "bundle", b.Reason)
	}
	return tab, nil
}
