package experiments

import (
	"reflect"
	"testing"

	"autorte/internal/model"
	"autorte/internal/sim"
)

// shrunkE14 keeps the multi-failure campaign cheap for unit tests
// without changing its structure: same deployments, same scenario sets,
// shorter horizon (still long enough for two sequential ladder
// recoveries after a double kill).
func shrunkE14() E14Config {
	cfg := DefaultE14()
	cfg.Horizon = 600 * sim.Millisecond
	return cfg
}

func e14MeanKill(outcomes []e14Outcome) float64 {
	sum, n := 0.0, 0
	for _, o := range outcomes {
		if o.Scenario.Name != "fault-free" {
			sum += o.Availability
			n++
		}
	}
	return sum / float64(n)
}

func e14ByName(outcomes []e14Outcome) map[string]e14Outcome {
	out := map[string]e14Outcome{}
	for _, o := range outcomes {
		out[o.Scenario.Name] = o
	}
	return out
}

// Claim (a): the replicated observer strictly beats the single observer
// under the same kill campaign. The separator is killing the ECU that
// hosts both the actuator primary and the lone observer: nothing is left
// to report the fault, so the standby actuator is never promoted; the
// observer group keeps a live majority and cures it.
func TestE14ReplicatedObserverBeatsSingle(t *testing.T) {
	cfg := shrunkE14()
	single, replicated, err := e14ObserverDeployments()
	if err != nil {
		t.Fatal(err)
	}
	so, err := runE14(cfg, single, 1)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := runE14(cfg, replicated, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, outcomes := range map[string][]e14Outcome{"single": so, "replicated": ro} {
		if av := e14ByName(outcomes)["fault-free"].Availability; av < 0.99 {
			t.Errorf("%s fault-free availability %v", name, av)
		}
	}
	sKill, rKill := e14ByName(so)["ecu-kill:e3"], e14ByName(ro)["ecu-kill:e3"]
	if sKill.Detected || sKill.Failovers != 0 || sKill.Availability > 0.05 {
		t.Fatalf("single observer should be blind to its own ECU's kill: %+v", sKill)
	}
	if !rKill.Detected || rKill.Failovers != 1 || !rKill.Recovered {
		t.Fatalf("observer quorum did not cure the shared-ECU kill: %+v", rKill)
	}
	if rKill.Availability < 0.5 {
		t.Fatalf("cured kill availability %v, want majority of service kept", rKill.Availability)
	}
	if e14MeanKill(ro) <= e14MeanKill(so) {
		t.Fatalf("replicated mean kill %v not above single %v", e14MeanKill(ro), e14MeanKill(so))
	}
}

// Claim (b): hot switchover is an output unmute — measurably below the
// cold resume in the switchover-latency histogram, on the same kill.
func TestE14HotSwitchoverBeatsCold(t *testing.T) {
	cfg := shrunkE14()
	for _, tc := range []struct {
		mode model.ReplicaMode
		key  string
	}{
		{model.StandbyPassive, "passive"},
		{model.StandbyActive, "active"},
	} {
		dep, err := e14SwitchoverDeployment(tc.mode)
		if err != nil {
			t.Fatal(err)
		}
		outcomes, err := runE14(cfg, dep, 1)
		if err != nil {
			t.Fatal(err)
		}
		o := e14ByName(outcomes)["ecu-kill:e2"]
		if o.Failovers != 1 || !o.Recovered {
			t.Fatalf("%s: controller kill not cured: %+v", dep.name, o)
		}
		if cnt := o.SwitchCnt[tc.key]; cnt != 1 {
			t.Fatalf("%s: %d switchover latency samples, want 1", dep.name, cnt)
		}
		sum := o.SwitchSum[tc.key]
		if tc.mode == model.StandbyActive && sum != 0 {
			t.Fatalf("hot switchover latency %dns, want 0 (muted-value flush)", sum)
		}
		if tc.mode == model.StandbyPassive && sum <= 0 {
			t.Fatalf("cold switchover latency %dns, want > 0", sum)
		}
	}
}

// Claim (c): automatic placement finds a deployment whose measured k=2
// availability beats the hand-enumerated E13 shape at equal ECU count —
// the hand shape replicates only the controller, so every double kill
// zeroes it.
func TestE14AutoPlacementBeatsHandEnumeration(t *testing.T) {
	cfg := shrunkE14()
	hand, err := e14SwitchoverDeployment(model.StandbyPassive)
	if err != nil {
		t.Fatal(err)
	}
	auto, pl, err := e14AutoPlace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The search must fully cover the explicit k=2 fault model.
	if pl.Metrics.Survivability != 1 {
		t.Fatalf("auto placement Survivability %v, want 1", pl.Metrics.Survivability)
	}
	for _, name := range []string{"Sensor", "Ctrl", "Act", "Watch"} {
		if pl.Replicas[name] < 3 {
			t.Errorf("%s replicated x%d, want 3 to survive double kills", name, pl.Replicas[name])
		}
	}
	if pl.Modes["Watch"] != model.StandbyActive {
		t.Errorf("observer mode %v, want forced hot", pl.Modes["Watch"])
	}
	kOf := func(dep e14Deployment) (map[int]float64, map[int]float64) {
		outcomes, err := runE14(cfg, dep, 2)
		if err != nil {
			t.Fatal(err)
		}
		sums, worst, counts := map[int]float64{}, map[int]float64{}, map[int]int{}
		for _, o := range outcomes {
			k := 0
			if o.Scenario.Name != "fault-free" {
				k = 1
				for _, ch := range o.Scenario.Name {
					if ch == '+' {
						k++
					}
				}
			}
			sums[k] += o.Availability
			counts[k]++
			if w, ok := worst[k]; !ok || o.Availability < w {
				worst[k] = o.Availability
			}
		}
		for k := range sums {
			sums[k] /= float64(counts[k])
		}
		return sums, worst
	}
	handMean, _ := kOf(hand)
	autoMean, autoWorst := kOf(auto)
	if handMean[0] < 0.99 || autoMean[0] < 0.99 {
		t.Fatalf("fault-free availability: hand %v auto %v", handMean[0], autoMean[0])
	}
	if handMean[2] != 0 {
		t.Fatalf("hand-enumerated k=2 mean %v, want 0 (any pair takes an unreplicated stage)", handMean[2])
	}
	if autoMean[2] <= handMean[2] {
		t.Fatalf("auto k=2 mean %v not above hand %v", autoMean[2], handMean[2])
	}
	if autoWorst[2] <= 0 {
		t.Fatalf("auto k=2 worst availability %v, want > 0 (one surviving ECU carries the chain)", autoWorst[2])
	}
	if autoMean[1] <= handMean[1] {
		t.Fatalf("auto k=1 mean %v not above hand %v", autoMean[1], handMean[1])
	}
}

// The multi-failure campaign is deterministic: identical tables across
// repeated runs and worker counts.
func TestE14Deterministic(t *testing.T) {
	cfg := shrunkE14()
	_, replicated, err := e14ObserverDeployments()
	if err != nil {
		t.Fatal(err)
	}
	base, err := runE14(cfg, replicated, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Workers = 1
	again, err := runE14(cfg2, replicated, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatalf("campaign differs across worker counts:\n%+v\n%+v", base, again)
	}
	tab, err := E14Observer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := E14Observer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab.Rows, tab2.Rows) {
		t.Fatalf("E14Observer rows differ between runs:\n%v\n%v", tab.Rows, tab2.Rows)
	}
}
