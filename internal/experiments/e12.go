package experiments

import (
	"fmt"

	"autorte/internal/can"
	"autorte/internal/e2eprot"
	"autorte/internal/fault"
	"autorte/internal/flexray"
	"autorte/internal/health"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// E12Config parameterizes the end-to-end communication protection study:
// the same comm-fault load is injected into a protected and an unprotected
// instance of the reference chain, and detection coverage, overhead and
// recovery behaviour are measured.
type E12Config struct {
	Horizon  sim.Time
	InjectAt sim.Time
	// Delay used by the comm-delay class; must exceed the receiver timeout
	// bound (3 periods) to be detectable.
	Delay sim.Duration
	Seed  uint64
}

// DefaultE12 is the published configuration.
func DefaultE12() E12Config {
	return E12Config{
		Horizon: 500 * sim.Millisecond, InjectAt: 100 * sim.Millisecond,
		Delay: sim.MS(45), Seed: 11,
	}
}

// e12Signal is the tampered hop: the sensor value crossing the bus.
const e12Signal = "Sensor.out.v->Ctrl.in"

// E12DetectionCoverage injects every communication fault class of the
// taxonomy into the protected and the unprotected chain and reports the
// injected/detected counts, coverage and the residual undetected rate.
// Corruption, masquerade, duplication and re-sequencing are counted per
// frame; loss and over-bound delay are temporal faults detected by timeout
// supervision, so their coverage is the detection of the outage itself.
func E12DetectionCoverage(cfg E12Config) (*Table, error) {
	tab := &Table{
		Title: "E12 E2E protection: detection coverage per comm fault class",
		Columns: []string{"fault class", "channel", "injected", "detected",
			"coverage", "residual", "det latency", "availability"},
		Notes: []string{
			"corrupt and masquerade both surface as crc failures: the DataID binding makes",
			"a foreign frame indistinguishable from corruption — detected either way.",
			"drop and over-bound delay are detected temporally (timeout supervision);",
			"coverage there is detection of the outage, latency bounded by 3 periods.",
			"the unprotected channel consumes every faulty frame silently (residual 1).",
		},
	}
	classes := []fault.FaultClass{
		fault.FaultCommCorrupt, fault.FaultCommMasquerade, fault.FaultCommDrop,
		fault.FaultCommDuplicate, fault.FaultCommDelay, fault.FaultCommResequence,
	}
	for _, class := range classes {
		for _, protected := range []bool{true, false} {
			r, err := runE12Coverage(cfg, class, protected)
			if err != nil {
				return nil, err
			}
			ch := "unprotected"
			if protected {
				ch = "protected"
			}
			det := "-"
			if r.detected {
				det = fmt.Sprint(r.detLatency)
			}
			tab.Add(class.String(), ch, r.injected, r.detections,
				fmt.Sprintf("%.3f", r.coverage), fmt.Sprintf("%.3f", 1-r.coverage),
				det, fmt.Sprintf("%.2f", r.availability))
		}
	}
	return tab, nil
}

type e12CoverageResult struct {
	injected, detections   int
	coverage, availability float64
	detected               bool
	detLatency             sim.Duration
}

func runE12Coverage(cfg E12Config, class fault.FaultClass, protected bool) (e12CoverageResult, error) {
	opts := rte.Options{}
	if protected {
		opts.E2E = &rte.E2EOptions{}
	}
	p, err := rte.Build(e12System(model.BusCAN), opts)
	if err != nil {
		return e12CoverageResult{}, err
	}
	p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", float64(c.Job())) })
	p.MustBehavior("Ctrl", "law", qualifiedForward)
	p.MustBehavior("Act", "apply", func(c *rte.Context) {})

	var inj *fault.CommInjector
	detClass := ""
	switch class {
	case fault.FaultCommCorrupt:
		inj = fault.CorruptPayload(p, e12Signal, cfg.InjectAt, 0, cfg.Seed)
		detClass = "crc"
	case fault.FaultCommMasquerade:
		inj = fault.Masquerade(p, e12Signal, cfg.InjectAt, 0)
		detClass = "crc"
	case fault.FaultCommDrop:
		inj = fault.DropPDU(p, e12Signal, cfg.InjectAt, 0)
		detClass = "timeout"
	case fault.FaultCommDuplicate:
		inj = fault.DuplicatePDU(p, e12Signal, cfg.InjectAt, 0)
		detClass = "duplicate"
	case fault.FaultCommDelay:
		inj = fault.DelayPDU(p, e12Signal, cfg.InjectAt, 0, cfg.Delay)
		detClass = "timeout"
	case fault.FaultCommResequence:
		inj = fault.ResequencePDU(p, e12Signal, cfg.InjectAt, 0)
		detClass = "sequence"
	default:
		return e12CoverageResult{}, fmt.Errorf("e12: class %v is not a comm fault", class)
	}
	p.Run(cfg.Horizon)

	r := e12CoverageResult{
		injected:   inj.Injected,
		detections: e12Detected(p, detClass),
	}
	r.detLatency, r.detected = fault.DetectionLatency(p.Errors.Records(), rte.ErrComm, cfg.InjectAt)
	r.availability, err = fault.Availability(p.Trace, "Act.apply", sim.MS(10), cfg.InjectAt, cfg.Horizon)
	if err != nil {
		return e12CoverageResult{}, fmt.Errorf("e12 %v: %w", class, err)
	}
	switch class {
	case fault.FaultCommDrop, fault.FaultCommDelay:
		// Temporal faults: coverage is detection of the outage.
		if r.detected {
			r.coverage = 1
		}
	default:
		if r.injected > 0 && r.detections > 0 {
			r.coverage = float64(min(r.detections, r.injected)) / float64(r.injected)
		}
	}
	return r, nil
}

// E12Overhead quantifies what the protection costs on the wire and on the
// chain, fault-free: payload growth (the P01 header), CAN frame bits and
// frame time at the configured bit rate, and the measured end-to-end chain
// latency with and without protection.
func E12Overhead(cfg E12Config) (*Table, error) {
	tab := &Table{
		Title:   "E12 E2E protection: bandwidth and latency overhead (fault-free)",
		Columns: []string{"channel", "pdu bytes", "frame bits", "frame time", "mean chain latency", "bw overhead"},
		Notes: []string{
			"P01 adds 2 header bytes per frame (CRC-8 + counter); frame bits follow the",
			"classic CAN stuffing formula, so relative overhead shrinks with payload size.",
		},
	}
	bitRate := can.Config{BitRate: 500_000}
	dataBytes := 2 // one UInt16 element
	protBytes := dataBytes + e2eprot.P01.HeaderLen()
	baseBits := can.FrameBits(dataBytes, false)
	for _, protected := range []bool{false, true} {
		opts := rte.Options{}
		bytes := dataBytes
		if protected {
			opts.E2E = &rte.E2EOptions{}
			bytes = protBytes
		}
		p, err := rte.Build(e12System(model.BusCAN), opts)
		if err != nil {
			return nil, err
		}
		var total sim.Duration
		var n int
		p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", float64(c.Job())) })
		p.MustBehavior("Ctrl", "law", qualifiedForward)
		p.MustBehavior("Act", "apply", func(c *rte.Context) {
			job := int64(c.Read("in", "u"))
			total += c.Now() - sim.Time(job)*sim.Time(sim.MS(10))
			n++
		})
		p.Run(cfg.Horizon)
		if n == 0 {
			return nil, fmt.Errorf("e12 overhead: chain delivered nothing")
		}
		bits := can.FrameBits(bytes, false)
		ch := "unprotected"
		if protected {
			ch = "protected"
		}
		tab.Add(ch, bytes, bits, bitRate.FrameTime(bytes), total/sim.Duration(n),
			fmt.Sprintf("%+.1f%%", 100*float64(bits-baseBits)/float64(baseBits)))
	}
	return tab, nil
}

// E12Recovery exercises what happens after detection: a sustained
// corruption drives the receiver partition through the health escalation
// ladder into degradation, and a FlexRay channel loss is qualified invalid
// by timeout supervision and failed over to the redundant channel, where
// service resumes.
func E12Recovery(cfg E12Config) (*Table, error) {
	tab := &Table{
		Title: "E12 E2E protection: recovery after sustained comm faults",
		Columns: []string{"scenario", "detected", "det latency", "attempts",
			"failovers", "final state", "recovered", "rec latency", "availability"},
		Notes: []string{
			"corruption is attributed to the consuming partition: the ladder restarts it,",
			"cannot heal a bus fault, and degrades — fail-silent at component scope.",
			"the FlexRay frames fail over A->B after invalid qualification; the queued",
			"backlog then drains and actuation resumes on the surviving channel.",
		},
	}

	// Scenario 1: permanent corruption on the protected CAN chain, with the
	// receiver partition supervised by the health monitor.
	{
		p, err := rte.Build(e12System(model.BusCAN), rte.Options{E2E: &rte.E2EOptions{}})
		if err != nil {
			return nil, err
		}
		p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", 100) })
		p.MustBehavior("Ctrl", "law", qualifiedForward)
		p.MustBehavior("Act", "apply", func(c *rte.Context) {})
		fault.CorruptPayload(p, e12Signal, cfg.InjectAt, 0, cfg.Seed)
		deg := health.MustDegradation(p, map[health.Level][]string{
			health.Degraded: {"Sensor.sample", "Ctrl.law", "Act.apply"},
			health.LimpHome: {"Act.apply"},
		})
		m := health.NewMonitor(p, health.MonitorOptions{Degradation: deg})
		m.MustProtect("Ctrl", health.Policy{
			Debounce:    health.DebounceConfig{Inc: 2, Dec: 1, Threshold: 4},
			MaxAttempts: 2, Cooldown: sim.MS(15),
			ResetDowntime: sim.MS(20), HealAfter: sim.MS(60),
			Runnable: "law",
		})
		p.Run(cfg.Horizon)
		lat, det := fault.DetectionLatency(p.Errors.Records(), rte.ErrComm, cfg.InjectAt)
		st := m.Status()[0]
		av, err := fault.Availability(p.Trace, "Act.apply", sim.MS(10), cfg.InjectAt, cfg.Horizon)
		if err != nil {
			return nil, err
		}
		tab.Add("can corrupt (permanent)", det, lat, st.Attempts, "-",
			deg.Level().String()+"/"+st.State.String(), false, "-",
			fmt.Sprintf("%.2f", av))
	}

	// Scenario 2: FlexRay channel A dies; protected streams fail over.
	{
		p, err := rte.Build(e12System(model.BusFlexRay), rte.Options{E2E: &rte.E2EOptions{}})
		if err != nil {
			return nil, err
		}
		p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", 100) })
		p.MustBehavior("Ctrl", "law", qualifiedForward)
		p.MustBehavior("Act", "apply", func(c *rte.Context) {})
		p.FlexRayBus("bus0").FailChannel(flexray.ChannelA, cfg.InjectAt)
		p.Run(cfg.Horizon)
		lat, det := fault.DetectionLatency(p.Errors.Records(), rte.ErrComm, cfg.InjectAt)
		fo := p.Metrics.Counter("e2e_failovers_total",
			"Protected channels moved to a redundant physical channel after invalid qualification.").Value()
		recLat, rec, err := fault.ServiceRecovery(p.Trace, "Act.apply", sim.MS(10), cfg.InjectAt, cfg.Horizon)
		if err != nil {
			return nil, err
		}
		recs := "-"
		if rec {
			recs = fmt.Sprint(recLat)
		}
		av, err := fault.Availability(p.Trace, "Act.apply", sim.MS(10), cfg.InjectAt, cfg.Horizon)
		if err != nil {
			return nil, err
		}
		tab.Add("flexray channel A loss", det, lat, "-", fo, "normal", rec, recs,
			fmt.Sprintf("%.2f", av))
	}
	return tab, nil
}

func e12Detected(p *rte.Platform, class string) int {
	return int(p.Metrics.Counter("e2e_detected_faults_total",
		"Communication faults detected by E2E protection, by detected class.",
		obs.Label{Key: "class", Value: class}).Value())
}

// e12System is the protected reference chain: a sensor on e1 feeds a
// controller on e2 which commands an actuator back on e1, both hops over
// one bus of the given kind.
func e12System(busKind model.BusKind) *model.System {
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	ifU := &model.PortInterface{
		Name: "IfU", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "u", Type: model.UInt16}},
	}
	return &model.System{
		Name:       "e12",
		Interfaces: []*model.PortInterface{ifV, ifU},
		Components: []*model.SWC{
			{
				Name:  "Sensor",
				Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "sample", WCETNominal: sim.US(50),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
					Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
				}},
			},
			{
				Name: "Ctrl",
				Ports: []model.Port{
					{Name: "in", Direction: model.Required, Interface: ifV},
					{Name: "cmd", Direction: model.Provided, Interface: ifU},
				},
				Runnables: []model.Runnable{{
					Name: "law", WCETNominal: sim.US(40),
					Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
					Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
					Writes:  []model.PortRef{{Port: "cmd", Elem: "u"}},
				}},
			},
			{
				Name:  "Act",
				Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifU}},
				Runnables: []model.Runnable{{
					Name: "apply", WCETNominal: sim.US(20),
					Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "u"},
					Reads:   []model.PortRef{{Port: "in", Elem: "u"}},
				}},
			},
		},
		ECUs: []*model.ECU{
			{Name: "e1", Speed: 1, Buses: []string{"bus0"}},
			{Name: "e2", Speed: 1, Buses: []string{"bus0"}},
		},
		Buses: []*model.Bus{{Name: "bus0", Kind: busKind, BitRate: 500_000}},
		Connectors: []model.Connector{
			{FromSWC: "Sensor", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"},
			{FromSWC: "Ctrl", FromPort: "cmd", ToSWC: "Act", ToPort: "in"},
		},
		Mapping: map[string]string{"Sensor": "e1", "Ctrl": "e2", "Act": "e1"},
	}
}
