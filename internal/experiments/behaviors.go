package experiments

import (
	"autorte/internal/e2eprot"
	"autorte/internal/rte"
)

// qualifiedForward is the controller law of the reference chains: it
// forwards the chain input to the command port, but first consults the
// E2E qualification of the feeding channel and holds the actuation
// while the window state machine condemns it. On a protected channel
// the RTE already delivers only verified frames ("correct data or no
// data"), so the remaining application-level duty — the part no
// middleware can take over — is to stop acting on a channel that has
// been qualified invalid: the first deliveries after an outage arrive
// while the state machine is still re-qualifying, and a safety function
// must not trust them yet. On an unprotected or local channel
// E2EStatus reports no protection and the law degenerates to a plain
// forward, so the same behavior serves both arms of every protected-
// versus-unprotected comparison.
func qualifiedForward(c *rte.Context) {
	if st, ok := c.E2EStatus("in", "v"); ok && st == e2eprot.SMInvalid {
		return // channel condemned: hold rather than act on it
	}
	c.Write("cmd", "u", c.Read("in", "v"))
}
