package experiments

import (
	"reflect"
	"testing"
)

// shrunkE13 keeps the sweep cheap for unit tests without changing its
// structure: same candidates, same scenario set, shorter horizon.
func shrunkE13() E13Config {
	cfg := DefaultE13()
	cfg.Horizon = 400 * 1000 * 1000
	cfg.InjectAt = 100 * 1000 * 1000
	return cfg
}

// The headline claims of the study, asserted on the real campaign: the
// redundant candidate strictly beats every non-redundant one on mean
// availability under ECU kills, its controller kill is actually cured by
// a measured replica switchover, and killing the standby's ECU is free.
func TestE13RedundancyBeatsFederation(t *testing.T) {
	runs, err := runE13(shrunkE13())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]e13Run{}
	meanKill := func(run e13Run) float64 {
		sum, n := 0.0, 0
		for _, o := range run.outcomes {
			if o.Scenario.Name != "fault-free" && o.Scenario.Name != "can-burst" {
				sum += o.Availability
				n++
			}
		}
		return sum / float64(n)
	}
	for _, run := range runs {
		byName[run.cand.name] = run
		// Fault-free, every candidate delivers full service.
		if av := run.outcomes[0].Availability; av < 0.99 {
			t.Errorf("%s fault-free availability %v", run.cand.name, av)
		}
	}
	red := byName["redundant-3"]
	for _, name := range []string{"integrated", "federated-2", "federated-3"} {
		if meanKill(byName[name]) >= meanKill(red) {
			t.Errorf("%s mean kill availability %v >= redundant %v",
				name, meanKill(byName[name]), meanKill(red))
		}
	}
	// The controller-ECU kill of the redundant candidate is the scenario
	// the whole stack exists for: detected, failed over exactly once by
	// the ladder, service recovered.
	var ctrlKill, standbyKill *e13Outcome
	for i := range red.outcomes {
		switch red.outcomes[i].Scenario.Name {
		case "ecu-kill:e2":
			ctrlKill = &red.outcomes[i]
		case "ecu-kill:e3":
			standbyKill = &red.outcomes[i]
		}
	}
	if ctrlKill == nil || standbyKill == nil {
		t.Fatal("kill scenarios missing from the redundant candidate")
	}
	if !ctrlKill.Detected || ctrlKill.Failovers != 1 || !ctrlKill.Recovered {
		t.Fatalf("controller kill not cured by failover: %+v", ctrlKill)
	}
	if ctrlKill.Availability < 0.5 {
		t.Fatalf("controller kill availability %v, want majority of service kept", ctrlKill.Availability)
	}
	// Same ECU count, no standby: federated-3 loses the same scenario.
	for _, o := range byName["federated-3"].outcomes {
		if o.Scenario.Name == "ecu-kill:e2" && o.Availability >= ctrlKill.Availability {
			t.Fatalf("federated-3 controller kill availability %v not below redundant %v",
				o.Availability, ctrlKill.Availability)
		}
	}
	// Killing the standby's own ECU costs nothing: the primary delivers.
	if standbyKill.Availability < 0.99 || standbyKill.Failovers != 0 {
		t.Fatalf("standby-ECU kill should be free: %+v", standbyKill)
	}
}

// The campaign is deterministic: two full runs produce identical tables.
func TestE13Deterministic(t *testing.T) {
	cfg := shrunkE13()
	a, err := E13Availability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := E13Availability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("E13 rows differ between runs:\n%v\n%v", a.Rows, b.Rows)
	}
	c, err := E13Curve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 4 {
		t.Fatalf("curve rows = %d, want one per candidate", len(c.Rows))
	}
}
