package experiments

import (
	"strconv"
	"strings"
	"testing"

	"autorte/internal/sim"
)

// Reduced-scale configurations keep the test suite fast; the bench harness
// runs the defaults.

func TestE1ShowsIsolationEffect(t *testing.T) {
	cfg := E1Config{
		// 0.4 and 0.6 both exceed B's planned reservation (0.35): any
		// isolating policy must clamp them to identical interference.
		Loads:    []float64{0.4, 0.6},
		Policies: []Policy{PlainFP, DeferrableServerPolicy, TTTable},
		Horizon:  sim.Second,
	}
	tab, err := E1Interference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	// Shape check: under plain FP the victim's worst response grows with
	// load; under the TT table (and saturated server) it does not.
	get := func(policy, load string) []string {
		for _, r := range tab.Rows {
			if r[0] == policy && r[1] == load {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", policy, load)
		return nil
	}
	fpLow, fpHigh := get("fixed-priority", "0.4"), get("fixed-priority", "0.6")
	if fpLow[2] == fpHigh[2] {
		t.Errorf("FP victim response flat across load: %v vs %v", fpLow, fpHigh)
	}
	ttLow, ttHigh := get("tt-table", "0.4"), get("tt-table", "0.6")
	if ttLow[2] != ttHigh[2] {
		t.Errorf("TT victim response moved with load: %v vs %v", ttLow, ttHigh)
	}
}

func TestE2ReportsOverheadAndCapacity(t *testing.T) {
	cfg := E2Config{
		Policies:  []Policy{PlainFP, DeferrableServerPolicy},
		UtilSweep: []float64{0.2, 0.4, 0.6},
		Horizon:   sim.Second,
	}
	tab, err := E2IsolationOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// FP sustains at least as much load as the server (efficiency trade).
	if tab.Rows[0][3] < tab.Rows[1][3] {
		t.Errorf("server sustained more load than FP: %v vs %v", tab.Rows[0], tab.Rows[1])
	}
}

func TestE3BudgetsContainOverrun(t *testing.T) {
	tab, err := E3OverrunContainment(E3Config{Factors: []float64{1, 8}, Horizon: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	// factor 8: without budgets the victims miss; with budgets they don't.
	row := tab.Rows[1]
	if row[1] == "0" {
		t.Errorf("x8 overrun without budgets hurt nobody: %v", row)
	}
	if row[2] != "0" {
		t.Errorf("x8 overrun with budgets still hurt victims: %v", row)
	}
	if row[3] == "0" {
		t.Errorf("no aborts recorded: %v", row)
	}
}

func TestE4FlexRayFlatCANGrowing(t *testing.T) {
	tab, err := E4BusComparison(E4Config{Loads: []float64{0.2, 0.8}, Horizon: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	var canJitter, ttJitter []string
	for _, r := range tab.Rows {
		switch r[0] {
		case "CAN":
			canJitter = append(canJitter, r[4])
		case "FlexRay", "TTEthernet":
			ttJitter = append(ttJitter, r[4])
		}
	}
	if canJitter[0] == canJitter[1] {
		t.Errorf("CAN victim jitter flat across load: %v", canJitter)
	}
	for _, j := range ttJitter {
		if j != "0ns" {
			t.Errorf("time-triggered victim has jitter %v", j)
		}
	}
}

func TestE5AllSound(t *testing.T) {
	tab, err := E5AnalysisVsSim(E5Config{Trials: 6, Seed: 1, Horizon: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[2] != "true" {
			t.Fatalf("analysis unsound in %s", r[0])
		}
	}
}

func TestE6FindsSeededViolations(t *testing.T) {
	tab, err := E6Contracts(E6Config{Sizes: []int{4, 16}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[3] != r[4] {
			t.Fatalf("seeded %s, found %s", r[3], r[4])
		}
	}
}

func TestE7ConsolidationShape(t *testing.T) {
	tab, err := E7Consolidation(E7Config{Seed: 5, AnnealIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// ECU counts must drop federated -> greedy (compare numerically).
	fed, _ := strconv.Atoi(tab.Rows[0][1])
	grd, _ := strconv.Atoi(tab.Rows[1][1])
	if fed <= grd {
		t.Errorf("no ECU reduction: federated %d, greedy %d", fed, grd)
	}
	for _, r := range tab.Rows {
		if r[4] != "true" || r[5] != "true" {
			t.Errorf("architecture %s infeasible or unverified: %v", r[0], r)
		}
	}
}

func TestE8TDMASatisfiesAll(t *testing.T) {
	tab, err := E8NoC(E8Config{Horizon: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		switch r[0] {
		case "tdma":
			for i := 1; i <= 4; i++ {
				if r[i] != "true" {
					t.Errorf("TDMA failed requirement column %d: %v", i, r)
				}
			}
		case "best-effort":
			if r[3] == "true" {
				t.Errorf("best-effort reported non-interfering: %v", r)
			}
		}
	}
}

func TestE9PlannedTableStable(t *testing.T) {
	cfg := DefaultE9()
	cfg.Intruders = []int{1}
	cfg.Horizon = 100 * sim.Millisecond
	tab, err := E9Extensibility(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[1] == "planned tt-table" && r[3] != "true" {
			t.Errorf("planned table unstable: %v", r)
		}
		if r[1] == "fixed-priority" && r[3] == "true" {
			t.Errorf("plain FP reported stable: %v", r)
		}
	}
}

func TestE10AllDetected(t *testing.T) {
	tab, err := E10ErrorHandling(DefaultE10())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[1] != "true" {
			t.Errorf("fault %s not detected", r[0])
		}
		if r[3] != "true" {
			t.Errorf("fault %s not delivered to application layer", r[0])
		}
	}
}

func TestE11CampaignShape(t *testing.T) {
	tab, err := E11FaultCampaign(DefaultE11())
	if err != nil {
		t.Fatal(err)
	}
	// 5 classes x 2 injection times + 1 permanent scenario.
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		name, detected, recovered, avail := r[0], r[1], r[5], r[7]
		switch {
		case strings.HasSuffix(name, "/permanent"):
			// The permanent fault climbs the whole ladder and safe-stops.
			if r[4] != "safe-stop/safe-stopped" {
				t.Errorf("%s final state %q, want safe-stop/safe-stopped", name, r[4])
			}
			if recovered != "false" {
				t.Errorf("%s reported recovered", name)
			}
		case strings.HasPrefix(name, "sensor-stuck"):
			// Stuck passes age and range checks: undetected, service intact.
			if detected != "false" || avail != "1" {
				t.Errorf("stuck scenario %s: detected=%s avail=%s", name, detected, avail)
			}
		default:
			if detected != "true" {
				t.Errorf("%s not detected: %v", name, r)
			}
			if recovered != "true" || r[4] != "normal/healthy" {
				t.Errorf("transient %s did not recover to normal: %v", name, r)
			}
		}
	}
}

func TestE11CampaignDeterministic(t *testing.T) {
	render := func() string {
		tab, err := E11FaultCampaign(DefaultE11())
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		tab.Render(&sb)
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("campaign not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestE11LimpHomePhases(t *testing.T) {
	tab, err := E11LimpHome(DefaultE11())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[2] != "1" {
			t.Errorf("phase %s: chain availability %s, want 1", r[0], r[2])
		}
	}
	limp := tab.Rows[1]
	if limp[3] != "0" || limp[4] == "0" || limp[5] != "true" {
		t.Errorf("limp-home phase: shed runnables not provably inactive: %v", limp)
	}
	for _, i := range []int{0, 2} {
		if tab.Rows[i][3] == "0" || tab.Rows[i][4] != "0" {
			t.Errorf("phase %s: shed runnables not active: %v", tab.Rows[i][0], tab.Rows[i])
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.Add(1, 2.5)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== t ==", "a", "bb", "2.5", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE12CoverageProtectedVsUnprotected(t *testing.T) {
	tab, err := E12DetectionCoverage(DefaultE12())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 6 classes x {protected, unprotected}
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		class, ch, injected, coverage, residual := r[0], r[1], r[2], r[4], r[5]
		if injected == "0" {
			t.Errorf("%s/%s injected nothing", class, ch)
		}
		switch ch {
		case "protected":
			if coverage != "1.000" {
				t.Errorf("%s protected coverage %s, want 1.000", class, coverage)
			}
		case "unprotected":
			if coverage != "0.000" || residual != "1.000" {
				t.Errorf("%s unprotected coverage/residual %s/%s, want 0.000/1.000",
					class, coverage, residual)
			}
			if r[3] != "0" {
				t.Errorf("%s unprotected detected %s faults without means to", class, r[3])
			}
		default:
			t.Errorf("unexpected channel %q", ch)
		}
	}
}

func TestE12OverheadMeasured(t *testing.T) {
	tab, err := E12Overhead(DefaultE12())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	unprot, prot := tab.Rows[0], tab.Rows[1]
	if unprot[1] != "2" || prot[1] != "4" {
		t.Fatalf("pdu bytes %s/%s, want 2/4 (P01 header)", unprot[1], prot[1])
	}
	if unprot[5] != "+0.0%" || !strings.HasPrefix(prot[5], "+") {
		t.Fatalf("bandwidth overhead %s/%s", unprot[5], prot[5])
	}
}

func TestE12RecoveryOutcomes(t *testing.T) {
	tab, err := E12Recovery(DefaultE12())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	corrupt, frloss := tab.Rows[0], tab.Rows[1]
	if corrupt[1] != "true" || corrupt[5] != "safe-stop/safe-stopped" {
		t.Fatalf("sustained corruption did not climb the ladder: %v", corrupt)
	}
	if frloss[1] != "true" || frloss[4] != "2" || frloss[6] != "true" {
		t.Fatalf("flexray loss did not fail over and recover: %v", frloss)
	}
}

func TestE12Deterministic(t *testing.T) {
	render := func() string {
		tab, err := E12DetectionCoverage(DefaultE12())
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		tab.Render(&sb)
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("coverage table not deterministic:\n%s\nvs\n%s", a, b)
	}
}
