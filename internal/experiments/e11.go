package experiments

import (
	"fmt"

	"autorte/internal/fault"
	"autorte/internal/health"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// E11Config parameterizes the fault-injection campaign over the
// health-monitored reference system.
type E11Config struct {
	Horizon sim.Time
	// InjectTimes and TransientWindow span the swept fault space together
	// with the five fault classes; one extra permanent sensor-silent
	// scenario exercises the full escalation ladder down to safe-stop.
	InjectTimes     []sim.Time
	TransientWindow sim.Duration
	// Workers bounds campaign parallelism (<= 0: GOMAXPROCS).
	Workers int
	Seed    uint64
	// DisableFlight turns the platforms' always-on flight recorder off;
	// only the overhead benchmarks use it (the recorder-off baseline).
	DisableFlight bool
}

// DefaultE11 is the published configuration.
func DefaultE11() E11Config {
	return E11Config{
		Horizon:         600 * sim.Millisecond,
		InjectTimes:     []sim.Time{100 * sim.Millisecond, 130 * sim.Millisecond},
		TransientWindow: sim.MS(60), Workers: 0, Seed: 7,
	}
}

// E11FaultCampaign sweeps sensor failure modes, a CAN error burst and a
// WCET overrun across injection times against the health-monitored
// reference chain, reporting per scenario: detection latency, recovery
// attempts performed by the escalation ladder, the final degradation/
// health state, and the availability of the actuation service between
// injection and horizon. Scenarios run in parallel; results are
// deterministic for a given configuration.
func E11FaultCampaign(cfg E11Config) (*Table, error) {
	tab := &Table{
		Title: "E11 fault-injection campaign: detection, escalation, recovery, availability",
		Columns: []string{"scenario", "detected", "det latency", "attempts",
			"final state", "recovered", "rec latency", "availability"},
		Notes: []string{
			"availability: fraction of expected actuations delivered between injection and horizon.",
			"stuck sensors pass age and range checks: undetected by design, service metric stays 1",
			"(the paper's case for application-level plausibility).",
			"the permanent fault climbs the whole ladder and ends safe-stopped.",
		},
	}
	classes := []fault.FaultClass{
		fault.FaultSensorSilent, fault.FaultSensorStuck, fault.FaultSensorNoise,
		fault.FaultCANBurst, fault.FaultOverrun,
	}
	scenarios := fault.Sweep(classes, cfg.InjectTimes, cfg.TransientWindow)
	scenarios = append(scenarios, fault.Scenario{
		Name: "sensor-silent@100ms/permanent", Class: fault.FaultSensorSilent,
		InjectAt: 100 * sim.Millisecond, Until: sim.Infinity,
	})
	results, err := fault.RunCampaign(cfg.Workers, scenarios, func(s fault.Scenario) fault.Result {
		return runE11Scenario(cfg, s)
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		det, rec := "-", "-"
		if r.Detected {
			det = fmt.Sprint(r.DetectionLatency)
		}
		if r.Recovered {
			rec = fmt.Sprint(r.RecoveryLatency)
		}
		tab.Add(r.Scenario.Name, r.Detected, det, r.Escalations,
			r.FinalState, r.Recovered, rec, r.Availability)
	}
	return tab, nil
}

// e11Instrumentation optionally arms observability on a scenario run:
// virtual-time sampling on a grid (with a metric-name filter) and a sink
// for the diagnostic bundles the health monitor cuts on severe
// escalations and safe-stop.
type e11Instrumentation struct {
	sampleStep sim.Duration
	match      func(name string) bool
	bundleSink func(*obs.Bundle)
}

// runE11Scenario builds one private platform, injects the scenario's
// fault, supervises the Sensor partition and measures the outcome.
func runE11Scenario(cfg E11Config, s fault.Scenario) fault.Result {
	res, _ := runE11Instrumented(cfg, s, nil)
	return res
}

// runE11Instrumented is runE11Scenario with observability hooks: when
// inst asks for sampling, the platform's sampler walks the metric
// registry on the virtual-time grid and the run returns its series
// alongside the scalar result.
func runE11Instrumented(cfg E11Config, s fault.Scenario, inst *e11Instrumentation) (fault.Result, []obs.Series) {
	opts := rte.Options{DisableFlight: cfg.DisableFlight}
	if s.Class == fault.FaultOverrun {
		opts.EnforceBudgets = true
	}
	p, err := rte.Build(e11System(), opts)
	if err != nil {
		return fault.Result{Scenario: s, FinalState: "build error: " + err.Error()}, nil
	}
	if inst != nil && inst.sampleStep > 0 {
		// Service-delivery curve: cumulative completions of the chain's
		// actuation task, read straight off the trace recorder's O(1) counts.
		p.Metrics.GaugeFunc("chain_finishes",
			"Cumulative completions of the critical actuation task.",
			func() float64 { return float64(p.Trace.Count(trace.Finish, "Act.apply")) })
		p.EnableSampling(inst.sampleStep, inst.match)
	}
	healthy := func(c *rte.Context) { c.Write("out", "v", 100) }
	switch s.Class {
	case fault.FaultSensorSilent:
		p.MustBehavior("Sensor", "sample",
			fault.BreakSensorBetween(s.InjectAt, s.Until, fault.Silent, 0, healthy))
	case fault.FaultSensorStuck:
		p.MustBehavior("Sensor", "sample",
			fault.BreakSensorBetween(s.InjectAt, s.Until, fault.Stuck, 0, healthy))
	case fault.FaultSensorNoise:
		p.MustBehavior("Sensor", "sample",
			fault.BreakSensorBetween(s.InjectAt, s.Until, fault.Noise, 9999, healthy))
	case fault.FaultCANBurst:
		p.MustBehavior("Sensor", "sample", healthy)
		fault.CANBurst(p.CANBus("can0"), s.InjectAt, s.Until, 1.0, cfg.Seed)
	case fault.FaultOverrun:
		p.MustBehavior("Sensor", "sample", healthy)
		fault.OverrunTaskBetween(p.K, p.Task("Sensor", "sample"), s.InjectAt, s.Until, 50)
	default:
		// Communication classes are exercised by E12's protected-channel
		// harness, not the recovery-ladder sweep.
		p.MustBehavior("Sensor", "sample", healthy)
	}
	p.MustBehavior("Ctrl", "step", func(c *rte.Context) { c.Write("cmd", "u", c.Read("in", "v")) }) //autovet:allow e2eflow E11 is the deliberately unprotected recovery-ladder baseline; channel qualification is E12's subject
	p.MustBehavior("Act", "apply", func(c *rte.Context) {})
	// Diagnostic monitor: temporal validity and plausibility of the chain
	// input, attributed to the Sensor partition (unlatched — the health
	// monitor's debouncing is the flood control).
	p.MustBehavior("Watch", "check", func(c *rte.Context) {
		if age := c.Age("tap", "v"); age >= 0 && age > sim.MS(25) {
			p.Errors.Report("Sensor", rte.ErrSensor, "stale chain input")
		}
		if v, ok := c.ReadOK("tap", "v"); ok && (v < 0 || v > 300) {
			p.Errors.Report("Sensor", rte.ErrSensor, "implausible chain input")
		}
	})
	// Graceful degradation: Degraded sheds telemetry, LimpHome also sheds
	// comfort but keeps the (possibly faulty) critical chain escalating,
	// SafeStop sheds everything but mode handlers.
	deg := health.MustDegradation(p, map[health.Level][]string{
		health.Degraded: {"Sensor.sample", "Ctrl.step", "Act.apply", "Watch.check", "Comfort.hvac"},
		health.LimpHome: {"Sensor.sample", "Ctrl.step", "Act.apply", "Watch.check"},
	})
	mopts := health.MonitorOptions{Degradation: deg}
	if inst != nil {
		mopts.BundleSink = inst.bundleSink
	}
	m := health.NewMonitor(p, mopts)
	m.MustProtect("Sensor", health.Policy{
		Debounce:    health.DebounceConfig{Inc: 2, Dec: 1, Threshold: 4},
		MaxAttempts: 2, Cooldown: sim.MS(15),
		ResetDowntime: sim.MS(20), HealAfter: sim.MS(60),
		Runnable: "sample",
	})
	p.Run(cfg.Horizon)

	res := fault.Result{Scenario: s, Errors: p.Errors.Total()}
	kind := rte.ErrSensor
	if s.Class == fault.FaultOverrun {
		kind = rte.ErrTiming
	}
	res.DetectionLatency, res.Detected = fault.DetectionLatency(p.Errors.Records(), kind, s.InjectAt)
	res.Availability, _ = fault.Availability(p.Trace, "Act.apply", sim.MS(10), s.InjectAt, cfg.Horizon)
	res.RecoveryLatency, res.Recovered, _ = fault.ServiceRecovery(p.Trace, "Act.apply", sim.MS(10), s.InjectAt, cfg.Horizon)
	st := m.Status()[0]
	res.Escalations = st.Attempts
	res.FinalState = deg.Level().String() + "/" + st.State.String()
	var series []obs.Series
	if sp := p.Sampler(); sp != nil {
		series = sp.Series()
	}
	return res, series
}

// E11LimpHome demonstrates graceful degradation without any fault: the
// system is forced into limp-home for a phase and back. The critical
// actuation chain keeps full service through every phase; the shed
// comfort/telemetry runnables are provably inactive (zero finishes, every
// activation an auditable drop) while limp-home holds, and resume after.
func E11LimpHome(cfg E11Config) (*Table, error) {
	tab := &Table{
		Title:   "E11 graceful degradation: forced limp-home phase",
		Columns: []string{"phase", "level", "chain availability", "shed finishes", "shed drops", "limp handler ran"},
	}
	p, err := rte.Build(e11System(), rte.Options{})
	if err != nil {
		return nil, err
	}
	p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", 100) })
	p.MustBehavior("Ctrl", "step", func(c *rte.Context) { c.Write("cmd", "u", c.Read("in", "v")) }) //autovet:allow e2eflow E11 is the deliberately unprotected recovery-ladder baseline; channel qualification is E12's subject
	deg := health.MustDegradation(p, map[health.Level][]string{
		health.LimpHome: {"Sensor.sample", "Ctrl.step", "Act.apply", "Watch.check"},
	})
	enter, leave := sim.Time(150*sim.Millisecond), sim.Time(300*sim.Millisecond)
	p.K.At(enter, func() { deg.To(health.LimpHome) })
	p.K.At(leave, func() { deg.To(health.Normal) })
	horizon := sim.Time(450 * sim.Millisecond)
	p.Run(horizon)

	count := func(source string, kind trace.Kind, from, to sim.Time) int {
		n := 0
		for _, rec := range p.Trace.BySource(source) {
			if rec.Kind == kind && rec.At > from && rec.At <= to {
				n++
			}
		}
		return n
	}
	shed := []string{"Comfort.hvac", "Telem.log"}
	phases := []struct {
		name     string
		level    string
		from, to sim.Time
	}{
		{"normal", "normal", 0, enter},
		{"limp-home", "limp-home", enter, leave},
		{"restored", "normal", leave, horizon},
	}
	for _, ph := range phases {
		fin, drop := 0, 0
		for _, s := range shed {
			fin += count(s, trace.Finish, ph.from, ph.to)
			drop += count(s, trace.Drop, ph.from, ph.to)
		}
		av, err := fault.Availability(p.Trace, "Act.apply", sim.MS(10), ph.from, ph.to)
		if err != nil {
			return nil, fmt.Errorf("e11 limp-home phase %s: %w", ph.name, err)
		}
		tab.Add(ph.name, ph.level, av,
			fin, drop, count("Diag.onLimp", trace.Finish, ph.from, ph.to) > 0)
	}
	return tab, nil
}

// e11System is the reference chain for the campaign: a sensor on e1 feeds
// a control-and-actuation chain on e2 over CAN, watched by a diagnostic
// monitor; comfort and telemetry runnables are sheddable load; Diag hosts
// the mode-switch handlers.
func e11System() *model.System {
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	ifU := &model.PortInterface{
		Name: "IfU", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "u", Type: model.UInt16}},
	}
	return &model.System{
		Name:       "e11",
		Interfaces: []*model.PortInterface{ifV, ifU},
		Components: []*model.SWC{
			{
				Name:  "Sensor",
				Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "sample", WCETNominal: sim.US(50),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
					Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
				}},
			},
			{
				Name: "Ctrl",
				Ports: []model.Port{
					{Name: "in", Direction: model.Required, Interface: ifV},
					{Name: "cmd", Direction: model.Provided, Interface: ifU},
				},
				Runnables: []model.Runnable{{
					Name: "step", WCETNominal: sim.US(40),
					Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
					Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
					Writes:  []model.PortRef{{Port: "cmd", Elem: "u"}},
				}},
			},
			{
				Name:  "Act",
				Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifU}},
				Runnables: []model.Runnable{{
					Name: "apply", WCETNominal: sim.US(20),
					Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "u"},
					Reads:   []model.PortRef{{Port: "in", Elem: "u"}},
				}},
			},
			{
				Name:  "Watch",
				Ports: []model.Port{{Name: "tap", Direction: model.Required, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "check", WCETNominal: sim.US(20),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10), Offset: sim.MS(5)},
					Reads:   []model.PortRef{{Port: "tap", Elem: "v"}},
				}},
			},
			{
				Name: "Comfort",
				Runnables: []model.Runnable{{
					Name: "hvac", WCETNominal: sim.US(100),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(20)},
				}},
			},
			{
				Name: "Telem",
				Runnables: []model.Runnable{{
					Name: "log", WCETNominal: sim.US(80),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(20), Offset: sim.MS(3)},
				}},
			},
			{
				Name: "Diag",
				Runnables: []model.Runnable{
					{Name: "onRecovery", WCETNominal: sim.US(10),
						Trigger: model.Trigger{Kind: model.ModeSwitchEvent, Mode: "recovery"}},
					{Name: "onLimp", WCETNominal: sim.US(10),
						Trigger: model.Trigger{Kind: model.ModeSwitchEvent, Mode: "limp-home"}},
					{Name: "onSafeStop", WCETNominal: sim.US(10),
						Trigger: model.Trigger{Kind: model.ModeSwitchEvent, Mode: "safe-stop"}},
				},
			},
		},
		ECUs: []*model.ECU{
			{Name: "e1", Speed: 1, Buses: []string{"can0"}},
			{Name: "e2", Speed: 1, Buses: []string{"can0"}},
		},
		Buses: []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 500_000}},
		Connectors: []model.Connector{
			{FromSWC: "Sensor", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"},
			{FromSWC: "Sensor", FromPort: "out", ToSWC: "Watch", ToPort: "tap"},
			{FromSWC: "Ctrl", FromPort: "cmd", ToSWC: "Act", ToPort: "in"},
		},
		Mapping: map[string]string{
			"Sensor": "e1", "Comfort": "e1",
			"Ctrl": "e2", "Act": "e2", "Watch": "e2", "Telem": "e2", "Diag": "e2",
		},
	}
}
