package experiments

import (
	"fmt"
	"sync"

	"autorte/internal/deploy"
	"autorte/internal/fault"
	"autorte/internal/health"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// E13Config parameterizes the fail-operational deployment study: the same
// logical chain is deployed in federated, integrated and redundant
// shapes, and every candidate faces the same fault campaign (an ECU kill
// per used ECU, a CAN error burst, and a fault-free baseline). Candidates
// are scored by the availability of the actuation service, giving the
// availability-per-ECU-count curve the redundancy weight of the DSE
// objective (Objective.WAvail) prices.
type E13Config struct {
	Horizon  sim.Time
	InjectAt sim.Time
	// BurstWindow bounds the transient CAN error burst.
	BurstWindow sim.Duration
	// Workers bounds campaign parallelism (<= 0: GOMAXPROCS).
	Workers int
	Seed    uint64
}

// DefaultE13 is the published configuration.
func DefaultE13() E13Config {
	return E13Config{
		Horizon: 600 * sim.Millisecond, InjectAt: 150 * sim.Millisecond,
		BurstWindow: sim.MS(60), Workers: 0, Seed: 13,
	}
}

// e13Candidate is one deployment alternative of the logical chain.
type e13Candidate struct {
	name string
	// redundant materializes a passive standby for the controller via
	// deploy.Replicate before mapping.
	redundant bool
	mapping   map[string]string
}

// e13Candidates spans the ECU-count axis: consolidation on one ECU, the
// same chain federated over two and three ECUs, and the fail-operational
// shape — three ECUs where the third hosts a passive controller standby
// instead of a third partition island.
func e13Candidates() []e13Candidate {
	return []e13Candidate{
		{name: "integrated", mapping: map[string]string{
			"Sensor": "e1", "Ctrl": "e1", "Act": "e1", "Watch": "e1"}},
		{name: "federated-2", mapping: map[string]string{
			"Sensor": "e1", "Ctrl": "e2", "Act": "e1", "Watch": "e1"}},
		{name: "federated-3", mapping: map[string]string{
			"Sensor": "e1", "Ctrl": "e2", "Act": "e3", "Watch": "e3"}},
		{name: "redundant-3", redundant: true, mapping: map[string]string{
			"Sensor": "e1", "Ctrl": "e2", "Act": "e1", "Watch": "e1", "Ctrl#1": "e3"}},
	}
}

// usedECUs returns the distinct target ECUs of a mapping, in name order.
func usedECUs(mapping map[string]string) []string {
	targets := map[string]bool{}
	for _, t := range mapping {
		targets[t] = true
	}
	var out []string
	for _, e := range []string{"e1", "e2", "e3"} {
		if targets[e] {
			out = append(out, e)
		}
	}
	return out
}

// e13Outcome is one scored scenario: the campaign result plus the replica
// switchovers the health ladder performed during the run.
type e13Outcome struct {
	fault.Result
	Failovers uint64
}

// e13Run is one candidate's campaign: an outcome per scenario, in
// scenario order (fault-free, one kill per used ECU, can-burst).
type e13Run struct {
	cand     e13Candidate
	ecus     int
	outcomes []e13Outcome
}

// runE13 executes the full campaign for every candidate. Scenarios run in
// parallel but results are slot-indexed, so the output is deterministic.
func runE13(cfg E13Config) ([]e13Run, error) {
	var runs []e13Run
	for _, cand := range e13Candidates() {
		ecus := usedECUs(cand.mapping)
		kills := map[string]string{} // scenario name -> killed ECU
		scenarios := []fault.Scenario{{
			Name: "fault-free", Class: fault.FaultECUKill,
			InjectAt: cfg.InjectAt, Until: cfg.InjectAt, // empty window: no fault armed
		}}
		for _, e := range ecus {
			s := fault.Scenario{
				Name: "ecu-kill:" + e, Class: fault.FaultECUKill,
				InjectAt: cfg.InjectAt, Until: sim.Infinity,
			}
			kills[s.Name] = e
			scenarios = append(scenarios, s)
		}
		scenarios = append(scenarios, fault.Scenario{
			Name: "can-burst", Class: fault.FaultCANBurst,
			InjectAt: cfg.InjectAt, Until: cfg.InjectAt + sim.Time(cfg.BurstWindow),
		})
		var mu sync.Mutex
		failovers := map[string]uint64{}
		results, err := fault.RunCampaign(cfg.Workers, scenarios, func(s fault.Scenario) fault.Result {
			r, fo := runE13Scenario(cfg, cand, s, kills[s.Name])
			mu.Lock()
			failovers[s.Name] = fo
			mu.Unlock()
			return r
		})
		if err != nil {
			return nil, err
		}
		run := e13Run{cand: cand, ecus: len(ecus)}
		for _, r := range results {
			run.outcomes = append(run.outcomes, e13Outcome{Result: r, Failovers: failovers[r.Scenario.Name]})
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// runE13Scenario deploys one candidate, arms one fault and measures the
// actuation service. The controller partition is health-supervised: a
// stale command stream qualifies against Ctrl, and the escalation ladder
// — notify, restarts, then the failover rung — is what promotes the
// standby; the experiment never calls FailOver directly.
func runE13Scenario(cfg E13Config, cand e13Candidate, s fault.Scenario, killECU string) (fault.Result, uint64) {
	sys, err := e13System(cand)
	if err != nil {
		return fault.Result{Scenario: s, FinalState: "deploy error: " + err.Error()}, 0
	}
	p, err := rte.Build(sys, rte.Options{})
	if err != nil {
		return fault.Result{Scenario: s, FinalState: "build error: " + err.Error()}, 0
	}
	p.MustBehavior("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", 100) })
	forward := func(c *rte.Context) { c.Write("cmd", "u", c.Read("in", "v")) } //autovet:allow e2eflow E13 studies ECU loss, not channel tampering; E2E qualification is E12's subject
	p.MustBehavior("Ctrl", "law", forward)
	if sys.Component("Ctrl#1") != nil {
		p.MustBehavior("Ctrl#1", "law", forward)
	}
	p.MustBehavior("Act", "apply", func(c *rte.Context) {})
	// Diagnostic monitor on the actuator's ECU: temporal validity of the
	// command stream, attributed to the controller partition. A silent
	// controller — dead ECU or severed bus — qualifies there.
	p.MustBehavior("Watch", "check", func(c *rte.Context) {
		if age := c.Age("tap", "u"); age >= 0 && age > sim.MS(25) {
			p.Errors.Report("Ctrl", rte.ErrSensor, "stale command stream")
		}
	})
	m := health.NewMonitor(p, health.MonitorOptions{})
	// The cooldown must outlast the staleness residue of an indirect
	// detector: after a promotion the watcher keeps seeing a stale stream
	// until the next end-to-end delivery, and a shorter cooldown would
	// escalate right past the rung that just cured the fault.
	m.MustProtect("Ctrl", health.Policy{
		Debounce:    health.DebounceConfig{Inc: 2, Dec: 1, Threshold: 3},
		MaxAttempts: 1, Cooldown: sim.MS(20),
		ResetDowntime: sim.MS(20), HealAfter: sim.MS(60),
		Runnable: "law",
	})
	switch {
	case killECU != "":
		if err := fault.KillECUAt(p, killECU, s.InjectAt); err != nil {
			return fault.Result{Scenario: s, FinalState: "arm error: " + err.Error()}, 0
		}
	case s.Class == fault.FaultCANBurst:
		if bus := p.CANBus("can0"); bus != nil {
			fault.CANBurst(bus, s.InjectAt, s.Until, 1.0, cfg.Seed)
		}
	}
	p.Run(cfg.Horizon)

	res := fault.Result{Scenario: s, Errors: p.Errors.Total()}
	res.DetectionLatency, res.Detected = fault.DetectionLatency(p.Errors.Records(), rte.ErrSensor, s.InjectAt)
	// The service is up whichever controller instance feeds it, so the
	// actuation stream itself is the observed source; were the actuator
	// replicated too, its whole group would be scored as a union.
	var sources []string
	for _, name := range p.ReplicaGroup("Act") {
		sources = append(sources, name+".apply")
	}
	res.Availability, _ = fault.AvailabilityAny(p.Trace, sources, sim.MS(10), s.InjectAt, cfg.Horizon)
	res.RecoveryLatency, res.Recovered, _ = fault.ServiceRecoveryAny(p.Trace, sources, sim.MS(10), s.InjectAt, cfg.Horizon)
	st := m.Status()[0]
	res.Escalations = st.Attempts
	res.FinalState = st.State.String()
	fo := p.Metrics.Counter("deploy_failovers_total", "",
		obs.Label{Key: "swc", Value: "Ctrl"}).Value()
	return res, fo
}

// E13Availability is the per-scenario detail: every candidate against
// every fault, with detection, ladder effort, switchovers and the
// availability of the actuation service.
func E13Availability(cfg E13Config) (*Table, error) {
	tab := &Table{
		Title: "E13 fail-operational deployment: availability under the fault campaign",
		Columns: []string{"candidate", "ecus", "scenario", "detected", "attempts",
			"failovers", "final state", "recovered", "availability"},
		Notes: []string{
			"ecu-kill is permanent: only a standby replica on a surviving ECU restores service.",
			"the redundant candidate's controller kill is cured by the ladder's failover rung;",
			"killing the standby's own ECU costs nothing (the primary keeps delivering).",
			"killing the actuator's ECU defeats every candidate alike: the observer dies with",
			"it, so nothing is even detected — replicating the controller alone has a limit.",
			"the integrated candidate routes everything locally: the can-burst cannot touch it.",
		},
	}
	runs, err := runE13(cfg)
	if err != nil {
		return nil, err
	}
	for _, run := range runs {
		for _, o := range run.outcomes {
			rec := "-"
			if o.Recovered && o.RecoveryLatency > 0 {
				rec = fmt.Sprint(o.RecoveryLatency)
			}
			tab.Add(run.cand.name, run.ecus, o.Scenario.Name, o.Detected,
				o.Escalations, o.Failovers, o.FinalState, rec, o.Availability)
		}
	}
	return tab, nil
}

// E13Curve condenses the campaign into the availability-per-ECU-count
// curve: what another ECU buys depends on what it hosts. A third
// federated island buys nothing against ECU loss; a standby replica on
// the same third ECU lifts mean kill availability far above every
// non-redundant shape.
func E13Curve(cfg E13Config) (*Table, error) {
	tab := &Table{
		Title:   "E13 availability per ECU count: redundancy beats federation",
		Columns: []string{"candidate", "ecus", "fault-free", "mean kill", "worst kill", "can-burst", "failovers"},
		Notes: []string{
			"mean/worst kill aggregate the per-ECU kill scenarios of each candidate.",
			"same ECU count, different availability: federated-3 vs redundant-3 is the",
			"paper's fail-operational argument in one row pair.",
		},
	}
	runs, err := runE13(cfg)
	if err != nil {
		return nil, err
	}
	for _, run := range runs {
		var faultFree, burst float64
		killSum, killMin, kills := 0.0, 1.0, 0
		var failovers uint64
		for _, o := range run.outcomes {
			failovers += o.Failovers
			switch o.Scenario.Name {
			case "fault-free":
				faultFree = o.Availability
			case "can-burst":
				burst = o.Availability
			default:
				killSum += o.Availability
				if o.Availability < killMin {
					killMin = o.Availability
				}
				kills++
			}
		}
		meanKill := 0.0
		if kills > 0 {
			meanKill = killSum / float64(kills)
		}
		tab.Add(run.cand.name, run.ecus, faultFree, meanKill, killMin, burst, failovers)
	}
	return tab, nil
}

// e13System builds the candidate's deployed system: the reference chain —
// a 10ms sensor feeding a controller feeding an actuator, with a
// diagnostic watcher tapping the command stream — over three CAN-coupled
// ECUs, with the controller optionally replicated through
// deploy.Replicate (the same materialization the DSE scores).
func e13System(cand e13Candidate) (*model.System, error) {
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	ifU := &model.PortInterface{
		Name: "IfU", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "u", Type: model.UInt16}},
	}
	ctrl := &model.SWC{
		Name: "Ctrl", ASIL: model.ASILD,
		Ports: []model.Port{
			{Name: "in", Direction: model.Required, Interface: ifV},
			{Name: "cmd", Direction: model.Provided, Interface: ifU},
		},
		Runnables: []model.Runnable{{
			Name: "law", WCETNominal: sim.US(40),
			Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
			Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
			Writes:  []model.PortRef{{Port: "cmd", Elem: "u"}},
		}},
	}
	if cand.redundant {
		ctrl.Redundancy = model.Redundancy{Replicas: 2, Mode: model.StandbyPassive}
	}
	sys := &model.System{
		Name:       "e13-" + cand.name,
		Interfaces: []*model.PortInterface{ifV, ifU},
		Components: []*model.SWC{
			{
				Name:  "Sensor",
				Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "sample", WCETNominal: sim.US(50),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
					Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
				}},
			},
			ctrl,
			{
				Name:  "Act",
				Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifU}},
				Runnables: []model.Runnable{{
					Name: "apply", WCETNominal: sim.US(20),
					Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "u"},
					Reads:   []model.PortRef{{Port: "in", Elem: "u"}},
				}},
			},
			{
				Name:  "Watch",
				Ports: []model.Port{{Name: "tap", Direction: model.Required, Interface: ifU}},
				Runnables: []model.Runnable{{
					Name: "check", WCETNominal: sim.US(20),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10), Offset: sim.MS(5)},
					Reads:   []model.PortRef{{Port: "tap", Elem: "u"}},
				}},
			},
		},
		ECUs: []*model.ECU{
			{Name: "e1", Speed: 1, Buses: []string{"can0"}},
			{Name: "e2", Speed: 1, Buses: []string{"can0"}},
			{Name: "e3", Speed: 1, Buses: []string{"can0"}},
		},
		Buses: []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 500_000}},
		Connectors: []model.Connector{
			{FromSWC: "Sensor", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"},
			{FromSWC: "Ctrl", FromPort: "cmd", ToSWC: "Act", ToPort: "in"},
			{FromSWC: "Ctrl", FromPort: "cmd", ToSWC: "Watch", ToPort: "tap"},
		},
	}
	out, err := deploy.Replicate(sys)
	if err != nil {
		return nil, fmt.Errorf("e13 %s: %w", cand.name, err)
	}
	out.Mapping = map[string]string{}
	for swc, ecu := range cand.mapping {
		out.Mapping[swc] = ecu
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("e13 %s: %w", cand.name, err)
	}
	return out, nil
}
