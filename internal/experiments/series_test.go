package experiments

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"autorte/internal/obs"
	"autorte/internal/sim"
)

func TestE11RecoverySeriesShape(t *testing.T) {
	cfg := DefaultE11()
	tab, err := E11RecoverySeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 50ms grid over a 600ms horizon: samples at 0..600ms inclusive.
	if len(tab.Rows) != 13 {
		t.Fatalf("got %d grid rows, want 13", len(tab.Rows))
	}
	// Every scenario contributes at every grid point.
	for _, row := range tab.Rows {
		if row[len(row)-1] != "11" {
			t.Fatalf("coverage %s runs at %s, want 11", row[len(row)-1], row[0])
		}
	}
	// Before injection (first two rows, t < 100ms) the fleet is Normal.
	for _, row := range tab.Rows[:2] {
		if row[1] != "0" || row[3] != "0" {
			t.Fatalf("fleet degraded before injection: %v", row)
		}
	}
	// The permanent fault drags the max to safe-stop (3) by the end.
	last := tab.Rows[len(tab.Rows)-1]
	if last[3] != "3" {
		t.Fatalf("final deg max %s, want 3 (safe-stop): %v", last[3], last)
	}
	// Mean degradation must move off zero after injection.
	moved := false
	for _, row := range tab.Rows[2:] {
		if row[2] != "0.00" {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("mean degradation level never left zero after injection")
	}
	// Service delivery: cumulative finishes mean is non-decreasing.
	prev := -1.0
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil || v < prev {
			t.Fatalf("finishes mean not monotone at %s: %v", row[0], row)
		}
		prev = v
	}
}

func TestE11RecoverySeriesDeterministic(t *testing.T) {
	render := func() string {
		tab, err := E11RecoverySeries(DefaultE11())
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		tab.Render(&b)
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("series campaign not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestE11SafeStopBundleEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "safestop.bundle")
	bundles, err := E11SafeStopBundle(DefaultE11(), path)
	if err != nil {
		t.Fatal(err)
	}
	last := bundles[len(bundles)-1]
	if !strings.HasPrefix(last.Reason, "safe-stop:") {
		t.Fatalf("terminal bundle reason %q", last.Reason)
	}
	// The serialized file round-trips to the same bundle.
	got, err := obs.ReadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != last.Reason || got.At != last.At || got.ConfigHash != last.ConfigHash {
		t.Fatalf("file round-trip mismatch: %+v vs %+v", got, last)
	}
	// The black box proves the ladder walked: escalation notes, the
	// degradation walk into safe-stop and the final level in the metrics.
	kinds := map[string]int{}
	sawSafeStopDeg := false
	for _, ev := range got.Flight.History {
		kinds[ev.Kind]++
		if ev.Kind == "degradation" && strings.HasSuffix(ev.Detail, "-> safe-stop") {
			sawSafeStopDeg = true
		}
	}
	if kinds["escalation"] < 5 || kinds["degradation"] < 2 || kinds["safe-stop"] != 1 {
		t.Fatalf("history incomplete: %v (%+v)", kinds, got.Flight.History)
	}
	if !sawSafeStopDeg {
		t.Fatalf("no degradation transition into safe-stop: %+v", got.Flight.History)
	}
	degFinal := -1.0
	for _, s := range got.Metrics {
		if s.Name == "health_degradation_level" {
			degFinal = s.Value
		}
	}
	if degFinal != 3 {
		t.Fatalf("bundle metric snapshot degradation level = %v, want 3", degFinal)
	}
	// Sampled series rode along for post-mortem curves.
	if len(got.Series) == 0 {
		t.Fatal("terminal bundle carries no sampled series")
	}
	// And the last DLT records cover the stop itself.
	if len(got.Flight.DLT) == 0 {
		t.Fatal("terminal bundle carries no DLT records")
	}
	tail := got.Flight.DLT[len(got.Flight.DLT)-1]
	if int64(last.At)-tail.At > int64(sim.MS(50)) {
		t.Fatalf("last DLT record is stale: bundle at %d, record at %d", last.At, tail.At)
	}
}

func TestE11EscalationTimelineShape(t *testing.T) {
	tab, err := E11EscalationTimeline(DefaultE11())
	if err != nil {
		t.Fatal(err)
	}
	var events, bundleRows []string
	for _, row := range tab.Rows {
		if row[1] == "bundle" {
			bundleRows = append(bundleRows, row[2])
		} else {
			events = append(events, row[1]+" "+row[2])
		}
	}
	if len(events) < 8 {
		t.Fatalf("timeline too short: %v", events)
	}
	if len(bundleRows) < 3 || !strings.HasPrefix(bundleRows[len(bundleRows)-1], "safe-stop:") {
		t.Fatalf("bundle rows = %v", bundleRows)
	}
}

func TestE12RecoverySeriesShape(t *testing.T) {
	tab, err := E12RecoverySeries(DefaultE12())
	if err != nil {
		t.Fatal(err)
	}
	// 50ms grid over 500ms: samples at 0..500ms inclusive.
	byScenario := map[string][][]string{}
	for _, row := range tab.Rows {
		byScenario[row[0]] = append(byScenario[row[0]], row)
	}
	for name, rows := range byScenario {
		if len(rows) != 11 {
			t.Fatalf("%s has %d rows, want 11", name, len(rows))
		}
	}
	can, fr := byScenario["can corrupt"], byScenario["flexray loss"]
	if can == nil || fr == nil {
		t.Fatalf("scenarios = %v", byScenario)
	}
	// CAN corruption: degradation leaves normal; delivery collapses and
	// stays collapsed (fail-silent).
	if can[len(can)-1][2] == "0" {
		t.Fatalf("can chain never degraded: %v", can[len(can)-1])
	}
	lastCan, err := strconv.Atoi(can[len(can)-1][5])
	if err != nil || lastCan != 0 {
		t.Fatalf("can delivery in last window = %v, want 0 (fail-silent)", can[len(can)-1])
	}
	// FlexRay failover: at least one failover counted; the final window
	// delivers (nearly) full service again — 5 completions per 50ms at a
	// 10ms period, minus at most one in flight across the horizon edge.
	sawFailover := false
	for _, row := range fr {
		if row[3] != "-" && row[3] != "0" {
			sawFailover = true
		}
	}
	if !sawFailover {
		t.Fatalf("no failover sampled: %v", fr)
	}
	got, err := strconv.Atoi(fr[len(fr)-1][5])
	if err != nil || got < 4 {
		t.Fatalf("flexray final-window delivery = %s, want >= 4: %v", fr[len(fr)-1][5], fr[len(fr)-1])
	}
}

func TestSeriesTablesRender(t *testing.T) {
	for _, run := range []func() (*Table, error){
		func() (*Table, error) { return E11RecoverySeries(DefaultE11()) },
		func() (*Table, error) { return E12RecoverySeries(DefaultE12()) },
	} {
		tab, err := run()
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		tab.Render(&b)
		if !strings.Contains(b.String(), "==") {
			t.Fatal("render produced nothing")
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Fatal(fmt.Errorf("ragged row %v", row))
			}
		}
	}
}
