package experiments

import (
	"fmt"
	"sync"

	"autorte/internal/deploy"
	"autorte/internal/fault"
	"autorte/internal/health"
	"autorte/internal/model"
	"autorte/internal/obs"
	"autorte/internal/rte"
	"autorte/internal/sim"
)

// E14 — fail-operational v2: the multi-failure study over the
// generalized redundancy layer. Where E13 compared deployment shapes
// under single ECU kills with one passive controller standby and one
// unreplicated observer, E14 measures the four generalizations of the
// follow-on work: hot (StandbyActive) standbys whose switchover is an
// output unmute, k-of-n survivability under concurrent ECU losses,
// automatic replica placement (deploy.PlaceReplicas) against the
// hand-enumerated shapes, and a replicated detection path where the
// staleness observer itself is a replica group voting through a
// majority quorum (health.Quorum) before the escalation ladder starts.

// E14Config parameterizes the multi-failure campaign.
type E14Config struct {
	Horizon  sim.Time
	InjectAt sim.Time
	// Workers bounds campaign parallelism (<= 0: GOMAXPROCS).
	Workers int
	Seed    uint64
}

// DefaultE14 is the published configuration. The horizon leaves room
// for two sequential ladder recoveries after a concurrent double kill.
func DefaultE14() E14Config {
	return E14Config{
		Horizon: 800 * sim.Millisecond, InjectAt: 150 * sim.Millisecond,
		Workers: 0, Seed: 14,
	}
}

// e14Deployment is one fully materialized alternative: standbys
// replicated and sited, mapping validated.
type e14Deployment struct {
	name string
	sys  *model.System
}

// e14System builds the E14 logical chain: a 10ms sensor feeding a
// controller feeding an actuator that acknowledges actuation, and a
// watchdog tapping all three streams (sensor value, command, ack) so a
// staleness verdict can blame the failing stage rather than the whole
// chain. Redundancy specs are applied per component; the caller
// replicates and maps.
func e14System(specs map[string]model.Redundancy) *model.System {
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	ifU := &model.PortInterface{
		Name: "IfU", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "u", Type: model.UInt16}},
	}
	ifA := &model.PortInterface{
		Name: "IfA", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "a", Type: model.UInt16}},
	}
	sys := &model.System{
		Name:       "e14",
		Interfaces: []*model.PortInterface{ifV, ifU, ifA},
		Components: []*model.SWC{
			{
				Name:  "Sensor",
				Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "sample", WCETNominal: sim.US(50),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
					Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
				}},
			},
			{
				Name: "Ctrl", ASIL: model.ASILD,
				Ports: []model.Port{
					{Name: "in", Direction: model.Required, Interface: ifV},
					{Name: "cmd", Direction: model.Provided, Interface: ifU},
				},
				Runnables: []model.Runnable{{
					Name: "law", WCETNominal: sim.US(40),
					Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
					Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
					Writes:  []model.PortRef{{Port: "cmd", Elem: "u"}},
				}},
			},
			{
				Name: "Act",
				Ports: []model.Port{
					{Name: "in", Direction: model.Required, Interface: ifU},
					{Name: "out", Direction: model.Provided, Interface: ifA},
				},
				Runnables: []model.Runnable{{
					Name: "apply", WCETNominal: sim.US(20),
					Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "u"},
					Reads:   []model.PortRef{{Port: "in", Elem: "u"}},
					Writes:  []model.PortRef{{Port: "out", Elem: "a"}},
				}},
			},
			{
				Name: "Watch",
				Ports: []model.Port{
					{Name: "tapV", Direction: model.Required, Interface: ifV},
					{Name: "tapU", Direction: model.Required, Interface: ifU},
					{Name: "tapA", Direction: model.Required, Interface: ifA},
				},
				Runnables: []model.Runnable{{
					Name: "check", WCETNominal: sim.US(20),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10), Offset: sim.MS(5)},
					Reads: []model.PortRef{
						{Port: "tapV", Elem: "v"}, {Port: "tapU", Elem: "u"}, {Port: "tapA", Elem: "a"},
					},
				}},
			},
		},
		ECUs: []*model.ECU{
			{Name: "e1", Speed: 1, Buses: []string{"can0"}},
			{Name: "e2", Speed: 1, Buses: []string{"can0"}},
			{Name: "e3", Speed: 1, Buses: []string{"can0"}},
		},
		// 1 Mbit/s: the replica fan-out of a fully ×3-replicated chain
		// keeps every standby's traffic on the wire (hot standbys pay
		// real bus load), which would crowd a 500 kbit/s channel.
		Buses: []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 1_000_000}},
		Connectors: []model.Connector{
			{FromSWC: "Sensor", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"},
			{FromSWC: "Ctrl", FromPort: "cmd", ToSWC: "Act", ToPort: "in"},
			{FromSWC: "Sensor", FromPort: "out", ToSWC: "Watch", ToPort: "tapV"},
			{FromSWC: "Ctrl", FromPort: "cmd", ToSWC: "Watch", ToPort: "tapU"},
			{FromSWC: "Act", FromPort: "out", ToSWC: "Watch", ToPort: "tapA"},
		},
	}
	for _, c := range sys.Components {
		if r, ok := specs[c.Name]; ok {
			c.Redundancy = r
		}
	}
	return sys
}

// e14Deploy materializes one hand-enumerated deployment.
func e14Deploy(name string, specs map[string]model.Redundancy, mapping map[string]string) (e14Deployment, error) {
	out, err := deploy.Replicate(e14System(specs))
	if err != nil {
		return e14Deployment{}, fmt.Errorf("e14 %s: %w", name, err)
	}
	out.Mapping = map[string]string{}
	for swc, ecu := range mapping {
		out.Mapping[swc] = ecu
	}
	if err := out.Validate(); err != nil {
		return e14Deployment{}, fmt.Errorf("e14 %s: %w", name, err)
	}
	return e14Deployment{name: name, sys: out}, nil
}

// e14AutoPlace derives the auto-placed deployment: PlaceReplicas under
// an explicit k=2 fault model (any two of the three ECUs concurrently),
// Soft so the unreplicated seed is scorable and IncludeSingletons so
// every uncovered component is gradient. The observer is forced to hot
// standbys — a passive observer replica could not vote.
func e14AutoPlace(cfg E14Config) (e14Deployment, *deploy.Placement, error) {
	seed := e14System(nil)
	seed.Mapping = map[string]string{
		"Sensor": "e1", "Ctrl": "e2", "Act": "e3", "Watch": "e3",
	}
	cons := deploy.Constraints{
		Faults: deploy.FaultModel{
			MaxConcurrent: 2,
			Losses: []deploy.Loss{
				{Kind: deploy.LossECU, ECUs: []string{"e1"}},
				{Kind: deploy.LossECU, ECUs: []string{"e2"}},
				{Kind: deploy.LossECU, ECUs: []string{"e3"}},
			},
			Soft: true, IncludeSingletons: true,
		},
	}
	obj := deploy.Objective{WECU: 1000, WHarness: 10, WLoad: 1, WAvail: 100_000}
	pl, err := deploy.PlaceReplicas(seed, cons, obj, deploy.PlacementOptions{
		MaxReplicas: 3,
		ModesFor:    map[string][]model.ReplicaMode{"Watch": {model.StandbyActive}},
		Workers:     cfg.Workers, DescendIters: 8,
	})
	if err != nil {
		return e14Deployment{}, nil, fmt.Errorf("e14 auto placement: %w", err)
	}
	if err := pl.System.Validate(); err != nil {
		return e14Deployment{}, nil, fmt.Errorf("e14 auto placement: %w", err)
	}
	return e14Deployment{name: "auto-placed", sys: pl.System}, pl, nil
}

// e14Outcome is one scored scenario of one deployment.
type e14Outcome struct {
	fault.Result
	// Failovers and failbacks across every replica group, and the
	// switchover latency histogram state per standby mode.
	Failovers uint64
	SwitchSum map[string]int64
	SwitchCnt map[string]uint64
}

// e14Scenarios builds the kill campaign: the fault-free baseline, every
// single ECU kill, and (up to maxConcurrent) every concurrent pair, in
// deterministic order. The returned map resolves each scenario to its
// kill set.
func e14Scenarios(cfg E14Config, ecus []string, maxConcurrent int) ([]fault.Scenario, map[string][]string) {
	kills := map[string][]string{}
	scenarios := []fault.Scenario{{
		Name: "fault-free", Class: fault.FaultECUKill,
		InjectAt: cfg.InjectAt, Until: cfg.InjectAt, // empty window: no fault armed
	}}
	add := func(set []string) {
		name := "ecu-kill:" + set[0]
		for _, e := range set[1:] {
			name += "+" + e
		}
		kills[name] = set
		scenarios = append(scenarios, fault.Scenario{
			Name: name, Class: fault.FaultECUKill,
			InjectAt: cfg.InjectAt, Until: sim.Infinity,
		})
	}
	for _, e := range ecus {
		add([]string{e})
	}
	if maxConcurrent >= 2 {
		for i := 0; i < len(ecus); i++ {
			for j := i + 1; j < len(ecus); j++ {
				add([]string{ecus[i], ecus[j]})
			}
		}
	}
	return scenarios, kills
}

// runE14 executes one deployment's campaign. Scenarios run in parallel;
// results are slot-indexed, so the output is deterministic.
func runE14(cfg E14Config, dep e14Deployment, maxConcurrent int) ([]e14Outcome, error) {
	scenarios, kills := e14Scenarios(cfg, usedECUs(dep.sys.Mapping), maxConcurrent)
	var mu sync.Mutex
	extras := map[string]e14Outcome{}
	results, err := fault.RunCampaign(cfg.Workers, scenarios, func(s fault.Scenario) fault.Result {
		o := runE14Scenario(cfg, dep, s, kills[s.Name])
		mu.Lock()
		extras[s.Name] = o
		mu.Unlock()
		return o.Result
	})
	if err != nil {
		return nil, err
	}
	var outcomes []e14Outcome
	for _, r := range results {
		o := extras[r.Scenario.Name]
		o.Result = r
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}

// runE14Scenario deploys one alternative, arms one kill set and measures
// the actuation service. Every stage primary is health-supervised, but —
// unlike E13 — no observer reports directly: each watchdog instance
// votes its blame into a per-subject quorum, and only majority agreement
// of the live observers feeds the error manager that drives the ladder.
// A single-instance observer degenerates to a majority of one, so the
// replicated and unreplicated detection paths are wired identically.
func runE14Scenario(cfg E14Config, dep e14Deployment, s fault.Scenario, kills []string) e14Outcome {
	fail := func(state string) e14Outcome {
		return e14Outcome{Result: fault.Result{Scenario: s, FinalState: state}}
	}
	sys := dep.sys.Clone()
	p, err := rte.Build(sys, rte.Options{})
	if err != nil {
		return fail("build error: " + err.Error())
	}
	attach := func(primary, runnable string, b rte.Behavior) {
		for _, name := range p.ReplicaGroup(primary) {
			p.MustBehavior(name, runnable, b)
		}
	}
	attach("Sensor", "sample", func(c *rte.Context) { c.Write("out", "v", 100) })
	attach("Ctrl", "law", func(c *rte.Context) {
		c.Write("cmd", "u", c.Read("in", "v")) //autovet:allow e2eflow E14 studies ECU loss, not channel tampering; E2E qualification is E12's subject
	})
	attach("Act", "apply", func(c *rte.Context) {
		c.Write("out", "a", c.Read("in", "u")) //autovet:allow e2eflow actuation ack mirrors the command for the watchdog's liveness tap
	})
	// One quorum per supervised stage, all sharing the watchdog replica
	// group as electorate.
	observers := p.ReplicaGroup("Watch")
	quorums := map[string]*health.Quorum{}
	for _, subject := range []string{"Sensor", "Ctrl", "Act"} {
		q, err := health.NewQuorum(p, subject, observers, health.QuorumOptions{})
		if err != nil {
			return fail("quorum error: " + err.Error())
		}
		quorums[subject] = q
	}
	// Each watchdog instance votes dependency-ordered blame: a stale
	// sensor stream indicts the sensor (the downstream silence is just
	// consequence), a fresh sensor with a stale command indicts the
	// controller, and fresh inputs with a stale ack indict the actuator.
	// Downstream stages get an abstention while upstream is indicted.
	stale := func(age sim.Duration) bool { return age >= 0 && age > sim.MS(25) }
	for _, w := range observers {
		w := w
		p.MustBehavior(w, "check", func(c *rte.Context) {
			vS, uS, aS := stale(c.Age("tapV", "v")), stale(c.Age("tapU", "u")), stale(c.Age("tapA", "a"))
			switch {
			case vS:
				quorums["Sensor"].Vote(w, health.VerdictFault, "stale sensor stream")
				quorums["Ctrl"].Vote(w, health.VerdictSuspect, "")
				quorums["Act"].Vote(w, health.VerdictSuspect, "")
			case uS:
				quorums["Sensor"].Vote(w, health.VerdictOK, "")
				quorums["Ctrl"].Vote(w, health.VerdictFault, "stale command stream")
				quorums["Act"].Vote(w, health.VerdictSuspect, "")
			case aS:
				quorums["Sensor"].Vote(w, health.VerdictOK, "")
				quorums["Ctrl"].Vote(w, health.VerdictOK, "")
				quorums["Act"].Vote(w, health.VerdictFault, "stale actuation ack")
			default:
				quorums["Sensor"].Vote(w, health.VerdictOK, "")
				quorums["Ctrl"].Vote(w, health.VerdictOK, "")
				quorums["Act"].Vote(w, health.VerdictOK, "")
			}
		})
	}
	m := health.NewMonitor(p, health.MonitorOptions{})
	for _, stage := range []struct{ subject, runnable string }{
		{"Sensor", "sample"}, {"Ctrl", "law"}, {"Act", "apply"},
	} {
		subject, runnable := stage.subject, stage.runnable
		m.MustProtect(subject, health.Policy{
			Debounce:    health.DebounceConfig{Inc: 2, Dec: 1, Threshold: 3},
			MaxAttempts: 1, Cooldown: sim.MS(20),
			ResetDowntime: sim.MS(20), HealAfter: sim.MS(60),
			Runnable: runnable,
		})
	}
	for _, e := range kills {
		if err := fault.KillECUAt(p, e, s.InjectAt); err != nil {
			return fail("arm error: " + err.Error())
		}
	}
	p.Run(cfg.Horizon)

	res := fault.Result{Scenario: s, Errors: p.Errors.Total()}
	res.DetectionLatency, res.Detected = fault.DetectionLatency(p.Errors.Records(), rte.ErrSensor, s.InjectAt)
	var sources []string
	for _, name := range p.ReplicaGroup("Act") {
		sources = append(sources, name+".apply")
	}
	res.Availability, _ = fault.AvailabilityAny(p.Trace, sources, sim.MS(10), s.InjectAt, cfg.Horizon)
	res.RecoveryLatency, res.Recovered, _ = fault.ServiceRecoveryAny(p.Trace, sources, sim.MS(10), s.InjectAt, cfg.Horizon)
	out := e14Outcome{Result: res, SwitchSum: map[string]int64{}, SwitchCnt: map[string]uint64{}}
	for _, subject := range []string{"Sensor", "Ctrl", "Act"} {
		out.Failovers += p.Metrics.Counter("deploy_failovers_total", "",
			obs.Label{Key: "swc", Value: subject}).Value()
	}
	for _, mode := range []model.ReplicaMode{model.StandbyPassive, model.StandbyActive} {
		h := p.Metrics.Histogram("deploy_switchover_latency_ns", "",
			obs.Label{Key: "mode", Value: mode.String()})
		out.SwitchSum[mode.String()] = h.Sum()
		out.SwitchCnt[mode.String()] = h.Count()
	}
	return out
}

// e14ObserverDeployments builds the detection-study pair: the same
// redundant chain behind a single observer and behind a hot 3-instance
// observer group spread over all ECUs.
func e14ObserverDeployments() (single, replicated e14Deployment, err error) {
	single, err = e14Deploy("single-observer",
		map[string]model.Redundancy{
			"Ctrl": {Replicas: 2, Mode: model.StandbyPassive},
			"Act":  {Replicas: 2, Mode: model.StandbyPassive},
		},
		map[string]string{
			"Sensor": "e1", "Ctrl": "e2", "Ctrl#1": "e3",
			"Act": "e3", "Act#1": "e1", "Watch": "e3",
		})
	if err != nil {
		return single, replicated, err
	}
	replicated, err = e14Deploy("replicated-observer",
		map[string]model.Redundancy{
			"Ctrl":  {Replicas: 2, Mode: model.StandbyPassive},
			"Act":   {Replicas: 2, Mode: model.StandbyPassive},
			"Watch": {Replicas: 3, Mode: model.StandbyActive},
		},
		map[string]string{
			"Sensor": "e1", "Ctrl": "e2", "Ctrl#1": "e3",
			"Act": "e3", "Act#1": "e1",
			"Watch": "e3", "Watch#1": "e1", "Watch#2": "e2",
		})
	return single, replicated, err
}

// E14Observer contrasts the single staleness observer (E13's ceiling)
// with a replicated observer group voting through the majority quorum,
// on an otherwise identical redundant deployment.
func E14Observer(cfg E14Config) (*Table, error) {
	single, replicated, err := e14ObserverDeployments()
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title: "E14 replicated detection: observer quorum vs the single-observer ceiling",
		Columns: []string{"deployment", "scenario", "detected", "failovers",
			"recovered", "availability"},
		Notes: []string{
			"same redundant chain, same kills; only the detection path differs.",
			"killing e3 takes the actuator AND the lone observer: nothing reports, the",
			"standby actuator is never promoted. The 3-instance hot observer group keeps",
			"a live majority on the surviving ECUs, blames the actuator, and the ladder's",
			"failover rung restores the service — detection is no longer the ceiling.",
		},
	}
	for _, dep := range []e14Deployment{single, replicated} {
		outcomes, err := runE14(cfg, dep, 1)
		if err != nil {
			return nil, err
		}
		for _, o := range outcomes {
			tab.Add(dep.name, o.Scenario.Name, o.Detected, o.Failovers,
				o.Recovered, o.Availability)
		}
	}
	return tab, nil
}

// e14SwitchoverDeployment builds the minimal two-replica controller
// chain the switchover study (and the hand-enumerated placement
// baseline — E13's redundant-3 shape) deploys.
func e14SwitchoverDeployment(mode model.ReplicaMode) (e14Deployment, error) {
	name := "cold-standby"
	if mode == model.StandbyActive {
		name = "hot-standby"
	}
	return e14Deploy(name,
		map[string]model.Redundancy{"Ctrl": {Replicas: 2, Mode: mode}},
		map[string]string{
			"Sensor": "e1", "Ctrl": "e2", "Ctrl#1": "e3",
			"Act": "e1", "Watch": "e1",
		})
}

// E14Switchover measures the hot-vs-cold switchover claim: a passive
// standby resumes and waits for the next production; a hot standby was
// producing all along, so promotion just unmutes its suppressed outputs.
func E14Switchover(cfg E14Config) (*Table, error) {
	tab := &Table{
		Title:   "E14 switchover latency: hot standby unmute vs passive resume",
		Columns: []string{"deployment", "scenario", "switchovers", "mode", "latency (us)", "availability"},
		Notes: []string{
			"latency: fail-over to the promoted instance's first delivered output,",
			"from the deploy_switchover_latency_ns histogram. The hot standby's muted",
			"last value flushes at the switch itself (~0); the cold standby pays the",
			"resume plus the wait for the next end-to-end production.",
		},
	}
	for _, mode := range []model.ReplicaMode{model.StandbyPassive, model.StandbyActive} {
		dep, err := e14SwitchoverDeployment(mode)
		if err != nil {
			return nil, err
		}
		outcomes, err := runE14(cfg, dep, 1)
		if err != nil {
			return nil, err
		}
		for _, o := range outcomes {
			if o.Scenario.Name != "ecu-kill:e2" {
				continue // only the controller kill exercises the switchover
			}
			cnt := o.SwitchCnt[mode.String()]
			lat := "-"
			if cnt > 0 {
				lat = fmt.Sprintf("%.1f", float64(o.SwitchSum[mode.String()])/float64(cnt)/1000)
			}
			tab.Add(dep.name, o.Scenario.Name, cnt, mode.String(), lat, o.Availability)
		}
	}
	return tab, nil
}

// E14Placement pits deploy.PlaceReplicas against the best
// hand-enumerated E13-style shape at equal ECU count, under the full
// k-of-n campaign: availability per number of concurrent ECU losses —
// the k-of-n availability curve.
func E14Placement(cfg E14Config) (*Table, error) {
	hand, err := e14SwitchoverDeployment(model.StandbyPassive)
	if err != nil {
		return nil, err
	}
	hand.name = "hand-enumerated"
	auto, pl, err := e14AutoPlace(cfg)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   "E14 k-of-n availability curve: auto-placed replicas vs hand enumeration",
		Columns: []string{"deployment", "ecus", "instances", "k", "scenarios", "mean avail", "worst avail"},
		Notes: []string{
			"k concurrent ECU losses out of 3, same campaign for both deployments.",
			"hand enumeration replicates only the controller: any double kill (and any",
			"single kill of an unreplicated stage) zeroes the service. The placement",
			"search, scoring the k=2 fault model through the survivability objective,",
			"replicates every stage across all three ECUs, so one surviving ECU still",
			"carries the whole chain after the ladder promotes its standbys in turn.",
		},
	}
	spec := "auto spec:"
	for _, name := range []string{"Sensor", "Ctrl", "Act", "Watch"} {
		spec += fmt.Sprintf(" %s×%d(%s)", name, pl.Replicas[name], pl.Modes[name])
	}
	tab.Notes = append(tab.Notes, spec)
	for _, dep := range []e14Deployment{hand, auto} {
		outcomes, err := runE14(cfg, dep, 2)
		if err != nil {
			return nil, err
		}
		instances := len(dep.sys.Components)
		byK := map[int][]e14Outcome{}
		for _, o := range outcomes {
			k := 0
			if o.Scenario.Name != "fault-free" {
				k = 1
				for _, ch := range o.Scenario.Name {
					if ch == '+' {
						k++
					}
				}
			}
			byK[k] = append(byK[k], o)
		}
		for k := 0; k <= 2; k++ {
			os := byK[k]
			if len(os) == 0 {
				continue
			}
			sum, worst := 0.0, 1.0
			for _, o := range os {
				sum += o.Availability
				if o.Availability < worst {
					worst = o.Availability
				}
			}
			tab.Add(dep.name, len(usedECUs(dep.sys.Mapping)), instances, k,
				len(os), sum/float64(len(os)), worst)
		}
	}
	return tab, nil
}
