// Package nilsafe defines an analyzer enforcing the platform's
// nil-receiver idiom on opt-in observability types.
//
// Observability in this codebase is optional by construction: a nil
// *trace.Recorder, *obs.Registry, *obs.Log or *obs.Tracer is a valid,
// do-nothing instance, so substrates can record unconditionally and
// callers opt in by supplying a real one. The contract only holds if
// every exported pointer-receiver method begins with a nil-receiver
// guard — one missing guard turns "tracing disabled" into a panic in
// the middle of a verification run. Types opt in by carrying
// //autovet:nilsafe on their declaration; the analyzer then insists the
// first statement of each exported pointer-receiver method is an if
// whose condition checks the receiver against nil.
package nilsafe

import (
	"go/ast"
	"go/token"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"autorte/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "nilsafe",
	Doc: "exported pointer-receiver methods on //autovet:nilsafe types must begin with a nil-receiver guard\n\n" +
		"The nil-Recorder idiom (a nil receiver is a valid, disabled instance)\n" +
		"only holds when every exported pointer-receiver method starts with\n" +
		"'if r == nil { ... }'. Suppress a deliberate exception with\n" +
		"//autovet:allow nilsafe.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	marked := map[string]bool{}
	for _, f := range pass.Files {
		for name := range directive.NilsafeMarked(f) {
			marked[name] = true
		}
	}
	if len(marked) == 0 {
		return nil, nil
	}
	allow := directive.CollectAllow(pass, "nilsafe", pass.Files)

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		recv, typeName := pointerReceiver(fd)
		if typeName == "" || !marked[typeName] || !fd.Name.IsExported() || fd.Body == nil {
			return
		}
		if beginsWithNilGuard(fd.Body, recv) {
			return
		}
		allow.Reportf(fd.Name.Pos(),
			"exported method (*%s).%s on nil-safe type must begin with a nil-receiver guard (the nil %s is a valid, disabled instance)",
			typeName, fd.Name.Name, typeName)
	})
	allow.ReportUnused()
	return nil, nil
}

// pointerReceiver returns the receiver identifier name and the receiver
// type name when fd is a method with receiver *T; otherwise "" names.
func pointerReceiver(fd *ast.FuncDecl) (recv, typeName string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", ""
	}
	field := fd.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", "" // value receivers cannot be nil
	}
	base := star.X
	if idx, ok := base.(*ast.IndexExpr); ok { // generic receiver *T[P]
		base = idx.X
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(field.Names) == 1 {
		recv = field.Names[0].Name
	}
	return recv, id.Name
}

// beginsWithNilGuard reports whether body's first statement is an if
// whose condition compares the receiver against nil — either the early
// return form ("if r == nil { return }") or the wrapping form
// ("if r != nil { ... }"), possibly alongside other conditions.
func beginsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if recv == "" || len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok {
		return false
	}
	return condChecksNil(ifStmt.Cond, recv)
}

func condChecksNil(e ast.Expr, recv string) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return condChecksNil(e.X, recv)
	case *ast.BinaryExpr:
		if e.Op == token.LOR || e.Op == token.LAND {
			return condChecksNil(e.X, recv) || condChecksNil(e.Y, recv)
		}
		if e.Op != token.EQL && e.Op != token.NEQ {
			return false
		}
		return isIdent(e.X, recv) && isNil(e.Y) || isNil(e.X) && isIdent(e.Y, recv)
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
