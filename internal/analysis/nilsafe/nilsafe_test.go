package nilsafe_test

import (
	"testing"

	"autorte/internal/analysis/checktest"
	"autorte/internal/analysis/nilsafe"
)

func TestNilsafe(t *testing.T) {
	checktest.Run(t, "testdata", nilsafe.Analyzer, "a")
}
