// Package a is nilsafe-analyzer testdata.
package a

// Rec accumulates values. A nil *Rec is a valid, disabled instance.
//
//autovet:nilsafe
type Rec struct {
	xs []int
}

// Add uses the early-return guard form: ok.
func (r *Rec) Add(x int) {
	if r == nil {
		return
	}
	r.xs = append(r.xs, x)
}

// Reset uses the wrapping guard form: ok.
func (r *Rec) Reset() {
	if r != nil {
		r.xs = r.xs[:0]
	}
}

// Bounded combines the guard with another condition: ok.
func (r *Rec) Bounded(x int) bool {
	if r == nil || x < 0 {
		return false
	}
	return len(r.xs) > x
}

// Len is missing its guard entirely.
func (r *Rec) Len() int { // want `exported method \(\*Rec\)\.Len on nil-safe type must begin with a nil-receiver guard`
	return len(r.xs)
}

// Late guards, but not as the first statement.
func (r *Rec) Late() int { // want `\(\*Rec\)\.Late on nil-safe type must begin with a nil-receiver guard`
	n := 0
	if r == nil {
		return n
	}
	return len(r.xs)
}

// Wrong guards something else, not the receiver.
func (r *Rec) Wrong(p *int) int { // want `\(\*Rec\)\.Wrong on nil-safe type must begin with a nil-receiver guard`
	if p == nil {
		return 0
	}
	return *p + len(r.xs)
}

// grow is unexported: callers inside the package own the nil check.
func (r *Rec) grow(n int) {
	r.xs = append(r.xs, make([]int, n)...)
}

// Snapshot has a value receiver, which cannot be nil: ok.
func (r Rec) Snapshot() []int {
	return append([]int(nil), r.xs...)
}

// Sum is a deliberate exception, justified inline.
func (r *Rec) Sum() int { //autovet:allow nilsafe callers always hold a non-nil Rec
	n := 0
	for _, x := range r.xs {
		n += x
	}
	return n
}

// Plain is not marked, so its methods are unchecked.
type Plain struct{ n int }

func (p *Plain) Bump() { p.n++ }
