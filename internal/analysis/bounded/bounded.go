// Package bounded defines an analyzer that forbids unbounded growth of
// long-lived platform state.
//
// The observability and health layers stay attached to a platform for
// its whole life — a fault campaign can run millions of virtual-time
// ticks — so any struct field that grows per event (an append that
// feeds itself, a subscriber list, a record log) is a slow memory leak
// unless its growth is bounded by design. The flight-recorder work made
// that bound a first-class idiom (obs.Ring, ring-mode logs, capped
// error records); this analyzer makes it a checked contract: appends
// into fields of long-lived structs in the obs, health and rte packages
// must feed a type or field marked //autovet:bounded <reason> (the
// marker is exported as an analysis fact, so the exemption crosses
// package boundaries), and channels must be created with a capacity —
// an unbuffered channel stalls the emitter the moment a consumer lags.
package bounded

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	platform "autorte/internal/analysis"
	"autorte/internal/analysis/directive"
)

// defaultPackages hold long-lived per-platform state.
const defaultPackages = "obs,health,rte"

// boundedFact marks a struct type or field whose growth is bounded by
// design, exported so consumers in other packages inherit the
// exemption.
type boundedFact struct{}

func (*boundedFact) AFact()         {}
func (*boundedFact) String() string { return "bounded" }

var Analyzer = &analysis.Analyzer{
	Name: "bounded",
	Doc: "forbid unbounded growth of long-lived platform state\n\n" +
		"Structs in obs, health and rte survive for the life of a platform,\n" +
		"so fields that grow per event must be bounded by design: appends\n" +
		"into such fields are reported unless the field or its type carries\n" +
		"//autovet:bounded <reason> (exported as a fact for cross-package\n" +
		"use), and channels must be made with an explicit capacity. Test\n" +
		"files are exempt; one-off exceptions use //autovet:allow bounded.",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*boundedFact)(nil)},
	Run:       run,
}

var packagesFlag = defaultPackages

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages",
		defaultPackages, "comma-separated package names whose long-lived structs must stay bounded")
}

func run(pass *analysis.Pass) (any, error) {
	// Marker collection and fact export run for every package, so a
	// bounded type declared outside the checked set (obs consumed from a
	// cmd, say) still carries its exemption; growth checks run only in
	// the long-lived packages.
	marked := collectMarks(pass)
	for obj := range marked {
		if obj.Exported() {
			pass.ExportObjectFact(obj, &boundedFact{})
		}
	}
	if !platform.PkgIn(pass.Pkg, packagesFlag) {
		return nil, nil
	}

	var files []*ast.File
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	allow := directive.CollectAllow(pass, "bounded", files)
	skip := map[*ast.File]bool{}
	for _, f := range pass.Files {
		skip[f] = strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
	}

	isBounded := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		if marked[obj] {
			return true
		}
		return pass.ImportObjectFact(obj, new(boundedFact))
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.File)(nil), (*ast.AssignStmt)(nil), (*ast.CallExpr)(nil)}
	var inSkipped bool
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			inSkipped = skip[n]
		case *ast.AssignStmt:
			if !inSkipped {
				checkAppend(pass, allow, isBounded, n)
			}
		case *ast.CallExpr:
			if !inSkipped {
				checkMakeChan(pass, allow, n)
			}
		}
	})
	allow.ReportUnused()
	return nil, nil
}

// collectMarks resolves every //autovet:bounded marker in the package to
// the struct type or field object it annotates.
func collectMarks(pass *analysis.Pass) map[types.Object]bool {
	marked := map[types.Object]bool{}
	for _, f := range pass.Files {
		// Positions of bounded directives in this file.
		pos := map[token.Pos]bool{}
		for _, d := range directive.ParseFile(pass.Fset, f, pass.ReadFile) {
			if d.Verb == directive.VerbBounded {
				pos[d.Pos] = true
			}
		}
		if len(pos) == 0 {
			continue
		}
		groupMarked := func(g *ast.CommentGroup) bool {
			if g == nil {
				return false
			}
			for _, c := range g.List {
				if pos[c.Pos()] {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				if n.Tok != token.TYPE {
					return true
				}
				declMarked := groupMarked(n.Doc)
				for _, spec := range n.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if declMarked || groupMarked(ts.Doc) || groupMarked(ts.Comment) {
						if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
							marked[obj] = true
						}
					}
				}
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					if groupMarked(fld.Doc) || groupMarked(fld.Comment) {
						for _, name := range fld.Names {
							if obj := pass.TypesInfo.Defs[name]; obj != nil {
								marked[obj] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return marked
}

// checkAppend flags x.f = append(x.f, ...) where x is a pointer to a
// long-lived struct and neither the field nor its type is marked
// bounded.
func checkAppend(pass *analysis.Pass, allow *directive.Allow, isBounded func(types.Object) bool, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		call, ok := as.Rhs[i].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if bi, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Builtin); !ok || bi.Name() != "append" {
			continue
		}
		field, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !field.IsField() {
			continue
		}
		// Self-feeding growth only: x.f = append(x.f, ...). Replacing a
		// field with some other slice is not accumulation.
		src, ok := call.Args[0].(*ast.SelectorExpr)
		if !ok || pass.TypesInfo.Uses[src.Sel] != field {
			continue
		}
		// Long-lived state reaches the append through a pointer; a value
		// base is a local copy being built up.
		base := pass.TypesInfo.TypeOf(sel.X)
		ptr, ok := base.(*types.Pointer)
		if !ok {
			continue
		}
		// Origin maps a field of an instantiated generic struct back to
		// the declared field the marker annotates.
		if isBounded(field.Origin()) {
			continue
		}
		if named, ok := ptr.Elem().(*types.Named); ok && isBounded(named.Obj()) {
			continue
		}
		typeName := "struct"
		if named, ok := ptr.Elem().(*types.Named); ok {
			typeName = named.Obj().Name()
		}
		allow.Reportf(as.Pos(),
			"unbounded growth: %s.%s accumulates per call on long-lived %s — bound it, mark the field //autovet:bounded <reason>, or justify with //autovet:allow bounded",
			typeName, field.Name(), typeName)
	}
}

// checkMakeChan flags make(chan T) with no capacity.
func checkMakeChan(pass *analysis.Pass, allow *directive.Allow, call *ast.CallExpr) {
	bi, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Builtin)
	if !ok || bi.Name() != "make" || len(call.Args) != 1 {
		return
	}
	t := pass.TypesInfo.TypeOf(call.Args[0])
	if t == nil {
		return
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return
	}
	allow.Reportf(call.Pos(),
		"make(chan) without capacity: an unbuffered channel stalls the emitter when the consumer lags — give it a bound or justify with //autovet:allow bounded")
}
