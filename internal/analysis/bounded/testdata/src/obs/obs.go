// Package obs exercises the bounded analyzer: appends into long-lived
// struct fields must feed bounded-marked state.
package obs

// Ring's field is individually marked.
type Ring struct {
	//autovet:bounded overwrites oldest past cap, backing array never exceeds cap
	buf []int
	cap int
}

func (r *Ring) Push(v int) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, v) // ok: field marked bounded
	}
}

// Sized is marked at the type level; every field inherits the bound.
//
//autovet:bounded sized once at construction from the static model
type Sized struct {
	Items []int
	names []string
}

func (s *Sized) add(v int, n string) {
	s.Items = append(s.Items, v) // ok: type marked bounded
	s.names = append(s.names, n) // ok: type marked bounded
}

// GenRing is generic: the marker on the declared field must cover the
// instantiated field seen inside methods.
type GenRing[T any] struct {
	//autovet:bounded grows to cap, then overwrites in place
	buf []T
	cap int
}

func (r *GenRing[T]) Push(v T) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, v) // ok: origin field marked bounded
	}
}

// GenList is generic and unmarked: still flagged.
type GenList[T any] struct {
	items []T
}

func (l *GenList[T]) Add(v T) {
	l.items = append(l.items, v) // want `unbounded growth: GenList.items accumulates per call`
}

type Log struct {
	records []int
	subs    []chan int
}

func (l *Log) Emit(v int) {
	l.records = append(l.records, v) // want `unbounded growth: Log.records accumulates per call`
}

func (l *Log) Subscribe() chan int {
	ch := make(chan int)        // want `make\(chan\) without capacity`
	l.subs = append(l.subs, ch) //autovet:allow bounded subscriber count is fixture-sized
	return ch
}

func (l *Log) Buffered() chan int {
	return make(chan int, 64) // ok: explicit capacity
}

func locals() []int {
	var s []int
	s = append(s, 1) // ok: local slice, not long-lived struct state
	return s
}

type view struct{ xs []int }

// byValue builds up a copy: the base is not a pointer, so this is not
// long-lived accumulation.
func byValue(v view) view {
	v.xs = append(v.xs, 1)
	return v
}

func (l *Log) replace(other []int) {
	l.records = other // ok: plain assignment, not self-feeding append
}
