// Package health exercises bounded's cross-package facts: obs.Sized is
// marked bounded in its home package, and the exemption travels here as
// an analysis fact.
package health

import "obs"

func grow(s *obs.Sized) {
	s.Items = append(s.Items, 1) // ok: bounded fact imported from obs
}

type Monitor struct {
	events []int
}

func (m *Monitor) on(v int) {
	m.events = append(m.events, v) // want `unbounded growth: Monitor.events accumulates per call`
}
