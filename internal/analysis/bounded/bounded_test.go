package bounded_test

import (
	"testing"

	"autorte/internal/analysis/bounded"
	"autorte/internal/analysis/checktest"
)

func TestBounded(t *testing.T) {
	checktest.Run(t, "testdata", bounded.Analyzer, "health")
}

func TestBoundedObsOnly(t *testing.T) {
	checktest.Run(t, "testdata", bounded.Analyzer, "obs")
}
