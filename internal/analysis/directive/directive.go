// Package directive parses the //autovet: comment directives that the
// autovet analyzers (see autorte/internal/analysis) understand, and
// implements the shared suppression bookkeeping:
//
//	//autovet:allow <analyzer> [reason...]
//
// placed at the end of a line suppresses that analyzer's diagnostics on
// the same line; placed alone on a line it suppresses diagnostics on the
// line below. Every allow directive must actually suppress something —
// a stale directive on a clean line is itself reported by the analyzer
// it names, so suppressions cannot silently outlive the code they
// excused.
//
//	//autovet:nilsafe
//
// on a type declaration opts the type into the nilsafe analyzer's
// nil-receiver-guard contract.
//
//	//autovet:bounded <reason>
//
// on a struct type declaration or an individual struct field marks its
// growth as bounded by design (ring-capped, sized by the static model),
// exempting appends that feed it from the bounded analyzer. The reason
// is mandatory: a bound that cannot be stated in a sentence is not a
// bound.
//
// The package also exports Analyzer ("autovetdirective"), which
// validates directive syntax: unknown verbs, missing or unknown
// analyzer names, and misplaced nilsafe markers are all diagnosed so a
// typo cannot silently disable enforcement.
package directive

import (
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix introduces an autovet directive comment.
const Prefix = "//autovet:"

// Verbs understood by the suite.
const (
	VerbAllow   = "allow"
	VerbNilsafe = "nilsafe"
	// VerbBounded marks a struct type or field whose growth is bounded by
	// design (a ring, a model-sized registry): the bounded analyzer then
	// exempts appends that feed it. The marker must carry a reason.
	VerbBounded = "bounded"
)

// Analyzers that may be named in an allow directive. The directive
// analyzer itself cannot be suppressed.
var KnownAnalyzers = []string{
	"baregoroutine", "bounded", "detrange", "e2eflow", "errreport",
	"kindswitch", "lockorder", "nilsafe", "walltime",
}

// A Directive is one parsed //autovet: comment.
type Directive struct {
	Pos     token.Pos // position of the comment
	Verb    string    // e.g. "allow"; empty when only the prefix was written
	Args    []string  // fields after the verb ("// ..." trailers stripped)
	OwnLine bool      // the comment is the only thing on its line
}

// Analyzer named by an allow directive (first argument), or "".
func (d Directive) Analyzer() string {
	if d.Verb == VerbAllow && len(d.Args) > 0 {
		return d.Args[0]
	}
	return ""
}

// parseComment returns the directive in c, if any. A trailing nested
// comment ("//autovet:allow walltime // want ...") is stripped so
// directives compose with analysistest-style expectations.
func parseComment(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, Prefix) {
		return Directive{}, false
	}
	body := c.Text[len(Prefix):]
	if i := strings.Index(body, "//"); i >= 0 {
		body = body[:i]
	}
	fields := strings.Fields(body)
	d := Directive{Pos: c.Pos()}
	if len(fields) > 0 {
		d.Verb = fields[0]
		d.Args = fields[1:]
	}
	return d, true
}

// readLine returns the source text of the line containing pos, using
// read (falling back to os.ReadFile when read is nil).
func readLine(fset *token.FileSet, read func(string) ([]byte, error), pos token.Pos) (string, bool) {
	p := fset.Position(pos)
	if read == nil {
		read = os.ReadFile
	}
	src, err := read(p.Filename)
	if err != nil {
		return "", false
	}
	lines := strings.Split(string(src), "\n")
	if p.Line-1 < 0 || p.Line-1 >= len(lines) {
		return "", false
	}
	return lines[p.Line-1], true
}

// ParseFile extracts every //autovet: directive from f. OwnLine is
// computed from the raw source via read (typically pass.ReadFile).
func ParseFile(fset *token.FileSet, f *ast.File, read func(string) ([]byte, error)) []Directive {
	var out []Directive
	for _, g := range f.Comments {
		for _, c := range g.List {
			d, ok := parseComment(c)
			if !ok {
				continue
			}
			if line, ok := readLine(fset, read, d.Pos); ok {
				col := fset.Position(d.Pos).Column
				d.OwnLine = strings.TrimSpace(line[:min(col-1, len(line))]) == ""
			}
			out = append(out, d)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type allowEntry struct {
	dir  Directive
	used bool
}

// Allow tracks the //autovet:allow directives for one analyzer across
// the files it checks, answers suppression queries, and reports stale
// directives that excused nothing.
type Allow struct {
	pass *analysis.Pass
	name string
	// filename -> suppressed line -> entry
	byLine map[string]map[int]*allowEntry
}

// CollectAllow gathers the allow directives naming analyzer from files.
// Pass exactly the files the analyzer actually checks: directives in
// skipped files (e.g. tests) are then neither honoured nor reported.
func CollectAllow(pass *analysis.Pass, analyzer string, files []*ast.File) *Allow {
	a := &Allow{pass: pass, name: analyzer, byLine: map[string]map[int]*allowEntry{}}
	for _, f := range files {
		for _, d := range ParseFile(pass.Fset, f, pass.ReadFile) {
			if d.Analyzer() != analyzer {
				continue
			}
			p := pass.Fset.Position(d.Pos)
			line := p.Line
			if d.OwnLine {
				line++ // a directive alone on a line excuses the next line
			}
			m := a.byLine[p.Filename]
			if m == nil {
				m = map[int]*allowEntry{}
				a.byLine[p.Filename] = m
			}
			m[line] = &allowEntry{dir: d}
		}
	}
	return a
}

// Suppressed reports whether a diagnostic at pos is excused by an allow
// directive, marking the directive as used.
func (a *Allow) Suppressed(pos token.Pos) bool {
	p := a.pass.Fset.Position(pos)
	if e := a.byLine[p.Filename][p.Line]; e != nil {
		e.used = true
		return true
	}
	return false
}

// Reportf emits a diagnostic unless an allow directive excuses it.
func (a *Allow) Reportf(pos token.Pos, format string, args ...any) {
	if a.Suppressed(pos) {
		return
	}
	a.pass.Reportf(pos, format, args...)
}

// ReportUnused reports every collected directive that suppressed
// nothing. Call it after the analyzer has visited all files.
func (a *Allow) ReportUnused() {
	var stale []*allowEntry
	for _, m := range a.byLine {
		for _, e := range m {
			if !e.used {
				stale = append(stale, e)
			}
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].dir.Pos < stale[j].dir.Pos })
	for _, e := range stale {
		a.pass.Reportf(e.dir.Pos, "unused //autovet:allow %s directive: nothing on this line to suppress", a.name)
	}
}

// Analyzer validates //autovet: directive syntax.
var Analyzer = &analysis.Analyzer{
	Name: "autovetdirective",
	Doc: "check that //autovet: directives are well-formed\n\n" +
		"A mistyped directive would silently fail to suppress (or opt in) and\n" +
		"erode trust in the suite, so unknown verbs, missing or unknown\n" +
		"analyzer names, and nilsafe markers that are not attached to a type\n" +
		"declaration are reported here.",
	Run: runDirective,
}

func runDirective(pass *analysis.Pass) (any, error) {
	known := map[string]bool{}
	for _, n := range KnownAnalyzers {
		known[n] = true
	}
	for _, f := range pass.Files {
		// Positions of comments attached to type declarations, where a
		// nilsafe marker is legitimate; bounded markers may additionally
		// sit on individual struct fields.
		typeDocs := map[token.Pos]bool{}
		fieldDocs := map[token.Pos]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				if n.Tok != token.TYPE {
					return true
				}
				markGroup(typeDocs, n.Doc)
				for _, spec := range n.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						markGroup(typeDocs, ts.Doc)
						markGroup(typeDocs, ts.Comment)
					}
				}
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					markGroup(fieldDocs, fld.Doc)
					markGroup(fieldDocs, fld.Comment)
				}
			}
			return true
		})
		for _, d := range ParseFile(pass.Fset, f, pass.ReadFile) {
			switch d.Verb {
			case "":
				pass.Reportf(d.Pos, "autovet directive is missing a verb (expected //autovet:allow or //autovet:nilsafe)")
			case VerbAllow:
				if len(d.Args) == 0 {
					pass.Reportf(d.Pos, "//autovet:allow needs an analyzer name (one of %s)", strings.Join(KnownAnalyzers, ", "))
				} else if !known[d.Args[0]] {
					pass.Reportf(d.Pos, "unknown analyzer %q in //autovet:allow (known: %s)", d.Args[0], strings.Join(KnownAnalyzers, ", "))
				}
			case VerbNilsafe:
				if !typeDocs[d.Pos] {
					pass.Reportf(d.Pos, "//autovet:nilsafe must be part of a type declaration's comment")
				}
			case VerbBounded:
				if !typeDocs[d.Pos] && !fieldDocs[d.Pos] {
					pass.Reportf(d.Pos, "//autovet:bounded must be part of a type declaration's or struct field's comment")
				} else if len(d.Args) == 0 {
					pass.Reportf(d.Pos, "//autovet:bounded needs a reason stating the bound")
				}
			default:
				pass.Reportf(d.Pos, "unknown autovet directive verb %q (expected %s, %s or %s)", d.Verb, VerbAllow, VerbBounded, VerbNilsafe)
			}
		}
	}
	return nil, nil
}

func markGroup(set map[token.Pos]bool, g *ast.CommentGroup) {
	if g == nil {
		return
	}
	for _, c := range g.List {
		set[c.Pos()] = true
	}
}

// NilsafeMarked returns the names of types in f whose declaration
// carries a //autovet:nilsafe marker.
func NilsafeMarked(f *ast.File) map[string]bool {
	marked := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			return true
		}
		declMarked := hasNilsafe(gd.Doc)
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if declMarked || hasNilsafe(ts.Doc) || hasNilsafe(ts.Comment) {
				marked[ts.Name.Name] = true
			}
		}
		return true
	})
	return marked
}

func hasNilsafe(g *ast.CommentGroup) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if d, ok := parseComment(c); ok && d.Verb == VerbNilsafe {
			return true
		}
	}
	return false
}
