// Package d is autovetdirective-analyzer testdata: malformed and
// misplaced directives are themselves diagnosed.
package d

//autovet: // want `autovet directive is missing a verb`

//autovet:frobnicate // want `unknown autovet directive verb "frobnicate"`

//autovet:allow // want `//autovet:allow needs an analyzer name`

//autovet:allow walltim // want `unknown analyzer "walltim" in //autovet:allow`

// Rec is properly marked: no diagnostic.
//
//autovet:nilsafe
type Rec struct{}

// Valid allow directives are not the directive analyzer's business
// (each analyzer reports its own stale allows).
func ok() {
	_ = 1 //autovet:allow walltime justified elsewhere
}

// Buf is properly marked bounded: no diagnostic.
//
//autovet:bounded capacity fixed at construction
type Buf struct {
	// items is also individually markable.
	//
	//autovet:bounded ring-capped by cap
	items []int
	cap   int
}

//autovet:bounded // want `//autovet:bounded needs a reason stating the bound`
type Unreasoned struct{}

//autovet:bounded it is fine really // want `//autovet:bounded must be part of a type declaration's or struct field's comment`
var boundedMisplaced int

//autovet:nilsafe // want `//autovet:nilsafe must be part of a type declaration's comment`
var misplaced int

func alsoMisplaced() {
	//autovet:nilsafe // want `//autovet:nilsafe must be part of a type declaration's comment`
	_ = misplaced
}
