package directive_test

import (
	"go/parser"
	"go/token"
	"testing"

	"autorte/internal/analysis/checktest"
	"autorte/internal/analysis/directive"
)

func TestDirectiveAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", directive.Analyzer, "d")
}

const src = `package p

func f() {
	_ = 1 //autovet:allow walltime reason words here
	//autovet:allow kindswitch
	_ = 2
	_ = 3 //autovet:allow nilsafe // want "stale"
	//autovet:nilsafe
	_ = 4 // not a directive line
}
`

func parse(t *testing.T) ([]directive.Directive, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	read := func(string) ([]byte, error) { return []byte(src), nil }
	return directive.ParseFile(fset, f, read), fset
}

func TestParseFile(t *testing.T) {
	dirs, _ := parse(t)
	if len(dirs) != 4 {
		t.Fatalf("got %d directives, want 4", len(dirs))
	}

	d := dirs[0] // trailing allow with a free-form reason
	if d.Verb != directive.VerbAllow || d.Analyzer() != "walltime" {
		t.Errorf("dirs[0]: verb=%q analyzer=%q, want allow/walltime", d.Verb, d.Analyzer())
	}
	if d.OwnLine {
		t.Errorf("dirs[0]: trailing directive reported as own-line")
	}
	if len(d.Args) != 4 { // walltime + three reason words
		t.Errorf("dirs[0]: args = %q, want 4 fields", d.Args)
	}

	d = dirs[1] // own-line allow
	if d.Analyzer() != "kindswitch" || !d.OwnLine {
		t.Errorf("dirs[1]: analyzer=%q ownline=%v, want kindswitch/true", d.Analyzer(), d.OwnLine)
	}

	d = dirs[2] // nested "// want" comment must be stripped from args
	if d.Analyzer() != "nilsafe" || len(d.Args) != 1 {
		t.Errorf("dirs[2]: analyzer=%q args=%q, want nilsafe with no trailing want", d.Analyzer(), d.Args)
	}

	d = dirs[3]
	if d.Verb != directive.VerbNilsafe || !d.OwnLine {
		t.Errorf("dirs[3]: verb=%q ownline=%v, want nilsafe/true", d.Verb, d.OwnLine)
	}
}

// TestParseFileNoSource checks the fallback when source is unreadable:
// directives still parse, only OwnLine detection degrades.
func TestParseFileNoSource(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	read := func(string) ([]byte, error) { return nil, errNoSource }
	dirs := directive.ParseFile(fset, f, read)
	if len(dirs) != 4 {
		t.Fatalf("got %d directives, want 4", len(dirs))
	}
	for _, d := range dirs {
		if d.OwnLine {
			t.Errorf("OwnLine should stay false when source is unreadable")
		}
	}
}

type noSourceError struct{}

func (noSourceError) Error() string { return "no source" }

var errNoSource = noSourceError{}
