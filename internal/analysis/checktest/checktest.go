// Package checktest is a minimal analysistest replacement: it loads a
// package from an analyzer's testdata/src tree, type-checks it (local
// testdata imports are resolved from sibling directories, everything
// else from the standard library source), runs the analyzer and its
// requirements, and compares the diagnostics against expectations
// written as trailing comments on the offending lines:
//
//	time.Now() // want "wall-clock"
//
// Each string after "want" is a regular expression that must match a
// diagnostic reported on that line; diagnostics with no matching
// expectation, and expectations with no matching diagnostic, both fail
// the test. (golang.org/x/tools/go/analysis/analysistest itself needs
// go/packages and friends, which this repo deliberately does not
// vendor; this harness covers the subset the autovet suite needs.)
package checktest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<pkg> for each named package and applies a to
// it, checking diagnostics against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		l := &loader{
			testdata: testdata,
			fset:     token.NewFileSet(),
			loaded:   map[string]*loadedPkg{},
		}
		lp, err := l.load(pkg)
		if err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
		diags := runAnalyzer(t, a, l.fset, lp)
		checkExpectations(t, l.fset, lp.files, diags)
	}
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	testdata string
	fset     *token.FileSet
	loaded   map[string]*loadedPkg
	std      types.Importer
}

// Import resolves an import path: testdata sibling directories win,
// everything else falls back to the standard library source importer
// (which works without pre-compiled export data).
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.testdata, "src", path); dirExists(dir) {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	if l.std == nil {
		l.std = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := l.loaded[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.testdata, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	l.loaded[path] = lp
	return lp, nil
}

// runAnalyzer executes a's requirements then a itself, collecting a's
// diagnostics. Facts are not supported (no autovet analyzer uses them).
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, lp *loadedPkg) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	results := map[*analysis.Analyzer]any{}
	var exec func(a *analysis.Analyzer, collect bool)
	exec = func(a *analysis.Analyzer, collect bool) {
		if _, done := results[a]; done && !collect {
			return
		}
		for _, req := range a.Requires {
			exec(req, false)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      lp.files,
			Pkg:        lp.pkg,
			TypesInfo:  lp.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
		results[a] = res
	}
	exec(a, true)
	return diags
}

var wantRE = regexp.MustCompile(`//\s*want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)
var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

type expectation struct {
	re  *regexp.Regexp
	met bool
}

// checkExpectations matches diagnostics against // want comments by
// (file, line). Unmatched diagnostics and unmet expectations both fail.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					pat := q[1 : len(q)-1]
					if q[0] == '"' {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.met && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.met {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}
