// Package checktest is a minimal analysistest replacement: it loads a
// package from an analyzer's testdata/src tree, type-checks it (local
// testdata imports are resolved from sibling directories, everything
// else from the standard library source), runs the analyzer and its
// requirements, and compares the diagnostics against expectations
// written as trailing comments on the offending lines:
//
//	time.Now() // want "wall-clock"
//
// Each string after "want" is a regular expression that must match a
// diagnostic reported on that line; diagnostics with no matching
// expectation, and expectations with no matching diagnostic, both fail
// the test. (golang.org/x/tools/go/analysis/analysistest itself needs
// go/packages and friends, which this repo deliberately does not
// vendor; this harness covers the subset the autovet suite needs.)
//
// Fact-based multi-package analyzers are supported: when the named
// package imports sibling testdata packages, the analyzer runs over
// every testdata-local package in dependency order with an in-memory
// fact store shared between the passes, so facts exported while
// analyzing a dependency are importable while analyzing its consumers
// — the same vertical dataflow the unitchecker driver provides via
// serialized fact files. Diagnostics are checked against // want
// comments in every testdata-local package loaded, dependencies
// included.
package checktest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<pkg> for each named package and applies a to
// it (and, for facts, to its testdata-local dependencies), checking
// diagnostics against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		l := &loader{
			testdata: testdata,
			fset:     token.NewFileSet(),
			loaded:   map[string]*loadedPkg{},
		}
		if _, err := l.load(pkg); err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
		// l.order lists the testdata-local packages in dependency order
		// (a package is appended only after everything it imports), so a
		// single forward sweep gives every pass the facts its imports
		// exported — the in-memory equivalent of unitchecker's fact files.
		facts := newFactStore()
		var diags []analysis.Diagnostic
		var files []*ast.File
		for _, lp := range l.order {
			diags = append(diags, runAnalyzer(t, a, l.fset, lp, facts)...)
			files = append(files, lp.files...)
		}
		checkExpectations(t, l.fset, files, diags)
	}
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	testdata string
	fset     *token.FileSet
	loaded   map[string]*loadedPkg
	order    []*loadedPkg // completion order: dependencies first
	std      types.Importer
}

// Import resolves an import path: testdata sibling directories win,
// everything else falls back to the standard library source importer
// (which works without pre-compiled export data).
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.testdata, "src", path); dirExists(dir) {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	if l.std == nil {
		l.std = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := l.loaded[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.testdata, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	l.loaded[path] = lp
	// Check resolves imports before returning, so appending here yields
	// dependency order.
	l.order = append(l.order, lp)
	return lp, nil
}

// factStore is an in-memory substitute for the driver's serialized fact
// files: per-analyzer object and package facts shared across the passes
// of one Run call. Facts are stored as copies, matching the real
// drivers' encode/decode round trip closely enough that an analyzer
// cannot accidentally depend on sharing mutable state through a fact.
type factStore struct {
	obj map[*analysis.Analyzer]map[types.Object][]analysis.Fact
	pkg map[*analysis.Analyzer]map[*types.Package][]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: map[*analysis.Analyzer]map[types.Object][]analysis.Fact{},
		pkg: map[*analysis.Analyzer]map[*types.Package][]analysis.Fact{},
	}
}

// copyFact clones f so the store and the caller cannot alias.
func copyFact(f analysis.Fact) analysis.Fact {
	v := reflect.ValueOf(f)
	c := reflect.New(v.Type().Elem())
	c.Elem().Set(v.Elem())
	return c.Interface().(analysis.Fact)
}

// set replaces a same-typed fact in list or appends f.
func setFact(list []analysis.Fact, f analysis.Fact) []analysis.Fact {
	for i, g := range list {
		if reflect.TypeOf(g) == reflect.TypeOf(f) {
			list[i] = f
			return list
		}
	}
	return append(list, f)
}

// get copies the same-typed fact from list into ptr.
func getFact(list []analysis.Fact, ptr analysis.Fact) bool {
	for _, g := range list {
		if reflect.TypeOf(g) == reflect.TypeOf(ptr) {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(g).Elem())
			return true
		}
	}
	return false
}

func (s *factStore) exportObject(a *analysis.Analyzer, obj types.Object, f analysis.Fact) {
	m := s.obj[a]
	if m == nil {
		m = map[types.Object][]analysis.Fact{}
		s.obj[a] = m
	}
	m[obj] = setFact(m[obj], copyFact(f))
}

func (s *factStore) importObject(a *analysis.Analyzer, obj types.Object, ptr analysis.Fact) bool {
	return getFact(s.obj[a][obj], ptr)
}

func (s *factStore) exportPackage(a *analysis.Analyzer, pkg *types.Package, f analysis.Fact) {
	m := s.pkg[a]
	if m == nil {
		m = map[*types.Package][]analysis.Fact{}
		s.pkg[a] = m
	}
	m[pkg] = setFact(m[pkg], copyFact(f))
}

func (s *factStore) importPackage(a *analysis.Analyzer, pkg *types.Package, ptr analysis.Fact) bool {
	return getFact(s.pkg[a][pkg], ptr)
}

func (s *factStore) allObjects(a *analysis.Analyzer) []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for obj, list := range s.obj[a] {
		for _, f := range list {
			out = append(out, analysis.ObjectFact{Object: obj, Fact: copyFact(f)})
		}
	}
	return out
}

func (s *factStore) allPackages(a *analysis.Analyzer) []analysis.PackageFact {
	var out []analysis.PackageFact
	for pkg, list := range s.pkg[a] {
		for _, f := range list {
			out = append(out, analysis.PackageFact{Package: pkg, Fact: copyFact(f)})
		}
	}
	return out
}

// runAnalyzer executes a's requirements then a itself on one package,
// collecting a's diagnostics. Object and package facts live in facts,
// shared across packages, so fact-based analyzers (and fact-exporting
// requirements like ctrlflow) see their imports' facts.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, lp *loadedPkg, facts *factStore) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	results := map[*analysis.Analyzer]any{}
	var exec func(a *analysis.Analyzer, collect bool)
	exec = func(a *analysis.Analyzer, collect bool) {
		if _, done := results[a]; done && !collect {
			return
		}
		for _, req := range a.Requires {
			exec(req, false)
		}
		an := a
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      lp.files,
			Pkg:        lp.pkg,
			TypesInfo:  lp.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
			ImportObjectFact: func(obj types.Object, f analysis.Fact) bool {
				return facts.importObject(an, obj, f)
			},
			ExportObjectFact: func(obj types.Object, f analysis.Fact) {
				facts.exportObject(an, obj, f)
			},
			ImportPackageFact: func(pkg *types.Package, f analysis.Fact) bool {
				return facts.importPackage(an, pkg, f)
			},
			ExportPackageFact: func(f analysis.Fact) {
				facts.exportPackage(an, lp.pkg, f)
			},
			AllObjectFacts:  func() []analysis.ObjectFact { return facts.allObjects(an) },
			AllPackageFacts: func() []analysis.PackageFact { return facts.allPackages(an) },
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
		results[a] = res
	}
	exec(a, true)
	return diags
}

var wantRE = regexp.MustCompile(`//\s*want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)
var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

type expectation struct {
	re  *regexp.Regexp
	met bool
}

// checkExpectations matches diagnostics against // want comments by
// (file, line). Unmatched diagnostics and unmet expectations both fail.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					pat := q[1 : len(q)-1]
					if q[0] == '"' {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.met && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.met {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}
