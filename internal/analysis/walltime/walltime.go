// Package walltime defines an analyzer that forbids wall-clock time in
// the platform's virtual-time packages.
//
// The simulated platform is deterministic because every timestamp in it
// derives from sim.Time, the virtual clock advanced by the simulation
// kernel. A single call to time.Now in a scheduling or bus package
// silently couples results to host speed and destroys replayability —
// exactly the class of defect the paper argues must be excluded by
// construction rather than convention. Code in a virtual-time package
// that genuinely measures the host (instrumentation, benchmarks of the
// analyses themselves) must say so with //autovet:allow walltime.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"autorte/internal/analysis/directive"
)

// forbidden are the time-package functions that read or react to the
// host's clock. Types and pure-arithmetic helpers (time.Duration,
// time.Unix) are fine: only observing the wall clock is a violation.
var forbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// defaultPackages are the virtual-time packages. The first group is the
// simulated platform proper (only sim.Time may flow there); the second
// is host-side tooling that lives close enough to the simulation that
// every wall-clock read must carry an explicit justification.
const defaultPackages = "sim,sched,can,flexray,rte,vfb,osek,ttp,ttethernet,noc,e2e,fault,trace,experiments,obs,par,core"

var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time in virtual-time packages\n\n" +
		"Simulation determinism requires every timestamp to derive from\n" +
		"sim.Time. Reads of the host clock (time.Now, time.Since, time.Sleep,\n" +
		"timers, tickers) in the listed packages are reported unless excused\n" +
		"with //autovet:allow walltime and a reason. Test files are exempt.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packagesFlag = defaultPackages

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages",
		defaultPackages, "comma-separated package names treated as virtual-time")
}

func virtualTime(pkg *types.Package) bool {
	for _, name := range strings.Split(packagesFlag, ",") {
		if pkg.Name() == strings.TrimSpace(name) {
			return true
		}
	}
	return false
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

func run(pass *analysis.Pass) (any, error) {
	if !virtualTime(pass.Pkg) {
		return nil, nil
	}
	var files []*ast.File
	for _, f := range pass.Files {
		if !isTestFile(pass, f) {
			files = append(files, f)
		}
	}
	allow := directive.CollectAllow(pass, "walltime", files)
	skip := map[*ast.File]bool{}
	for _, f := range pass.Files {
		skip[f] = isTestFile(pass, f)
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.File)(nil), (*ast.SelectorExpr)(nil)}
	var inSkipped bool
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if f, ok := n.(*ast.File); ok {
			inSkipped = skip[f]
			return
		}
		if inSkipped {
			return
		}
		sel := n.(*ast.SelectorExpr)
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !forbidden[obj.Name()] {
			return
		}
		allow.Reportf(sel.Pos(),
			"time.%s is wall-clock: virtual-time package %q must derive time from sim.Time (or justify with //autovet:allow walltime)",
			obj.Name(), pass.Pkg.Name())
	})
	allow.ReportUnused()
	return nil, nil
}
