package walltime_test

import (
	"testing"

	"autorte/internal/analysis/checktest"
	"autorte/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	checktest.Run(t, "testdata", walltime.Analyzer, "sim", "app")
}
