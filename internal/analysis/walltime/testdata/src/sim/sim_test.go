package sim

import "time"

// Test files are exempt: benchmarks and timeouts legitimately read the
// host clock.
func helperForTests() time.Time {
	return time.Now()
}
