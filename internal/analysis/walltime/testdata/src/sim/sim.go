// Package sim is walltime-analyzer testdata: its name marks it as a
// virtual-time package, so wall-clock reads must be flagged.
package sim

import "time"

// Time is the virtual clock (stand-in for the real sim.Time).
type Time int64

func bad() {
	_ = time.Now()                  // want `time.Now is wall-clock: virtual-time package "sim"`
	start := time.Now()             // want `time.Now is wall-clock`
	_ = time.Since(start)           // want `time.Since is wall-clock`
	time.Sleep(time.Millisecond)    // want `time.Sleep is wall-clock`
	_ = time.After(time.Second)     // want `time.After is wall-clock`
	t := time.NewTimer(time.Second) // want `time.NewTimer is wall-clock`
	_ = t
	f := time.Now // want `time.Now is wall-clock`
	_ = f
}

func ok() {
	var d time.Duration = 3 * time.Millisecond // durations are arithmetic, not clock reads
	_ = d
	_ = time.Unix(0, 42)
	var vt Time = 100
	_ = vt
}

func allowed() {
	_ = time.Now() //autovet:allow walltime measures host time deliberately
	//autovet:allow walltime the next line is host-side instrumentation
	_ = time.Since(time.Unix(0, 0))
}

func stale() {
	_ = 1 + 1 //autovet:allow walltime // want `unused //autovet:allow walltime directive`
	//autovet:allow walltime // want `unused //autovet:allow walltime directive`
	_ = time.Unix(0, 0)
}
