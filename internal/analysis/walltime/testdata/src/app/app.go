// Package app is not a virtual-time package, so wall-clock use is fine.
package app

import "time"

func fine() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
