// Package core exercises the detrange analyzer: order-sensitive map
// iteration is diagnosed, order-insensitive iteration is not.
package core

import "sort"

type counter struct{}

func (counter) Inc()             {}
func (counter) Add(d float64)    {}
func (counter) Set(v float64)    {}
func emit(name string, v int)    {}
func lookup(name string) counter { return counter{} }

// sortedKeys is the canonical compliant idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedConvertedKeys collects the key through a type conversion before
// sorting — still the compliant idiom.
func sortedConvertedKeys(m map[uint8]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	return keys
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic: the loop body appends to the ordered result keys`
		keys = append(keys, k)
	}
	return keys
}

func appendsValues(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want `appends to the ordered result vals`
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

func emits(m map[string]int) {
	for k, v := range m { // want `calls emit with loop-derived data in iteration order`
		emit(k, v)
	}
}

func sends(m map[string]int, ch chan int) {
	for range m { // want `sends on a channel`
		ch <- 1
	}
}

func counts(m map[string]int) (n int, sum int) {
	for _, v := range m { // order-insensitive: integer accumulation
		n++
		sum += v
	}
	return
}

func floats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates non-integer sum`
		sum += v
	}
	return sum
}

func keyed(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m { // order-insensitive: keyed writes commute
		out[k] = v * 2
	}
	return out
}

func extremum(m map[string]int) (string, int) {
	best := -1
	var bestKey string
	for k, v := range m { // order-insensitive: guarded extremum
		if v > best {
			best = v
			bestKey = k
		}
	}
	return bestKey, best
}

func overwrites(m map[string]int) int {
	var last int
	for _, v := range m { // want `overwrites last in iteration order`
		last = v
	}
	return last
}

func returnsFirst(m map[string]int) int {
	for _, v := range m { // want `returns a value that depends on which element iteration reached first`
		return v
	}
	return 0
}

func deletes(m, seen map[string]int) {
	for k := range m { // order-insensitive: deletes commute
		delete(seen, k)
	}
}

func meters(m map[string]int) {
	for k := range m { // order-insensitive: counter increments commute
		lookup(k).Inc()
		lookup(k).Add(1)
	}
}

func gauges(m map[string]float64) {
	for k, v := range m { // want `calls Set with loop-derived data in iteration order`
		lookup(k).Set(v)
	}
}

func excused(m map[string]int) []int {
	var vals []int
	//autovet:allow detrange test fixture tolerates any order
	for _, v := range m {
		vals = append(vals, v)
	}
	return vals
}
