package detrange_test

import (
	"testing"

	"autorte/internal/analysis/checktest"
	"autorte/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	checktest.Run(t, "testdata", detrange.Analyzer, "core")
}
