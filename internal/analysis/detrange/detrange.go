// Package detrange defines an analyzer that forbids order-sensitive
// iteration over maps in the platform's deterministic packages.
//
// Go randomizes map iteration order per run. The platform's core
// guarantees — identical verification results from core.Incremental and
// the full path, fault-campaign results independent of worker count,
// byte-identical exports and diagnostic bundles — all assume that every
// observable sequence is a pure function of the model and the virtual
// clock. A single `for k := range m` that emits, appends to an ordered
// result, or overwrites shared state in loop order silently breaks
// replayability in a way no test reliably catches (the iteration order
// is random, not adversarial). The analyzer requires such loops to
// sort their keys first; loops whose bodies are order-insensitive
// (counting, keyed writes into another map, commutative integer
// accumulation, guarded extremum tracking) are left alone.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	platform "autorte/internal/analysis"
	"autorte/internal/analysis/directive"
)

// defaultPackages are the determinism-bearing packages: the virtual-time
// platform (walltime's list) plus the analysis/DSE layers whose results
// must be reproducible bit-for-bit.
const defaultPackages = "sim,sched,can,flexray,rte,vfb,osek,ttp,ttethernet,noc,e2e,fault,trace,experiments,obs,par,core,deploy,health,e2eprot,contract,taskset,workload,overlay,protection"

var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "forbid order-sensitive map iteration in deterministic packages\n\n" +
		"Map iteration order is randomized per run, so a range over a map\n" +
		"whose body emits, appends to an ordered result or overwrites shared\n" +
		"state must sort its keys first — otherwise incremental verification,\n" +
		"campaign worker-count independence and golden exports all lose their\n" +
		"determinism guarantee. Order-insensitive bodies (counting, keyed map\n" +
		"writes, integer accumulation, guarded extremum tracking, collecting\n" +
		"keys that are sorted afterwards) are fine. Test files are exempt;\n" +
		"intentional order-dependence needs //autovet:allow detrange.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packagesFlag = defaultPackages

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages",
		defaultPackages, "comma-separated package names whose map iterations must be order-insensitive")
}

// commutative are callee names whose repeated statement-level calls are
// order-independent (metric increments, waitgroup bookkeeping).
var commutative = map[string]bool{"Inc": true, "Add": true, "Observe": true, "Done": true}

func run(pass *analysis.Pass) (any, error) {
	if !platform.PkgIn(pass.Pkg, packagesFlag) {
		return nil, nil
	}
	var files []*ast.File
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	allow := directive.CollectAllow(pass, "detrange", files)
	skip := map[*ast.File]bool{}
	for _, f := range pass.Files {
		skip[f] = strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	// Walk function by function so the sorted-afterwards check can see
	// the whole enclosing body.
	nodeFilter := []ast.Node{(*ast.File)(nil), (*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	var inSkipped bool
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			inSkipped = skip[n]
		case *ast.FuncDecl:
			if !inSkipped && n.Body != nil {
				checkFunc(pass, allow, n.Body)
			}
		case *ast.FuncLit:
			if !inSkipped {
				checkFunc(pass, allow, n.Body)
			}
		}
	})
	allow.ReportUnused()
	return nil, nil
}

// checkFunc examines every map-range directly inside body (nested
// function literals are visited as their own functions).
func checkFunc(pass *analysis.Pass, allow *directive.Allow, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		c := &loopCheck{pass: pass, rng: rs, fnBody: body}
		c.derive()
		if reason := c.check(rs.Body, false); reason != "" {
			allow.Reportf(rs.Pos(),
				"map iteration order is nondeterministic: %s; iterate sorted keys instead (or justify with //autovet:allow detrange)",
				reason)
		}
		return true
	})
}

type loopCheck struct {
	pass    *analysis.Pass
	rng     *ast.RangeStmt
	fnBody  *ast.BlockStmt
	derived map[types.Object]bool
	keyObj  types.Object
}

// derive seeds the loop variables and propagates through assignments in
// the body to a fixpoint, giving an ident-level view of which values
// depend on the iteration element.
func (c *loopCheck) derive() {
	c.derived = map[types.Object]bool{}
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				c.derived[obj] = true
			}
		}
	}
	if c.rng.Key != nil {
		add(c.rng.Key)
		if id, ok := c.rng.Key.(*ast.Ident); ok {
			c.keyObj = c.pass.TypesInfo.ObjectOf(id)
		}
	}
	if c.rng.Value != nil {
		add(c.rng.Value)
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(c.rng.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else {
						rhs = n.Rhs[0]
					}
					if c.mentionsDerived(rhs) {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
							if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil && !c.derived[obj] {
								c.derived[obj] = true
								changed = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if c.mentionsDerived(v) {
						for _, id := range n.Names {
							if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil && !c.derived[obj] {
								c.derived[obj] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
}

func (c *loopCheck) mentionsDerived(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil && c.derived[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// outer reports whether the identifier's object is declared outside the
// range statement (so writes to it survive the loop).
func (c *loopCheck) outer(e ast.Expr) (types.Object, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := c.pass.TypesInfo.ObjectOf(id)
	if obj == nil || obj.Pos() == token.NoPos {
		return nil, false
	}
	inside := c.rng.Pos() <= obj.Pos() && obj.Pos() <= c.rng.End()
	return obj, !inside
}

// check walks stmts looking for the first order-sensitive operation.
// guarded is true inside an if whose condition is a comparison — the
// extremum-tracking idiom (if v > best { best, bestK = v, k }), which is
// deterministic in the value it keeps.
func (c *loopCheck) check(stmt ast.Stmt, guarded bool) string {
	switch s := stmt.(type) {
	case nil:
		return ""
	case *ast.BlockStmt:
		for _, t := range s.List {
			if r := c.check(t, guarded); r != "" {
				return r
			}
		}
	case *ast.IfStmt:
		g := guarded || hasComparison(s.Cond)
		if r := c.check(s.Init, guarded); r != "" {
			return r
		}
		if r := c.check(s.Body, g); r != "" {
			return r
		}
		return c.check(s.Else, g)
	case *ast.ForStmt:
		return c.check(s.Body, guarded)
	case *ast.RangeStmt:
		return c.check(s.Body, guarded)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			for _, t := range cc.(*ast.CaseClause).Body {
				if r := c.check(t, guarded); r != "" {
					return r
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			for _, t := range cc.(*ast.CaseClause).Body {
				if r := c.check(t, guarded); r != "" {
					return r
				}
			}
		}
	case *ast.LabeledStmt:
		return c.check(s.Stmt, guarded)
	case *ast.SendStmt:
		return "the loop body sends on a channel"
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if c.mentionsDerived(res) {
				return "the loop body returns a value that depends on which element iteration reached first"
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if r := c.checkCall(call); r != "" {
				return r
			}
		}
	case *ast.GoStmt:
		if r := c.checkCall(s.Call); r != "" {
			return r
		}
	case *ast.DeferStmt:
		if r := c.checkCall(s.Call); r != "" {
			return r
		}
	case *ast.AssignStmt:
		return c.checkAssign(s, guarded)
	}
	return ""
}

// checkCall flags statement-level calls that carry loop-derived data to
// a side effect (emitting, recording, printing) in iteration order.
func (c *loopCheck) checkCall(call *ast.CallExpr) string {
	switch callee := typeutil.Callee(c.pass.TypesInfo, call).(type) {
	case *types.Builtin:
		if callee.Name() == "delete" {
			return "" // map deletes commute
		}
	case *types.Func:
		if commutative[callee.Name()] {
			return ""
		}
	}
	derived := false
	for _, arg := range call.Args {
		if c.mentionsDerived(arg) {
			derived = true
			break
		}
	}
	// A side effect selected through loop-derived state (subs[k].Notify())
	// is order-sensitive even with no arguments.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && c.mentionsDerived(sel.X) {
		derived = true
	}
	if !derived {
		// Repeating an element-independent effect len(m) times is
		// order-insensitive.
		return ""
	}
	return "the loop body calls " + callName(call) + " with loop-derived data in iteration order"
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return "a function"
}

// checkAssign flags order-sensitive writes that survive the loop.
func (c *loopCheck) checkAssign(as *ast.AssignStmt, guarded bool) string {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else {
			rhs = as.Rhs[0]
		}
		// append into an outer slice
		if call, ok := rhs.(*ast.CallExpr); ok && as.Tok == token.ASSIGN {
			if bi, ok := typeutil.Callee(c.pass.TypesInfo, call).(*types.Builtin); ok && bi.Name() == "append" {
				obj, outer := c.outer(lhs)
				if !outer {
					continue
				}
				// Collecting bare keys into a slice that the function sorts
				// afterwards is the canonical compliant idiom.
				if c.collectsSortedKeys(call, obj) {
					continue
				}
				return "the loop body appends to the ordered result " + obj.Name()
			}
		}
		switch lhs := lhs.(type) {
		case *ast.Ident:
			obj, outer := c.outer(lhs)
			if !outer {
				continue
			}
			switch as.Tok {
			case token.ASSIGN:
				if c.mentionsDerived(rhs) && !guarded {
					return "the loop body overwrites " + obj.Name() + " in iteration order (last writer wins)"
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
				// Integer accumulation commutes; float addition does not
				// associate, string concatenation does not commute.
				if !isInteger(c.pass.TypesInfo.TypeOf(lhs)) && c.mentionsDerived(rhs) {
					return "the loop body accumulates non-integer " + obj.Name() + " in iteration order"
				}
			default:
				if c.mentionsDerived(rhs) && !guarded {
					return "the loop body updates " + obj.Name() + " in iteration order"
				}
			}
		case *ast.IndexExpr:
			// Keyed writes into a map (or loop-keyed slice positions)
			// commute; positional fills of an outer slice do not.
			t := c.pass.TypesInfo.TypeOf(lhs.X)
			if t == nil {
				continue
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				continue
			}
			if c.mentionsDerived(lhs.Index) {
				continue
			}
			if _, outerBase := c.outer(lhs.X); outerBase && c.mentionsDerived(rhs) {
				return "the loop body fills ordered positions of " + exprName(lhs.X) + " in iteration order"
			}
		}
	}
	return ""
}

func exprName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "a slice"
}

// collectsSortedKeys reports the keys-then-sort idiom: the append adds
// exactly the loop key, and the enclosing function sorts that slice
// somewhere after the loop.
func (c *loopCheck) collectsSortedKeys(call *ast.CallExpr, slice types.Object) bool {
	if len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	arg := call.Args[1]
	// Unwrap a pure type conversion of the key (append(ks, int(k))):
	// converting the key before collecting it preserves the idiom.
	if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if tv, ok := c.pass.TypesInfo.Types[conv.Fun]; ok && tv.IsType() {
			arg = conv.Args[0]
		}
	}
	id, ok := arg.(*ast.Ident)
	if !ok || c.keyObj == nil || c.pass.TypesInfo.ObjectOf(id) != c.keyObj {
		return false
	}
	sorted := false
	ast.Inspect(c.fnBody, func(n ast.Node) bool {
		sc, ok := n.(*ast.CallExpr)
		if !ok || sorted {
			return !sorted
		}
		fn, ok := typeutil.Callee(c.pass.TypesInfo, sc).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if len(sc.Args) == 0 {
			return true
		}
		if arg, ok := sc.Args[0].(*ast.Ident); ok && c.pass.TypesInfo.ObjectOf(arg) == slice {
			sorted = true
		}
		return !sorted
	})
	return sorted
}

func hasComparison(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				found = true
			}
		}
		return !found
	})
	return found
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
