// Package baregoroutine defines an analyzer that forbids raw go
// statements outside the bounded worker pool.
//
// All fan-out in this platform goes through internal/par, whose pool
// caps concurrency, records queue-wait and busy metrics, and converts
// panics into errors. A bare "go f()" anywhere else escapes those
// bounds: it can oversubscribe the host during a parallel verification
// sweep, and a panic in it kills the process instead of failing one
// work item. Only internal/par itself and test files may spawn
// goroutines directly; anything else needs //autovet:allow
// baregoroutine and a reason.
package baregoroutine

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"autorte/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "baregoroutine",
	Doc: "forbid raw go statements outside internal/par and tests\n\n" +
		"Fan-out must use internal/par's bounded pool so concurrency stays\n" +
		"capped, instrumented and panic-safe. Suppress a justified exception\n" +
		"with //autovet:allow baregoroutine.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "par" || strings.HasSuffix(pass.Pkg.Path(), "internal/par") {
		return nil, nil
	}
	isTest := func(f *ast.File) bool {
		return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
	}
	var files []*ast.File
	skip := map[*ast.File]bool{}
	for _, f := range pass.Files {
		skip[f] = isTest(f)
		if !skip[f] {
			files = append(files, f)
		}
	}
	allow := directive.CollectAllow(pass, "baregoroutine", files)

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	var inSkipped bool
	ins.Preorder([]ast.Node{(*ast.File)(nil), (*ast.GoStmt)(nil)}, func(n ast.Node) {
		if f, ok := n.(*ast.File); ok {
			inSkipped = skip[f]
			return
		}
		if inSkipped {
			return
		}
		allow.Reportf(n.Pos(),
			"bare goroutine: fan-out must go through internal/par's bounded pool (or justify with //autovet:allow baregoroutine)")
	})
	allow.ReportUnused()
	return nil, nil
}
