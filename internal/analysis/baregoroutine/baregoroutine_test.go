package baregoroutine_test

import (
	"testing"

	"autorte/internal/analysis/baregoroutine"
	"autorte/internal/analysis/checktest"
)

func TestBareGoroutine(t *testing.T) {
	checktest.Run(t, "testdata", baregoroutine.Analyzer, "b", "par")
}
