// Package par is exempt: it is the bounded pool implementation itself.
package par

func spawn(f func()) {
	go f()
}
