package b

// Test files may spawn goroutines freely.
func spawnInTest() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}
