// Package b is baregoroutine-analyzer testdata.
package b

import "sync"

func fanOut(work []func()) {
	for _, w := range work {
		go w() // want `bare goroutine: fan-out must go through internal/par`
	}
}

func background() {
	go func() { // want `bare goroutine`
		println("worker")
	}()
}

func justified(stop chan struct{}) {
	go func() { //autovet:allow baregoroutine long-lived drain loop, not fan-out
		<-stop
	}()
}

func boundedAlternative(wg *sync.WaitGroup) {
	wg.Wait() // using sync primitives without spawning is fine
}

func stale() {
	println("clean") //autovet:allow baregoroutine // want `unused //autovet:allow baregoroutine directive`
}
