package lockorder_test

import (
	"testing"

	"autorte/internal/analysis/checktest"
	"autorte/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	checktest.Run(t, "testdata", lockorder.Analyzer, "obs")
}
