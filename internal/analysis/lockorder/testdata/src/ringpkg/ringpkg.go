// Package ringpkg is an out-of-scope provider: lockorder exports facts
// for it (Reset acquires a lock) but reports nothing here, and the
// mutex field inside Ring is what makes calls to its exported methods
// suspicious from a critical section elsewhere.
package ringpkg

import "sync"

type Ring struct {
	mu  sync.Mutex
	buf []int
}

func (r *Ring) Push(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, v)
}

var global Ring

// Reset locks internally; the analyzer fact-marks it as lock-acquiring.
func Reset() {
	global.mu.Lock()
	defer global.mu.Unlock()
	global.buf = nil
}
