// Package obs exercises the lockorder analyzer: foreign calls and
// channel sends inside critical sections are diagnosed, released-lock
// and caller-holds-mu patterns are not.
package obs

import (
	"sync"

	"ringpkg"
)

type Log struct {
	mu   sync.Mutex
	recs []int
	subs []chan int
	ring *ringpkg.Ring
}

func (l *Log) push(v int) { l.recs = append(l.recs, v) }

func (l *Log) Record(v int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.push(v) // ok: unexported caller-holds-mu helper
}

func (l *Log) Emit(v int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, v)
	for _, ch := range l.subs {
		select {
		case ch <- v: // want `channel send while holding l\.mu`
		default:
		}
	}
}

func (l *Log) EmitUnlocked(v int) {
	l.mu.Lock()
	l.recs = append(l.recs, v)
	subs := append([]chan int(nil), l.subs...)
	l.mu.Unlock()
	for _, ch := range subs {
		ch <- v // ok: lock released before the hand-off
	}
}

func (l *Log) Mirror(v int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring.Push(v) // want `call to Ring\.Push while holding l\.mu`
}

func (l *Log) MirrorAfter(v int) {
	l.mu.Lock()
	l.recs = append(l.recs, v)
	l.mu.Unlock()
	l.ring.Push(v) // ok: lock released
}

func (l *Log) Coalesce(v int, merge func(prev *int, v int) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.recs {
		if merge(&l.recs[i], v) { // want `call through a func value while holding l\.mu`
			return
		}
	}
}

func (l *Log) ResetAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = nil
	ringpkg.Reset() // want `call to Reset while holding l\.mu acquires a lock`
}

func (l *Log) ResetAfter() {
	l.mu.Lock()
	l.recs = nil
	l.mu.Unlock()
	ringpkg.Reset() // ok: lock released
}

func (l *Log) Excused(v int, merge func(prev *int, v int) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.recs {
		if merge(&l.recs[i], v) { //autovet:allow lockorder merge contract: pure coalescing, no locking
			return
		}
	}
}
