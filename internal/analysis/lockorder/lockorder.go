// Package lockorder defines an analyzer for the observability layer's
// lock-holding discipline: a Ring/Log/Flight mutex may not be held
// across an operation that can acquire another lock or hand control to
// arbitrary code.
//
// The flight recorder sits on the platform's hot path, so its locks are
// meant to guard a few slice writes and nothing else. Holding one while
// calling an exported method of another mutex-bearing type nests locks
// in whatever order the call sites happen to choose — the classic
// deadlock-by-inversion — and holding one across a callback or a
// channel send lets user code re-enter the very structure that is
// locked. The analyzer reconstructs critical sections from
// mu.Lock()/mu.Unlock() pairs (a deferred unlock extends the section to
// the end of the function) and reports, inside each section:
//
//   - calls to exported methods of types that contain a sync.Mutex or
//     sync.RWMutex (they may lock it),
//   - calls to exported functions the analyzer has fact-marked as
//     acquiring a lock in their own body,
//   - calls through func-typed values (callbacks: arbitrary code), and
//   - channel sends.
//
// Unexported same-package calls are exempt: the repo's convention is
// that unexported helpers document "callers hold mu" instead of
// re-locking. Sections that intentionally run a caller-supplied merge
// function under the lock carry //autovet:allow lockorder with the
// contract that makes it safe.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"autorte/internal/analysis/directive"
)

// acquiresLockFact marks an exported function whose body locks a mutex,
// so calling it while already holding one is flagged cross-package.
type acquiresLockFact struct{}

func (*acquiresLockFact) AFact()         {}
func (*acquiresLockFact) String() string { return "acquiresLock" }

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "forbid holding an obs lock across lock-acquiring or re-entrant operations\n\n" +
		"Within a mu.Lock()/mu.Unlock() critical section, calls to exported\n" +
		"methods of mutex-bearing types, calls to fact-marked lock-acquiring\n" +
		"functions, calls through func values, and channel sends are\n" +
		"reported: they can nest locks in inconsistent order or re-enter the\n" +
		"locked structure. Justify intentional cases with\n" +
		"//autovet:allow lockorder. Test files are exempt.",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*acquiresLockFact)(nil)},
	Run:       run,
}

// defaultPackages are the packages whose locks guard hot-path state and
// therefore must not be held across foreign calls.
const defaultPackages = "obs"

var packagesFlag = defaultPackages

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages",
		defaultPackages, "comma-separated package names whose critical sections are checked")
}

func scoped(pkg *types.Package) bool {
	for _, name := range strings.Split(packagesFlag, ",") {
		if pkg.Name() == strings.TrimSpace(name) {
			return true
		}
	}
	return false
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// isMutexType reports sync.Mutex or sync.RWMutex (pointers included).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// hasMutexField reports whether t (or what it points to) is a struct
// with a sync.Mutex/RWMutex field — a type whose methods may lock.
func hasMutexField(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// mutexOp classifies call as a Lock/Unlock-family call on a sync mutex
// and returns the locked expression rendered as a key ("r.mu").
func mutexOp(info *types.Info, call *ast.CallExpr) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	if tv, ok := info.Types[sel.X]; !ok || !isMutexType(tv.Type) {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

// section is one critical interval: positions strictly inside it hold
// the named mutex.
type section struct {
	mutex      string
	start, end token.Pos
}

// sections reconstructs critical sections in body, not descending into
// nested function literals (they run on their own goroutine's schedule
// and are analyzed separately).
func sections(info *types.Info, body *ast.BlockStmt) []section {
	type event struct {
		pos   token.Pos
		mutex string
		op    string // "lock", "unlock", "deferUnlock"
	}
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if key, op := mutexOp(info, call); key != "" {
					switch op {
					case "Lock", "RLock":
						events = append(events, event{n.Pos(), key, "lock"})
					case "Unlock", "RUnlock":
						events = append(events, event{n.Pos(), key, "unlock"})
					}
				}
			}
		case *ast.DeferStmt:
			if key, op := mutexOp(info, n.Call); key != "" && (op == "Unlock" || op == "RUnlock") {
				events = append(events, event{n.Pos(), key, "deferUnlock"})
			}
			return false
		}
		return true
	})
	// events come out of ast.Inspect in source order.
	var out []section
	for i, e := range events {
		if e.op != "lock" {
			continue
		}
		end := body.End()
		for _, f := range events[i+1:] {
			if f.mutex != e.mutex {
				continue
			}
			if f.op == "unlock" {
				end = f.pos
			}
			// A deferred unlock keeps the section open to function end.
			break
		}
		out = append(out, section{mutex: e.mutex, start: e.pos, end: end})
	}
	return out
}

// holding returns the mutex held at pos, if any.
func holding(secs []section, pos token.Pos) (string, bool) {
	for _, s := range secs {
		if pos > s.start && pos < s.end {
			return s.mutex, true
		}
	}
	return "", false
}

// acquiresDirectly reports whether body itself contains a mu.Lock()
// (nested function literals excluded).
func acquiresDirectly(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, op := mutexOp(info, call); op == "Lock" || op == "RLock" {
				found = true
			}
		}
		return !found
	})
	return found
}

type checker struct {
	pass  *analysis.Pass
	allow *directive.Allow
}

// callee resolves the static callee of call, nil for dynamic calls.
func (c *checker) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := c.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// checkBody reports foreign calls and channel sends inside body's
// critical sections.
func (c *checker) checkBody(body *ast.BlockStmt) {
	secs := sections(c.pass.TypesInfo, body)
	if len(secs) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if mu, ok := holding(secs, n.Pos()); ok {
				c.allow.Reportf(n.Pos(),
					"channel send while holding %s: a subscriber hand-off belongs outside the critical section (or justify with //autovet:allow lockorder)", mu)
			}
		case *ast.CallExpr:
			mu, ok := holding(secs, n.Pos())
			if !ok {
				return true
			}
			if key, _ := mutexOp(c.pass.TypesInfo, n); key != "" {
				return true // the section boundaries themselves
			}
			fn := c.callee(n)
			if fn == nil {
				// Conversions and builtins have no *types.Func but are not
				// dynamic calls either.
				if tv, ok := c.pass.TypesInfo.Types[ast.Unparen(n.Fun)]; ok {
					if tv.IsType() || tv.IsBuiltin() {
						return true
					}
				}
				c.allow.Reportf(n.Pos(),
					"call through a func value while holding %s runs arbitrary code under the lock (or justify with //autovet:allow lockorder)", mu)
				return true
			}
			if !fn.Exported() {
				return true // caller-holds-mu helper convention
			}
			sig := fn.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil && hasMutexField(recv.Type()) {
				c.allow.Reportf(n.Pos(),
					"call to %s.%s while holding %s can acquire another lock: release %s first (or justify with //autovet:allow lockorder)",
					recvName(recv.Type()), fn.Name(), mu, mu)
				return true
			}
			if c.pass.ImportObjectFact(fn, new(acquiresLockFact)) {
				c.allow.Reportf(n.Pos(),
					"call to %s while holding %s acquires a lock: release %s first (or justify with //autovet:allow lockorder)",
					fn.Name(), mu, mu)
			}
		}
		return true
	})
}

func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func run(pass *analysis.Pass) (any, error) {
	var files []*ast.File
	for _, f := range pass.Files {
		if !isTestFile(pass, f) {
			files = append(files, f)
		}
	}

	// Export facts from every package: a consumer in scope must learn
	// that an out-of-scope exported function acquires a lock.
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok &&
				acquiresDirectly(pass.TypesInfo, fd.Body) {
				pass.ExportObjectFact(fn, &acquiresLockFact{})
			}
		}
	}

	if !scoped(pass.Pkg) {
		return nil, nil
	}
	allow := directive.CollectAllow(pass, "lockorder", files)
	skip := map[*ast.File]bool{}
	for _, f := range pass.Files {
		skip[f] = isTestFile(pass, f)
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	c := &checker{pass: pass, allow: allow}
	nodeFilter := []ast.Node{(*ast.File)(nil), (*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	var inSkipped bool
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			inSkipped = skip[n]
		case *ast.FuncDecl:
			if !inSkipped && n.Body != nil {
				c.checkBody(n.Body)
			}
		case *ast.FuncLit:
			if !inSkipped {
				c.checkBody(n.Body)
			}
		}
	})
	allow.ReportUnused()
	return nil, nil
}
