package e2eflow_test

import (
	"testing"

	"autorte/internal/analysis/checktest"
	"autorte/internal/analysis/e2eflow"
)

func TestE2EFlow(t *testing.T) {
	checktest.Run(t, "testdata", e2eflow.Analyzer, "app")
}
