// Package app exercises the e2eflow analyzer: unqualified read-to-write
// flows are diagnosed; dominated (qualified) flows are not.
package app

import (
	"qual"
	"rte"
)

func direct(c *rte.Context) {
	c.Write("cmd", "u", c.Read("in", "v")) // want `without a dominating E2E qualification`
}

func viaVar(c *rte.Context) {
	v := c.Read("in", "v")
	u := v*2 + 1
	c.Write("cmd", "u", u) // want `without a dominating E2E qualification`
}

func viaOK(c *rte.Context) {
	if v, ok := c.ReadOK("in", "v"); ok {
		c.Write("cmd", "u", v) // want `without a dominating E2E qualification`
	}
}

func qualified(c *rte.Context) {
	s, ok := c.E2EStatus("in", "v")
	if !ok || s != 0 {
		return
	}
	c.Write("cmd", "u", c.Read("in", "v")) // ok: qualification dominates
}

func aged(c *rte.Context) {
	if c.Age("in", "v") > 10 {
		return
	}
	c.Write("cmd", "u", c.Read("in", "v")) // ok: freshness guard dominates
}

func helper(c *rte.Context) {
	if !qual.Valid(c, "in", "v") {
		return
	}
	c.Write("cmd", "u", c.Read("in", "v")) // ok: fact-marked qualifier dominates
}

func platformGuard(c *rte.Context, p *rte.Platform) {
	if _, ok := p.E2EState("sig"); !ok {
		return
	}
	c.Write("cmd", "u", c.Read("in", "v")) // ok: platform-level qualification
}

func partially(c *rte.Context, b bool) {
	v := c.Read("in", "v")
	if b {
		_, _ = c.E2EStatus("in", "v")
	}
	c.Write("cmd", "u", v) // want `without a dominating E2E qualification`
}

func constant(c *rte.Context) {
	c.Write("out", "v", 100) // ok: no signal taint
}

func closure(p interface{ SetBehavior(func(*rte.Context)) }) {
	p.SetBehavior(func(c *rte.Context) {
		c.Write("cmd", "u", c.Read("in", "v")) // want `without a dominating E2E qualification`
	})
}

func excused(c *rte.Context) {
	c.Write("cmd", "u", c.Read("in", "v")) //autovet:allow e2eflow local intra-ECU connector, no bus hop
}
