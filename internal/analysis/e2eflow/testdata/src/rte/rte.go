// Package rte stubs the platform RTE surface the e2eflow analyzer
// anchors on: Context read/write/qualification and Platform.E2EState.
package rte

type Context struct{}

func (c *Context) Read(port, elem string) float64           { return 0 }
func (c *Context) ReadOK(port, elem string) (float64, bool) { return 0, false }
func (c *Context) Write(port, elem string, v float64)       {}
func (c *Context) E2EStatus(port, elem string) (int, bool)  { return 0, false }
func (c *Context) Age(port, elem string) int64              { return 0 }

type Platform struct{}

func (p *Platform) E2EState(signal string) (int, bool) { return 0, false }
