// Package qual holds a shared qualification helper: e2eflow must
// export a qualifier fact for it, so calls in other packages count as
// dominating guards.
package qual

import "rte"

// Valid reports whether the protected element is currently qualified.
func Valid(c *rte.Context, port, elem string) bool {
	s, ok := c.E2EStatus(port, elem)
	return ok && s == 0
}
