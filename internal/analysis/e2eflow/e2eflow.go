// Package e2eflow defines a taint-style analyzer for the platform's
// end-to-end qualification invariant: a value read from a signal port
// must not flow into an actuation (Context.Write) unless an E2E
// qualification check dominates the write.
//
// The e2eprot layer (PR 5) can detect corrupted, masqueraded, delayed
// and resequenced communication — but only if runnables actually
// consult the verdict. A behaviour that does
//
//	c.Write("cmd", "u", c.Read("in", "v"))
//
// forwards whatever arrived, qualified or not, and the protection
// becomes dead code on the most safety-relevant path. The analyzer
// tracks Context.Read/ReadOK results intraprocedurally (assignments
// propagate the taint) and reports any Write whose value derives from a
// read unless a qualification call — Context.E2EStatus, Context.Age,
// Platform.E2EState, or a function the suite has fact-marked as a
// qualifier — dominates the write in the control-flow graph. Helper
// functions that perform a qualification check are exported as
// qualifier facts, so a shared guard in another package still counts.
//
// Local-only signals need no E2E qualification; such writes are
// documented with //autovet:allow e2eflow and the reason the signal is
// trusted.
package e2eflow

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	platform "autorte/internal/analysis"
	"autorte/internal/analysis/directive"
)

// qualifierFact marks a function that performs an E2E qualification
// check, so calling it counts as a dominating guard in any package.
type qualifierFact struct{}

func (*qualifierFact) AFact()         {}
func (*qualifierFact) String() string { return "e2equalifier" }

var Analyzer = &analysis.Analyzer{
	Name: "e2eflow",
	Doc: "require E2E qualification between signal reads and actuation writes\n\n" +
		"Values read from Context.Read/ReadOK must not reach Context.Write\n" +
		"unless an E2EStatus/E2EState/Age qualification dominates the write\n" +
		"in the control-flow graph — otherwise communication protection is\n" +
		"dead code on the actuation path. Qualification helpers are\n" +
		"propagated as analysis facts across packages. Writes of local,\n" +
		"trusted signals are justified with //autovet:allow e2eflow. Test\n" +
		"files are exempt.",
	Requires:  []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	FactTypes: []analysis.Fact{(*qualifierFact)(nil)},
	Run:       run,
}

// rtePkg is the package whose Context/Platform types anchor the flow.
const rtePkg = "rte"

// contextMethod returns the method name when call is a method call on
// rte.Context or rte.Platform (the receiver's type name is returned in
// recv).
func contextMethod(info *types.Info, call *ast.CallExpr) (recv, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || !platform.PkgIs(fn.Pkg(), rtePkg) {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	return named.Obj().Name(), fn.Name()
}

type flow struct {
	pass    *analysis.Pass
	allow   *directive.Allow
	tainted map[types.Object]bool
}

// isSource reports a Context.Read/ReadOK call.
func (fl *flow) isSource(call *ast.CallExpr) bool {
	recv, name := contextMethod(fl.pass.TypesInfo, call)
	return recv == "Context" && (name == "Read" || name == "ReadOK")
}

// isSink reports a Context.Write call.
func (fl *flow) isSink(call *ast.CallExpr) bool {
	recv, name := contextMethod(fl.pass.TypesInfo, call)
	return recv == "Context" && name == "Write"
}

// isGuard reports an E2E qualification call: the platform's own status
// and freshness probes, or a fact-marked qualifier helper.
func (fl *flow) isGuard(call *ast.CallExpr) bool {
	recv, name := contextMethod(fl.pass.TypesInfo, call)
	if recv == "Context" && (name == "E2EStatus" || name == "Age") {
		return true
	}
	if recv == "Platform" && name == "E2EState" {
		return true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := fl.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			return fl.pass.ImportObjectFact(fn, new(qualifierFact))
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if fn, ok := fl.pass.TypesInfo.Uses[id].(*types.Func); ok {
			return fl.pass.ImportObjectFact(fn, new(qualifierFact))
		}
	}
	return false
}

// taintedExpr reports whether e contains a source call or a tainted
// identifier.
func (fl *flow) taintedExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate function, separate flow
		case *ast.CallExpr:
			if fl.isSource(n) {
				found = true
			}
		case *ast.Ident:
			if obj := fl.pass.TypesInfo.ObjectOf(n); obj != nil && fl.tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// taint seeds and propagates read-derived values through assignments in
// body (nested function literals excluded) to a fixpoint.
func (fl *flow) taint(body *ast.BlockStmt) {
	fl.tainted = map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else {
						rhs = n.Rhs[0]
					}
					if !fl.taintedExpr(rhs) {
						continue
					}
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := fl.pass.TypesInfo.ObjectOf(id); obj != nil && !fl.tainted[obj] {
							fl.tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if !fl.taintedExpr(v) {
						continue
					}
					for _, id := range n.Names {
						if obj := fl.pass.TypesInfo.ObjectOf(id); obj != nil && !fl.tainted[obj] {
							fl.tainted[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
}

// checkCFG walks the function's control-flow graph and reports tainted
// writes not dominated by a guard: a write is safe only if every path
// from entry to it passes a qualification call first.
func (fl *flow) checkCFG(g *cfg.CFG) {
	if g == nil || len(g.Blocks) == 0 {
		return
	}
	type sink struct {
		idx  int
		call *ast.CallExpr
	}
	guardIdx := map[*cfg.Block]int{}
	sinks := map[*cfg.Block][]sink{}
	for _, b := range g.Blocks {
		guardIdx[b] = -1
		for i, n := range b.Nodes {
			hasGuard, hasSink := false, false
			var sinkCall *ast.CallExpr
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok {
					if fl.isGuard(call) {
						hasGuard = true
					}
					if fl.isSink(call) {
						tainted := false
						for _, arg := range call.Args {
							if fl.taintedExpr(arg) {
								tainted = true
							}
						}
						if tainted {
							hasSink = true
							sinkCall = call
						}
					}
				}
				return true
			})
			if hasGuard && guardIdx[b] < 0 {
				guardIdx[b] = i
			}
			if hasSink {
				sinks[b] = append(sinks[b], sink{idx: i, call: sinkCall})
			}
		}
	}
	// Blocks reachable from entry without crossing a guard.
	unguarded := map[*cfg.Block]bool{}
	queue := []*cfg.Block{g.Blocks[0]}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if unguarded[b] {
			continue
		}
		unguarded[b] = true
		if guardIdx[b] >= 0 {
			continue // qualification stops the unguarded frontier
		}
		queue = append(queue, b.Succs...)
	}
	for _, b := range g.Blocks {
		for _, s := range sinks[b] {
			if !unguarded[b] {
				continue
			}
			if gi := guardIdx[b]; gi >= 0 && s.idx >= gi {
				continue
			}
			fl.allow.Reportf(s.call.Pos(),
				"signal value flows from Context.Read to Context.Write without a dominating E2E qualification (check E2EStatus/Age first, or justify a trusted local signal with //autovet:allow e2eflow)")
		}
	}
}

// hasGuardCall reports whether body directly performs a qualification
// call (making the enclosing function itself a qualifier).
func (fl *flow) hasGuardCall(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && fl.isGuard(call) {
			found = true
		}
		return !found
	})
	return found
}

func run(pass *analysis.Pass) (any, error) {
	var files []*ast.File
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	allow := directive.CollectAllow(pass, "e2eflow", files)
	skip := map[*ast.File]bool{}
	for _, f := range pass.Files {
		skip[f] = strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
	}

	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	fl := &flow{pass: pass, allow: allow}

	// Export qualifier facts first so same-package helpers count as
	// guards below (cross-package helpers already carry facts).
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && fl.hasGuardCall(fd.Body) {
				pass.ExportObjectFact(obj, &qualifierFact{})
			}
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.File)(nil), (*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	var inSkipped bool
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			inSkipped = skip[n]
		case *ast.FuncDecl:
			if inSkipped || n.Body == nil {
				return
			}
			fl.taint(n.Body)
			fl.checkCFG(cfgs.FuncDecl(n))
		case *ast.FuncLit:
			if inSkipped {
				return
			}
			fl.taint(n.Body)
			fl.checkCFG(cfgs.FuncLit(n))
		}
	})
	allow.ReportUnused()
	return nil, nil
}
