package analysis

import (
	"go/types"
	"strings"
)

// PkgIs reports whether pkg is the platform package with the given base
// name: the real import path autorte/internal/<base>, or the bare
// testdata path <base> that the checktest harness loads analyzers'
// fixture packages under.
func PkgIs(pkg *types.Package, base string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == base || p == "autorte/internal/"+base
}

// PkgIn reports whether pkg is one of the comma-separated platform
// package base names (as used by analyzer -packages flags).
func PkgIn(pkg *types.Package, bases string) bool {
	for _, b := range strings.Split(bases, ",") {
		if PkgIs(pkg, strings.TrimSpace(b)) {
			return true
		}
	}
	return false
}
