// Package analysis hosts autovet, the repo's go/analysis lint suite:
// custom analyzers that enforce the platform's reliability invariants
// the same way the paper argues isolation must be enforced — by
// machine-checked contract, not convention.
//
// The suite (run by cmd/autovet via "make lint" / "make check"):
//
//   - walltime — forbids wall-clock reads (time.Now, time.Since,
//     time.Sleep, timers, tickers) in the virtual-time packages (sim,
//     sched, can, flexray, rte, vfb, osek, ttp, ttethernet, noc, e2e,
//     fault, trace, experiments, obs, par, core). Only sim.Time may
//     flow through the simulated platform; host-time instrumentation
//     must be justified inline with //autovet:allow walltime.
//
//   - nilsafe — exported pointer-receiver methods on types marked
//     //autovet:nilsafe (trace.Recorder, obs.Registry, obs.Log,
//     obs.Tracer) must begin with a nil-receiver guard, preserving the
//     "nil means disabled" observability contract.
//
//   - baregoroutine — forbids raw go statements outside internal/par
//     and test files; all fan-out uses the bounded, instrumented,
//     panic-safe worker pool.
//
//   - kindswitch — switches over module-local enum types (trace.Kind,
//     model.ConfigClass, rte.IsolationKind, ...) must cover every
//     declared constant or carry a default clause.
//
//   - autovetdirective — validates the //autovet: directives
//     themselves: unknown verbs or analyzer names and misplaced
//     //autovet:nilsafe markers are reported, and each analyzer reports
//     its own stale //autovet:allow directives that no longer suppress
//     anything.
//
// Directive syntax: "//autovet:allow <analyzer> [reason]" at the end of
// a line suppresses that analyzer on that line; alone on a line it
// suppresses the line below. "//autovet:nilsafe" on a type declaration
// opts the type into the nilsafe contract.
//
// Each analyzer has regression tests driven by
// autorte/internal/analysis/checktest, a small analysistest-style
// harness, over positive/negative testdata packages.
package analysis
