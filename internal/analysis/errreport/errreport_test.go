package errreport_test

import (
	"testing"

	"autorte/internal/analysis/checktest"
	"autorte/internal/analysis/errreport"
)

func TestErrreport(t *testing.T) {
	checktest.Run(t, "testdata", errreport.Analyzer, "er")
}
