// Package errreport defines an analyzer that forbids silently dropping
// errors returned by the platform's reliability APIs.
//
// The health chain (report → debounce → qualify → escalate) only works
// if errors actually enter it: an error from rte, health or e2eprot
// that is discarded never reaches the ErrorManager, so the fault it
// describes is invisible to supervision, recovery and diagnostics —
// precisely the "silent failure" class the paper's consistent error
// handling concept exists to exclude. The analyzer reports calls to
// error-returning functions of those packages whose error result is
// dropped (an expression statement, a go/defer statement, or a blank
// assignment); assigning the error to a variable counts as handling it.
//
// The check is cross-package: a function in any package whose own error
// result derives from a must-check call is marked with an exported fact
// and becomes must-check for its callers too, so wrapping a platform
// API does not launder its error away.
package errreport

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	platform "autorte/internal/analysis"
	"autorte/internal/analysis/directive"
)

// defaultPackages are the packages whose exported error-returning
// functions seed the must-check set.
const defaultPackages = "rte,health,e2eprot"

// mustCheckFact marks a function whose error result derives from a
// platform must-check API, making the function itself must-check for
// its callers (in this and every importing package).
type mustCheckFact struct{}

func (*mustCheckFact) AFact()         {}
func (*mustCheckFact) String() string { return "mustcheck" }

var Analyzer = &analysis.Analyzer{
	Name: "errreport",
	Doc: "forbid dropping errors from the platform reliability APIs\n\n" +
		"Errors returned by rte, health and e2eprot must be handled or\n" +
		"forwarded to the ErrorManager: a dropped error is a fault the health\n" +
		"chain never sees. Wrappers whose error results derive from those\n" +
		"APIs are propagated as analysis facts, so the check crosses package\n" +
		"boundaries. Intentional drops need //autovet:allow errreport and a\n" +
		"reason. Test files are exempt.",
	FactTypes: []analysis.Fact{(*mustCheckFact)(nil)},
	Run:       run,
}

var packagesFlag = defaultPackages

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages",
		defaultPackages, "comma-separated package names whose exported error-returning functions are must-check")
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

type checker struct {
	pass  *analysis.Pass
	allow *directive.Allow
}

// mustCheck reports whether a call to fn drops into the platform's
// must-check set: a seed-package exported error API, or a wrapper
// carrying the propagated fact.
func (c *checker) mustCheck(fn *types.Func) bool {
	if fn == nil || !returnsError(fn) {
		return false
	}
	if fn.Exported() && platform.PkgIn(fn.Pkg(), packagesFlag) {
		return true
	}
	return c.pass.ImportObjectFact(fn, new(mustCheckFact))
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

func run(pass *analysis.Pass) (any, error) {
	var files []*ast.File
	for _, f := range pass.Files {
		if !isTestFile(pass, f) {
			files = append(files, f)
		}
	}
	c := &checker{pass: pass, allow: directive.CollectAllow(pass, "errreport", files)}

	// Mark same-package wrappers before checking call sites (to a
	// fixpoint, so a wrapper of a wrapper is caught too); imported
	// packages' wrappers already carry their facts.
	for c.exportWrappers(files) {
	}

	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					c.checkDropped(call)
				}
			case *ast.GoStmt:
				c.checkDropped(n.Call)
			case *ast.DeferStmt:
				c.checkDropped(n.Call)
			case *ast.AssignStmt:
				c.checkBlank(n)
			}
			return true
		})
	}

	c.allow.ReportUnused()
	return nil, nil
}

// checkDropped reports a call whose results (error included) are
// discarded entirely.
func (c *checker) checkDropped(call *ast.CallExpr) {
	fn := typeutil.Callee(c.pass.TypesInfo, call)
	f, ok := fn.(*types.Func)
	if !ok || !c.mustCheck(f) {
		return
	}
	c.allow.Reportf(call.Pos(),
		"error returned by %s.%s is dropped: handle it or forward it to the ErrorManager (or justify with //autovet:allow errreport)",
		f.Pkg().Name(), f.Name())
}

// checkBlank reports assignments that discard the error result into _.
func (c *checker) checkBlank(as *ast.AssignStmt) {
	// Single call on the RHS: the error is the last LHS position.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := typeutil.Callee(c.pass.TypesInfo, call)
	f, ok := fn.(*types.Func)
	if !ok || !c.mustCheck(f) {
		return
	}
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	c.allow.Reportf(as.Pos(),
		"error returned by %s.%s is discarded with _: handle it or forward it to the ErrorManager (or justify with //autovet:allow errreport)",
		f.Pkg().Name(), f.Name())
}

// exportWrappers marks functions whose own error result derives from a
// must-check call, so the obligation follows the error across package
// boundaries. It reports whether any new fact was exported (callers
// loop to a fixpoint for same-package wrapper chains).
func (c *checker) exportWrappers(files []*ast.File) bool {
	changed := false
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !returnsError(obj) {
				continue
			}
			if c.pass.ImportObjectFact(obj, new(mustCheckFact)) {
				continue // already marked
			}
			if c.wrapsMustCheck(fd.Body) {
				c.pass.ExportObjectFact(obj, &mustCheckFact{})
				changed = true
			}
		}
	}
	return changed
}

// wrapsMustCheck reports whether body returns an error that came from a
// must-check call: either a return whose result expression contains
// such a call, or a return of a variable assigned from one.
func (c *checker) wrapsMustCheck(body *ast.BlockStmt) bool {
	// Variables assigned (anywhere in the function) from a must-check
	// call's error position.
	tainted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if f, ok := typeutil.Callee(c.pass.TypesInfo, call).(*types.Func); !ok || !c.mustCheck(f) {
			return true
		}
		if id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				tainted[obj] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.CallExpr:
					if f, ok := typeutil.Callee(c.pass.TypesInfo, m).(*types.Func); ok && c.mustCheck(f) {
						found = true
					}
				case *ast.Ident:
					if obj := c.pass.TypesInfo.ObjectOf(m); obj != nil && tainted[obj] {
						found = true
					}
				}
				return !found
			})
		}
		return !found
	})
	return found
}
