// Package rte is a stub of the platform RTE: its exported
// error-returning functions seed the errreport must-check set.
package rte

import "errors"

type Platform struct{}

func (p *Platform) RestartRunnable(swc, runnable string) error { return errors.New("no such runnable") }

func (p *Platform) SetBehavior(swc string) error { return errors.New("no such swc") }

// Replica switchover APIs: their errors are failed promotions or
// rejected fault injections — exactly what the health chain must see.
func (p *Platform) FailOver(swc string) error { return errors.New("no standby") }

func (p *Platform) FailBack(swc string) error { return errors.New("primary ECU still down") }

func (p *Platform) KillECU(ecu string) error { return errors.New("no such ecu") }

func (p *Platform) ResetECU(ecu string) error { return errors.New("no such ecu") }

// Helper returns a value and an error.
func Helper() (int, error) { return 0, errors.New("helper") }

// NoError has no error result: never must-check.
func NoError() int { return 1 }
