// Package wrap wraps platform APIs: the errreport analyzer must export
// must-check facts for the wrappers so callers in other packages cannot
// launder the error away.
package wrap

import "rte"

// Restart returns a platform error directly: must-check for callers.
func Restart(p *rte.Platform) error {
	return p.RestartRunnable("a", "b")
}

// Again wraps a wrapper (same-package fixpoint): still must-check.
func Again(p *rte.Platform) error {
	return Restart(p)
}

// Via returns a platform error through a variable: must-check.
func Via(p *rte.Platform) error {
	_, err := rte.Helper()
	if err != nil {
		return err
	}
	return nil
}

// Promote wraps the replica switchover: a caller dropping its error
// never learns the promotion failed and the service is still down.
func Promote(p *rte.Platform) error {
	return p.FailOver("Ctrl")
}

// Handled deals with the error itself and never returns it: callers may
// drop its (always-nil-from-platform) error.
func Handled(p *rte.Platform) error {
	if err := p.RestartRunnable("a", "b"); err != nil {
		println(err.Error())
	}
	return nil
}
