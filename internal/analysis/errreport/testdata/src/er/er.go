// Package er exercises the errreport analyzer: dropped and blank-
// discarded platform errors are diagnosed, handled ones are not, and
// the must-check obligation follows wrappers across packages.
package er

import (
	"rte"
	"wrap"
)

func drops(p *rte.Platform) {
	p.RestartRunnable("a", "b")    // want `error returned by rte.RestartRunnable is dropped`
	_ = p.SetBehavior("x")         // want `error returned by rte.SetBehavior is discarded with _`
	go p.RestartRunnable("a", "b") // want `error returned by rte.RestartRunnable is dropped`
	v, _ := rte.Helper()           // want `error returned by rte.Helper is discarded with _`
	_ = v
	wrap.Restart(p) // want `error returned by wrap.Restart is dropped`
	wrap.Again(p)   // want `error returned by wrap.Again is dropped`
	wrap.Via(p)     // want `error returned by wrap.Via is dropped`
}

func deferred(p *rte.Platform) {
	defer p.SetBehavior("x") // want `error returned by rte.SetBehavior is dropped`
}

func handled(p *rte.Platform) {
	if err := p.RestartRunnable("a", "b"); err != nil {
		println(err.Error())
	}
	err := wrap.Restart(p)
	_ = err
	rte.NoError()   // no error result: fine
	wrap.Handled(p) // Handled's error never carries a platform error: fine
}

// Replica switchover paths: a dropped FailOver error is a failed
// promotion supervision never hears about — the service stays down while
// the monitor believes the rung succeeded.
func switchover(p *rte.Platform) {
	p.FailOver("Ctrl")       // want `error returned by rte.FailOver is dropped`
	p.FailBack("Ctrl")       // want `error returned by rte.FailBack is dropped`
	_ = p.KillECU("ecu2")    // want `error returned by rte.KillECU is discarded with _`
	defer p.ResetECU("ecu2") // want `error returned by rte.ResetECU is dropped`
	wrap.Promote(p)          // want `error returned by wrap.Promote is dropped`
	if err := p.FailOver("Ctrl"); err != nil {
		println(err.Error()) // handled: the ladder can escalate past the dead standby
	}
}

func excused(p *rte.Platform) {
	p.RestartRunnable("a", "b") //autovet:allow errreport teardown path, restart failure is terminal anyway
}
