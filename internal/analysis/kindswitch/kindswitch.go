// Package kindswitch defines an analyzer that requires switches over
// the platform's enum-like types to be exhaustive or carry a default.
//
// The model, trace and rte layers lean on small closed enums —
// trace.Kind, model.ConfigClass, rte error kinds, bus/frame kinds. A
// switch that silently ignores a newly added enumerator is how a Drop
// record fails to show up in a Gantt chart or a new isolation level
// falls through to "no isolation": the compiler says nothing. This
// analyzer treats any module-local defined type with two or more
// package-level constants as an enum; a switch over such a type must
// either cover every declared constant value or say what happens
// otherwise with a default clause.
package kindswitch

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"autorte/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "kindswitch",
	Doc: "switches over enum-like platform types must be exhaustive or have a default\n\n" +
		"An enum is a module-local defined type with >= 2 package-level\n" +
		"constants. Missing enumerators are listed in the diagnostic; either\n" +
		"add the cases, add a default, or suppress a deliberate partial\n" +
		"switch with //autovet:allow kindswitch.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// modpath restricts enum detection to types defined in this module (or
// in the package under analysis, which covers the analyzer's own
// testdata), keeping stdlib types with many constants of one type —
// time.Duration is the classic trap — out of scope.
var modpath = "autorte"

func init() {
	Analyzer.Flags.StringVar(&modpath, "modpath", modpath,
		"module path prefix whose types are treated as enums")
}

func localEnumType(pass *analysis.Pass, t types.Type) (*types.TypeName, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil, false // error type, builtins
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 || basic.Info()&types.IsBoolean != 0 {
		return nil, false
	}
	path := obj.Pkg().Path()
	if obj.Pkg() != pass.Pkg && path != modpath && !strings.HasPrefix(path, modpath+"/") {
		return nil, false
	}
	return obj, true
}

// enumerators returns the package-level constants of type t declared in
// its defining package, keyed by exact constant value.
func enumerators(obj *types.TypeName) map[string][]string {
	scope := obj.Pkg().Scope()
	vals := map[string][]string{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), obj.Type()) {
			continue
		}
		key := c.Val().ExactString()
		vals[key] = append(vals[key], c.Name())
	}
	return vals
}

func run(pass *analysis.Pass) (any, error) {
	allow := directive.CollectAllow(pass, "kindswitch", pass.Files)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		sw := n.(*ast.SwitchStmt)
		if sw.Tag == nil {
			return
		}
		tv, ok := pass.TypesInfo.Types[sw.Tag]
		if !ok {
			return
		}
		obj, ok := localEnumType(pass, tv.Type)
		if !ok {
			return
		}
		enums := enumerators(obj)
		if len(enums) < 2 {
			return // one constant is a named value, not an enumeration
		}
		covered := map[string]bool{}
		for _, stmt := range sw.Body.List {
			cc := stmt.(*ast.CaseClause)
			if cc.List == nil {
				return // default clause: partiality is explicit
			}
			for _, e := range cc.List {
				cv, ok := pass.TypesInfo.Types[e]
				if !ok || cv.Value == nil {
					return // non-constant case: coverage is not decidable
				}
				covered[cv.Value.ExactString()] = true
			}
		}
		var missing []string
		for key, names := range enums {
			if !covered[key] {
				missing = append(missing, names[0])
			}
		}
		if len(missing) == 0 {
			return
		}
		sort.Strings(missing)
		typeName := obj.Name()
		if obj.Pkg() != pass.Pkg {
			typeName = obj.Pkg().Name() + "." + typeName
		}
		allow.Reportf(sw.Pos(),
			"switch over %s is not exhaustive: missing %s (add the cases or a default clause)",
			typeName, strings.Join(missing, ", "))
	})
	allow.ReportUnused()
	return nil, nil
}
