package kindswitch_test

import (
	"testing"

	"autorte/internal/analysis/checktest"
	"autorte/internal/analysis/kindswitch"
)

func TestKindswitch(t *testing.T) {
	checktest.Run(t, "testdata", kindswitch.Analyzer, "k")
}

// TestCrossPackage narrows modpath so the testdata package "kinds"
// counts as module-local, the way autorte/internal/... types do in the
// real tree.
func TestCrossPackage(t *testing.T) {
	if err := kindswitch.Analyzer.Flags.Set("modpath", "kinds"); err != nil {
		t.Fatal(err)
	}
	defer kindswitch.Analyzer.Flags.Set("modpath", "autorte")
	checktest.Run(t, "testdata", kindswitch.Analyzer, "xk")
}
