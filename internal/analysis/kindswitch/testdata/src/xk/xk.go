// Package xk switches over an enum imported from package kinds.
package xk

import "kinds"

func describe(f kinds.Frame) string {
	switch f { // want `switch over kinds.Frame is not exhaustive: missing Sync`
	case kinds.Static:
		return "static"
	case kinds.Dynamic:
		return "dynamic"
	}
	return "?"
}

func full(f kinds.Frame) string {
	switch f {
	case kinds.Static, kinds.Dynamic, kinds.Sync:
		return "known"
	}
	return "?"
}
