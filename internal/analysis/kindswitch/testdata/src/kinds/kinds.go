// Package kinds declares an enum consumed by package xk, exercising
// cross-package exhaustiveness checking.
package kinds

type Frame uint8

const (
	Static Frame = iota
	Dynamic
	Sync
)
