// Package k is kindswitch-analyzer testdata: same-package enums.
package k

// Kind is an enum: a defined type with >= 2 package-level constants.
type Kind uint8

const (
	A Kind = iota
	B
	C
	AliasA = A // same value as A: covered whenever A is
)

// Mode is a string-backed enum.
type Mode string

const (
	Off Mode = "off"
	On  Mode = "on"
)

// Lonely has a single constant, which names a value, not an enumeration.
type Lonely int

const JustOne Lonely = 7

func exhaustive(k Kind) int {
	switch k {
	case A:
		return 0
	case B:
		return 1
	case C:
		return 2
	}
	return -1
}

func withDefault(k Kind) int {
	switch k {
	case A:
		return 0
	default:
		return -1
	}
}

func missingOne(k Kind) int {
	switch k { // want `switch over Kind is not exhaustive: missing C`
	case A, B:
		return 0
	}
	return -1
}

func missingTwo(k Kind) int {
	switch k { // want `switch over Kind is not exhaustive: missing B, C`
	case A:
		return 0
	}
	return -1
}

func aliasCovers(k Kind) int {
	switch k { // want `switch over Kind is not exhaustive: missing B`
	case AliasA, C: // AliasA covers A's value
		return 0
	}
	return -1
}

func stringEnum(m Mode) bool {
	switch m { // want `switch over Mode is not exhaustive: missing On`
	case Off:
		return false
	}
	return true
}

func nonConstantCase(k, other Kind) int {
	switch k { // coverage undecidable: not reported
	case other:
		return 1
	}
	return 0
}

func lonely(l Lonely) bool {
	switch l { // single-constant type: not an enum
	case JustOne:
		return true
	}
	return false
}

func plainInt(n int) bool {
	switch n { // built-in types are never enums
	case 1:
		return true
	}
	return false
}

func allowed(k Kind) int {
	switch k { //autovet:allow kindswitch only A is reachable here
	case A:
		return 0
	}
	return -1
}

func stale(k Kind) int {
	switch k { //autovet:allow kindswitch // want `unused //autovet:allow kindswitch directive`
	case A, B, C:
		return 0
	}
	return -1
}

// E2EStatus mirrors the six-value receiver check status of the E2E
// protection layer (ok, repeated, wrong-sequence, not-available,
// no-new-data, error) — wide enums must still be fully enumerated.
type E2EStatus uint8

const (
	StatusOK E2EStatus = iota
	StatusRepeated
	StatusWrongSequence
	StatusNotAvailable
	StatusNoNewData
	StatusError
)

func e2eExhaustive(s E2EStatus) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRepeated:
		return "repeated"
	case StatusWrongSequence:
		return "wrong-sequence"
	case StatusNotAvailable:
		return "not-available"
	case StatusNoNewData:
		return "no-new-data"
	case StatusError:
		return "error"
	}
	return "?"
}

func e2eMissingTail(s E2EStatus) bool {
	switch s { // want `switch over E2EStatus is not exhaustive: missing StatusError, StatusNoNewData`
	case StatusOK, StatusRepeated, StatusWrongSequence, StatusNotAvailable:
		return true
	}
	return false
}

func e2eAcceptGate(s E2EStatus) bool {
	switch s { // the receive-gate idiom: default handles every fault status
	case StatusOK:
		return true
	default:
		return false
	}
}

// ReplicaMode mirrors the deployment model's standby-mode enum: a
// switchover path that handles only the passive mode silently skips hot
// (active) replicas when one is added, so partial switches must be
// flagged.
type ReplicaMode uint8

const (
	StandbyPassive ReplicaMode = iota
	StandbyActive
)

func switchoverCost(m ReplicaMode) int {
	switch m {
	case StandbyPassive:
		return 10 // promote: resume the suspended replica's tasks
	case StandbyActive:
		return 1 // already running: just move the active pointer
	}
	return -1
}

func passiveOnly(m ReplicaMode) int {
	switch m { // want `switch over ReplicaMode is not exhaustive: missing StandbyActive`
	case StandbyPassive:
		return 10
	}
	return -1
}

func modeGate(m ReplicaMode) bool {
	switch m { // default says what happens to future modes: fine
	case StandbyPassive:
		return true
	default:
		return false
	}
}

// LossKind mirrors the deployment fault model's loss-unit enum: a
// survivability check that classifies only ECU losses silently treats a
// bus or correlated ECU+bus loss as harmless, so partial switches must
// be flagged.
type LossKind uint8

const (
	LossECU LossKind = iota
	LossBus
	LossECUAndBus
)

func lossLabel(k LossKind) string {
	switch k {
	case LossECU:
		return "ecu"
	case LossBus:
		return "bus"
	case LossECUAndBus:
		return "ecu+bus"
	}
	return "?"
}

func ecuLossesOnly(k LossKind) bool {
	switch k { // want `switch over LossKind is not exhaustive: missing LossBus, LossECUAndBus`
	case LossECU:
		return true
	}
	return false
}

func lossGate(k LossKind) bool {
	switch k { // default prices every unclassified loss: fine
	case LossECU:
		return true
	default:
		return false
	}
}

// Verdict mirrors the observer quorum's vote enum: a tally that counts
// only fault votes ignores recanting OK votes, so a cleared accusation
// would still trip the ladder.
type Verdict uint8

const (
	VerdictOK Verdict = iota
	VerdictSuspect
	VerdictFault
)

func verdictWeight(v Verdict) int {
	switch v {
	case VerdictOK:
		return 0
	case VerdictSuspect:
		return 1
	case VerdictFault:
		return 2
	}
	return -1
}

func faultVotesOnly(v Verdict) bool {
	switch v { // want `switch over Verdict is not exhaustive: missing VerdictOK, VerdictSuspect`
	case VerdictFault:
		return true
	}
	return false
}

func verdictGate(v Verdict) bool {
	switch v { // default meters unknown verdicts: fine
	case VerdictFault:
		return true
	default:
		return false
	}
}
