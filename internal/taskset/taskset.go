// Package taskset derives the analyzable per-ECU task sets of a deployed
// component system, using the same priority assignment the RTE generator
// applies (event-driven runnables inherit their producer's rate; the
// resulting set is rate-monotonic). It sits below core so the deployment
// search can run the same schedulability analysis the verifier does,
// through the shared response-time cache.
package taskset

import (
	"fmt"
	"sort"

	"autorte/internal/model"
	"autorte/internal/sched"
	"autorte/internal/sim"
)

// Build derives the analyzable task set per ECU. Event-driven runnables
// inherit the period of their triggering producer; runnables whose rate
// cannot be derived are skipped with a warning. The output is
// deterministic for a given system.
func Build(sys *model.System) (map[string][]sched.Task, []string) {
	type tinfo struct {
		comp *model.SWC
		run  *model.Runnable
	}
	var warnings []string
	perECU := map[string][]tinfo{}
	for _, comp := range sys.Components {
		ecu := sys.Mapping[comp.Name]
		for i := range comp.Runnables {
			perECU[ecu] = append(perECU[ecu], tinfo{comp, &comp.Runnables[i]})
		}
	}
	out := map[string][]sched.Task{}
	for ecu, infos := range perECU {
		speed := 1.0
		if e := sys.ECUByName(ecu); e != nil {
			speed = e.Speed
		}
		// Rate-monotonic on the derived rate, matching the RTE generator
		// exactly; rate-less runnables sort first (treated as urgent
		// sporadic handlers) but are excluded from the analysis below.
		sort.SliceStable(infos, func(i, j int) bool {
			pi := sys.EffectivePeriod(infos[i].comp, infos[i].run)
			pj := sys.EffectivePeriod(infos[j].comp, infos[j].run)
			if pi != pj {
				return pi < pj
			}
			return infos[i].comp.Name+infos[i].run.Name < infos[j].comp.Name+infos[j].run.Name
		})
		for rank, ti := range infos {
			period := sys.EffectivePeriod(ti.comp, ti.run)
			if period <= 0 {
				warnings = append(warnings, fmt.Sprintf("%s.%s: no derivable rate; excluded from analysis", ti.comp.Name, ti.run.Name))
				continue
			}
			out[ecu] = append(out[ecu], sched.Task{
				Name:     ti.comp.Name + "." + ti.run.Name,
				C:        sim.Duration(float64(ti.run.WCETNominal) / speed),
				T:        period,
				D:        ti.run.Deadline,
				Priority: 1000 - rank,
			})
		}
	}
	return out, warnings
}
