// Package taskset derives the analyzable per-ECU task sets of a deployed
// component system, using the same priority assignment the RTE generator
// applies (event-driven runnables inherit their producer's rate; the
// resulting set is rate-monotonic). It sits below core so the deployment
// search can run the same schedulability analysis the verifier does,
// through the shared response-time cache.
package taskset

import (
	"fmt"
	"sort"

	"autorte/internal/model"
	"autorte/internal/sched"
	"autorte/internal/sim"
)

// Build derives the analyzable task set per ECU. Event-driven runnables
// inherit the period of their triggering producer; runnables whose rate
// cannot be derived are skipped with a warning. Passive standby replicas
// are excluded entirely — suspended until a fail-over promotes them, they
// exert no demand in the normal case the analysis models (deploy's
// fail-over validity check analyzes the post-promotion sets). The output
// — including the warning order — is deterministic for a given system.
func Build(sys *model.System) (map[string][]sched.Task, []string) {
	type tinfo struct {
		comp *model.SWC
		run  *model.Runnable
		// period is precomputed so the sort below doesn't re-derive it
		// O(n log n) times; sortKey matches the RTE generator's tie-break
		// (name concatenation) exactly.
		period  sim.Duration
		sortKey string
	}
	var warnings []string
	perECU := map[string][]tinfo{}
	var ecus []string
	for _, comp := range sys.Components {
		if comp.PassiveStandby() {
			continue
		}
		ecu := sys.Mapping[comp.Name]
		for i := range comp.Runnables {
			run := &comp.Runnables[i]
			if _, seen := perECU[ecu]; !seen {
				ecus = append(ecus, ecu)
			}
			perECU[ecu] = append(perECU[ecu], tinfo{
				comp: comp, run: run,
				period:  sys.EffectivePeriod(comp, run),
				sortKey: comp.Name + run.Name,
			})
		}
	}
	sort.Strings(ecus)
	out := map[string][]sched.Task{}
	for _, ecu := range ecus {
		infos := perECU[ecu]
		speed := 1.0
		if e := sys.ECUByName(ecu); e != nil {
			speed = e.Speed
		}
		// Rate-monotonic on the derived rate, matching the RTE generator
		// exactly; rate-less runnables sort first (treated as urgent
		// sporadic handlers) but are excluded from the analysis below.
		sort.SliceStable(infos, func(i, j int) bool {
			if infos[i].period != infos[j].period {
				return infos[i].period < infos[j].period
			}
			return infos[i].sortKey < infos[j].sortKey
		})
		for rank, ti := range infos {
			if ti.period <= 0 {
				warnings = append(warnings, fmt.Sprintf("%s.%s: no derivable rate; excluded from analysis", ti.comp.Name, ti.run.Name))
				continue
			}
			out[ecu] = append(out[ecu], sched.Task{
				Name:     ti.comp.Name + "." + ti.run.Name,
				C:        sim.Duration(float64(ti.run.WCETNominal) / speed),
				T:        ti.period,
				D:        ti.run.Deadline,
				Priority: 1000 - rank,
			})
		}
	}
	return out, warnings
}
