package e2e

import (
	"testing"

	"autorte/internal/can"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sched"
	"autorte/internal/sim"
)

func TestTaskStageBound(t *testing.T) {
	st := &TaskStage{
		Name: "ctrl",
		Tasks: []sched.Task{
			{Name: "hp", C: sim.MS(1), T: sim.MS(4), Priority: 2},
			{Name: "law", C: sim.MS(2), T: sim.MS(8), Priority: 1},
		},
		Target: "law",
	}
	b, err := st.Bound(0)
	if err != nil {
		t.Fatal(err)
	}
	if b != sim.MS(3) {
		t.Fatalf("bound %v, want 3ms", b)
	}
	// Upstream jitter increases the bound.
	b2, _ := st.Bound(sim.MS(2))
	if b2 != sim.MS(5) {
		t.Fatalf("bound with 2ms jitter %v, want 5ms (R = w + J)", b2)
	}
	st.Target = "ghost"
	if _, err := st.Bound(0); err == nil {
		t.Fatal("missing target accepted")
	}
}

func TestCANStageBound(t *testing.T) {
	cfg := can.Config{BitRate: 500_000}
	st := &CANStage{
		Name: "bus",
		Cfg:  cfg,
		Messages: []*can.Message{
			{Name: "m1", ID: 1, DLC: 8, Period: sim.MS(5)},
			{Name: "m2", ID: 2, DLC: 8, Period: sim.MS(10)},
		},
		Target: "m2",
	}
	b, err := st.Bound(0)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Fatal("zero CAN bound")
	}
	b2, _ := st.Bound(sim.MS(1))
	if b2 <= b {
		t.Fatalf("jitter did not increase CAN bound: %v vs %v", b2, b)
	}
	// Original message set must not be mutated.
	if st.Messages[1].Jitter != 0 {
		t.Fatal("stage mutated shared message set")
	}
}

func TestSamplingStageAbsorbsJitter(t *testing.T) {
	st := &SamplingStage{Name: "slot", Period: sim.MS(5), Transfer: sim.US(200)}
	b, err := st.Bound(sim.MS(100)) // input jitter irrelevant
	if err != nil {
		t.Fatal(err)
	}
	if b != sim.MS(5)+sim.US(200) {
		t.Fatalf("bound %v", b)
	}
	bad := &SamplingStage{Name: "x"}
	if _, err := bad.Bound(0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestChainBoundComposition(t *testing.T) {
	stages := []Stage{
		&TaskStage{Name: "s1", Tasks: []sched.Task{{Name: "a", C: sim.MS(1), T: sim.MS(10), Priority: 1}}, Target: "a"},
		&SamplingStage{Name: "bus", Period: sim.MS(2), Transfer: sim.US(100)},
		&TaskStage{Name: "s2", Tasks: []sched.Task{{Name: "b", C: sim.MS(1), T: sim.MS(10), Priority: 1}}, Target: "b"},
	}
	b, err := ChainBound(stages)
	if err != nil {
		t.Fatal(err)
	}
	// 1ms + (2ms + 0.1ms) + 1ms = 4.1ms; sampling absorbed the jitter so
	// stage 3 sees J=0.
	if b != sim.MS(4)+sim.US(100) {
		t.Fatalf("chain bound %v, want 4.1ms", b)
	}
}

func TestChainBoundPropagatesJitter(t *testing.T) {
	mk := func() []sched.Task {
		return []sched.Task{{Name: "x", C: sim.MS(1), T: sim.MS(10), Priority: 1}}
	}
	noSampling := []Stage{
		&TaskStage{Name: "s1", Tasks: mk(), Target: "x"},
		&TaskStage{Name: "s2", Tasks: mk(), Target: "x"},
	}
	b, err := ChainBound(noSampling)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 1: R=1ms. Stage 2: J=1ms + R=1ms -> contributes 2ms. Total 3ms.
	if b != sim.MS(3) {
		t.Fatalf("chain bound %v, want 3ms with jitter propagation", b)
	}
}

// The integration check: the probe measures a real platform chain and the
// measured max must stay under a generously composed analytic bound.
func TestProbeMeasuresChain(t *testing.T) {
	sys := probeSystem()
	p := rte.MustBuild(sys, rte.Options{})
	probe, err := Attach(p,
		Endpoint{SWC: "Sensor", Runnable: "sample", Port: "out", Elem: "v"},
		Endpoint{SWC: "Act", Runnable: "apply", Port: "in", Elem: "u"})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(sim.MS(200))
	if len(probe.Latencies) < 18 {
		t.Fatalf("probe captured %d tokens, want ~20", len(probe.Latencies))
	}
	if probe.Max() <= 0 {
		t.Fatal("non-positive measured latency")
	}
	// Generous sanity bound: the chain must complete well within one
	// sensor period.
	if probe.Max() >= sim.MS(10) {
		t.Fatalf("measured chain latency %v implausibly large", probe.Max())
	}
}

func TestAttachValidatesEndpoints(t *testing.T) {
	p := rte.MustBuild(probeSystem(), rte.Options{})
	if _, err := Attach(p, Endpoint{SWC: "Ghost"}, Endpoint{}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Attach(p,
		Endpoint{SWC: "Sensor", Runnable: "sample", Port: "out", Elem: "v"},
		Endpoint{SWC: "Act", Runnable: "ghost"}); err == nil {
		t.Fatal("bad sink accepted")
	}
}

func probeSystem() *model.System {
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	ifU := &model.PortInterface{
		Name: "IfU", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "u", Type: model.UInt16}},
	}
	return &model.System{
		Name:       "probe",
		Interfaces: []*model.PortInterface{ifV, ifU},
		Components: []*model.SWC{
			{
				Name:  "Sensor",
				Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "sample", WCETNominal: sim.US(50),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(10)},
					Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
				}},
			},
			{
				Name: "Ctrl",
				Ports: []model.Port{
					{Name: "in", Direction: model.Required, Interface: ifV},
					{Name: "cmd", Direction: model.Provided, Interface: ifU},
				},
				Runnables: []model.Runnable{{
					Name: "law", WCETNominal: sim.US(200),
					Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
					Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
					Writes:  []model.PortRef{{Port: "cmd", Elem: "u"}},
				}},
			},
			{
				Name:  "Act",
				Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifU}},
				Runnables: []model.Runnable{{
					Name: "apply", WCETNominal: sim.US(80),
					Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "u"},
					Reads:   []model.PortRef{{Port: "in", Elem: "u"}},
				}},
			},
		},
		ECUs: []*model.ECU{
			{Name: "e1", Speed: 1, Buses: []string{"can0"}},
			{Name: "e2", Speed: 1, Buses: []string{"can0"}},
		},
		Buses: []*model.Bus{{Name: "can0", Kind: model.BusCAN, BitRate: 500_000}},
		Connectors: []model.Connector{
			{FromSWC: "Sensor", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"},
			{FromSWC: "Ctrl", FromPort: "cmd", ToSWC: "Act", ToPort: "in"},
		},
		Mapping: map[string]string{"Sensor": "e1", "Ctrl": "e2", "Act": "e1"},
	}
}

func TestProbeMeasuresDataAge(t *testing.T) {
	sys := probeSystem()
	p := rte.MustBuild(sys, rte.Options{})
	probe, err := Attach(p,
		Endpoint{SWC: "Sensor", Runnable: "sample", Port: "out", Elem: "v"},
		Endpoint{SWC: "Act", Runnable: "apply", Port: "in", Elem: "u"})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(sim.MS(200))
	if len(probe.Ages) == 0 {
		t.Fatal("no data ages sampled")
	}
	// The sink is data-triggered: every execution sees freshly delivered
	// data, so ages stay tiny (well under the 10ms producer period) and
	// MaxAge <= Max first-through latency.
	if probe.MaxAge() > probe.Max() {
		t.Fatalf("max age %v exceeds max reaction %v for a data-triggered sink", probe.MaxAge(), probe.Max())
	}
}
