// Package e2e computes and measures end-to-end latencies of event chains
// (sensor → controller → actuator), the central extra-functional property
// §3's methodology verifies: an analytic bound composed from per-stage
// worst cases (holistic analysis with jitter propagation), and a
// measurement probe that stamps tokens through a running rte.Platform.
package e2e

import (
	"fmt"

	"autorte/internal/can"
	"autorte/internal/rte"
	"autorte/internal/sched"
	"autorte/internal/sim"
)

// Stage is one hop of an event chain for the analytic bound. Bound takes
// the accumulated release jitter from upstream stages and returns this
// stage's worst-case contribution.
type Stage interface {
	StageName() string
	Bound(inputJitter sim.Duration) (sim.Duration, error)
}

// TaskStage is a computation hop: the target task analyzed by
// fixed-priority RTA among its ECU's task set, with upstream jitter.
type TaskStage struct {
	Name   string
	Tasks  []sched.Task
	Target string
	// RTA optionally replaces sched.ResponseTimes — the verification
	// pipeline injects a memoized analysis here (sched.Cache) so repeated
	// chain bounds over unchanged task sets are free.
	RTA func([]sched.Task) ([]sched.Result, error)
}

// StageName implements Stage.
func (s *TaskStage) StageName() string { return s.Name }

// Bound implements Stage.
func (s *TaskStage) Bound(inputJitter sim.Duration) (sim.Duration, error) {
	tasks := append([]sched.Task(nil), s.Tasks...)
	found := 0
	for i := range tasks {
		if tasks[i].Name == s.Target {
			tasks[i].J += inputJitter
			found++
		}
	}
	if found == 0 {
		return 0, fmt.Errorf("e2e: stage %s: target task %s not in set", s.Name, s.Target)
	}
	if found > 1 {
		// A duplicated name would both double-count the upstream jitter
		// and make the result pick whichever duplicate analyzes first.
		return 0, fmt.Errorf("e2e: stage %s: target task %s appears %d times in set", s.Name, s.Target, found)
	}
	rta := s.RTA
	if rta == nil {
		rta = sched.ResponseTimes
	}
	rs, err := rta(tasks)
	if err != nil {
		return 0, err
	}
	for _, r := range rs {
		if r.Task.Name == s.Target {
			if !r.Converged {
				return 0, fmt.Errorf("e2e: stage %s: response time diverges", s.Name)
			}
			return r.WCRT, nil
		}
	}
	return 0, fmt.Errorf("e2e: stage %s: target vanished", s.Name)
}

// CANStage is a communication hop over a CAN channel: the target message
// analyzed by bus RTA with upstream jitter.
type CANStage struct {
	Name     string
	Cfg      can.Config
	Messages []*can.Message
	Target   string
	// Analyze optionally replaces can.Analyze — the verification pipeline
	// injects a memoized analysis here (can.Cache).
	Analyze func(can.Config, []*can.Message) ([]can.Response, error)
}

// StageName implements Stage.
func (s *CANStage) StageName() string { return s.Name }

// Bound implements Stage.
func (s *CANStage) Bound(inputJitter sim.Duration) (sim.Duration, error) {
	msgs := make([]*can.Message, len(s.Messages))
	found := 0
	for i, m := range s.Messages {
		cp := *m
		if cp.Name == s.Target {
			cp.Jitter += inputJitter
			found++
		}
		msgs[i] = &cp
	}
	if found == 0 {
		return 0, fmt.Errorf("e2e: stage %s: target message %s not in set", s.Name, s.Target)
	}
	if found > 1 {
		return 0, fmt.Errorf("e2e: stage %s: target message %s appears %d times in set", s.Name, s.Target, found)
	}
	analyze := s.Analyze
	if analyze == nil {
		analyze = can.Analyze
	}
	rs, err := analyze(s.Cfg, msgs)
	if err != nil {
		return 0, err
	}
	for _, r := range rs {
		if r.Message.Name == s.Target {
			if !r.Schedulable {
				return 0, fmt.Errorf("e2e: stage %s: message %s unschedulable", s.Name, s.Target)
			}
			return r.WCRT, nil
		}
	}
	return 0, fmt.Errorf("e2e: stage %s: target vanished", s.Name)
}

// SamplingStage is a time-triggered hop that polls its input periodically
// (a TT slot, a periodic reader): worst case is one full period of waiting
// plus the transfer/execution time, independent of upstream jitter — this
// is how time-triggered designs cut jitter accumulation.
type SamplingStage struct {
	Name     string
	Period   sim.Duration
	Transfer sim.Duration
}

// StageName implements Stage.
func (s *SamplingStage) StageName() string { return s.Name }

// Bound implements Stage.
func (s *SamplingStage) Bound(sim.Duration) (sim.Duration, error) {
	if s.Period <= 0 {
		return 0, fmt.Errorf("e2e: sampling stage %s: non-positive period", s.Name)
	}
	return s.Period + s.Transfer, nil
}

// ChainBound composes per-stage worst cases into an end-to-end bound,
// propagating each stage's response as the next stage's release jitter
// (standard holistic composition for event-driven chains; sampling stages
// absorb jitter).
func ChainBound(stages []Stage) (sim.Duration, error) {
	var total, jitter sim.Duration
	for _, st := range stages {
		b, err := st.Bound(jitter)
		if err != nil {
			return 0, err
		}
		total += b
		if _, sampling := st.(*SamplingStage); sampling {
			jitter = 0
		} else {
			jitter = b
		}
	}
	return total, nil
}

// Probe measures chain latencies on a running platform by stamping a
// sequence token at the source runnable and recovering it at the sink.
// Attach owns the source and sink behaviours; intermediate runnables may
// keep their own behaviours as long as they propagate the first read
// value to their writes (the RTE default behaviour does).
type Probe struct {
	produceAt map[int64]sim.Time
	seq       int64
	// Latencies holds one first-through latency per token that reached
	// the sink (reaction-time semantics: how fast does new data arrive).
	Latencies []sim.Duration
	// Ages holds the input data age observed at every sink execution
	// (max-age semantics: how stale is the data the consumer acts on).
	// Unlike Latencies, Ages also samples executions that saw no fresh
	// token.
	Ages []sim.Duration
}

// Endpoint names a runnable and the port element it produces or consumes.
type Endpoint struct {
	SWC, Runnable, Port, Elem string
}

// Attach instruments source and sink on the platform and returns the
// probe. Call before Platform.Run.
func Attach(p *rte.Platform, source, sink Endpoint) (*Probe, error) {
	pr := &Probe{produceAt: map[int64]sim.Time{}}
	err := p.SetBehavior(source.SWC, source.Runnable, func(c *rte.Context) {
		pr.seq++
		tok := pr.seq % 60000 // fits a 16-bit element exactly
		pr.produceAt[tok] = c.Now()
		c.Write(source.Port, source.Elem, float64(tok))
	})
	if err != nil {
		return nil, err
	}
	err = p.SetBehavior(sink.SWC, sink.Runnable, func(c *rte.Context) {
		tok := int64(c.Read(sink.Port, sink.Elem))
		if t0, ok := pr.produceAt[tok]; ok {
			pr.Latencies = append(pr.Latencies, c.Now()-t0)
			delete(pr.produceAt, tok)
		}
		if age := c.Age(sink.Port, sink.Elem); age >= 0 {
			pr.Ages = append(pr.Ages, age)
		}
	})
	if err != nil {
		return nil, err
	}
	return pr, nil
}

// Max returns the worst measured first-through latency (0 when nothing
// arrived).
func (pr *Probe) Max() sim.Duration {
	var m sim.Duration
	for _, l := range pr.Latencies {
		if l > m {
			m = l
		}
	}
	return m
}

// MaxAge returns the worst observed input data age at the sink (0 when
// the sink never ran with data).
func (pr *Probe) MaxAge() sim.Duration {
	var m sim.Duration
	for _, a := range pr.Ages {
		if a > m {
			m = a
		}
	}
	return m
}
