// Package e2e computes and measures end-to-end latencies of event chains
// (sensor → controller → actuator), the central extra-functional property
// §3's methodology verifies: an analytic bound composed from per-stage
// worst cases (holistic analysis with jitter propagation), and a
// measurement probe that stamps tokens through a running rte.Platform.
package e2e

import (
	"fmt"

	"autorte/internal/can"
	"autorte/internal/rte"
	"autorte/internal/sched"
	"autorte/internal/sim"
)

// Stage is one hop of an event chain for the analytic bound. Bound takes
// the accumulated release jitter from upstream stages and returns this
// stage's worst-case contribution.
type Stage interface {
	StageName() string
	Bound(inputJitter sim.Duration) (sim.Duration, error)
}

// TaskStage is a computation hop: the target task analyzed by
// fixed-priority RTA among its ECU's task set, with upstream jitter.
type TaskStage struct {
	Name   string
	Tasks  []sched.Task
	Target string
	// RTA optionally replaces sched.ResponseTimes — the verification
	// pipeline injects a memoized analysis here (sched.Cache) so repeated
	// chain bounds over unchanged task sets are free.
	RTA func([]sched.Task) ([]sched.Result, error)
	// Results optionally carries the pre-resolved analysis of Tasks; when
	// non-nil, Bound reads it instead of calling RTA. Callers that bound
	// many stages over the same task set resolve the analysis once and
	// share it here (read-only).
	Results []sched.Result
}

// StageName implements Stage.
func (s *TaskStage) StageName() string { return s.Name }

// Bound implements Stage.
//
// Fixed-priority RTA treats a task's own release jitter purely
// additively: the busy-period recurrence interferes via the OTHER tasks'
// jitters only, and R = w + J. Bumping the target's jitter therefore
// shifts its response by exactly the bump and changes nothing else — so
// instead of cloning the task set per chain stage (which would defeat
// the memoized analysis with a one-off key), Bound analyzes the shared,
// unmodified set — the same analysis the ECU schedulability verdict
// memoizes — and adds the upstream jitter to the target's response.
func (s *TaskStage) Bound(inputJitter sim.Duration) (sim.Duration, error) {
	found := 0
	for i := range s.Tasks {
		if s.Tasks[i].Name == s.Target {
			found++
		}
	}
	if found == 0 {
		return 0, fmt.Errorf("e2e: stage %s: target task %s not in set", s.Name, s.Target)
	}
	if found > 1 {
		// A duplicated name would both double-count the upstream jitter
		// and make the result pick whichever duplicate analyzes first.
		return 0, fmt.Errorf("e2e: stage %s: target task %s appears %d times in set", s.Name, s.Target, found)
	}
	rs := s.Results
	if rs == nil {
		rta := s.RTA
		if rta == nil {
			rta = sched.ResponseTimes
		}
		var err error
		rs, err = rta(s.Tasks)
		if err != nil {
			return 0, err
		}
	}
	for _, r := range rs {
		if r.Task.Name == s.Target {
			if !r.Converged {
				return 0, fmt.Errorf("e2e: stage %s: response time diverges", s.Name)
			}
			return r.WCRT + inputJitter, nil
		}
	}
	return 0, fmt.Errorf("e2e: stage %s: target vanished", s.Name)
}

// CANStage is a communication hop over a CAN channel: the target message
// analyzed by bus RTA with upstream jitter.
type CANStage struct {
	Name     string
	Cfg      can.Config
	Messages []*can.Message
	Target   string
	// Analyze optionally replaces can.Analyze — the verification pipeline
	// injects a memoized analysis here (can.Cache).
	Analyze func(can.Config, []*can.Message) ([]can.Response, error)
	// Responses optionally carries the pre-resolved analysis of Messages;
	// when non-nil, Bound reads it instead of calling Analyze (read-only).
	Responses []can.Response
}

// StageName implements Stage.
func (s *CANStage) StageName() string { return s.Name }

// Bound implements Stage.
//
// The CAN busy-period recurrence depends only on the interferers'
// jitters, never the target's own: the target's jitter enters the
// analysis purely additively (R = J + w + C) and in the deadline
// comparison. So instead of cloning the message set to bump the target's
// jitter — which would make every chain stage a distinct analysis — Bound
// analyzes the shared, unmodified set (one memoized analysis per bus,
// the same one the bus schedulability verdict uses) and folds the
// upstream jitter in afterwards, re-checking the deadline under the
// shifted response.
func (s *CANStage) Bound(inputJitter sim.Duration) (sim.Duration, error) {
	var target *can.Message
	found := 0
	for _, m := range s.Messages {
		if m.Name == s.Target {
			target = m
			found++
		}
	}
	if found == 0 {
		return 0, fmt.Errorf("e2e: stage %s: target message %s not in set", s.Name, s.Target)
	}
	if found > 1 {
		return 0, fmt.Errorf("e2e: stage %s: target message %s appears %d times in set", s.Name, s.Target, found)
	}
	rs := s.Responses
	if rs == nil {
		analyze := s.Analyze
		if analyze == nil {
			analyze = can.Analyze
		}
		var err error
		rs, err = analyze(s.Cfg, s.Messages)
		if err != nil {
			return 0, err
		}
	}
	for _, r := range rs {
		if r.Message.Name == s.Target {
			// Shift by the upstream jitter and re-apply the verdict's
			// deadline conditions. Schedulable already covers convergence,
			// level utilization, and the unshifted deadlines, all of which
			// only get harder under added jitter.
			bumped := r.WCRT + inputJitter
			d := target.Deadline
			if d <= 0 {
				d = target.Period
			}
			if !r.Schedulable || bumped > d || bumped > target.Period {
				return 0, fmt.Errorf("e2e: stage %s: message %s unschedulable", s.Name, s.Target)
			}
			return bumped, nil
		}
	}
	return 0, fmt.Errorf("e2e: stage %s: target vanished", s.Name)
}

// SamplingStage is a time-triggered hop that polls its input periodically
// (a TT slot, a periodic reader): worst case is one full period of waiting
// plus the transfer/execution time, independent of upstream jitter — this
// is how time-triggered designs cut jitter accumulation.
type SamplingStage struct {
	Name     string
	Period   sim.Duration
	Transfer sim.Duration
}

// StageName implements Stage.
func (s *SamplingStage) StageName() string { return s.Name }

// Bound implements Stage.
func (s *SamplingStage) Bound(sim.Duration) (sim.Duration, error) {
	if s.Period <= 0 {
		return 0, fmt.Errorf("e2e: sampling stage %s: non-positive period", s.Name)
	}
	return s.Period + s.Transfer, nil
}

// ChainBound composes per-stage worst cases into an end-to-end bound,
// propagating each stage's response as the next stage's release jitter
// (standard holistic composition for event-driven chains; sampling stages
// absorb jitter).
func ChainBound(stages []Stage) (sim.Duration, error) {
	var total, jitter sim.Duration
	for _, st := range stages {
		b, err := st.Bound(jitter)
		if err != nil {
			return 0, err
		}
		total += b
		if _, sampling := st.(*SamplingStage); sampling {
			jitter = 0
		} else {
			jitter = b
		}
	}
	return total, nil
}

// Probe measures chain latencies on a running platform by stamping a
// sequence token at the source runnable and recovering it at the sink.
// Attach owns the source and sink behaviours; intermediate runnables may
// keep their own behaviours as long as they propagate the first read
// value to their writes (the RTE default behaviour does).
type Probe struct {
	produceAt map[int64]sim.Time
	seq       int64
	// Latencies holds one first-through latency per token that reached
	// the sink (reaction-time semantics: how fast does new data arrive).
	Latencies []sim.Duration
	// Ages holds the input data age observed at every sink execution
	// (max-age semantics: how stale is the data the consumer acts on).
	// Unlike Latencies, Ages also samples executions that saw no fresh
	// token.
	Ages []sim.Duration
}

// Endpoint names a runnable and the port element it produces or consumes.
type Endpoint struct {
	SWC, Runnable, Port, Elem string
}

// Attach instruments source and sink on the platform and returns the
// probe. Call before Platform.Run.
func Attach(p *rte.Platform, source, sink Endpoint) (*Probe, error) {
	pr := &Probe{produceAt: map[int64]sim.Time{}}
	err := p.SetBehavior(source.SWC, source.Runnable, func(c *rte.Context) {
		pr.seq++
		tok := pr.seq % 60000 // fits a 16-bit element exactly
		pr.produceAt[tok] = c.Now()
		c.Write(source.Port, source.Elem, float64(tok))
	})
	if err != nil {
		return nil, err
	}
	err = p.SetBehavior(sink.SWC, sink.Runnable, func(c *rte.Context) {
		tok := int64(c.Read(sink.Port, sink.Elem))
		if t0, ok := pr.produceAt[tok]; ok {
			pr.Latencies = append(pr.Latencies, c.Now()-t0)
			delete(pr.produceAt, tok)
		}
		if age := c.Age(sink.Port, sink.Elem); age >= 0 {
			pr.Ages = append(pr.Ages, age)
		}
	})
	if err != nil {
		return nil, err
	}
	return pr, nil
}

// Max returns the worst measured first-through latency (0 when nothing
// arrived).
func (pr *Probe) Max() sim.Duration {
	var m sim.Duration
	for _, l := range pr.Latencies {
		if l > m {
			m = l
		}
	}
	return m
}

// MaxAge returns the worst observed input data age at the sink (0 when
// the sink never ran with data).
func (pr *Probe) MaxAge() sim.Duration {
	var m sim.Duration
	for _, a := range pr.Ages {
		if a > m {
			m = a
		}
	}
	return m
}
