package e2e

import (
	"strings"
	"testing"

	"autorte/internal/can"
	"autorte/internal/sched"
	"autorte/internal/sim"
)

// A task set accidentally containing the target twice must be rejected:
// silently adding the upstream jitter to both copies double-counts
// interference and the reported WCRT depends on which copy wins.
func TestTaskStageRejectsDuplicateTarget(t *testing.T) {
	st := &TaskStage{
		Name: "stage",
		Tasks: []sched.Task{
			{Name: "dup", C: sim.MS(1), T: sim.MS(10), Priority: 2},
			{Name: "dup", C: sim.MS(1), T: sim.MS(10), Priority: 1},
		},
		Target: "dup",
	}
	_, err := st.Bound(sim.MS(1))
	if err == nil {
		t.Fatal("duplicate target accepted")
	}
	if !strings.Contains(err.Error(), "appears 2 times") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestTaskStageSingleTargetStillWorks(t *testing.T) {
	st := &TaskStage{
		Name: "stage",
		Tasks: []sched.Task{
			{Name: "hp", C: sim.MS(1), T: sim.MS(5), Priority: 2},
			{Name: "tgt", C: sim.MS(1), T: sim.MS(10), Priority: 1},
		},
		Target: "tgt",
	}
	b, err := st.Bound(0)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Fatalf("bound = %v", b)
	}
}

func TestTaskStageCustomRTAIsUsed(t *testing.T) {
	cache := sched.NewCache()
	st := &TaskStage{
		Name: "stage",
		Tasks: []sched.Task{
			{Name: "tgt", C: sim.MS(1), T: sim.MS(10), Priority: 1},
		},
		Target: "tgt",
		RTA:    cache.ResponseTimes,
	}
	if _, err := st.Bound(0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Bound(0); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

func TestCANStageRejectsDuplicateTarget(t *testing.T) {
	st := &CANStage{
		Name: "bus",
		Cfg:  can.Config{BitRate: 500_000},
		Messages: []*can.Message{
			{Name: "dup", ID: 0x100, DLC: 4, Period: sim.MS(10)},
			{Name: "dup", ID: 0x101, DLC: 4, Period: sim.MS(10)},
		},
		Target: "dup",
	}
	_, err := st.Bound(0)
	if err == nil {
		t.Fatal("duplicate target accepted")
	}
	if !strings.Contains(err.Error(), "appears 2 times") {
		t.Fatalf("unexpected error: %v", err)
	}
}
