package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		k.At(at, func() { got = append(got, k.Now()) })
	}
	k.Run(Infinity)
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d ran at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKernelSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.At(100, func() { order = append(order, i) })
	}
	k.Run(Infinity)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of FIFO order: %v", order)
		}
	}
}

func TestKernelSameInstantPriority(t *testing.T) {
	k := NewKernel()
	var order []string
	k.AtPrio(100, 5, func() { order = append(order, "low") })
	k.AtPrio(100, 1, func() { order = append(order, "high") })
	k.Run(Infinity)
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("priority order wrong: %v", order)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	e := k.At(10, func() { ran = true })
	if !e.Pending() {
		t.Fatal("event should be pending before cancel")
	}
	e.Cancel()
	if e.Pending() {
		t.Fatal("event should not be pending after cancel")
	}
	k.Run(Infinity)
	if ran {
		t.Fatal("cancelled event still ran")
	}
	e.Cancel() // double-cancel is a no-op
}

func TestKernelHorizonStopsClock(t *testing.T) {
	k := NewKernel()
	var ran []Time
	k.At(10, func() { ran = append(ran, 10) })
	k.At(100, func() { ran = append(ran, 100) })
	k.At(200, func() { ran = append(ran, 200) })
	n := k.Run(100)
	if n != 2 {
		t.Fatalf("ran %d events before horizon, want 2 (event at horizon included)", n)
	}
	if k.Now() != 100 {
		t.Fatalf("clock at %v, want horizon 100", k.Now())
	}
	// Remaining event still fires on a later Run.
	k.Run(Infinity)
	if len(ran) != 3 || ran[2] != 200 {
		t.Fatalf("post-horizon event lost: %v", ran)
	}
}

func TestKernelEmptyQueueAdvancesToHorizon(t *testing.T) {
	k := NewKernel()
	k.Run(500)
	if k.Now() != 500 {
		t.Fatalf("clock at %v, want 500", k.Now())
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run(Infinity)
}

func TestKernelHalt(t *testing.T) {
	k := NewKernel()
	count := 0
	k.At(1, func() { count++; k.Halt() })
	k.At(2, func() { count++ })
	k.Run(Infinity)
	if count != 1 {
		t.Fatalf("Halt did not stop run loop: %d events ran", count)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
}

func TestKernelEventsScheduledDuringRun(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.At(10, func() {
		k.After(5, func() { fired = append(fired, k.Now()) })
	})
	k.Run(Infinity)
	if len(fired) != 1 || fired[0] != 15 {
		t.Fatalf("nested scheduling failed: %v", fired)
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func() []Time {
		k := NewKernel()
		r := NewRand(42)
		var log []Time
		var tick func()
		tick = func() {
			log = append(log, k.Now())
			if k.Now() < 10000 {
				k.After(r.Range(1, 100), tick)
			}
		}
		k.At(0, tick)
		k.Run(Infinity)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{Infinity, "inf"},
		{2 * Second, "2s"},
		{MS(1.5), "1.5ms"},
		{US(250), "250us"},
		{42, "42ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestRandRangeBounds(t *testing.T) {
	f := func(seed uint64, a, b uint32) bool {
		lo, hi := Duration(a), Duration(a)+Duration(b)
		v := NewRand(seed).Range(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRand(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandFloat64InUnitInterval(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRandForkIndependence(t *testing.T) {
	a := NewRand(1)
	b := a.Fork()
	// The fork must not share state with the parent.
	av, bv := a.Uint64(), b.Uint64()
	if av == bv {
		t.Fatal("fork produced identical stream start")
	}
}

func TestKernelExecutedCount(t *testing.T) {
	k := NewKernel()
	for i := Time(0); i < 10; i++ {
		k.At(i, func() {})
	}
	k.Run(Infinity)
	if k.Executed() != 10 {
		t.Fatalf("Executed() = %d, want 10", k.Executed())
	}
}
