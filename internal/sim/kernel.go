package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback in virtual time.
type Event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among events at the same instant
	prio   int    // secondary order at the same instant; lower runs first
	fn     func()
	index  int // heap index; -1 once removed
	dead   bool
	Label  string // optional, for debugging traces
	kernel *Kernel
}

// At reports the virtual time the event fires at.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.dead || e.index < 0 {
		if e != nil {
			e.dead = true
		}
		return
	}
	e.dead = true
	heap.Remove(&e.kernel.queue, e.index)
}

// Pending reports whether the event is still scheduled.
func (e *Event) Pending() bool { return e != nil && !e.dead && e.index >= 0 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a deterministic discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on a single
// goroutine.
type Kernel struct {
	now    Time
	queue  eventQueue
	seq    uint64
	events uint64 // total events executed
	halted bool
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Executed returns the number of events executed so far.
func (k *Kernel) Executed() uint64 { return k.events }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering time
// would destroy determinism.
func (k *Kernel) At(t Time, fn func()) *Event { return k.at(t, 0, fn, "") }

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Duration, fn func()) *Event { return k.at(k.now+d, 0, fn, "") }

// AtPrio schedules fn at time t with an explicit same-instant priority;
// lower prio runs first. Substrates use this to order, e.g., budget
// replenishment before task release at the same tick.
func (k *Kernel) AtPrio(t Time, prio int, fn func()) *Event { return k.at(t, prio, fn, "") }

// AtLabeled is At with a debug label attached to the event.
func (k *Kernel) AtLabeled(t Time, label string, fn func()) *Event { return k.at(t, 0, fn, label) }

func (k *Kernel) at(t Time, prio int, fn func(), label string) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &Event{at: t, seq: k.seq, prio: prio, fn: fn, Label: label, kernel: k}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// Every schedules fn on a fixed virtual-time grid: at start, then every
// step, re-arming itself until cancelled. prio orders the grid tick
// against same-instant model events (observability samplers use a high
// prio so they read state after the substrate has settled the instant).
// The returned cancel stops the grid; it is safe to call more than once.
func (k *Kernel) Every(start Time, step Duration, prio int, fn func(now Time)) (cancel func()) {
	if step <= 0 {
		panic("sim: Every step must be positive")
	}
	stopped := false
	var ev *Event
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn(k.now)
		ev = k.AtPrio(k.now+step, prio, tick)
	}
	ev = k.AtPrio(start, prio, tick)
	return func() {
		stopped = true
		ev.Cancel()
	}
}

// Halt stops the run loop after the current event returns.
func (k *Kernel) Halt() { k.halted = true }

// Step executes the next pending event and returns true, or returns false
// if the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*Event)
	if e.dead {
		return k.Step()
	}
	k.now = e.at
	e.dead = true
	k.events++
	e.fn()
	return true
}

// Run executes events until the queue drains, the horizon passes, or Halt
// is called. Events scheduled exactly at the horizon still execute; the
// clock finishes at min(horizon, last event time). It returns the number
// of events executed by this call.
func (k *Kernel) Run(horizon Time) uint64 {
	k.halted = false
	start := k.events
	for !k.halted && len(k.queue) > 0 {
		if k.queue[0].at > horizon {
			k.now = horizon
			break
		}
		k.Step()
	}
	if len(k.queue) == 0 && k.now < horizon {
		k.now = horizon
	}
	return k.events - start
}

// Pending returns the number of scheduled (non-cancelled) events.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.queue {
		if !e.dead {
			n++
		}
	}
	return n
}
