package sim

// Rand is a deterministic SplitMix64 pseudo-random generator. Simulations
// never use math/rand's global state: every stochastic model component owns
// a Rand seeded from the experiment configuration, so runs are reproducible
// bit-for-bit regardless of package initialization order.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits (SplitMix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform duration in [lo, hi]. It panics if hi < lo.
func (r *Rand) Range(lo, hi Duration) Duration {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + Duration(r.Uint64()%uint64(hi-lo+1))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator. Substreams let each model
// component consume randomness without affecting its siblings' sequences.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xd1b54a32d192ed03)
}
