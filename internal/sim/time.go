// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every timed substrate in autorte (the OSEK-like kernel, the CAN, FlexRay,
// TTP and NoC models) executes on top of this kernel in virtual time. The
// kernel is strictly single-threaded: no goroutine ever advances the clock,
// so neither the Go scheduler nor garbage collection can perturb simulated
// timing. This is the substitution that makes timing-isolation claims
// testable in Go at all (see DESIGN.md, "Substitutions").
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
// Virtual time is unrelated to the wall clock.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Convenient duration units, mirroring time.Nanosecond et al. but in
// virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Infinity is a sentinel meaning "never" for deadlines and horizons.
const Infinity Time = 1<<63 - 1

// Milliseconds returns t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Std converts a virtual duration to a time.Duration for interoperability
// with formatting helpers. Virtual and wall time share the nanosecond base.
func (t Time) Std() time.Duration { return time.Duration(t) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == Infinity:
		return "inf"
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// MS builds a duration from milliseconds. It is the most common unit in
// automotive task specifications (periods of 1–1000 ms).
func MS(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// US builds a duration from microseconds.
func US(us float64) Duration { return Duration(us * float64(Microsecond)) }
