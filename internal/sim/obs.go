package sim

import "autorte/internal/obs"

// Observe registers the kernel's execution metrics into a registry:
//
//	sim_events_executed_total  events executed since kernel creation
//	sim_queue_depth            scheduled (non-cancelled) events pending
//
// The readers run at snapshot time on the snapshotting goroutine; like
// the kernel itself they are not safe to invoke concurrently with Run —
// snapshot between runs, which is also the only time the values are
// deterministic.
func (k *Kernel) Observe(reg *obs.Registry) {
	reg.CounterFunc("sim_events_executed_total",
		"Events executed by the discrete-event kernel.",
		func() uint64 { return k.events })
	reg.GaugeFunc("sim_queue_depth",
		"Scheduled (non-cancelled) events pending in the kernel queue.",
		func() float64 { return float64(k.Pending()) })
}
