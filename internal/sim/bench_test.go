package sim

import "testing"

// BenchmarkKernelThroughput measures raw event dispatch: self-rescheduling
// timer chains, the dominant pattern in every substrate.
func BenchmarkKernelThroughput(b *testing.B) {
	k := NewKernel()
	var tick func()
	count := 0
	tick = func() {
		count++
		if count < b.N {
			k.After(100, tick)
		}
	}
	b.ResetTimer()
	k.After(0, tick)
	k.Run(Infinity)
}

// BenchmarkKernelContendedQueue measures heap behaviour with many pending
// events (64 concurrent timer chains).
func BenchmarkKernelContendedQueue(b *testing.B) {
	k := NewKernel()
	remaining := b.N
	var mk func(phase Duration) func()
	mk = func(phase Duration) func() {
		var f func()
		f = func() {
			remaining--
			if remaining > 0 {
				k.After(phase, f)
			}
		}
		return f
	}
	b.ResetTimer()
	for i := 0; i < 64 && i < b.N; i++ {
		k.After(Duration(i), mk(Duration(50+i)))
	}
	k.Run(Infinity)
}

// BenchmarkKernelCancel measures schedule+cancel pairs (budget checkpoints
// are cancelled on every reschedule).
func BenchmarkKernelCancel(b *testing.B) {
	k := NewKernel()
	for i := 0; i < b.N; i++ {
		e := k.At(Time(i)+1_000_000, func() {})
		e.Cancel()
		if i%1024 == 0 {
			k.Run(k.Now() + 10) // drain dead events
		}
	}
}

// BenchmarkRand measures the SplitMix64 generator.
func BenchmarkRand(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
