package sim

import "testing"

func TestEveryGrid(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	k.Every(MS(1), MS(2), 0, func(now Time) { ticks = append(ticks, now) })
	k.Run(MS(8))
	want := []Time{MS(1), MS(3), MS(5), MS(7)}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestEveryCancel(t *testing.T) {
	k := NewKernel()
	n := 0
	var cancel func()
	cancel = k.Every(0, MS(1), 0, func(now Time) {
		n++
		if n == 3 {
			cancel()
		}
	})
	k.Run(MS(10))
	if n != 3 {
		t.Fatalf("ticks after cancel = %d, want 3", n)
	}
	cancel() // idempotent
}

func TestEveryPrioOrdersAgainstSameInstant(t *testing.T) {
	k := NewKernel()
	var order []string
	k.AtPrio(MS(1), 50, func() { order = append(order, "model") })
	k.Every(MS(1), MS(5), 99, func(now Time) { order = append(order, "sample") })
	k.Run(MS(1))
	if len(order) != 2 || order[0] != "model" || order[1] != "sample" {
		t.Fatalf("order = %v, want model before sample", order)
	}
}

func TestEveryRejectsBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero step accepted")
		}
	}()
	NewKernel().Every(0, 0, 0, func(Time) {})
}
