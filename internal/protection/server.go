// Package protection implements the timing-isolation mechanisms the paper
// calls for in §1 and §4: reservation servers (polling, deferrable,
// sporadic) that bound the CPU consumption of a group of tasks, static
// time-triggered dispatch tables that partition the timeline, and temporal
// firewalls for state-message exchange across partition boundaries.
//
// All mechanisms plug into the osek CPU through the osek.Throttle
// interface, so the same task set can be simulated with and without
// isolation — which is exactly experiment E1/E2's comparison.
package protection

import (
	"fmt"

	"autorte/internal/sim"
)

// ServerKind selects the replenishment policy of a reservation server.
type ServerKind uint8

const (
	// Deferrable preserves unused budget until the next full replenishment.
	Deferrable ServerKind = iota
	// Polling discards the budget whenever the server has no pending work
	// at (or after) a replenishment instant.
	Polling
	// Sporadic replenishes each consumed chunk one period after the chunk's
	// consumption started (simplified sporadic server).
	Sporadic
)

func (k ServerKind) String() string {
	switch k {
	case Deferrable:
		return "deferrable"
	case Polling:
		return "polling"
	default:
		return "sporadic"
	}
}

// Server is a CPU reservation: at most Budget execution every Period for
// the tasks it governs. It implements osek.Throttle.
type Server struct {
	Name   string
	Kind   ServerKind
	Budget sim.Duration
	Period sim.Duration

	k       *sim.Kernel
	notify  func()
	budget  sim.Duration
	pending bool
	// replenishments counts full replenishment instants (observability).
	replenishments int64
}

// NewServer validates parameters and creates a server.
func NewServer(name string, kind ServerKind, budget, period sim.Duration) (*Server, error) {
	if budget <= 0 || period <= 0 {
		return nil, fmt.Errorf("protection: server %s: budget and period must be positive", name)
	}
	if budget > period {
		return nil, fmt.Errorf("protection: server %s: budget %v exceeds period %v", name, budget, period)
	}
	return &Server{Name: name, Kind: kind, Budget: budget, Period: period}, nil
}

// MustServer is NewServer that panics on error.
func MustServer(name string, kind ServerKind, budget, period sim.Duration) *Server {
	s, err := NewServer(name, kind, budget, period)
	if err != nil {
		panic(err)
	}
	return s
}

// Utilization returns the reserved fraction Budget/Period.
func (s *Server) Utilization() float64 { return float64(s.Budget) / float64(s.Period) }

// Replenishments returns how many full replenishment instants occurred.
func (s *Server) Replenishments() int64 { return s.replenishments }

// Bind implements osek.Throttle.
func (s *Server) Bind(k *sim.Kernel, notify func()) {
	s.k = k
	s.notify = notify
	s.budget = s.Budget
	if s.Kind == Polling {
		// A polling server starts idle: its budget is only granted at
		// replenishment instants where work is pending.
		s.budget = 0
	}
	if s.Kind != Sporadic {
		s.scheduleReplenish(s.Period)
	}
}

func (s *Server) scheduleReplenish(at sim.Time) {
	// Replenishment runs before task releases at the same instant
	// (priority 1 < the CPU's release priority 10) so a server task
	// activated exactly at the boundary sees a full budget.
	s.k.AtPrio(at, 1, func() {
		// First notify lets the CPU charge any in-flight execution against
		// the OLD budget (reschedule charges up to now); only then is the
		// budget reset. A second notify re-dispatches with fresh supply.
		s.notify()
		s.replenishments++
		s.budget = s.Budget
		if s.Kind == Polling && !s.pending {
			s.budget = 0
		}
		s.scheduleReplenish(at + s.Period)
		s.notify()
	})
}

// Available implements osek.Throttle.
func (s *Server) Available(sim.Time) sim.Duration { return s.budget }

// Charge implements osek.Throttle.
func (s *Server) Charge(now sim.Time, d sim.Duration) {
	s.budget -= d
	if s.budget < 0 {
		s.budget = 0
	}
	if s.Kind == Sporadic {
		// Simplified sporadic server: the consumed chunk comes back one
		// period after its consumption began.
		start := now - d
		s.k.At(start+s.Period, func() {
			s.budget += d
			if s.budget > s.Budget {
				s.budget = s.Budget
			}
			s.notify()
		})
	}
}

// Pending implements osek.Throttle.
func (s *Server) Pending(now sim.Time, pending bool) {
	s.pending = pending
	if s.Kind == Polling && !pending {
		// A polling server drains its budget the moment it idles.
		s.budget = 0
	}
}
