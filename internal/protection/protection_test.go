package protection

import (
	"testing"

	"autorte/internal/osek"
	"autorte/internal/sim"
	"autorte/internal/trace"
)

// Compile-time checks: protection mechanisms satisfy osek.Throttle.
var (
	_ osek.Throttle = (*Server)(nil)
	_ osek.Throttle = (*Partition)(nil)
)

func setup() (*sim.Kernel, *osek.CPU, *trace.Recorder) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	return k, osek.NewCPU(k, "ecu", 1, rec), rec
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer("s", Deferrable, 0, sim.MS(10)); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewServer("s", Deferrable, sim.MS(11), sim.MS(10)); err == nil {
		t.Fatal("budget > period accepted")
	}
	s := MustServer("s", Deferrable, sim.MS(2), sim.MS(10))
	if u := s.Utilization(); u != 0.2 {
		t.Fatalf("utilization %v, want 0.2", u)
	}
}

func TestDeferrableServerCapsConsumption(t *testing.T) {
	k, c, rec := setup()
	srv := MustServer("srvA", Deferrable, sim.MS(2), sim.MS(10))
	// A greedy served task wants 100% CPU at top priority; the server must
	// cap it at 20%, letting the lower-priority victim run.
	c.MustAddTask(&osek.Task{
		Name: "greedy", Priority: 10, WCET: sim.MS(10), Period: sim.MS(10),
		Throttle: srv,
	})
	c.MustAddTask(&osek.Task{Name: "victim", Priority: 1, WCET: sim.MS(5), Period: sim.MS(10)})
	c.Start()
	k.Run(sim.MS(200))
	if rec.Count(trace.Miss, "victim") != 0 {
		t.Fatalf("victim missed %d deadlines; server failed to isolate", rec.Count(trace.Miss, "victim"))
	}
	// The greedy task gets only 2ms per 10ms period: each 10ms job needs
	// five periods, so at most 4 jobs complete in 200ms.
	if got := rec.Count(trace.Finish, "greedy"); got < 3 || got > 4 {
		t.Fatalf("greedy finished %d jobs, want 3..4 (throughput capped at 20%%)", got)
	}
	if rec.Count(trace.Drop, "greedy") == 0 {
		t.Fatal("greedy overload produced no dropped activations")
	}
	util := c.Utilization()
	if util < 0.65 || util > 0.75 {
		t.Fatalf("cpu utilization %v, want ~0.7 (0.2 server + 0.5 victim)", util)
	}
}

func TestDeferrableServerWellBehavedTaskUnaffected(t *testing.T) {
	k, c, rec := setup()
	srv := MustServer("srvA", Deferrable, sim.MS(3), sim.MS(10))
	// Task demand (1ms/10ms) fits comfortably in the reservation.
	c.MustAddTask(&osek.Task{
		Name: "good", Priority: 10, WCET: sim.MS(1), Period: sim.MS(10),
		Throttle: srv,
	})
	c.Start()
	k.Run(sim.MS(100))
	st := trace.Summarize(rec, "good")
	if st.MissCount != 0 || st.N != 10 {
		t.Fatalf("well-behaved served task disturbed: %+v", st)
	}
	if st.Max != sim.MS(1) {
		t.Fatalf("served task response %v, want 1ms (budget never exhausted)", st.Max)
	}
}

func TestDeferrableBudgetCarriesWithinPeriod(t *testing.T) {
	k, c, rec := setup()
	srv := MustServer("s", Deferrable, sim.MS(2), sim.MS(10))
	tsk := &osek.Task{Name: "evt", Priority: 5, WCET: sim.MS(2)}
	tsk.Throttle = srv
	c.MustAddTask(tsk)
	c.Start()
	// Activation late in the period: deferrable keeps its budget, so the
	// job runs immediately at t=8ms and finishes at 10ms.
	k.At(sim.MS(8), func() { c.Activate(tsk) })
	k.Run(sim.MS(30))
	lats := rec.Latencies("evt")
	if len(lats) != 1 || lats[0] != sim.MS(2) {
		t.Fatalf("deferrable late-arrival latency %v, want [2ms]", lats)
	}
}

func TestPollingServerDropsIdleBudget(t *testing.T) {
	k, c, rec := setup()
	srv := MustServer("s", Polling, sim.MS(2), sim.MS(10))
	tsk := &osek.Task{Name: "evt", Priority: 5, WCET: sim.MS(2)}
	tsk.Throttle = srv
	c.MustAddTask(tsk)
	c.Start()
	// Same late arrival: the polling server discarded its budget when
	// idle, so the job waits for the replenishment at t=10ms and runs
	// 10–12ms: latency 4ms.
	k.At(sim.MS(8), func() { c.Activate(tsk) })
	k.Run(sim.MS(30))
	lats := rec.Latencies("evt")
	if len(lats) != 1 || lats[0] != sim.MS(4) {
		t.Fatalf("polling late-arrival latency %v, want [4ms]", lats)
	}
}

func TestSporadicServerReplenishesConsumedChunks(t *testing.T) {
	k, c, rec := setup()
	srv := MustServer("s", Sporadic, sim.MS(2), sim.MS(10))
	tsk := &osek.Task{Name: "evt", Priority: 5, WCET: sim.MS(1), MaxQueued: 8}
	tsk.Throttle = srv
	c.MustAddTask(tsk)
	c.Start()
	// Two 1ms jobs back to back consume the 2ms budget by t=2.
	k.At(0, func() { c.Activate(tsk); c.Activate(tsk) })
	// Third job at t=3: budget is empty; the first chunk (consumed from 0)
	// replenishes at 10ms, so the job runs 10–11ms.
	k.At(sim.MS(3), func() { c.Activate(tsk) })
	k.Run(sim.MS(30))
	lats := rec.Latencies("evt")
	if len(lats) != 3 {
		t.Fatalf("finished %d jobs, want 3", len(lats))
	}
	if lats[0] != sim.MS(1) || lats[1] != sim.MS(2) {
		t.Fatalf("first two latencies %v, want [1ms 2ms ...]", lats)
	}
	if lats[2] != sim.MS(8) {
		t.Fatalf("post-exhaustion latency %v, want 8ms (replenish at 10ms)", lats[2])
	}
}

func TestServerSharedByTwoTasks(t *testing.T) {
	k, c, rec := setup()
	srv := MustServer("shared", Deferrable, sim.MS(4), sim.MS(10))
	c.MustAddTask(&osek.Task{Name: "a", Priority: 6, WCET: sim.MS(2), Period: sim.MS(10), Throttle: srv})
	c.MustAddTask(&osek.Task{Name: "b", Priority: 5, WCET: sim.MS(2), Period: sim.MS(10), Throttle: srv})
	c.Start()
	k.Run(sim.MS(100))
	if rec.Count(trace.Miss, "a")+rec.Count(trace.Miss, "b") != 0 {
		t.Fatal("two tasks fitting the shared budget missed deadlines")
	}
	if got := rec.Count(trace.Finish, "a"); got != 10 {
		t.Fatalf("a finished %d, want 10", got)
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable(0, nil); err == nil {
		t.Fatal("zero major frame accepted")
	}
	if _, err := NewTable(sim.MS(10), []Window{{Partition: "p", Start: sim.MS(8), Length: sim.MS(4)}}); err == nil {
		t.Fatal("window past major frame accepted")
	}
	if _, err := NewTable(sim.MS(10), []Window{
		{Partition: "a", Start: 0, Length: sim.MS(5)},
		{Partition: "b", Start: sim.MS(4), Length: sim.MS(2)},
	}); err == nil {
		t.Fatal("overlapping windows accepted")
	}
	if _, err := NewTable(sim.MS(10), []Window{{Partition: "", Start: 0, Length: sim.MS(1)}}); err == nil {
		t.Fatal("empty partition name accepted")
	}
	tab, err := NewTable(sim.MS(10), []Window{
		{Partition: "a", Start: 0, Length: sim.MS(4)},
		{Partition: "b", Start: sim.MS(4), Length: sim.MS(6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Partition("ghost"); err == nil {
		t.Fatal("unknown partition accepted")
	}
	if u := tab.PartitionUtilization("b"); u != 0.6 {
		t.Fatalf("partition b utilization %v, want 0.6", u)
	}
}

func TestTDMAPartitionIsolation(t *testing.T) {
	k, c, rec := setup()
	tab, err := NewTable(sim.MS(10), []Window{
		{Partition: "supplierA", Start: 0, Length: sim.MS(5)},
		{Partition: "supplierB", Start: sim.MS(5), Length: sim.MS(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// supplierA's task misbehaves (always overruns); supplierB's task has
	// period 10ms, WCET 3ms, deadline 10ms and only its own window.
	c.MustAddTask(&osek.Task{
		Name: "rogueA", Priority: 10, WCET: sim.MS(5), Period: sim.MS(10),
		Demand:   func(int64) sim.Duration { return sim.MS(50) },
		Throttle: tab.MustPartition("supplierA"),
	})
	c.MustAddTask(&osek.Task{
		Name: "taskB", Priority: 10, WCET: sim.MS(3), Period: sim.MS(10),
		Throttle: tab.MustPartition("supplierB"),
	})
	c.Start()
	k.Run(sim.MS(200))
	if rec.Count(trace.Miss, "taskB") != 0 {
		t.Fatalf("partitioned task missed %d deadlines despite TT isolation", rec.Count(trace.Miss, "taskB"))
	}
	// taskB is released at frame start but can only run in [5,10): its
	// response time is deterministic at 8ms — jitter zero.
	st := trace.Summarize(rec, "taskB")
	if st.Jitter != 0 {
		t.Fatalf("TT task jitter %v, want 0 (deterministic window)", st.Jitter)
	}
	if st.Max != sim.MS(8) {
		t.Fatalf("TT task response %v, want 8ms", st.Max)
	}
}

func TestTDMAWindowBoundaryPreemption(t *testing.T) {
	k, c, rec := setup()
	tab, _ := NewTable(sim.MS(10), []Window{
		{Partition: "a", Start: 0, Length: sim.MS(2)},
		{Partition: "b", Start: sim.MS(2), Length: sim.MS(8)},
	})
	// Task in partition a needs 3ms: 2ms in frame 0, 1ms in frame 1;
	// it finishes at 10+1 = 11ms.
	c.MustAddTask(&osek.Task{
		Name: "slow", Priority: 1, WCET: sim.MS(3), Period: sim.MS(40),
		Throttle: tab.MustPartition("a"),
	})
	c.Start()
	k.Run(sim.MS(40))
	lats := rec.Latencies("slow")
	if len(lats) != 1 || lats[0] != sim.MS(11) {
		t.Fatalf("window-crossing latency %v, want [11ms]", lats)
	}
}

func TestFirewallValidity(t *testing.T) {
	f := NewFirewall("wheelSpeed")
	if _, ok := f.Read(0); ok {
		t.Fatal("unwritten firewall read as valid")
	}
	if f.Age(0) != -1 {
		t.Fatal("unwritten firewall has an age")
	}
	f.Write(sim.MS(10), 88.5, sim.MS(5))
	if v, ok := f.Read(sim.MS(12)); !ok || v != 88.5 {
		t.Fatalf("fresh read = (%v,%v), want (88.5,true)", v, ok)
	}
	if _, ok := f.Read(sim.MS(16)); ok {
		t.Fatal("stale value read as valid")
	}
	if f.Age(sim.MS(16)) != sim.MS(6) {
		t.Fatalf("age = %v, want 6ms", f.Age(sim.MS(16)))
	}
	f.Write(sim.MS(20), 90, sim.MS(5))
	if v, ok := f.Read(sim.MS(21)); !ok || v != 90 {
		t.Fatal("overwrite failed")
	}
	if f.Updates() != 2 {
		t.Fatalf("updates = %d, want 2", f.Updates())
	}
}

func TestServerKindString(t *testing.T) {
	if Deferrable.String() != "deferrable" || Polling.String() != "polling" || Sporadic.String() != "sporadic" {
		t.Fatal("server kind names wrong")
	}
}
