package protection

import (
	"fmt"
	"sort"

	"autorte/internal/sim"
)

// Window is one slot of a time-triggered dispatch table, assigned to a
// named partition. Start is relative to the major frame.
type Window struct {
	Partition string
	Start     sim.Duration
	Length    sim.Duration
}

// Table is a static time-triggered dispatch table: a major frame of
// non-overlapping windows that repeats forever. Each partition's windows
// form a temporal partition in the ARINC-653/time-triggered sense: tasks of
// a partition execute only inside its windows, so partitions cannot
// interfere regardless of their behaviour.
type Table struct {
	MajorFrame sim.Duration
	Windows    []Window
}

// NewTable validates and normalizes a dispatch table.
func NewTable(major sim.Duration, windows []Window) (*Table, error) {
	if major <= 0 {
		return nil, fmt.Errorf("protection: non-positive major frame")
	}
	ws := append([]Window(nil), windows...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	for i, w := range ws {
		if w.Length <= 0 {
			return nil, fmt.Errorf("protection: window %d: non-positive length", i)
		}
		if w.Start < 0 || w.Start+w.Length > major {
			return nil, fmt.Errorf("protection: window %d: [%v,%v) outside major frame %v", i, w.Start, w.Start+w.Length, major)
		}
		if i > 0 && ws[i-1].Start+ws[i-1].Length > w.Start {
			return nil, fmt.Errorf("protection: windows %d and %d overlap", i-1, i)
		}
		if w.Partition == "" {
			return nil, fmt.Errorf("protection: window %d: empty partition", i)
		}
	}
	return &Table{MajorFrame: major, Windows: ws}, nil
}

// Partition returns the throttle enforcing the named partition's windows.
func (t *Table) Partition(name string) (*Partition, error) {
	found := false
	for _, w := range t.Windows {
		if w.Partition == name {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("protection: partition %q has no windows", name)
	}
	return &Partition{table: t, name: name}, nil
}

// MustPartition is Partition that panics on error.
func (t *Table) MustPartition(name string) *Partition {
	p, err := t.Partition(name)
	if err != nil {
		panic(err)
	}
	return p
}

// PartitionUtilization returns the fraction of the major frame owned by a
// partition.
func (t *Table) PartitionUtilization(name string) float64 {
	var sum sim.Duration
	for _, w := range t.Windows {
		if w.Partition == name {
			sum += w.Length
		}
	}
	return float64(sum) / float64(t.MajorFrame)
}

// Partition implements osek.Throttle for one partition of a Table.
type Partition struct {
	table *Table
	name  string
}

// Name returns the partition name.
func (p *Partition) Name() string { return p.name }

// Bind implements osek.Throttle: it schedules a notify at every window
// boundary of this partition so the CPU re-dispatches exactly on time.
func (p *Partition) Bind(k *sim.Kernel, notify func()) {
	var frame func(base sim.Time)
	frame = func(base sim.Time) {
		for _, w := range p.table.Windows {
			if w.Partition != p.name {
				continue
			}
			// Window start wakes the partition; the end needs no event of
			// its own because Available() caps the slice at the boundary
			// and the CPU re-dispatches at the checkpoint.
			k.AtPrio(base+w.Start, 2, notify)
		}
		k.AtPrio(base+p.table.MajorFrame, 3, func() { frame(base + p.table.MajorFrame) })
	}
	frame(0)
}

// Available implements osek.Throttle: time remaining in the current window
// of this partition, or 0 outside its windows.
func (p *Partition) Available(now sim.Time) sim.Duration {
	off := sim.Duration(now % p.table.MajorFrame)
	for _, w := range p.table.Windows {
		if w.Partition == p.name && off >= w.Start && off < w.Start+w.Length {
			return w.Start + w.Length - off
		}
	}
	return 0
}

// Charge implements osek.Throttle. Windows do not deplete.
func (p *Partition) Charge(sim.Time, sim.Duration) {}

// Pending implements osek.Throttle. Windows are unconditional.
func (p *Partition) Pending(sim.Time, bool) {}
