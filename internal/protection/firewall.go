package protection

import (
	"autorte/internal/sim"
)

// Firewall is a temporal firewall in Kopetz's sense: a shared state-message
// buffer with explicit temporal validity. The producer deposits a value
// with a validity horizon; the consumer reads non-blockingly and can judge
// the temporal accuracy of what it got. Because neither side ever waits on
// the other, no control-flow (and hence no timing) error propagates across
// the interface — the "error containment at the timing level" §4 requires.
type Firewall struct {
	name     string
	value    float64
	writeAt  sim.Time
	validFor sim.Duration
	written  bool
	updates  int64
}

// NewFirewall creates an empty firewall buffer.
func NewFirewall(name string) *Firewall { return &Firewall{name: name} }

// Name returns the buffer name.
func (f *Firewall) Name() string { return f.name }

// Write deposits a new state value valid for validFor after now.
// Writes never block and always succeed (state semantics: last is best).
func (f *Firewall) Write(now sim.Time, value float64, validFor sim.Duration) {
	f.value = value
	f.writeAt = now
	f.validFor = validFor
	f.written = true
	f.updates++
}

// Read returns the current value and whether it is temporally valid at
// now. Reads never block. Reading an unwritten buffer returns ok=false.
func (f *Firewall) Read(now sim.Time) (value float64, valid bool) {
	if !f.written {
		return 0, false
	}
	return f.value, now-f.writeAt <= f.validFor
}

// Age returns how old the current value is, or -1 if never written.
func (f *Firewall) Age(now sim.Time) sim.Duration {
	if !f.written {
		return -1
	}
	return now - f.writeAt
}

// Updates returns the number of writes, for update-rate monitoring.
func (f *Firewall) Updates() int64 { return f.updates }
