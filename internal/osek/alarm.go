package osek

import (
	"fmt"

	"autorte/internal/sim"
)

// Counter is an OSEK counter: a tick source derived from virtual time.
// Alarms attach to counters and fire on tick multiples.
type Counter struct {
	Name string
	// TickLength is the virtual duration of one counter tick.
	TickLength sim.Duration

	k      *sim.Kernel
	alarms []*Alarm
}

// NewCounter creates a counter on the kernel.
func NewCounter(k *sim.Kernel, name string, tick sim.Duration) (*Counter, error) {
	if tick <= 0 {
		return nil, fmt.Errorf("osek: counter %s: non-positive tick", name)
	}
	return &Counter{Name: name, TickLength: tick, k: k}, nil
}

// Alarm fires an action on a counter schedule: first after Start ticks,
// then every Cycle ticks (Cycle 0 = single shot).
type Alarm struct {
	Name    string
	Start   int64
	Cycle   int64
	Action  func()
	counter *Counter
	event   *sim.Event
	stopped bool
}

// SetAlarm installs an alarm on the counter. Task activation is the usual
// action: pass func() { cpu.Activate(task) }.
func (c *Counter) SetAlarm(name string, start, cycle int64, action func()) (*Alarm, error) {
	if start <= 0 {
		return nil, fmt.Errorf("osek: alarm %s: start must be positive", name)
	}
	if cycle < 0 {
		return nil, fmt.Errorf("osek: alarm %s: negative cycle", name)
	}
	if action == nil {
		return nil, fmt.Errorf("osek: alarm %s: nil action", name)
	}
	a := &Alarm{Name: name, Start: start, Cycle: cycle, Action: action, counter: c}
	c.alarms = append(c.alarms, a)
	a.schedule(c.k.Now() + sim.Duration(start)*c.TickLength)
	return a, nil
}

func (a *Alarm) schedule(at sim.Time) {
	a.event = a.counter.k.At(at, func() {
		if a.stopped {
			return
		}
		a.Action()
		if a.Cycle > 0 {
			a.schedule(a.counter.k.Now() + sim.Duration(a.Cycle)*a.counter.TickLength)
		}
	})
}

// Cancel stops the alarm (OSEK CancelAlarm).
func (a *Alarm) Cancel() {
	a.stopped = true
	if a.event != nil {
		a.event.Cancel()
	}
}
