package osek

import (
	"testing"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

func newCPU(t *testing.T) (*sim.Kernel, *CPU, *trace.Recorder) {
	t.Helper()
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	return k, NewCPU(k, "ecu", 1, rec), rec
}

func run(k *sim.Kernel, c *CPU, horizon sim.Time) {
	c.Start()
	k.Run(horizon)
}

func TestSingleTaskRunsToCompletion(t *testing.T) {
	k, c, rec := newCPU(t)
	c.MustAddTask(&Task{Name: "a", Priority: 1, WCET: sim.MS(2), Period: sim.MS(10)})
	run(k, c, sim.MS(35))
	lats := rec.Latencies("a")
	if len(lats) != 4 {
		t.Fatalf("finished %d jobs, want 4 (activations at 0,10,20,30)", len(lats))
	}
	for i, l := range lats {
		if l != sim.MS(2) {
			t.Errorf("job %d latency %v, want 2ms", i, l)
		}
	}
}

func TestPreemptionByHigherPriority(t *testing.T) {
	k, c, rec := newCPU(t)
	// Low-priority task starts at 0 and needs 10ms; high-priority task
	// arrives at 3ms needing 2ms. Low finishes at 12ms.
	c.MustAddTask(&Task{Name: "low", Priority: 1, WCET: sim.MS(10), Period: sim.MS(100)})
	c.MustAddTask(&Task{Name: "high", Priority: 2, WCET: sim.MS(2), Period: sim.MS(100), Offset: sim.MS(3)})
	run(k, c, sim.MS(50))
	if got := rec.Latencies("high"); len(got) != 1 || got[0] != sim.MS(2) {
		t.Fatalf("high latency %v, want [2ms]", got)
	}
	if got := rec.Latencies("low"); len(got) != 1 || got[0] != sim.MS(12) {
		t.Fatalf("low latency %v, want [12ms]", got)
	}
	if rec.Count(trace.Preempt, "low") != 1 {
		t.Fatalf("low preempted %d times, want 1", rec.Count(trace.Preempt, "low"))
	}
}

func TestNoPreemptionBySamePriority(t *testing.T) {
	k, c, rec := newCPU(t)
	c.MustAddTask(&Task{Name: "a", Priority: 1, WCET: sim.MS(5), Period: sim.MS(100)})
	c.MustAddTask(&Task{Name: "b", Priority: 1, WCET: sim.MS(5), Period: sim.MS(100), Offset: sim.MS(1)})
	run(k, c, sim.MS(50))
	if rec.Count(trace.Preempt, "a") != 0 {
		t.Fatal("same-priority task preempted")
	}
	// b waits for a: response = 5 - 1 + 5 = 9ms.
	if got := rec.Latencies("b"); len(got) != 1 || got[0] != sim.MS(9) {
		t.Fatalf("b latency %v, want [9ms]", got)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	k, c, rec := newCPU(t)
	// Utilization 1.5: the low-priority task must miss.
	c.MustAddTask(&Task{Name: "hog", Priority: 2, WCET: sim.MS(10), Period: sim.MS(10)})
	c.MustAddTask(&Task{Name: "victim", Priority: 1, WCET: sim.MS(5), Period: sim.MS(10)})
	run(k, c, sim.MS(100))
	if rec.Count(trace.Miss, "victim") == 0 {
		t.Fatal("overloaded victim reported no deadline misses")
	}
	if rec.Count(trace.Miss, "hog") != 0 {
		t.Fatal("highest-priority task missed unexpectedly")
	}
}

func TestBudgetEnforcementAbortsOverrun(t *testing.T) {
	k, c, rec := newCPU(t)
	// Task claims 2ms budget but demands 8ms: every job must be aborted
	// at the 2ms mark.
	c.MustAddTask(&Task{
		Name: "rogue", Priority: 2, WCET: sim.MS(2), Period: sim.MS(10),
		Budget: sim.MS(2),
		Demand: func(int64) sim.Duration { return sim.MS(8) },
	})
	c.MustAddTask(&Task{Name: "victim", Priority: 1, WCET: sim.MS(5), Period: sim.MS(10)})
	run(k, c, sim.MS(100))
	if rec.Count(trace.Abort, "rogue") != 10 {
		t.Fatalf("rogue aborted %d times, want 10", rec.Count(trace.Abort, "rogue"))
	}
	// With the rogue capped at 2ms, the victim (5ms) fits in every period.
	if rec.Count(trace.Miss, "victim") != 0 {
		t.Fatalf("victim missed %d deadlines despite budget enforcement", rec.Count(trace.Miss, "victim"))
	}
}

func TestWithoutBudgetOverrunStarvesVictim(t *testing.T) {
	k, c, rec := newCPU(t)
	c.MustAddTask(&Task{
		Name: "rogue", Priority: 2, WCET: sim.MS(2), Period: sim.MS(10),
		Demand: func(int64) sim.Duration { return sim.MS(8) },
	})
	c.MustAddTask(&Task{Name: "victim", Priority: 1, WCET: sim.MS(5), Period: sim.MS(10)})
	run(k, c, sim.MS(100))
	if rec.Count(trace.Miss, "victim") == 0 {
		t.Fatal("victim unaffected by unconstrained overrun; isolation experiment would be vacuous")
	}
}

func TestPriorityCeilingBlocksForCriticalSection(t *testing.T) {
	k, c, rec := newCPU(t)
	res := &Resource{Name: "adc", Ceiling: 3}
	// Low-priority task holds the resource for its whole 4ms body.
	// High-priority (prio 2 < ceiling 3) task arriving mid-section is
	// blocked until the section ends.
	c.MustAddTask(&Task{Name: "low", Priority: 1, WCET: sim.MS(4), Period: sim.MS(100), Resource: res})
	c.MustAddTask(&Task{Name: "high", Priority: 2, WCET: sim.MS(1), Period: sim.MS(100), Offset: sim.MS(1)})
	run(k, c, sim.MS(50))
	// high waits until low finishes at 4ms, runs 4..5ms: response 4ms.
	if got := rec.Latencies("high"); len(got) != 1 || got[0] != sim.MS(4) {
		t.Fatalf("high latency %v, want [4ms] (blocked by ceiling)", got)
	}
	if rec.Count(trace.Preempt, "low") != 0 {
		t.Fatal("resource holder was preempted despite ceiling")
	}
}

func TestActivationQueueing(t *testing.T) {
	k, c, rec := newCPU(t)
	task := &Task{Name: "srv", Priority: 1, WCET: sim.MS(3), MaxQueued: 2}
	c.MustAddTask(task)
	c.Start()
	// Three activations at t=0: one runs, two queue.
	k.At(0, func() {
		c.Activate(task)
		c.Activate(task)
		c.Activate(task)
		if c.Activate(task) {
			t.Error("fourth activation should be dropped (queue limit 2)")
		}
	})
	k.Run(sim.MS(20))
	if got := rec.Count(trace.Finish, "srv"); got != 3 {
		t.Fatalf("finished %d jobs, want 3", got)
	}
	if rec.Count(trace.Drop, "srv") != 1 {
		t.Fatal("dropped activation not recorded")
	}
	// Queued jobs keep their original activation time: latencies 3,6,9ms.
	lats := rec.Latencies("srv")
	want := []sim.Duration{sim.MS(3), sim.MS(6), sim.MS(9)}
	for i, w := range want {
		if lats[i] != w {
			t.Errorf("job %d latency %v, want %v", i, lats[i], w)
		}
	}
}

func TestCPUSpeedScalesDemand(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	c := NewCPU(k, "fast", 2, rec)
	c.MustAddTask(&Task{Name: "a", Priority: 1, WCET: sim.MS(4), Period: sim.MS(100)})
	run(k, c, sim.MS(50))
	if got := rec.Latencies("a"); len(got) != 1 || got[0] != sim.MS(2) {
		t.Fatalf("latency on speed-2 core %v, want [2ms]", got)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	k, c, _ := newCPU(t)
	c.MustAddTask(&Task{Name: "a", Priority: 1, WCET: sim.MS(2), Period: sim.MS(10)})
	run(k, c, sim.MS(100))
	u := c.Utilization()
	if u < 0.19 || u > 0.21 {
		t.Fatalf("utilization %v, want ~0.2", u)
	}
}

func TestEventTriggeredTaskNoDeadlineByDefault(t *testing.T) {
	k, c, rec := newCPU(t)
	task := &Task{Name: "evt", Priority: 1, WCET: sim.MS(1)}
	c.MustAddTask(task)
	c.Start()
	k.At(sim.MS(5), func() { c.Activate(task) })
	k.Run(sim.MS(50))
	if rec.Count(trace.Finish, "evt") != 1 {
		t.Fatal("event-triggered task did not run")
	}
	if rec.Count(trace.Miss, "evt") != 0 {
		t.Fatal("no-deadline task reported a miss")
	}
}

func TestExplicitDeadlineShorterThanPeriod(t *testing.T) {
	k, c, rec := newCPU(t)
	c.MustAddTask(&Task{Name: "hard", Priority: 1, WCET: sim.MS(6), Period: sim.MS(20), Deadline: sim.MS(5)})
	run(k, c, sim.MS(60))
	if rec.Count(trace.Miss, "hard") != 3 {
		t.Fatalf("missed %d, want 3 (every job: WCET 6ms > deadline 5ms)", rec.Count(trace.Miss, "hard"))
	}
}

func TestAddTaskValidation(t *testing.T) {
	_, c, _ := newCPU(t)
	if err := c.AddTask(&Task{Name: "", WCET: 1}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := c.AddTask(&Task{Name: "x"}); err == nil {
		t.Fatal("zero demand accepted")
	}
	if err := c.AddTask(&Task{Name: "ok", WCET: 1, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTask(&Task{Name: "ok", WCET: 1}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	c.Start()
	if err := c.AddTask(&Task{Name: "late", WCET: 1}); err == nil {
		t.Fatal("AddTask after Start accepted")
	}
}

func TestJobLifecycleHooks(t *testing.T) {
	k, c, _ := newCPU(t)
	var started, finished, aborted int
	c.MustAddTask(&Task{
		Name: "hooked", Priority: 1, WCET: sim.MS(1), Period: sim.MS(10),
		OnStart:  func(int64) { started++ },
		OnFinish: func(int64) { finished++ },
		OnAbort:  func(int64) { aborted++ },
	})
	run(k, c, sim.MS(35))
	if started != 4 || finished != 4 || aborted != 0 {
		t.Fatalf("hooks: started=%d finished=%d aborted=%d, want 4/4/0", started, finished, aborted)
	}
}

func TestResponseTimeMatchesClassicRTA(t *testing.T) {
	// Classic example: three tasks, rate-monotonic priorities.
	// T1: C=1, T=4 (prio 3); T2: C=2, T=8 (prio 2); T3: C=3, T=16 (prio 1).
	// RTA: R1=1, R2=3, R3=3+1+... iterate: R3 = 3 + ceil(R3/4)*1 + ceil(R3/8)*2
	//   R3=3 -> 3+1+2=6 -> 3+2+2=7 -> 3+2+2=7. Worst response: R3=7.
	k, c, rec := newCPU(t)
	c.MustAddTask(&Task{Name: "t1", Priority: 3, WCET: sim.MS(1), Period: sim.MS(4)})
	c.MustAddTask(&Task{Name: "t2", Priority: 2, WCET: sim.MS(2), Period: sim.MS(8)})
	c.MustAddTask(&Task{Name: "t3", Priority: 1, WCET: sim.MS(3), Period: sim.MS(16)})
	run(k, c, sim.MS(160))
	st := trace.Summarize(rec, "t3")
	if st.Max != sim.MS(7) {
		t.Fatalf("t3 worst response %v, want 7ms (critical instant)", st.Max)
	}
	if st.MissCount != 0 {
		t.Fatal("schedulable set reported misses")
	}
}

func TestAlarmActivatesTask(t *testing.T) {
	k, c, rec := newCPU(t)
	task := &Task{Name: "alarmTask", Priority: 1, WCET: sim.MS(1)}
	c.MustAddTask(task)
	counter, err := NewCounter(k, "sysTick", sim.MS(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := counter.SetAlarm("a1", 5, 10, func() { c.Activate(task) }); err != nil {
		t.Fatal(err)
	}
	run(k, c, sim.MS(40))
	// Fires at 5, 15, 25, 35 ms.
	if got := rec.Count(trace.Finish, "alarmTask"); got != 4 {
		t.Fatalf("alarm activations = %d, want 4", got)
	}
}

func TestAlarmCancelAndSingleShot(t *testing.T) {
	k, c, rec := newCPU(t)
	task := &Task{Name: "once", Priority: 1, WCET: sim.MS(1)}
	c.MustAddTask(task)
	counter, _ := NewCounter(k, "tick", sim.MS(1))
	// Single shot (cycle 0).
	counter.SetAlarm("single", 3, 0, func() { c.Activate(task) })
	// Cancelled before it fires.
	a2, _ := counter.SetAlarm("dead", 5, 0, func() { c.Activate(task) })
	a2.Cancel()
	run(k, c, sim.MS(30))
	if got := rec.Count(trace.Finish, "once"); got != 1 {
		t.Fatalf("finishes = %d, want 1 (single shot, second cancelled)", got)
	}
}

func TestAlarmValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewCounter(k, "bad", 0); err == nil {
		t.Fatal("zero tick accepted")
	}
	counter, _ := NewCounter(k, "ok", 1)
	if _, err := counter.SetAlarm("a", 0, 1, func() {}); err == nil {
		t.Fatal("zero start accepted")
	}
	if _, err := counter.SetAlarm("a", 1, -1, func() {}); err == nil {
		t.Fatal("negative cycle accepted")
	}
	if _, err := counter.SetAlarm("a", 1, 1, nil); err == nil {
		t.Fatal("nil action accepted")
	}
}

func TestDeterministicScheduleAcrossRuns(t *testing.T) {
	exec := func() []trace.Record {
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		c := NewCPU(k, "ecu", 1, rec)
		r := sim.NewRand(99)
		for i := 0; i < 8; i++ {
			c.MustAddTask(&Task{
				Name:     string(rune('a' + i)),
				Priority: i,
				WCET:     r.Range(sim.US(100), sim.MS(2)),
				Period:   r.Range(sim.MS(5), sim.MS(50)),
			})
		}
		c.Start()
		k.Run(sim.MS(500))
		return rec.Records
	}
	a, b := exec(), exec()
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at record %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestContextSwitchOverhead(t *testing.T) {
	run := func(ctx sim.Duration) (sim.Duration, float64) {
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		c := NewCPU(k, "ecu", 1, rec)
		c.CtxSwitch = ctx
		// High-priority task preempts the low one twice per job.
		c.MustAddTask(&Task{Name: "hi", Priority: 2, WCET: sim.MS(1), Period: sim.MS(4)})
		c.MustAddTask(&Task{Name: "lo", Priority: 1, WCET: sim.MS(5), Period: sim.MS(20)})
		c.Start()
		k.Run(sim.MS(200))
		return trace.Compute(rec.Latencies("lo")).Max, c.Utilization()
	}
	noOv, uPlain := run(0)
	withOv, uCtx := run(sim.US(50))
	if withOv <= noOv {
		t.Fatalf("context-switch cost did not extend response: %v vs %v", withOv, noOv)
	}
	if uCtx <= uPlain {
		t.Fatalf("context-switch cost did not raise utilization: %v vs %v", uCtx, uPlain)
	}
}

func TestKillAbortsCurrentJobAndQueue(t *testing.T) {
	k, c, rec := newCPU(t)
	task := &Task{Name: "a", Priority: 1, WCET: sim.MS(4), Period: sim.MS(10), MaxQueued: 2}
	var finished, aborted int
	task.OnFinish = func(int64) { finished++ }
	task.OnAbort = func(int64) { aborted++ }
	c.MustAddTask(task)
	// Kill mid-job at 2ms: the in-flight job dies, no OnAbort fires, and
	// the next periodic release (10ms) runs normally.
	k.At(sim.MS(2), func() { c.Kill(task, "restart") })
	run(k, c, sim.MS(25))
	if aborted != 0 {
		t.Fatalf("Kill fired OnAbort %d times; recovery kills must not report faults", aborted)
	}
	if finished != 2 {
		t.Fatalf("finished %d jobs, want 2 (releases at 10ms and 20ms)", finished)
	}
	if rec.Count(trace.Abort, "a") != 1 {
		t.Fatalf("abort records = %d, want 1", rec.Count(trace.Abort, "a"))
	}
	if got := rec.BySource("a"); got[len(got)-1].Kind != trace.Finish {
		t.Fatalf("last record %v, want finish", got[len(got)-1].Kind)
	}
}

func TestKillWithoutCurrentJobIsNoop(t *testing.T) {
	k, c, rec := newCPU(t)
	task := &Task{Name: "a", Priority: 1, WCET: sim.MS(1), Period: sim.MS(10), Offset: sim.MS(5)}
	c.MustAddTask(task)
	killed := true
	k.At(sim.MS(2), func() { killed = c.Kill(task, "restart") })
	run(k, c, sim.MS(20))
	if killed {
		t.Fatal("Kill reported a job before any was released")
	}
	if rec.Count(trace.Abort, "a") != 0 {
		t.Fatal("no-op kill produced an abort record")
	}
}

func TestSuspendShedsActivationsAndResumeRestores(t *testing.T) {
	k, c, rec := newCPU(t)
	task := &Task{Name: "a", Priority: 1, WCET: sim.MS(1), Period: sim.MS(10)}
	c.MustAddTask(task)
	k.At(sim.MS(15), func() { c.SetSuspended(task, true) })
	k.At(sim.MS(55), func() { c.SetSuspended(task, false) })
	run(k, c, sim.MS(95))
	// Finishes: releases at 0,10 then 60..90 => 2 + 4 = 6.
	if got := rec.Count(trace.Finish, "a"); got != 6 {
		t.Fatalf("finished %d jobs, want 6", got)
	}
	// Releases at 20,30,40,50 shed with an auditable drop record.
	if got := rec.Count(trace.Drop, "a"); got != 4 {
		t.Fatalf("dropped %d activations, want 4", got)
	}
	if task.Suspended() {
		t.Fatal("task still reports suspended after resume")
	}
}

func TestSuspendKillsInFlightJob(t *testing.T) {
	k, c, rec := newCPU(t)
	task := &Task{Name: "a", Priority: 1, WCET: sim.MS(8), Period: sim.MS(20)}
	c.MustAddTask(task)
	k.At(sim.MS(3), func() { c.SetSuspended(task, true) })
	run(k, c, sim.MS(15))
	if rec.Count(trace.Finish, "a") != 0 {
		t.Fatal("suspended task still finished a job")
	}
	if rec.Count(trace.Abort, "a") != 1 {
		t.Fatal("in-flight job not killed on suspend")
	}
}
