// Package osek simulates an OSEK/AUTOSAR-OS-like single-core kernel in
// virtual time: fixed-priority preemptive scheduling, activation queues,
// resources with the immediate priority-ceiling protocol, periodic alarms,
// deadline monitoring and per-job execution budgets (timing protection).
//
// The simulation is exact: execution demand is consumed in virtual time on
// the sim kernel, so preemption, blocking and budget exhaustion happen at
// precisely computable instants, independent of the Go runtime.
package osek

import (
	"fmt"

	"autorte/internal/sim"
)

// Throttle constrains when a task may consume the CPU. Reservation servers
// and time-triggered dispatch windows (package protection) implement it;
// a nil Throttle means the task runs whenever it is the highest-priority
// ready task.
type Throttle interface {
	// Bind attaches the throttle to a CPU's kernel. notify must be called
	// whenever eligibility may have changed (replenishment, window start).
	Bind(k *sim.Kernel, notify func())
	// Available returns how much contiguous execution the throttle allows
	// starting now. Zero means the task is currently ineligible.
	Available(now sim.Time) sim.Duration
	// Charge consumes d of the throttle's supply, ending at now.
	Charge(now sim.Time, d sim.Duration)
	// Pending informs the throttle whether its tasks have queued work.
	// Polling servers use this to discard their budget when idle.
	Pending(now sim.Time, pending bool)
}

// Resource is an OSEK resource governed by the immediate priority-ceiling
// protocol: while a task holds it, the task runs at the resource ceiling.
type Resource struct {
	Name    string
	Ceiling int
}

// Task is a schedulable unit. In AUTOSAR terms one OS task typically hosts
// one or more runnables; package rte performs that mapping.
type Task struct {
	Name     string
	Priority int // higher value = higher priority (OSEK convention)
	// WCET is the nominal per-job execution demand on a speed-1.0 core.
	WCET sim.Duration
	// Jitter func, if set, returns the actual demand of job n (fault
	// injection and execution-time variation hook). Demand exceeding the
	// Budget is cut off when budget enforcement is on.
	Demand func(job int64) sim.Duration
	// Period/Offset make the task auto-activated periodically. Zero period
	// means the task is only activated externally (event-triggered).
	Period sim.Duration
	Offset sim.Duration
	// Deadline is relative to activation; 0 defaults to Period (or no
	// monitoring for event-triggered tasks).
	Deadline sim.Duration
	// Budget, when positive, bounds per-job execution time; a job hitting
	// the budget is aborted (AUTOSAR timing protection).
	Budget sim.Duration
	// Resource, when set, is held for the whole job body (immediate
	// ceiling: the job executes at max(Priority, Ceiling)).
	Resource *Resource
	// Throttle subordinates the task to a reservation server or TT window.
	Throttle Throttle
	// MaxQueued bounds pending activations beyond the running one;
	// activations past the bound are dropped (E_OS_LIMIT). Default 1.
	MaxQueued int
	// Supplier tags the IP owner for per-supplier interference accounting.
	Supplier string
	// OnStart/OnFinish/OnAbort observe job lifecycle (RTE hooks).
	OnStart  func(job int64)
	OnFinish func(job int64)
	OnAbort  func(job int64)

	cpu       *CPU
	nextJob   int64
	pending   []pendingActivation // queued activations beyond the current job
	current   *job
	released  int64
	suspended bool
}

// Suspended reports whether the task is currently suspended (activations
// are dropped; see CPU.SetSuspended).
func (t *Task) Suspended() bool { return t.suspended }

// pendingActivation is a queued activation waiting for the current job to
// finish; it keeps the original arrival time for response-time accounting.
type pendingActivation struct {
	id int64
	at sim.Time
}

// job is one activation of a task.
type job struct {
	task      *Task
	id        int64
	activated sim.Time
	remaining sim.Duration // demand left, in CPU-time units
	budget    sim.Duration // budget left (Infinity when unenforced)
	started   bool
	deadline  *sim.Event
	missed    bool
}

// effectivePriority is the dispatch priority: the resource ceiling applies
// for the whole body under the immediate-ceiling protocol.
func (j *job) effectivePriority() int {
	p := j.task.Priority
	if j.task.Resource != nil && j.task.Resource.Ceiling > p {
		p = j.task.Resource.Ceiling
	}
	return p
}

func (t *Task) validate() error {
	if t.Name == "" {
		return fmt.Errorf("osek: task with empty name")
	}
	if t.WCET <= 0 && t.Demand == nil {
		return fmt.Errorf("osek: task %s: no execution demand", t.Name)
	}
	if t.Period < 0 || t.Offset < 0 || t.Deadline < 0 || t.Budget < 0 {
		return fmt.Errorf("osek: task %s: negative timing parameter", t.Name)
	}
	return nil
}

// demandOf returns the actual execution demand of job n.
func (t *Task) demandOf(n int64) sim.Duration {
	if t.Demand != nil {
		return t.Demand(n)
	}
	return t.WCET
}

// relativeDeadline returns the monitored deadline, or 0 for none.
func (t *Task) relativeDeadline() sim.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}
