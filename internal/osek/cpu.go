package osek

import (
	"fmt"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

// CPU is a single simulated core with a fixed-priority preemptive
// scheduler. All methods must be called from kernel event context or
// before the simulation starts.
type CPU struct {
	Name  string
	Speed float64 // scales nominal WCETs: demand = WCET / Speed
	Trace *trace.Recorder
	// CtxSwitch, when positive, charges a dispatch overhead each time a
	// job gains the core (start and every resume). The cost is billed to
	// the incoming job's demand — and to its budget, as on real AUTOSAR
	// OS implementations where the context switch runs on the partition's
	// time.
	CtxSwitch sim.Duration

	k      *sim.Kernel
	tasks  []*Task
	active []*job // one unfinished job per task, at most

	running    *job
	runStart   sim.Time
	checkpoint *sim.Event

	busy    sim.Duration // total executed time (utilization accounting)
	started bool
}

// NewCPU creates a core bound to the kernel. speed 0 defaults to 1.
func NewCPU(k *sim.Kernel, name string, speed float64, rec *trace.Recorder) *CPU {
	if speed <= 0 {
		speed = 1
	}
	return &CPU{Name: name, Speed: speed, Trace: rec, k: k}
}

// Kernel returns the simulation kernel the CPU runs on.
func (c *CPU) Kernel() *sim.Kernel { return c.k }

// Busy returns the total virtual time the core has executed jobs.
func (c *CPU) Busy() sim.Duration { return c.busy }

// Utilization returns busy time divided by elapsed time.
func (c *CPU) Utilization() float64 {
	if c.k.Now() == 0 {
		return 0
	}
	return float64(c.busy) / float64(c.k.Now())
}

// AddTask registers a task. Must be called before Start.
func (c *CPU) AddTask(t *Task) error {
	if c.started {
		return fmt.Errorf("osek: cpu %s: AddTask after Start", c.Name)
	}
	if err := t.validate(); err != nil {
		return err
	}
	for _, other := range c.tasks {
		if other.Name == t.Name {
			return fmt.Errorf("osek: cpu %s: duplicate task %s", c.Name, t.Name)
		}
	}
	if t.MaxQueued == 0 {
		t.MaxQueued = 1
	}
	t.cpu = c
	c.tasks = append(c.tasks, t)
	return nil
}

// MustAddTask is AddTask that panics on error; for tests and examples.
func (c *CPU) MustAddTask(t *Task) {
	if err := c.AddTask(t); err != nil {
		panic(err)
	}
}

// Tasks returns the registered tasks.
func (c *CPU) Tasks() []*Task { return c.tasks }

// Task returns the named task, or nil.
func (c *CPU) Task(name string) *Task {
	for _, t := range c.tasks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Start installs periodic activations and binds throttles. Call once,
// before running the kernel.
func (c *CPU) Start() {
	if c.started {
		return
	}
	c.started = true
	bound := map[Throttle]bool{}
	for _, t := range c.tasks {
		if t.Throttle != nil && !bound[t.Throttle] {
			bound[t.Throttle] = true
			t.Throttle.Bind(c.k, c.reschedule)
		}
		if t.Period > 0 {
			c.schedulePeriodic(t, t.Offset)
		}
	}
}

func (c *CPU) schedulePeriodic(t *Task, at sim.Time) {
	c.k.AtPrio(at, 10, func() {
		c.Activate(t)
		c.schedulePeriodic(t, at+t.Period)
	})
}

// Activate releases one job of t (or queues the activation if a job is in
// progress). Returns false if the activation was dropped because the queue
// limit was reached (OSEK E_OS_LIMIT) or the task is suspended.
func (c *CPU) Activate(t *Task) bool {
	now := c.k.Now()
	if t.suspended {
		// Suspended tasks shed every activation; the Drop record is the
		// auditable evidence that a shed runnable stayed inactive.
		c.Trace.Emit(now, trace.Drop, t.Name, t.nextJob, "suspended")
		return false
	}
	id := t.nextJob
	t.nextJob++
	c.Trace.Emit(now, trace.Activate, t.Name, id, "")
	if t.current != nil {
		if len(t.pending) >= t.MaxQueued {
			c.Trace.Emit(now, trace.Drop, t.Name, id, "activation limit")
			return false
		}
		t.pending = append(t.pending, pendingActivation{id: id, at: now})
		return true
	}
	c.release(t, id, now)
	return true
}

// release makes job id of t schedulable.
func (c *CPU) release(t *Task, id int64, activated sim.Time) {
	demand := t.demandOf(id)
	if demand < 0 {
		demand = 0
	}
	j := &job{
		task:      t,
		id:        id,
		activated: activated,
		remaining: sim.Duration(float64(demand) / c.Speed),
		budget:    sim.Infinity,
	}
	if t.Budget > 0 {
		j.budget = t.Budget
	}
	t.current = j
	t.released++
	c.active = append(c.active, j)
	if d := t.relativeDeadline(); d > 0 {
		due := activated + d
		if due <= c.k.Now() {
			// A queued activation can be released after its deadline
			// already passed under overload.
			j.missed = true
			c.Trace.Emit(c.k.Now(), trace.Miss, t.Name, j.id, "released late")
		} else {
			j.deadline = c.k.AtPrio(due, 20, func() {
				if t.current == j && !j.missed {
					j.missed = true
					c.Trace.Emit(c.k.Now(), trace.Miss, t.Name, j.id, "")
				}
			})
		}
	}
	if t.Throttle != nil {
		t.Throttle.Pending(c.k.Now(), true)
	}
	if j.remaining == 0 {
		c.finish(j, false)
		return
	}
	c.reschedule()
}

// charge books elapsed execution onto the running job.
func (c *CPU) charge() {
	if c.running == nil {
		return
	}
	elapsed := c.k.Now() - c.runStart
	if elapsed <= 0 {
		return
	}
	j := c.running
	j.remaining -= elapsed
	if j.budget != sim.Infinity {
		j.budget -= elapsed
	}
	if j.task.Throttle != nil {
		j.task.Throttle.Charge(c.k.Now(), elapsed)
	}
	c.busy += elapsed
	c.runStart = c.k.Now()
}

// pick returns the highest-priority eligible job, or nil.
func (c *CPU) pick() *job {
	var best *job
	for _, j := range c.active {
		if j.task.Throttle != nil && j.task.Throttle.Available(c.k.Now()) <= 0 {
			continue
		}
		if best == nil || j.effectivePriority() > best.effectivePriority() ||
			(j.effectivePriority() == best.effectivePriority() && j.activated < best.activated) {
			best = j
		}
	}
	return best
}

// reschedule is the single dispatch point: it charges the running job,
// picks the best eligible job and programs the next checkpoint.
func (c *CPU) reschedule() {
	c.charge()
	if c.checkpoint != nil {
		c.checkpoint.Cancel()
		c.checkpoint = nil
	}
	// Charging may have completed (or budget-exhausted) the running job:
	// handle that here, because the checkpoint that would have detected it
	// was just cancelled.
	if j := c.running; j != nil && (j.remaining <= 0 || j.budget <= 0) {
		c.running = nil
		c.finish(j, j.remaining > 0)
		return // finish re-enters reschedule
	}
	next := c.pick()
	if next != c.running {
		if c.running != nil && c.running.remaining > 0 {
			c.Trace.Emit(c.k.Now(), trace.Preempt, c.running.task.Name, c.running.id, "")
		}
		if next != nil {
			kind := trace.Start
			if next.started {
				kind = trace.Resume
			} else {
				next.started = true
				if next.task.OnStart != nil {
					next.task.OnStart(next.id)
				}
			}
			if c.CtxSwitch > 0 {
				next.remaining += c.CtxSwitch
			}
			c.Trace.Emit(c.k.Now(), kind, next.task.Name, next.id, "")
		}
		c.running = next
	}
	if c.running == nil {
		return
	}
	j := c.running
	c.runStart = c.k.Now()
	slice := j.remaining
	if j.budget < slice {
		slice = j.budget
	}
	if j.task.Throttle != nil {
		if avail := j.task.Throttle.Available(c.k.Now()); avail < slice {
			slice = avail
		}
	}
	c.checkpoint = c.k.AtPrio(c.k.Now()+slice, 5, c.onCheckpoint)
}

// onCheckpoint fires when the running job completes its slice: it either
// finished, exhausted its budget, or exhausted its throttle.
func (c *CPU) onCheckpoint() {
	c.checkpoint = nil
	c.charge()
	j := c.running
	if j == nil {
		c.reschedule()
		return
	}
	switch {
	case j.remaining <= 0:
		c.running = nil
		c.finish(j, false)
	case j.budget <= 0:
		c.running = nil
		c.finish(j, true)
	default:
		// Throttle exhausted: job stays active but ineligible.
		c.reschedule()
	}
}

// Kill aborts the current job of t (if any) and discards its queued
// activations — the restart primitive of recovery escalation. Unlike a
// budget abort it fires no OnAbort hook: killing is a deliberate recovery
// action, not a detected fault. Returns whether a job was in progress.
func (c *CPU) Kill(t *Task, reason string) bool {
	t.pending = nil
	j := t.current
	if j == nil {
		return false
	}
	if c.running == j {
		c.charge()
		c.running = nil
	}
	if j.deadline != nil {
		j.deadline.Cancel()
	}
	for i, a := range c.active {
		if a == j {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	t.current = nil
	c.Trace.Emit(c.k.Now(), trace.Abort, t.Name, j.id, reason)
	if t.Throttle != nil {
		t.Throttle.Pending(c.k.Now(), c.throttleHasWork(t.Throttle))
	}
	c.reschedule()
	return true
}

// SetSuspended suspends or resumes a task. Suspending kills the job in
// progress and sheds every subsequent activation (periodic releases keep
// arriving and are dropped with a "suspended" trace record); resuming lets
// the next activation through unchanged. Degraded operating modes use this
// to shed non-critical runnables.
func (c *CPU) SetSuspended(t *Task, suspended bool) {
	if t.suspended == suspended {
		return
	}
	t.suspended = suspended
	if suspended {
		c.Kill(t, "suspended")
	}
}

// throttleHasWork reports whether any task governed by th has a pending
// or in-progress job.
func (c *CPU) throttleHasWork(th Throttle) bool {
	for _, t := range c.tasks {
		if t.Throttle != th {
			continue
		}
		if t.current != nil || len(t.pending) > 0 {
			return true
		}
	}
	return false
}

// finish completes or aborts a job and releases any queued activation.
func (c *CPU) finish(j *job, aborted bool) {
	t := j.task
	now := c.k.Now()
	if j.deadline != nil {
		j.deadline.Cancel()
	}
	for i, a := range c.active {
		if a == j {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	t.current = nil
	if aborted {
		c.Trace.Emit(now, trace.Abort, t.Name, j.id, "budget exhausted")
		if t.OnAbort != nil {
			t.OnAbort(j.id)
		}
	} else {
		c.Trace.Emit(now, trace.Finish, t.Name, j.id, "")
		if t.OnFinish != nil {
			t.OnFinish(j.id)
		}
	}
	if t.Throttle != nil {
		// Report aggregate demand across every task sharing the throttle,
		// so a server with work left from a sibling keeps its budget.
		t.Throttle.Pending(now, c.throttleHasWork(t.Throttle))
	}
	if len(t.pending) > 0 {
		next := t.pending[0]
		t.pending = t.pending[1:]
		c.release(t, next.id, next.at)
	} else {
		c.reschedule()
	}
}
