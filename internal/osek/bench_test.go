package osek

import (
	"fmt"
	"testing"

	"autorte/internal/sim"
)

// BenchmarkScheduler measures the cost of simulating one virtual second of
// a 20-task fixed-priority workload (activations, preemptions, completion
// bookkeeping).
func BenchmarkScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		cpu := NewCPU(k, "ecu", 1, nil)
		r := sim.NewRand(7)
		for t := 0; t < 20; t++ {
			period := sim.Duration(1+r.Intn(20)) * sim.Millisecond
			cpu.MustAddTask(&Task{
				Name:     fmt.Sprintf("t%d", t),
				Priority: t,
				WCET:     period / 50,
				Period:   period,
			})
		}
		cpu.Start()
		k.Run(sim.Second)
	}
}

// BenchmarkSchedulerWithBudgets adds budget enforcement to the same
// workload — the timing-protection overhead ablation.
func BenchmarkSchedulerWithBudgets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		cpu := NewCPU(k, "ecu", 1, nil)
		r := sim.NewRand(7)
		for t := 0; t < 20; t++ {
			period := sim.Duration(1+r.Intn(20)) * sim.Millisecond
			cpu.MustAddTask(&Task{
				Name:     fmt.Sprintf("t%d", t),
				Priority: t,
				WCET:     period / 50,
				Period:   period,
				Budget:   period / 50,
			})
		}
		cpu.Start()
		k.Run(sim.Second)
	}
}
