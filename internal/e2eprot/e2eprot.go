// Package e2eprot implements AUTOSAR-style end-to-end communication
// protection (E2E protection profiles). The paper's §2 demands "a
// consistent error handling model" covering communication errors, yet a
// bus CRC only protects one hop of one medium: corruption inside a
// gateway's RAM, a masqueraded sender, loss, duplication, re-ordering and
// stale data all pass every bus-level check. E2E protection closes that
// gap by wrapping each protected PDU in a small trailer computed at the
// sending runnable and verified at the receiving runnable — the two ends
// of the path, whatever lies in between.
//
// Two profiles are provided, modelled on AUTOSAR's P01 and P05:
//
//   - P01: CRC-8 (SAE J1850) + 4-bit alternating sequence counter
//     (0..14), 2-byte header — sized for short CAN-class PDUs.
//   - P05: CRC-16 (CCITT-FALSE) + 8-bit counter (0..255), 3-byte
//     header — sized for larger FlexRay/Ethernet-class PDUs.
//
// Both bind the channel's DataID into the CRC without transmitting it, so
// a syntactically valid PDU of the wrong stream (masquerade) fails the
// check exactly like corruption does.
//
// The receiver side is a per-check status (Status) plus a window-based
// qualification state machine (SMState) that debounces isolated glitches
// before an application or the platform health monitor acts on the
// channel — the E2E_SM of the AUTOSAR E2E library.
package e2eprot

import (
	"fmt"

	"autorte/internal/sim"
)

// ProfileKind selects the E2E protection profile of a channel.
type ProfileKind uint8

// The implemented profiles.
const (
	// P01 is the CRC-8 + 4-bit-counter profile for short PDUs.
	P01 ProfileKind = iota
	// P05 is the CRC-16 + 8-bit-counter profile for larger PDUs.
	P05
)

func (k ProfileKind) String() string {
	switch k {
	case P01:
		return "P01"
	default:
		return "P05"
	}
}

// HeaderLen returns the number of payload bytes the profile's protection
// header occupies.
func (k ProfileKind) HeaderLen() int {
	if k == P01 {
		return 2 // CRC-8 + counter byte
	}
	return 3 // CRC-16 (2 bytes) + counter byte
}

// counterModulus returns the sequence counter range: P01 wraps 0..14
// (AUTOSAR reserves 0xF), P05 wraps the full byte.
func (k ProfileKind) counterModulus() int {
	if k == P01 {
		return 15
	}
	return 256
}

// Config describes one protected channel: both ends must agree on it.
type Config struct {
	// Profile selects header layout, CRC and counter width.
	Profile ProfileKind
	// DataID identifies the protected stream. It is mixed into the CRC but
	// never transmitted: a payload protected under a different DataID fails
	// verification (masquerade detection).
	DataID uint16
	// Offset is the byte offset of the protection header inside the
	// payload (AUTOSAR P05's configurable offset; P01 supports it too
	// here). Default 0.
	Offset int
	// MaxDeltaCounter is the largest accepted counter jump between two
	// valid receptions: 1 means strictly consecutive, larger values
	// tolerate that many lost PDUs before WrongSequence (default 2).
	MaxDeltaCounter uint8
	// Timeout is the receiver-side staleness bound in virtual time: a
	// Check finding no new data for longer than Timeout reports
	// NotAvailable instead of NoNewData. Zero disables timeout
	// supervision.
	Timeout sim.Duration
	// WindowSize, MinOKForValid and MaxErrorsForValid tune the window
	// qualification state machine (defaults 8, 5, 2).
	WindowSize        int
	MinOKForValid     int
	MaxErrorsForValid int
}

func (c Config) fill() Config {
	if c.MaxDeltaCounter == 0 {
		c.MaxDeltaCounter = 2
	}
	if c.WindowSize == 0 {
		c.WindowSize = 8
	}
	if c.MinOKForValid == 0 {
		c.MinOKForValid = 5
	}
	if c.MaxErrorsForValid == 0 {
		c.MaxErrorsForValid = 2
	}
	return c
}

// Validate checks the configuration against the length of the payload it
// will protect.
func (c Config) Validate(payloadLen int) error {
	cc := c.fill()
	switch c.Profile {
	case P01, P05:
	default:
		return fmt.Errorf("e2eprot: unknown profile %d", c.Profile)
	}
	if c.Offset < 0 || c.Offset+c.Profile.HeaderLen() > payloadLen {
		return fmt.Errorf("e2eprot: %v header at offset %d does not fit a %d-byte payload",
			c.Profile, c.Offset, payloadLen)
	}
	if int(cc.MaxDeltaCounter) >= c.Profile.counterModulus() {
		return fmt.Errorf("e2eprot: MaxDeltaCounter %d outside the %v counter range",
			cc.MaxDeltaCounter, c.Profile)
	}
	if cc.MinOKForValid > cc.WindowSize {
		return fmt.Errorf("e2eprot: MinOKForValid %d exceeds window size %d",
			cc.MinOKForValid, cc.WindowSize)
	}
	return nil
}

// crc8 is the SAE J1850 CRC-8 (poly 0x1D, init 0xFF, xor-out 0xFF) used
// by AUTOSAR profile 1.
func crc8(init uint8, data []byte) uint8 {
	crc := init
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x1D
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// crc16 is CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) used by AUTOSAR
// profile 5.
func crc16(init uint16, data []byte) uint16 {
	crc := init
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// computeCRC computes the profile CRC over DataID and the payload with
// the CRC field bytes treated as zero (the counter byte is covered).
func (c Config) computeCRC(payload []byte) uint16 {
	id := [2]byte{byte(c.DataID >> 8), byte(c.DataID)}
	crcLen := c.Profile.HeaderLen() - 1 // trailing byte is the counter
	if c.Profile == P01 {
		crc := crc8(0xFF, id[:])
		for i, b := range payload {
			if i >= c.Offset && i < c.Offset+crcLen {
				b = 0
			}
			crc = crc8(crc, []byte{b})
		}
		return uint16(crc ^ 0xFF)
	}
	crc := crc16(0xFFFF, id[:])
	for i, b := range payload {
		if i >= c.Offset && i < c.Offset+crcLen {
			b = 0
		}
		crc = crc16(crc, []byte{b})
	}
	return crc
}

// writeHeader stores crc and counter into the payload's header field.
func (c Config) writeHeader(payload []byte, crc uint16, counter uint8) {
	if c.Profile == P01 {
		payload[c.Offset] = byte(crc)
		payload[c.Offset+1] = counter & 0x0F
		return
	}
	payload[c.Offset] = byte(crc >> 8)
	payload[c.Offset+1] = byte(crc)
	payload[c.Offset+2] = counter
}

// readHeader extracts the transmitted crc and counter.
func (c Config) readHeader(payload []byte) (crc uint16, counter uint8) {
	if c.Profile == P01 {
		return uint16(payload[c.Offset]), payload[c.Offset+1] & 0x0F
	}
	return uint16(payload[c.Offset])<<8 | uint16(payload[c.Offset+1]), payload[c.Offset+2]
}

// Sender protects outgoing payloads of one channel: each Protect stamps
// the next sequence counter and the CRC into the payload's header field
// in place.
type Sender struct {
	cfg     Config
	counter int
}

// NewSender creates the sending end of a protected channel.
func NewSender(cfg Config) *Sender { return &Sender{cfg: cfg.fill()} }

// Protect writes the protection header (counter + CRC over DataID and
// payload) into the payload in place and advances the sequence counter.
func (s *Sender) Protect(payload []byte) error {
	if err := s.cfg.Validate(len(payload)); err != nil {
		return err
	}
	s.cfg.writeHeader(payload, 0, uint8(s.counter))
	crc := s.cfg.computeCRC(payload)
	s.cfg.writeHeader(payload, crc, uint8(s.counter))
	s.counter = (s.counter + 1) % s.cfg.Profile.counterModulus()
	return nil
}

// Counter returns the counter value the next Protect will stamp.
func (s *Sender) Counter() uint8 { return uint8(s.counter) }

// Status is the per-check verdict of the receiving end — the E2E profile
// check status.
type Status uint8

// The receiver check statuses.
const (
	// StatusOK: new data, correct CRC, counter within the accepted delta.
	StatusOK Status = iota
	// StatusRepeated: correct CRC but the counter did not advance — a
	// duplicated or replayed PDU.
	StatusRepeated
	// StatusWrongSequence: correct CRC but the counter jumped further than
	// MaxDeltaCounter — re-ordering or bursty loss.
	StatusWrongSequence
	// StatusNotAvailable: no valid data within the configured Timeout (or
	// none ever) — the channel is considered down.
	StatusNotAvailable
	// StatusNoNewData: the check ran with nothing received since the last
	// check; within the timeout this is tolerated staleness.
	StatusNoNewData
	// StatusError: CRC verification failed — corruption, truncation or a
	// masqueraded DataID.
	StatusError
)

var statusNames = [...]string{"ok", "repeated", "wrong-sequence", "not-available", "no-new-data", "error"}

func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// DetectedClass maps a non-OK status to the communication fault class it
// evidences, for metrics and diagnostics: "crc" (corruption or
// masquerade — indistinguishable by design, both fail the DataID-bound
// CRC), "duplicate", "sequence" or "timeout". OK and NoNewData return ""
// (no fault detected).
func (s Status) DetectedClass() string {
	switch s {
	case StatusError:
		return "crc"
	case StatusRepeated:
		return "duplicate"
	case StatusWrongSequence:
		return "sequence"
	case StatusNotAvailable:
		return "timeout"
	case StatusOK, StatusNoNewData:
		return ""
	}
	return ""
}

// SMState is the window-qualified channel state — the E2E state machine
// that debounces isolated glitches before anyone acts on the channel.
type SMState uint8

// The qualification states.
const (
	// SMNoData: nothing was ever received on the channel.
	SMNoData SMState = iota
	// SMInit: data seen but the qualification window has not filled yet.
	SMInit
	// SMValid: the window holds enough OKs and few enough errors.
	SMValid
	// SMInvalid: the window crossed the error bound — the channel is
	// qualified as failed.
	SMInvalid
)

var smStateNames = [...]string{"no-data", "init", "valid", "invalid"}

func (s SMState) String() string {
	if int(s) < len(smStateNames) {
		return smStateNames[s]
	}
	return fmt.Sprintf("smstate(%d)", uint8(s))
}

// Receiver verifies incoming payloads of one channel and qualifies the
// channel through the window state machine. Not safe for concurrent use;
// like everything in the simulation it lives on the kernel goroutine.
type Receiver struct {
	cfg         Config
	initialized bool
	lastCounter uint8
	lastNewData sim.Time
	everChecked bool

	window []Status // qualification ring, capped at cfg.WindowSize
	wpos   int
	filled bool
}

// NewReceiver creates the receiving end of a protected channel.
func NewReceiver(cfg Config) *Receiver {
	cfg = cfg.fill()
	return &Receiver{cfg: cfg, window: make([]Status, 0, cfg.WindowSize)}
}

// Config returns the receiver's filled configuration.
func (r *Receiver) Config() Config { return r.cfg }

// Check verifies one reception at virtual time now. A nil payload means
// "the check ran but nothing arrived" (timeout supervision): it yields
// NoNewData within the Timeout and NotAvailable beyond it. The returned
// status is also pushed into the qualification window (NoNewData is
// neutral: tolerated staleness neither builds nor destroys trust).
func (r *Receiver) Check(now sim.Time, payload []byte) Status {
	st := r.check(now, payload)
	r.everChecked = true
	if st != StatusNoNewData {
		r.push(st)
	}
	return st
}

func (r *Receiver) check(now sim.Time, payload []byte) Status {
	if payload == nil {
		if !r.initialized {
			return StatusNotAvailable
		}
		if r.cfg.Timeout > 0 && now-r.lastNewData > r.cfg.Timeout {
			return StatusNotAvailable
		}
		return StatusNoNewData
	}
	if r.cfg.Validate(len(payload)) != nil {
		return StatusError // truncated below the header: unverifiable
	}
	wantCRC, counter := r.cfg.readHeader(payload)
	if r.cfg.computeCRC(payload) != wantCRC {
		return StatusError
	}
	r.lastNewData = now
	if !r.initialized {
		r.initialized = true
		r.lastCounter = counter
		return StatusOK
	}
	mod := r.cfg.Profile.counterModulus()
	delta := (int(counter) - int(r.lastCounter) + mod) % mod
	switch {
	case delta == 0:
		return StatusRepeated
	case delta <= int(r.cfg.MaxDeltaCounter):
		r.lastCounter = counter
		return StatusOK
	default:
		// Resynchronize on the received counter so one wild jump does not
		// condemn every subsequent (again consecutive) reception.
		r.lastCounter = counter
		return StatusWrongSequence
	}
}

// push records a status in the qualification ring.
func (r *Receiver) push(st Status) {
	if len(r.window) < r.cfg.WindowSize {
		r.window = append(r.window, st)
		if len(r.window) == r.cfg.WindowSize {
			r.filled = true
		}
		return
	}
	r.window[r.wpos] = st
	r.wpos = (r.wpos + 1) % r.cfg.WindowSize
}

// windowCounts tallies the qualification ring.
func (r *Receiver) windowCounts() (ok, bad int) {
	for _, st := range r.window {
		switch st {
		case StatusOK:
			ok++
		case StatusError, StatusWrongSequence, StatusRepeated, StatusNotAvailable:
			bad++
		case StatusNoNewData:
			// neutral; never pushed, but keep the switch exhaustive
		}
	}
	return ok, bad
}

// State returns the window-qualified channel state (CheckStatus): the
// answer "can I trust this channel right now?".
func (r *Receiver) State() SMState {
	if !r.everChecked && len(r.window) == 0 {
		return SMNoData
	}
	ok, bad := r.windowCounts()
	if bad > r.cfg.MaxErrorsForValid {
		return SMInvalid
	}
	if !r.initialized {
		if len(r.window) > 0 {
			return SMInvalid // only failures ever seen
		}
		return SMNoData
	}
	if !r.filled {
		return SMInit
	}
	if ok >= r.cfg.MinOKForValid {
		return SMValid
	}
	return SMInvalid
}

// Reset clears counter expectation and qualification window — used after
// a reconfiguration (e.g. channel failover) gives the stream a fresh
// start.
func (r *Receiver) Reset() {
	r.initialized = false
	r.everChecked = false
	r.window = r.window[:0]
	r.wpos = 0
	r.filled = false
}
