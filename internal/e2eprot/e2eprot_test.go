package e2eprot

import (
	"testing"
	"testing/quick"

	"autorte/internal/sim"
)

func roundTrip(t *testing.T, profile ProfileKind) (*Sender, *Receiver, []byte) {
	t.Helper()
	cfg := Config{Profile: profile, DataID: 0x1234, Offset: 4}
	s, r := NewSender(cfg), NewReceiver(cfg)
	payload := make([]byte, 8)
	payload[0] = 0xAB
	if err := s.Protect(payload); err != nil {
		t.Fatal(err)
	}
	return s, r, payload
}

func TestProtectCheckOK(t *testing.T) {
	for _, p := range []ProfileKind{P01, P05} {
		_, r, payload := roundTrip(t, p)
		if st := r.Check(0, payload); st != StatusOK {
			t.Fatalf("%v: fresh payload status %v, want ok", p, st)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	for _, p := range []ProfileKind{P01, P05} {
		_, r, payload := roundTrip(t, p)
		payload[0] ^= 0x40 // flip a data bit
		if st := r.Check(0, payload); st != StatusError {
			t.Fatalf("%v: corrupted payload status %v, want error", p, st)
		}
	}
}

func TestHeaderCorruptionDetected(t *testing.T) {
	_, r, payload := roundTrip(t, P05)
	payload[4] ^= 0x01 // flip a CRC bit
	if st := r.Check(0, payload); st != StatusError {
		t.Fatalf("corrupted CRC status %v, want error", st)
	}
}

func TestMasqueradeDetected(t *testing.T) {
	// Same layout, different DataID: internally consistent, wrong stream.
	for _, p := range []ProfileKind{P01, P05} {
		wrong := NewSender(Config{Profile: p, DataID: 0x9999, Offset: 4})
		r := NewReceiver(Config{Profile: p, DataID: 0x1234, Offset: 4})
		payload := make([]byte, 8)
		if err := wrong.Protect(payload); err != nil {
			t.Fatal(err)
		}
		if st := r.Check(0, payload); st != StatusError {
			t.Fatalf("%v: masqueraded payload status %v, want error", p, st)
		}
	}
}

func TestDuplicateRepeated(t *testing.T) {
	_, r, payload := roundTrip(t, P01)
	if st := r.Check(0, payload); st != StatusOK {
		t.Fatal(st)
	}
	cp := append([]byte(nil), payload...)
	if st := r.Check(1, cp); st != StatusRepeated {
		t.Fatalf("duplicate status %v, want repeated", st)
	}
}

func TestCounterToleratesSmallLoss(t *testing.T) {
	cfg := Config{Profile: P01, DataID: 7, MaxDeltaCounter: 2}
	s, r := NewSender(cfg), NewReceiver(cfg)
	send := func() []byte {
		p := make([]byte, 4)
		if err := s.Protect(p); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if st := r.Check(0, send()); st != StatusOK {
		t.Fatal(st)
	}
	_ = send() // lost in transit: delta 2 still accepted
	if st := r.Check(1, send()); st != StatusOK {
		t.Fatalf("delta-2 status %v, want ok", st)
	}
	_, _, _ = send(), send(), send() // three lost: delta 4 > MaxDeltaCounter
	if st := r.Check(2, send()); st != StatusWrongSequence {
		t.Fatalf("delta-4 status %v, want wrong-sequence", st)
	}
	// Resynchronized: the next consecutive payload is OK again.
	if st := r.Check(3, send()); st != StatusOK {
		t.Fatalf("post-resync status %v, want ok", st)
	}
}

func TestP01CounterWraps(t *testing.T) {
	cfg := Config{Profile: P01, DataID: 3, MaxDeltaCounter: 1}
	s, r := NewSender(cfg), NewReceiver(cfg)
	for i := 0; i < 40; i++ { // crosses the 0..14 wrap twice
		p := make([]byte, 4)
		if err := s.Protect(p); err != nil {
			t.Fatal(err)
		}
		if st := r.Check(sim.Time(i), p); st != StatusOK {
			t.Fatalf("send %d: status %v, want ok (counter wrap)", i, st)
		}
	}
}

func TestTimeoutSupervision(t *testing.T) {
	cfg := Config{Profile: P01, DataID: 5, Timeout: sim.MS(30)}
	s, r := NewSender(cfg), NewReceiver(cfg)
	if st := r.Check(0, nil); st != StatusNotAvailable {
		t.Fatalf("never-received status %v, want not-available", st)
	}
	p := make([]byte, 4)
	if err := s.Protect(p); err != nil {
		t.Fatal(err)
	}
	if st := r.Check(sim.MS(10), p); st != StatusOK {
		t.Fatal("valid payload rejected")
	}
	if st := r.Check(sim.MS(25), nil); st != StatusNoNewData {
		t.Fatalf("within-timeout status %v, want no-new-data", st)
	}
	if st := r.Check(sim.MS(50), nil); st != StatusNotAvailable {
		t.Fatalf("past-timeout status %v, want not-available", st)
	}
}

func TestTruncatedPayloadIsError(t *testing.T) {
	_, r, payload := roundTrip(t, P05)
	if st := r.Check(0, payload[:5]); st != StatusError {
		t.Fatalf("truncated payload status %v, want error", st)
	}
}

func TestStateMachineQualification(t *testing.T) {
	cfg := Config{Profile: P01, DataID: 9, WindowSize: 4, MinOKForValid: 3, MaxErrorsForValid: 1}
	s, r := NewSender(cfg), NewReceiver(cfg)
	if st := r.State(); st != SMNoData {
		t.Fatalf("initial state %v, want no-data", st)
	}
	ok := func(i int) {
		p := make([]byte, 4)
		if err := s.Protect(p); err != nil {
			t.Fatal(err)
		}
		if st := r.Check(sim.Time(i), p); st != StatusOK {
			t.Fatal(st)
		}
	}
	ok(0)
	if st := r.State(); st != SMInit {
		t.Fatalf("after first ok: state %v, want init", st)
	}
	ok(1)
	ok(2)
	ok(3)
	if st := r.State(); st != SMValid {
		t.Fatalf("after window of oks: state %v, want valid", st)
	}
	// Two errors within the window cross MaxErrorsForValid.
	bad := []byte{1, 2, 3, 4}
	r.Check(4, bad)
	if st := r.State(); st != SMValid {
		t.Fatalf("one error should be tolerated, state %v", st)
	}
	r.Check(5, append([]byte(nil), bad...))
	if st := r.State(); st != SMInvalid {
		t.Fatalf("after two errors: state %v, want invalid", st)
	}
	// Recovery: fresh OKs push the errors out of the window.
	ok(6)
	ok(7)
	ok(8)
	ok(9)
	if st := r.State(); st != SMValid {
		t.Fatalf("after recovery: state %v, want valid", st)
	}
}

func TestResetGivesFreshStart(t *testing.T) {
	_, r, payload := roundTrip(t, P01)
	if st := r.Check(0, payload); st != StatusOK {
		t.Fatal(st)
	}
	r.Reset()
	if st := r.State(); st != SMNoData {
		t.Fatalf("state after reset %v, want no-data", st)
	}
	// The same payload (same counter) is accepted again: no stale counter.
	if st := r.Check(1, payload); st != StatusOK {
		t.Fatalf("replay after reset %v, want ok (fresh counter baseline)", st)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Profile: P01, Offset: 3}).Validate(4); err == nil {
		t.Fatal("header past payload accepted")
	}
	if err := (Config{Profile: P05, Offset: -1}).Validate(8); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := (Config{Profile: P01, MaxDeltaCounter: 15}).Validate(8); err == nil {
		t.Fatal("MaxDeltaCounter outside counter range accepted")
	}
	if err := (Config{Profile: ProfileKind(9)}).Validate(8); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if err := (Config{Profile: P05, WindowSize: 2, MinOKForValid: 3}).Validate(8); err == nil {
		t.Fatal("MinOKForValid > WindowSize accepted")
	}
	if err := (Config{Profile: P05, Offset: 5}).Validate(8); err != nil {
		t.Fatalf("valid tail-offset config rejected: %v", err)
	}
}

func TestProtectTooShortPayload(t *testing.T) {
	s := NewSender(Config{Profile: P05})
	if err := s.Protect(make([]byte, 2)); err == nil {
		t.Fatal("protect of too-short payload accepted")
	}
}

func TestRandomCorruptionQuick(t *testing.T) {
	// Property: any single-bit flip anywhere in the payload is detected.
	cfg := Config{Profile: P01, DataID: 0xBEEF}
	f := func(data [6]byte, bit uint16) bool {
		s, r := NewSender(cfg), NewReceiver(cfg)
		payload := append(make([]byte, 2), data[:]...) // 2-byte header + 6 data
		if err := s.Protect(payload); err != nil {
			return false
		}
		pos := int(bit) % (len(payload) * 8)
		payload[pos/8] ^= 1 << (pos % 8)
		return r.Check(0, payload) == StatusError
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatusAndStateNames(t *testing.T) {
	if StatusOK.String() != "ok" || StatusError.String() != "error" ||
		StatusNotAvailable.String() != "not-available" {
		t.Fatal("status names")
	}
	if SMValid.String() != "valid" || SMInvalid.String() != "invalid" {
		t.Fatal("state names")
	}
	if StatusError.DetectedClass() != "crc" || StatusRepeated.DetectedClass() != "duplicate" ||
		StatusWrongSequence.DetectedClass() != "sequence" || StatusNotAvailable.DetectedClass() != "timeout" ||
		StatusOK.DetectedClass() != "" || StatusNoNewData.DetectedClass() != "" {
		t.Fatal("detected classes")
	}
	if P01.String() != "P01" || P05.String() != "P05" {
		t.Fatal("profile names")
	}
}
