package noc

import (
	"fmt"
	"testing"

	"autorte/internal/sim"
)

func benchNet(b *testing.B, mode Mode) {
	b.Helper()
	cfg := Config{Width: 8, Height: 8, FlitTime: sim.US(1), Mode: mode, SlotLength: sim.US(100)}
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		net := MustNewNetwork(k, cfg, nil)
		r := sim.NewRand(3)
		for f := 0; f < 32; f++ {
			src := Coord{r.Intn(8), r.Intn(8)}
			dst := Coord{r.Intn(8), r.Intn(8)}
			if src == dst {
				dst.X = (dst.X + 1) % 8
			}
			net.MustAddFlow(&Flow{
				Name: fmt.Sprintf("f%d", f), Src: src, Dst: dst, Flits: 1 + r.Intn(6),
				Period: sim.Duration(1+r.Intn(10)) * sim.Millisecond,
			})
		}
		net.Start()
		k.Run(100 * sim.Millisecond)
	}
}

// BenchmarkBestEffortMesh measures 100 virtual ms of a loaded 8x8
// wormhole mesh (32 flows).
func BenchmarkBestEffortMesh(b *testing.B) { benchNet(b, BestEffort) }

// BenchmarkTDMAMesh is the same workload on the time-triggered NoC — the
// arbitration-mode ablation from DESIGN.md.
func BenchmarkTDMAMesh(b *testing.B) { benchNet(b, TDMA) }
