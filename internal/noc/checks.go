package noc

import (
	"fmt"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

// CompositionReport is the outcome of checking the four composability
// requirements of §4 for a flow set on a given configuration.
type CompositionReport struct {
	// R1: every flow carries a full temporal specification.
	PreciseInterfaces bool
	// R2: per-flow worst-case latency before and after adding NewFlows;
	// stability holds when no prior flow's worst case moved.
	PriorWorst, PosteriorWorst map[string]sim.Duration
	StablePriorServices        bool
	// R3: worst latency of each flow running alone vs composed; zero
	// interference when equal.
	IsolatedWorst  map[string]sim.Duration
	NonInterfering bool
	// R4 is checked separately by fault injection (see the E8 bench).
}

// CheckComposition simulates base flows alone, each base flow in
// isolation, and base+new flows together, then evaluates R1-R3.
// horizon is the per-simulation virtual duration.
func CheckComposition(cfg Config, base, added []*Flow, horizon sim.Time) (*CompositionReport, error) {
	rep := &CompositionReport{
		PriorWorst:     map[string]sim.Duration{},
		PosteriorWorst: map[string]sim.Duration{},
		IsolatedWorst:  map[string]sim.Duration{},
	}
	rep.PreciseInterfaces = true
	for _, f := range append(append([]*Flow(nil), base...), added...) {
		if f.Period <= 0 || f.Flits <= 0 {
			rep.PreciseInterfaces = false
		}
	}
	worst := func(flows []*Flow) (map[string]sim.Duration, error) {
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		net, err := NewNetwork(k, cfg, rec)
		if err != nil {
			return nil, err
		}
		for _, f := range flows {
			// Fresh copy: job counters and hooks must not leak across
			// simulations.
			cp := *f
			cp.OnDeliver = nil
			cp.nextJob = 0
			if err := net.AddFlow(&cp); err != nil {
				return nil, err
			}
		}
		net.Start()
		k.Run(horizon)
		out := map[string]sim.Duration{}
		for _, f := range flows {
			st := trace.Compute(rec.Latencies(f.Name))
			if st.N == 0 {
				return nil, fmt.Errorf("noc: flow %s never delivered in %v", f.Name, horizon)
			}
			out[f.Name] = st.Max
		}
		return out, nil
	}
	var err error
	if rep.PriorWorst, err = worst(base); err != nil {
		return nil, err
	}
	if rep.PosteriorWorst, err = worst(append(append([]*Flow(nil), base...), added...)); err != nil {
		return nil, err
	}
	for _, f := range base {
		solo, err := worst([]*Flow{f})
		if err != nil {
			return nil, err
		}
		rep.IsolatedWorst[f.Name] = solo[f.Name]
	}
	rep.StablePriorServices = true
	for _, f := range base {
		if rep.PosteriorWorst[f.Name] > rep.PriorWorst[f.Name] {
			rep.StablePriorServices = false
		}
	}
	rep.NonInterfering = true
	for _, f := range base {
		if rep.PriorWorst[f.Name] != rep.IsolatedWorst[f.Name] {
			rep.NonInterfering = false
		}
	}
	return rep, nil
}
