package noc

import (
	"fmt"
	"sort"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

// Network simulates the mesh.
type Network struct {
	Cfg   Config
	Trace *trace.Recorder

	k       *sim.Kernel
	flows   []*Flow
	links   map[link]*linkState
	started bool

	// fault state per core
	crashed map[Coord]sim.Time
	babbler map[Coord][2]sim.Time // babble window per core

	blockedInjections int64 // rate-police drops (R1/R4)
	delivered         int64
}

type linkState struct {
	busyUntil sim.Time
}

// packet is one in-flight transfer.
type packet struct {
	flow     *Flow
	job      int64
	queuedAt sim.Time
	path     []link
	hop      int
	done     bool
}

// NewNetwork creates a mesh on the kernel.
func NewNetwork(k *sim.Kernel, cfg Config, rec *trace.Recorder) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		Cfg: cfg, Trace: rec, k: k,
		links:   map[link]*linkState{},
		crashed: map[Coord]sim.Time{},
		babbler: map[Coord][2]sim.Time{},
	}, nil
}

// MustNewNetwork panics on configuration error.
func MustNewNetwork(k *sim.Kernel, cfg Config, rec *trace.Recorder) *Network {
	n, err := NewNetwork(k, cfg, rec)
	if err != nil {
		panic(err)
	}
	return n
}

// AddFlow declares a message stream. In TDMA mode the whole packet path
// must fit inside one slot.
func (n *Network) AddFlow(f *Flow) error {
	if n.started {
		return fmt.Errorf("noc: AddFlow after Start")
	}
	if err := f.validate(n.Cfg); err != nil {
		return err
	}
	for _, o := range n.flows {
		if o.Name == f.Name {
			return fmt.Errorf("noc: duplicate flow %s", f.Name)
		}
	}
	if n.Cfg.Mode == TDMA {
		if t := n.transferTime(f); t > n.Cfg.SlotLength {
			return fmt.Errorf("noc: flow %s: transfer %v exceeds TDMA slot %v", f.Name, t, n.Cfg.SlotLength)
		}
	}
	n.flows = append(n.flows, f)
	return nil
}

// MustAddFlow is AddFlow that panics on error.
func (n *Network) MustAddFlow(f *Flow) {
	if err := n.AddFlow(f); err != nil {
		panic(err)
	}
}

// Flows returns the declared flows.
func (n *Network) Flows() []*Flow { return n.flows }

// BlockedInjections returns how many packets guardians dropped at source.
func (n *Network) BlockedInjections() int64 { return n.blockedInjections }

// Delivered returns the total packets delivered.
func (n *Network) Delivered() int64 { return n.delivered }

// CrashCore stops a core from injecting at time t.
func (n *Network) CrashCore(c Coord, t sim.Time) { n.crashed[c] = t }

// BabbleCore makes a core inject a continuous stream of maximal packets
// to the opposite mesh corner during [from, until).
func (n *Network) BabbleCore(c Coord, from, until sim.Time) {
	n.babbler[c] = [2]sim.Time{from, until}
}

// transferTime is the contention-free end-to-end time of one packet:
// store-and-forward over each hop.
func (n *Network) transferTime(f *Flow) sim.Duration {
	return sim.Duration(f.Hops()) * sim.Duration(f.Flits) * n.Cfg.FlitTime
}

// Start installs periodic injections and fault processes.
func (n *Network) Start() {
	if n.started {
		return
	}
	n.started = true
	for _, f := range n.flows {
		if f.Period > 0 {
			n.schedulePeriodic(f, f.Offset)
		}
	}
	// Row-major core order: babble events enter the kernel queue in a
	// fixed sequence so equal-time ties break identically on every run.
	coords := make([]Coord, 0, len(n.babbler))
	for c := range n.babbler {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].Y != coords[j].Y {
			return coords[i].Y < coords[j].Y
		}
		return coords[i].X < coords[j].X
	})
	for _, c := range coords {
		w := n.babbler[c]
		n.scheduleBabble(c, w[0], w[1])
	}
}

func (n *Network) schedulePeriodic(f *Flow, at sim.Time) {
	n.k.AtPrio(at, 10, func() {
		n.Inject(f)
		n.schedulePeriodic(f, at+f.Period)
	})
}

// scheduleBabble injects an undeclared maximal packet every flit time.
func (n *Network) scheduleBabble(c Coord, from, until sim.Time) {
	dst := Coord{n.Cfg.Width - 1 - c.X, n.Cfg.Height - 1 - c.Y}
	rogue := &Flow{Name: fmt.Sprintf("babble%v", c), Src: c, Dst: dst, Flits: 16}
	var tick func(at sim.Time)
	tick = func(at sim.Time) {
		if at >= until {
			return
		}
		n.k.AtPrio(at, 11, func() {
			n.injectUndeclared(rogue)
			tick(at + 4*n.Cfg.FlitTime)
		})
	}
	tick(from)
}

// injectUndeclared models traffic outside any declared flow: in TDMA mode
// the time-triggered schedule physically has no slot for it (blocked); in
// best-effort mode the rate police (when armed) drops it, otherwise it
// floods the mesh.
func (n *Network) injectUndeclared(f *Flow) {
	if n.Cfg.Mode == TDMA || n.Cfg.RatePolice {
		n.blockedInjections++
		n.Trace.Emit(n.k.Now(), trace.Drop, f.Name, f.nextJob, "guardian blocked undeclared traffic")
		f.nextJob++
		return
	}
	n.forward(&packet{flow: f, job: f.nextJob, queuedAt: n.k.Now(), path: xyPath(f.Src, f.Dst)})
	f.nextJob++
}

// Inject queues one packet of a declared flow.
func (n *Network) Inject(f *Flow) {
	now := n.k.Now()
	job := f.nextJob
	f.nextJob++
	n.Trace.Emit(now, trace.Activate, f.Name, job, "")
	if t, down := n.crashed[f.Src]; down && now >= t {
		n.Trace.Emit(now, trace.Drop, f.Name, job, "core crashed")
		return
	}
	p := &packet{flow: f, job: job, queuedAt: now, path: xyPath(f.Src, f.Dst)}
	if d := f.relativeDeadline(); d > 0 {
		n.k.AtPrio(now+d, 20, func() {
			if !p.done {
				n.Trace.Emit(n.k.Now(), trace.Miss, f.Name, job, "")
			}
		})
	}
	switch n.Cfg.Mode {
	case BestEffort:
		n.forward(p)
	case TDMA:
		n.k.At(n.nextSlotStart(f.Src, now), func() { n.deliverTDMA(p) })
	}
}

// nextSlotStart returns the start of the core's next TDMA slot at or
// after now.
func (n *Network) nextSlotStart(c Coord, now sim.Time) sim.Time {
	cycle := sim.Duration(n.Cfg.Cores()) * n.Cfg.SlotLength
	slotOff := sim.Duration(n.Cfg.CoreIndex(c)) * n.Cfg.SlotLength
	base := now - now%cycle + slotOff
	if base < now {
		base += cycle
	}
	return base
}

// deliverTDMA completes a packet inside its reserved slot: by
// construction no other core transmits, so the transfer time is exact.
func (n *Network) deliverTDMA(p *packet) {
	end := n.k.Now() + n.transferTime(p.flow)
	n.k.At(end, func() { n.complete(p, end) })
}

// forward advances a best-effort packet one hop: it seizes the next link
// when free (FIFO via busyUntil) and holds it for the packet's serialized
// length.
func (n *Network) forward(p *packet) {
	if p.hop >= len(p.path) {
		n.complete(p, n.k.Now())
		return
	}
	l := p.path[p.hop]
	st := n.links[l]
	if st == nil {
		st = &linkState{}
		n.links[l] = st
	}
	now := n.k.Now()
	start := now
	if st.busyUntil > start {
		start = st.busyUntil
	}
	hold := sim.Duration(p.flow.Flits) * n.Cfg.FlitTime
	st.busyUntil = start + hold
	p.hop++
	n.k.At(start+hold, func() { n.forward(p) })
}

// complete finishes a packet.
func (n *Network) complete(p *packet, at sim.Time) {
	p.done = true
	n.delivered++
	n.Trace.Emit(at, trace.Finish, p.flow.Name, p.job, "")
	if p.flow.OnDeliver != nil {
		p.flow.OnDeliver(p.queuedAt, at)
	}
}
