// Package noc simulates the MPSoC execution environment of §4: IP cores
// on a mesh network-on-chip exchanging messages, with two arbitration
// modes — best-effort wormhole-style routing (the interference-prone
// baseline) and a TDMA-slotted time-triggered NoC that satisfies the
// paper's four composability requirements:
//
//	R1  precise interface specification  (declared flows, rate policing)
//	R2  stability of prior services      (adding flows leaves others intact)
//	R3  non-interfering interactions     (zero temporal interference)
//	R4  error containment                (faulty cores cannot disturb others)
//
// Experiment E8 exercises all four.
package noc

import (
	"fmt"

	"autorte/internal/sim"
)

// Mode selects the NoC arbitration discipline.
type Mode uint8

const (
	// BestEffort routes packets hop by hop with FIFO link arbitration:
	// latency depends on concurrent traffic.
	BestEffort Mode = iota
	// TDMA gives each core a periodic exclusive slot in which its packets
	// traverse the mesh contention-free.
	TDMA
)

func (m Mode) String() string {
	if m == BestEffort {
		return "best-effort"
	}
	return "tdma"
}

// Coord addresses a core on the mesh.
type Coord struct{ X, Y int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Config describes the mesh.
type Config struct {
	Width, Height int
	// FlitTime is the per-hop transfer time of one flit.
	FlitTime sim.Duration
	Mode     Mode
	// SlotLength is the per-core TDMA slot (TDMA mode only).
	SlotLength sim.Duration
	// RatePolice arms per-core guardians in best-effort mode: injections
	// beyond a flow's declared rate are dropped at the source.
	RatePolice bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width < 1 || c.Height < 1 {
		return fmt.Errorf("noc: empty mesh")
	}
	if c.FlitTime <= 0 {
		return fmt.Errorf("noc: non-positive flit time")
	}
	if c.Mode == TDMA && c.SlotLength <= 0 {
		return fmt.Errorf("noc: TDMA mode needs a slot length")
	}
	return nil
}

// Cores returns the number of cores on the mesh.
func (c Config) Cores() int { return c.Width * c.Height }

// Contains reports whether a coordinate is on the mesh.
func (c Config) Contains(p Coord) bool {
	return p.X >= 0 && p.X < c.Width && p.Y >= 0 && p.Y < c.Height
}

// CoreIndex is the TDMA slot order of a core.
func (c Config) CoreIndex(p Coord) int { return p.Y*c.Width + p.X }

// Flow is one declared message stream between two cores — the "precise
// interface specification in the temporal and logical domain" (R1).
type Flow struct {
	Name     string
	Src, Dst Coord
	// Flits is the packet length.
	Flits int
	// Period is the declared injection period (also the policed rate).
	Period sim.Duration
	Offset sim.Duration
	// Deadline defaults to Period.
	Deadline sim.Duration
	// OnDeliver observes completed transfers.
	OnDeliver func(queued, delivered sim.Time)

	nextJob int64
}

func (f *Flow) validate(cfg Config) error {
	if f.Name == "" {
		return fmt.Errorf("noc: flow with empty name")
	}
	if !cfg.Contains(f.Src) || !cfg.Contains(f.Dst) {
		return fmt.Errorf("noc: flow %s: endpoint off mesh", f.Name)
	}
	if f.Src == f.Dst {
		return fmt.Errorf("noc: flow %s: src == dst", f.Name)
	}
	if f.Flits < 1 {
		return fmt.Errorf("noc: flow %s: empty packet", f.Name)
	}
	if f.Period < 0 || f.Offset < 0 || f.Deadline < 0 {
		return fmt.Errorf("noc: flow %s: negative timing parameter", f.Name)
	}
	return nil
}

func (f *Flow) relativeDeadline() sim.Duration {
	if f.Deadline > 0 {
		return f.Deadline
	}
	return f.Period
}

// xyPath returns the XY-routed sequence of directed links from src to dst.
// A link is identified by its (from, to) router pair.
type link struct{ from, to Coord }

func xyPath(src, dst Coord) []link {
	var path []link
	cur := src
	for cur.X != dst.X {
		next := cur
		if dst.X > cur.X {
			next.X++
		} else {
			next.X--
		}
		path = append(path, link{cur, next})
		cur = next
	}
	for cur.Y != dst.Y {
		next := cur
		if dst.Y > cur.Y {
			next.Y++
		} else {
			next.Y--
		}
		path = append(path, link{cur, next})
		cur = next
	}
	return path
}

// Hops returns the Manhattan distance between the flow's endpoints.
func (f *Flow) Hops() int {
	return abs(f.Src.X-f.Dst.X) + abs(f.Src.Y-f.Dst.Y)
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
