package noc

import (
	"testing"
	"testing/quick"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

func beCfg() Config {
	return Config{Width: 4, Height: 4, FlitTime: sim.US(1), Mode: BestEffort}
}

func ttCfg() Config {
	return Config{Width: 4, Height: 4, FlitTime: sim.US(1), Mode: TDMA, SlotLength: sim.US(100)}
}

func TestConfigValidate(t *testing.T) {
	if (Config{Width: 0, Height: 1, FlitTime: 1}).Validate() == nil {
		t.Fatal("empty mesh accepted")
	}
	if (Config{Width: 2, Height: 2}).Validate() == nil {
		t.Fatal("zero flit time accepted")
	}
	if (Config{Width: 2, Height: 2, FlitTime: 1, Mode: TDMA}).Validate() == nil {
		t.Fatal("TDMA without slot accepted")
	}
	if beCfg().Validate() != nil || ttCfg().Validate() != nil {
		t.Fatal("valid configs rejected")
	}
}

func TestXYPath(t *testing.T) {
	p := xyPath(Coord{0, 0}, Coord{2, 1})
	if len(p) != 3 {
		t.Fatalf("path length %d, want 3", len(p))
	}
	// X first, then Y.
	if p[0].to != (Coord{1, 0}) || p[1].to != (Coord{2, 0}) || p[2].to != (Coord{2, 1}) {
		t.Fatalf("XY route wrong: %v", p)
	}
	f := &Flow{Src: Coord{0, 0}, Dst: Coord{3, 3}}
	if f.Hops() != 6 {
		t.Fatalf("hops = %d, want 6", f.Hops())
	}
}

func TestFlowValidation(t *testing.T) {
	k := sim.NewKernel()
	n := MustNewNetwork(k, beCfg(), nil)
	bad := []*Flow{
		{Name: "", Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 1},
		{Name: "off", Src: Coord{0, 0}, Dst: Coord{9, 0}, Flits: 1},
		{Name: "self", Src: Coord{1, 1}, Dst: Coord{1, 1}, Flits: 1},
		{Name: "empty", Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 0},
	}
	for i, f := range bad {
		if n.AddFlow(f) == nil {
			t.Errorf("bad flow %d accepted", i)
		}
	}
	n.MustAddFlow(&Flow{Name: "ok", Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 2, Period: sim.MS(1)})
	if n.AddFlow(&Flow{Name: "ok", Src: Coord{0, 1}, Dst: Coord{1, 1}, Flits: 1}) == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestTDMARejectsOversizedPacket(t *testing.T) {
	k := sim.NewKernel()
	n := MustNewNetwork(k, ttCfg(), nil)
	// 6 hops * 20 flits * 1us = 120us > 100us slot.
	if n.AddFlow(&Flow{Name: "big", Src: Coord{0, 0}, Dst: Coord{3, 3}, Flits: 20, Period: sim.MS(1)}) == nil {
		t.Fatal("packet exceeding slot accepted")
	}
}

func TestBestEffortUncontendedLatency(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	n := MustNewNetwork(k, beCfg(), rec)
	// 2 hops * 4 flits * 1us = 8us store-and-forward.
	n.MustAddFlow(&Flow{Name: "f", Src: Coord{0, 0}, Dst: Coord{2, 0}, Flits: 4, Period: sim.MS(1)})
	n.Start()
	k.Run(sim.MS(10))
	st := trace.Compute(rec.Latencies("f"))
	if st.N == 0 || st.Max != sim.US(8) {
		t.Fatalf("uncontended latency %v, want 8us", st.Max)
	}
	if st.Jitter != 0 {
		t.Fatalf("uncontended jitter %v, want 0", st.Jitter)
	}
}

func TestBestEffortContentionInflatesLatency(t *testing.T) {
	measure := func(withRival bool) sim.Duration {
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		n := MustNewNetwork(k, beCfg(), rec)
		n.MustAddFlow(&Flow{Name: "victim", Src: Coord{0, 0}, Dst: Coord{3, 0}, Flits: 4, Period: sim.US(100)})
		if withRival {
			// Same middle links, slightly offset phase.
			n.MustAddFlow(&Flow{Name: "rival", Src: Coord{1, 0}, Dst: Coord{3, 0}, Flits: 16, Period: sim.US(100), Offset: sim.US(1)})
		}
		n.Start()
		k.Run(sim.MS(20))
		return trace.Compute(rec.Latencies("victim")).Max
	}
	alone, contended := measure(false), measure(true)
	if contended <= alone {
		t.Fatalf("contention did not inflate latency: alone %v, contended %v", alone, contended)
	}
}

func TestTDMAIsolation(t *testing.T) {
	measure := func(withRival bool) (sim.Duration, sim.Duration) {
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		n := MustNewNetwork(k, ttCfg(), rec)
		n.MustAddFlow(&Flow{Name: "victim", Src: Coord{0, 0}, Dst: Coord{3, 0}, Flits: 4, Period: sim.MS(2)})
		if withRival {
			n.MustAddFlow(&Flow{Name: "rival", Src: Coord{1, 0}, Dst: Coord{3, 0}, Flits: 16, Period: sim.MS(2), Offset: sim.US(1)})
		}
		n.Start()
		k.Run(sim.MS(100))
		st := trace.Compute(rec.Latencies("victim"))
		return st.Max, st.Jitter
	}
	aloneMax, _ := measure(false)
	withMax, _ := measure(true)
	if aloneMax != withMax {
		t.Fatalf("R3 violated: TDMA victim latency moved %v -> %v under load", aloneMax, withMax)
	}
}

func TestBabblingContainedByTDMA(t *testing.T) {
	// Period = 2 TDMA cycles keeps injection phase locked, so any latency
	// movement can only come from the babbler.
	measure := func(babble bool) (trace.Stats, int64) {
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		n := MustNewNetwork(k, ttCfg(), rec)
		n.MustAddFlow(&Flow{Name: "crit", Src: Coord{0, 0}, Dst: Coord{3, 0}, Flits: 4, Period: sim.US(3200)})
		if babble {
			n.BabbleCore(Coord{1, 0}, 0, sim.MS(50))
		}
		n.Start()
		k.Run(sim.MS(100))
		return trace.Compute(rec.Latencies("crit")), n.BlockedInjections()
	}
	quiet, _ := measure(false)
	loud, blocked := measure(true)
	if loud.N == 0 {
		t.Fatal("critical flow dead")
	}
	if loud.Max != quiet.Max || loud.Jitter != quiet.Jitter {
		t.Fatalf("R4 violated: babbler moved TDMA latencies: quiet %v, loud %v", quiet, loud)
	}
	if blocked == 0 {
		t.Fatal("babble traffic not blocked/accounted")
	}
}

func TestBabblingDisturbsBestEffort(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	n := MustNewNetwork(k, beCfg(), rec)
	n.MustAddFlow(&Flow{Name: "crit", Src: Coord{0, 0}, Dst: Coord{3, 0}, Flits: 4, Period: sim.US(200)})
	// Babbler at (1,0) floods toward (2,3): its X-leg shares links with crit.
	n.BabbleCore(Coord{1, 0}, 0, sim.MS(50))
	n.Start()
	k.Run(sim.MS(100))
	st := trace.Compute(rec.Latencies("crit"))
	if st.Jitter == 0 {
		t.Fatal("unprotected best-effort mesh showed no interference; E8 baseline vacuous")
	}
}

func TestRatePoliceContainsBabbleInBestEffort(t *testing.T) {
	cfg := beCfg()
	cfg.RatePolice = true
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	n := MustNewNetwork(k, cfg, rec)
	n.MustAddFlow(&Flow{Name: "crit", Src: Coord{0, 0}, Dst: Coord{3, 0}, Flits: 4, Period: sim.US(200)})
	n.BabbleCore(Coord{1, 0}, 0, sim.MS(50))
	n.Start()
	k.Run(sim.MS(100))
	st := trace.Compute(rec.Latencies("crit"))
	if st.Jitter != 0 {
		t.Fatalf("rate police failed: jitter %v", st.Jitter)
	}
	if n.BlockedInjections() == 0 {
		t.Fatal("police never engaged")
	}
}

func TestCrashedCoreStopsInjecting(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	n := MustNewNetwork(k, beCfg(), rec)
	n.MustAddFlow(&Flow{Name: "f", Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 1, Period: sim.MS(1)})
	n.CrashCore(Coord{0, 0}, sim.MS(5))
	n.Start()
	k.Run(sim.US(9999))
	if got := rec.Count(trace.Finish, "f"); got != 5 {
		t.Fatalf("delivered %d, want 5 (crash at 5ms)", got)
	}
	if rec.Count(trace.Drop, "f") == 0 {
		t.Fatal("post-crash injections not recorded as drops")
	}
}

func TestTDMADeterministicLatency(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	n := MustNewNetwork(k, ttCfg(), rec)
	// Core (0,0) has slot 0 of 16; cycle = 1.6ms; period = cycle keeps
	// phase locked.
	n.MustAddFlow(&Flow{Name: "f", Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 4, Period: sim.US(1600)})
	n.Start()
	k.Run(sim.MS(50))
	st := trace.Compute(rec.Latencies("f"))
	if st.Jitter != 0 {
		t.Fatalf("TDMA jitter %v, want 0", st.Jitter)
	}
	// Injection at cycle start = slot start: transfer = 1 hop * 4 flits = 4us.
	if st.Max != sim.US(4) {
		t.Fatalf("TDMA latency %v, want 4us", st.Max)
	}
}

func TestCheckComposition(t *testing.T) {
	base := []*Flow{
		{Name: "a", Src: Coord{0, 0}, Dst: Coord{3, 0}, Flits: 4, Period: sim.MS(2)},
		{Name: "b", Src: Coord{0, 1}, Dst: Coord{3, 1}, Flits: 4, Period: sim.MS(2)},
	}
	added := []*Flow{
		{Name: "new", Src: Coord{1, 0}, Dst: Coord{3, 0}, Flits: 8, Period: sim.MS(2)},
	}
	ttRep, err := CheckComposition(ttCfg(), base, added, sim.MS(100))
	if err != nil {
		t.Fatal(err)
	}
	if !ttRep.PreciseInterfaces || !ttRep.StablePriorServices || !ttRep.NonInterfering {
		t.Fatalf("TDMA should satisfy R1-R3: %+v", ttRep)
	}
	beRep, err := CheckComposition(beCfg(), base, added, sim.MS(100))
	if err != nil {
		t.Fatal(err)
	}
	// In best effort, the added flow shares links with "a": stability must
	// be violated.
	if beRep.StablePriorServices {
		t.Fatal("best-effort reported stable prior services under added load")
	}
}

func TestCheckCompositionFlagsUnspecifiedFlow(t *testing.T) {
	base := []*Flow{{Name: "a", Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 4, Period: sim.MS(2)}}
	rep, err := CheckComposition(ttCfg(), base, nil, sim.MS(50))
	if err != nil || !rep.PreciseInterfaces {
		t.Fatalf("specified flow flagged: %v %+v", err, rep)
	}
	// Period 0 = no temporal spec -> R1 fails. (Simulate needs periodic
	// flows, so use a period but clear it for the check... instead verify
	// via direct flag.)
	bad := []*Flow{{Name: "b", Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 4}}
	if _, err := CheckComposition(ttCfg(), bad, nil, sim.MS(50)); err == nil {
		t.Fatal("aperiodic flow should fail simulation (never delivered)")
	}
}

func TestModeString(t *testing.T) {
	if BestEffort.String() != "best-effort" || TDMA.String() != "tdma" {
		t.Fatal("mode names")
	}
	if (Coord{1, 2}).String() != "(1,2)" {
		t.Fatal("coord string")
	}
}

func TestXYPathLengthIsManhattanQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		src := Coord{X: r.Intn(8), Y: r.Intn(8)}
		dst := Coord{X: r.Intn(8), Y: r.Intn(8)}
		if src == dst {
			return true
		}
		path := xyPath(src, dst)
		fl := &Flow{Src: src, Dst: dst}
		if len(path) != fl.Hops() {
			return false
		}
		// Path is connected, starts at src, ends at dst, each hop length 1.
		cur := src
		for _, l := range path {
			if l.from != cur {
				return false
			}
			if abs(l.to.X-l.from.X)+abs(l.to.Y-l.from.Y) != 1 {
				return false
			}
			cur = l.to
		}
		return cur == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
