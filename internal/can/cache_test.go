package can

import (
	"testing"

	"autorte/internal/sim"
)

func cacheMsgs() []*Message {
	return []*Message{
		{Name: "m1", ID: 0x100, DLC: 4, Period: sim.MS(10)},
		{Name: "m2", ID: 0x101, DLC: 8, Period: sim.MS(20)},
		{Name: "m3", ID: 0x102, DLC: 2, Period: sim.MS(50)},
	}
}

func TestCacheMatchesDirectAnalysis(t *testing.T) {
	cfg := Config{BitRate: 500_000}
	c := NewCache()
	want, err := Analyze(cfg, cacheMsgs())
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		msgs := cacheMsgs() // fresh pointers every pass
		got, err := c.Analyze(cfg, msgs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d responses, want %d", pass, len(got), len(want))
		}
		for i := range got {
			if got[i].WCRT != want[i].WCRT || got[i].Blocking != want[i].Blocking ||
				got[i].Schedulable != want[i].Schedulable {
				t.Fatalf("pass %d: response %d diverges: %+v vs %+v", pass, i, got[i], want[i])
			}
			// Hits must re-bind responses to the caller's messages.
			if got[i].Message != msgs[i] {
				t.Fatalf("pass %d: response %d not bound to caller's message", pass, i)
			}
		}
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", hits, misses)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	cfg := Config{BitRate: 500_000}
	a := cacheMsgs()
	b := cacheMsgs()
	b[1].Jitter = sim.US(100)
	if cacheKey(cfg, a) == cacheKey(cfg, b) {
		t.Fatal("jitter change must change the key")
	}
	if cacheKey(Config{BitRate: 250_000}, a) == cacheKey(cfg, a) {
		t.Fatal("bit-rate change must change the key")
	}
	// ID-permuted input analyzes identically, so it shares a key.
	perm := []*Message{a[2], a[0], a[1]}
	if cacheKey(cfg, a) != cacheKey(cfg, perm) {
		t.Fatal("permuted message order should share a key")
	}
}
