package can

import (
	"fmt"
	"sort"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

// Bus simulates one CAN channel: pending frames arbitrate by ID whenever
// the bus goes idle; transmission is non-preemptive; corrupted frames
// raise an error frame and are retransmitted automatically.
type Bus struct {
	Name  string
	Cfg   Config
	Trace *trace.Recorder
	// ErrorInjector, when set, is consulted once per transmission attempt;
	// returning true corrupts that attempt (fault injection hook).
	ErrorInjector func(m *Message, attempt int, at sim.Time) bool
	// Mute, when set, drops every frame whose sender matches (simulates a
	// failed or guardian-blocked node).
	Mute map[string]bool

	k        *sim.Kernel
	messages []*Message
	pending  []*pendingTx
	busy     bool
	started  bool
	arbArmed bool

	busyTime sim.Duration // accumulated transmission time (load accounting)
	retrans  int64
}

type pendingTx struct {
	msg      *Message
	queuedAt sim.Time
	job      int64
	attempt  int
	payload  []byte
}

// NewBus creates a channel on the kernel.
func NewBus(k *sim.Kernel, name string, cfg Config, rec *trace.Recorder) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bus{Name: name, Cfg: cfg, Trace: rec, k: k}, nil
}

// MustNewBus panics on config error; for tests and examples.
func MustNewBus(k *sim.Kernel, name string, cfg Config, rec *trace.Recorder) *Bus {
	b, err := NewBus(k, name, cfg, rec)
	if err != nil {
		panic(err)
	}
	return b
}

// Kernel returns the simulation kernel.
func (b *Bus) Kernel() *sim.Kernel { return b.k }

// AddMessage registers a message stream. Must precede Start.
func (b *Bus) AddMessage(m *Message) error {
	if b.started {
		return fmt.Errorf("can: bus %s: AddMessage after Start", b.Name)
	}
	if err := m.validate(); err != nil {
		return err
	}
	for _, other := range b.messages {
		if other.Name == m.Name {
			return fmt.Errorf("can: bus %s: duplicate message %s", b.Name, m.Name)
		}
		if other.ID == m.ID {
			return fmt.Errorf("can: bus %s: duplicate ID %#x (%s, %s)", b.Name, m.ID, other.Name, m.Name)
		}
	}
	b.messages = append(b.messages, m)
	return nil
}

// MustAddMessage is AddMessage that panics on error.
func (b *Bus) MustAddMessage(m *Message) {
	if err := b.AddMessage(m); err != nil {
		panic(err)
	}
}

// Messages returns the registered message streams.
func (b *Bus) Messages() []*Message { return b.messages }

// Retransmissions returns the count of error-triggered retransmissions.
func (b *Bus) Retransmissions() int64 { return b.retrans }

// Load returns the fraction of elapsed time the bus spent transmitting.
func (b *Bus) Load() float64 {
	if b.k.Now() == 0 {
		return 0
	}
	return float64(b.busyTime) / float64(b.k.Now())
}

// Start installs periodic queuing for all periodic messages.
func (b *Bus) Start() {
	if b.started {
		return
	}
	b.started = true
	for _, m := range b.messages {
		if m.Period > 0 {
			b.schedulePeriodic(m, m.Offset)
		}
	}
}

func (b *Bus) schedulePeriodic(m *Message, at sim.Time) {
	b.k.AtPrio(at, 10, func() {
		b.Queue(m)
		b.schedulePeriodic(m, at+m.Period)
	})
}

// Queue enqueues one instance of m for transmission.
func (b *Bus) Queue(m *Message) { b.QueuePayload(m, nil) }

// QueuePayload enqueues one instance of m carrying an application payload
// that is handed to OnDeliver at the receiving end.
func (b *Bus) QueuePayload(m *Message, payload []byte) {
	now := b.k.Now()
	job := m.nextJob
	m.nextJob++
	b.Trace.Emit(now, trace.Activate, m.Name, job, "")
	if b.Mute[m.sender] {
		b.Trace.Emit(now, trace.Drop, m.Name, job, "node muted")
		return
	}
	tx := &pendingTx{msg: m, queuedAt: now, job: job, payload: payload}
	b.pending = append(b.pending, tx)
	if d := m.relativeDeadline(); d > 0 {
		b.k.AtPrio(now+d, 20, func() {
			for _, p := range b.pending {
				if p == tx {
					b.Trace.Emit(b.k.Now(), trace.Miss, m.Name, job, "")
					return
				}
			}
		})
	}
	b.scheduleArbitrate()
}

// scheduleArbitrate defers arbitration to the end of the current instant,
// so frames queued by different nodes at the same virtual time all
// participate in one arbitration round (as they would at a shared SOF).
func (b *Bus) scheduleArbitrate() {
	if b.busy || b.arbArmed {
		return
	}
	b.arbArmed = true
	b.k.AtPrio(b.k.Now(), 50, func() {
		b.arbArmed = false
		b.arbitrate()
	})
}

// arbitrate starts transmission of the highest-priority pending frame if
// the bus is idle.
func (b *Bus) arbitrate() {
	if b.busy || len(b.pending) == 0 {
		return
	}
	// Lowest ID wins; FIFO among instances of the same message.
	sort.SliceStable(b.pending, func(i, j int) bool {
		if b.pending[i].msg.ID != b.pending[j].msg.ID {
			return b.pending[i].msg.ID < b.pending[j].msg.ID
		}
		return b.pending[i].queuedAt < b.pending[j].queuedAt
	})
	tx := b.pending[0]
	b.busy = true
	b.Trace.Emit(b.k.Now(), trace.Start, tx.msg.Name, tx.job, "")
	dur := b.Cfg.FrameTime(tx.msg.DLC)
	if b.ErrorInjector != nil && b.ErrorInjector(tx.msg, tx.attempt, b.k.Now()) {
		// Corruption: error frame, then automatic retransmission. The slot
		// wasted is the full frame plus the error frame (worst case).
		wasted := dur + sim.Duration(errorFrameBits)*b.Cfg.BitTime()
		b.busyTime += wasted
		b.k.After(wasted, func() {
			b.busy = false
			tx.attempt++
			b.retrans++
			b.Trace.Emit(b.k.Now(), trace.Error, tx.msg.Name, tx.job, "frame corrupted")
			b.arbitrate()
		})
		return
	}
	b.busyTime += dur
	b.k.After(dur, func() {
		b.busy = false
		// The winning frame is still pending[0]: arbitration is
		// non-preemptive and Queue never removes entries.
		b.pending = b.pending[1:]
		b.Trace.Emit(b.k.Now(), trace.Finish, tx.msg.Name, tx.job, "")
		if tx.msg.OnDeliver != nil {
			tx.msg.OnDeliver(tx.queuedAt, b.k.Now(), tx.payload)
		}
		b.arbitrate()
	})
}
