// Package can simulates the CAN bus — the event-triggered, priority-
// arbitrated channel the paper contrasts with time-triggered protocols —
// and provides the classic worst-case response-time analysis for it.
//
// The simulator models ID arbitration, non-preemptive transmission with
// worst-case bit stuffing, error frames and automatic retransmission.
// CAN's characteristic behaviour for the experiments is that message
// latency depends on the load other nodes offer: there is no temporal
// isolation between frames, only priority.
package can

import (
	"fmt"

	"autorte/internal/sim"
)

// Config describes one CAN channel.
type Config struct {
	BitRate  int64 // bits per second (classic CAN: up to 1 Mbit/s)
	Extended bool  // 29-bit identifiers
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BitRate <= 0 {
		return fmt.Errorf("can: non-positive bit rate")
	}
	if c.BitRate > 1_000_000 {
		return fmt.Errorf("can: bit rate %d above classic CAN limit 1 Mbit/s", c.BitRate)
	}
	return nil
}

// BitTime returns the duration of one bit on the channel.
func (c Config) BitTime() sim.Duration {
	return sim.Duration(int64(sim.Second) / c.BitRate)
}

// FrameBits returns the worst-case (maximally stuffed) frame length in
// bits for a payload of dlc bytes, per the standard analysis
// (Davis, Burns, Bril, Lukkien, 2007):
//
//	standard ID:  8n + 47 + floor((34 + 8n - 1) / 4)
//	extended ID:  8n + 67 + floor((54 + 8n - 1) / 4)
func FrameBits(dlc int, extended bool) int {
	if dlc < 0 {
		dlc = 0
	}
	if dlc > 8 {
		dlc = 8
	}
	n := 8 * dlc
	if extended {
		return n + 67 + (54+n-1)/4
	}
	return n + 47 + (34+n-1)/4
}

// FrameTime returns the worst-case transmission time of a frame.
func (c Config) FrameTime(dlc int) sim.Duration {
	return sim.Duration(FrameBits(dlc, c.Extended)) * c.BitTime()
}

// errorFrameBits is the worst-case length of an error flag plus delimiter
// plus interframe space that follows a detected error (CAN 2.0: up to 31
// bit times).
const errorFrameBits = 31

// Message is one CAN frame stream. Lower ID wins arbitration.
type Message struct {
	Name string
	ID   uint32
	DLC  int // payload bytes, 0..8
	// Period/Offset make the message periodically queued. Period 0 means
	// the message is queued only via Bus.Queue (sporadic/COM-driven).
	Period sim.Duration
	Offset sim.Duration
	// Jitter is the queuing jitter bound used by the analysis (release
	// may lag the period start by up to Jitter).
	Jitter sim.Duration
	// Deadline (relative to queuing) is monitored by the simulator and
	// used by schedulability verdicts; 0 defaults to Period.
	Deadline sim.Duration
	// OnDeliver is invoked at successful end of transmission.
	OnDeliver func(queued, delivered sim.Time, payload []byte)

	sender  string // optional node name (membership/fault attribution)
	nextJob int64  // per-stream instance counter
}

// SetSender tags the transmitting node.
func (m *Message) SetSender(node string) { m.sender = node }

// Sender returns the transmitting node tag.
func (m *Message) Sender() string { return m.sender }

func (m *Message) validate() error {
	if m.Name == "" {
		return fmt.Errorf("can: message with empty name")
	}
	if m.DLC < 0 || m.DLC > 8 {
		return fmt.Errorf("can: message %s: DLC %d outside 0..8", m.Name, m.DLC)
	}
	if m.ID > 0x1FFFFFFF {
		return fmt.Errorf("can: message %s: ID %#x above 29 bits", m.Name, m.ID)
	}
	if m.Period < 0 || m.Offset < 0 || m.Jitter < 0 || m.Deadline < 0 {
		return fmt.Errorf("can: message %s: negative timing parameter", m.Name)
	}
	return nil
}

// relativeDeadline returns the monitored deadline (0 = none).
func (m *Message) relativeDeadline() sim.Duration {
	if m.Deadline > 0 {
		return m.Deadline
	}
	return m.Period
}
