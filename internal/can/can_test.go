package can

import (
	"testing"
	"testing/quick"

	"autorte/internal/sim"
	"autorte/internal/trace"
)

func cfg500k() Config { return Config{BitRate: 500_000} }

func TestFrameBits(t *testing.T) {
	// Standard formula: 8n + 47 + floor((34+8n-1)/4).
	cases := []struct {
		dlc, want int
		extended  bool
	}{
		{0, 47 + 8, false},        // 47 + floor(33/4)=8 -> 55
		{8, 64 + 47 + 24, false},  // 64+47+floor(97/4)=24 -> 135
		{8, 64 + 67 + 29, true},   // 64+67+floor(117/4)=29 -> 160
		{-1, 47 + 8, false},       // clamped to 0
		{99, 64 + 47 + 24, false}, // clamped to 8
	}
	for _, c := range cases {
		if got := FrameBits(c.dlc, c.extended); got != c.want {
			t.Errorf("FrameBits(%d, %v) = %d, want %d", c.dlc, c.extended, got, c.want)
		}
	}
}

func TestFrameTime(t *testing.T) {
	c := cfg500k()
	// 135 bits at 500 kbit/s = 270 us.
	if got := c.FrameTime(8); got != sim.US(270) {
		t.Fatalf("FrameTime(8) = %v, want 270us", got)
	}
	if c.BitTime() != sim.US(2) {
		t.Fatalf("BitTime = %v, want 2us", c.BitTime())
	}
}

func TestConfigValidate(t *testing.T) {
	if (Config{BitRate: 0}).Validate() == nil {
		t.Fatal("zero bit rate accepted")
	}
	if (Config{BitRate: 2_000_000}).Validate() == nil {
		t.Fatal("2 Mbit/s classic CAN accepted")
	}
	if cfg500k().Validate() != nil {
		t.Fatal("500k rejected")
	}
}

func TestMessageValidation(t *testing.T) {
	k := sim.NewKernel()
	b := MustNewBus(k, "can0", cfg500k(), nil)
	if err := b.AddMessage(&Message{Name: "", ID: 1, DLC: 8}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := b.AddMessage(&Message{Name: "x", ID: 1, DLC: 9}); err == nil {
		t.Fatal("DLC 9 accepted")
	}
	if err := b.AddMessage(&Message{Name: "x", ID: 0x3FFFFFFF, DLC: 1}); err == nil {
		t.Fatal("30-bit ID accepted")
	}
	b.MustAddMessage(&Message{Name: "a", ID: 1, DLC: 8, Period: sim.MS(10)})
	if err := b.AddMessage(&Message{Name: "a", ID: 2, DLC: 8}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := b.AddMessage(&Message{Name: "b", ID: 1, DLC: 8}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestArbitrationByID(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "can0", cfg500k(), rec)
	hi := &Message{Name: "hi", ID: 0x10, DLC: 8}
	lo := &Message{Name: "lo", ID: 0x20, DLC: 8}
	b.MustAddMessage(hi)
	b.MustAddMessage(lo)
	b.Start()
	// Queue the low-ID message *after* the high-ID one, while the bus is
	// idle-free: queue both at t=0; lower ID must win.
	k.At(0, func() { b.Queue(lo); b.Queue(hi) })
	k.Run(sim.MS(5))
	frameT := cfg500k().FrameTime(8)
	hiLat := rec.Latencies("hi")
	loLat := rec.Latencies("lo")
	if len(hiLat) != 1 || hiLat[0] != frameT {
		t.Fatalf("hi latency %v, want [%v]", hiLat, frameT)
	}
	if len(loLat) != 1 || loLat[0] != 2*frameT {
		t.Fatalf("lo latency %v, want [%v]", loLat, 2*frameT)
	}
}

func TestNonPreemptiveTransmission(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "can0", cfg500k(), rec)
	hi := &Message{Name: "hi", ID: 1, DLC: 8}
	lo := &Message{Name: "lo", ID: 9, DLC: 8}
	b.MustAddMessage(hi)
	b.MustAddMessage(lo)
	b.Start()
	frameT := cfg500k().FrameTime(8)
	// lo starts at 0; hi arrives mid-transmission and must wait.
	k.At(0, func() { b.Queue(lo) })
	k.At(frameT/2, func() { b.Queue(hi) })
	k.Run(sim.MS(5))
	hiLat := rec.Latencies("hi")
	if len(hiLat) != 1 || hiLat[0] != frameT/2+frameT {
		t.Fatalf("hi latency %v, want [%v] (blocked by lower priority)", hiLat, frameT/2+frameT)
	}
}

func TestPeriodicQueuing(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "can0", cfg500k(), rec)
	b.MustAddMessage(&Message{Name: "p", ID: 1, DLC: 4, Period: sim.MS(10)})
	b.Start()
	k.Run(sim.MS(95))
	if got := rec.Count(trace.Finish, "p"); got != 10 {
		t.Fatalf("delivered %d frames, want 10", got)
	}
}

func TestErrorRetransmission(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "can0", cfg500k(), rec)
	m := &Message{Name: "m", ID: 1, DLC: 8}
	b.MustAddMessage(m)
	// First attempt corrupted, second succeeds.
	b.ErrorInjector = func(_ *Message, attempt int, _ sim.Time) bool { return attempt == 0 }
	b.Start()
	k.At(0, func() { b.Queue(m) })
	k.Run(sim.MS(5))
	if b.Retransmissions() != 1 {
		t.Fatalf("retransmissions = %d, want 1", b.Retransmissions())
	}
	lat := rec.Latencies("m")
	c := cfg500k()
	want := c.FrameTime(8) + sim.Duration(errorFrameBits)*c.BitTime() + c.FrameTime(8)
	if len(lat) != 1 || lat[0] != want {
		t.Fatalf("latency with one error %v, want [%v]", lat, want)
	}
	if rec.Count(trace.Error, "m") != 1 {
		t.Fatal("error frame not recorded")
	}
}

func TestMutedNodeDropsFrames(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "can0", cfg500k(), rec)
	m := &Message{Name: "m", ID: 1, DLC: 8, Period: sim.MS(10)}
	m.SetSender("node3")
	b.MustAddMessage(m)
	b.Mute = map[string]bool{"node3": true}
	b.Start()
	k.Run(sim.MS(50))
	if rec.Count(trace.Finish, "m") != 0 {
		t.Fatal("muted node delivered frames")
	}
	if rec.Count(trace.Drop, "m") == 0 {
		t.Fatal("mute drops not recorded")
	}
}

func TestDeadlineMissRecorded(t *testing.T) {
	k := sim.NewKernel()
	rec := &trace.Recorder{}
	b := MustNewBus(k, "can0", cfg500k(), rec)
	// Hog the bus with a high-priority 1ms-period message so the victim
	// (deadline 500us) misses.
	b.MustAddMessage(&Message{Name: "hog", ID: 1, DLC: 8, Period: sim.US(280)})
	b.MustAddMessage(&Message{Name: "victim", ID: 100, DLC: 8, Period: sim.MS(10), Deadline: sim.US(500)})
	b.Start()
	k.Run(sim.MS(50))
	if rec.Count(trace.Miss, "victim") == 0 {
		t.Fatal("starved victim reported no deadline miss")
	}
}

func TestAnalyzeSimpleSet(t *testing.T) {
	c := cfg500k()
	frame := c.FrameTime(8) // 270us
	msgs := []*Message{
		{Name: "m1", ID: 1, DLC: 8, Period: sim.MS(5)},
		{Name: "m2", ID: 2, DLC: 8, Period: sim.MS(10)},
		{Name: "m3", ID: 3, DLC: 8, Period: sim.MS(20)},
	}
	rs, err := Analyze(c, msgs)
	if err != nil {
		t.Fatal(err)
	}
	// m1: blocking = one lower frame, R = B + C = 540us.
	if rs[0].WCRT != 2*frame {
		t.Errorf("m1 WCRT %v, want %v", rs[0].WCRT, 2*frame)
	}
	// m2: blocked by m3 frame + one m1 frame + own: 3 frames.
	if rs[1].WCRT != 3*frame {
		t.Errorf("m2 WCRT %v, want %v", rs[1].WCRT, 3*frame)
	}
	// m3: no lower blocking, interference from m1 and m2.
	if rs[2].WCRT != 3*frame {
		t.Errorf("m3 WCRT %v, want %v", rs[2].WCRT, 3*frame)
	}
	for _, r := range rs {
		if !r.Schedulable {
			t.Errorf("%s unschedulable at trivial load", r.Message.Name)
		}
	}
}

func TestAnalyzeDetectsOverload(t *testing.T) {
	c := cfg500k()
	msgs := []*Message{
		{Name: "m1", ID: 1, DLC: 8, Period: sim.US(300)}, // U = 0.9
		{Name: "m2", ID: 2, DLC: 8, Period: sim.US(600)}, // U = 0.45 -> total 1.35
	}
	rs, err := Analyze(c, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Schedulable {
		t.Fatal("overloaded message reported schedulable")
	}
}

func TestAnalyzeRequiresPeriod(t *testing.T) {
	if _, err := Analyze(cfg500k(), []*Message{{Name: "m", ID: 1, DLC: 8}}); err == nil {
		t.Fatal("aperiodic message analyzed without MINT")
	}
}

// TestAnalysisDominatesSimulation is the package-level version of E5:
// the analytic WCRT must upper-bound every observed response time.
func TestAnalysisDominatesSimulation(t *testing.T) {
	c := cfg500k()
	r := sim.NewRand(7)
	periods := []sim.Duration{sim.MS(5), sim.MS(10), sim.MS(20), sim.MS(50), sim.MS(100)}
	for trial := 0; trial < 10; trial++ {
		var msgs []*Message
		n := 5 + r.Intn(10)
		for i := 0; i < n; i++ {
			msgs = append(msgs, &Message{
				Name:   "m" + string(rune('A'+i)),
				ID:     uint32(i + 1),
				DLC:    1 + r.Intn(8),
				Period: periods[r.Intn(len(periods))],
			})
		}
		if TotalUtilization(c, msgs) > 0.9 {
			continue
		}
		rs, err := Analyze(c, msgs)
		if err != nil {
			t.Fatal(err)
		}
		wcrt := map[string]sim.Duration{}
		for _, resp := range rs {
			wcrt[resp.Message.Name] = resp.WCRT
		}
		k := sim.NewKernel()
		rec := &trace.Recorder{}
		b := MustNewBus(k, "can0", c, rec)
		for _, m := range msgs {
			b.MustAddMessage(m)
		}
		b.Start()
		k.Run(sim.Second)
		for _, m := range msgs {
			st := trace.Compute(rec.Latencies(m.Name))
			if st.N == 0 {
				t.Fatalf("trial %d: %s never delivered", trial, m.Name)
			}
			if st.Max > wcrt[m.Name] {
				t.Fatalf("trial %d: %s simulated max %v exceeds analytic WCRT %v",
					trial, m.Name, st.Max, wcrt[m.Name])
			}
		}
	}
}

func TestTotalUtilization(t *testing.T) {
	c := cfg500k()
	msgs := []*Message{{Name: "m", ID: 1, DLC: 8, Period: sim.US(540)}}
	// 270us frame / 540us period = 0.5.
	if u := TotalUtilization(c, msgs); u < 0.499 || u > 0.501 {
		t.Fatalf("utilization %v, want 0.5", u)
	}
}

func TestBusLoadAccounting(t *testing.T) {
	k := sim.NewKernel()
	b := MustNewBus(k, "can0", cfg500k(), nil)
	b.MustAddMessage(&Message{Name: "m", ID: 1, DLC: 8, Period: sim.US(540)})
	b.Start()
	k.Run(sim.MS(100))
	if l := b.Load(); l < 0.45 || l > 0.55 {
		t.Fatalf("bus load %v, want ~0.5", l)
	}
}

func TestFrameBitsMonotonic(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a%9), int(b%9)
		if x > y {
			x, y = y, x
		}
		return FrameBits(x, false) <= FrameBits(y, false) &&
			FrameBits(x, true) <= FrameBits(y, true) &&
			FrameBits(x, true) > FrameBits(x, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
