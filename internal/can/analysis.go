package can

import (
	"fmt"
	"sort"

	"autorte/internal/sim"
)

// Response is the analytic worst-case response time of one message.
type Response struct {
	Message     *Message
	WCRT        sim.Duration // queuing to end of transmission
	Blocking    sim.Duration // lower-priority non-preemptive blocking
	Schedulable bool         // WCRT <= deadline (when a deadline exists)
}

// Analyze computes worst-case response times for a CAN message set using
// the standard fixed-priority non-preemptive analysis (Tindell/Burns,
// corrected per Davis et al. 2007):
//
//	w_m^(n+1) = B_m + Σ_{k ∈ hp(m)} ceil((w_m^(n) + J_k + τ_bit) / T_k) · C_k
//	R_m       = J_m + w_m + C_m
//
// The iteration is valid while R_m ≤ T_m (single outstanding instance);
// sets violating that are flagged unschedulable. Sporadic messages must
// carry Period = minimum inter-arrival time to be analyzable.
func Analyze(cfg Config, msgs []*Message) ([]Response, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	byPrio := msgs
	for i := 1; i < len(msgs); i++ {
		if msgs[i-1].ID > msgs[i].ID {
			byPrio = append([]*Message(nil), msgs...)
			sort.Slice(byPrio, func(i, j int) bool { return byPrio[i].ID < byPrio[j].ID })
			break
		}
	}
	tau := cfg.BitTime()
	// Frame times depend only on the DLC; computing them once up front
	// keeps the recurrence's inner loop (the analysis hot spot) on cached
	// values instead of re-deriving the stuff-bit model per iteration.
	ct := make([]sim.Duration, len(byPrio))
	for i, m := range byPrio {
		ct[i] = cfg.FrameTime(m.DLC)
	}
	out := make([]Response, 0, len(byPrio))
	for i, m := range byPrio {
		if err := m.validate(); err != nil {
			return nil, err
		}
		if m.Period <= 0 {
			return nil, fmt.Errorf("can: analysis needs a period (or MINT) for %s", m.Name)
		}
		c := ct[i]
		// Blocking: longest lower-priority frame already on the wire.
		var block sim.Duration
		for j := i + 1; j < len(byPrio); j++ {
			if ct[j] > block {
				block = ct[j]
			}
		}
		w := block
		if w == 0 {
			w = tau
		}
		const maxIter = 100000
		converged := false
		for iter := 0; iter < maxIter; iter++ {
			next := block
			for j, hp := range byPrio[:i] {
				n := ceilDiv(int64(w+hp.Jitter+tau), int64(hp.Period))
				next += sim.Duration(n) * ct[j]
			}
			if next == w {
				converged = true
				break
			}
			w = next
			if m.Jitter+w+c > 100*m.Period {
				break // diverging: hopelessly overloaded
			}
		}
		r := m.Jitter + w + c
		resp := Response{Message: m, WCRT: r, Blocking: block}
		d := m.relativeDeadline()
		// The single-instance iteration is only sound when the level-m
		// busy period is bounded, i.e. utilization at and above m's
		// priority is below 1.
		uLevel := float64(c) / float64(m.Period)
		for j, hp := range byPrio[:i] {
			uLevel += float64(ct[j]) / float64(hp.Period)
		}
		resp.Schedulable = converged && uLevel < 1 && r <= d && r <= m.Period
		out = append(out, resp)
	}
	return out, nil
}

// ceilDiv is ceil(a/b) for positive operands (w starts at >= one bit time,
// so the numerator is always positive here).
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// TotalUtilization returns the bus utilization of a message set.
func TotalUtilization(cfg Config, msgs []*Message) float64 {
	u := 0.0
	for _, m := range msgs {
		if m.Period > 0 {
			u += float64(cfg.FrameTime(m.DLC)) / float64(m.Period)
		}
	}
	return u
}
