package can

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"autorte/internal/flight"
	"autorte/internal/obs"
)

// keyBufPool recycles key scratch buffers across lookups (see sched's
// twin) so steady-state verification builds keys without allocating.
var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// sortedByID reports whether msgs already arrive in the priority order
// Analyze uses; the verifier's message builders emit ID-ordered sets, so
// the sort copy is skipped for them.
func sortedByID(msgs []*Message) bool {
	for i := 1; i < len(msgs); i++ {
		if msgs[i-1].ID > msgs[i].ID {
			return false
		}
	}
	return true
}

// appendKey serializes the analysis-relevant view of a message set under a
// configuration into buf: frames sorted by ID — the priority order Analyze
// uses — with every field the recurrence reads. OnDeliver callbacks and
// runtime bookkeeping are irrelevant to the analysis and excluded.
func appendKey(buf []byte, cfg Config, msgs []*Message) []byte {
	byPrio := msgs
	if !sortedByID(msgs) {
		byPrio = append([]*Message(nil), msgs...)
		sort.SliceStable(byPrio, func(i, j int) bool { return byPrio[i].ID < byPrio[j].ID })
	}
	buf = strconv.AppendInt(buf, cfg.BitRate, 10)
	if cfg.Extended {
		buf = append(buf, 'x')
	}
	buf = append(buf, '|')
	for _, m := range byPrio {
		buf = strconv.AppendInt(buf, int64(len(m.Name)), 10)
		buf = append(buf, ':')
		buf = append(buf, m.Name...)
		buf = strconv.AppendUint(buf, uint64(m.ID), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(m.DLC), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(m.Period), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(m.Jitter), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(m.Deadline), 10)
		buf = append(buf, ';')
	}
	return buf
}

// cacheKey materializes appendKey as a string (kept for tests and
// debugging; the cache itself looks up via pooled buffers).
func cacheKey(cfg Config, msgs []*Message) string {
	bp := keyBufPool.Get().(*[]byte)
	buf := appendKey((*bp)[:0], cfg, msgs)
	s := string(buf)
	*bp = buf
	keyBufPool.Put(bp)
	return s
}

// Cache memoizes Analyze by message-set key. During verification and DSE
// the same bus frame set is analyzed once per candidate mapping and once
// per chain stage; the cache collapses the repeats to a lookup. Safe for
// concurrent use; concurrent misses on one key coalesce onto one analysis.
type Cache struct {
	mu     sync.RWMutex
	m      map[string][]Response
	flight flight.Group[[]Response]
	hits   atomic.Uint64
	misses atomic.Uint64
	dedup  atomic.Uint64
}

// NewCache returns an empty CAN analysis cache.
func NewCache() *Cache {
	return &Cache{m: map[string][]Response{}}
}

// rebind copies cached numeric results and re-binds them to the caller's
// *Message values, matched by priority order. It fails when duplicate IDs
// shuffled the order (names mismatch), in which case the caller must
// recompute directly.
func rebind(cached []Response, msgs []*Message) ([]Response, bool) {
	byPrio := msgs
	if !sortedByID(msgs) {
		byPrio = append([]*Message(nil), msgs...)
		sort.SliceStable(byPrio, func(i, j int) bool { return byPrio[i].ID < byPrio[j].ID })
	}
	out := append([]Response(nil), cached...)
	for i := range out {
		if out[i].Message.Name != byPrio[i].Name {
			return nil, false
		}
		out[i].Message = byPrio[i]
	}
	return out, true
}

// lookup returns the cache-owned response slice for the message set,
// computing and storing it on a miss. Callers must treat the result as
// read-only; its Message pointers belong to whichever key-equal set first
// populated the entry.
func (c *Cache) lookup(cfg Config, msgs []*Message) ([]Response, error) {
	bp := keyBufPool.Get().(*[]byte)
	buf := appendKey((*bp)[:0], cfg, msgs)
	c.mu.RLock()
	cached, ok := c.m[string(buf)] // map index on converted bytes: no allocation
	c.mu.RUnlock()
	if ok {
		*bp = buf
		keyBufPool.Put(bp)
		c.hits.Add(1)
		return cached, nil
	}
	key := string(buf)
	*bp = buf
	keyBufPool.Put(bp)
	rs, err, shared := c.flight.Do(key, func() ([]Response, error) {
		// A racer may have stored the entry between our miss and winning
		// the flight; re-check before analyzing.
		c.mu.RLock()
		cached, ok := c.m[key]
		c.mu.RUnlock()
		if ok {
			c.hits.Add(1)
			return cached, nil
		}
		c.misses.Add(1)
		rs, err := Analyze(cfg, msgs)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.m[key] = rs
		c.mu.Unlock()
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		c.dedup.Add(1)
	}
	return rs, nil
}

// Analyze is the memoized equivalent of the package function. On a hit
// the cached numeric results are re-bound to the caller's *Message values
// (matched by priority order), so callers always see their own messages in
// the responses. A nil receiver degrades to the direct analysis.
func (c *Cache) Analyze(cfg Config, msgs []*Message) ([]Response, error) {
	if c == nil {
		return Analyze(cfg, msgs)
	}
	rs, err := c.lookup(cfg, msgs)
	if err != nil {
		return nil, err
	}
	// Re-bind a private copy to the caller's messages. The rebind also
	// guards the degenerate duplicate-ID case, where the cached priority
	// order is ambiguous: recompute directly for this caller without
	// disturbing the stored entry.
	out, ok := rebind(rs, msgs)
	if !ok {
		c.misses.Add(1)
		return Analyze(cfg, msgs)
	}
	return out, nil
}

// AnalyzeShared is Analyze minus the per-call result copy: the returned
// slice is cache-owned and must not be mutated or retained across cache
// lifetimes, and its Message pointers are those of whichever key-equal
// set first populated the entry — match results by Name, not by pointer.
// The e2e chain stages read one response per call, so handing them the
// shared slice keeps chain-heavy verification allocation-free on hits.
func (c *Cache) AnalyzeShared(cfg Config, msgs []*Message) ([]Response, error) {
	if c == nil {
		return Analyze(cfg, msgs)
	}
	return c.lookup(cfg, msgs)
}

// Stats reports lookup hits and misses since creation.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of distinct message sets cached.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Observe registers the cache's hit/miss/size series into a registry
// under the shared cache metric names, labeled cache="can". Safe on a
// nil receiver (registers nothing).
func (c *Cache) Observe(reg *obs.Registry) {
	if c == nil {
		return
	}
	label := obs.Label{Key: "cache", Value: "can"}
	reg.CounterFunc("analysis_cache_hits_total", "Memoized analysis lookups served from cache.", c.hits.Load, label)
	reg.CounterFunc("analysis_cache_misses_total", "Memoized analysis lookups that ran the analysis.", c.misses.Load, label)
	reg.CounterFunc("analysis_cache_dedup_total", "Memoized analysis lookups coalesced onto a concurrent identical computation.", c.dedup.Load, label)
	reg.GaugeFunc("analysis_cache_entries", "Distinct problems held by the analysis cache.", func() float64 { return float64(c.Len()) }, label)
}
