package can

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"autorte/internal/obs"
)

// cacheKey serializes the analysis-relevant view of a message set under a
// configuration: frames sorted by ID — the priority order Analyze uses —
// with every field the recurrence reads. OnDeliver callbacks and runtime
// bookkeeping are irrelevant to the analysis and excluded.
func cacheKey(cfg Config, msgs []*Message) string {
	byPrio := append([]*Message(nil), msgs...)
	sort.SliceStable(byPrio, func(i, j int) bool { return byPrio[i].ID < byPrio[j].ID })
	buf := make([]byte, 0, 48*len(byPrio)+16)
	buf = strconv.AppendInt(buf, cfg.BitRate, 10)
	if cfg.Extended {
		buf = append(buf, 'x')
	}
	buf = append(buf, '|')
	for _, m := range byPrio {
		buf = strconv.AppendInt(buf, int64(len(m.Name)), 10)
		buf = append(buf, ':')
		buf = append(buf, m.Name...)
		buf = strconv.AppendUint(buf, uint64(m.ID), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(m.DLC), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(m.Period), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(m.Jitter), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(m.Deadline), 10)
		buf = append(buf, ';')
	}
	return string(buf)
}

// Cache memoizes Analyze by message-set key. During verification and DSE
// the same bus frame set is analyzed once per candidate mapping and once
// per chain stage; the cache collapses the repeats to a lookup. Safe for
// concurrent use.
type Cache struct {
	mu     sync.RWMutex
	m      map[string][]Response
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewCache returns an empty CAN analysis cache.
func NewCache() *Cache {
	return &Cache{m: map[string][]Response{}}
}

// Analyze is the memoized equivalent of the package function. On a hit
// the cached numeric results are re-bound to the caller's *Message values
// (matched by priority order), so callers always see their own messages in
// the responses. A nil receiver degrades to the direct analysis.
func (c *Cache) Analyze(cfg Config, msgs []*Message) ([]Response, error) {
	if c == nil {
		return Analyze(cfg, msgs)
	}
	key := cacheKey(cfg, msgs)
	c.mu.RLock()
	cached, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		byPrio := append([]*Message(nil), msgs...)
		sort.SliceStable(byPrio, func(i, j int) bool { return byPrio[i].ID < byPrio[j].ID })
		out := append([]Response(nil), cached...)
		rebound := true
		for i := range out {
			if out[i].Message.Name != byPrio[i].Name {
				rebound = false // duplicate IDs shuffled the order; recompute
				break
			}
			out[i].Message = byPrio[i]
		}
		if rebound {
			return out, nil
		}
	}
	c.misses.Add(1)
	rs, err := Analyze(cfg, msgs)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.m[key] = rs
	c.mu.Unlock()
	return append([]Response(nil), rs...), nil
}

// Stats reports lookup hits and misses since creation.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of distinct message sets cached.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Observe registers the cache's hit/miss/size series into a registry
// under the shared cache metric names, labeled cache="can". Safe on a
// nil receiver (registers nothing).
func (c *Cache) Observe(reg *obs.Registry) {
	if c == nil {
		return
	}
	label := obs.Label{Key: "cache", Value: "can"}
	reg.CounterFunc("analysis_cache_hits_total", "Memoized analysis lookups served from cache.", c.hits.Load, label)
	reg.CounterFunc("analysis_cache_misses_total", "Memoized analysis lookups that ran the analysis.", c.misses.Load, label)
	reg.GaugeFunc("analysis_cache_entries", "Distinct problems held by the analysis cache.", func() float64 { return float64(c.Len()) }, label)
}
