package can

import (
	"fmt"
	"testing"

	"autorte/internal/sim"
)

func benchSet(n int) []*Message {
	msgs := make([]*Message, n)
	for i := range msgs {
		msgs[i] = &Message{
			Name: fmt.Sprintf("m%d", i), ID: uint32(i + 1), DLC: 8,
			Period: sim.Duration(5+i) * sim.Millisecond,
		}
	}
	return msgs
}

// BenchmarkBusSimulation measures one virtual second of a 20-message bus
// at ~60% load.
func BenchmarkBusSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		bus := MustNewBus(k, "can0", Config{BitRate: 500_000}, nil)
		for _, m := range benchSet(20) {
			bus.MustAddMessage(m)
		}
		bus.Start()
		k.Run(sim.Second)
	}
}

// BenchmarkAnalyze measures the bus RTA for a 50-message set.
func BenchmarkAnalyze(b *testing.B) {
	msgs := benchSet(50)
	cfg := Config{BitRate: 500_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(cfg, msgs); err != nil {
			b.Fatal(err)
		}
	}
}
