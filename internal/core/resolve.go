package core

import (
	"sync"

	"autorte/internal/can"
	"autorte/internal/flexray"
	"autorte/internal/rte"
	"autorte/internal/sched"
	"autorte/internal/vfb"
)

// analysisCtx memoizes resolved analyses for one re-verification pass.
// The pipeline caches already collapse repeated analyses to a lookup, but
// each lookup still serializes the full problem into its cache key — for
// a chain-heavy system that serialization alone dominates an incremental
// re-verify, where dozens of chain stages read the same handful of bus
// and ECU analyses. The context pins each resolved result under its ECU
// or bus NAME, which is stable for the duration of one pass (task sets
// and message sets are rebuilt, and a fresh context created, before the
// chains are re-evaluated).
//
// All results are cache-owned and read-only. Safe for concurrent use.
type analysisCtx struct {
	p    *Pipeline
	opts rte.Options

	mu      sync.Mutex
	rta     map[string][]sched.Result
	canResp map[string][]can.Response
	frSched map[string]map[string]flexray.Assignment
}

func (p *Pipeline) newAnalysisCtx(opts rte.Options) *analysisCtx {
	return &analysisCtx{
		p: p, opts: opts,
		rta:     map[string][]sched.Result{},
		canResp: map[string][]can.Response{},
		frSched: map[string]map[string]flexray.Assignment{},
	}
}

// ecuResults resolves the response-time analysis of one ECU's task set,
// at most once per context.
func (c *analysisCtx) ecuResults(ecu string, tasks []sched.Task) ([]sched.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rs, ok := c.rta[ecu]; ok {
		return rs, nil
	}
	rs, err := c.p.RTA.ResponseTimesShared(tasks)
	if err != nil {
		return nil, err
	}
	c.rta[ecu] = rs
	return rs, nil
}

// canResponses resolves the bus analysis of one CAN bus's message set, at
// most once per context.
func (c *analysisCtx) canResponses(bus string, cfg can.Config, msgs []*can.Message) ([]can.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rs, ok := c.canResp[bus]; ok {
		return rs, nil
	}
	rs, err := c.p.CAN.AnalyzeShared(cfg, msgs)
	if err != nil {
		return nil, err
	}
	c.canResp[bus] = rs
	return rs, nil
}

// flexSchedule resolves the synthesized static schedule of one FlexRay
// bus, at most once per context.
func (c *analysisCtx) flexSchedule(bus string, cfg flexray.Config, routes []vfb.Route) (map[string]flexray.Assignment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if as, ok := c.frSched[bus]; ok {
		return as, nil
	}
	as, err := c.p.flexraySchedule(cfg, routes)
	if err != nil {
		return nil, err
	}
	c.frSched[bus] = as
	return as, nil
}
