package core

import (
	"strings"
	"testing"

	"autorte/internal/contract"
	"autorte/internal/model"
	"autorte/internal/rte"
	"autorte/internal/sim"
	"autorte/internal/workload"
)

func vehicle(t *testing.T, seed uint64) *model.System {
	t.Helper()
	sys, err := workload.GenerateVehicle(workload.VehicleSpec{}, sim.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestVerifyFederatedVehicle(t *testing.T) {
	sys := vehicle(t, 1)
	rep, err := Verify(sys, nil, rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, e := range rep.ECUs {
			if !e.Schedulable {
				t.Logf("ECU %s (u=%.3f) unschedulable", e.Name, e.Utilization)
			}
		}
		for _, b := range rep.Buses {
			if !b.Schedulable {
				t.Logf("bus %s: %s", b.Name, b.Detail)
			}
		}
		t.Fatal("federated vehicle should verify (spread across 12 ECUs)")
	}
	if len(rep.ECUs) != 12 {
		t.Fatalf("analyzed %d ECUs, want 12", len(rep.ECUs))
	}
	if len(rep.Buses) != 1 {
		t.Fatalf("analyzed %d buses, want 1", len(rep.Buses))
	}
}

func TestVerifyDetectsOverload(t *testing.T) {
	sys := vehicle(t, 2)
	// Cram everything onto one ECU: total utilization ~2.6.
	for name := range sys.Mapping {
		sys.Mapping[name] = sys.ECUs[0].Name
	}
	rep, err := Verify(sys, nil, rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("overloaded single-ECU mapping verified")
	}
}

func TestBuildTaskSetsDerivesEventRates(t *testing.T) {
	sys := vehicle(t, 3)
	sets, warnings := BuildTaskSets(sys)
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	total := 0
	for _, tasks := range sets {
		total += len(tasks)
		for _, tk := range tasks {
			if tk.T <= 0 {
				t.Fatalf("task %s has no derived period", tk.Name)
			}
		}
	}
	// 39 components x 1 runnable each.
	if total != 39 {
		t.Fatalf("analyzed %d tasks, want 39", total)
	}
}

func TestEffectivePeriodTransitive(t *testing.T) {
	sys := vehicle(t, 4)
	// Find an actuator (data-received) and check it inherits the sensor's
	// period transitively (sensor -> ctrl samples periodically -> act).
	for _, comp := range sys.Components {
		if !strings.HasSuffix(comp.Name, "_act") {
			continue
		}
		p := EffectivePeriod(sys, comp, &comp.Runnables[0])
		if p <= 0 {
			t.Fatalf("actuator %s has no derived period", comp.Name)
		}
		return
	}
	t.Fatal("no actuator found")
}

func TestVerifyWithContracts(t *testing.T) {
	sys := vehicle(t, 5)
	// Give one sensor and its controller matching contracts.
	sensor, ctrl := "", ""
	for _, c := range sys.Components {
		if strings.HasSuffix(c.Name, "_c0_sensor") && sensor == "" {
			sensor = c.Name
			ctrl = strings.Replace(c.Name, "_sensor", "_ctrl", 1)
			break
		}
	}
	contracts := map[string]*contract.Contract{
		sensor: {
			Component:  sensor,
			Guarantees: []contract.Condition{{Kind: contract.ValueRange, Port: "out", Elem: "v", Lo: 0, Hi: 100}},
		},
		ctrl: {
			Component: ctrl,
			Assumes:   []contract.Condition{{Kind: contract.ValueRange, Port: "in", Elem: "v", Lo: 0, Hi: 200}},
		},
	}
	rep, err := Verify(sys, contracts, rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Contracts == nil || !rep.Contracts.OK() || rep.Contracts.Checked != 1 {
		t.Fatalf("contract check wrong: %+v", rep.Contracts)
	}
	// Now make them incompatible.
	contracts[ctrl].Assumes[0].Hi = 50
	rep, _ = Verify(sys, contracts, rte.Options{})
	if rep.OK() {
		t.Fatal("incompatible contracts passed verification")
	}
}

func TestVerifyChainConstraints(t *testing.T) {
	sys := vehicle(t, 6)
	// Add an end-to-end constraint over one chassis chain with a generous
	// budget, and one with an impossible budget.
	var sensor, ctrl, act string
	for _, c := range sys.Components {
		if strings.HasPrefix(c.Name, "chassis_c0_") {
			switch {
			case strings.HasSuffix(c.Name, "_sensor"):
				sensor = c.Name
			case strings.HasSuffix(c.Name, "_ctrl"):
				ctrl = c.Name
			case strings.HasSuffix(c.Name, "_act"):
				act = c.Name
			}
		}
	}
	chain := []model.PortRef2{
		{SWC: sensor, Port: "out"}, {SWC: ctrl, Port: "in"},
		{SWC: ctrl, Port: "cmd"}, {SWC: act, Port: "in"},
	}
	sys.Constraints = []model.LatencyConstraint{
		{Name: "generous", Chain: chain, Budget: sim.MS(200)},
		{Name: "impossible", Chain: chain, Budget: sim.US(1)},
	}
	rep, err := Verify(sys, nil, rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Chains) != 2 {
		t.Fatalf("chains analyzed: %d, want 2", len(rep.Chains))
	}
	byName := map[string]ChainReport{}
	for _, c := range rep.Chains {
		byName[c.Name] = c
	}
	if g := byName["generous"]; !g.OK || g.Err != "" {
		t.Fatalf("generous chain failed: %+v", g)
	}
	if byName["impossible"].OK {
		t.Fatal("impossible chain budget verified")
	}
}

// TestChainBoundDominatesSimulation: the analytic chain bound must cover
// the measured end-to-end latency on the actual platform.
func TestChainBoundDominatesSimulation(t *testing.T) {
	sys := vehicle(t, 7)
	var sensor, ctrl, act string
	for _, c := range sys.Components {
		if strings.HasPrefix(c.Name, "powertrain_c0_") {
			switch {
			case strings.HasSuffix(c.Name, "_sensor"):
				sensor = c.Name
			case strings.HasSuffix(c.Name, "_ctrl"):
				ctrl = c.Name
			case strings.HasSuffix(c.Name, "_act"):
				act = c.Name
			}
		}
	}
	chain := []model.PortRef2{
		{SWC: sensor, Port: "out"}, {SWC: ctrl, Port: "in"},
		{SWC: ctrl, Port: "cmd"}, {SWC: act, Port: "in"},
	}
	sys.Constraints = []model.LatencyConstraint{{Name: "pt0", Chain: chain, Budget: sim.Second}}
	rep, err := Verify(sys, nil, rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chains[0].Err != "" {
		t.Fatal(rep.Chains[0].Err)
	}
	bound := rep.Chains[0].Bound

	// Measure on the platform: track worst sensor->act latency.
	p := rte.MustBuild(sys.Clone(), rte.Options{})
	var worst sim.Duration
	var produced sim.Time
	if err := p.SetBehavior(sensor, "sample", func(c *rte.Context) {
		produced = c.Now()
		c.Write("out", "v", 1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBehavior(act, "apply", func(c *rte.Context) {
		if d := c.Now() - produced; d > worst {
			worst = d
		}
	}); err != nil {
		t.Fatal(err)
	}
	p.Run(sim.Second)
	if worst == 0 {
		t.Fatal("chain never completed in simulation")
	}
	if worst > bound {
		t.Fatalf("measured chain latency %v exceeds analytic bound %v", worst, bound)
	}
}

func TestCheckExtensionStabilityUnderIsolation(t *testing.T) {
	base := vehicle(t, 8)
	// Extended system: an extra greedy supplier component on the first
	// chassis ECU, at higher priority (faster period) than existing tasks.
	extended := base.Clone()
	ifX := &model.PortInterface{
		Name: "IfX", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "x", Type: model.UInt8}},
	}
	extended.Interfaces = append(extended.Interfaces, ifX)
	// "z" prefix: sorts after every tier* supplier, so a planned TT table
	// appends its window in the spare tail.
	intruder := &model.SWC{
		Name: "zAftermarket_comp", Supplier: "zAftermarket", DAS: "aftermarket",
		Runnables: []model.Runnable{{
			Name: "spin", WCETNominal: sim.US(900),
			Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(1)},
		}},
	}
	extended.Components = append(extended.Components, intruder)
	// Place it on the busiest chassis ECU.
	extended.Mapping[intruder.Name] = "ecu_chassis_0"

	horizon := sim.MS(300)
	plain, err := CheckExtension(base, extended, rte.Options{}, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stable {
		t.Fatal("plain FP reported stable after adding a 90%-load intruder; E9 baseline vacuous")
	}
	// A planned time-triggered integration: explicit major frame and
	// explicit per-supplier reservations, with spare capacity left for
	// future suppliers — the "careful planning" §1 describes. The
	// intruder's window lands in the spare tail, so prior windows (and
	// thus prior timing) are untouched.
	planned := rte.Options{
		Isolation:  rte.TablePerSupplier,
		MajorFrame: sim.MS(1),
		Reservations: map[string]float64{
			"tierP": 0.55, "tierC": 0.55, "tierB": 0.35, "tierT": 0.35,
			"zAftermarket": 0.30,
		},
	}
	isolated, err := CheckExtension(base, extended, planned, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !isolated.Stable {
		for _, d := range isolated.Deltas {
			if d.Degraded {
				t.Logf("degraded: %s %v -> %v (miss %d -> %d)", d.Task, d.Before, d.After, d.MissesBefore, d.MissesAfter)
			}
		}
		t.Fatal("planned TT isolation failed to preserve prior services")
	}
}

func TestSimulateConvenience(t *testing.T) {
	p, err := Simulate(vehicle(t, 9), rte.Options{}, sim.MS(50))
	if err != nil {
		t.Fatal(err)
	}
	if p.K.Now() != sim.MS(50) {
		t.Fatalf("simulation clock %v, want 50ms", p.K.Now())
	}
}

func TestVerifyGatewayedChain(t *testing.T) {
	// Sensor domain on can0, controller domain on can1, joined by a
	// gateway ECU; the chain constraint must be bounded across both
	// segments and the bound must dominate the measured latency.
	ifV := &model.PortInterface{
		Name: "IfV", Kind: model.SenderReceiver,
		Elements: []model.DataElement{{Name: "v", Type: model.UInt16}},
	}
	sys := &model.System{
		Name:       "gw",
		Interfaces: []*model.PortInterface{ifV},
		Components: []*model.SWC{
			{
				Name:  "Sensor",
				Ports: []model.Port{{Name: "out", Direction: model.Provided, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "sample", WCETNominal: sim.US(50),
					Trigger: model.Trigger{Kind: model.TimingEvent, Period: sim.MS(20)},
					Writes:  []model.PortRef{{Port: "out", Elem: "v"}},
				}},
			},
			{
				Name:  "Ctrl",
				Ports: []model.Port{{Name: "in", Direction: model.Required, Interface: ifV}},
				Runnables: []model.Runnable{{
					Name: "law", WCETNominal: sim.US(100),
					Trigger: model.Trigger{Kind: model.DataReceivedEvent, Port: "in", Elem: "v"},
					Reads:   []model.PortRef{{Port: "in", Elem: "v"}},
				}},
			},
		},
		ECUs: []*model.ECU{
			{Name: "e1", Speed: 1, Buses: []string{"can0"}},
			{Name: "e2", Speed: 1, Buses: []string{"can1"}},
			{Name: "gwEcu", Speed: 1, Buses: []string{"can0", "can1"}},
		},
		Buses: []*model.Bus{
			{Name: "can0", Kind: model.BusCAN, BitRate: 500_000},
			{Name: "can1", Kind: model.BusCAN, BitRate: 500_000},
		},
		Connectors: []model.Connector{{FromSWC: "Sensor", FromPort: "out", ToSWC: "Ctrl", ToPort: "in"}},
		Mapping:    map[string]string{"Sensor": "e1", "Ctrl": "e2"},
		Constraints: []model.LatencyConstraint{{
			Name:   "crossDomain",
			Chain:  []model.PortRef2{{SWC: "Sensor", Port: "out"}, {SWC: "Ctrl", Port: "in"}},
			Budget: sim.MS(20),
		}},
	}
	rep, err := Verify(sys, nil, rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chains[0].Err != "" {
		t.Fatal(rep.Chains[0].Err)
	}
	bound := rep.Chains[0].Bound
	if !rep.Chains[0].OK {
		t.Fatalf("cross-domain chain bound %v exceeds budget", bound)
	}
	// Both buses carry load in the report.
	if len(rep.Buses) != 2 {
		t.Fatalf("buses analyzed = %d, want 2", len(rep.Buses))
	}
	// Measure and compare.
	p := rte.MustBuild(sys.Clone(), rte.Options{})
	var worst sim.Duration
	var produced sim.Time
	p.SetBehavior("Sensor", "sample", func(c *rte.Context) {
		produced = c.Now()
		c.Write("out", "v", 1)
	})
	p.SetBehavior("Ctrl", "law", func(c *rte.Context) {
		if d := c.Now() - produced; d > worst {
			worst = d
		}
	})
	p.Run(sim.Second)
	if worst == 0 {
		t.Fatal("gatewayed chain never completed")
	}
	if worst > bound {
		t.Fatalf("measured %v exceeds bound %v", worst, bound)
	}
}

func TestVerifyTTPBusCapacity(t *testing.T) {
	sys := vehicle(t, 12)
	sys.Buses[0].Kind = model.BusTTP
	rep, err := Verify(sys, nil, rte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Buses) != 1 || rep.Buses[0].Kind != model.BusTTP {
		t.Fatalf("TTP bus not analyzed: %+v", rep.Buses)
	}
	// 12 nodes x 250us = 3ms round; chassis signals at 2ms period violate
	// the TDMA capacity rule.
	if rep.Buses[0].Schedulable {
		t.Fatal("3ms TDMA round accepted 2ms-period signals")
	}
	// A faster slot length fixes it: 12 x 100us = 1.2ms round < 2ms.
	rep, err = Verify(sys, nil, rte.Options{TTPSlotLength: sim.US(100)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Buses[0].Schedulable {
		t.Fatalf("1.2ms TDMA round rejected: %s", rep.Buses[0].Detail)
	}
}
